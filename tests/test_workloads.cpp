/**
 * @file
 * Tests for the workload suite: registry completeness, kernel
 * validity, generator determinism, termination, and calibration of the
 * aggregate register-usage statistics against Figure 2.
 */

#include <gtest/gtest.h>

#include "ir/parser.h"
#include "sim/baseline_exec.h"
#include "sim/machine.h"
#include "workloads/handwritten.h"
#include "workloads/registry.h"
#include "workloads/synthetic.h"

namespace rfh {
namespace {

TEST(Workloads, RegistryCoversTable1)
{
    // 25 CUDA SDK + 5 Parboil + 6 Rodinia.
    EXPECT_EQ(allWorkloads().size(), 36u);
    EXPECT_EQ(suiteWorkloads("CUDA SDK").size(), 25u);
    EXPECT_EQ(suiteWorkloads("Parboil").size(), 5u);
    EXPECT_EQ(suiteWorkloads("Rodinia").size(), 6u);
}

TEST(Workloads, AllKernelsValidate)
{
    for (const Workload &w : allWorkloads())
        EXPECT_EQ(w.kernel.validate(), "") << w.name;
}

TEST(Workloads, NamesAreUnique)
{
    std::set<std::string> names;
    for (const Workload &w : allWorkloads())
        EXPECT_TRUE(names.insert(w.name).second) << w.name;
}

TEST(Workloads, AllKernelsTerminate)
{
    for (const Workload &w : allWorkloads()) {
        WarpContext warp;
        warp.reset(3);
        std::uint64_t executed = 0;
        while (!warp.done && executed < w.run.maxInstrsPerWarp) {
            step(w.kernel, warp);
            executed++;
        }
        EXPECT_TRUE(warp.done) << w.name << " did not terminate";
        EXPECT_GT(executed, 10u) << w.name << " trivially short";
    }
}

TEST(Workloads, HandwrittenNamesResolve)
{
    for (std::string_view name : handwrittenKernelNames()) {
        Kernel k = buildHandwrittenKernel(name);
        EXPECT_EQ(k.validate(), "") << name;
        EXPECT_EQ(k.name, name);
    }
}

TEST(Workloads, GeneratorIsDeterministic)
{
    SynthParams p;
    p.seed = 1234;
    Kernel a = generateSynthetic("g", p);
    Kernel b = generateSynthetic("g", p);
    ASSERT_EQ(a.numInstrs(), b.numInstrs());
    for (int i = 0; i < a.numInstrs(); i++) {
        EXPECT_EQ(a.instr(i).op, b.instr(i).op);
        EXPECT_EQ(a.instr(i).dst, b.instr(i).dst);
    }
    p.seed = 1235;
    Kernel c = generateSynthetic("g", p);
    bool differs = a.numInstrs() != c.numInstrs();
    for (int i = 0; !differs && i < a.numInstrs(); i++)
        differs = !(a.instr(i).op == c.instr(i).op);
    EXPECT_TRUE(differs);
}

TEST(Workloads, GeneratorRespectsStructureKnobs)
{
    SynthParams small;
    small.opsPerStrand = 4;
    small.strandsPerBody = 1;
    SynthParams large;
    large.opsPerStrand = 16;
    large.strandsPerBody = 3;
    Kernel ks = generateSynthetic("s", small);
    Kernel kl = generateSynthetic("l", large);
    EXPECT_LT(ks.numInstrs(), kl.numInstrs());
}

TEST(Workloads, GeneratorTexKnob)
{
    SynthParams p;
    p.useTex = true;
    Kernel k = generateSynthetic("t", p);
    bool has_tex = false, has_global = false;
    for (int i = 0; i < k.numInstrs(); i++) {
        has_tex |= k.instr(i).op == Opcode::TEX;
        has_global |= k.instr(i).op == Opcode::LD_GLOBAL;
    }
    EXPECT_TRUE(has_tex);
    EXPECT_FALSE(has_global);
}

TEST(Workloads, GeneratorHammocksAppear)
{
    SynthParams p;
    p.pHammock = 1.0;
    p.strandsPerBody = 2;
    Kernel k = generateSynthetic("h", p);
    EXPECT_GT(k.blocks.size(), 4u) << "hammocks create extra blocks";
    EXPECT_EQ(k.validate(), "");
}

// ---- Calibration against the paper's measured patterns (Figure 2) ----

UsageStats
aggregateUsage()
{
    UsageStats total;
    for (const Workload &w : allWorkloads())
        total.add(collectUsageStats(w.kernel, w.run));
    return total;
}

TEST(Calibration, MostValuesReadAtMostOnce)
{
    UsageStats us = aggregateUsage();
    double le1 = us.fracRead(0) + us.fracRead(1);
    // Paper: up to 70%. Accept the 55-80% band.
    EXPECT_GT(le1, 0.55);
    EXPECT_LT(le1, 0.80);
}

TEST(Calibration, HalfOfValuesReadOnceWithinThreeInstructions)
{
    UsageStats us = aggregateUsage();
    double once_within3 =
        static_cast<double>(us.life1 + us.life2 + us.life3) /
        us.totalValues;
    // Paper: ~50%. Accept 35-65%.
    EXPECT_GT(once_within3, 0.35);
    EXPECT_LT(once_within3, 0.65);
}

TEST(Calibration, SharedDatapathConsumptionIsSmall)
{
    UsageStats us = aggregateUsage();
    double shared = static_cast<double>(us.sharedConsumed) /
        us.totalValues;
    // Paper: 7%. Accept up to 25%: our kernels are inner-loop
    // skeletons (each loaded element does less surrounding arithmetic
    // than a full application), and several namesakes (mri-q, sad,
    // histogram) genuinely feed most values to SFU/MEM units; see
    // DESIGN.md and EXPERIMENTS.md.
    EXPECT_LT(shared, 0.25);
    EXPECT_GT(shared, 0.02);
}

TEST(Calibration, SharedConsumedValuesMostlyPrivateProduced)
{
    UsageStats us = aggregateUsage();
    double frac = static_cast<double>(
        us.sharedConsumedPrivateProduced) / us.sharedConsumed;
    // Paper: 70%. Accept 55-100%.
    EXPECT_GT(frac, 0.55);
}

TEST(Calibration, BurstTrackingWorks)
{
    // A value read three times back-to-back is bursty; one with a wide
    // gap between reads is not.
    Kernel k = parseKernelOrDie(R"(.kernel burst
entry:
    iadd R1, R0, #1
    iadd R2, R1, #1
    iadd R3, R1, #1
    iadd R4, R1, #1
    iadd R5, R0, #2
    iadd R6, R5, #1
    iadd R7, R2, R3
    iadd R7, R7, R4
    iadd R8, R6, R7
    iadd R9, R5, #3
    st.global [R0], R9
    st.global [R0], R8
    exit
)");
    RunConfig rc;
    rc.numWarps = 1;
    UsageStats us = collectUsageStats(k, rc);
    // R1 (reads at +1,+2,+3) is bursty; R5 (reads at +1 and +4) is not.
    EXPECT_GE(us.multiReads, 2u);
    EXPECT_GE(us.burstyMultiReads, 1u);
    EXPECT_LT(us.burstyMultiReads, us.multiReads);
}

TEST(Calibration, OperandRates)
{
    UsageStats us = aggregateUsage();
    double reads = static_cast<double>(us.regReads) / us.instructions;
    double writes = static_cast<double>(us.regWrites) / us.instructions;
    // Paper: 1.6 reads and 0.8 writes per instruction.
    EXPECT_GT(reads, 1.2);
    EXPECT_LT(reads, 2.0);
    EXPECT_GT(writes, 0.6);
    EXPECT_LT(writes, 1.0);
}

} // namespace
} // namespace rfh
