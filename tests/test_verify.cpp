/**
 * @file
 * Tests for the differential fuzzing oracle, the allocator-invariant
 * checker, and the shrinking reducer.
 *
 * The corpus under tests/corpus/ is a committed set of fuzz-generated
 * kernels (one per generator family); the oracle must report zero
 * findings on each. The tamper tests flip single annotation bits on
 * an allocated kernel and require the static checker to object — the
 * checker is only trustworthy if it fails loudly on known-bad input.
 * The shrink tests plant a counter perturbation and require the
 * reducer to cut the witness to a handful of instructions.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "compiler/allocator.h"
#include "core/experiment.h"
#include "core/memo.h"
#include "energy/energy_params.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "verify/oracle.h"
#include "verify/rptx_fuzz.h"
#include "verify/shrink.h"

namespace rfh {
namespace {

/** Oracle configuration kept small so the suite stays fast. */
OracleOptions
testOracleOptions()
{
    OracleOptions oo;
    oo.run.numWarps = 2;
    oo.run.maxInstrsPerWarp = 1u << 16;
    oo.simtWidth = 4;
    return oo;
}

std::vector<std::pair<std::string, Kernel>>
loadCorpus()
{
    std::vector<std::pair<std::string, Kernel>> corpus;
    auto dir = std::filesystem::path(RFH_SOURCE_DIR) / "tests" /
        "corpus";
    for (const auto &e : std::filesystem::directory_iterator(dir)) {
        if (e.path().extension() != ".rptx")
            continue;
        std::ifstream in(e.path());
        std::ostringstream ss;
        ss << in.rdbuf();
        ParseResult r = parseKernel(ss.str());
        EXPECT_TRUE(r.ok) << e.path() << ": " << r.error;
        if (r.ok)
            corpus.emplace_back(e.path().filename().string(),
                                std::move(r.kernel));
    }
    return corpus;
}

TEST(VerifyOracle, CorpusIsClean)
{
    auto corpus = loadCorpus();
    ASSERT_GE(corpus.size(), 10u);
    OracleOptions oo = testOracleOptions();
    for (auto &[name, k] : corpus) {
        OracleReport rep = runOracle(k, oo);
        EXPECT_FALSE(rep.truncated) << name;
        EXPECT_TRUE(rep.ok()) << name << ": " << rep.summary();
        EXPECT_GT(rep.pairsChecked, 0) << name;
        EXPECT_GT(rep.invariantSites, 0) << name;
    }
}

/**
 * The acceptance bar of the cycle-level pipeline: for every corpus
 * kernel, every pipelined scheme, and warp counts {1, 4, 8, 32}, the
 * pipeline's issue-time accounting must equal the functional replay
 * path — dynamic instruction count and every per-level access total.
 * Compressed latencies keep the sweep fast; counts are
 * timing-invariant, which is the property under test.
 */
TEST(VerifyOracle, PipelineConservesCountsAcrossWarpCounts)
{
    auto corpus = loadCorpus();
    ASSERT_GE(corpus.size(), 10u);
    PipelineConfig pcfg;
    pcfg.aluLatency = 2;
    pcfg.sfuLatency = 3;
    pcfg.sharedMemLatency = 3;
    pcfg.texLatency = 6;
    pcfg.dramLatency = 6;
    int pairs = 0;
    for (auto &[name, k] : corpus) {
        for (int warps : {1, 4, 8, 32}) {
            Workload w;
            w.name = k.name;
            w.suite = "corpus";
            w.kernel = k;
            w.run.numWarps = warps;
            w.run.maxInstrsPerWarp = 1u << 16;
            for (const SchemeInfo *si :
                 SchemeRegistry::instance().schemes()) {
                if (!si->caps.pipelined)
                    continue;
                ExperimentConfig cfg;
                cfg.scheme = si->scheme;
                cfg.engine = ExecEngine::REPLAY;
                RunOutcome functional = runScheme(w, cfg);
                ASSERT_TRUE(functional.ok())
                    << name << "/" << si->token << " @" << warps
                    << ": " << functional.error;
                SchemePipelineResult pr =
                    runSchemePipeline(w, cfg, pcfg);
                ASSERT_TRUE(pr.ok())
                    << name << "/" << si->token << " @" << warps
                    << ": " << pr.error;
                EXPECT_EQ(pr.stats.issued,
                          functional.counts.instructions)
                    << name << "/" << si->token << " @" << warps;
                EXPECT_EQ(
                    describeCountsDiff(pr.counts, functional.counts),
                    "")
                    << name << "/" << si->token << " @" << warps;
                pairs++;
            }
        }
    }
    // Every corpus kernel contributed all scheme x warp-count pairs.
    EXPECT_GE(pairs, static_cast<int>(corpus.size()) * 4 * 2);
}

TEST(VerifyOracle, ReportIsDeterministic)
{
    Kernel k = generateFuzzKernel("det", fuzzCase(11, 2));
    OracleOptions oo = testOracleOptions();
    OracleReport a = runOracle(k, oo);
    OracleReport b = runOracle(k, oo);
    EXPECT_EQ(a.pairsChecked, b.pairsChecked);
    EXPECT_EQ(a.invariantSites, b.invariantSites);
    EXPECT_EQ(a.findings.size(), b.findings.size());
    EXPECT_EQ(a.summary(), b.summary());
}

TEST(VerifyOracle, InjectedCounterPerturbationIsCaught)
{
    Kernel k = generateFuzzKernel("inj", fuzzCase(1, 0));
    OracleOptions oo = testOracleOptions();
    ASSERT_TRUE(runOracle(k, oo).ok());
    for (OraclePerturb p : {OraclePerturb::EXTRA_MRF_READ,
                            OraclePerturb::DROP_ORF_WRITE}) {
        OracleOptions bad = oo;
        bad.perturb = p;
        OracleReport rep = runOracle(k, bad);
        EXPECT_FALSE(rep.ok())
            << "perturbation " << static_cast<int>(p) << " slipped by";
    }
}

TEST(VerifyOracle, InfiniteLoopIsTruncatedNotJudged)
{
    KernelBuilder b("spin");
    int head = b.block("head");
    b.add(makeALU(Opcode::IADD, 1, SrcOperand::makeReg(1),
                  SrcOperand::makeImm(1)));
    b.add(makeBranch(head));
    b.block("unreachable");
    b.add(makeExit());
    Kernel k = b.take();
    ASSERT_EQ(k.validate(), "");
    OracleOptions oo = testOracleOptions();
    oo.run.maxInstrsPerWarp = 1024;
    OracleReport rep = runOracle(k, oo);
    EXPECT_TRUE(rep.truncated);
    EXPECT_TRUE(rep.ok());
    EXPECT_EQ(rep.pairsChecked, 0);
}

// ---- Static invariant checker: known-bad annotations must fail ----

/** Allocate @p k and return the annotated copy. */
Kernel
allocated(const Kernel &k, const AllocOptions &opts)
{
    Kernel copy = k;
    EnergyParams params;
    HierarchyAllocator alloc(params, opts);
    alloc.run(copy);
    return copy;
}

std::vector<std::string>
violationsOf(const Kernel &annotated_k, const AllocOptions &opts)
{
    auto bundle = globalExperimentCache().analyses(annotated_k);
    return checkAllocationInvariants(annotated_k, opts, *bundle);
}

/** @return true if any violation message mentions @p needle. */
bool
anyMentions(const std::vector<std::string> &violations,
            const std::string &needle)
{
    for (const auto &v : violations)
        if (v.find(needle) != std::string::npos)
            return true;
    return false;
}

TEST(VerifyInvariants, CleanAllocationPasses)
{
    Kernel k = generateFuzzKernel("clean", fuzzCase(2, 1));
    for (bool lrf : {false, true}) {
        AllocOptions opts;
        opts.useLRF = lrf;
        opts.splitLRF = lrf;
        Kernel ann = allocated(k, opts);
        auto v = violationsOf(ann, opts);
        EXPECT_TRUE(v.empty())
            << (lrf ? "sw3" : "sw2") << ": " << v.front();
    }
}

TEST(VerifyInvariants, TamperedOrfEntryExceedsCapacity)
{
    Kernel k = generateFuzzKernel("tamper", fuzzCase(2, 1));
    AllocOptions opts;
    Kernel ann = allocated(k, opts);
    bool tampered = false;
    for (int lin = 0; lin < ann.numInstrs() && !tampered; lin++) {
        Instruction &in = ann.instr(lin);
        for (int s = 0; s < in.numSrcs; s++) {
            if (!in.srcs[s].isReg ||
                in.readAnno[s].level != Level::ORF)
                continue;
            in.readAnno[s].entry =
                static_cast<std::uint8_t>(opts.orfEntries);
            tampered = true;
            break;
        }
    }
    ASSERT_TRUE(tampered) << "no ORF read to tamper with";
    auto v = violationsOf(ann, opts);
    ASSERT_FALSE(v.empty());
    EXPECT_TRUE(anyMentions(v, "exceeds capacity")) << v.front();
}

TEST(VerifyInvariants, TamperedEndOfStrandBitIsFlagged)
{
    Kernel k = generateFuzzKernel("tamper2", fuzzCase(2, 1));
    AllocOptions opts;
    Kernel ann = allocated(k, opts);
    // Flip the first end-of-strand bit off.
    bool tampered = false;
    for (int lin = 0; lin < ann.numInstrs(); lin++) {
        if (ann.instr(lin).endOfStrand) {
            ann.instr(lin).endOfStrand = false;
            tampered = true;
            break;
        }
    }
    ASSERT_TRUE(tampered);
    auto v = violationsOf(ann, opts);
    ASSERT_FALSE(v.empty());
    EXPECT_TRUE(anyMentions(v, "end-of-strand")) << v.front();
}

TEST(VerifyInvariants, TamperedDoubleUpperWriteIsFlagged)
{
    Kernel k = generateFuzzKernel("tamper3", fuzzCase(2, 1));
    AllocOptions opts;
    opts.useLRF = true;
    opts.splitLRF = true;
    Kernel ann = allocated(k, opts);
    bool tampered = false;
    for (int lin = 0; lin < ann.numInstrs(); lin++) {
        Instruction &in = ann.instr(lin);
        if (in.dst && in.writeAnno.toORF) {
            in.writeAnno.toLRF = true;
            tampered = true;
            break;
        }
    }
    ASSERT_TRUE(tampered) << "no ORF write to tamper with";
    auto v = violationsOf(ann, opts);
    ASSERT_FALSE(v.empty());
    EXPECT_TRUE(anyMentions(v, "ORF and LRF")) << v.front();
}

/**
 * Regression: a later *predicated* redefinition must not make an
 * elided MRF write a violation. Liveness marks the predicated def's
 * destination as a use (merge semantics), but a predicated-off
 * instruction performs no read — only a real reaching-defs use site
 * outside the strand requires the MRF copy. Found by fuzzing
 * (seed 42); the oracle must stay quiet on this shape.
 */
TEST(VerifyInvariants, PredicatedRedefinitionDoesNotForceMrfWrite)
{
    ParseResult r = parseKernel(
        ".kernel pred_redef\n"
        "entry:\n"
        "    tex R16, [R57]\n"
        "    setlt R14, #1, #1\n"
        "    @R60 fmin R14, #1, R16\n"
        "    exit\n");
    ASSERT_TRUE(r.ok) << r.error;
    OracleReport rep = runOracle(r.kernel, testOracleOptions());
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

// ---- Shrinking reducer ----

TEST(VerifyShrink, ReducesInjectedFailureToTinyRepro)
{
    Kernel k = generateFuzzKernel("shrinkme", fuzzCase(1, 3));
    ASSERT_GT(k.numInstrs(), 20);
    OracleOptions oo = testOracleOptions();
    oo.perturb = OraclePerturb::EXTRA_MRF_READ;
    ASSERT_FALSE(runOracle(k, oo).ok());

    auto fails = [&](const Kernel &cand) {
        return !runOracle(cand, oo).ok();
    };
    ShrinkResult res = shrinkKernel(k, fails);
    EXPECT_LE(res.finalInstrs, 10)
        << "shrunk kernel:\n" << printKernel(res.kernel);
    EXPECT_LT(res.finalInstrs, res.originalInstrs);
    EXPECT_EQ(res.kernel.validate(), "");
    EXPECT_TRUE(fails(res.kernel)) << "shrunk kernel stopped failing";
}

TEST(VerifyShrink, ArtifactRoundTrips)
{
    Kernel k = generateFuzzKernel("artifact", fuzzCase(3, 4));
    auto path = std::filesystem::temp_directory_path() /
        "rfh_test_repro.rptx";
    ASSERT_TRUE(writeReproArtifact(k, path.string()));
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    ParseResult r = parseKernel(ss.str());
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(printKernel(r.kernel), printKernel(k));
    std::filesystem::remove(path);
}

// ---- Corpus drift ----

/**
 * The committed corpus is the seed-7 output of the grammar fuzzer
 * (`rfhc fuzz --seed 7 --iters 12 --dump tests/corpus`). Re-generate
 * it and require byte identity with the checked-in files: a change to
 * the generator, the IR printer, or the RNG stream silently
 * invalidates every corpus-derived baseline, and this is the test
 * that makes such a change loud. To update legitimately, re-run the
 * dump command above and commit the new files (see docs/testing.md).
 */
TEST(VerifyCorpus, RegeneratedSeed7CorpusIsByteIdentical)
{
    auto dir = std::filesystem::path(RFH_SOURCE_DIR) / "tests" /
        "corpus";
    int found = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir))
        if (e.path().extension() == ".rptx")
            found++;
    EXPECT_EQ(found, 12) << "corpus file set changed";

    for (int i = 0; i < 12; i++) {
        std::string name = "fuzz_7_" + std::to_string(i);
        Kernel k = generateFuzzKernel(
            name, fuzzCase(7, static_cast<std::uint64_t>(i)));
        std::ifstream in(dir / (name + ".rptx"));
        ASSERT_TRUE(in.good()) << name << ".rptx missing";
        std::ostringstream committed;
        committed << in.rdbuf();
        // writeReproArtifact writes exactly printKernel(k), so this
        // comparison covers the same bytes `rfhc fuzz --dump` emits.
        EXPECT_EQ(committed.str(), printKernel(k))
            << name << ".rptx drifted from the generator";
    }
}

/** The reducer never invents an invalid kernel, whatever the oracle. */
TEST(VerifyShrink, CandidatesStayValidUnderAlwaysFail)
{
    Kernel k = generateFuzzKernel("valid", fuzzCase(4, 5));
    int checked = 0;
    auto fails = [&](const Kernel &cand) {
        EXPECT_EQ(cand.validate(), "");
        checked++;
        return true;  // greedily accept every structural reduction
    };
    ShrinkResult res = shrinkKernel(k, fails);
    EXPECT_GT(checked, 0);
    // Accepting everything must shrink to a single instruction.
    EXPECT_LE(res.finalInstrs, 2);
}

} // namespace
} // namespace rfh
