/**
 * @file
 * Tests for the sharded fleet front-end (src/service/router.h).
 *
 * These are process-level tests: the Router under test forks real
 * `rfhc serve` workers (the built CLI binary, via RFH_RFHC_BIN) and
 * the loadgen client verifies results byte-for-byte against local
 * runScheme() — so what is pinned here is the full failover story:
 * a worker killed with SIGKILL mid-load loses no requests and changes
 * no bytes, the supervisor restarts it, and a rolling drain answers
 * every in-flight request before the fleet goes down.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/json.h"
#include "service/loadgen.h"
#include "service/router.h"

namespace rfh {
namespace {

namespace fs = std::filesystem;

/** Short unique socket path under /tmp (sun_path is ~107 bytes). */
std::string
socketPath(const char *tag)
{
    return "/tmp/rfh-rt-" + std::to_string(::getpid()) + "-" + tag +
        ".sock";
}

RouterOptions
baseOptions(const char *tag)
{
    RouterOptions ro;
    ro.socketPath = socketPath(tag);
    ro.workerExe = RFH_RFHC_BIN;
    ro.workers = 3;
    ro.workerThreads = 2;
    // Fast restart so the kill test sees the respawn within its wait.
    ro.restartBackoffMs = 20;
    ro.pingIntervalMs = 100;
    return ro;
}

int
connectTo(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
sendAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/** Read until @p count newline-terminated lines or EOF. */
std::vector<std::string>
readLines(int fd, int count)
{
    std::vector<std::string> lines;
    std::string buf;
    char tmp[4096];
    while (static_cast<int>(lines.size()) < count) {
        std::size_t nl;
        while ((nl = buf.find('\n')) != std::string::npos &&
               static_cast<int>(lines.size()) < count) {
            lines.push_back(buf.substr(0, nl));
            buf.erase(0, nl + 1);
        }
        if (static_cast<int>(lines.size()) >= count)
            break;
        ssize_t n = ::recv(fd, tmp, sizeof tmp, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        buf.append(tmp, static_cast<std::size_t>(n));
    }
    return lines;
}

TEST(Router, KillNineMidLoadLosesNothing)
{
    RouterOptions ro = baseOptions("kill");
    Router router(ro);
    ASSERT_TRUE(router.start());
    ASSERT_EQ(router.upWorkers(), 3);

    LoadgenOptions lo;
    lo.socketPath = ro.socketPath;
    lo.clients = 4;
    lo.requests = 200;
    lo.verify = true;
    lo.router = true;
    int exitCode = -1;
    std::thread load([&] { exitCode = runLoadgen(lo); });

    // Wait until the stream is demonstrably in flight, then SIGKILL a
    // worker out from under it.
    for (int i = 0; i < 200 && router.stats().routed < 20; i++)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    int victim = router.workerPid(0);
    ASSERT_GT(victim, 0);
    ASSERT_EQ(::kill(victim, SIGKILL), 0);

    load.join();
    // Every request answered, zero verify mismatches: requests that
    // were in flight on the victim were re-routed to ring successors
    // and produced the same bytes.
    EXPECT_EQ(exitCode, 0);

    // The supervisor respawns the victim with backoff.
    for (int i = 0; i < 200 && router.upWorkers() < 3; i++)
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    EXPECT_EQ(router.upWorkers(), 3);
    EXPECT_GE(router.stats().restarts, 1u);
    EXPECT_NE(router.workerPid(0), victim);

    router.shutdown();
}

TEST(Router, RollingDrainAnswersEveryInFlightRequest)
{
    RouterOptions ro = baseOptions("drain");
    Router router(ro);
    ASSERT_TRUE(router.start());

    int fd = connectTo(ro.socketPath);
    ASSERT_GE(fd, 0);

    // Pipeline a burst, then start the drain while it is in flight.
    const int kRequests = 24;
    std::string burst;
    for (int i = 0; i < kRequests; i++)
        burst += "{\"id\":" + std::to_string(i) +
            ",\"op\":\"run\",\"workload\":\"vectoradd\","
            "\"scheme\":\"sw3\"}\n";
    ASSERT_TRUE(sendAll(fd, burst));
    std::thread drain([&] { router.shutdown(); });

    std::vector<std::string> lines = readLines(fd, kRequests);
    drain.join();
    ::close(fd);

    // No request may be dropped: each of the 24 gets exactly one
    // response — a result (admitted before the drain) or a structured
    // shutting_down error (admission already stopped) — never EOF.
    ASSERT_EQ(static_cast<int>(lines.size()), kRequests);
    std::vector<bool> seen(kRequests, false);
    for (const std::string &line : lines) {
        JsonParseResult parsed = parseJson(line);
        ASSERT_TRUE(parsed.ok) << line;
        int id = static_cast<int>(parsed.value.numberOr("id", -1.0));
        ASSERT_GE(id, 0);
        ASSERT_LT(id, kRequests);
        EXPECT_FALSE(seen[static_cast<std::size_t>(id)])
            << "duplicate response for id " << id;
        seen[static_cast<std::size_t>(id)] = true;
        if (!parsed.value.boolOr("ok", false)) {
            const JsonValue *err = parsed.value.find("error");
            ASSERT_NE(err, nullptr) << line;
            EXPECT_EQ(err->stringOr("code", ""), "shutting_down")
                << line;
        }
    }
    for (int i = 0; i < kRequests; i++)
        EXPECT_TRUE(seen[static_cast<std::size_t>(i)])
            << "no response for id " << i;
}

TEST(Router, StatsOpAggregatesTheFleet)
{
    RouterOptions ro = baseOptions("stats");
    ro.workers = 2;
    Router router(ro);
    ASSERT_TRUE(router.start());

    int fd = connectTo(ro.socketPath);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(sendAll(
        fd,
        "{\"id\":1,\"op\":\"run\",\"workload\":\"histogram\"}\n"));
    ASSERT_EQ(readLines(fd, 1).size(), 1u);

    ASSERT_TRUE(sendAll(fd, "{\"id\":2,\"op\":\"stats\"}\n"));
    std::vector<std::string> lines = readLines(fd, 1);
    ASSERT_EQ(lines.size(), 1u);
    JsonParseResult parsed = parseJson(lines[0]);
    ASSERT_TRUE(parsed.ok) << lines[0];
    EXPECT_TRUE(parsed.value.boolOr("ok", false));
    EXPECT_EQ(parsed.value.numberOr("workers", 0.0), 2.0);
    EXPECT_EQ(parsed.value.numberOr("up", 0.0), 2.0);
    const JsonValue *rt = parsed.value.find("router");
    ASSERT_NE(rt, nullptr);
    EXPECT_GE(rt->numberOr("routed", 0.0), 1.0);
    // The merged per-worker stats carry the service counters summed
    // across the fleet: exactly one run completed somewhere.
    const JsonValue *stats = parsed.value.find("stats");
    ASSERT_NE(stats, nullptr);
    const JsonValue *service = stats->find("service");
    ASSERT_NE(service, nullptr);
    EXPECT_EQ(service->numberOr("completed", -1.0), 1.0);

    ::close(fd);
    router.shutdown();
}

TEST(Router, SharedDiskCacheWarmsAColdFleet)
{
    fs::path cacheDir = fs::temp_directory_path() /
        ("rfh-rt-cache-" + std::to_string(::getpid()));
    fs::remove_all(cacheDir);

    LoadgenOptions lo;
    lo.clients = 2;
    lo.requests = 20;
    lo.workload = "matrixmul";
    lo.verify = true;
    lo.router = true;

    // Fleet #1 populates the cache from scratch.
    {
        RouterOptions ro = baseOptions("warm1");
        ro.workers = 2;
        ro.cacheDir = cacheDir.string();
        Router router(ro);
        ASSERT_TRUE(router.start());
        lo.socketPath = ro.socketPath;
        EXPECT_EQ(runLoadgen(lo), 0);
        router.shutdown();
    }
    ASSERT_FALSE(fs::is_empty(cacheDir));

    // Fleet #2 is all new processes against the warm directory; the
    // verified byte-compare proves disk-cached results are identical.
    {
        RouterOptions ro = baseOptions("warm2");
        ro.workers = 2;
        ro.cacheDir = cacheDir.string();
        Router router(ro);
        ASSERT_TRUE(router.start());
        lo.socketPath = ro.socketPath;
        EXPECT_EQ(runLoadgen(lo), 0);
        router.shutdown();
    }
    fs::remove_all(cacheDir);
}

} // namespace
} // namespace rfh
