/**
 * @file
 * Unit tests for the instance analysis: value instances, read
 * instances, hammock grouping (Figure 10), live-out detection, and the
 * long-latency / wide-value rules.
 */

#include <gtest/gtest.h>

#include "compiler/instances.h"
#include "ir/parser.h"

namespace rfh {
namespace {

struct Analyzed
{
    Kernel kernel;
    std::vector<ValueInstance> values;
    std::vector<ReadInstance> reads;
    int strands = 0;

    explicit Analyzed(std::string_view text,
                      StrandOptions opts = {})
        : kernel(parseKernelOrDie(text))
    {
        Cfg cfg(kernel);
        StrandAnalysis sa(kernel, cfg, opts);
        sa.markEndOfStrand(kernel);
        ReachingDefs rd(kernel, cfg);
        InstanceAnalysis ia(kernel, cfg, sa, rd);
        values = ia.values();
        reads = ia.readInstances();
        strands = sa.numStrands();
    }

    const ValueInstance *
    valueAt(int def_lin) const
    {
        for (const auto &v : values)
            for (int dl : v.defLins)
                if (dl == def_lin)
                    return &v;
        return nullptr;
    }

    const ReadInstance *
    readOf(Reg r) const
    {
        for (const auto &ri : reads)
            if (ri.reg == r)
                return &ri;
        return nullptr;
    }
};

TEST(Instances, SimpleDefUse)
{
    Analyzed a(R"(.kernel s
entry:
    iadd R1, R0, #1
    iadd R2, R1, #2
    iadd R3, R2, R2
    st.global [R0], R3
    exit
)");
    const ValueInstance *v1 = a.valueAt(0);
    ASSERT_NE(v1, nullptr);
    EXPECT_EQ(v1->reg, 1);
    ASSERT_EQ(v1->uses.size(), 1u);
    EXPECT_EQ(v1->uses[0].lin, 1);
    EXPECT_FALSE(v1->liveOut);
    EXPECT_FALSE(v1->needsMrfWrite());

    // R2 read twice by one instruction: two uses.
    const ValueInstance *v2 = a.valueAt(1);
    ASSERT_NE(v2, nullptr);
    EXPECT_EQ(v2->uses.size(), 2u);

    // R3 consumed by the store: shared-datapath use.
    const ValueInstance *v3 = a.valueAt(2);
    ASSERT_NE(v3, nullptr);
    ASSERT_EQ(v3->uses.size(), 1u);
    EXPECT_TRUE(v3->uses[0].shared);
    EXPECT_TRUE(v3->hasSharedConsumer());
}

TEST(Instances, DeadValueHasNoUsesAndNoLiveOut)
{
    Analyzed a(R"(.kernel dead
entry:
    iadd R1, R0, #1
    iadd R2, R0, #2
    st.global [R0], R2
    exit
)");
    const ValueInstance *v = a.valueAt(0);
    ASSERT_NE(v, nullptr);
    EXPECT_TRUE(v->uses.empty());
    EXPECT_FALSE(v->liveOut);
}

TEST(Instances, LiveOutAcrossStrandBoundary)
{
    Analyzed a(R"(.kernel lo
entry:
    iadd R1, R0, #1
    ld.global R2, [R0]
    iadd R3, R2, R1
    exit
)");
    // Strand 1 = {iadd R1, ld}, strand 2 = {iadd R3}. R1's use sits in
    // strand 2, so R1 is live out of strand 1 and its read is part of
    // a read instance.
    ASSERT_EQ(a.strands, 2);
    const ValueInstance *v1 = a.valueAt(0);
    ASSERT_NE(v1, nullptr);
    EXPECT_TRUE(v1->uses.empty());
    EXPECT_TRUE(v1->liveOut);
    const ReadInstance *r1 = a.readOf(1);
    ASSERT_NE(r1, nullptr);
    EXPECT_EQ(r1->uses.size(), 1u);
}

TEST(Instances, LongLatencyProducerIsPinned)
{
    Analyzed a(R"(.kernel ll
entry:
    ld.global R1, [R0]
    iadd R2, R1, #1
    exit
)");
    const ValueInstance *v = a.valueAt(0);
    ASSERT_NE(v, nullptr);
    EXPECT_TRUE(v->uses.empty());
    EXPECT_TRUE(v->liveOut);
}

TEST(Instances, Figure10aMixedReachPinsTheRead)
{
    // R1 written before the strand and on one side of a hammock; the
    // merge read is ambiguous and must stay on the MRF.
    Analyzed a(R"(.kernel f10a
bb6:
    setlt R2, R0, #4
    @R2 bra bb8
bb7:
    iadd R1, R0, #7
bb8:
    iadd R3, R1, #1
    st.global [R0], R3
    exit
)");
    ASSERT_EQ(a.strands, 1);
    const ValueInstance *v = a.valueAt(2);
    ASSERT_NE(v, nullptr);
    EXPECT_TRUE(v->uses.empty());
    ASSERT_EQ(v->mrfPinnedUses.size(), 1u);
    EXPECT_TRUE(v->needsMrfWrite());
    // The ambiguous read is not a read-operand candidate either.
    EXPECT_EQ(a.readOf(1), nullptr);
}

TEST(Instances, Figure10bExtraReadOnOneSide)
{
    // As 10(a), but R1 is also read inside bb7 right after its write:
    // that read is servable; the merge read stays pinned.
    Analyzed a(R"(.kernel f10b
bb6:
    setlt R2, R0, #4
    @R2 bra bb8
bb7:
    iadd R1, R0, #7
    iadd R4, R1, #1
bb8:
    iadd R3, R1, #1
    st.global [R0], R3
    exit
)");
    const ValueInstance *v = a.valueAt(2);
    ASSERT_NE(v, nullptr);
    ASSERT_EQ(v->uses.size(), 1u);
    EXPECT_EQ(v->uses[0].lin, 3);
    EXPECT_EQ(v->mrfPinnedUses.size(), 1u);
    EXPECT_TRUE(v->needsMrfWrite());
}

TEST(Instances, Figure10cHammockGroup)
{
    // R1 written on both sides and read at the merge: one grouped
    // instance with two defs; all accesses can use the ORF.
    Analyzed a(R"(.kernel f10c
bb6:
    setlt R2, R0, #4
    @R2 bra bb8
bb7:
    iadd R1, R0, #7
    bra bb9
bb8:
    iadd R1, R0, #8
bb9:
    iadd R3, R1, #1
    st.global [R0], R3
    exit
)");
    const ValueInstance *v = a.valueAt(2);
    ASSERT_NE(v, nullptr);
    ASSERT_EQ(v->defLins.size(), 2u);
    EXPECT_EQ(v->defLins[0], 2);
    EXPECT_EQ(v->defLins[1], 4);
    ASSERT_EQ(v->uses.size(), 1u);
    EXPECT_TRUE(v->mrfPinnedUses.empty());
    EXPECT_FALSE(v->liveOut);
    EXPECT_FALSE(v->needsMrfWrite());
}

TEST(Instances, ReadInstanceCollectsBoundaryReads)
{
    Analyzed a(R"(.kernel ro
entry:
    iadd R1, R0, #1
    iadd R2, R0, R1
    iadd R3, R0, R2
    st.global [R0], R3
    exit
)");
    // R0 is live-in and read four times (plus the store address).
    const ReadInstance *r = a.readOf(0);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->uses.size(), 4u);
    EXPECT_EQ(r->firstUseLin(), 0);
    EXPECT_EQ(r->lastUseLin(), 3);
}

TEST(Instances, ReadInstanceSplitByRedefinition)
{
    Analyzed a(R"(.kernel split
entry:
    iadd R1, R0, #1
    iadd R0, R0, #2
    iadd R2, R0, #3
    st.global [R2], R1
    exit
)");
    // The boundary read of R0 at lin0/lin1 is one instance; after the
    // redefinition the read at lin2 belongs to the new value instance.
    const ReadInstance *r = a.readOf(0);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->uses.size(), 2u);
    const ValueInstance *v = a.valueAt(1);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->uses.size(), 1u);
}

TEST(Instances, ReadInstanceAnchorMustDominate)
{
    // Boundary reads of R0 happen on both hammock sides; the merge
    // read cannot rely on either deposit, so it anchors a separate
    // instance.
    Analyzed a(R"(.kernel dom
bb1:
    setlt R2, R0, #4
    @R2 bra bbe
bbt:
    iadd R3, R0, #1
    bra bbm
bbe:
    iadd R4, R0, #2
bbm:
    iadd R5, R0, #3
    st.global [R0], R5
    exit
)");
    // Instances anchored at the bb1 read survive the merge only if
    // every path passes the anchor; the bb1 read (lin 0) dominates
    // everything, so one instance should hold all of R0's reads.
    const ReadInstance *r = a.readOf(0);
    ASSERT_NE(r, nullptr);
    EXPECT_GE(r->uses.size(), 4u);
}

TEST(Instances, ReadInstanceAnchorBrokenByDisjointPaths)
{
    // No read before the split: each hammock side anchors its own
    // instance and the merge read anchors a third.
    Analyzed a(R"(.kernel dom2
bb1:
    setlt R2, R1, #4
    @R2 bra bbe
bbt:
    iadd R3, R0, #1
    bra bbm
bbe:
    iadd R4, R0, #2
bbm:
    iadd R5, R0, #3
    exit
)");
    int instances_of_r0 = 0;
    for (const auto &ri : a.reads)
        if (ri.reg == 0)
            instances_of_r0++;
    EXPECT_EQ(instances_of_r0, 3);
}

TEST(Instances, WideValueIsOneInstance)
{
    Analyzed a(R"(.kernel w
entry:
    imul.wide R2, R0, #8
    iadd R4, R2, #1
    iadd R5, R3, #1
    st.global [R0], R4
    st.global [R0], R5
    exit
)");
    const ValueInstance *v = a.valueAt(0);
    ASSERT_NE(v, nullptr);
    EXPECT_TRUE(v->wide);
    EXPECT_EQ(v->width(), 2);
    EXPECT_EQ(v->reg, 2);
    EXPECT_EQ(v->uses.size(), 2u);
}

TEST(Instances, SharedProducerFlagged)
{
    Analyzed a(R"(.kernel sp
entry:
    ld.shared R1, [R0]
    sin R2, R1
    fadd R3, R2, R2
    st.global [R0], R3
    exit
)");
    EXPECT_TRUE(a.valueAt(0)->sharedProducer);  // MEM
    EXPECT_TRUE(a.valueAt(1)->sharedProducer);  // SFU
    EXPECT_FALSE(a.valueAt(2)->sharedProducer); // ALU
}

TEST(Instances, LoopCarriedValueIsLiveOut)
{
    Analyzed a(R"(.kernel lc
entry:
    mov R1, #5
loop:
    isub R1, R1, #1
    setgt R2, R1, #0
    @R2 bra loop
out:
    st.global [R0], R1
    exit
)");
    // The isub def of R1 is read next iteration (across the backward
    // edge) and in "out": live out of its strand.
    const ValueInstance *v = a.valueAt(1);
    ASSERT_NE(v, nullptr);
    EXPECT_TRUE(v->liveOut);
    // Its in-strand uses (setgt read) are still servable.
    ASSERT_GE(v->uses.size(), 1u);
}

} // namespace
} // namespace rfh
