/**
 * @file
 * Unit tests for strand formation (Section 4.1), including the
 * Figure 5(a) and 5(b) scenarios.
 */

#include <gtest/gtest.h>

#include "compiler/strand.h"
#include "ir/parser.h"

namespace rfh {
namespace {

StrandAnalysis
analyze(Kernel &k, StrandOptions opts = {})
{
    Cfg cfg(k);
    StrandAnalysis sa(k, cfg, opts);
    sa.markEndOfStrand(k);
    return sa;
}

TEST(Strand, StraightLineNoLongLatencyIsOneStrand)
{
    Kernel k = parseKernelOrDie(R"(.kernel s
entry:
    iadd R1, R0, #1
    iadd R2, R1, #2
    st.shared [R0], R2
    exit
)");
    StrandAnalysis sa = analyze(k);
    EXPECT_EQ(sa.numStrands(), 1);
    EXPECT_TRUE(k.instr(3).endOfStrand);
    EXPECT_FALSE(k.instr(0).endOfStrand);
}

TEST(Strand, LongLatencyConsumerEndsStrand)
{
    Kernel k = parseKernelOrDie(R"(.kernel s
entry:
    ld.global R1, [R0]
    iadd R2, R0, #1
    iadd R3, R1, #2
    exit
)");
    StrandAnalysis sa = analyze(k);
    // The consumer of R1 (lin 2) begins a new strand; the independent
    // iadd at lin 1 stays in the first strand.
    ASSERT_EQ(sa.numStrands(), 2);
    EXPECT_EQ(sa.strandOf(0), 0);
    EXPECT_EQ(sa.strandOf(1), 0);
    EXPECT_EQ(sa.strandOf(2), 1);
    EXPECT_EQ(sa.strand(0).endReason, StrandEndReason::LONG_LATENCY);
    EXPECT_TRUE(k.instr(1).endOfStrand);
}

TEST(Strand, OverwriteOfPendingDestAlsoEndsStrand)
{
    Kernel k = parseKernelOrDie(R"(.kernel s
entry:
    ld.global R1, [R0]
    iadd R1, R0, #1
    exit
)");
    StrandAnalysis sa = analyze(k);
    ASSERT_EQ(sa.numStrands(), 2);
    EXPECT_EQ(sa.strandOf(1), 1);
}

TEST(Strand, BackwardBranchEndsStrand)
{
    Kernel k = parseKernelOrDie(R"(.kernel s
entry:
    mov R1, #4
loop:
    isub R1, R1, #1
    setgt R2, R1, #0
    @R2 bra loop
out:
    exit
)");
    StrandAnalysis sa = analyze(k);
    // Strands: entry | loop body | exit.
    ASSERT_EQ(sa.numStrands(), 3);
    EXPECT_EQ(sa.strand(0).endReason, StrandEndReason::BACKWARD_TARGET);
    EXPECT_EQ(sa.strand(1).endReason, StrandEndReason::BACKWARD_BRANCH);
    // The backward branch carries the end-of-strand bit.
    EXPECT_TRUE(k.instr(3).endOfStrand);
}

TEST(Strand, DisablingBackwardCutsMergesLoop)
{
    Kernel k = parseKernelOrDie(R"(.kernel s
entry:
    mov R1, #4
loop:
    isub R1, R1, #1
    setgt R2, R1, #0
    @R2 bra loop
out:
    exit
)");
    StrandOptions opts;
    opts.cutAtBackwardBranch = false;
    StrandAnalysis sa = analyze(k, opts);
    EXPECT_EQ(sa.numStrands(), 1);
}

TEST(Strand, Figure5aShape)
{
    // Figure 5(a): a load feeding a later read inside a loop nest
    // produces strand endpoints at the consumer, at backward branches,
    // and at backward-branch targets.
    Kernel k = parseKernelOrDie(R"(.kernel fig5a
bb1:
    ld.global R1, [R0]
    iadd R2, R1, #0
bb2:
    iadd R3, R2, #1
bb3:
    isub R3, R3, #1
    setgt R4, R3, #0
    @R4 bra bb3
bb4:
    setgt R5, R2, #0
    @R5 bra bb2
bb5:
    exit
)");
    StrandAnalysis sa = analyze(k);
    // Strand 1 ends before the read of R1; bb2 and bb3 are backward
    // targets; the loop-back branches end strands.
    EXPECT_GE(sa.numStrands(), 4);
    EXPECT_EQ(sa.strand(0).endReason, StrandEndReason::LONG_LATENCY);
    // bb3's start must open a strand (backward target).
    int bb3_start = k.blockStart(3);
    EXPECT_EQ(sa.strand(sa.strandOf(bb3_start)).firstLin, bb3_start);
}

TEST(Strand, Figure5bUncertainMergeCut)
{
    // Figure 5(b): a load on only one side of a hammock makes the
    // pending state at the merge uncertain; an endpoint is inserted at
    // the merge block.
    Kernel k = parseKernelOrDie(R"(.kernel fig5b
bb1:
    setlt R2, R0, #4
    @R2 bra bb4
bb3:
    ld.global R1, [R0]
bb4:
    iadd R3, R0, #1
    iadd R4, R1, #1
    exit
)");
    StrandAnalysis sa = analyze(k);
    int bb4_start = k.blockStart(2);
    // bb4 begins a strand due to the uncertain merge.
    EXPECT_EQ(sa.strand(sa.strandOf(bb4_start)).firstLin, bb4_start);
    bool merge_cut = false;
    for (const Strand &s : sa.strands())
        merge_cut |= s.endReason == StrandEndReason::MERGE_UNCERTAIN;
    EXPECT_TRUE(merge_cut);
}

TEST(Strand, Figure5bCutDisabledFallsBackToConsumer)
{
    Kernel k = parseKernelOrDie(R"(.kernel fig5b
bb1:
    setlt R2, R0, #4
    @R2 bra bb4
bb3:
    ld.global R1, [R0]
bb4:
    iadd R3, R0, #1
    iadd R4, R1, #1
    exit
)");
    StrandOptions opts;
    opts.cutAtUncertainMerge = false;
    StrandAnalysis sa = analyze(k, opts);
    // Without the merge rule the cut lands exactly before the consumer
    // of R1.
    int consumer = k.blockStart(2) + 1;
    EXPECT_EQ(sa.strand(sa.strandOf(consumer)).firstLin, consumer);
}

TEST(Strand, ConsistentMergeDoesNotCut)
{
    // Loads on BOTH sides of the hammock writing the same register:
    // the pending state agrees at the merge, so no extra endpoint.
    Kernel k = parseKernelOrDie(R"(.kernel sym
bb1:
    setlt R2, R0, #4
    @R2 bra bbe
bbt:
    ld.global R1, [R0]
    bra bbm
bbe:
    ld.global R1, [R0]
bbm:
    iadd R3, R0, #1
    iadd R4, R1, #1
    exit
)");
    StrandAnalysis sa = analyze(k);
    for (const Strand &s : sa.strands())
        EXPECT_NE(s.endReason, StrandEndReason::MERGE_UNCERTAIN);
    // The cut still happens before the consumer of R1.
    int consumer = k.blockStart(3) + 1;
    EXPECT_EQ(sa.strand(sa.strandOf(consumer)).firstLin, consumer);
}

TEST(Strand, MediumLatencyDoesNotCut)
{
    Kernel k = parseKernelOrDie(R"(.kernel m
entry:
    ld.shared R1, [R0]
    iadd R2, R1, #1
    sin R3, R2
    fadd R4, R3, R3
    exit
)");
    StrandAnalysis sa = analyze(k);
    EXPECT_EQ(sa.numStrands(), 1);
}

TEST(Strand, StrandsAreContiguousAndCoverKernel)
{
    Kernel k = parseKernelOrDie(R"(.kernel cover
entry:
    ld.global R1, [R0]
    iadd R2, R1, #1
loop:
    isub R2, R2, #1
    ld.global R3, [R0]
    iadd R4, R3, #1
    setgt R5, R2, #0
    @R5 bra loop
out:
    st.global [R0], R4
    exit
)");
    StrandAnalysis sa = analyze(k);
    int covered = 0;
    int prev_end = -1;
    for (const Strand &s : sa.strands()) {
        EXPECT_EQ(s.firstLin, prev_end + 1);
        prev_end = s.lastLin;
        covered += s.size();
        for (int lin = s.firstLin; lin <= s.lastLin; lin++)
            EXPECT_EQ(sa.strandOf(lin),
                      sa.strandOf(s.firstLin));
    }
    EXPECT_EQ(covered, k.numInstrs());
    EXPECT_EQ(prev_end, k.numInstrs() - 1);
}

TEST(Strand, EveryStrandEndCarriesTheBit)
{
    Kernel k = parseKernelOrDie(R"(.kernel bits
entry:
    ld.global R1, [R0]
    iadd R2, R1, #1
    st.global [R0], R2
    exit
)");
    StrandAnalysis sa = analyze(k);
    for (const Strand &s : sa.strands())
        EXPECT_TRUE(k.instr(s.lastLin).endOfStrand) << s.lastLin;
}

} // namespace
} // namespace rfh
