/**
 * @file
 * Tests for the SM performance simulator: latency hiding, the
 * two-level scheduler, and the "no loss with 8 active warps" claim.
 */

#include <gtest/gtest.h>

#include "ir/parser.h"
#include "sim/perf_sim.h"
#include "sim/trace.h"
#include "workloads/registry.h"

namespace rfh {
namespace {

Kernel
aluLoop()
{
    return parseKernelOrDie(R"(.kernel alu
entry:
    mov R1, #64
    mov R2, #0
body:
    iadd R2, R2, R1
    xor R3, R2, R1
    iadd R2, R2, R3
    isub R1, R1, #1
    setgt R4, R1, #0
    @R4 bra body
out:
    st.global [R0], R2
    exit
)");
}

Kernel
memLoop()
{
    return parseKernelOrDie(R"(.kernel mem
entry:
    mov R1, #32
    mov R2, #0
body:
    ld.global R3, [R0]
    iadd R2, R2, R3
    iadd R0, R0, #4
    isub R1, R1, #1
    setgt R4, R1, #0
    @R4 bra body
out:
    st.global [R0], R2
    exit
)");
}

TEST(PerfSim, MoreWarpsHideAluLatency)
{
    PerfConfig one;
    one.numWarps = 1;
    one.activeWarps = 1;
    PerfConfig eight;
    eight.numWarps = 8;
    eight.activeWarps = 8;
    Kernel k = aluLoop();
    PerfResult r1 = runPerfSim(k, one);
    PerfResult r8 = runPerfSim(k, eight);
    EXPECT_GT(r8.ipc(), 2.0 * r1.ipc());
    // With dependent ALU chains (8-cycle latency), 8 warps approach
    // full issue throughput.
    EXPECT_GT(r8.ipc(), 0.8);
}

TEST(PerfSim, SingleWarpBoundByDependencies)
{
    PerfConfig cfg;
    cfg.numWarps = 1;
    cfg.activeWarps = 1;
    PerfResult r = runPerfSim(aluLoop(), cfg);
    // A single warp cannot exceed 1/latency-ish IPC on a dependent
    // chain.
    EXPECT_LT(r.ipc(), 0.5);
    EXPECT_GT(r.ipc(), 0.0);
}

TEST(PerfSim, TwoLevelMatchesFlatWithEightActive)
{
    for (Kernel k : {aluLoop(), memLoop()}) {
        PerfConfig flat;
        flat.numWarps = 32;
        flat.activeWarps = 32;
        PerfConfig two;
        two.numWarps = 32;
        two.activeWarps = 8;
        PerfResult rf = runPerfSim(k, flat);
        PerfResult rt = runPerfSim(k, two);
        EXPECT_GT(rt.ipc(), 0.95 * rf.ipc()) << k.name;
    }
}

TEST(PerfSim, TooFewActiveWarpsHurtMemoryBound)
{
    Kernel k = memLoop();
    PerfConfig two;
    two.numWarps = 32;
    two.activeWarps = 2;
    // Disable swapping benefit by... two-level still works; compare
    // against totally flat 2-warp machine instead.
    PerfConfig tiny;
    tiny.numWarps = 2;
    tiny.activeWarps = 2;
    PerfResult r_two = runPerfSim(k, two);
    PerfResult r_tiny = runPerfSim(k, tiny);
    // The two-level scheduler with 32 resident warps beats a 2-warp
    // machine by swapping during DRAM stalls.
    EXPECT_GT(r_two.ipc(), 1.5 * r_tiny.ipc());
}

TEST(PerfSim, DeschedulesHappenOnLongLatency)
{
    PerfConfig cfg;
    cfg.numWarps = 16;
    cfg.activeWarps = 4;
    PerfResult r = runPerfSim(memLoop(), cfg);
    EXPECT_GT(r.deschedules, 0u);
}

TEST(PerfSim, AllWarpsRunToCompletion)
{
    PerfConfig cfg;
    cfg.numWarps = 8;
    cfg.activeWarps = 4;
    Kernel k = aluLoop();
    PerfResult r = runPerfSim(k, cfg);
    // Each warp executes the same instruction count (uniform control
    // flow in this kernel).
    PerfConfig one;
    one.numWarps = 1;
    one.activeWarps = 1;
    PerfResult r1 = runPerfSim(k, one);
    EXPECT_EQ(r.instructions, 8 * r1.instructions);
}

TEST(PerfSim, WorksOnRealWorkloads)
{
    const Workload &w = workloadByName("scalarprod");
    PerfConfig cfg;
    PerfResult r = runPerfSim(w.kernel, cfg);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.ipc(), 0.0);
    EXPECT_LE(r.ipc(), 1.0);
}

TEST(PerfSim, DeterministicCycleForCycle)
{
    // The staged engine behind this API is fully deterministic: two
    // identical runs agree on every field, not just within a band.
    PerfConfig cfg;
    cfg.numWarps = 16;
    cfg.activeWarps = 4;
    for (Kernel k : {aluLoop(), memLoop()}) {
        PerfResult a = runPerfSim(k, cfg);
        PerfResult b = runPerfSim(k, cfg);
        EXPECT_EQ(a.cycles, b.cycles) << k.name;
        EXPECT_EQ(a.instructions, b.instructions) << k.name;
        EXPECT_EQ(a.deschedules, b.deschedules) << k.name;
    }
}

TEST(PerfSim, TraceReplayMatchesLiveForUniformControlFlow)
{
    // aluLoop's path is warp-invariant, so replaying one recorded
    // trace must time exactly like live execution — the decoded
    // streams the pipeline sees are identical.
    Kernel k = aluLoop();
    PerfConfig cfg;
    cfg.numWarps = 8;
    cfg.activeWarps = 4;
    KernelTrace trace = recordTrace(k, RunConfig{8, 1u << 18});
    PerfResult live = runPerfSim(k, cfg);
    PerfResult replay = runPerfSimFromTrace(k, trace, cfg);
    EXPECT_EQ(replay.instructions, live.instructions);
    EXPECT_EQ(replay.cycles, live.cycles);
    EXPECT_EQ(replay.deschedules, live.deschedules);
}

TEST(PerfSim, EightWarpsApproachFullIssueBandwidth)
{
    // Dependent-chain period is latency+1 in the staged pipeline, so
    // 8 warps on the 8-cycle ALU sustain ~8/9 IPC; one warp gets the
    // reciprocal share.
    Kernel k = aluLoop();
    PerfConfig one;
    one.numWarps = 1;
    one.activeWarps = 1;
    PerfConfig eight;
    eight.numWarps = 8;
    eight.activeWarps = 8;
    PerfResult r1 = runPerfSim(k, one);
    PerfResult r8 = runPerfSim(k, eight);
    EXPECT_GT(r8.ipc(), 0.8);
    EXPECT_LE(r8.ipc(), 1.0);
    EXPECT_LT(r1.ipc(), 0.35);
}

} // namespace
} // namespace rfh
