/**
 * @file
 * Tests for the core experiment/report/sweep API and the per-strand
 * variable allocation plumbing.
 */

#include <gtest/gtest.h>

#include "compiler/allocator.h"
#include "core/experiment.h"
#include "core/report.h"
#include "core/sweep.h"
#include "ir/parser.h"

namespace rfh {
namespace {

TEST(Experiment, SchemeNames)
{
    EXPECT_EQ(schemeName(Scheme::BASELINE), "Baseline");
    EXPECT_EQ(schemeName(Scheme::HW_TWO_LEVEL), "HW");
    EXPECT_EQ(schemeName(Scheme::SW_THREE_LEVEL), "SW LRF");
}

TEST(Experiment, AllocOptionsDerivation)
{
    ExperimentConfig cfg;
    cfg.scheme = Scheme::SW_THREE_LEVEL;
    cfg.entries = 5;
    cfg.splitLRF = true;
    AllocOptions a = cfg.allocOptions();
    EXPECT_EQ(a.orfEntries, 5);
    EXPECT_TRUE(a.useLRF);
    EXPECT_TRUE(a.splitLRF);

    cfg.scheme = Scheme::SW_TWO_LEVEL;
    a = cfg.allocOptions();
    EXPECT_FALSE(a.useLRF);
    EXPECT_FALSE(a.splitLRF);
}

TEST(Experiment, BaselineSchemeIsIdentity)
{
    ExperimentConfig cfg;
    cfg.scheme = Scheme::BASELINE;
    RunOutcome o = runScheme(workloadByName("vectoradd"), cfg);
    ASSERT_TRUE(o.ok());
    EXPECT_DOUBLE_EQ(o.normalizedEnergy(), 1.0);
    EXPECT_EQ(o.counts.totalReads(Level::ORF), 0u);
    EXPECT_EQ(o.counts.totalReads(Level::LRF), 0u);
}

TEST(Experiment, PricingOverrideChangesEnergyOnly)
{
    ExperimentConfig a;
    a.scheme = Scheme::SW_THREE_LEVEL;
    a.entries = 8;
    ExperimentConfig b = a;
    b.orfPriceEntries = 3;
    const Workload &w = workloadByName("matrixmul");
    RunOutcome oa = runScheme(w, a);
    RunOutcome ob = runScheme(w, b);
    ASSERT_TRUE(oa.ok());
    ASSERT_TRUE(ob.ok());
    // Cheaper pricing produces lower energy and also changes what the
    // allocator finds profitable, so ORF traffic can only grow.
    EXPECT_LT(ob.energyPJ, oa.energyPJ);
    EXPECT_GE(ob.counts.totalReads(Level::ORF),
              oa.counts.totalReads(Level::ORF));
}

TEST(Experiment, AggregationSumsWorkloads)
{
    ExperimentConfig cfg;
    cfg.scheme = Scheme::SW_TWO_LEVEL;
    RunOutcome agg = runAllWorkloads(cfg);
    ASSERT_TRUE(agg.ok()) << agg.error;
    std::uint64_t instr_sum = 0;
    for (const Workload &w : allWorkloads())
        instr_sum += runScheme(w, cfg).counts.instructions;
    EXPECT_EQ(agg.counts.instructions, instr_sum);
}

TEST(Report, NormalizeAccesses)
{
    AccessCounts base;
    base.read(Level::MRF, Datapath::PRIVATE, 100);
    base.write(Level::MRF, Datapath::PRIVATE, 50);
    AccessCounts c;
    c.read(Level::MRF, Datapath::PRIVATE, 40);
    c.read(Level::ORF, Datapath::PRIVATE, 50);
    c.read(Level::LRF, Datapath::PRIVATE, 10);
    c.write(Level::ORF, Datapath::SHARED, 25);
    AccessBreakdown b = normalizeAccesses(c, base);
    EXPECT_DOUBLE_EQ(b.mrfReads, 0.40);
    EXPECT_DOUBLE_EQ(b.orfReads, 0.50);
    EXPECT_DOUBLE_EQ(b.lrfReads, 0.10);
    EXPECT_DOUBLE_EQ(b.totalReads(), 1.0);
    EXPECT_DOUBLE_EQ(b.orfWrites, 0.50);
    EXPECT_DOUBLE_EQ(b.mrfWrites, 0.0);
}

TEST(Report, TextTableAlignment)
{
    TextTable t({"A", "Longer"});
    t.addRow({"xx", "y"});
    std::string s = t.str();
    EXPECT_NE(s.find("A   Longer"), std::string::npos);
    EXPECT_NE(s.find("xx  y"), std::string::npos);
    EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Report, Formatting)
{
    EXPECT_EQ(pct(0.5425), "54.2%");
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(2.0, 3), "2.000");
}

TEST(Sweep, CoversAllSizesAndSchemes)
{
    // Single-workload-scale sweep would still run the whole suite;
    // use bestPoint plumbing on a synthetic points vector instead.
    std::vector<SweepPoint> pts;
    for (int e = 1; e <= 3; e++) {
        SweepPoint p;
        p.scheme = Scheme::SW_TWO_LEVEL;
        p.entries = e;
        p.outcome.energyPJ = 10.0 - e + (e == 3 ? 2.0 : 0.0);
        p.outcome.baselineEnergyPJ = 10.0;
        pts.push_back(p);
    }
    const SweepPoint *best = bestPoint(pts, Scheme::SW_TWO_LEVEL);
    ASSERT_NE(best, nullptr);
    EXPECT_EQ(best->entries, 2);
    EXPECT_EQ(bestPoint(pts, Scheme::HW_TWO_LEVEL), nullptr);
}

TEST(VariableAllocation, PerStrandBudgetsRespected)
{
    Kernel k = parseKernelOrDie(R"(.kernel vb
entry:
    iadd R1, R0, #1
    iadd R2, R0, #2
    iadd R3, R1, R2
    ld.global R4, [R0]
    iadd R5, R4, #1
    iadd R6, R0, #3
    iadd R7, R5, R6
    st.shared [R0], R7
    st.shared [R0], R3
    exit
)");
    AllocOptions opts;
    opts.orfEntries = 8;
    // Strand 0 may use one entry, strand 1 two.
    opts.perStrandEntries = {1, 2};
    HierarchyAllocator alloc(EnergyParams{}, opts);
    alloc.run(k);

    Cfg cfg(k);
    StrandAnalysis sa(k, cfg, opts.strandOptions);
    for (int lin = 0; lin < k.numInstrs(); lin++) {
        const Instruction &in = k.instr(lin);
        int strand = sa.strandOf(lin);
        int budget = strand < 2 ? opts.perStrandEntries[strand] : 8;
        if (in.writeAnno.toORF) {
            EXPECT_LT(in.writeAnno.orfEntry, budget) << lin;
        }
        for (int s = 0; s < kMaxSrcs; s++) {
            if (in.readAnno[s].level == Level::ORF ||
                in.readAnno[s].depositToORF) {
                EXPECT_LT(in.readAnno[s].entry, budget) << lin;
            }
        }
    }
}

TEST(VariableAllocation, BiggerBudgetNeverHurtsCapture)
{
    Kernel base_kernel = workloadByName("nbody").kernel;
    AllocOptions small;
    small.orfEntries = 8;
    small.orfPriceEntries = 3;
    small.perStrandEntries = {1, 1, 1, 1, 1, 1, 1, 1};
    AllocOptions large = small;
    large.perStrandEntries = {8, 8, 8, 8, 8, 8, 8, 8};
    Kernel ks = base_kernel, kl = base_kernel;
    HierarchyAllocator as(EnergyParams{}, small);
    HierarchyAllocator al(EnergyParams{}, large);
    AllocStats ss = as.run(ks);
    AllocStats sl = al.run(kl);
    EXPECT_GE(sl.predictedSavingsPJ, ss.predictedSavingsPJ);
}

} // namespace
} // namespace rfh
