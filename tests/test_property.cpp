/**
 * @file
 * Property-based tests: randomly generated kernels, swept across
 * hierarchy configurations, must always execute verification-clean
 * through the software hierarchy (bit-exact values, valid entries,
 * level restrictions) and must keep the executors' accounting
 * consistent with the baseline.
 *
 * These parameterised sweeps are the library's main defence against
 * allocator corner cases: every combination exercises strand flushes,
 * hammocks, partial ranges, deposits, and LRF restrictions on fresh
 * random code.
 */

#include <gtest/gtest.h>

#include "compiler/allocator.h"
#include "compiler/regalloc.h"
#include "compiler/scheduler.h"
#include "sim/baseline_exec.h"
#include "sim/hw_cache.h"
#include "sim/sw_exec.h"
#include "workloads/synthetic.h"

namespace rfh {
namespace {

struct PropertyCase
{
    std::uint64_t seed;
    int orfEntries;
    bool useLRF;
    bool splitLRF;
    bool partialRanges;
    bool readOperands;
};

void
PrintTo(const PropertyCase &c, std::ostream *os)
{
    *os << "seed=" << c.seed << " orf=" << c.orfEntries
        << (c.useLRF ? (c.splitLRF ? " splitLRF" : " LRF") : "")
        << (c.partialRanges ? " partial" : "")
        << (c.readOperands ? " readops" : "");
}

SynthParams
paramsFor(std::uint64_t seed)
{
    SynthParams p;
    p.seed = seed;
    // Vary the structural knobs with the seed to cover more shapes.
    p.strandsPerBody = 1 + static_cast<int>(seed % 3);
    p.opsPerStrand = 4 + static_cast<int>(seed % 11);
    p.loadsPerStrand = 1 + static_cast<int>(seed % 3);
    p.pHammock = (seed % 4) * 0.25;
    p.fracSfu = (seed % 5) * 0.05;
    p.recencyWindow = 2 + static_cast<int>(seed % 5);
    p.loopIters = 4 + static_cast<int>(seed % 8);
    p.useTex = seed % 7 == 0;
    return p;
}

class HierarchyProperty : public ::testing::TestWithParam<PropertyCase>
{
};

TEST_P(HierarchyProperty, SwExecutionVerifiesClean)
{
    const PropertyCase &c = GetParam();
    Kernel k = generateSynthetic("prop", paramsFor(c.seed));
    ASSERT_EQ(k.validate(), "");

    AllocOptions opts;
    opts.orfEntries = c.orfEntries;
    opts.useLRF = c.useLRF;
    opts.splitLRF = c.splitLRF;
    opts.partialRanges = c.partialRanges;
    opts.readOperands = c.readOperands;
    HierarchyAllocator alloc(EnergyParams{}, opts);
    alloc.run(k);

    SwExecConfig cfg;
    cfg.run.numWarps = 3;
    SwExecResult r = runSwHierarchy(k, opts, cfg);
    EXPECT_TRUE(r.ok()) << r.error;

    // Demand reads must exactly match the baseline (the hierarchy
    // never adds or loses operand reads).
    RunConfig rc;
    rc.numWarps = 3;
    AccessCounts base = runBaseline(k, rc);
    EXPECT_EQ(r.counts.allReads(), base.allReads());
    EXPECT_EQ(r.counts.instructions, base.instructions);
    // Every written value lands somewhere.
    EXPECT_GE(r.counts.allWrites(), base.allWrites());
    // The shared datapath never touches the LRF.
    EXPECT_EQ(r.counts.reads[static_cast<int>(Level::LRF)][
                  static_cast<int>(Datapath::SHARED)], 0u);
    EXPECT_EQ(r.counts.writes[static_cast<int>(Level::LRF)][
                  static_cast<int>(Datapath::SHARED)], 0u);
}

TEST_P(HierarchyProperty, HwCacheAccountingConsistent)
{
    const PropertyCase &c = GetParam();
    Kernel k = generateSynthetic("prop", paramsFor(c.seed));
    HwCacheConfig cfg;
    cfg.rfcEntries = c.orfEntries;
    cfg.useLRF = c.useLRF;
    cfg.run.numWarps = 2;
    AccessCounts hw = runHwCache(k, cfg);
    RunConfig rc;
    rc.numWarps = 2;
    AccessCounts base = runBaseline(k, rc);
    // Demand reads equal baseline; writebacks only add traffic.
    EXPECT_EQ(hw.allReads() - hw.wbReads, base.allReads());
    EXPECT_EQ(hw.instructions, base.instructions);
    EXPECT_GE(hw.allWrites(), base.allWrites());
    // Every MRF write is either a demand write (long-latency results)
    // or a writeback.
    EXPECT_GE(hw.totalWrites(Level::MRF), hw.wbWrites);
    // Writeback reads and writes pair up except for LRF->RFC spills,
    // which read the LRF without writing the MRF.
    EXPECT_GE(hw.wbReads, hw.wbWrites);
}

TEST_P(HierarchyProperty, AllocatorIsDeterministic)
{
    const PropertyCase &c = GetParam();
    Kernel k1 = generateSynthetic("prop", paramsFor(c.seed));
    Kernel k2 = generateSynthetic("prop", paramsFor(c.seed));
    AllocOptions opts;
    opts.orfEntries = c.orfEntries;
    opts.useLRF = c.useLRF;
    opts.splitLRF = c.splitLRF;
    HierarchyAllocator alloc(EnergyParams{}, opts);
    AllocStats s1 = alloc.run(k1);
    AllocStats s2 = alloc.run(k2);
    EXPECT_EQ(s1.orfValuesFull, s2.orfValuesFull);
    EXPECT_EQ(s1.lrfValues, s2.lrfValues);
    EXPECT_DOUBLE_EQ(s1.predictedSavingsPJ, s2.predictedSavingsPJ);
    for (int lin = 0; lin < k1.numInstrs(); lin++) {
        EXPECT_TRUE(k1.instr(lin).writeAnno.toORF ==
                    k2.instr(lin).writeAnno.toORF);
        for (int s = 0; s < kMaxSrcs; s++)
            EXPECT_TRUE(k1.instr(lin).readAnno[s] ==
                        k2.instr(lin).readAnno[s]);
    }
}

std::vector<PropertyCase>
makeCases()
{
    std::vector<PropertyCase> cases;
    for (std::uint64_t seed = 1; seed <= 12; seed++) {
        cases.push_back({seed, 3, true, true, true, true});
        cases.push_back({seed, 1, false, false, true, true});
    }
    for (std::uint64_t seed = 13; seed <= 18; seed++) {
        cases.push_back({seed, 2, true, false, false, true});
        cases.push_back({seed, 8, true, true, true, false});
        cases.push_back({seed, 5, false, false, false, false});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomKernels, HierarchyProperty,
                         ::testing::ValuesIn(makeCases()));

TEST_P(HierarchyProperty, FullPipelineVerifiesClean)
{
    // The complete compilation pipeline on random code: reschedule,
    // register-allocate to a tight budget (inserting spills), run the
    // hierarchy allocator, then execute with bit-exact verification.
    const PropertyCase &c = GetParam();
    Kernel k = generateSynthetic("pipe", paramsFor(c.seed));
    scheduleKernel(k);
    RegAllocOptions ro;
    ro.numRegs = 10 + static_cast<int>(c.seed % 12);
    allocateRegisters(k, ro);
    ASSERT_EQ(k.validate(), "");

    AllocOptions opts;
    opts.orfEntries = c.orfEntries;
    opts.useLRF = c.useLRF;
    opts.splitLRF = c.splitLRF;
    opts.partialRanges = c.partialRanges;
    opts.readOperands = c.readOperands;
    HierarchyAllocator alloc(EnergyParams{}, opts);
    alloc.run(k);
    SwExecConfig cfg;
    cfg.run.numWarps = 2;
    SwExecResult r = runSwHierarchy(k, opts, cfg);
    EXPECT_TRUE(r.ok()) << r.error;
}

// ---- Sweep the allocator across every ORF size on fixed kernels ----

class EntriesSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(EntriesSweep, EveryWorkloadVerifiesClean)
{
    int entries = GetParam();
    AllocOptions opts;
    opts.orfEntries = entries;
    opts.useLRF = true;
    opts.splitLRF = true;
    for (std::uint64_t seed : {101u, 202u, 303u}) {
        Kernel k = generateSynthetic("sweep", paramsFor(seed));
        HierarchyAllocator alloc(EnergyParams{}, opts);
        alloc.run(k);
        SwExecConfig cfg;
        cfg.run.numWarps = 2;
        SwExecResult r = runSwHierarchy(k, opts, cfg);
        EXPECT_TRUE(r.ok()) << "seed " << seed << ": " << r.error;
    }
}

INSTANTIATE_TEST_SUITE_P(AllSizes, EntriesSweep,
                         ::testing::Range(1, kMaxOrfEntries + 1));

} // namespace
} // namespace rfh
