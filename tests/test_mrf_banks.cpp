/**
 * @file
 * Tests for the MRF banking / operand-collection model.
 */

#include <gtest/gtest.h>

#include "ir/parser.h"
#include "sim/mrf_banks.h"
#include "workloads/registry.h"

namespace rfh {
namespace {

TEST(MrfBanks, BankMapping)
{
    MrfBankConfig cfg;
    cfg.numBanks = 32;
    cfg.warpBankSwizzle = 1;
    EXPECT_EQ(bankOf(0, 0, cfg), 0);
    EXPECT_EQ(bankOf(31, 0, cfg), 31);
    EXPECT_EQ(bankOf(32, 0, cfg), 0);
    // The swizzle shifts different warps' registers apart.
    EXPECT_EQ(bankOf(0, 1, cfg), 1);
    EXPECT_EQ(bankOf(5, 3, cfg), 8);
}

TEST(MrfBanks, NoConflictsWithDistinctRegisters)
{
    Kernel k = parseKernelOrDie(R"(.kernel nc
entry:
    iadd R3, R1, R2
    st.global [R0], R3
    exit
)");
    MrfBankConfig cfg;
    cfg.run.numWarps = 2;
    MrfBankStats s = measureBankConflicts(k, cfg);
    EXPECT_EQ(s.conflictedInstructions, 0u);
    EXPECT_EQ(s.fetchCycles, s.instructions);
}

TEST(MrfBanks, SameRegisterTwiceConflicts)
{
    Kernel k = parseKernelOrDie(R"(.kernel c
entry:
    iadd R3, R1, R1
    st.global [R0], R3
    exit
)");
    MrfBankConfig cfg;
    cfg.run.numWarps = 1;
    MrfBankStats s = measureBankConflicts(k, cfg);
    EXPECT_EQ(s.conflictedInstructions, 1u);
    // The conflicting fetch costs two cycles.
    EXPECT_EQ(s.fetchCycles, s.instructions + 1);
}

TEST(MrfBanks, StrideOfBankCountConflicts)
{
    // R1 and R33 fall in the same bank with 32 banks.
    Kernel k = parseKernelOrDie(R"(.kernel stride
entry:
    iadd R3, R1, R33
    st.global [R0], R3
    exit
)");
    MrfBankConfig cfg;
    cfg.run.numWarps = 1;
    MrfBankStats wide = measureBankConflicts(k, cfg);
    EXPECT_EQ(wide.conflictedInstructions, 1u);
    cfg.numBanks = 16;
    MrfBankStats narrow = measureBankConflicts(k, cfg);
    EXPECT_EQ(narrow.conflictedInstructions, 1u);
}

TEST(MrfBanks, FewerBanksNeverFaster)
{
    const Workload &w = workloadByName("nbody");
    MrfBankConfig one;
    one.numBanks = 1;
    one.run = w.run;
    one.run.numWarps = 2;
    MrfBankConfig full = one;
    full.numBanks = 32;
    MrfBankStats a = measureBankConflicts(w.kernel, one);
    MrfBankStats b = measureBankConflicts(w.kernel, full);
    EXPECT_GE(a.fetchCycles, b.fetchCycles);
    EXPECT_GE(a.avgFetchCycles(), 1.0);
    EXPECT_EQ(a.instructions, b.instructions);
}

TEST(MrfBanks, OperandCountsMatchBaselineReads)
{
    const Workload &w = workloadByName("hotspot");
    MrfBankConfig cfg;
    cfg.run = w.run;
    cfg.run.numWarps = 2;
    MrfBankStats s = measureBankConflicts(w.kernel, cfg);
    RunConfig rc = cfg.run;
    AccessCounts base = runBaseline(w.kernel, rc);
    EXPECT_EQ(s.operandsFetched, base.allReads());
}

} // namespace
} // namespace rfh
