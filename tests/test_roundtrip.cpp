/**
 * @file
 * Parser/printer round-trip property tests and parser diagnostics.
 *
 * The printer emits parseable RPTX; the parser accepts it; printing
 * the re-parsed kernel reproduces the text byte for byte. The
 * property runs over every registry workload, every checked-in
 * example kernel, the fuzz corpus, and freshly generated fuzz
 * kernels, so any printer/parser drift fails immediately.
 *
 * The negative tests pin the parser's diagnostics — including the
 * reported line number — for the malformed inputs a human most
 * plausibly writes: duplicate labels, branches to undefined labels,
 * and branches without a target.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "ir/parser.h"
#include "ir/printer.h"
#include "verify/rptx_fuzz.h"
#include "workloads/registry.h"

namespace rfh {
namespace {

/** print -> parse -> print must be a fixpoint and stay valid. */
void
expectRoundTrip(const Kernel &k, const std::string &context)
{
    std::string once = printKernel(k);
    ParseResult r = parseKernel(once);
    ASSERT_TRUE(r.ok) << context << ": " << r.error << "\n" << once;
    EXPECT_EQ(r.kernel.validate(), "") << context;
    EXPECT_EQ(r.kernel.name, k.name) << context;
    EXPECT_EQ(r.kernel.numInstrs(), k.numInstrs()) << context;
    std::string twice = printKernel(r.kernel);
    EXPECT_EQ(once, twice) << context;
}

TEST(RoundTrip, RegistryWorkloads)
{
    for (const Workload &w : allWorkloads())
        expectRoundTrip(w.kernel, w.suite + "/" + w.name);
}

/** Every .rptx file under @p dir round-trips. */
int
roundTripDir(const std::filesystem::path &dir)
{
    int seen = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir)) {
        if (e.path().extension() != ".rptx")
            continue;
        std::ifstream in(e.path());
        EXPECT_TRUE(in.good()) << e.path();
        std::ostringstream ss;
        ss << in.rdbuf();
        ParseResult r = parseKernel(ss.str());
        EXPECT_TRUE(r.ok) << e.path() << ": " << r.error;
        if (r.ok)
            expectRoundTrip(r.kernel, e.path().string());
        seen++;
    }
    return seen;
}

TEST(RoundTrip, ExampleKernels)
{
    int n = roundTripDir(std::filesystem::path(RFH_SOURCE_DIR) /
                         "examples" / "kernels");
    EXPECT_GE(n, 2);
}

TEST(RoundTrip, FuzzCorpus)
{
    int n = roundTripDir(std::filesystem::path(RFH_SOURCE_DIR) /
                         "tests" / "corpus");
    EXPECT_GE(n, 10);
}

TEST(RoundTrip, GeneratedFuzzKernels)
{
    for (std::uint64_t iter = 0; iter < 24; iter++) {
        FuzzParams fp = fuzzCase(99, iter);
        Kernel k = generateFuzzKernel(
            "rt_" + std::to_string(iter), fp);
        ASSERT_EQ(k.validate(), "") << "iter " << iter;
        expectRoundTrip(k, "generated iter " + std::to_string(iter));
    }
}

/** The generator is a pure function of its parameters. */
TEST(RoundTrip, GeneratorDeterminism)
{
    for (std::uint64_t iter : {0ull, 3ull, 7ull}) {
        FuzzParams fp = fuzzCase(5, iter);
        Kernel a = generateFuzzKernel("d", fp);
        Kernel b = generateFuzzKernel("d", fp);
        EXPECT_EQ(printKernel(a), printKernel(b)) << "iter " << iter;
    }
}

// ---- Parser diagnostics: message and line number ----

TEST(ParserDiagnostics, DuplicateLabel)
{
    ParseResult r = parseKernel(
        ".kernel x\n"
        "entry:\n"
        "    mov R1, #1\n"
        "entry:\n"
        "    exit\n");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("line 4"), std::string::npos) << r.error;
    EXPECT_NE(r.error.find("duplicate label"), std::string::npos)
        << r.error;
}

TEST(ParserDiagnostics, UndefinedLabel)
{
    ParseResult r = parseKernel(
        ".kernel x\n"
        "entry:\n"
        "    mov R1, #1\n"
        "    bra missing\n"
        "    exit\n");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("line 4"), std::string::npos) << r.error;
    EXPECT_NE(r.error.find("undefined label"), std::string::npos)
        << r.error;
    EXPECT_NE(r.error.find("missing"), std::string::npos) << r.error;
}

TEST(ParserDiagnostics, BranchWithoutTarget)
{
    ParseResult r = parseKernel(
        ".kernel x\n"
        "entry:\n"
        "    bra\n"
        "    exit\n");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("line 3"), std::string::npos) << r.error;
}

} // namespace
} // namespace rfh
