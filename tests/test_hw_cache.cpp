/**
 * @file
 * Unit tests for the hardware register file cache baseline: hit/miss
 * accounting, FIFO eviction, liveness-elided writebacks, deschedule
 * flushes, and the three-level hardware variant (Sections 2.2, 6.2).
 */

#include <gtest/gtest.h>

#include "ir/parser.h"
#include "sim/baseline_exec.h"
#include "sim/hw_cache.h"

namespace rfh {
namespace {

AccessCounts
run(std::string_view text, HwCacheConfig cfg = {})
{
    Kernel k = parseKernelOrDie(text);
    cfg.run.numWarps = 1;
    return runHwCache(k, cfg);
}

TEST(HwCache, ProducerConsumerHitsCache)
{
    AccessCounts c = run(R"(.kernel pc
entry:
    iadd R1, R0, #1
    iadd R2, R1, #2
    st.shared [R0], R2
    exit
)");
    // R1 and R2 reads hit the RFC; R0 reads miss to the MRF.
    EXPECT_EQ(c.totalReads(Level::ORF), 2u);
    EXPECT_EQ(c.totalReads(Level::MRF), 2u);
    // Both results written to the RFC, dead on eviction -> no MRF
    // writes at all.
    EXPECT_EQ(c.totalWrites(Level::ORF), 2u);
    EXPECT_EQ(c.totalWrites(Level::MRF), 0u);
    EXPECT_EQ(c.wbReads, 0u);
}

TEST(HwCache, BaselineComparison)
{
    const char *text = R"(.kernel cmp
entry:
    iadd R1, R0, #1
    iadd R2, R1, #2
    st.shared [R0], R2
    exit
)";
    Kernel k = parseKernelOrDie(text);
    RunConfig rc;
    rc.numWarps = 1;
    AccessCounts base = runBaseline(k, rc);
    AccessCounts hw = run(text);
    EXPECT_EQ(base.allReads(), hw.allReads());
    EXPECT_EQ(base.instructions, hw.instructions);
}

TEST(HwCache, FifoEvictionWritesBackLiveValue)
{
    // R1 is produced, then enough other values fill the 2-entry RFC to
    // evict it while still live; its eventual read misses to the MRF.
    HwCacheConfig cfg;
    cfg.rfcEntries = 2;
    AccessCounts c = run(R"(.kernel ev
entry:
    iadd R1, R0, #1
    iadd R2, R0, #2
    iadd R3, R2, #3
    iadd R4, R3, #4
    st.shared [R0], R4
    st.shared [R0], R1
    exit
)", cfg);
    // R1 was evicted live: one writeback (RFC read + MRF write).
    EXPECT_EQ(c.wbReads, 1u);
    EXPECT_EQ(c.wbWrites, 1u);
    // Its read at the final store comes from the MRF.
    EXPECT_GE(c.totalReads(Level::MRF), 1u);
}

TEST(HwCache, DeadEvictionElidesWriteback)
{
    HwCacheConfig cfg;
    cfg.rfcEntries = 1;
    AccessCounts c = run(R"(.kernel dead
entry:
    iadd R1, R0, #1
    st.shared [R0], R1
    iadd R2, R0, #2
    st.shared [R0], R2
    exit
)", cfg);
    // R1 is dead when R2 evicts it: static liveness elides the
    // writeback (Section 2.2).
    EXPECT_EQ(c.wbReads, 0u);
    EXPECT_EQ(c.wbWrites, 0u);
}

TEST(HwCache, LongLatencyResultBypassesCache)
{
    AccessCounts c = run(R"(.kernel ll
entry:
    ld.global R1, [R0]
    iadd R2, R1, #1
    exit
)");
    // The load result goes straight to the MRF; the consumer triggers
    // a deschedule and reads it from the MRF.
    EXPECT_EQ(c.totalWrites(Level::MRF), 1u);
    EXPECT_EQ(c.deschedules, 1u);
    // Read breakdown: R0 (miss) + R1 (MRF after flush).
    EXPECT_EQ(c.totalReads(Level::MRF), 2u);
}

TEST(HwCache, DeschedulesFlushLiveValues)
{
    AccessCounts c = run(R"(.kernel flush
entry:
    iadd R1, R0, #1
    ld.global R2, [R0]
    iadd R3, R2, R1
    st.shared [R0], R3
    exit
)");
    // At the consumer of R2 the warp deschedules; R1 is live in the
    // RFC and must be flushed (wbRead + wbWrite), then re-read from
    // the MRF.
    EXPECT_EQ(c.deschedules, 1u);
    EXPECT_EQ(c.wbReads, 1u);
    EXPECT_EQ(c.wbWrites, 1u);
}

TEST(HwCache, OverwriteInPlaceDoesNotEvict)
{
    HwCacheConfig cfg;
    cfg.rfcEntries = 2;
    AccessCounts c = run(R"(.kernel ow
entry:
    iadd R1, R0, #1
    iadd R2, R0, #2
    iadd R1, R1, #3
    st.shared [R0], R1
    st.shared [R0], R2
    exit
)", cfg);
    // Redefining R1 overwrites its entry; R2 stays cached. No
    // writebacks anywhere.
    EXPECT_EQ(c.wbReads, 0u);
    EXPECT_EQ(c.totalReads(Level::ORF), 3u);
}

TEST(HwCache, ThreeLevelLrfCapturesPrivateChain)
{
    HwCacheConfig cfg;
    cfg.useLRF = true;
    AccessCounts c = run(R"(.kernel lrf
entry:
    iadd R1, R0, #1
    iadd R2, R1, #2
    iadd R3, R2, #3
    st.shared [R0], R3
    exit
)", cfg);
    // R1 and R2 are read from the LRF (each was the last result).
    // R3 is consumed by a store (shared): it bypasses the LRF and is
    // read from the RFC.
    EXPECT_EQ(c.totalReads(Level::LRF), 2u);
    EXPECT_GE(c.totalReads(Level::ORF), 1u);
}

TEST(HwCache, ThreeLevelLrfEvictionSpillsToRfc)
{
    HwCacheConfig cfg;
    cfg.useLRF = true;
    AccessCounts c = run(R"(.kernel spill
entry:
    iadd R1, R0, #1
    iadd R2, R0, #2
    iadd R3, R1, R2
    st.shared [R0], R3
    exit
)", cfg);
    // R1 sits in the LRF; producing R2 evicts it (live) into the RFC.
    EXPECT_GE(c.wbReads, 1u);
    EXPECT_GE(c.totalWrites(Level::ORF), 1u);
    // Demand reads equal the baseline operand count (6); the spill
    // adds writeback reads on top.
    EXPECT_EQ(c.allReads() - c.wbReads, 6u);
}

TEST(HwCache, SharedConsumedValuesSkipLrf)
{
    HwCacheConfig cfg;
    cfg.useLRF = true;
    AccessCounts c = run(R"(.kernel shared
entry:
    iadd R1, R0, #1
    sin R2, R1
    st.shared [R0], R2
    exit
)", cfg);
    // R1 feeds an SFU op: never enters the LRF, so zero LRF traffic
    // (R2 is SFU-produced and also skips it).
    EXPECT_EQ(c.totalReads(Level::LRF), 0u);
    EXPECT_EQ(c.totalWrites(Level::LRF), 0u);
}

TEST(HwCache, FlushOnBackwardBranchVariant)
{
    const char *loop = R"(.kernel loop
entry:
    mov R1, #4
    mov R2, #0
body:
    iadd R2, R2, R1
    isub R1, R1, #1
    setgt R3, R1, #0
    @R3 bra body
out:
    st.global [R0], R2
    exit
)";
    HwCacheConfig keep;
    keep.run.numWarps = 1;
    HwCacheConfig flush = keep;
    flush.flushOnBackwardBranch = true;
    Kernel k = parseKernelOrDie(loop);
    AccessCounts ck = runHwCache(k, keep);
    AccessCounts cf = runHwCache(k, flush);
    // Flushing at backward branches forces loop-carried values back to
    // the MRF: more MRF traffic, more writebacks.
    EXPECT_GT(cf.totalReads(Level::MRF), ck.totalReads(Level::MRF));
    EXPECT_GT(cf.wbWrites, ck.wbWrites);
}

TEST(HwCache, WideResultTakesTwoEntries)
{
    HwCacheConfig cfg;
    cfg.rfcEntries = 2;
    AccessCounts c = run(R"(.kernel wide
entry:
    imul.wide R2, R0, #8
    iadd R4, R2, R3
    st.shared [R0], R4
    exit
)", cfg);
    // Both halves cached and both read from the RFC.
    EXPECT_GE(c.totalReads(Level::ORF), 2u);
    EXPECT_GE(c.totalWrites(Level::ORF), 2u);
}

} // namespace
} // namespace rfh
