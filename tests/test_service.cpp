/**
 * @file
 * Tests for the batch compile/sim service (src/service/).
 *
 * The protocol tests pin the request schema: structured errors carry
 * position/context (JSON parse offsets, RPTX line numbers, the valid
 * scheme set, the queue capacity). The service tests drive a real
 * BatchService on its own small pool through the inference-server
 * paths — deadline expiry, load shedding, graceful drain — and the
 * concurrency test requires every response's result document to be
 * byte-identical to a direct runScheme() of the same configuration,
 * the invariant that lets clients switch between the CLI and the
 * service without re-baselining.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/json.h"
#include "core/parallel.h"
#include "service/protocol.h"
#include "service/server.h"
#include "workloads/registry.h"

namespace rfh {
namespace {

// ---- Protocol ----

TEST(ServiceProtocol, RunRequestDefaultsAndFields)
{
    ParsedRequest p = parseServiceRequest(
        R"({"id":7,"op":"run","workload":"vectoradd"})");
    ASSERT_TRUE(p.ok) << p.error.message;
    EXPECT_EQ(p.request.idJson, "7");
    EXPECT_EQ(p.request.op, ServiceOp::RUN);
    EXPECT_EQ(p.request.workload, "vectoradd");
    EXPECT_EQ(p.request.scheme, Scheme::SW_THREE_LEVEL);
    EXPECT_EQ(p.request.entries, 3);
    EXPECT_EQ(p.request.warps, 8);
    EXPECT_EQ(p.request.engine, ExecEngine::AUTO);
    EXPECT_TRUE(p.request.splitLRF);
    EXPECT_FALSE(p.request.deadlineMs.has_value());

    p = parseServiceRequest(
        R"({"id":"abc","workload":"lu","scheme":"hw2","entries":4,)"
        R"("warps":2,"engine":"replay","split_lrf":false,)"
        R"("partial_ranges":false,"read_operands":false,)"
        R"("deadline_ms":250})");
    ASSERT_TRUE(p.ok) << p.error.message;
    EXPECT_EQ(p.request.idJson, "\"abc\"");
    EXPECT_EQ(p.request.scheme, Scheme::HW_TWO_LEVEL);
    EXPECT_EQ(p.request.entries, 4);
    EXPECT_EQ(p.request.warps, 2);
    EXPECT_EQ(p.request.engine, ExecEngine::REPLAY);
    EXPECT_FALSE(p.request.splitLRF);
    EXPECT_FALSE(p.request.partialRanges);
    EXPECT_FALSE(p.request.readOperands);
    ASSERT_TRUE(p.request.deadlineMs.has_value());
    EXPECT_DOUBLE_EQ(*p.request.deadlineMs, 250.0);
}

TEST(ServiceProtocol, ParseErrorCarriesOffset)
{
    ParsedRequest p = parseServiceRequest(R"({"op":"run",})");
    ASSERT_FALSE(p.ok);
    EXPECT_EQ(p.error.code, ServiceErrorCode::PARSE_ERROR);
    EXPECT_NE(p.error.message.find("offset"), std::string::npos)
        << p.error.message;
}

TEST(ServiceProtocol, UnknownFieldIsNamed)
{
    ParsedRequest p = parseServiceRequest(
        R"({"id":1,"workload":"lu","schem":"sw3"})");
    ASSERT_FALSE(p.ok);
    EXPECT_EQ(p.error.code, ServiceErrorCode::BAD_REQUEST);
    EXPECT_NE(p.error.message.find("'schem'"), std::string::npos)
        << p.error.message;
    EXPECT_EQ(p.request.idJson, "1");  // id still echoed
}

TEST(ServiceProtocol, RunNeedsExactlyOneKernelSource)
{
    ParsedRequest neither = parseServiceRequest(R"({"op":"run"})");
    ASSERT_FALSE(neither.ok);
    EXPECT_EQ(neither.error.code, ServiceErrorCode::BAD_REQUEST);
    EXPECT_NE(neither.error.message.find("neither"),
              std::string::npos);

    ParsedRequest both = parseServiceRequest(
        R"({"workload":"lu","kernel":".kernel k\nentry:\n    exit\n"})");
    ASSERT_FALSE(both.ok);
    EXPECT_EQ(both.error.code, ServiceErrorCode::BAD_REQUEST);
    EXPECT_NE(both.error.message.find("both"), std::string::npos);
}

TEST(ServiceProtocol, UnknownSchemeListsValidTokens)
{
    ParsedRequest p = parseServiceRequest(
        R"({"workload":"lu","scheme":"sw4"})");
    ASSERT_FALSE(p.ok);
    EXPECT_EQ(p.error.code, ServiceErrorCode::UNKNOWN_SCHEME);
    // The valid-token list comes straight from the scheme registry,
    // so contributed backends appear without protocol changes.
    EXPECT_NE(p.error.message.find(
                  "baseline, hw2, hw3, sw2, sw3, ccrfc, regdem, "
                  "greener"),
              std::string::npos)
        << p.error.message;
}

TEST(ServiceProtocol, EntriesRangeIsEnforced)
{
    ParsedRequest p = parseServiceRequest(
        R"({"workload":"lu","entries":9})");
    ASSERT_FALSE(p.ok);
    EXPECT_EQ(p.error.code, ServiceErrorCode::BAD_REQUEST);
    EXPECT_NE(p.error.message.find("entries"), std::string::npos);
}

TEST(ServiceProtocol, EnvelopesAreExactBytes)
{
    EXPECT_EQ(makeResultLine("7", "{\"x\":1}"),
              R"({"id":7,"ok":true,"result":{"x":1}})");
    EXPECT_EQ(makeAckLine("null", "pong"),
              R"({"id":null,"ok":true,"op":"pong"})");
    ServiceError err;
    err.code = ServiceErrorCode::OVERLOADED;
    err.message = "full";
    err.context.emplace_back("queue_capacity", "64");
    EXPECT_EQ(makeErrorLine("\"c1\"", err),
              R"({"id":"c1","ok":false,"error":{"code":"overloaded",)"
              R"("message":"full","queue_capacity":64}})");
}

TEST(ServiceProtocol, CanonicalSerializationRoundTrips)
{
    // The router re-serializes parsed requests before forwarding, so
    // parse(toJson(parse(line))) must reproduce every field exactly —
    // regardless of the original key order.
    const char *lines[] = {
        R"({"id":7,"op":"run","workload":"vectoradd"})",
        R"({"scheme":"hw2","id":"abc","op":"run","entries":4,)"
        R"("kernel":"k","warps":2,"engine":"replay",)"
        R"("split_lrf":false,"partial_ranges":false,)"
        R"("read_operands":false,"deadline_ms":250})",
        R"({"op":"ping"})",
        R"({"id":1,"op":"stats"})",
    };
    for (const char *line : lines) {
        ParsedRequest first = parseServiceRequest(line);
        ASSERT_TRUE(first.ok) << line;
        std::string canonical = serviceRequestToJson(first.request);
        ParsedRequest second = parseServiceRequest(canonical);
        ASSERT_TRUE(second.ok) << canonical;
        EXPECT_EQ(serviceRequestToJson(second.request), canonical);
        EXPECT_EQ(second.request.op, first.request.op);
        EXPECT_EQ(second.request.idJson, first.request.idJson);
        EXPECT_EQ(second.request.workload, first.request.workload);
        EXPECT_EQ(second.request.kernelText, first.request.kernelText);
        EXPECT_EQ(second.request.scheme, first.request.scheme);
        EXPECT_EQ(second.request.engine, first.request.engine);
        EXPECT_EQ(second.request.entries, first.request.entries);
        EXPECT_EQ(second.request.warps, first.request.warps);
        EXPECT_EQ(second.request.deadlineMs, first.request.deadlineMs);
    }
}

// ---- BatchService ----

/** Submit one line and wait for its (possibly async) response. */
std::string
runOne(BatchService &svc, const std::string &line)
{
    auto p = std::make_shared<std::promise<std::string>>();
    auto f = p->get_future();
    svc.submit(line, [p](const std::string &r) { p->set_value(r); });
    return f.get();
}

/** The result document a run of (workload, scheme, entries) must yield. */
std::string
expectedResult(const std::string &workload, const std::string &scheme,
               int entries, int warps = 8)
{
    Workload w = *findWorkload(workload);
    w.run.numWarps = warps;
    ExperimentConfig cfg;
    cfg.scheme = *schemeFromToken(scheme);
    cfg.entries = entries;
    RunOutcome o = runScheme(w, cfg);
    EXPECT_TRUE(o.ok()) << o.error;
    return outcomeToJson(o);
}

TEST(ServiceServer, ResultIsByteIdenticalToDirectRun)
{
    ThreadPool pool(2);
    ServiceOptions so;
    so.pool = &pool;
    BatchService svc(so);
    svc.start();
    std::string resp = runOne(
        svc, R"({"id":1,"workload":"vectoradd","scheme":"sw3"})");
    svc.drain();
    EXPECT_EQ(resp, makeResultLine(
                        "1", expectedResult("vectoradd", "sw3", 3)));
}

TEST(ServiceServer, StatsOpReportsServiceAndCacheCounters)
{
    ThreadPool pool(2);
    ServiceOptions so;
    so.pool = &pool;
    BatchService svc(so);
    svc.start();
    runOne(svc, R"({"id":1,"workload":"vectoradd","scheme":"sw3"})");
    std::string resp = runOne(svc, R"({"id":2,"op":"stats"})");
    svc.drain();

    JsonParseResult parsed = parseJson(resp);
    ASSERT_TRUE(parsed.ok) << resp;
    EXPECT_TRUE(parsed.value.boolOr("ok", false));
    const JsonValue *stats = parsed.value.find("stats");
    ASSERT_NE(stats, nullptr) << resp;
    const JsonValue *service = stats->find("service");
    ASSERT_NE(service, nullptr);
    EXPECT_EQ(service->numberOr("completed", -1.0), 1.0);
    EXPECT_EQ(service->numberOr("ok", -1.0), 1.0);
    ASSERT_NE(stats->find("memo"), nullptr);
    const JsonValue *disk = stats->find("disk");
    ASSERT_NE(disk, nullptr);
    // No disk cache is attached in this test.
    EXPECT_FALSE(disk->boolOr("attached", true));
}

TEST(ServiceServer, KernelTextAndStructuredErrors)
{
    ThreadPool pool(1);
    ServiceOptions so;
    so.pool = &pool;
    BatchService svc(so);
    svc.start();

    // Inline kernel text runs through the ordinary parser.
    std::string ok = runOne(
        svc,
        R"({"id":1,"kernel":".kernel tiny\nentry:\n    iadd R1, R0, #1\n    exit\n"})");
    EXPECT_NE(ok.find("\"ok\":true"), std::string::npos) << ok;

    // A broken kernel comes back with the parser's line number.
    std::string bad = runOne(
        svc, R"({"id":2,"kernel":".kernel k\nentry:\n    frob R1\n"})");
    EXPECT_NE(bad.find("\"code\":\"bad_kernel\""), std::string::npos)
        << bad;
    EXPECT_NE(bad.find("line 3"), std::string::npos) << bad;

    std::string unknown =
        runOne(svc, R"({"id":3,"workload":"not_a_workload"})");
    EXPECT_NE(unknown.find("\"code\":\"unknown_workload\""),
              std::string::npos)
        << unknown;

    std::string ping = runOne(svc, R"({"id":4,"op":"ping"})");
    EXPECT_EQ(ping, R"({"id":4,"ok":true,"op":"pong"})");
    svc.drain();
}

TEST(ServiceServer, ExpiredDeadlineDoesNotPoisonTheWorker)
{
    ThreadPool pool(1);
    ServiceOptions so;
    so.pool = &pool;
    BatchService svc(so);
    svc.start();

    // An already-expired deadline must come back as a structured
    // timeout without executing anything...
    std::string timedOut = runOne(
        svc,
        R"({"id":1,"workload":"vectoradd","deadline_ms":0.000001})");
    EXPECT_NE(timedOut.find("\"code\":\"deadline_exceeded\""),
              std::string::npos)
        << timedOut;

    // ...and the same worker must then serve the next request.
    std::string after = runOne(
        svc, R"({"id":2,"workload":"vectoradd","scheme":"sw2"})");
    EXPECT_EQ(after, makeResultLine(
                         "2", expectedResult("vectoradd", "sw2", 3)));
    svc.drain();

    ServiceStats s = svc.stats();
    EXPECT_EQ(s.timeouts, 1u);
    EXPECT_EQ(s.ok, 1u);
    EXPECT_EQ(s.completed, 2u);
}

TEST(ServiceServer, FullQueueShedsWithCapacityContext)
{
    ThreadPool pool(1);
    ServiceOptions so;
    so.pool = &pool;
    so.workers = 1;
    so.queueCapacity = 1;

    // Gate the single worker so the queue state is deterministic:
    // request A blocks in the gate, B fills the queue, C sheds.
    std::mutex gateMu;
    std::condition_variable gateCv;
    bool gateOpen = false;
    std::promise<void> handling;
    std::atomic<bool> handlingSignalled{false};
    so.onBeforeHandle = [&] {
        if (!handlingSignalled.exchange(true))
            handling.set_value();
        std::unique_lock<std::mutex> lk(gateMu);
        gateCv.wait(lk, [&] { return gateOpen; });
    };

    BatchService svc(so);
    svc.start();

    auto pa = std::make_shared<std::promise<std::string>>();
    auto fa = pa->get_future();
    svc.submit(R"({"id":"a","workload":"vectoradd"})",
               [pa](const std::string &r) { pa->set_value(r); });
    handling.get_future().wait();  // A is now inside the worker

    auto pb = std::make_shared<std::promise<std::string>>();
    auto fb = pb->get_future();
    svc.submit(R"({"id":"b","workload":"vectoradd"})",
               [pb](const std::string &r) { pb->set_value(r); });

    // Queue is full (B); C must be answered inline with `overloaded`
    // and the capacity in the error context.
    std::string c = runOne(svc, R"({"id":"c","workload":"vectoradd"})");
    EXPECT_NE(c.find("\"code\":\"overloaded\""), std::string::npos)
        << c;
    EXPECT_NE(c.find("\"queue_capacity\":1"), std::string::npos) << c;

    {
        std::lock_guard<std::mutex> lk(gateMu);
        gateOpen = true;
    }
    gateCv.notify_all();
    // Shedding must not have cost A or B their answers.
    EXPECT_NE(fa.get().find("\"ok\":true"), std::string::npos);
    EXPECT_NE(fb.get().find("\"ok\":true"), std::string::npos);
    svc.drain();

    ServiceStats s = svc.stats();
    EXPECT_EQ(s.shed, 1u);
    EXPECT_EQ(s.ok, 2u);
}

TEST(ServiceServer, ConcurrentClientsMatchDirectRunByteForByte)
{
    ThreadPool pool(4);
    ServiceOptions so;
    so.pool = &pool;
    BatchService svc(so);
    svc.start();

    const char *workloads[] = {"vectoradd", "reduction", "matrixmul"};
    const char *schemes[] = {"baseline", "hw2", "hw3", "sw2", "sw3"};
    const int kClients = 4, kPerClient = 10;

    std::vector<std::string> responses(kClients * kPerClient);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; c++)
        clients.emplace_back([&, c] {
            for (int i = 0; i < kPerClient; i++) {
                int id = c * kPerClient + i;
                JsonWriter w;
                w.beginObject();
                w.key("id").value(id);
                w.key("workload").value(workloads[id % 3]);
                w.key("scheme").value(schemes[id % 5]);
                w.key("entries").value(1 + id % 4);
                w.endObject();
                responses[id] = runOne(svc, w.str());
            }
        });
    for (std::thread &t : clients)
        t.join();
    svc.drain();

    for (int id = 0; id < kClients * kPerClient; id++) {
        std::string expected = makeResultLine(
            std::to_string(id),
            expectedResult(workloads[id % 3], schemes[id % 5],
                           1 + id % 4));
        EXPECT_EQ(responses[id], expected) << "request " << id;
    }
    EXPECT_EQ(svc.stats().ok,
              static_cast<std::uint64_t>(kClients * kPerClient));
}

TEST(ServiceServer, BatchedSliceMatchesDirectRunByteForByte)
{
    ThreadPool pool(1);
    ServiceOptions so;
    so.pool = &pool;
    so.workers = 1;
    so.queueCapacity = 16;
    so.batchMax = 8;

    // Hold the single worker on the first request so the next five
    // pile up behind it and are drained as one batched slice.
    std::mutex gateMu;
    std::condition_variable gateCv;
    bool gateOpen = false;
    std::promise<void> handling;
    std::atomic<bool> handlingSignalled{false};
    so.onBeforeHandle = [&] {
        if (!handlingSignalled.exchange(true))
            handling.set_value();
        std::unique_lock<std::mutex> lk(gateMu);
        gateCv.wait(lk, [&] { return gateOpen; });
    };

    BatchService svc(so);
    svc.start();

    const char *workloads[] = {"vectoradd", "reduction", "matrixmul"};
    const char *schemes[] = {"baseline", "hw2", "hw3", "sw2", "sw3"};

    auto p0 = std::make_shared<std::promise<std::string>>();
    auto f0 = p0->get_future();
    svc.submit(R"({"id":0,"workload":"vectoradd"})",
               [p0](const std::string &r) { p0->set_value(r); });
    handling.get_future().wait();  // worker parked at the gate

    const int kBatched = 5;
    std::vector<std::future<std::string>> futs;
    for (int i = 1; i <= kBatched; i++) {
        auto p = std::make_shared<std::promise<std::string>>();
        futs.push_back(p->get_future());
        JsonWriter w;
        w.beginObject();
        w.key("id").value(i);
        w.key("workload").value(workloads[i % 3]);
        w.key("scheme").value(schemes[i % 5]);
        w.key("entries").value(1 + i % 4);
        w.endObject();
        svc.submit(w.str(),
                   [p](const std::string &r) { p->set_value(r); });
    }
    {
        std::lock_guard<std::mutex> lk(gateMu);
        gateOpen = true;
    }
    gateCv.notify_all();

    EXPECT_NE(f0.get().find("\"ok\":true"), std::string::npos);
    // The batched responses must be byte-identical to direct runs —
    // the batch path resolves AUTO to the replay engine, whose
    // result documents match the direct oracle byte for byte.
    for (int i = 1; i <= kBatched; i++) {
        std::string expected = makeResultLine(
            std::to_string(i),
            expectedResult(workloads[i % 3], schemes[i % 5],
                           1 + i % 4));
        EXPECT_EQ(futs[i - 1].get(), expected) << "request " << i;
    }
    svc.drain();
    EXPECT_EQ(svc.stats().ok, 6u);
}

TEST(ServiceServer, ShutdownDrainsAndRejectsLateRequests)
{
    ThreadPool pool(2);
    ServiceOptions so;
    so.pool = &pool;
    BatchService svc(so);
    svc.start();

    std::string first =
        runOne(svc, R"({"id":1,"workload":"vectoradd"})");
    EXPECT_NE(first.find("\"ok\":true"), std::string::npos);

    std::string ack;
    bool keepGoing = svc.submit(
        R"({"id":2,"op":"shutdown"})",
        [&ack](const std::string &r) { ack = r; });
    EXPECT_FALSE(keepGoing);
    EXPECT_EQ(ack, R"({"id":2,"ok":true,"op":"shutdown"})");
    svc.drain();

    std::string late = runOne(svc, R"({"id":3,"workload":"lu"})");
    EXPECT_NE(late.find("\"code\":\"shutting_down\""),
              std::string::npos)
        << late;
}

TEST(ServiceServer, CacheEvictionKeepsResultsIdentical)
{
    ThreadPool pool(1);
    ServiceOptions so;
    so.pool = &pool;
    // A one-entry budget forces an eviction after essentially every
    // request; results must not change.
    so.cacheMaxEntries = 1;
    BatchService svc(so);
    svc.start();
    const char *workloads[] = {"vectoradd", "reduction", "histogram"};
    for (int round = 0; round < 2; round++)
        for (const char *wl : workloads) {
            std::string resp = runOne(
                svc, std::string(R"({"id":1,"workload":")") + wl +
                         R"(","scheme":"sw3"})");
            EXPECT_EQ(resp, makeResultLine(
                                "1", expectedResult(wl, "sw3", 3)))
                << wl;
        }
    svc.drain();
    EXPECT_EQ(svc.stats().ok, 6u);
}

} // namespace
} // namespace rfh
