/**
 * @file
 * Unit tests for the software-hierarchy executor: access accounting,
 * strand invalidation, functional verification, and detection of
 * deliberately corrupted annotations.
 */

#include <gtest/gtest.h>

#include "compiler/allocator.h"
#include "ir/parser.h"
#include "sim/baseline_exec.h"
#include "sim/sw_exec.h"

namespace rfh {
namespace {

struct Compiled
{
    Kernel kernel;
    AllocOptions opts;

    explicit Compiled(std::string_view text, AllocOptions o = {})
        : kernel(parseKernelOrDie(text)), opts(o)
    {
        HierarchyAllocator alloc(EnergyParams{}, opts);
        alloc.run(kernel);
    }

    SwExecResult
    run(int warps = 1) const
    {
        SwExecConfig cfg;
        cfg.run.numWarps = warps;
        return runSwHierarchy(kernel, opts, cfg);
    }
};

TEST(SwExec, CleanRunOnStraightLine)
{
    Compiled c(R"(.kernel s
entry:
    iadd R1, R0, #1
    iadd R2, R1, #2
    st.shared [R0], R2
    exit
)");
    SwExecResult r = c.run();
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.counts.instructions, 4u);
    // R1 and R2 reads come from the ORF. R0 is read twice, so
    // read-operand allocation deposits it on the first read and serves
    // the store's address read from the ORF.
    EXPECT_EQ(r.counts.totalReads(Level::ORF), 3u);
    EXPECT_EQ(r.counts.totalReads(Level::MRF), 1u);
    // Both values dead after use: no MRF writes at all.
    EXPECT_EQ(r.counts.totalWrites(Level::MRF), 0u);
}

TEST(SwExec, TotalReadsMatchBaseline)
{
    const char *text = R"(.kernel m
entry:
    iadd R1, R0, #1
    ld.global R2, [R0]
    iadd R3, R2, R1
    st.global [R0], R3
    exit
)";
    Compiled c(text);
    SwExecResult r = c.run(4);
    ASSERT_TRUE(r.ok()) << r.error;
    RunConfig rc;
    rc.numWarps = 4;
    AccessCounts base = runBaseline(parseKernelOrDie(text), rc);
    EXPECT_EQ(r.counts.allReads() - r.counts.wbReads, base.allReads());
    EXPECT_EQ(r.counts.instructions, base.instructions);
}

TEST(SwExec, LoopRunsVerified)
{
    AllocOptions opts;
    opts.useLRF = true;
    opts.splitLRF = true;
    Compiled c(R"(.kernel loop
entry:
    mov R1, #16
    mov R2, #0
body:
    ld.global R3, [R0]
    iadd R4, R3, #1
    iadd R5, R4, R4
    iadd R2, R2, R5
    isub R1, R1, #1
    setgt R6, R1, #0
    @R6 bra body
out:
    st.global [R0], R2
    exit
)", opts);
    SwExecResult r = c.run(4);
    ASSERT_TRUE(r.ok()) << r.error;
    // One deschedule per iteration (the load consumer).
    EXPECT_EQ(r.counts.deschedules, 4u * 16u);
}

TEST(SwExec, DepositCountsOrfWrite)
{
    Compiled c(R"(.kernel dep
entry:
    iadd R1, R0, #1
    iadd R2, R0, #2
    iadd R3, R0, #3
    st.shared [R1], R2
    st.shared [R3], R0
    exit
)");
    SwExecResult r = c.run();
    ASSERT_TRUE(r.ok()) << r.error;
    // R0's deposit adds an ORF write beyond the value writes.
    EXPECT_GT(r.counts.totalWrites(Level::ORF), 3u);
}

TEST(SwExec, CorruptedOrfEntryDetected)
{
    Compiled c(R"(.kernel bad
entry:
    iadd R1, R0, #1
    iadd R2, R1, #2
    st.shared [R0], R2
    exit
)");
    // Point the read at the wrong ORF entry.
    Instruction &use = c.kernel.instr(1);
    ASSERT_EQ(use.readAnno[0].level, Level::ORF);
    use.readAnno[0].entry =
        static_cast<std::uint8_t>((use.readAnno[0].entry + 1) %
                                  c.opts.orfEntries);
    SwExecResult r = c.run();
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("ORF entry"), std::string::npos);
}

TEST(SwExec, MissingOrfWriteDetected)
{
    Compiled c(R"(.kernel bad2
entry:
    iadd R1, R0, #1
    iadd R2, R1, #2
    st.shared [R0], R2
    exit
)");
    Instruction &def = c.kernel.instr(0);
    ASSERT_TRUE(def.writeAnno.toORF);
    def.writeAnno.toORF = false;
    def.writeAnno.toMRF = true;
    SwExecResult r = c.run();
    EXPECT_FALSE(r.ok());
}

TEST(SwExec, StaleMrfReadDetected)
{
    Compiled c(R"(.kernel bad3
entry:
    iadd R1, R0, #1
    iadd R2, R1, #2
    st.shared [R0], R2
    exit
)");
    // Elide the MRF write but claim the read comes from the MRF.
    Instruction &def = c.kernel.instr(0);
    def.writeAnno.toMRF = false;
    Instruction &use = c.kernel.instr(1);
    use.readAnno[0] = ReadAnnotation{};  // MRF
    SwExecResult r = c.run();
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("stale"), std::string::npos);
}

TEST(SwExec, CrossStrandOrfReadDetected)
{
    Compiled c(R"(.kernel bad4
entry:
    iadd R1, R0, #1
    ld.global R2, [R0]
    iadd R3, R2, R1
    st.shared [R0], R3
    exit
)");
    // Force R1's cross-strand read to claim the ORF.
    Instruction &def = c.kernel.instr(0);
    def.writeAnno.toORF = true;
    def.writeAnno.orfEntry = 0;
    Instruction &use = c.kernel.instr(2);
    use.readAnno[1].level = Level::ORF;
    use.readAnno[1].entry = 0;
    SwExecResult r = c.run();
    EXPECT_FALSE(r.ok()) << "strand boundary must invalidate the ORF";
}

TEST(SwExec, LrfSharedReadDetected)
{
    AllocOptions opts;
    opts.useLRF = true;
    Compiled c(R"(.kernel bad5
entry:
    iadd R1, R0, #1
    iadd R2, R1, #2
    st.shared [R0], R2
    exit
)", opts);
    // Claim the store (shared datapath) reads its data from the LRF.
    Instruction &st = c.kernel.instr(2);
    st.readAnno[1].level = Level::LRF;
    st.readAnno[1].lrfBank = 0;
    SwExecResult r = c.run();
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("shared-datapath LRF"), std::string::npos);
}

TEST(SwExec, LongLatencyUpperAnnotationDetected)
{
    Compiled c(R"(.kernel bad6
entry:
    ld.global R1, [R0]
    iadd R2, R1, #1
    st.shared [R0], R2
    exit
)");
    Instruction &ld = c.kernel.instr(0);
    ld.writeAnno.toORF = true;
    SwExecResult r = c.run();
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("long-latency"), std::string::npos);
}

TEST(SwExec, HammockBothPathsVerified)
{
    // Warps take different hammock sides (data-dependent predicate);
    // the shared ORF entry must verify on every path.
    Compiled c(R"(.kernel ham
entry:
    setlt R2, R0, #4
    @R2 bra right
left:
    iadd R1, R0, #7
    bra merge
right:
    iadd R1, R0, #8
merge:
    iadd R3, R1, #1
    st.shared [R0], R3
    exit
)");
    SwExecResult r = c.run(8);
    ASSERT_TRUE(r.ok()) << r.error;
}

TEST(SwExec, IdealNoFlushKeepsValuesAcrossDeschedule)
{
    AllocOptions opts;
    opts.strandOptions.cutAtBackwardBranch = false;
    opts.strandOptions.cutAtLongLatency = false;
    opts.strandOptions.cutAtUncertainMerge = false;
    Compiled c(R"(.kernel ideal
entry:
    iadd R1, R0, #1
    ld.global R2, [R0]
    iadd R3, R2, R1
    st.shared [R0], R3
    exit
)", opts);
    SwExecConfig cfg;
    cfg.run.numWarps = 1;
    cfg.idealNoFlush = true;
    SwExecResult r = runSwHierarchy(c.kernel, opts, cfg);
    ASSERT_TRUE(r.ok()) << r.error;
    // R1's cross-"strand" read can now come from the ORF.
    EXPECT_EQ(c.kernel.instr(2).readAnno[1].level, Level::ORF);
    EXPECT_EQ(r.counts.deschedules, 1u);
}

} // namespace
} // namespace rfh
