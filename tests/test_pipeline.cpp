/**
 * @file
 * Tests for the cycle-level staged SM pipeline (sim/pipeline.h): port
 * conservation, tick determinism, scheduler-policy properties, bank
 * conflicts, collector backpressure, and the stall-accounting
 * identity. The golden IPC bands live in test_golden.cpp; the
 * pipeline-vs-functional count equality is oracle-enforced in
 * test_verify.cpp and the fuzz campaign.
 */

#include <gtest/gtest.h>

#include <random>

#include "core/experiment.h"
#include "core/json.h"
#include "ir/parser.h"
#include "sim/perf_sim.h"
#include "sim/pipeline.h"
#include "sim/port.h"
#include "sim/tick.h"
#include "sim/trace.h"
#include "verify/oracle.h"
#include "workloads/registry.h"

namespace rfh {
namespace {

Kernel
aluLoop()
{
    return parseKernelOrDie(R"(.kernel alu
entry:
    mov R1, #64
    mov R2, #0
body:
    iadd R2, R2, R1
    xor R3, R2, R1
    iadd R2, R2, R3
    isub R1, R1, #1
    setgt R4, R1, #0
    @R4 bra body
out:
    st.global [R0], R2
    exit
)");
}

Kernel
memLoop()
{
    return parseKernelOrDie(R"(.kernel mem
entry:
    mov R1, #32
    mov R2, #0
body:
    ld.global R3, [R0]
    iadd R2, R2, R3
    iadd R0, R0, #4
    isub R1, R1, #1
    setgt R4, R1, #0
    @R4 bra body
out:
    st.global [R0], R2
    exit
)");
}

/** Same-register sources land in the same MRF bank every cycle. */
Kernel
conflictLoop()
{
    return parseKernelOrDie(R"(.kernel conflict
entry:
    mov R1, #48
    mov R2, #7
body:
    iadd R3, R2, R2
    iadd R4, R2, R2
    isub R1, R1, #1
    setgt R5, R1, #0
    @R5 bra body
out:
    exit
)");
}

/** Run @p k's recorded stream through the pipeline, flat accounting. */
PipelineResult
runFlat(const Kernel &k, int warps, const PipelineConfig &cfg,
        AccessCounts *countsOut = nullptr)
{
    RunConfig rc;
    rc.numWarps = warps;
    DecodedTrace trace = recordDecodedTrace(k, rc);
    ReplayDecode dec(k);
    AccessCounts counts;
    auto acct = makeFlatAccounting(k, &dec, counts);
    PipelineResult r = runPipeline(trace, dec, *acct, cfg);
    if (countsOut)
        *countsOut = counts;
    return r;
}

bool
statsEqual(const PipelineStats &a, const PipelineStats &b)
{
    return a.cycles == b.cycles && a.issued == b.issued &&
        a.swaps == b.swaps && a.bankConflicts == b.bankConflicts &&
        a.stalls.scoreboard == b.stalls.scoreboard &&
        a.stalls.collector == b.stalls.collector &&
        a.stalls.execBusy == b.stalls.execBusy &&
        a.stalls.swap == b.stalls.swap &&
        a.stalls.drain == b.stalls.drain;
}

// ---- Port: the ready/valid conservation law ----

TEST(Port, BoundedPortRefusesWhenFull)
{
    Port<int> p(2);
    EXPECT_TRUE(p.push(1));
    EXPECT_TRUE(p.push(2));
    EXPECT_FALSE(p.canPush());
    // A refused push consumes nothing: the element is not lost, the
    // producer stalls.
    EXPECT_FALSE(p.push(3));
    EXPECT_EQ(p.pushed(), 2u);
    EXPECT_EQ(p.front(), 1);
    p.pop();
    EXPECT_TRUE(p.push(3));
    EXPECT_EQ(p.size(), 2u);
}

TEST(Port, FifoOrderSurvivesGrowth)
{
    Port<int> p;  // unbounded: the ring doubles under load
    for (int i = 0; i < 100; i++)
        ASSERT_TRUE(p.push(i));
    for (int i = 0; i < 100; i++) {
        ASSERT_FALSE(p.empty());
        EXPECT_EQ(p.front(), i);
        p.pop();
    }
    EXPECT_TRUE(p.empty());
}

TEST(Port, ConservationHoldsUnderRandomTraffic)
{
    // pushed() == popped() + size() at every step, for any
    // interleaving: nothing dropped, nothing duplicated.
    std::mt19937 rng(7);
    Port<std::uint64_t> p(3);
    std::uint64_t nextIn = 0, nextOut = 0;
    for (int step = 0; step < 10000; step++) {
        if (rng() % 2 == 0) {
            if (p.push(nextIn))
                nextIn++;
        } else if (!p.empty()) {
            // FIFO: values come out in the exact order they went in.
            ASSERT_EQ(p.front(), nextOut);
            p.pop();
            nextOut++;
        }
        ASSERT_EQ(p.pushed(), p.popped() + p.size());
        ASSERT_LE(p.size(), 3u);
    }
    EXPECT_EQ(p.pushed(), nextIn);
    EXPECT_EQ(p.popped(), nextOut);
}

// ---- TickSchedule ----

TEST(Tick, ScheduleTicksInRegistrationOrderAndOrsProgress)
{
    struct Probe final : Ticked
    {
        std::vector<int> *order;
        int id;
        bool busy;
        Probe(std::vector<int> *o, int i, bool b)
            : order(o), id(i), busy(b)
        {
        }
        bool
        tick(std::uint64_t) override
        {
            order->push_back(id);
            return busy;
        }
    };
    std::vector<int> order;
    Probe a(&order, 0, false), b(&order, 1, true), c(&order, 2, false);
    TickSchedule sched;
    sched.add(&a);
    sched.add(&b);
    sched.add(&c);
    EXPECT_TRUE(sched.tick(0));
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    b.busy = false;
    order.clear();
    EXPECT_FALSE(sched.tick(1));
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// ---- Scheduler policies ----

TEST(Pipeline, SchedPolicyTokensRoundTrip)
{
    for (SchedPolicy p : {SchedPolicy::FLAT_RR, SchedPolicy::TWO_LEVEL,
                          SchedPolicy::GTO}) {
        SchedPolicy back;
        ASSERT_TRUE(parseSchedPolicy(schedPolicyName(p), back));
        EXPECT_EQ(back, p);
    }
    SchedPolicy out;
    EXPECT_TRUE(parseSchedPolicy("rr", out));
    EXPECT_EQ(out, SchedPolicy::FLAT_RR);
    EXPECT_TRUE(parseSchedPolicy("twolevel", out));
    EXPECT_EQ(out, SchedPolicy::TWO_LEVEL);
    EXPECT_FALSE(parseSchedPolicy("lottery", out));
}

TEST(Pipeline, DeterministicCycleCounts)
{
    for (Kernel k : {aluLoop(), memLoop()}) {
        PipelineConfig cfg;
        cfg.activeWarps = 4;
        AccessCounts c1, c2;
        PipelineResult r1 = runFlat(k, 16, cfg, &c1);
        PipelineResult r2 = runFlat(k, 16, cfg, &c2);
        ASSERT_TRUE(r1.ok()) << r1.error;
        EXPECT_TRUE(statsEqual(r1.stats, r2.stats)) << k.name;
        EXPECT_EQ(describeCountsDiff(c1, c2), "") << k.name;
    }
}

TEST(Pipeline, EveryRecordIssuesExactlyOnce)
{
    // The issue stage is the pipeline's conservation point: every
    // dynamic record of every warp issues exactly once, under every
    // policy, even with a one-entry collector squeezing backpressure
    // through the issue port.
    Kernel k = memLoop();
    RunConfig rc;
    rc.numWarps = 12;
    DecodedTrace trace = recordDecodedTrace(k, rc);
    ReplayDecode dec(k);
    for (SchedPolicy p : {SchedPolicy::FLAT_RR, SchedPolicy::TWO_LEVEL,
                          SchedPolicy::GTO}) {
        PipelineConfig cfg;
        cfg.policy = p;
        cfg.activeWarps = 3;
        cfg.collectorSlots = 1;
        AccessCounts counts;
        auto acct = makeFlatAccounting(k, &dec, counts);
        PipelineResult r = runPipeline(trace, dec, *acct, cfg);
        ASSERT_TRUE(r.ok()) << r.error;
        EXPECT_EQ(r.stats.issued, trace.instructions())
            << schedPolicyName(p);
        EXPECT_EQ(counts.instructions, trace.instructions())
            << schedPolicyName(p);
    }
}

TEST(Pipeline, AccessCountsAreScheduleInvariant)
{
    // Accounting happens at issue in per-warp program order, so the
    // totals cannot depend on the scheduler interleaving. This is the
    // property that makes the pipeline-vs-functional oracle hold for
    // every scheme.
    Kernel k = memLoop();
    AccessCounts ref;
    PipelineConfig flat;
    flat.policy = SchedPolicy::FLAT_RR;
    ASSERT_TRUE(runFlat(k, 8, flat, &ref).ok());
    for (SchedPolicy p : {SchedPolicy::TWO_LEVEL, SchedPolicy::GTO}) {
        for (int active : {1, 2, 8}) {
            PipelineConfig cfg;
            cfg.policy = p;
            cfg.activeWarps = active;
            AccessCounts got;
            ASSERT_TRUE(runFlat(k, 8, cfg, &got).ok());
            EXPECT_EQ(describeCountsDiff(got, ref), "")
                << schedPolicyName(p) << "/" << active;
        }
    }
}

TEST(Pipeline, FullActiveSetReducesTwoLevelToFlat)
{
    // activeWarps == numWarps: the pending set is empty, so the
    // two-level scheduler must degenerate to flat round-robin — not
    // approximately, but cycle for cycle.
    for (Kernel k : {aluLoop(), memLoop()}) {
        for (int warps : {1, 4, 8}) {
            PipelineConfig flat;
            flat.policy = SchedPolicy::FLAT_RR;
            PipelineConfig two;
            two.policy = SchedPolicy::TWO_LEVEL;
            two.activeWarps = warps;
            PipelineResult rf = runFlat(k, warps, flat);
            PipelineResult rt = runFlat(k, warps, two);
            ASSERT_TRUE(rf.ok() && rt.ok());
            EXPECT_TRUE(statsEqual(rf.stats, rt.stats))
                << k.name << " @" << warps;
            EXPECT_EQ(rt.stats.swaps, 0u);
        }
    }
}

TEST(Pipeline, TwoLevelSwapsOnLongLatencyDependences)
{
    PipelineConfig cfg;
    cfg.activeWarps = 4;
    PipelineResult r = runFlat(memLoop(), 16, cfg);
    ASSERT_TRUE(r.ok());
    EXPECT_GT(r.stats.swaps, 0u);
    EXPECT_GT(r.stats.stalls.swap, 0u);
}

TEST(Pipeline, GtoPrefersTheLastIssuedWarp)
{
    // Greedy-then-oldest drains a warp until it stalls; with a pure
    // ALU kernel it still completes everything and beats nothing —
    // the stats just have to be well-formed and complete.
    PipelineConfig cfg;
    cfg.policy = SchedPolicy::GTO;
    AccessCounts counts;
    PipelineResult r = runFlat(aluLoop(), 8, cfg, &counts);
    ASSERT_TRUE(r.ok());
    EXPECT_GT(r.stats.issued, 0u);
    EXPECT_EQ(r.stats.swaps, 0u);  // swaps are a two-level notion
}

// ---- Stall accounting ----

TEST(Pipeline, EveryCycleIssuesOrIsAttributedToOneStall)
{
    // cycles == issued + sum(stalls): each cycle either issues one
    // instruction or increments exactly one stall counter (including
    // fast-forwarded idle stretches).
    for (Kernel k : {aluLoop(), memLoop(), conflictLoop()}) {
        for (int active : {1, 4, 32}) {
            PipelineConfig cfg;
            cfg.activeWarps = active;
            PipelineResult r = runFlat(k, 32, cfg);
            ASSERT_TRUE(r.ok()) << r.error;
            EXPECT_EQ(r.stats.cycles,
                      r.stats.issued + r.stats.stalls.total())
                << k.name << " @" << active;
        }
    }
}

// ---- Operand collector and MRF banks ----

TEST(Pipeline, SameBankOperandsConflict)
{
    // iadd R3, R2, R2 reads the same register twice: both operands
    // live in the same bank, so every issue defers one read cycle.
    PipelineConfig cfg;
    PipelineResult r = runFlat(conflictLoop(), 4, cfg);
    ASSERT_TRUE(r.ok());
    EXPECT_GT(r.stats.bankConflicts, 0u);
}

TEST(Pipeline, SingleBankSerialisesEveryOperandPair)
{
    // One bank: any multi-operand instruction conflicts; 32 banks
    // with swizzle resolve everything the kernel's registers allow.
    PipelineConfig one;
    one.banks.numBanks = 1;
    PipelineConfig many;
    many.banks.numBanks = 32;
    PipelineResult r1 = runFlat(aluLoop(), 4, one);
    PipelineResult rn = runFlat(aluLoop(), 4, many);
    ASSERT_TRUE(r1.ok() && rn.ok());
    // Conflicts are monotone in the layout; cycles are not (deferred
    // operand fetches reshuffle issue order), so only the conflict
    // count is asserted.
    EXPECT_GT(r1.stats.bankConflicts, rn.stats.bankConflicts);
    EXPECT_EQ(r1.stats.issued, rn.stats.issued);
}

TEST(Pipeline, CollectorBackpressureCostsCyclesNotInstructions)
{
    PipelineConfig wide;
    wide.collectorSlots = 8;
    PipelineConfig narrow;
    narrow.collectorSlots = 1;
    PipelineResult rw = runFlat(aluLoop(), 16, wide);
    PipelineResult rn = runFlat(aluLoop(), 16, narrow);
    ASSERT_TRUE(rw.ok() && rn.ok());
    EXPECT_EQ(rw.stats.issued, rn.stats.issued);
    EXPECT_GE(rn.stats.cycles, rw.stats.cycles);
}

// ---- Old API behind the new engine ----

TEST(Pipeline, PerfSimWrapperMatchesDirectEngineRun)
{
    Kernel k = aluLoop();
    PerfConfig old;
    old.numWarps = 8;
    old.activeWarps = 8;
    PerfResult wrapped = runPerfSim(k, old);

    PipelineConfig cfg;
    cfg.activeWarps = 8;
    PipelineResult direct = runFlat(k, 8, cfg);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(wrapped.cycles, direct.stats.cycles);
    EXPECT_EQ(wrapped.instructions, direct.stats.issued);
    EXPECT_EQ(wrapped.deschedules, direct.stats.swaps);
}

// ---- Scheme-level pipeline runs ----

TEST(Pipeline, SchemeRunsMatchFunctionalCountsOnAWorkload)
{
    const Workload &w = workloadByName("scalarprod");
    for (const SchemeInfo *si : SchemeRegistry::instance().schemes()) {
        if (!si->caps.pipelined)
            continue;
        ExperimentConfig cfg;
        cfg.scheme = si->scheme;
        cfg.engine = ExecEngine::REPLAY;
        RunOutcome functional = runScheme(w, cfg);
        ASSERT_TRUE(functional.ok())
            << si->token << ": " << functional.error;
        SchemePipelineResult pr = runSchemePipeline(w, cfg);
        ASSERT_TRUE(pr.ok()) << si->token << ": " << pr.error;
        EXPECT_EQ(describeCountsDiff(pr.counts, functional.counts), "")
            << si->token;
        EXPECT_EQ(pr.stats.issued, functional.counts.instructions)
            << si->token;
    }
}

TEST(Pipeline, HierarchySchemesBypassMrfBanksAtTheCollector)
{
    // Upper-level operands skip bank arbitration entirely, so a
    // hierarchy scheme can only see fewer conflicts than the flat
    // baseline on the same stream — that is the operand-delivery
    // argument of the paper in pipeline form.
    const Workload &w = workloadByName("scalarprod");
    ExperimentConfig base;
    base.scheme = Scheme::BASELINE;
    SchemePipelineResult flat = runSchemePipeline(w, base);
    ASSERT_TRUE(flat.ok()) << flat.error;
    ExperimentConfig sw;
    sw.scheme = Scheme::SW_THREE_LEVEL;
    SchemePipelineResult three = runSchemePipeline(w, sw);
    ASSERT_TRUE(three.ok()) << three.error;
    EXPECT_LE(three.stats.bankConflicts, flat.stats.bankConflicts);
}

TEST(Pipeline, RunSchemePipelineRejectsNonPipelinedSchemes)
{
    // The testecho contributed scheme (registered in the scheme-test
    // binary only) is not visible here; fabricate an unregistered id
    // instead and check the error paths stay errors, not crashes.
    const Workload &w = workloadByName("scalarprod");
    ExperimentConfig cfg;
    cfg.scheme = Scheme(250);
    SchemePipelineResult pr = runSchemePipeline(w, cfg);
    EXPECT_FALSE(pr.ok());
    EXPECT_NE(pr.error.find("unregistered"), std::string::npos);
}

// ---- Perf plumbing through runScheme ----

TEST(Pipeline, RunSchemeAttachesPerfOnlyWhenAsked)
{
    const Workload &w = workloadByName("scalarprod");
    ExperimentConfig cfg;
    cfg.scheme = Scheme::SW_THREE_LEVEL;
    RunOutcome plain = runScheme(w, cfg);
    ASSERT_TRUE(plain.ok()) << plain.error;
    EXPECT_FALSE(plain.hasPerf);
    // The JSON stays byte-identical to the pre-pipeline format...
    EXPECT_EQ(outcomeToJson(plain).find("\"perf\""),
              std::string::npos);

    cfg.perf = true;
    RunOutcome perf = runScheme(w, cfg);
    ASSERT_TRUE(perf.ok()) << perf.error;
    ASSERT_TRUE(perf.hasPerf);
    EXPECT_GT(perf.perf.cycles, 0u);
    EXPECT_GT(perf.perf.ipc(), 0.0);
    // ...and grows a perf object only on request.
    std::string json = outcomeToJson(perf);
    EXPECT_NE(json.find("\"perf\""), std::string::npos);
    EXPECT_NE(json.find("\"ipc\""), std::string::npos);
    EXPECT_NE(json.find("\"scoreboard\""), std::string::npos);
    // Counts are unaffected by the perf pass.
    EXPECT_EQ(describeCountsDiff(perf.counts, plain.counts), "");
}

} // namespace
} // namespace rfh
