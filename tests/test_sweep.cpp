/**
 * @file
 * Tests for the parallel, memoizing sweep engine: bestPoint edge
 * cases, baseline aggregation, memoization transparency, error
 * aggregation, and the determinism guarantee (parallel JSON reports
 * byte-identical to the single-thread run).
 */

#include <gtest/gtest.h>

#include "core/json.h"
#include "core/memo.h"
#include "core/parallel.h"
#include "core/sweep.h"
#include "ir/parser.h"
#include "sim/baseline_exec.h"

namespace rfh {
namespace {

SweepPoint
point(Scheme s, int entries, double energy, double baseline)
{
    SweepPoint p;
    p.scheme = s;
    p.entries = entries;
    p.outcome.energyPJ = energy;
    p.outcome.baselineEnergyPJ = baseline;
    return p;
}

TEST(BestPoint, EmptyVectorYieldsNull)
{
    std::vector<SweepPoint> none;
    EXPECT_EQ(bestPoint(none, Scheme::SW_THREE_LEVEL), nullptr);
}

TEST(BestPoint, AbsentSchemeYieldsNull)
{
    std::vector<SweepPoint> pts = {
        point(Scheme::HW_TWO_LEVEL, 1, 5.0, 10.0),
    };
    EXPECT_EQ(bestPoint(pts, Scheme::SW_THREE_LEVEL), nullptr);
}

TEST(BestPoint, TieKeepsTheEarliestPoint)
{
    // Equal normalised energy at entries 2 and 5: the first point in
    // sweep order (the smaller size) must win, deterministically.
    std::vector<SweepPoint> pts = {
        point(Scheme::SW_TWO_LEVEL, 1, 8.0, 10.0),
        point(Scheme::SW_TWO_LEVEL, 2, 5.0, 10.0),
        point(Scheme::SW_TWO_LEVEL, 5, 5.0, 10.0),
    };
    const SweepPoint *best = bestPoint(pts, Scheme::SW_TWO_LEVEL);
    ASSERT_NE(best, nullptr);
    EXPECT_EQ(best->entries, 2);
}

TEST(BestPoint, ZeroBaselineNormalisesToZeroAndStillResolves)
{
    std::vector<SweepPoint> pts = {
        point(Scheme::SW_TWO_LEVEL, 1, 5.0, 0.0),
        point(Scheme::SW_TWO_LEVEL, 2, 4.0, 0.0),
    };
    const SweepPoint *best = bestPoint(pts, Scheme::SW_TWO_LEVEL);
    ASSERT_NE(best, nullptr);
    EXPECT_EQ(best->entries, 1);  // both normalise to 0; first wins
}

TEST(Sweep, AggregateBaselineCountsMatchesManualSum)
{
    AccessCounts agg = aggregateBaselineCounts();
    AccessCounts manual;
    for (const Workload &w : allWorkloads())
        manual.add(runBaseline(w.kernel, w.run));
    EXPECT_EQ(agg.allReads(), manual.allReads());
    EXPECT_EQ(agg.allWrites(), manual.allWrites());
    EXPECT_EQ(agg.instructions, manual.instructions);
    // Memoized: a second call returns the identical aggregate.
    AccessCounts again = aggregateBaselineCounts();
    EXPECT_EQ(again.allReads(), agg.allReads());
    EXPECT_EQ(again.instructions, agg.instructions);
}

TEST(Memo, BaselineCacheIsTransparent)
{
    const Workload &w = workloadByName("matrixmul");
    const AccessCounts &cached =
        globalExperimentCache().baseline(w.kernel, w.run);
    AccessCounts fresh = runBaseline(w.kernel, w.run);
    EXPECT_EQ(cached.allReads(), fresh.allReads());
    EXPECT_EQ(cached.allWrites(), fresh.allWrites());
    EXPECT_EQ(cached.instructions, fresh.instructions);
    // Same kernel, same run config: the same entry is served.
    EXPECT_EQ(&globalExperimentCache().baseline(w.kernel, w.run),
              &cached);
}

TEST(Memo, AnalysesSharedAcrossAnnotatedCopies)
{
    const Workload &w = workloadByName("vectoradd");
    auto a = globalExperimentCache().analyses(w.kernel);
    // An annotated copy has identical structure and must hit the same
    // bundle (annotations are excluded from the fingerprint).
    Kernel copy = w.kernel;
    if (copy.numInstrs() > 0)
        copy.instr(0).writeAnno.toORF = true;
    auto b = globalExperimentCache().analyses(copy);
    EXPECT_EQ(a.get(), b.get());
}

TEST(Memo, FingerprintDistinguishesStructure)
{
    Kernel a = parseKernelOrDie(R"(.kernel fp
entry:
    iadd R1, R0, #1
    exit
)");
    Kernel b = parseKernelOrDie(R"(.kernel fp
entry:
    iadd R1, R0, #2
    exit
)");
    EXPECT_NE(kernelFingerprint(a), kernelFingerprint(b));
    Kernel annotated = a;
    annotated.instr(0).writeAnno.toORF = true;
    annotated.instr(0).endOfStrand = true;
    EXPECT_EQ(kernelFingerprint(a), kernelFingerprint(annotated));
}

TEST(Experiment, ErrorAggregationCollectsEveryFailure)
{
    RunOutcome agg;
    RunOutcome okOne, bad1, bad2;
    bad1.error = "first failure";
    bad2.error = "second failure";
    accumulateOutcome(agg, okOne, "fine");
    accumulateOutcome(agg, bad1, "wl_a");
    accumulateOutcome(agg, okOne, "also_fine");
    accumulateOutcome(agg, bad2, "wl_b");
    EXPECT_FALSE(agg.ok());
    EXPECT_EQ(agg.error, "wl_a: first failure; wl_b: second failure");
}

TEST(Sweep, ParallelReportByteIdenticalToSequential)
{
    std::vector<Scheme> schemes = {Scheme::HW_TWO_LEVEL,
                                   Scheme::SW_THREE_LEVEL};
    ExperimentConfig base;

    ThreadPool sequential(1);
    ThreadPool parallel(4);
    SweepTiming seqTiming, parTiming;
    auto seqPts = sweepEntries(schemes, base, &sequential, &seqTiming);
    auto parPts = sweepEntries(schemes, base, &parallel, &parTiming);

    // The headline guarantee: the serialised report of the parallel
    // run is byte-identical to the single-thread (historical) path.
    EXPECT_EQ(sweepToJson(parPts), sweepToJson(seqPts));

    // And not only the summary series: every aggregated outcome
    // (counts, energies, allocation stats) serialises identically.
    ASSERT_EQ(parPts.size(), seqPts.size());
    for (std::size_t i = 0; i < parPts.size(); i++)
        EXPECT_EQ(outcomeToJson(parPts[i].outcome),
                  outcomeToJson(seqPts[i].outcome))
            << "point " << i;

    EXPECT_EQ(seqTiming.threads, 1);
    EXPECT_EQ(parTiming.threads, 4);
    EXPECT_GT(seqTiming.wallSec, 0.0);
    EXPECT_GT(parTiming.cpuSec, 0.0);
}

TEST(Sweep, RunAllWorkloadsMatchesAcrossPools)
{
    ExperimentConfig cfg;
    cfg.scheme = Scheme::SW_TWO_LEVEL;
    cfg.entries = 2;
    ThreadPool sequential(1);
    ThreadPool parallel(3);
    RunOutcome a = runAllWorkloads(cfg, &sequential);
    RunOutcome b = runAllWorkloads(cfg, &parallel);
    EXPECT_EQ(outcomeToJson(a), outcomeToJson(b));
    EXPECT_DOUBLE_EQ(a.energyPJ, b.energyPJ);
    EXPECT_DOUBLE_EQ(a.baselineEnergyPJ, b.baselineEnergyPJ);
}

TEST(Sweep, TimingJsonSerialises)
{
    std::vector<SweepPoint> pts = {
        point(Scheme::SW_TWO_LEVEL, 3, 5.0, 10.0),
    };
    pts[0].cpuSec = 0.25;
    pts[0].outcome.phases.analyzeSec = 0.1;
    SweepTiming t;
    t.wallSec = 0.5;
    t.cpuSec = 1.0;
    t.threads = 4;
    std::string json = sweepTimingsToJson(pts, t);
    EXPECT_NE(json.find("\"threads\":4"), std::string::npos);
    EXPECT_NE(json.find("\"speedup\":2"), std::string::npos);
    EXPECT_NE(json.find("\"analyzeSec\":0.1"), std::string::npos);
    EXPECT_NE(json.find("\"scheme\":\"SW\""), std::string::npos);
}

} // namespace
} // namespace rfh
