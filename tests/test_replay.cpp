/**
 * @file
 * Replay-engine equivalence tests.
 *
 * The replay engine walks a pre-decoded dynamic stream doing only
 * hierarchy state updates and access counting; the direct engine
 * interprets the kernel with real values and verifies every access
 * bit-exactly. The two must agree to the byte on every report — these
 * tests pin that down at three granularities: serialized sweep JSON
 * over the full workload registry (golden), per-executor access
 * counts on random synthetic kernels including predicated and
 * divergent code (property), and the memoization of the recorded
 * stream itself.
 */

#include <gtest/gtest.h>

#include "compiler/allocator.h"
#include "core/experiment.h"
#include "core/json.h"
#include "core/memo.h"
#include "core/metrics.h"
#include "core/sweep.h"
#include "sim/baseline_exec.h"
#include "sim/hw_cache.h"
#include "sim/sw_exec.h"
#include "sim/sw_exec_simt.h"
#include "sim/trace.h"
#include "workloads/registry.h"
#include "workloads/synthetic.h"

namespace rfh {
namespace {

std::string
countsJson(const AccessCounts &c)
{
    JsonWriter w;
    writeJson(w, c);
    return w.str();
}

const std::vector<Scheme> &
allSchemes()
{
    static const std::vector<Scheme> s = {
        Scheme::BASELINE, Scheme::HW_TWO_LEVEL, Scheme::HW_THREE_LEVEL,
        Scheme::SW_TWO_LEVEL, Scheme::SW_THREE_LEVEL,
    };
    return s;
}

// ---- Golden: full-registry aggregates, byte-identical JSON ----

TEST(Replay, AllWorkloadsJsonIdenticalToDirect)
{
    for (Scheme s : allSchemes()) {
        for (int entries : {1, 3, 8}) {
            ExperimentConfig direct;
            direct.scheme = s;
            direct.entries = entries;
            direct.engine = ExecEngine::DIRECT;
            ExperimentConfig replay = direct;
            replay.engine = ExecEngine::REPLAY;

            RunOutcome d = runAllWorkloads(direct);
            RunOutcome r = runAllWorkloads(replay);
            EXPECT_TRUE(d.ok()) << d.error;
            EXPECT_EQ(outcomeToJson(d), outcomeToJson(r))
                << schemeName(s) << " @" << entries << " entries";
        }
    }
}

TEST(Replay, SweepJsonIdenticalToDirect)
{
    ExperimentConfig direct;
    direct.engine = ExecEngine::DIRECT;
    auto dPts = sweepEntries(allSchemes(), direct);
    // AUTO resolves to REPLAY inside sweepEntries.
    auto rPts = sweepEntries(allSchemes(), ExperimentConfig{});
    EXPECT_EQ(sweepToJson(dPts), sweepToJson(rPts));
    ASSERT_EQ(dPts.size(), rPts.size());
    for (std::size_t i = 0; i < dPts.size(); i++)
        EXPECT_EQ(outcomeToJson(dPts[i].outcome),
                  outcomeToJson(rPts[i].outcome))
            << schemeName(dPts[i].scheme) << " @" << dPts[i].entries;
}

// ---- Memoization of the recorded stream ----

TEST(Replay, TraceIsRecordedOnceAndShared)
{
    const Workload &w = workloadByName("nbody");
    ExperimentCache cache;
    auto t1 = cache.trace(w.kernel, w.run);
    auto t2 = cache.trace(w.kernel, w.run);
    EXPECT_EQ(t1.get(), t2.get());
    EXPECT_GT(t1->instructions(), 0u);
    auto stats = cache.stats();
    EXPECT_EQ(stats.traceMisses, 1u);
    EXPECT_EQ(stats.traceHits, 1u);

    // An annotated copy fingerprints identically (annotations never
    // change the dynamic path), so it hits the same entry.
    Kernel annotated = w.kernel;
    AllocOptions opts;
    opts.useLRF = true;
    HierarchyAllocator alloc(EnergyParams{}, opts);
    alloc.run(annotated);
    auto t3 = cache.trace(annotated, w.run);
    EXPECT_EQ(t1.get(), t3.get());
}

// ---- Batched replay: byte-identity with lone runs ----

TEST(Replay, BatchMatchesLoneRunsAcrossSchemes)
{
    const Workload &wl = workloadByName("nbody");
    std::vector<BatchItem> items;
    for (Scheme s : allSchemes()) {
        for (int entries : {1, 3, 8}) {
            BatchItem it;
            it.workload = &wl;
            it.cfg.scheme = s;
            it.cfg.entries = entries;  // engine AUTO -> REPLAY
            items.push_back(it);
        }
    }
    std::vector<RunOutcome> outs = replayBatch(items);
    ASSERT_EQ(outs.size(), items.size());
    for (std::size_t i = 0; i < items.size(); i++) {
        ExperimentConfig lone = items[i].cfg;
        lone.engine = ExecEngine::REPLAY;
        RunOutcome d = runScheme(wl, lone);
        EXPECT_EQ(outcomeToJson(outs[i]), outcomeToJson(d))
            << schemeName(items[i].cfg.scheme) << " @"
            << items[i].cfg.entries;
    }
}

TEST(Replay, BatchSizesOneThreeEightMixedWorkloads)
{
    const char *names[] = {"vectoradd", "reduction", "lu"};
    for (int size : {1, 3, 8}) {
        std::vector<BatchItem> items;
        for (int i = 0; i < size; i++) {
            BatchItem it;
            it.workload = &workloadByName(names[i % 3]);
            it.cfg.scheme = allSchemes()[i % allSchemes().size()];
            it.cfg.entries = 1 + i % 4;
            items.push_back(it);
        }
        std::vector<RunOutcome> outs = replayBatch(items);
        ASSERT_EQ(outs.size(), items.size());
        for (int i = 0; i < size; i++) {
            ExperimentConfig lone = items[i].cfg;
            lone.engine = ExecEngine::REPLAY;
            EXPECT_EQ(
                outcomeToJson(outs[i]),
                outcomeToJson(runScheme(*items[i].workload, lone)))
                << "size=" << size << " item=" << i;
        }
    }
}

// ---- Arena reuse: no state bleed between consecutive runs ----

TEST(Replay, ArenaReuseKeepsConsecutiveRunsByteIdentical)
{
    Counter &reuse = globalMetrics().counter("replay.arena_reuse");
    const std::uint64_t before = reuse.value();
    // Alternating kernels through this thread's arena: stale state
    // surviving a reset would change the second round's counts.
    const Workload &a = workloadByName("nbody");
    const Workload &b = workloadByName("reduction");
    ExperimentConfig cfg;
    cfg.engine = ExecEngine::REPLAY;
    RunOutcome a1 = runScheme(a, cfg);
    RunOutcome b1 = runScheme(b, cfg);
    RunOutcome a2 = runScheme(a, cfg);
    RunOutcome b2 = runScheme(b, cfg);
    EXPECT_EQ(outcomeToJson(a1), outcomeToJson(a2));
    EXPECT_EQ(outcomeToJson(b1), outcomeToJson(b2));
    // The arena block was handed out again, not reallocated.
    EXPECT_GT(reuse.value(), before);
}

// ---- Property: per-executor count equality on random kernels ----

SynthParams
paramsFor(std::uint64_t seed)
{
    SynthParams p;
    p.seed = seed;
    p.strandsPerBody = 1 + static_cast<int>(seed % 3);
    p.opsPerStrand = 4 + static_cast<int>(seed % 11);
    p.loadsPerStrand = 1 + static_cast<int>(seed % 3);
    // Force control flow and predication into most cases: hammocks
    // diverge SIMT warps, predicated defs exercise the executed bit.
    p.pHammock = 0.25 + (seed % 4) * 0.25;
    p.pPredicated = 0.10 + (seed % 3) * 0.10;
    p.fracSfu = (seed % 5) * 0.05;
    p.recencyWindow = 2 + static_cast<int>(seed % 5);
    p.loopIters = 4 + static_cast<int>(seed % 8);
    p.useTex = seed % 7 == 0;
    return p;
}

class ReplayProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ReplayProperty, SwCountsMatchDirect)
{
    std::uint64_t seed = GetParam();
    Kernel k = generateSynthetic("prop", paramsFor(seed));
    ASSERT_EQ(k.validate(), "");

    AllocOptions opts;
    opts.orfEntries = 1 + static_cast<int>(seed % kMaxOrfEntries);
    opts.useLRF = seed % 2 == 0;
    opts.splitLRF = opts.useLRF && seed % 4 != 2;
    HierarchyAllocator alloc(EnergyParams{}, opts);
    alloc.run(k);

    SwExecConfig sc;
    DecodedTrace trace = recordDecodedTrace(k, sc.run);
    SwExecResult direct = runSwHierarchy(k, opts, sc);
    SwExecResult replay = replaySwHierarchy(k, opts, trace, sc);
    ASSERT_EQ(direct.error, "") << "seed=" << seed;
    ASSERT_EQ(replay.error, "") << "seed=" << seed;
    EXPECT_EQ(countsJson(direct.counts), countsJson(replay.counts))
        << "seed=" << seed;
}

TEST_P(ReplayProperty, BaselineCountsMatchDirect)
{
    std::uint64_t seed = GetParam();
    Kernel k = generateSynthetic("prop", paramsFor(seed));
    ASSERT_EQ(k.validate(), "");

    RunConfig run;
    DecodedTrace trace = recordDecodedTrace(k, run);
    AccessCounts direct = runBaseline(k, run);
    AccessCounts replay = replayBaseline(k, trace);
    EXPECT_EQ(countsJson(direct), countsJson(replay)) << "seed=" << seed;
}

TEST_P(ReplayProperty, HwCountsMatchDirect)
{
    std::uint64_t seed = GetParam();
    Kernel k = generateSynthetic("prop", paramsFor(seed));
    ASSERT_EQ(k.validate(), "");

    for (bool lrf : {false, true}) {
        HwCacheConfig cfg;
        cfg.rfcEntries = 1 + static_cast<int>(seed % kMaxOrfEntries);
        cfg.useLRF = lrf;
        cfg.flushOnBackwardBranch = seed % 3 == 0;
        DecodedTrace trace = recordDecodedTrace(k, cfg.run);
        AccessCounts direct = runHwCache(k, cfg);
        AccessCounts replay = replayHwCache(k, cfg, trace);
        EXPECT_EQ(countsJson(direct), countsJson(replay))
            << "seed=" << seed << " lrf=" << lrf;
    }
}

TEST_P(ReplayProperty, SimtCountsMatchDirect)
{
    std::uint64_t seed = GetParam();
    Kernel k = generateSynthetic("prop", paramsFor(seed));
    ASSERT_EQ(k.validate(), "");

    AllocOptions opts;
    opts.orfEntries = 1 + static_cast<int>(seed % kMaxOrfEntries);
    opts.useLRF = seed % 2 == 0;
    opts.splitLRF = opts.useLRF;
    HierarchyAllocator alloc(EnergyParams{}, opts);
    alloc.run(k);

    SimtExecConfig sc;
    sc.width = 1 + static_cast<int>(seed % 8);
    DecodedTrace trace = recordSimtDecodedTrace(
        k, sc.numWarps, sc.width, sc.maxInstrsPerWarp);
    SwExecResult direct = runSwHierarchySimt(k, opts, sc);
    SwExecResult replay = replaySwHierarchySimt(k, opts, trace, sc);
    ASSERT_EQ(direct.error.empty(), replay.error.empty())
        << "seed=" << seed << " direct=" << direct.error
        << " replay=" << replay.error;
    if (direct.error.empty()) {
        EXPECT_EQ(countsJson(direct.counts), countsJson(replay.counts))
            << "seed=" << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayProperty,
                         ::testing::Range<std::uint64_t>(1, 25));

} // namespace
} // namespace rfh
