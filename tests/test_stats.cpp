/**
 * @file
 * Streaming-statistics core (core/stats.h): the exact-merge, quantile,
 * and bootstrap contracts the corpus engine's byte-identity promise
 * rests on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "core/json.h"
#include "core/stats.h"

namespace rfh {
namespace {

/** Deterministic sample stream shared by the merge/quantile tests. */
std::vector<double>
lognormalSamples(int n, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::lognormal_distribution<double> dist(0.0, 1.0);
    std::vector<double> xs(n);
    for (double &x : xs)
        x = dist(rng);
    return xs;
}

StreamStat
statOf(const std::vector<double> &xs)
{
    StreamStat s;
    for (double x : xs)
        s.add(x);
    return s;
}

// ---- wireRound: the one quantization point ----

TEST(WireRound, IsIdempotent)
{
    std::mt19937_64 rng(7);
    std::uniform_real_distribution<double> dist(0.0, 10.0);
    for (int i = 0; i < 1000; i++) {
        double v = dist(rng);
        double once = wireRound(v);
        EXPECT_EQ(once, wireRound(once)) << v;
    }
}

TEST(WireRound, MatchesJsonWriterEncoding)
{
    // The definition: a wire-rounded value printed by JsonWriter reads
    // back as itself, so samples survive a JSON round trip unchanged.
    for (double v : {0.123456789, 1.0 / 3.0, 0.5438527891, 1e-9}) {
        double w = wireRound(v);
        JsonWriter jw;
        jw.beginObject().key("v").value(w).endObject();
        JsonParseResult p = parseJson(jw.str());
        ASSERT_TRUE(p.ok) << p.error;
        EXPECT_EQ(p.value.numberOr("v", -1.0), w);
    }
}

// ---- empty and single-sample degenerate states ----

TEST(StreamStat, EmptyStateIsAllZero)
{
    StreamStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
    EXPECT_EQ(s.quantile(0.5), 0.0);
    StatBand b = s.bootstrapMeanBand(0.95, 100, 1);
    EXPECT_EQ(b.lo, 0.0);
    EXPECT_EQ(b.hi, 0.0);
}

TEST(StreamStat, SingleSampleDegeneratesToThatSample)
{
    StreamStat s;
    s.add(0.75);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_NEAR(s.mean(), 0.75, 1e-7);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 0.75);
    EXPECT_EQ(s.max(), 0.75);
    StatBand b = s.bootstrapMeanBand(0.95, 100, 1);
    EXPECT_EQ(b.lo, b.hi);
    EXPECT_NEAR(b.lo, s.mean(), 1e-12);
}

// ---- moments against exact arithmetic ----

TEST(StreamStat, MomentsMatchExactComputation)
{
    std::vector<double> xs = lognormalSamples(5000, 11);
    StreamStat s = statOf(xs);

    double exactMean = 0.0;
    for (double x : xs)
        exactMean += x;
    exactMean /= xs.size();
    double exactVar = 0.0;
    for (double x : xs)
        exactVar += (x - exactMean) * (x - exactMean);
    exactVar /= xs.size() - 1;

    // The only loss is the 2^-24 fixed-point quantization at add().
    EXPECT_EQ(s.count(), xs.size());
    EXPECT_NEAR(s.mean(), exactMean, 1e-6);
    EXPECT_NEAR(s.variance(), exactVar, 1e-4 * exactVar + 1e-6);
    EXPECT_NEAR(s.stddev(), std::sqrt(exactVar), 1e-5);
    EXPECT_EQ(s.min(), *std::min_element(xs.begin(), xs.end()));
    EXPECT_EQ(s.max(), *std::max_element(xs.begin(), xs.end()));
}

// ---- the exact-merge contract ----

TEST(StreamStat, MergeOfSplitsEqualsSequentialFold)
{
    std::vector<double> xs = lognormalSamples(2000, 23);
    StreamStat whole = statOf(xs);

    // Any contiguous split, merged in order, reproduces the exact
    // state — the fingerprint covers every bit of it.
    std::mt19937_64 rng(31);
    for (int trial = 0; trial < 20; trial++) {
        int parts = 1 + int(rng() % 7);
        std::vector<StreamStat> shard(parts);
        for (std::size_t i = 0; i < xs.size(); i++)
            shard[rng() % parts].add(xs[i]);
        StreamStat merged;
        for (const StreamStat &s : shard)
            merged.merge(s);
        EXPECT_EQ(merged.fingerprint(), whole.fingerprint()) << trial;
        EXPECT_EQ(merged.count(), whole.count());
        EXPECT_EQ(merged.mean(), whole.mean());
    }
}

TEST(StreamStat, MergeIsCommutativeAndAssociative)
{
    std::vector<double> xs = lognormalSamples(900, 41);
    StreamStat a = statOf(
        std::vector<double>(xs.begin(), xs.begin() + 300));
    StreamStat b = statOf(
        std::vector<double>(xs.begin() + 300, xs.begin() + 600));
    StreamStat c =
        statOf(std::vector<double>(xs.begin() + 600, xs.end()));

    // (a+b)+c
    StreamStat ab = a;
    ab.merge(b);
    StreamStat ab_c = ab;
    ab_c.merge(c);
    // a+(b+c)
    StreamStat bc = b;
    bc.merge(c);
    StreamStat a_bc = a;
    a_bc.merge(bc);
    // c+b+a
    StreamStat cba = c;
    cba.merge(b);
    cba.merge(a);

    EXPECT_EQ(ab_c.fingerprint(), a_bc.fingerprint());
    EXPECT_EQ(ab_c.fingerprint(), cba.fingerprint());
    EXPECT_EQ(ab_c.fingerprint(), statOf(xs).fingerprint());
}

TEST(StreamStat, MergeWithEmptyIsIdentity)
{
    StreamStat s = statOf(lognormalSamples(100, 5));
    std::uint64_t before = s.fingerprint();
    StreamStat empty;
    s.merge(empty);
    EXPECT_EQ(s.fingerprint(), before);
    StreamStat other;
    other.merge(s);
    EXPECT_EQ(other.fingerprint(), before);
}

TEST(StreamStat, FingerprintSeparatesDifferentStates)
{
    StreamStat a, b;
    a.add(0.5);
    b.add(0.5);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    b.add(0.5);
    EXPECT_NE(a.fingerprint(), b.fingerprint());
    StreamStat c;
    c.add(0.25);
    EXPECT_NE(a.fingerprint(), c.fingerprint());
}

// ---- histogram quantiles against an exact sort ----

TEST(StreamStat, QuantilesTrackExactSortWithinBucketResolution)
{
    std::vector<double> xs = lognormalSamples(10000, 57);
    StreamStat s = statOf(xs);
    std::vector<double> sorted = xs;
    std::sort(sorted.begin(), sorted.end());

    // One log bucket spans a 2^(1/16) ratio; allow two buckets of
    // slack for the off-by-one between order-statistic definitions.
    const double kRelTol = std::pow(2.0, 2.0 / 16.0) - 1.0;
    for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
        double exact =
            sorted[std::min(sorted.size() - 1,
                            std::size_t(q * sorted.size()))];
        double approx = s.quantile(q);
        EXPECT_NEAR(approx, exact, kRelTol * exact)
            << "q=" << q;
    }
    EXPECT_LE(s.quantile(0.0), s.quantile(0.5));
    EXPECT_LE(s.quantile(0.5), s.quantile(1.0));
}

TEST(StreamStat, QuantileHandlesNonpositivePool)
{
    StreamStat s;
    for (int i = 0; i < 10; i++)
        s.add(0.0);
    s.add(1.0);
    // Ten of eleven samples pool at nonpositive; the median is 0.
    EXPECT_EQ(s.quantile(0.5), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 1.0);
}

// ---- bootstrap band determinism ----

TEST(StreamStat, BootstrapBandIsDeterministicUnderFixedSeed)
{
    StreamStat s = statOf(lognormalSamples(3000, 71));
    StatBand b1 = s.bootstrapMeanBand(0.95, 200, 42);
    StatBand b2 = s.bootstrapMeanBand(0.95, 200, 42);
    EXPECT_EQ(b1.lo, b2.lo);
    EXPECT_EQ(b1.hi, b2.hi);

    // A different seed draws different resamples; with 3000 samples
    // the band must still move (if it never did, the seed is ignored).
    StatBand b3 = s.bootstrapMeanBand(0.95, 200, 43);
    EXPECT_TRUE(b3.lo != b1.lo || b3.hi != b1.hi);
}

TEST(StreamStat, BootstrapBandBracketsTheMeanAndNarrowsWithN)
{
    StreamStat small = statOf(lognormalSamples(200, 83));
    StreamStat large = statOf(lognormalSamples(20000, 83));
    StatBand bs = small.bootstrapMeanBand(0.95, 200, 1);
    StatBand bl = large.bootstrapMeanBand(0.95, 200, 1);
    EXPECT_TRUE(bs.contains(small.mean()));
    EXPECT_TRUE(bl.contains(large.mean()));
    EXPECT_LT(bl.hi - bl.lo, bs.hi - bs.lo);
}

TEST(StreamStat, BootstrapBandIsMergeOrderInvariant)
{
    // The band is a pure function of the exact state, so any shard
    // layout that merges to the same state yields the same band.
    std::vector<double> xs = lognormalSamples(1000, 97);
    StreamStat seq = statOf(xs);
    StreamStat odd, even;
    for (std::size_t i = 0; i < xs.size(); i++)
        (i % 2 ? odd : even).add(xs[i]);
    StreamStat merged = odd;
    merged.merge(even);
    StatBand a = seq.bootstrapMeanBand(0.95, 200, 9);
    StatBand b = merged.bootstrapMeanBand(0.95, 200, 9);
    EXPECT_EQ(a.lo, b.lo);
    EXPECT_EQ(a.hi, b.hi);
}

// ---- JSON summary shape ----

TEST(StreamStat, WriteJsonEmitsSummaryAndOptionalBand)
{
    StreamStat s = statOf(lognormalSamples(500, 3));
    JsonWriter w;
    s.writeJson(w, 0.95, 100, 7);
    JsonParseResult p = parseJson(w.str());
    ASSERT_TRUE(p.ok) << p.error;
    EXPECT_EQ(p.value.numberOr("count", -1), 500.0);
    EXPECT_NE(p.value.find("mean"), nullptr);
    EXPECT_NE(p.value.find("p50"), nullptr);
    const JsonValue *band = p.value.find("band");
    ASSERT_NE(band, nullptr);
    EXPECT_LE(band->numberOr("lo", 1e9), band->numberOr("hi", -1e9));

    JsonWriter w2;
    s.writeJson(w2, 0.95, 0, 7);
    JsonParseResult p2 = parseJson(w2.str());
    ASSERT_TRUE(p2.ok) << p2.error;
    EXPECT_EQ(p2.value.find("band"), nullptr);
}

} // namespace
} // namespace rfh
