/**
 * @file
 * Tests for the linear-scan register pre-allocator: renaming within
 * the budget, spill insertion, functional equivalence, and interaction
 * with the hierarchy allocator.
 */

#include <gtest/gtest.h>

#include "compiler/allocator.h"
#include "compiler/regalloc.h"
#include "ir/parser.h"
#include "sim/machine.h"
#include "sim/sw_exec.h"
#include "workloads/registry.h"
#include "workloads/synthetic.h"

namespace rfh {
namespace {

/** Values stored to global memory (kernel outputs) after execution. */
std::vector<std::uint32_t>
globalOutputs(const Kernel &k, std::uint32_t warp_id = 1)
{
    WarpContext w;
    w.reset(warp_id);
    std::uint64_t steps = 0;
    std::vector<std::uint32_t> outs;
    while (!w.done && steps++ < (1u << 20)) {
        const Instruction &in = k.blocks[w.block].instrs[w.idx];
        if (in.op == Opcode::ST_GLOBAL) {
            if (in.srcs[1].isReg)
                outs.push_back(w.regs[in.srcs[1].reg]);
        }
        step(k, w);
    }
    EXPECT_TRUE(w.done);
    return outs;
}

TEST(RegAlloc, RenamesWithinBudget)
{
    Kernel k = parseKernelOrDie(R"(.kernel wide_names
entry:
    iadd R40, R0, #1
    iadd R41, R40, #2
    iadd R42, R41, #3
    st.global [R0], R42
    exit
)");
    RegAllocOptions opts;
    opts.numRegs = 8;
    opts.firstReg = 1;
    RegAllocStats stats = allocateRegisters(k, opts);
    EXPECT_EQ(stats.liveRanges, 3);
    EXPECT_EQ(stats.spilledRanges, 0);
    EXPECT_LE(stats.regsUsed, 8);
    for (int lin = 0; lin < k.numInstrs(); lin++) {
        const Instruction &in = k.instr(lin);
        if (in.dst) {
            EXPECT_LT(*in.dst, opts.firstReg + opts.numRegs);
        }
    }
}

TEST(RegAlloc, ReusesRegistersAcrossDisjointRanges)
{
    Kernel k = parseKernelOrDie(R"(.kernel reuse
entry:
    iadd R10, R0, #1
    st.shared [R0], R10
    iadd R20, R0, #2
    st.shared [R0], R20
    iadd R30, R0, #3
    st.shared [R0], R30
    exit
)");
    RegAllocOptions opts;
    opts.numRegs = 4;
    RegAllocStats stats = allocateRegisters(k, opts);
    EXPECT_EQ(stats.spilledRanges, 0);
    // Three disjoint ranges can share one register.
    EXPECT_EQ(stats.regsUsed, 1);
}

TEST(RegAlloc, SpillsUnderPressure)
{
    // Six simultaneously-live values with a 2-register budget plus
    // scratch must spill.
    Kernel k = parseKernelOrDie(R"(.kernel pressure
entry:
    iadd R10, R0, #1
    iadd R11, R0, #2
    iadd R12, R0, #3
    iadd R13, R0, #4
    iadd R14, R0, #5
    iadd R15, R0, #6
    iadd R20, R10, R11
    iadd R21, R12, R13
    iadd R22, R14, R15
    iadd R23, R20, R21
    iadd R24, R23, R22
    st.global [R0], R24
    exit
)");
    Kernel orig = k;
    RegAllocOptions opts;
    opts.numRegs = 5;
    RegAllocStats stats = allocateRegisters(k, opts);
    EXPECT_GT(stats.spilledRanges, 0);
    EXPECT_GT(stats.spillStores, 0);
    EXPECT_GT(stats.spillLoads, 0);
    ASSERT_EQ(k.validate(), "");
    EXPECT_EQ(globalOutputs(k), globalOutputs(orig));
}

TEST(RegAlloc, PinnedRegistersKeepTheirNames)
{
    Kernel k = parseKernelOrDie(R"(.kernel pin
entry:
    ld.param  R10, [R63]
    iadd      R11, R10, R0
    st.global [R11], R0
    exit
)");
    allocateRegisters(k);
    // R0 (thread id) and R63 (param base) are live-in: untouched.
    EXPECT_EQ(k.instr(0).srcs[0].reg, 63);
    bool r0_used = false;
    for (int lin = 0; lin < k.numInstrs(); lin++)
        for (int s = 0; s < k.instr(lin).numSrcs; s++)
            if (k.instr(lin).srcs[s].isReg &&
                k.instr(lin).srcs[s].reg == 0)
                r0_used = true;
    EXPECT_TRUE(r0_used);
}

TEST(RegAlloc, WideValuesStayPaired)
{
    Kernel k = parseKernelOrDie(R"(.kernel wide
entry:
    imul.wide R20, R0, #8
    iadd R22, R20, R21
    st.global [R0], R22
    exit
)");
    Kernel orig = k;
    RegAllocOptions opts;
    opts.numRegs = 6;
    allocateRegisters(k, opts);
    // The wide pair is pinned: destination unchanged.
    EXPECT_EQ(*k.instr(0).dst, 20);
    EXPECT_TRUE(k.instr(0).wide);
    EXPECT_EQ(globalOutputs(k), globalOutputs(orig));
}

TEST(RegAlloc, EquivalentOnAllWorkloads)
{
    RegAllocOptions opts;
    opts.numRegs = 16;
    for (const Workload &w : allWorkloads()) {
        Kernel k = w.kernel;
        RegAllocStats stats = allocateRegisters(k, opts);
        ASSERT_EQ(k.validate(), "") << w.name;
        EXPECT_EQ(globalOutputs(k, 2), globalOutputs(w.kernel, 2))
            << w.name << " (spills=" << stats.spilledRanges << ")";
    }
}

TEST(RegAlloc, TightBudgetStillRunsThroughHierarchy)
{
    // The full pipeline: regalloc to a tight budget, then hierarchy
    // allocation, then verified execution.
    RegAllocOptions ro;
    ro.numRegs = 10;
    AllocOptions ao;
    ao.useLRF = true;
    ao.splitLRF = true;
    for (std::uint64_t seed : {5u, 55u}) {
        SynthParams p;
        p.seed = seed;
        Kernel k = generateSynthetic("tight", p);
        allocateRegisters(k, ro);
        HierarchyAllocator alloc(EnergyParams{}, ao);
        alloc.run(k);
        SwExecConfig cfg;
        cfg.run.numWarps = 2;
        SwExecResult r = runSwHierarchy(k, ao, cfg);
        EXPECT_TRUE(r.ok()) << "seed " << seed << ": " << r.error;
    }
}

TEST(RegAlloc, FewerRegsUsedThanBudgetWhenPossible)
{
    Kernel k = workloadByName("vectoradd").kernel;
    RegAllocOptions opts;
    opts.numRegs = 30;
    RegAllocStats stats = allocateRegisters(k, opts);
    EXPECT_EQ(stats.spilledRanges, 0);
    EXPECT_LT(stats.regsUsed, 12);
}

} // namespace
} // namespace rfh
