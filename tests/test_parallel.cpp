/**
 * @file
 * Tests for the experiment engine's thread pool (core/parallel.h).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "core/parallel.h"

namespace rfh {
namespace {

TEST(Parallel, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    const int n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](int i) { hits[i]++; });
    for (int i = 0; i < n; i++)
        EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Parallel, SingleThreadRunsInlineInAscendingOrder)
{
    ThreadPool pool(1);
    std::vector<int> order;
    std::thread::id caller = std::this_thread::get_id();
    pool.parallelFor(5, [&](int i) {
        // Inline path: same thread, strictly ascending — the exact
        // historical sequential loop.
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Parallel, MoreTasksThanThreadsAndViceVersa)
{
    ThreadPool pool(8);
    std::atomic<int> sum{0};
    pool.parallelFor(3, [&](int i) { sum += i; });
    EXPECT_EQ(sum.load(), 3);
    sum = 0;
    pool.parallelFor(100, [&](int i) { sum += i; });
    EXPECT_EQ(sum.load(), 4950);
}

TEST(Parallel, ParallelMapPreservesOrder)
{
    ThreadPool pool(4);
    std::vector<int> in;
    for (int i = 0; i < 64; i++)
        in.push_back(i);
    std::vector<int> out = pool.parallelMap(in, [](int v) {
        return v * v;
    });
    ASSERT_EQ(out.size(), in.size());
    for (int i = 0; i < 64; i++)
        EXPECT_EQ(out[i], i * i);
}

TEST(Parallel, ExceptionsPropagateToCaller)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(
        pool.parallelFor(50,
                         [&](int i) {
                             ran++;
                             if (i == 13)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The job drains before rethrowing; the pool stays usable.
    std::atomic<int> sum{0};
    pool.parallelFor(10, [&](int i) { sum += i; });
    EXPECT_EQ(sum.load(), 45);
    EXPECT_GT(ran.load(), 0);
}

TEST(Parallel, NestedCallsRunInlineWithoutDeadlock)
{
    ThreadPool pool(4);
    std::atomic<int> total{0};
    pool.parallelFor(8, [&](int) {
        pool.parallelFor(8, [&](int) { total++; });
    });
    EXPECT_EQ(total.load(), 64);
}

TEST(Parallel, DefaultThreadCountHonoursEnvOverride)
{
    const char *saved = std::getenv("RFH_THREADS");
    std::string savedVal = saved ? saved : "";

    setenv("RFH_THREADS", "3", 1);
    EXPECT_EQ(defaultThreadCount(), 3);
    setenv("RFH_THREADS", "0", 1);
    EXPECT_EQ(defaultThreadCount(), 1);  // clamped
    setenv("RFH_THREADS", "9999", 1);
    EXPECT_EQ(defaultThreadCount(), 256);  // clamped
    setenv("RFH_THREADS", "garbage", 1);
    EXPECT_GE(defaultThreadCount(), 1);  // falls back to hardware

    if (saved)
        setenv("RFH_THREADS", savedVal.c_str(), 1);
    else
        unsetenv("RFH_THREADS");
}

TEST(Parallel, ZeroAndNegativeSizesAreNoOps)
{
    ThreadPool pool(4);
    bool ran = false;
    pool.parallelFor(0, [&](int) { ran = true; });
    pool.parallelFor(-5, [&](int) { ran = true; });
    EXPECT_FALSE(ran);
}

} // namespace
} // namespace rfh
