/**
 * @file
 * Tests for the SIMT-divergent verifying executor: per-lane ORF/LRF
 * state must hold under hammock serialisation, per-lane predication,
 * divergent loop trip counts, and warp-level deschedules.
 */

#include <gtest/gtest.h>

#include "compiler/allocator.h"
#include "ir/parser.h"
#include "sim/sw_exec_simt.h"
#include "workloads/registry.h"
#include "workloads/synthetic.h"

namespace rfh {
namespace {

SwExecResult
compileAndRunSimt(const Kernel &kernel, int warps = 1, int width = 8,
                  bool lrf = true)
{
    Kernel k = kernel;
    AllocOptions opts;
    opts.useLRF = lrf;
    opts.splitLRF = lrf;
    HierarchyAllocator alloc(EnergyParams{}, opts);
    alloc.run(k);
    SimtExecConfig cfg;
    cfg.numWarps = warps;
    cfg.width = width;
    return runSwHierarchySimt(k, opts, cfg);
}

TEST(SwExecSimt, UniformWarpMatchesScalarCounts)
{
    Kernel k = parseKernelOrDie(R"(.kernel u
entry:
    iadd R1, R0, #1
    iadd R2, R1, #2
    st.shared [R0], R2
    exit
)");
    SwExecResult r = compileAndRunSimt(k, 1, 8, false);
    ASSERT_TRUE(r.ok()) << r.error;
    // Warp-level counting: same operand counts as one scalar thread.
    EXPECT_EQ(r.counts.instructions, 4u);
    EXPECT_EQ(r.counts.totalReads(Level::ORF), 3u);
}

TEST(SwExecSimt, DivergentHammockVerifiesPerLane)
{
    // Lanes take different hammock sides; the shared ORF entry of the
    // Figure 10(c) group must hold each lane's own side's value.
    Kernel k = parseKernelOrDie(R"(.kernel ham
entry:
    setlt R2, R0, #4
    @R2 bra right
left:
    iadd R1, R0, #7
    bra merge
right:
    iadd R1, R0, #8
merge:
    iadd R3, R1, #1
    st.shared [R0], R3
    exit
)");
    SwExecResult r = compileAndRunSimt(k, 2, 8);
    ASSERT_TRUE(r.ok()) << r.error;
}

TEST(SwExecSimt, PerLanePredicationVerifies)
{
    Kernel k = parseKernelOrDie(R"(.kernel pred
entry:
    mov R2, #5
    setlt R1, R0, #3
    @R1 iadd R2, R0, #9
    iadd R3, R2, #1
    st.shared [R0], R3
    exit
)");
    SwExecResult r = compileAndRunSimt(k, 1, 8);
    ASSERT_TRUE(r.ok()) << r.error;
}

TEST(SwExecSimt, DivergentLoopTripCounts)
{
    // Lanes iterate different numbers of times; loop-carried values
    // and per-iteration temporaries must verify on every lane path.
    Kernel k = parseKernelOrDie(R"(.kernel trip
entry:
    and  R1, R0, #3
    iadd R1, R1, #1
    mov  R2, #0
body:
    iadd R4, R2, #3
    iadd R2, R4, R1
    isub R1, R1, #1
    setgt R3, R1, #0
    @R3 bra body
out:
    st.global [R0], R2
    exit
)");
    SwExecResult r = compileAndRunSimt(k, 2, 8);
    ASSERT_TRUE(r.ok()) << r.error;
}

TEST(SwExecSimt, LongLatencyDescheduleInvalidatesAllLanes)
{
    Kernel k = parseKernelOrDie(R"(.kernel ll
entry:
    iadd R1, R0, #1
    ld.global R2, [R0]
    iadd R3, R2, R1
    st.shared [R0], R3
    exit
)");
    SwExecResult r = compileAndRunSimt(k, 1, 8);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.counts.deschedules, 1u);
}

TEST(SwExecSimt, CorruptAnnotationCaughtWithLaneDiagnostic)
{
    Kernel k = parseKernelOrDie(R"(.kernel bad
entry:
    iadd R1, R0, #1
    iadd R2, R1, #2
    st.shared [R0], R2
    exit
)");
    AllocOptions opts;
    HierarchyAllocator alloc(EnergyParams{}, opts);
    alloc.run(k);
    Instruction &use = k.instr(1);
    ASSERT_EQ(use.readAnno[0].level, Level::ORF);
    use.readAnno[0].entry =
        static_cast<std::uint8_t>((use.readAnno[0].entry + 1) % 3);
    SimtExecConfig cfg;
    SwExecResult r = runSwHierarchySimt(k, opts, cfg);
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("lane"), std::string::npos);
}

TEST(SwExecSimt, AllWorkloadsVerifyDivergently)
{
    for (const Workload &w : allWorkloads()) {
        SwExecResult r = compileAndRunSimt(w.kernel, 1, 4);
        EXPECT_TRUE(r.ok()) << w.name << ": " << r.error;
    }
}

TEST(SwExecSimt, SyntheticKernelsVerifyDivergently)
{
    for (std::uint64_t seed : {3u, 13u, 23u, 43u}) {
        SynthParams p;
        p.seed = seed;
        p.pHammock = 0.5;
        p.pPredicated = 0.15;
        Kernel k = generateSynthetic("simtprop", p);
        SwExecResult r = compileAndRunSimt(k, 2, 8);
        EXPECT_TRUE(r.ok()) << "seed " << seed << ": " << r.error;
    }
}

} // namespace
} // namespace rfh
