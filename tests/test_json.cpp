/**
 * @file
 * Tests for the JSON stats emission.
 */

#include <gtest/gtest.h>

#include "core/json.h"

namespace rfh {
namespace {

TEST(Json, WriterBasics)
{
    JsonWriter w;
    w.beginObject();
    w.key("a").value(1);
    w.key("b").value("x\"y");
    w.key("c").beginArray().value(1.5).value(true).endArray();
    w.key("d").beginObject().key("n").value(
        static_cast<std::uint64_t>(7)).endObject();
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"a\":1,\"b\":\"x\\\"y\",\"c\":[1.5,true],"
              "\"d\":{\"n\":7}}");
}

TEST(Json, AccessCountsRoundTripShape)
{
    AccessCounts c;
    c.read(Level::MRF, Datapath::PRIVATE, 10);
    c.write(Level::ORF, Datapath::SHARED, 3);
    c.instructions = 5;
    JsonWriter w;
    writeJson(w, c);
    const std::string &s = w.str();
    EXPECT_NE(s.find("\"MRF\":{\"reads\":10"), std::string::npos);
    EXPECT_NE(s.find("\"ORF\":{\"reads\":0,\"writes\":3"),
              std::string::npos);
    EXPECT_NE(s.find("\"instructions\":5"), std::string::npos);
}

TEST(Json, OutcomeIncludesEnergyAndAllocation)
{
    ExperimentConfig cfg;
    cfg.scheme = Scheme::SW_THREE_LEVEL;
    cfg.entries = 3;
    RunOutcome o = runScheme(workloadByName("vectoradd"), cfg);
    ASSERT_TRUE(o.ok());
    std::string s = outcomeToJson(o);
    EXPECT_NE(s.find("\"ok\":true"), std::string::npos);
    EXPECT_NE(s.find("\"normalizedEnergy\":"), std::string::npos);
    EXPECT_NE(s.find("\"allocation\":{"), std::string::npos);
    EXPECT_NE(s.find("\"strands\":"), std::string::npos);
    // No trailing commas / balanced braces.
    EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
              std::count(s.begin(), s.end(), '}'));
    EXPECT_EQ(s.find(",}"), std::string::npos);
    EXPECT_EQ(s.find(",]"), std::string::npos);
}

TEST(Json, SweepSeries)
{
    std::vector<SweepPoint> pts(2);
    pts[0].scheme = Scheme::HW_TWO_LEVEL;
    pts[0].entries = 1;
    pts[0].outcome.energyPJ = 5;
    pts[0].outcome.baselineEnergyPJ = 10;
    pts[1].scheme = Scheme::SW_TWO_LEVEL;
    pts[1].entries = 2;
    pts[1].outcome.energyPJ = 4;
    pts[1].outcome.baselineEnergyPJ = 10;
    std::string s = sweepToJson(pts);
    EXPECT_NE(s.find("\"scheme\":\"HW\""), std::string::npos);
    EXPECT_NE(s.find("\"entries\":2"), std::string::npos);
    EXPECT_NE(s.find("\"normalizedEnergy\":0.4"), std::string::npos);
    EXPECT_EQ(s.front(), '[');
    EXPECT_EQ(s.back(), ']');
}

} // namespace
} // namespace rfh
