/**
 * @file
 * Tests for the JSON stats emission.
 */

#include <gtest/gtest.h>

#include "core/benchdiff.h"
#include "core/json.h"

namespace rfh {
namespace {

TEST(Json, WriterBasics)
{
    JsonWriter w;
    w.beginObject();
    w.key("a").value(1);
    w.key("b").value("x\"y");
    w.key("c").beginArray().value(1.5).value(true).endArray();
    w.key("d").beginObject().key("n").value(
        static_cast<std::uint64_t>(7)).endObject();
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"a\":1,\"b\":\"x\\\"y\",\"c\":[1.5,true],"
              "\"d\":{\"n\":7}}");
}

TEST(Json, AccessCountsRoundTripShape)
{
    AccessCounts c;
    c.read(Level::MRF, Datapath::PRIVATE, 10);
    c.write(Level::ORF, Datapath::SHARED, 3);
    c.instructions = 5;
    JsonWriter w;
    writeJson(w, c);
    const std::string &s = w.str();
    EXPECT_NE(s.find("\"MRF\":{\"reads\":10"), std::string::npos);
    EXPECT_NE(s.find("\"ORF\":{\"reads\":0,\"writes\":3"),
              std::string::npos);
    EXPECT_NE(s.find("\"instructions\":5"), std::string::npos);
}

TEST(Json, OutcomeIncludesEnergyAndAllocation)
{
    ExperimentConfig cfg;
    cfg.scheme = Scheme::SW_THREE_LEVEL;
    cfg.entries = 3;
    RunOutcome o = runScheme(workloadByName("vectoradd"), cfg);
    ASSERT_TRUE(o.ok());
    std::string s = outcomeToJson(o);
    EXPECT_NE(s.find("\"ok\":true"), std::string::npos);
    EXPECT_NE(s.find("\"normalizedEnergy\":"), std::string::npos);
    EXPECT_NE(s.find("\"allocation\":{"), std::string::npos);
    EXPECT_NE(s.find("\"strands\":"), std::string::npos);
    // No trailing commas / balanced braces.
    EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
              std::count(s.begin(), s.end(), '}'));
    EXPECT_EQ(s.find(",}"), std::string::npos);
    EXPECT_EQ(s.find(",]"), std::string::npos);
}

TEST(Json, SweepSeries)
{
    std::vector<SweepPoint> pts(2);
    pts[0].scheme = Scheme::HW_TWO_LEVEL;
    pts[0].entries = 1;
    pts[0].outcome.energyPJ = 5;
    pts[0].outcome.baselineEnergyPJ = 10;
    pts[1].scheme = Scheme::SW_TWO_LEVEL;
    pts[1].entries = 2;
    pts[1].outcome.energyPJ = 4;
    pts[1].outcome.baselineEnergyPJ = 10;
    std::string s = sweepToJson(pts);
    EXPECT_NE(s.find("\"scheme\":\"HW\""), std::string::npos);
    EXPECT_NE(s.find("\"entries\":2"), std::string::npos);
    EXPECT_NE(s.find("\"normalizedEnergy\":0.4"), std::string::npos);
    EXPECT_EQ(s.front(), '[');
    EXPECT_EQ(s.back(), ']');
}

// ---- Parser negative paths: every error carries a byte offset ----

/** Expect a parse failure whose message is "offset N: <needle>...". */
void
expectParseError(const std::string &text, const std::string &needle)
{
    JsonParseResult r = parseJson(text);
    ASSERT_FALSE(r.ok) << text;
    EXPECT_EQ(r.error.rfind("offset ", 0), 0u) << r.error;
    EXPECT_NE(r.error.find(needle), std::string::npos)
        << "input " << text << ": " << r.error;
}

TEST(JsonNegative, EmptyInput)
{
    expectParseError("", "unexpected end of input");
}

TEST(JsonNegative, MissingColonReportsOffset)
{
    JsonParseResult r = parseJson("{\"a\" 1}");
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.error.rfind("offset 5:", 0), 0u) << r.error;
    EXPECT_NE(r.error.find("expected ':' after object key"),
              std::string::npos)
        << r.error;
}

TEST(JsonNegative, MalformedDocuments)
{
    expectParseError("{\"a\": 1", "in object");
    expectParseError("[1 2]", "expected ',' or ']' in array");
    expectParseError("[1, 2,]", "expected a value");
    expectParseError("\"ab", "unterminated string");
    expectParseError("truth", "invalid literal");
    expectParseError("{\"a\":1} x", "trailing characters");
    expectParseError("\"bad \\q escape\"", "invalid escape character");
    expectParseError("\"\\u12", "truncated \\u escape");
}

TEST(JsonNegative, TrailingGarbageReportsOffsetPastDocument)
{
    JsonParseResult r = parseJson("{\"a\":1} x");
    ASSERT_FALSE(r.ok);
    // The offset points at the garbage, past the valid document.
    EXPECT_EQ(r.error.rfind("offset 8:", 0), 0u) << r.error;
}

// ---- bench-diff negative paths: unrecognised snapshots ----

TEST(BenchDiffNegative, NonObjectSnapshot)
{
    JsonParseResult r = parseJson("[1, 2]");
    ASSERT_TRUE(r.ok);
    std::string error;
    auto entries = benchEntriesFromJson(r.value, &error);
    EXPECT_TRUE(entries.empty());
    EXPECT_EQ(error, "snapshot is not a JSON object");
}

TEST(BenchDiffNegative, UnrecognisedObject)
{
    JsonParseResult r = parseJson("{\"foo\": 1}");
    ASSERT_TRUE(r.ok);
    std::string error;
    auto entries = benchEntriesFromJson(r.value, &error);
    EXPECT_TRUE(entries.empty());
    EXPECT_NE(error.find("unrecognised snapshot format"),
              std::string::npos)
        << error;
}

TEST(BenchDiffNegative, ManifestWithoutBenchmarks)
{
    JsonParseResult r =
        parseJson("{\"schema\": \"rfh-manifest-v1\"}");
    ASSERT_TRUE(r.ok);
    std::string error;
    auto entries = benchEntriesFromJson(r.value, &error);
    EXPECT_TRUE(entries.empty());
    EXPECT_EQ(error, "manifest has no benchmarks array");
}

TEST(BenchDiff, AggregateSnapshotsCompareMediansOnly)
{
    // A repetitions snapshot carries per-iteration rows plus
    // mean/median/stddev aggregates; only the median survives, with
    // the suffix stripped so it pairs against single-shot names.
    JsonParseResult r = parseJson(
        "{\"microbenchmarks\":{\"benchmarks\":["
        "{\"name\":\"BM_X\",\"run_type\":\"iteration\","
        "\"real_time\":11.0,\"time_unit\":\"ns\"},"
        "{\"name\":\"BM_X\",\"run_type\":\"iteration\","
        "\"real_time\":13.0,\"time_unit\":\"ns\"},"
        "{\"name\":\"BM_X_mean\",\"run_type\":\"aggregate\","
        "\"aggregate_name\":\"mean\",\"real_time\":12.0,"
        "\"time_unit\":\"ns\"},"
        "{\"name\":\"BM_X_median\",\"run_type\":\"aggregate\","
        "\"aggregate_name\":\"median\",\"real_time\":11.5,"
        "\"time_unit\":\"ns\"},"
        "{\"name\":\"BM_X_stddev\",\"run_type\":\"aggregate\","
        "\"aggregate_name\":\"stddev\",\"real_time\":1.0,"
        "\"time_unit\":\"ns\"}]}}");
    ASSERT_TRUE(r.ok) << r.error;
    std::string error;
    auto entries = benchEntriesFromJson(r.value, &error);
    ASSERT_EQ(entries.size(), 1u) << error;
    EXPECT_EQ(entries[0].name, "BM_X");
    EXPECT_EQ(entries[0].value, 11.5);
    EXPECT_EQ(entries[0].unit, "ns");
}

TEST(BenchDiff, SingleShotSnapshotsKeepEveryRow)
{
    // Without aggregate rows the historical behaviour is unchanged.
    JsonParseResult r = parseJson(
        "{\"microbenchmarks\":{\"benchmarks\":["
        "{\"name\":\"BM_X\",\"real_time\":11.0,"
        "\"time_unit\":\"ns\"},"
        "{\"name\":\"BM_Y\",\"real_time\":7.0,"
        "\"time_unit\":\"ns\"}]}}");
    ASSERT_TRUE(r.ok) << r.error;
    std::string error;
    auto entries = benchEntriesFromJson(r.value, &error);
    ASSERT_EQ(entries.size(), 2u) << error;
    EXPECT_EQ(entries[0].name, "BM_X");
    EXPECT_EQ(entries[1].name, "BM_Y");
}

TEST(BenchDiffNegative, MalformedEntriesAreSkippedNotFatal)
{
    // Nameless and non-object rows are skipped; the valid row remains.
    JsonParseResult r = parseJson(
        "{\"schema\":\"rfh-manifest-v1\",\"benchmarks\":["
        "{\"value\":1},"
        "7,"
        "{\"name\":\"good\",\"value\":2,\"unit\":\"ns\"}]}");
    ASSERT_TRUE(r.ok) << r.error;
    std::string error;
    auto entries = benchEntriesFromJson(r.value, &error);
    ASSERT_EQ(entries.size(), 1u) << error;
    EXPECT_EQ(entries[0].name, "good");
    EXPECT_EQ(entries[0].value, 2.0);
}

} // namespace
} // namespace rfh
