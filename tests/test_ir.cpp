/**
 * @file
 * Unit tests for the RPTX IR: opcodes, instructions, kernels, the
 * parser, and the printer.
 */

#include <gtest/gtest.h>

#include "ir/kernel.h"
#include "ir/opcode.h"
#include "ir/parser.h"
#include "ir/printer.h"

namespace rfh {
namespace {

// ---------------------------------------------------------------- Opcode

TEST(Opcode, UnitClasses)
{
    EXPECT_EQ(unitClass(Opcode::IADD), UnitClass::ALU);
    EXPECT_EQ(unitClass(Opcode::FFMA), UnitClass::ALU);
    EXPECT_EQ(unitClass(Opcode::SIN), UnitClass::SFU);
    EXPECT_EQ(unitClass(Opcode::LD_GLOBAL), UnitClass::MEM);
    EXPECT_EQ(unitClass(Opcode::TEX), UnitClass::TEX);
    EXPECT_EQ(unitClass(Opcode::BRA), UnitClass::CTRL);
}

TEST(Opcode, LatencyClasses)
{
    EXPECT_TRUE(isLongLatency(Opcode::LD_GLOBAL));
    EXPECT_TRUE(isLongLatency(Opcode::TEX));
    EXPECT_FALSE(isLongLatency(Opcode::LD_SHARED));
    EXPECT_FALSE(isLongLatency(Opcode::IADD));
    EXPECT_FALSE(isLongLatency(Opcode::SIN));
}

TEST(Opcode, SharedUnits)
{
    EXPECT_TRUE(isSharedUnit(UnitClass::SFU));
    EXPECT_TRUE(isSharedUnit(UnitClass::MEM));
    EXPECT_TRUE(isSharedUnit(UnitClass::TEX));
    EXPECT_FALSE(isSharedUnit(UnitClass::ALU));
    EXPECT_FALSE(isSharedUnit(UnitClass::CTRL));
}

TEST(Opcode, DestAndSourceCounts)
{
    EXPECT_TRUE(hasDest(Opcode::IADD));
    EXPECT_TRUE(hasDest(Opcode::LD_GLOBAL));
    EXPECT_FALSE(hasDest(Opcode::ST_GLOBAL));
    EXPECT_FALSE(hasDest(Opcode::BRA));
    EXPECT_EQ(numSrcOperands(Opcode::FFMA), 3);
    EXPECT_EQ(numSrcOperands(Opcode::IADD), 2);
    EXPECT_EQ(numSrcOperands(Opcode::MOV), 1);
    EXPECT_EQ(numSrcOperands(Opcode::ST_SHARED), 2);
}

TEST(Opcode, MnemonicRoundTrip)
{
    for (int i = 0; i < kNumOpcodes; i++) {
        Opcode op = static_cast<Opcode>(i);
        Opcode parsed;
        ASSERT_TRUE(parseOpcode(mnemonic(op), parsed))
            << "mnemonic " << mnemonic(op);
        EXPECT_EQ(parsed, op);
    }
}

TEST(Opcode, ParseRejectsUnknown)
{
    Opcode op;
    EXPECT_FALSE(parseOpcode("frobnicate", op));
    EXPECT_FALSE(parseOpcode("", op));
}

// ----------------------------------------------------------- Instruction

TEST(Instruction, RegisterCounts)
{
    Instruction add = makeALU(Opcode::IADD, 3, SrcOperand::makeReg(1),
                              SrcOperand::makeReg(2));
    EXPECT_EQ(add.numRegReads(), 2);
    EXPECT_EQ(add.numRegWrites(), 1);

    Instruction addi = makeALU(Opcode::IADD, 3, SrcOperand::makeReg(1),
                               SrcOperand::makeImm(7));
    EXPECT_EQ(addi.numRegReads(), 1);

    Instruction wide = makeALU(Opcode::IMUL, 4, SrcOperand::makeReg(1),
                               SrcOperand::makeReg(2));
    wide.wide = true;
    EXPECT_EQ(wide.numRegWrites(), 2);

    Instruction br = makeCondBranch(5, 0);
    EXPECT_EQ(br.numRegReads(), 1);
    EXPECT_EQ(br.numRegWrites(), 0);
}

TEST(Instruction, ClearAnnotations)
{
    Instruction in = makeALU(Opcode::IADD, 3, SrcOperand::makeReg(1),
                             SrcOperand::makeReg(2));
    in.readAnno[0].level = Level::ORF;
    in.writeAnno.toLRF = true;
    in.endOfStrand = true;
    in.clearAnnotations();
    EXPECT_EQ(in.readAnno[0].level, Level::MRF);
    EXPECT_FALSE(in.writeAnno.toLRF);
    EXPECT_TRUE(in.writeAnno.toMRF);
    EXPECT_FALSE(in.endOfStrand);
}

// ----------------------------------------------------------------- Kernel

Kernel
tinyLoopKernel()
{
    KernelBuilder b("tiny");
    b.block("entry");
    b.add(makeALU(Opcode::IADD, 1, SrcOperand::makeReg(0),
                  SrcOperand::makeImm(4)));
    int loop = b.block("loop");
    b.add(makeALU(Opcode::ISUB, 1, SrcOperand::makeReg(1),
                  SrcOperand::makeImm(1)));
    b.add(makeALU(Opcode::SETGT, 2, SrcOperand::makeReg(1),
                  SrcOperand::makeImm(0)));
    b.add(makeCondBranch(2, loop));
    b.block("done");
    b.add(makeExit());
    return b.take();
}

TEST(Kernel, LinearIndexing)
{
    Kernel k = tinyLoopKernel();
    EXPECT_EQ(k.numInstrs(), 5);
    EXPECT_EQ(k.blockStart(0), 0);
    EXPECT_EQ(k.blockStart(1), 1);
    EXPECT_EQ(k.blockStart(2), 4);
    EXPECT_EQ(k.ref(2).block, 1);
    EXPECT_EQ(k.ref(2).idx, 1);
    EXPECT_EQ(k.instr(4).op, Opcode::EXIT);
}

TEST(Kernel, SuccessorsAndPredecessors)
{
    Kernel k = tinyLoopKernel();
    EXPECT_EQ(k.successors(0), std::vector<int>({1}));
    // Conditional backward branch: taken target plus fallthrough.
    std::vector<int> succ1 = k.successors(1);
    EXPECT_EQ(succ1.size(), 2u);
    EXPECT_NE(std::find(succ1.begin(), succ1.end(), 1), succ1.end());
    EXPECT_NE(std::find(succ1.begin(), succ1.end(), 2), succ1.end());
    EXPECT_TRUE(k.successors(2).empty());
    std::vector<int> pred1 = k.predecessors(1);
    EXPECT_EQ(pred1.size(), 2u);
}

TEST(Kernel, NumRegs)
{
    Kernel k = tinyLoopKernel();
    EXPECT_EQ(k.numRegs(), 3);
}

TEST(Kernel, ValidateAcceptsWellFormed)
{
    EXPECT_EQ(tinyLoopKernel().validate(), "");
}

TEST(Kernel, ValidateRejectsBadBranchTarget)
{
    KernelBuilder b("bad");
    b.block("entry");
    b.add(makeBranch(7));
    Kernel k = b.take();
    EXPECT_NE(k.validate().find("branch target"), std::string::npos);
}

TEST(Kernel, ValidateRejectsMidBlockTerminator)
{
    KernelBuilder b("bad");
    b.block("entry");
    b.add(makeExit());
    b.add(makeALU(Opcode::IADD, 1, SrcOperand::makeReg(0),
                  SrcOperand::makeImm(1)));
    Kernel k = b.take();
    EXPECT_NE(k.validate().find("terminator"), std::string::npos);
}

TEST(Kernel, ValidateRejectsEmptyBlock)
{
    Kernel k;
    k.name = "bad";
    k.blocks.push_back(BasicBlock{"a", {}});
    k.blocks.push_back(BasicBlock{"b", {makeExit()}});
    k.finalize();
    EXPECT_NE(k.validate().find("empty"), std::string::npos);
}

TEST(Kernel, ValidateRejectsFallingOffEnd)
{
    KernelBuilder b("bad");
    b.block("entry");
    b.add(makeALU(Opcode::IADD, 1, SrcOperand::makeReg(0),
                  SrcOperand::makeImm(1)));
    Kernel k = b.take();
    EXPECT_FALSE(k.validate().empty());
}

// ----------------------------------------------------------------- Parser

TEST(Parser, ParsesVectorAddLikeKernel)
{
    ParseResult r = parseKernel(R"(.kernel demo
entry:
    shl       R1, R0, #2
    ld.global R2, [R1]
    fadd      R3, R2, #1065353216
    st.global [R1], R3
    exit
)");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.kernel.name, "demo");
    ASSERT_EQ(r.kernel.blocks.size(), 1u);
    EXPECT_EQ(r.kernel.numInstrs(), 5);
    const Instruction &ld = r.kernel.instr(1);
    EXPECT_EQ(ld.op, Opcode::LD_GLOBAL);
    EXPECT_EQ(*ld.dst, 2);
    EXPECT_TRUE(ld.srcs[0].isReg);
    EXPECT_EQ(ld.srcs[0].reg, 1);
}

TEST(Parser, ParsesLabelsAndBranches)
{
    ParseResult r = parseKernel(R"(.kernel loopy
entry:
    iadd R1, R0, #8
top:
    isub R1, R1, #1
    setgt R2, R1, #0
    @R2 bra top
out:
    exit
)");
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_EQ(r.kernel.blocks.size(), 3u);
    const Instruction &br = r.kernel.blocks[1].instrs.back();
    EXPECT_EQ(br.op, Opcode::BRA);
    EXPECT_EQ(br.branchTarget, 1);
    ASSERT_TRUE(br.pred.has_value());
    EXPECT_EQ(*br.pred, 2);
}

TEST(Parser, ParsesWideSuffix)
{
    ParseResult r = parseKernel(R"(.kernel w
entry:
    imul.wide R2, R0, #8
    exit
)");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.kernel.instr(0).wide);
}

TEST(Parser, ParsesCommentsAndHex)
{
    ParseResult r = parseKernel(R"(.kernel c
entry:
    iadd R1, R0, #0x10   ; comment
    mov  R2, #3          // another
    exit
)");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.kernel.instr(0).srcs[1].imm, 16u);
}

TEST(Parser, RejectsUnknownOpcode)
{
    ParseResult r = parseKernel(".kernel x\nentry:\n    bogus R1, R2\n");
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("unknown opcode"), std::string::npos);
}

TEST(Parser, RejectsUndefinedLabel)
{
    ParseResult r = parseKernel(".kernel x\nentry:\n    bra nowhere\n");
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("undefined label"), std::string::npos);
}

TEST(Parser, RejectsDuplicateLabel)
{
    ParseResult r = parseKernel(
        ".kernel x\na:\n    exit\na:\n    exit\n");
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("duplicate label"), std::string::npos);
}

TEST(Parser, RejectsBadRegister)
{
    ParseResult r = parseKernel(".kernel x\nentry:\n    mov R99, #1\n");
    EXPECT_FALSE(r.ok);
}

TEST(Parser, RejectsWrongOperandCount)
{
    ParseResult r = parseKernel(".kernel x\nentry:\n    iadd R1, R2\n");
    EXPECT_FALSE(r.ok);
}

TEST(Parser, ParsesAddressOffsets)
{
    ParseResult r = parseKernel(R"(.kernel off
entry:
    ld.global R1, [R2+16]
    st.shared [R3+0x20], R1
    tex R4, [R2+4]
    exit
)");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.kernel.instr(0).memOffset, 16u);
    EXPECT_EQ(r.kernel.instr(1).memOffset, 32u);
    EXPECT_EQ(r.kernel.instr(2).memOffset, 4u);
}

TEST(Parser, RejectsBadOffset)
{
    ParseResult r = parseKernel(
        ".kernel x\nentry:\n    ld.global R1, [R2+zz]\n    exit\n");
    EXPECT_FALSE(r.ok);
}

TEST(Parser, RejectsImmediateAddress)
{
    ParseResult r = parseKernel(
        ".kernel x\nentry:\n    ld.global R1, #16\n    exit\n");
    EXPECT_FALSE(r.ok);
}

TEST(Parser, ParsesPredicatedInstructions)
{
    // PTX-style if-conversion: any instruction may carry a predicate.
    ParseResult r = parseKernel(
        ".kernel x\nentry:\n    @R1 mov R2, #7\n"
        "    @R1 st.global [R0], R2\n    exit\n");
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_TRUE(r.kernel.instr(0).pred.has_value());
    EXPECT_EQ(*r.kernel.instr(0).pred, 1);
    EXPECT_TRUE(r.kernel.instr(1).pred.has_value());
}

// ---------------------------------------------------------------- Printer

TEST(Printer, RoundTripsThroughParser)
{
    Kernel k = parseKernelOrDie(R"(.kernel rt
entry:
    shl       R1, R0, #2
    ld.global R2, [R1]
    ffma      R3, R2, R2, R1
top:
    isub      R3, R3, #1
    setgt     R4, R3, #0
    @R4 bra   top
out:
    st.global [R1], R3
    exit
)");
    std::string text = printKernel(k);
    Kernel k2 = parseKernelOrDie(text);
    ASSERT_EQ(k2.numInstrs(), k.numInstrs());
    for (int i = 0; i < k.numInstrs(); i++) {
        EXPECT_EQ(k2.instr(i).op, k.instr(i).op) << "lin " << i;
        EXPECT_EQ(k2.instr(i).dst, k.instr(i).dst) << "lin " << i;
        EXPECT_EQ(k2.instr(i).numSrcs, k.instr(i).numSrcs) << "lin " << i;
        for (int s = 0; s < k.instr(i).numSrcs; s++)
            EXPECT_TRUE(k2.instr(i).srcs[s] == k.instr(i).srcs[s]);
        EXPECT_EQ(k2.instr(i).branchTarget, k.instr(i).branchTarget);
    }
}

TEST(Printer, RoundTripsOffsets)
{
    Kernel k = parseKernelOrDie(
        ".kernel o\nentry:\n    ld.global R1, [R2+24]\n    exit\n");
    Kernel k2 = parseKernelOrDie(printKernel(k));
    EXPECT_EQ(k2.instr(0).memOffset, 24u);
}

TEST(Printer, ShowsDeposits)
{
    Kernel k = parseKernelOrDie(
        ".kernel d\nentry:\n    iadd R1, R0, #1\n    exit\n");
    Instruction &in = k.instr(0);
    in.readAnno[0].level = Level::MRF;
    in.readAnno[0].depositToORF = true;
    in.readAnno[0].entry = 2;
    PrintOptions opts;
    opts.annotations = true;
    std::string line = formatInstruction(in, k, opts);
    EXPECT_NE(line.find("MRF>ORF2"), std::string::npos);
}

TEST(Printer, ShowsAnnotations)
{
    Kernel k = parseKernelOrDie(
        ".kernel a\nentry:\n    iadd R1, R0, #1\n    exit\n");
    Instruction &in = k.instr(0);
    in.writeAnno.toORF = true;
    in.writeAnno.orfEntry = 2;
    in.writeAnno.toMRF = false;
    in.readAnno[0].level = Level::LRF;
    PrintOptions opts;
    opts.annotations = true;
    std::string line = formatInstruction(in, k, opts);
    EXPECT_NE(line.find("ORF2"), std::string::npos);
    EXPECT_NE(line.find("LRF"), std::string::npos);
    EXPECT_EQ(line.find("MRF}"), std::string::npos);
}

} // namespace
} // namespace rfh
