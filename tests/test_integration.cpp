/**
 * @file
 * Integration tests: the paper's headline results must hold in shape
 * across the full workload suite — orderings between schemes, the
 * location of the energy minimum, verification-clean execution
 * everywhere, and the Section 7 limit-study orderings.
 */

#include <gtest/gtest.h>

#include "compiler/limit_study.h"
#include "core/experiment.h"
#include "core/report.h"
#include "core/sweep.h"

namespace rfh {
namespace {

double
norm(Scheme s, int entries, bool split = true)
{
    ExperimentConfig cfg;
    cfg.scheme = s;
    cfg.entries = entries;
    cfg.splitLRF = split;
    RunOutcome o = runAllWorkloads(cfg);
    EXPECT_TRUE(o.ok()) << o.error;
    return o.normalizedEnergy();
}

TEST(Integration, AllSchemesVerifyCleanOnAllWorkloads)
{
    for (Scheme s : {Scheme::SW_TWO_LEVEL, Scheme::SW_THREE_LEVEL}) {
        for (int entries : {1, 3, 8}) {
            ExperimentConfig cfg;
            cfg.scheme = s;
            cfg.entries = entries;
            for (const Workload &w : allWorkloads()) {
                RunOutcome o = runScheme(w, cfg);
                EXPECT_TRUE(o.ok()) << w.name << ": " << o.error;
            }
        }
    }
}

TEST(Integration, EverySchemeSavesEnergy)
{
    for (Scheme s : {Scheme::HW_TWO_LEVEL, Scheme::HW_THREE_LEVEL,
                     Scheme::SW_TWO_LEVEL, Scheme::SW_THREE_LEVEL}) {
        double e = norm(s, 3);
        EXPECT_LT(e, 0.9) << schemeName(s);
        EXPECT_GT(e, 0.2) << schemeName(s);
    }
}

TEST(Integration, SoftwareBeatsHardware)
{
    // Paper Section 6.4: software control wins at every size, for both
    // hierarchy depths.
    for (int entries : {2, 3, 4, 6}) {
        EXPECT_LT(norm(Scheme::SW_TWO_LEVEL, entries),
                  norm(Scheme::HW_TWO_LEVEL, entries)) << entries;
        EXPECT_LT(norm(Scheme::SW_THREE_LEVEL, entries),
                  norm(Scheme::HW_THREE_LEVEL, entries)) << entries;
    }
}

TEST(Integration, ThreeLevelsBeatTwo)
{
    for (int entries : {2, 3, 6}) {
        EXPECT_LT(norm(Scheme::SW_THREE_LEVEL, entries),
                  norm(Scheme::SW_TWO_LEVEL, entries)) << entries;
        EXPECT_LT(norm(Scheme::HW_THREE_LEVEL, entries),
                  norm(Scheme::HW_TWO_LEVEL, entries)) << entries;
    }
}

TEST(Integration, SoftwareOptimumAtThreeEntries)
{
    // Paper: both software schemes minimise energy at 3 ORF entries.
    ExperimentConfig base;
    auto points = sweepEntries({Scheme::SW_THREE_LEVEL}, base);
    const SweepPoint *best = bestPoint(points, Scheme::SW_THREE_LEVEL);
    ASSERT_NE(best, nullptr);
    EXPECT_EQ(best->entries, 3);
}

TEST(Integration, HeadlineSavingsInPaperBand)
{
    // Paper: best SW three-level saves 54%; accept 40-65%.
    double best_sw3 = norm(Scheme::SW_THREE_LEVEL, 3);
    EXPECT_GT(1 - best_sw3, 0.40);
    EXPECT_LT(1 - best_sw3, 0.65);
    // Paper: best HW RFC saves 34%; accept 25-45%.
    double best_hw = norm(Scheme::HW_TWO_LEVEL, 3);
    EXPECT_GT(1 - best_hw, 0.25);
    EXPECT_LT(1 - best_hw, 0.48);
}

TEST(Integration, HardwarePerformsOverheadReads)
{
    // Section 6.1: the RFC reads evicted values back out (writeback
    // reads); the software scheme has no such traffic.
    ExperimentConfig hw;
    hw.scheme = Scheme::HW_TWO_LEVEL;
    hw.entries = 3;
    ExperimentConfig sw = hw;
    sw.scheme = Scheme::SW_TWO_LEVEL;
    RunOutcome ho = runAllWorkloads(hw);
    RunOutcome so = runAllWorkloads(sw);
    EXPECT_GT(ho.counts.wbReads, 0u);
    EXPECT_EQ(so.counts.wbReads, 0u);
    AccessCounts base = aggregateBaselineCounts();
    EXPECT_GT(ho.counts.allReads(), base.allReads());
    EXPECT_EQ(so.counts.allReads(), base.allReads());
}

TEST(Integration, LrfCapturesSubstantialReads)
{
    // Section 6.2: despite a single entry per thread, the LRF captures
    // a large share of reads (paper: ~30%; accept >= 15%).
    ExperimentConfig cfg;
    cfg.scheme = Scheme::SW_THREE_LEVEL;
    cfg.entries = 3;
    RunOutcome o = runAllWorkloads(cfg);
    AccessCounts base = aggregateBaselineCounts();
    AccessBreakdown b = normalizeAccesses(o.counts, base);
    EXPECT_GT(b.lrfReads, 0.15);
    // And the LRF never serves the shared datapath.
    EXPECT_EQ(o.counts.reads[static_cast<int>(Level::LRF)][
                  static_cast<int>(Datapath::SHARED)], 0u);
}

TEST(Integration, ExtensionsImproveEnergy)
{
    // Section 6.4: partial-range + read-operand allocation buy a few
    // percent.
    ExperimentConfig with;
    with.scheme = Scheme::SW_THREE_LEVEL;
    with.entries = 3;
    ExperimentConfig without = with;
    without.partialRanges = false;
    without.readOperands = false;
    EXPECT_LT(runAllWorkloads(with).normalizedEnergy(),
              runAllWorkloads(without).normalizedEnergy());
}

TEST(Integration, MrfDominatesResidualEnergy)
{
    // Figure 14: most of the remaining energy is MRF access + wire.
    ExperimentConfig cfg;
    cfg.scheme = Scheme::SW_THREE_LEVEL;
    cfg.entries = 3;
    RunOutcome o = runAllWorkloads(cfg);
    EnergyModel em(cfg.energy, 3, true);
    double mrf = o.counts.accessEnergyPJ(em, Level::MRF) +
        o.counts.wireEnergyPJ(em, Level::MRF);
    EXPECT_GT(mrf / o.energyPJ, 0.5);
    // LRF wire energy is negligible (paper: <1% of baseline).
    EXPECT_LT(o.counts.wireEnergyPJ(em, Level::LRF) /
                  o.baselineEnergyPJ, 0.02);
}

TEST(Integration, LimitStudyOrderings)
{
    LimitStudyResults r = runLimitStudy();
    // Ideal systems bound everything.
    EXPECT_LT(r.idealAllLrf, r.idealAllOrf5);
    EXPECT_LT(r.idealAllOrf5, r.realistic);
    // Ideal all-LRF is in the paper's 80-95% savings band.
    EXPECT_GT(1 - r.idealAllLrf, 0.80);
    // Oracle sizing and idealised rescheduling only help.
    EXPECT_LE(r.variableOracle, r.realistic + 1e-9);
    EXPECT_LE(r.sched8EntriesAt3, r.realistic + 1e-9);
    // Never flushing helps (paper: ~8%).
    EXPECT_LT(r.neverFlush, r.realistic);
    // Keeping the RFC resident past backward branches beats flushing.
    EXPECT_LT(r.hwResidentPastBackward, r.hwFlushAtBackward);
}

TEST(Integration, PerBenchmarkResultsAreSane)
{
    ExperimentConfig cfg;
    cfg.scheme = Scheme::SW_THREE_LEVEL;
    cfg.entries = 3;
    int saved = 0;
    for (const Workload &w : allWorkloads()) {
        RunOutcome o = runScheme(w, cfg);
        ASSERT_TRUE(o.ok()) << w.name;
        EXPECT_GT(o.normalizedEnergy(), 0.1) << w.name;
        EXPECT_LT(o.normalizedEnergy(), 1.0) << w.name;
        if (o.normalizedEnergy() < 0.7)
            saved++;
    }
    // The vast majority of benchmarks save >30%.
    EXPECT_GT(saved, 25);
}

TEST(Integration, TightGlobalLoadLoopsSaveLeast)
{
    // Figure 15: reduction and scalarprod are the worst cases because
    // the ORF/LRF are invalidated every iteration.
    ExperimentConfig cfg;
    cfg.scheme = Scheme::SW_THREE_LEVEL;
    cfg.entries = 3;
    double avg = runAllWorkloads(cfg).normalizedEnergy();
    double reduction = runScheme(workloadByName("reduction"),
                                 cfg).normalizedEnergy();
    double scalarprod = runScheme(workloadByName("scalarprod"),
                                  cfg).normalizedEnergy();
    EXPECT_GT(reduction, avg);
    EXPECT_GT(scalarprod, avg);
}

} // namespace
} // namespace rfh
