/**
 * @file
 * Tests for control-flow trace recording and validation.
 */

#include <gtest/gtest.h>

#include "ir/parser.h"
#include "sim/perf_sim.h"
#include "sim/trace.h"
#include "workloads/registry.h"

namespace rfh {
namespace {

TEST(Trace, StraightLinePathIsOneBlock)
{
    Kernel k = parseKernelOrDie(R"(.kernel s
entry:
    iadd R1, R0, #1
    st.global [R0], R1
    exit
)");
    RunConfig cfg;
    cfg.numWarps = 2;
    KernelTrace t = recordTrace(k, cfg);
    ASSERT_EQ(t.numWarps(), 2);
    EXPECT_EQ(t.warpPaths[0], std::vector<int>({0}));
    EXPECT_EQ(t.blockCounts[0], 2u);
    EXPECT_EQ(t.instructions, 6u);
    EXPECT_EQ(validateTrace(k, t), "");
}

TEST(Trace, LoopRecordsEveryIteration)
{
    Kernel k = parseKernelOrDie(R"(.kernel l
entry:
    mov R1, #4
body:
    isub R1, R1, #1
    setgt R2, R1, #0
    @R2 bra body
out:
    exit
)");
    RunConfig cfg;
    cfg.numWarps = 1;
    KernelTrace t = recordTrace(k, cfg);
    // entry, 4x body, out.
    EXPECT_EQ(t.blockCounts[1], 4u);
    EXPECT_EQ(t.warpPaths[0].size(), 6u);
    EXPECT_EQ(validateTrace(k, t), "");
}

TEST(Trace, DivergentWarpsTakeDifferentPaths)
{
    Kernel k = parseKernelOrDie(R"(.kernel d
entry:
    setlt R1, R0, #2
    @R1 bra low
high:
    iadd R2, R0, #1
    bra out
low:
    iadd R2, R0, #2
out:
    st.global [R0], R2
    exit
)");
    RunConfig cfg;
    cfg.numWarps = 8;
    KernelTrace t = recordTrace(k, cfg);
    // Warps 0 and 1 (tid < 2) take "low"; the rest take "high".
    EXPECT_EQ(t.blockCounts[2], 2u);
    EXPECT_EQ(t.blockCounts[1], 6u);
    EXPECT_EQ(validateTrace(k, t), "");
}

TEST(Trace, ValidationCatchesIllegalTransitions)
{
    Kernel k = parseKernelOrDie(R"(.kernel v
entry:
    iadd R1, R0, #1
skip:
    st.global [R0], R1
    exit
)");
    RunConfig cfg;
    cfg.numWarps = 1;
    KernelTrace t = recordTrace(k, cfg);
    ASSERT_EQ(validateTrace(k, t), "");
    KernelTrace bad = t;
    bad.warpPaths[0] = {1, 0};  // backwards, not a CFG edge chain
    EXPECT_NE(validateTrace(k, bad), "");
    KernelTrace bad2 = t;
    bad2.blockCounts[0] += 5;
    EXPECT_NE(validateTrace(k, bad2), "");
}

TEST(Trace, DynamicInstrHistogram)
{
    Kernel k = parseKernelOrDie(R"(.kernel h
entry:
    mov R1, #3
body:
    isub R1, R1, #1
    setgt R2, R1, #0
    @R2 bra body
out:
    exit
)");
    RunConfig cfg;
    cfg.numWarps = 2;
    KernelTrace t = recordTrace(k, cfg);
    auto hist = dynamicInstrsPerBlock(k, t);
    EXPECT_EQ(hist[0], 2u);       // 1 instr x 2 warps
    EXPECT_EQ(hist[1], 2u * 9u);  // 3 instrs x 3 iters x 2 warps
    std::uint64_t total = 0;
    for (auto h : hist)
        total += h;
    EXPECT_EQ(total, t.instructions);
}

TEST(Trace, ReplayMatchesLiveSimulation)
{
    // Replaying a trace through the SM model must produce the same
    // instruction count and (for uniform-control-flow kernels) the
    // same cycle count as live execution.
    for (const char *name : {"scalarprod", "hotspot", "nbody"}) {
        const Workload &w = workloadByName(name);
        PerfConfig cfg;
        cfg.numWarps = 8;
        cfg.activeWarps = 4;
        RunConfig rc;
        rc.numWarps = cfg.numWarps;
        KernelTrace t = recordTrace(w.kernel, rc);
        PerfResult live = runPerfSim(w.kernel, cfg);
        PerfResult replay = runPerfSimFromTrace(w.kernel, t, cfg);
        EXPECT_EQ(replay.instructions, live.instructions) << name;
        EXPECT_EQ(replay.cycles, live.cycles) << name;
    }
}

TEST(Trace, ReplayScalesWarpsRoundRobin)
{
    const Workload &w = workloadByName("histogram");
    RunConfig rc;
    rc.numWarps = 4;
    KernelTrace t = recordTrace(w.kernel, rc);
    PerfConfig cfg;
    cfg.numWarps = 16;  // more warps than recorded paths
    cfg.activeWarps = 8;
    PerfResult r = runPerfSimFromTrace(w.kernel, t, cfg);
    EXPECT_GT(r.instructions, t.instructions);
    EXPECT_GT(r.ipc(), 0.0);
}

TEST(Trace, AllWorkloadsProduceValidTraces)
{
    for (const Workload &w : allWorkloads()) {
        RunConfig cfg = w.run;
        cfg.numWarps = 2;
        KernelTrace t = recordTrace(w.kernel, cfg);
        EXPECT_EQ(validateTrace(w.kernel, t), "") << w.name;
        EXPECT_GT(t.instructions, 0u) << w.name;
    }
}

} // namespace
} // namespace rfh
