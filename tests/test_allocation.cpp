/**
 * @file
 * Unit tests for the allocation machinery: occupancy timelines, the
 * energy-savings functions of Figures 6 and 9, LRF eligibility, and
 * occupancy intervals.
 */

#include <gtest/gtest.h>

#include "compiler/allocation.h"
#include "ir/parser.h"

namespace rfh {
namespace {

// ------------------------------------------------------------ Timeline

TEST(EntryTimeline, BasicAllocation)
{
    EntryTimeline tl(2);
    EXPECT_EQ(tl.numEntries(), 2);
    EXPECT_TRUE(tl.available(0, 0, 10));
    tl.allocate(0, 0, 10);
    EXPECT_FALSE(tl.available(0, 5, 6));
    EXPECT_TRUE(tl.available(1, 5, 6));
    EXPECT_EQ(tl.findFree(5, 6), 1);
}

TEST(EntryTimeline, HalfOpenIntervalsTouchWithoutConflict)
{
    EntryTimeline tl(1);
    tl.allocate(0, 0, 5);
    // A value defined exactly where the old one performs its last read
    // reuses the entry (read phase before write phase).
    EXPECT_TRUE(tl.available(0, 5, 9));
    tl.allocate(0, 5, 9);
    EXPECT_FALSE(tl.available(0, 8, 9));
    EXPECT_TRUE(tl.available(0, 9, 12));
}

TEST(EntryTimeline, FindFreeExhausted)
{
    EntryTimeline tl(2);
    tl.allocate(0, 0, 10);
    tl.allocate(1, 0, 10);
    EXPECT_EQ(tl.findFree(3, 7), -1);
    EXPECT_EQ(tl.findFree(10, 12), 0);
}

TEST(EntryTimeline, FindFreePairNeedsAdjacentEntries)
{
    EntryTimeline tl(3);
    tl.allocate(1, 0, 10);
    // Entries 0 and 2 are free but not adjacent.
    EXPECT_EQ(tl.findFreePair(0, 10), -1);
    EXPECT_EQ(tl.findFreePair(10, 20), 0);
    EntryTimeline tl2(3);
    tl2.allocate(0, 0, 10);
    EXPECT_EQ(tl2.findFreePair(0, 10), 1);
}

// ------------------------------------------------------ Savings (Fig 6)

/** Build a single-def instance with @p reads private ALU uses. */
ValueInstance
instWithReads(int reads, bool live_out)
{
    ValueInstance vi;
    vi.strand = 0;
    vi.reg = 1;
    vi.defLins = {0};
    for (int i = 0; i < reads; i++)
        vi.uses.push_back(InstanceUse{1 + i, 0, false});
    vi.liveOut = live_out;
    return vi;
}

TEST(Savings, Figure6HandComputed)
{
    // With the paper's constants and a 3-entry ORF:
    //   MRF read  = 8/4  + 1.0*1.9 = 3.90 pJ
    //   ORF read  = 1.2/4 + 0.2*1.9 = 0.68 pJ
    //   ORF write = 4.4/4 + 0.2*1.9 = 1.48 pJ
    //   MRF write = 11/4 + 1.0*1.9 = 4.65 pJ
    EnergyModel em(EnergyParams{}, 3);
    // One read, not live out: 1*(3.90-0.68) - 1.48 + 4.65 = 6.39.
    EXPECT_NEAR(orfValueSavings(instWithReads(1, false), em, 1), 6.39,
                1e-9);
    // One read, live out: no MRF-write elision -> 1.74.
    EXPECT_NEAR(orfValueSavings(instWithReads(1, true), em, 1), 1.74,
                1e-9);
    // Zero reads, dead value: MRF write avoided entirely -> 3.17.
    EXPECT_NEAR(orfValueSavings(instWithReads(0, false), em, 0), 3.17,
                1e-9);
    // Zero reads, live out: pure overhead -> -1.48.
    EXPECT_NEAR(orfValueSavings(instWithReads(0, true), em, 0), -1.48,
                1e-9);
}

TEST(Savings, PartialRangeForcesMrfWrite)
{
    EnergyModel em(EnergyParams{}, 3);
    ValueInstance vi = instWithReads(3, false);
    double full = orfValueSavings(vi, em, 3);
    double partial = orfValueSavings(vi, em, 2);
    // Partial range loses one read's delta AND the MRF-write elision.
    EXPECT_NEAR(full - partial, (3.90 - 0.68) + 4.65, 1e-9);
}

TEST(Savings, SharedConsumerUsesSharedWire)
{
    EnergyModel em(EnergyParams{}, 3);
    ValueInstance vi = instWithReads(1, true);
    vi.uses[0].shared = true;
    // Shared read: MRF 2+1.9=3.9, ORF 0.3+0.76=1.06 -> delta 2.84;
    // minus private ORF write 1.48 -> 1.36.
    EXPECT_NEAR(orfValueSavings(vi, em, 1), 1.36, 1e-9);
}

TEST(Savings, SharedProducerPaysSharedWriteWire)
{
    EnergyModel em(EnergyParams{}, 3);
    ValueInstance vi = instWithReads(1, true);
    vi.sharedProducer = true;
    // ORF write from the shared datapath: 1.1 + 0.76 = 1.86.
    EXPECT_NEAR(orfValueSavings(vi, em, 1), 3.90 - 0.68 - 1.86, 1e-9);
}

TEST(Savings, HammockGroupPaysPerDefWrites)
{
    EnergyModel em(EnergyParams{}, 3);
    ValueInstance vi = instWithReads(1, false);
    vi.defLins = {0, 2};
    // Two ORF writes, two MRF writes elided:
    // 3.22 - 2*1.48 + 2*4.65 = 9.56.
    EXPECT_NEAR(orfValueSavings(vi, em, 1), 9.56, 1e-9);
}

TEST(Savings, WideValuePaysDoubleWrites)
{
    EnergyModel em(EnergyParams{}, 3);
    ValueInstance vi = instWithReads(1, false);
    vi.wide = true;
    // Reads are per 32-bit half (1 use); writes doubled.
    EXPECT_NEAR(orfValueSavings(vi, em, 1),
                3.22 - 2 * 1.48 + 2 * 4.65, 1e-9);
}

// ------------------------------------------------------ Savings (Fig 9)

ReadInstance
readInstWithUses(std::vector<int> lins)
{
    ReadInstance ri;
    ri.strand = 0;
    ri.reg = 0;
    for (int lin : lins)
        ri.uses.push_back(InstanceUse{lin, 0, false});
    return ri;
}

TEST(Savings, Figure9HandComputed)
{
    EnergyModel em(EnergyParams{}, 3);
    // Two reads: first from MRF (deposit), second from ORF.
    // (3.90 - 0.68) - 1.48 = 1.74.
    EXPECT_NEAR(orfReadSavings(readInstWithUses({5, 6}), em, 2), 1.74,
                1e-9);
    // Single read: pure overhead.
    EXPECT_NEAR(orfReadSavings(readInstWithUses({5}), em, 1), -1.48,
                1e-9);
}

TEST(Savings, Figure9SameInstructionReadsDoNotCount)
{
    EnergyModel em(EnergyParams{}, 3);
    // Both reads in the deposit instruction: the second cannot see the
    // deposit, so only overhead remains.
    ReadInstance ri = readInstWithUses({5, 5});
    ri.uses[1].slot = 1;
    EXPECT_NEAR(orfReadSavings(ri, em, 2), -1.48, 1e-9);
}

// -------------------------------------------------------- LRF eligibility

TEST(LrfEligible, RequiresPrivateProducerAndConsumers)
{
    Kernel k = parseKernelOrDie(R"(.kernel e
entry:
    iadd R1, R0, #1
    fadd R2, R1, R1
    ld.shared R3, [R0]
    sin R4, R2
    st.global [R0], R4
    exit
)");
    auto inst = [&](int def_lin, std::vector<InstanceUse> uses) {
        ValueInstance vi;
        vi.defLins = {def_lin};
        vi.reg = *k.instr(def_lin).dst;
        vi.uses = std::move(uses);
        return vi;
    };
    // ALU -> ALU: eligible.
    EXPECT_TRUE(lrfEligible(inst(0, {{1, 0, false}}), k, false));
    // MEM producer: not eligible.
    EXPECT_FALSE(lrfEligible(inst(2, {}), k, false));
    // SFU consumer: not eligible.
    EXPECT_FALSE(lrfEligible(inst(1, {{3, 0, true}}), k, false));
    ValueInstance sfu_use = inst(1, {{3, 0, false}});
    // Even a "private-flagged" use executed by an SFU op is rejected.
    EXPECT_FALSE(lrfEligible(sfu_use, k, false));
}

TEST(LrfEligible, SplitRequiresSingleSlot)
{
    Kernel k = parseKernelOrDie(R"(.kernel e
entry:
    iadd R1, R0, #1
    fadd R2, R1, R1
    exit
)");
    ValueInstance vi;
    vi.defLins = {0};
    vi.reg = 1;
    vi.uses = {{1, 0, false}, {1, 1, false}};
    EXPECT_TRUE(lrfEligible(vi, k, false));
    EXPECT_FALSE(lrfEligible(vi, k, true));
}

TEST(LrfEligible, WideNeverEligible)
{
    Kernel k = parseKernelOrDie(R"(.kernel e
entry:
    imul.wide R2, R0, #8
    exit
)");
    ValueInstance vi;
    vi.defLins = {0};
    vi.reg = 2;
    vi.wide = true;
    EXPECT_FALSE(lrfEligible(vi, k, false));
}

// --------------------------------------------------------------- Intervals

TEST(Intervals, ValueInterval)
{
    ValueInstance vi = instWithReads(2, false);
    vi.defLins = {4};
    vi.uses[0].lin = 6;
    vi.uses[1].lin = 9;
    EXPECT_EQ(valueInterval(vi, 2), std::make_pair(4, 9));
    EXPECT_EQ(valueInterval(vi, 1), std::make_pair(4, 6));
    EXPECT_EQ(valueInterval(vi, 0), std::make_pair(4, 5));
}

TEST(Intervals, ReadInterval)
{
    ReadInstance ri = readInstWithUses({3, 7, 11});
    EXPECT_EQ(readInterval(ri, 3), std::make_pair(3, 11));
    EXPECT_EQ(readInterval(ri, 2), std::make_pair(3, 7));
}

} // namespace
} // namespace rfh
