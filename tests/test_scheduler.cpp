/**
 * @file
 * Tests for the lifetime-shortening instruction scheduler: dependence
 * preservation, bit-exact functional equivalence, terminator pinning,
 * memory ordering, and the actual lifetime reduction.
 */

#include <gtest/gtest.h>

#include "compiler/scheduler.h"
#include "ir/parser.h"
#include "sim/machine.h"
#include "sim/perf_sim.h"
#include "workloads/registry.h"
#include "workloads/synthetic.h"

namespace rfh {
namespace {

/** Run @p k for one warp and return the final register file. */
std::array<std::uint32_t, kMaxRegs>
finalRegs(const Kernel &k, std::uint32_t warp_id = 1)
{
    WarpContext w;
    w.reset(warp_id);
    std::uint64_t steps = 0;
    while (!w.done && steps++ < (1u << 20))
        step(k, w);
    EXPECT_TRUE(w.done);
    return w.regs;
}

TEST(Scheduler, ShortensObviousGap)
{
    // R1 is produced early but consumed last; the scheduler can sink
    // its producer toward the consumer (or hoist the consumer), as
    // long as dependences hold.
    Kernel k = parseKernelOrDie(R"(.kernel gap
entry:
    iadd R1, R0, #1
    iadd R2, R0, #2
    iadd R3, R0, #3
    iadd R4, R2, R3
    iadd R5, R1, R4
    st.shared [R0], R5
    exit
)");
    Kernel orig = k;
    ScheduleStats stats = scheduleKernel(k);
    EXPECT_GT(stats.lifetimeReduction, 0);
    EXPECT_EQ(finalRegs(k), finalRegs(orig));
}

TEST(Scheduler, PreservesSemanticsOnAllWorkloads)
{
    for (const Workload &w : allWorkloads()) {
        Kernel k = w.kernel;
        scheduleKernel(k);
        ASSERT_EQ(k.validate(), "") << w.name;
        for (std::uint32_t warp : {0u, 3u}) {
            auto a = finalRegs(w.kernel, warp);
            auto b = finalRegs(k, warp);
            EXPECT_EQ(a, b) << w.name << " warp " << warp;
        }
    }
}

TEST(Scheduler, TerminatorStaysLast)
{
    for (const Workload &w : allWorkloads()) {
        Kernel k = w.kernel;
        scheduleKernel(k);
        for (const auto &bb : k.blocks) {
            for (std::size_t i = 0; i + 1 < bb.instrs.size(); i++) {
                EXPECT_NE(bb.instrs[i].op, Opcode::BRA) << w.name;
                EXPECT_NE(bb.instrs[i].op, Opcode::EXIT) << w.name;
            }
        }
    }
}

TEST(Scheduler, MemoryOperationsKeepTheirOrder)
{
    Kernel k = parseKernelOrDie(R"(.kernel mem
entry:
    iadd R1, R0, #64
    st.shared [R1], R0
    ld.shared R2, [R1]
    st.shared [R1], R2
    ld.shared R3, [R1]
    iadd R4, R2, R3
    st.global [R0], R4
    exit
)");
    Kernel orig = k;
    scheduleKernel(k);
    // Memory ops must appear in original relative order.
    std::vector<Opcode> mem_before, mem_after;
    auto collect = [](const Kernel &kk, std::vector<Opcode> &v) {
        for (int i = 0; i < kk.numInstrs(); i++) {
            Opcode op = kk.instr(i).op;
            if (unitClass(op) == UnitClass::MEM)
                v.push_back(op);
        }
    };
    collect(orig, mem_before);
    collect(k, mem_after);
    EXPECT_EQ(mem_before, mem_after);
    EXPECT_EQ(finalRegs(k), finalRegs(orig));
}

TEST(Scheduler, NoChangeWhenAlreadyOptimal)
{
    Kernel k = parseKernelOrDie(R"(.kernel chain
entry:
    iadd R1, R0, #1
    iadd R2, R1, #2
    iadd R3, R2, #3
    st.shared [R0], R3
    exit
)");
    ScheduleStats stats = scheduleKernel(k);
    EXPECT_EQ(stats.instructionsMoved, 0);
    EXPECT_EQ(stats.lifetimeReduction, 0);
}

TEST(Scheduler, DeterministicOnSyntheticKernels)
{
    for (std::uint64_t seed : {7u, 77u, 777u}) {
        SynthParams p;
        p.seed = seed;
        Kernel a = generateSynthetic("s", p);
        Kernel b = generateSynthetic("s", p);
        scheduleKernel(a);
        scheduleKernel(b);
        ASSERT_EQ(a.numInstrs(), b.numInstrs());
        for (int i = 0; i < a.numInstrs(); i++)
            EXPECT_EQ(a.instr(i).op, b.instr(i).op) << seed;
    }
}

TEST(Scheduler, EquivalenceOnSyntheticKernels)
{
    for (std::uint64_t seed = 21; seed < 29; seed++) {
        SynthParams p;
        p.seed = seed;
        p.pHammock = (seed % 3) * 0.4;
        Kernel orig = generateSynthetic("s", p);
        Kernel k = orig;
        scheduleKernel(k);
        ASSERT_EQ(k.validate(), "") << seed;
        EXPECT_EQ(finalRegs(k, 2), finalRegs(orig, 2)) << seed;
    }
}

TEST(Scheduler, ScheduledKernelKeepsPipelineInstructionCount)
{
    // Instruction scheduling reorders within blocks but never adds or
    // drops work, so the cycle-level pipeline must issue exactly the
    // same dynamic instruction count for the scheduled kernel.
    PerfConfig cfg;
    cfg.numWarps = 8;
    cfg.activeWarps = 4;
    for (const Workload &w : allWorkloads()) {
        Kernel k = w.kernel;
        scheduleKernel(k);
        ASSERT_EQ(k.validate(), "") << w.name;
        PerfResult before = runPerfSim(w.kernel, cfg);
        PerfResult after = runPerfSim(k, cfg);
        EXPECT_EQ(after.instructions, before.instructions) << w.name;
        EXPECT_GT(after.ipc(), 0.0) << w.name;
    }
}

} // namespace
} // namespace rfh
