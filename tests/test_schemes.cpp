/**
 * @file
 * Tests for the pluggable scheme registry: registration rules
 * (duplicate tokens, empty tokens, missing backends), token lookups,
 * the capability flags the engine layers branch on, byte-identity of
 * the paper schemes through registry dispatch, oracle coverage of the
 * contributed backends at several warp counts, the dynamic oracle
 * pair count, and the cross-scheme leaderboard.
 *
 * One extra backend ("testecho") is registered through the
 * RFH_REGISTER_SCHEME macro at static initialisation, so every test
 * in this binary also exercises the third-party extension path: the
 * echo scheme must show up in enumeration, the oracle sweep, and the
 * leaderboard without any engine-layer change.
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/json.h"
#include "core/leaderboard.h"
#include "core/memo.h"
#include "core/scheme.h"
#include "service/protocol.h"
#include "verify/oracle.h"
#include "verify/rptx_fuzz.h"
#include "workloads/registry.h"

namespace rfh {
namespace {

/** Trivial backend: echoes the flat baseline counts. */
class EchoScheme : public SchemeBackend
{
  public:
    SchemeSimResult
    simulate(const SchemeRunContext &ctx) const override
    {
        SchemeSimResult r;
        r.counts = *ctx.baseline;
        return r;
    }
};

SchemeSpec
echoSpec()
{
    SchemeSpec s;
    s.token = "testecho";
    s.display = "Echo";
    s.summary = "test-only baseline echo";
    s.caps.usesAnalyses = false;
    s.caps.usesTrace = false;
    s.caps.sweepsEntries = false;
    return s;
}

std::unique_ptr<SchemeBackend>
makeEcho()
{
    return std::make_unique<EchoScheme>();
}

} // namespace

// Static-registration extension path (see file comment).
RFH_REGISTER_SCHEME(echoRegistrar, echoSpec(), makeEcho);

namespace {

// ---- Registration rules ----

TEST(SchemeRegistry, PaperSchemesHaveFixedIdsAndTokens)
{
    SchemeRegistry &reg = SchemeRegistry::instance();
    struct Expect
    {
        Scheme scheme;
        const char *token;
        const char *display;
    };
    const Expect expected[] = {
        {Scheme::BASELINE, "baseline", "Baseline"},
        {Scheme::HW_TWO_LEVEL, "hw2", "HW"},
        {Scheme::HW_THREE_LEVEL, "hw3", "HW LRF"},
        {Scheme::SW_TWO_LEVEL, "sw2", "SW"},
        {Scheme::SW_THREE_LEVEL, "sw3", "SW LRF"},
    };
    for (const Expect &e : expected) {
        const SchemeInfo *si = reg.find(e.scheme);
        ASSERT_NE(si, nullptr) << e.token;
        EXPECT_EQ(si->token, e.token);
        EXPECT_EQ(si->display, e.display);
        EXPECT_TRUE(si->paper);
        EXPECT_EQ(reg.findToken(e.token), si);
    }
}

TEST(SchemeRegistry, ContributedBackendsAreRegistered)
{
    SchemeRegistry &reg = SchemeRegistry::instance();
    for (const char *token : {"ccrfc", "regdem", "greener"}) {
        const SchemeInfo *si = reg.findToken(token);
        ASSERT_NE(si, nullptr) << token;
        EXPECT_FALSE(si->paper) << token;
        EXPECT_EQ(reg.find(si->scheme), si) << token;
    }
}

TEST(SchemeRegistry, DuplicateTokenThrowsWithPositionContext)
{
    SchemeSpec dup;
    dup.token = "baseline";
    dup.display = "Imposter";
    try {
        SchemeRegistry::instance().add(dup,
                                       std::make_unique<EchoScheme>());
        FAIL() << "duplicate registration was accepted";
    } catch (const std::invalid_argument &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("duplicate scheme token 'baseline'"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("#0"), std::string::npos) << msg;
        EXPECT_NE(msg.find("Baseline"), std::string::npos) << msg;
    }
}

TEST(SchemeRegistry, EmptyTokenAndMissingBackendAreRejected)
{
    SchemeSpec empty;
    EXPECT_THROW(SchemeRegistry::instance().add(
                     empty, std::make_unique<EchoScheme>()),
                 std::invalid_argument);
    SchemeSpec nobackend;
    nobackend.token = "nobackend-test";
    EXPECT_THROW(SchemeRegistry::instance().add(nobackend, nullptr),
                 std::invalid_argument);
    // Neither failed registration may leave a record behind.
    EXPECT_EQ(SchemeRegistry::instance().findToken("nobackend-test"),
              nullptr);
}

TEST(SchemeRegistry, UnknownLookupsReturnNull)
{
    SchemeRegistry &reg = SchemeRegistry::instance();
    EXPECT_EQ(reg.findToken("bogus"), nullptr);
    EXPECT_EQ(reg.find(Scheme(255)), nullptr);
    EXPECT_EQ(schemeName(Scheme(255)), "?");
}

TEST(SchemeRegistry, TokenListMatchesRegistrationOrder)
{
    std::string list = SchemeRegistry::instance().tokenList();
    // Paper schemes first, in historic order, then the contribs.
    EXPECT_EQ(list.rfind("baseline, hw2, hw3, sw2, sw3, ccrfc, "
                         "regdem, greener",
                         0),
              0u)
        << list;
    EXPECT_NE(list.find("testecho"), std::string::npos) << list;
}

TEST(SchemeRegistry, MacroRegisteredSchemeIsEnumerated)
{
    const SchemeInfo *si =
        SchemeRegistry::instance().findToken("testecho");
    ASSERT_NE(si, nullptr);
    EXPECT_EQ(si->display, "Echo");
    EXPECT_FALSE(si->caps.sweepsEntries);
    bool enumerated = false;
    for (const SchemeInfo *s : SchemeRegistry::instance().schemes())
        enumerated |= s == si;
    EXPECT_TRUE(enumerated);
}

// ---- Capability flags ----

TEST(SchemeCapsTest, BuiltinsDescribeTheirEngineNeeds)
{
    SchemeRegistry &reg = SchemeRegistry::instance();
    const SchemeCaps base = reg.find(Scheme::BASELINE)->caps;
    EXPECT_FALSE(base.usesTrace);
    EXPECT_FALSE(base.usesAllocator);
    EXPECT_FALSE(base.sweepsEntries);

    const SchemeCaps hw = reg.find(Scheme::HW_TWO_LEVEL)->caps;
    EXPECT_TRUE(hw.hwManaged);
    EXPECT_TRUE(hw.usesTrace);
    EXPECT_TRUE(hw.wantsDecode);
    EXPECT_FALSE(hw.usesAllocator);

    const SchemeCaps sw = reg.find(Scheme::SW_THREE_LEVEL)->caps;
    EXPECT_TRUE(sw.usesAllocator);
    EXPECT_TRUE(sw.hasSimt);
    EXPECT_FALSE(sw.hwManaged);

    EXPECT_TRUE(reg.findToken("ccrfc")->caps.hwManaged);
    EXPECT_FALSE(reg.findToken("regdem")->caps.hwManaged);
    EXPECT_FALSE(reg.findToken("greener")->caps.usesTrace);
}

TEST(SchemeCapsTest, AllocOptionsComeFromTheBackend)
{
    ExperimentConfig cfg;
    cfg.scheme = Scheme::SW_THREE_LEVEL;
    EXPECT_TRUE(cfg.allocOptions().useLRF);
    cfg.scheme = Scheme::SW_TWO_LEVEL;
    EXPECT_FALSE(cfg.allocOptions().useLRF);
    cfg.scheme = Scheme::HW_TWO_LEVEL;
    EXPECT_FALSE(cfg.allocOptions().useLRF);
    cfg.scheme = Scheme::SW_THREE_LEVEL;
    cfg.splitLRF = false;
    EXPECT_FALSE(cfg.allocOptions().splitLRF);
}

// ---- Service protocol through the registry ----

TEST(SchemeProtocol, EveryRegisteredTokenRoundTrips)
{
    for (const SchemeInfo *si : SchemeRegistry::instance().schemes()) {
        auto s = schemeFromToken(si->token);
        ASSERT_TRUE(s.has_value()) << si->token;
        EXPECT_EQ(*s, si->scheme);
        EXPECT_EQ(schemeToken(*s), si->token);
    }
    EXPECT_FALSE(schemeFromToken("bogus").has_value());
}

TEST(SchemeProtocol, UnknownSchemeErrorListsRegistryTokens)
{
    ParsedRequest p = parseServiceRequest(
        "{\"op\":\"run\",\"workload\":\"vectoradd\","
        "\"scheme\":\"bogus\"}");
    ASSERT_FALSE(p.ok);
    EXPECT_EQ(p.error.code, ServiceErrorCode::UNKNOWN_SCHEME);
    // The valid-token list is generated from the registry, so every
    // registered backend (including the macro-registered test one)
    // appears in the message.
    for (const SchemeInfo *si : SchemeRegistry::instance().schemes())
        EXPECT_NE(p.error.message.find(si->token), std::string::npos)
            << si->token << " missing from: " << p.error.message;
}

// ---- Dispatch byte-identity and engine selection ----

TEST(SchemeDispatch, PaperSchemesAreEngineByteIdentical)
{
    const Workload &w = workloadByName("vectoradd");
    for (const SchemeInfo *si : SchemeRegistry::instance().schemes()) {
        ExperimentConfig cfg;
        cfg.scheme = si->scheme;
        cfg.engine = ExecEngine::DIRECT;
        RunOutcome direct = runScheme(w, cfg);
        cfg.engine = ExecEngine::REPLAY;
        RunOutcome replay = runScheme(w, cfg);
        ASSERT_TRUE(direct.ok()) << si->token << ": " << direct.error;
        ASSERT_TRUE(replay.ok()) << si->token << ": " << replay.error;
        EXPECT_EQ(outcomeToJson(direct), outcomeToJson(replay))
            << si->token;
    }
}

TEST(SchemeDispatch, UnregisteredSchemeFailsWithTokenList)
{
    const Workload &w = workloadByName("vectoradd");
    ExperimentConfig cfg;
    cfg.scheme = Scheme(250);
    RunOutcome o = runScheme(w, cfg);
    ASSERT_FALSE(o.ok());
    EXPECT_NE(o.error.find("unregistered scheme id 250"),
              std::string::npos)
        << o.error;
    EXPECT_NE(o.error.find("baseline"), std::string::npos) << o.error;
}

// ---- Oracle: dynamic pair count and contributed backends ----

/** The pair count runOracle must report, derived from the caps. */
int
expectedOraclePairs(const OracleOptions &oo)
{
    int pairs = 0;
    for (const SchemeInfo *si : SchemeRegistry::instance().schemes()) {
        if (si->caps.hwManaged && !oo.checkHwSchemes)
            continue;
        pairs++;  // direct vs replay
        if (si->caps.pipelined)
            pairs++;  // pipeline vs functional
        if (si->caps.usesAllocator) {
            pairs++;  // conservation on the scalar run
            if (oo.checkSimt)
                pairs += 2;  // scalar-vs-simt-w1, simt direct-vs-replay
        } else if (si->scheme != Scheme::BASELINE) {
            pairs++;  // conservation on the direct counts
        }
    }
    return pairs;
}

TEST(SchemeOracle, PairCountFollowsTheRegistry)
{
    Kernel k = generateFuzzKernel("pairs", fuzzCase(11, 0));
    OracleOptions oo;
    oo.run.numWarps = 2;
    oo.run.maxInstrsPerWarp = 1u << 16;
    oo.simtWidth = 4;
    OracleReport rep = runOracle(k, oo);
    ASSERT_FALSE(rep.truncated);
    EXPECT_TRUE(rep.ok()) << rep.summary();
    EXPECT_EQ(rep.pairsChecked, expectedOraclePairs(oo));
    // The registry grew the sweep well past the historic 11 pairs of
    // the five-scheme era.
    EXPECT_GE(rep.pairsChecked, 19);

    oo.checkHwSchemes = false;
    globalExperimentCache().clear();
    OracleReport nohw = runOracle(k, oo);
    EXPECT_EQ(nohw.pairsChecked, expectedOraclePairs(oo));
    EXPECT_LT(nohw.pairsChecked, rep.pairsChecked);
    globalExperimentCache().clear();
}

TEST(SchemeOracle, ContributedBackendsCleanAtSeveralWarpCounts)
{
    for (int warps : {1, 3, 8}) {
        for (int seed : {21, 22}) {
            Kernel k = generateFuzzKernel(
                "w" + std::to_string(warps) + "s" +
                    std::to_string(seed),
                fuzzCase(static_cast<std::uint64_t>(seed), 0));
            OracleOptions oo;
            oo.run.numWarps = warps;
            oo.run.maxInstrsPerWarp = 1u << 16;
            oo.simtWidth = 4;
            OracleReport rep = runOracle(k, oo);
            ASSERT_FALSE(rep.truncated);
            EXPECT_TRUE(rep.ok())
                << "warps=" << warps << " seed=" << seed << "\n"
                << rep.summary();
            globalExperimentCache().clear();
        }
    }
}

// ---- Leaderboard ----

/** One shared board: the full sweep is too expensive to run twice. */
const Leaderboard &
sharedLeaderboard()
{
    static const Leaderboard lb = runLeaderboard();
    return lb;
}

TEST(SchemeLeaderboard, RanksEveryRegisteredScheme)
{
    const Leaderboard &lb = sharedLeaderboard();
    ASSERT_EQ(lb.rows.size(), SchemeRegistry::instance().size());
    for (std::size_t i = 1; i < lb.rows.size(); i++)
        EXPECT_LE(lb.rows[i - 1].outcome.normalizedEnergy(),
                  lb.rows[i].outcome.normalizedEnergy());
    // The paper's best scheme must win the board, and the flat
    // baseline must sit at normalised energy 1.
    EXPECT_EQ(lb.rows.front().token, "sw3");
    for (const LeaderboardRow &row : lb.rows) {
        if (row.token == "baseline")
            EXPECT_DOUBLE_EQ(row.outcome.normalizedEnergy(), 1.0);
        EXPECT_TRUE(row.outcome.ok())
            << row.token << ": " << row.outcome.error;
    }
}

TEST(SchemeLeaderboard, JsonDocumentParsesWithRankedRows)
{
    const Leaderboard &lb = sharedLeaderboard();
    JsonParseResult doc = parseJson(leaderboardToJson(lb));
    ASSERT_TRUE(doc.ok) << doc.error;
    const JsonValue *rows = doc.value.find("rows");
    ASSERT_NE(rows, nullptr);
    ASSERT_TRUE(rows->isArray());
    ASSERT_EQ(rows->array.size(), lb.rows.size());
    for (std::size_t i = 0; i < rows->array.size(); i++) {
        const JsonValue &row = rows->array[i];
        EXPECT_EQ(row.numberOr("rank", 0), static_cast<double>(i + 1));
        EXPECT_EQ(row.stringOr("scheme", ""), lb.rows[i].token);
        EXPECT_NE(row.find("normalizedEnergy"), nullptr);
        EXPECT_NE(row.find("reads"), nullptr);
        EXPECT_NE(row.find("writes"), nullptr);
    }
    std::string table = renderLeaderboard(lb);
    for (const LeaderboardRow &row : lb.rows)
        EXPECT_NE(table.find(row.token), std::string::npos)
            << row.token;
}

} // namespace
} // namespace rfh
