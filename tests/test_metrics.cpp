/**
 * @file
 * Tests for the observability layer: metrics-registry exactness under
 * the parallel engine's thread pool, histogram bucketing, manifest
 * JSON schema round-trips through the parser, chrome-trace span
 * serialisation, and the bench-diff regression gate (improvement,
 * regression, threshold edges, missing benchmarks, format detection).
 */

#include <gtest/gtest.h>

#include <set>

#include "core/benchdiff.h"
#include "core/json.h"
#include "core/manifest.h"
#include "core/metrics.h"
#include "core/parallel.h"
#include "core/trace_events.h"

namespace rfh {
namespace {

// ---------------------------------------------------------------------
// Registry semantics.

TEST(Metrics, CounterAccumulatesExactlyAcrossPoolThreads)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("test.counter");
    ThreadPool pool(8);
    // 64 tasks x 1000 increments: the sharded relaxed adds must still
    // sum exactly — metrics are allowed to be unordered, not lossy.
    pool.parallelFor(64, [&](int) {
        for (int i = 0; i < 1000; i++)
            c.add();
    });
    EXPECT_EQ(c.value(), 64u * 1000u);
}

TEST(Metrics, TimerTotalsAreExactIntegerNanoseconds)
{
    MetricsRegistry reg;
    Timer &t = reg.timer("test.timer");
    ThreadPool pool(4);
    pool.parallelFor(32, [&](int) { t.addSec(0.001); });
    EXPECT_EQ(t.count(), 32u);
    // 32 x 1ms accumulates as integer nanoseconds: exactly 32ms.
    EXPECT_DOUBLE_EQ(t.totalSec(), 0.032);
}

TEST(Metrics, SameNameReturnsSameInstance)
{
    MetricsRegistry reg;
    EXPECT_EQ(&reg.counter("x"), &reg.counter("x"));
    EXPECT_NE(&reg.counter("x"), &reg.counter("y"));
}

TEST(Metrics, KindMismatchThrows)
{
    MetricsRegistry reg;
    reg.counter("test.kind");
    EXPECT_THROW(reg.timer("test.kind"), std::logic_error);
    EXPECT_THROW(reg.gauge("test.kind"), std::logic_error);
}

TEST(Metrics, ResetZeroesValuesButKeepsReferencesValid)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("test.reset");
    c.add(7);
    reg.reset();
    EXPECT_EQ(c.value(), 0u);
    c.add(2);
    EXPECT_EQ(reg.counter("test.reset").value(), 2u);
}

TEST(Metrics, SnapshotIsNameSorted)
{
    MetricsRegistry reg;
    reg.counter("zeta");
    reg.counter("alpha");
    reg.gauge("mid");
    std::vector<MetricSample> snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].name, "alpha");
    EXPECT_EQ(snap[1].name, "mid");
    EXPECT_EQ(snap[2].name, "zeta");
}

TEST(Metrics, HistogramBucketsAreLog2)
{
    EXPECT_EQ(Histogram::bucketOf(0), 0);
    EXPECT_EQ(Histogram::bucketOf(1), 0);
    EXPECT_EQ(Histogram::bucketOf(2), 1);
    EXPECT_EQ(Histogram::bucketOf(3), 2);
    EXPECT_EQ(Histogram::bucketOf(4), 2);
    EXPECT_EQ(Histogram::bucketOf(5), 3);
    EXPECT_EQ(Histogram::bucketOf(1ull << 40), 40);

    Histogram h;
    h.observe(1);
    h.observe(3);
    h.observe(4);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 8u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(2), 2u);
}

TEST(Metrics, ToJsonParsesBackWithEveryKind)
{
    MetricsRegistry reg;
    reg.counter("c").add(5);
    reg.gauge("g").set(2.5);
    reg.timer("t").addSec(0.25);
    reg.histogram("h").observe(10);

    JsonParseResult parsed = parseJson(reg.toJson());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const JsonValue &doc = parsed.value;
    ASSERT_TRUE(doc.isObject());
    EXPECT_DOUBLE_EQ(doc.numberOr("c", -1), 5.0);
    EXPECT_DOUBLE_EQ(doc.numberOr("g", -1), 2.5);
    const JsonValue *t = doc.find("t");
    ASSERT_NE(t, nullptr);
    EXPECT_DOUBLE_EQ(t->numberOr("totalSec", -1), 0.25);
    EXPECT_DOUBLE_EQ(t->numberOr("count", -1), 1.0);
    const JsonValue *h = doc.find("h");
    ASSERT_NE(h, nullptr);
    const JsonValue *buckets = h->find("buckets");
    ASSERT_NE(buckets, nullptr);
    ASSERT_TRUE(buckets->isArray());
    ASSERT_EQ(buckets->array.size(), 1u);
    EXPECT_DOUBLE_EQ(buckets->array[0].numberOr("le", -1), 16.0);
}

// ---------------------------------------------------------------------
// Manifest schema.

TEST(Manifest, JsonRoundTripsWithRequiredFields)
{
    ManifestInfo m;
    m.tool = "test-tool";
    m.engine = "replay";
    m.config = {{"scheme", "SW LRF"}, {"entries", "3"}};
    m.timing.wallSec = 1.5;
    m.timing.cpuSec = 3.0;
    m.timing.threads = 2;
    m.phases.analyzeSec = 0.5;
    m.phases.executeSec = 1.0;
    m.phases.dynInstrs = 1000;
    m.benchmarks = {{"b/wall", 1.5, "sec", false},
                    {"b/rate", 666.0, "instr/s", true}};

    JsonParseResult parsed = parseJson(manifestToJson(m));
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const JsonValue &doc = parsed.value;

    EXPECT_EQ(doc.stringOr("schema", ""), "rfh-manifest-v1");
    EXPECT_EQ(doc.stringOr("tool", ""), "test-tool");
    EXPECT_EQ(doc.stringOr("engine", ""), "replay");
    EXPECT_FALSE(doc.stringOr("gitSha", "").empty());
    EXPECT_DOUBLE_EQ(doc.numberOr("threads", -1), 2.0);

    const JsonValue *config = doc.find("config");
    ASSERT_NE(config, nullptr);
    EXPECT_EQ(config->stringOr("scheme", ""), "SW LRF");

    const JsonValue *timing = doc.find("timing");
    ASSERT_NE(timing, nullptr);
    EXPECT_DOUBLE_EQ(timing->numberOr("wallSec", -1), 1.5);
    EXPECT_DOUBLE_EQ(timing->numberOr("speedup", -1), 2.0);

    const JsonValue *phases = doc.find("phases");
    ASSERT_NE(phases, nullptr);
    EXPECT_DOUBLE_EQ(phases->numberOr("analyzeSec", -1), 0.5);
    EXPECT_DOUBLE_EQ(phases->numberOr("dynInstrs", -1), 1000.0);
    EXPECT_DOUBLE_EQ(phases->numberOr("instrPerSec", -1), 1000.0);

    // Cache counters and the metrics snapshot are global state; the
    // schema only requires the sections to exist as objects.
    const JsonValue *cache = doc.find("cache");
    ASSERT_NE(cache, nullptr);
    EXPECT_TRUE(cache->isObject());
    ASSERT_NE(cache->find("baselineHits"), nullptr);
    const JsonValue *metrics = doc.find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_TRUE(metrics->isObject());

    const JsonValue *bench = doc.find("benchmarks");
    ASSERT_NE(bench, nullptr);
    ASSERT_TRUE(bench->isArray());
    ASSERT_EQ(bench->array.size(), 2u);
    EXPECT_EQ(bench->array[1].stringOr("name", ""), "b/rate");
    const JsonValue *hib = bench->array[1].find("higherIsBetter");
    ASSERT_NE(hib, nullptr);
    EXPECT_TRUE(hib->boolean);
}

TEST(Manifest, BenchEntriesExtractFromManifestJson)
{
    ManifestInfo m;
    m.tool = "t";
    m.benchmarks = {{"a", 1.0, "sec", false}, {"b", 2.0, "instr/s", true}};
    JsonParseResult parsed = parseJson(manifestToJson(m));
    ASSERT_TRUE(parsed.ok) << parsed.error;

    std::string err;
    std::vector<BenchEntry> entries =
        benchEntriesFromJson(parsed.value, &err);
    ASSERT_EQ(entries.size(), 2u) << err;
    EXPECT_EQ(entries[0].name, "a");
    EXPECT_FALSE(entries[0].higherIsBetter);
    EXPECT_EQ(entries[1].name, "b");
    EXPECT_TRUE(entries[1].higherIsBetter);
}

TEST(Manifest, GitShaEnvOverrideWins)
{
    setenv("RFH_GIT_SHA", "cafe123", 1);
    EXPECT_EQ(buildGitSha(), "cafe123");
    unsetenv("RFH_GIT_SHA");
}

// ---------------------------------------------------------------------
// Chrome-trace spans.

TEST(TraceEvents, LogStartsDisabledAndClearEmpties)
{
    // add() itself is unconditional — TraceSpan checks enabled() and
    // is the gate — so a fresh log must start disabled.
    TraceEventLog log;
    EXPECT_FALSE(log.enabled());
    log.add("a", "cat", 0.0, 1.0);
    EXPECT_EQ(log.size(), 1u);
    log.clear();
    EXPECT_EQ(log.size(), 0u);
    log.enable();
    EXPECT_TRUE(log.enabled());
}

TEST(TraceEvents, JsonIsValidAndCarriesArgs)
{
    TraceEventLog log;
    log.add("phase", "engine", 10.0, 5.0, R"({"workload":"fft"})");
    log.add("other", "engine", 20.0, 1.0);

    JsonParseResult parsed = parseJson(log.toJson());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const JsonValue *events = parsed.value.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_EQ(events->array.size(), 2u);

    const JsonValue &e0 = events->array[0];
    EXPECT_EQ(e0.stringOr("name", ""), "phase");
    EXPECT_EQ(e0.stringOr("ph", ""), "X");
    EXPECT_DOUBLE_EQ(e0.numberOr("ts", -1), 10.0);
    EXPECT_DOUBLE_EQ(e0.numberOr("dur", -1), 5.0);
    const JsonValue *args = e0.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->stringOr("workload", ""), "fft");
    // The args-free event must not grow an args member.
    EXPECT_EQ(events->array[1].find("args"), nullptr);
}

// ---------------------------------------------------------------------
// Bench-diff gate.

std::vector<BenchEntry>
snap(std::vector<BenchEntry> entries)
{
    return entries;
}

TEST(BenchDiff, WithinThresholdIsUnchanged)
{
    BenchDiff d = diffBenchmarks(snap({{"a", 100.0, "ns", false}}),
                                 snap({{"a", 105.0, "ns", false}}), 0.10);
    ASSERT_EQ(d.rows.size(), 1u);
    EXPECT_EQ(d.rows[0].kind, BenchDeltaKind::UNCHANGED);
    EXPECT_NEAR(d.rows[0].deltaFrac, 0.05, 1e-12);
    EXPECT_FALSE(d.hasRegression());
}

TEST(BenchDiff, SlowdownPastThresholdRegresses)
{
    BenchDiff d = diffBenchmarks(snap({{"a", 100.0, "ns", false}}),
                                 snap({{"a", 125.0, "ns", false}}), 0.10);
    ASSERT_EQ(d.rows.size(), 1u);
    EXPECT_EQ(d.rows[0].kind, BenchDeltaKind::REGRESSED);
    EXPECT_EQ(d.regressed, 1);
    EXPECT_TRUE(d.hasRegression());
}

TEST(BenchDiff, SpeedupPastThresholdImproves)
{
    BenchDiff d = diffBenchmarks(snap({{"a", 100.0, "ns", false}}),
                                 snap({{"a", 80.0, "ns", false}}), 0.10);
    EXPECT_EQ(d.rows[0].kind, BenchDeltaKind::IMPROVED);
    EXPECT_EQ(d.improved, 1);
    EXPECT_FALSE(d.hasRegression());
}

TEST(BenchDiff, HigherIsBetterFlipsTheDirection)
{
    // Throughput dropping 30% is a regression even though the number
    // went down; throughput rising is an improvement.
    BenchDiff drop = diffBenchmarks(snap({{"r", 100.0, "i/s", true}}),
                                    snap({{"r", 70.0, "i/s", true}}),
                                    0.10);
    EXPECT_EQ(drop.rows[0].kind, BenchDeltaKind::REGRESSED);
    BenchDiff rise = diffBenchmarks(snap({{"r", 100.0, "i/s", true}}),
                                    snap({{"r", 130.0, "i/s", true}}),
                                    0.10);
    EXPECT_EQ(rise.rows[0].kind, BenchDeltaKind::IMPROVED);
}

TEST(BenchDiff, MissingAndNewBenchmarksAreFlaggedNotFatal)
{
    BenchDiff d = diffBenchmarks(
        snap({{"gone", 1.0, "ns", false}, {"kept", 2.0, "ns", false}}),
        snap({{"kept", 2.0, "ns", false}, {"new", 3.0, "ns", false}}),
        0.10);
    ASSERT_EQ(d.rows.size(), 3u);
    // New-snapshot order first, then removals in old order.
    EXPECT_EQ(d.rows[0].name, "kept");
    EXPECT_EQ(d.rows[0].kind, BenchDeltaKind::UNCHANGED);
    EXPECT_EQ(d.rows[1].name, "new");
    EXPECT_EQ(d.rows[1].kind, BenchDeltaKind::ADDED);
    EXPECT_EQ(d.rows[2].name, "gone");
    EXPECT_EQ(d.rows[2].kind, BenchDeltaKind::REMOVED);
    EXPECT_FALSE(d.hasRegression());
}

TEST(BenchDiff, ZeroOldValueDoesNotDivide)
{
    BenchDiff d = diffBenchmarks(snap({{"a", 0.0, "ns", false}}),
                                 snap({{"a", 5.0, "ns", false}}), 0.10);
    EXPECT_EQ(d.rows[0].deltaFrac, 0.0);
    EXPECT_EQ(d.rows[0].kind, BenchDeltaKind::UNCHANGED);
}

TEST(BenchDiff, RenderMentionsEveryRowAndTheThreshold)
{
    BenchDiff d = diffBenchmarks(snap({{"a", 100.0, "ns", false}}),
                                 snap({{"a", 150.0, "ns", false}}), 0.10);
    std::string out = renderBenchDiff(d, 0.10);
    EXPECT_NE(out.find("a"), std::string::npos);
    EXPECT_NE(out.find("REGRESSED"), std::string::npos);
    EXPECT_NE(out.find("threshold 10%"), std::string::npos);
}

TEST(BenchDiff, GoogleBenchmarkSnapshotFormatIsDetected)
{
    const char *snapshot = R"({
      "microbenchmarks": {"benchmarks": [
        {"name": "BM_alloc", "real_time": 120.5, "time_unit": "us"}
      ]},
      "fig13": {"wallSec": 0.5, "instrPerSec": 1e6}
    })";
    JsonParseResult parsed = parseJson(snapshot);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    std::string err;
    std::vector<BenchEntry> entries =
        benchEntriesFromJson(parsed.value, &err);
    ASSERT_EQ(entries.size(), 3u) << err;
    std::set<std::string> names;
    for (const BenchEntry &e : entries)
        names.insert(e.name);
    EXPECT_TRUE(names.count("BM_alloc"));
    EXPECT_TRUE(names.count("fig13/wallSec"));
    EXPECT_TRUE(names.count("fig13/instrPerSec"));
    for (const BenchEntry &e : entries)
        EXPECT_EQ(e.higherIsBetter, e.name == "fig13/instrPerSec");
}

TEST(BenchDiff, UnrecognisedDocumentReportsAnError)
{
    JsonParseResult parsed = parseJson(R"({"something":"else"})");
    ASSERT_TRUE(parsed.ok);
    std::string err;
    EXPECT_TRUE(benchEntriesFromJson(parsed.value, &err).empty());
    EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------------------
// JSON parser (new in this layer; the writer is covered by test_json).

TEST(JsonParse, ScalarsArraysAndNesting)
{
    JsonParseResult r = parseJson(
        R"({"a":1.5,"b":"x\n\"y\"","c":[true,false,null],"d":{"e":-2e3}})");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_DOUBLE_EQ(r.value.numberOr("a", 0), 1.5);
    EXPECT_EQ(r.value.stringOr("b", ""), "x\n\"y\"");
    const JsonValue *c = r.value.find("c");
    ASSERT_NE(c, nullptr);
    ASSERT_EQ(c->array.size(), 3u);
    EXPECT_TRUE(c->array[0].boolean);
    EXPECT_EQ(c->array[2].type, JsonValue::Type::NUL);
    const JsonValue *d = r.value.find("d");
    ASSERT_NE(d, nullptr);
    EXPECT_DOUBLE_EQ(d->numberOr("e", 0), -2000.0);
}

TEST(JsonParse, UnicodeEscapesDecodeToUtf8)
{
    JsonParseResult r = parseJson("{\"s\":\"\\u00e9\"}");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.value.stringOr("s", ""), "\xc3\xa9");
}

TEST(JsonParse, ErrorsCarryAnOffset)
{
    JsonParseResult r = parseJson("{\"a\":}");
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("offset"), std::string::npos);
    EXPECT_FALSE(parseJson("[1,2").ok);
    EXPECT_FALSE(parseJson("{} trailing").ok);
    EXPECT_FALSE(parseJson("").ok);
}

} // namespace
} // namespace rfh
