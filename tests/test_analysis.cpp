/**
 * @file
 * Unit tests for CFG analyses: predecessor/successor structure,
 * reachability, backward-branch detection, liveness, and reaching
 * definitions.
 */

#include <gtest/gtest.h>

#include "ir/cfg_analysis.h"
#include "ir/liveness.h"
#include "ir/parser.h"
#include "ir/reaching_defs.h"

namespace rfh {
namespace {

Kernel
diamondKernel()
{
    // entry -> (then | else) -> merge
    return parseKernelOrDie(R"(.kernel diamond
entry:
    setlt R1, R0, #5
    @R1 bra else
then:
    iadd R2, R0, #1
    bra merge
else:
    iadd R2, R0, #2
merge:
    iadd R3, R2, #3
    st.global [R0], R3
    exit
)");
}

Kernel
loopKernel()
{
    return parseKernelOrDie(R"(.kernel loop
entry:
    mov R1, #10
    mov R2, #0
body:
    iadd R2, R2, R1
    isub R1, R1, #1
    setgt R3, R1, #0
    @R3 bra body
exitb:
    st.global [R0], R2
    exit
)");
}

// -------------------------------------------------------------------- Cfg

TEST(Cfg, DiamondStructure)
{
    Kernel k = diamondKernel();
    Cfg cfg(k);
    ASSERT_EQ(cfg.numBlocks(), 4);
    EXPECT_EQ(cfg.succs(0), (std::vector<int>{2, 1}));
    EXPECT_EQ(cfg.succs(1), (std::vector<int>{3}));
    EXPECT_EQ(cfg.succs(2), (std::vector<int>{3}));
    EXPECT_TRUE(cfg.succs(3).empty());
    EXPECT_EQ(cfg.preds(3).size(), 2u);
    for (int b = 0; b < 4; b++)
        EXPECT_TRUE(cfg.reachable(b)) << b;
}

TEST(Cfg, BackwardBranchDetection)
{
    Kernel k = loopKernel();
    Cfg cfg(k);
    EXPECT_TRUE(cfg.endsWithBackwardBranch(1));
    EXPECT_TRUE(cfg.isBackwardTarget(1));
    EXPECT_FALSE(cfg.endsWithBackwardBranch(0));
    EXPECT_FALSE(cfg.isBackwardTarget(0));
    EXPECT_FALSE(cfg.isBackwardTarget(2));
}

TEST(Cfg, ForwardBranchIsNotBackward)
{
    Kernel k = diamondKernel();
    Cfg cfg(k);
    for (int b = 0; b < cfg.numBlocks(); b++) {
        EXPECT_FALSE(cfg.endsWithBackwardBranch(b)) << b;
        EXPECT_FALSE(cfg.isBackwardTarget(b)) << b;
    }
}

TEST(Cfg, ReversePostOrderStartsAtEntry)
{
    Kernel k = diamondKernel();
    Cfg cfg(k);
    const auto &rpo = cfg.reversePostOrder();
    ASSERT_FALSE(rpo.empty());
    EXPECT_EQ(rpo.front(), 0);
    // Merge block must come after both branch sides.
    auto pos = [&](int b) {
        return std::find(rpo.begin(), rpo.end(), b) - rpo.begin();
    };
    EXPECT_GT(pos(3), pos(1));
    EXPECT_GT(pos(3), pos(2));
}

TEST(Cfg, UnreachableBlockFlagged)
{
    Kernel k = parseKernelOrDie(R"(.kernel dead
entry:
    bra out
orphan:
    iadd R1, R0, #1
out:
    exit
)");
    // "orphan" is skipped by the unconditional branch... except that
    // "bra out" jumps over it, so it has no predecessors.
    Cfg cfg(k);
    EXPECT_TRUE(cfg.reachable(0));
    EXPECT_FALSE(cfg.reachable(1));
    EXPECT_TRUE(cfg.reachable(2));
}

// --------------------------------------------------------------- Liveness

TEST(Liveness, StraightLine)
{
    Kernel k = parseKernelOrDie(R"(.kernel s
entry:
    iadd R1, R0, #1
    iadd R2, R1, #2
    st.global [R0], R2
    exit
)");
    Cfg cfg(k);
    Liveness live(k, cfg);
    // R1 dies at its only read (lin 1); R2 dies at the store.
    EXPECT_TRUE(live.liveAfter(0, 1));
    EXPECT_FALSE(live.liveAfter(1, 1));
    EXPECT_TRUE(live.liveAfter(1, 2));
    EXPECT_FALSE(live.liveAfter(2, 2));
    // R0 is used by the store, so live through lin 1.
    EXPECT_TRUE(live.liveAfter(1, 0));
}

TEST(Liveness, AcrossBranches)
{
    Kernel k = diamondKernel();
    Cfg cfg(k);
    Liveness live(k, cfg);
    // R0 is used in both sides and in merge: live into all of them.
    EXPECT_TRUE(live.liveIn(1).test(0));
    EXPECT_TRUE(live.liveIn(2).test(0));
    EXPECT_TRUE(live.liveIn(3).test(0));
    // R2 live into merge; R1 (the predicate) dead after entry.
    EXPECT_TRUE(live.liveIn(3).test(2));
    EXPECT_FALSE(live.liveOut(0).test(1));
}

TEST(Liveness, LoopCarried)
{
    Kernel k = loopKernel();
    Cfg cfg(k);
    Liveness live(k, cfg);
    // R1 and R2 are live around the loop.
    EXPECT_TRUE(live.liveIn(1).test(1));
    EXPECT_TRUE(live.liveIn(1).test(2));
    EXPECT_TRUE(live.liveOut(1).test(1));
    // R3 (predicate) is not live into the loop header.
    EXPECT_FALSE(live.liveIn(1).test(3));
}

TEST(Liveness, UseDefHelpers)
{
    Instruction ffma = makeALU3(Opcode::FFMA, 5, SrcOperand::makeReg(1),
                                SrcOperand::makeReg(2),
                                SrcOperand::makeImm(7));
    RegSet uses = usedRegs(ffma);
    EXPECT_TRUE(uses.test(1));
    EXPECT_TRUE(uses.test(2));
    EXPECT_EQ(uses.count(), 2u);
    EXPECT_TRUE(definedRegs(ffma).test(5));

    Instruction wide = makeALU(Opcode::IMUL, 6, SrcOperand::makeReg(1),
                               SrcOperand::makeReg(2));
    wide.wide = true;
    EXPECT_TRUE(definedRegs(wide).test(6));
    EXPECT_TRUE(definedRegs(wide).test(7));
}

// ----------------------------------------------------------- ReachingDefs

TEST(ReachingDefs, StraightLineChains)
{
    Kernel k = parseKernelOrDie(R"(.kernel s
entry:
    iadd R1, R0, #1
    iadd R1, R1, #2
    iadd R2, R1, #3
    exit
)");
    Cfg cfg(k);
    ReachingDefs rd(k, cfg);

    // The read at lin1 sees the def at lin0; the read at lin2 sees the
    // def at lin1.
    auto defs1 = rd.reachingDefs(1, 0);
    ASSERT_EQ(defs1.size(), 1u);
    EXPECT_EQ(rd.defInstr(defs1[0]), 0);
    auto defs2 = rd.reachingDefs(2, 0);
    ASSERT_EQ(defs2.size(), 1u);
    EXPECT_EQ(rd.defInstr(defs2[0]), 1);
}

TEST(ReachingDefs, BoundaryDefsAtEntry)
{
    Kernel k = parseKernelOrDie(R"(.kernel s
entry:
    iadd R1, R0, #1
    exit
)");
    Cfg cfg(k);
    ReachingDefs rd(k, cfg);
    auto defs = rd.reachingDefs(0, 0);
    ASSERT_EQ(defs.size(), 1u);
    EXPECT_TRUE(ReachingDefs::isBoundary(defs[0]));
    EXPECT_EQ(rd.defReg(defs[0]), 0);
}

TEST(ReachingDefs, MergeCollectsBothSides)
{
    Kernel k = diamondKernel();
    Cfg cfg(k);
    ReachingDefs rd(k, cfg);
    // merge reads R2 (lin 6, slot 0): both hammock defs reach.
    int merge_lin = k.blockStart(3);
    auto defs = rd.reachingDefs(merge_lin, 0);
    ASSERT_EQ(defs.size(), 2u);
    EXPECT_FALSE(ReachingDefs::isBoundary(defs[0]));
    EXPECT_FALSE(ReachingDefs::isBoundary(defs[1]));
}

TEST(ReachingDefs, LoopBackEdge)
{
    Kernel k = loopKernel();
    Cfg cfg(k);
    ReachingDefs rd(k, cfg);
    // "iadd R2, R2, R1" at the loop head reads R2 defined both by the
    // entry mov and by itself (around the back edge).
    int head = k.blockStart(1);
    auto defs = rd.reachingDefs(head, 0);
    ASSERT_EQ(defs.size(), 2u);
}

TEST(ReachingDefs, UsesListsAllSites)
{
    Kernel k = loopKernel();
    Cfg cfg(k);
    ReachingDefs rd(k, cfg);
    // Def of R1 in entry (lin 0) is read by the loop body adds.
    DefId d = rd.defsAt(0)[0];
    EXPECT_EQ(rd.defReg(d), 1);
    EXPECT_FALSE(rd.uses(d).empty());
}

TEST(ReachingDefs, PredicateUseTracked)
{
    Kernel k = loopKernel();
    Cfg cfg(k);
    ReachingDefs rd(k, cfg);
    // setgt defines R3, used as the branch predicate.
    int setgt_lin = k.blockStart(1) + 2;
    DefId d = rd.defsAt(setgt_lin)[0];
    ASSERT_EQ(rd.uses(d).size(), 1u);
    EXPECT_EQ(rd.uses(d)[0].slot, kPredSlot);
}

TEST(ReachingDefs, WideDefsCreateTwoDefs)
{
    Kernel k = parseKernelOrDie(R"(.kernel w
entry:
    imul.wide R2, R0, #8
    iadd R4, R2, R3
    exit
)");
    Cfg cfg(k);
    ReachingDefs rd(k, cfg);
    ASSERT_EQ(rd.defsAt(0).size(), 2u);
    EXPECT_EQ(rd.defReg(rd.defsAt(0)[0]), 2);
    EXPECT_EQ(rd.defReg(rd.defsAt(0)[1]), 3);
    // R3 (high half) read by the iadd.
    auto defs = rd.reachingDefs(1, 1);
    ASSERT_EQ(defs.size(), 1u);
    EXPECT_EQ(rd.defInstr(defs[0]), 0);
}

} // namespace
} // namespace rfh
