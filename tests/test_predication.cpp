/**
 * @file
 * Tests for PTX-style instruction predication (if-conversion): machine
 * semantics, merge-style dataflow, allocator soundness, and executor
 * accounting.
 */

#include <gtest/gtest.h>

#include "compiler/allocator.h"
#include "compiler/instances.h"
#include "ir/liveness.h"
#include "ir/parser.h"
#include "sim/baseline_exec.h"
#include "sim/machine.h"
#include "sim/simt.h"
#include "sim/sw_exec.h"

namespace rfh {
namespace {

TEST(Predication, MachineSkipsDisabledInstructions)
{
    Kernel k = parseKernelOrDie(R"(.kernel p
entry:
    mov R2, #5
    mov R1, #0
    @R1 mov R2, #9
    mov R1, #1
    @R1 mov R3, #7
    exit
)");
    WarpContext w;
    w.reset(0);
    while (!w.done)
        step(k, w);
    EXPECT_EQ(w.regs[2], 5u) << "disabled write must not land";
    EXPECT_EQ(w.regs[3], 7u) << "enabled write must land";
}

TEST(Predication, PredicatedStoreSuppressed)
{
    Kernel k = parseKernelOrDie(R"(.kernel ps
entry:
    mov R1, #0
    mov R2, #77
    @R1 st.global [R0+100], R2
    ld.global R3, [R0+100]
    exit
)");
    WarpContext w;
    w.reset(3);
    while (!w.done)
        step(k, w);
    EXPECT_NE(w.regs[3], 77u);
}

TEST(Predication, DefReadsOldValueInLiveness)
{
    Instruction in = makeALU(Opcode::IADD, 5, SrcOperand::makeReg(1),
                             SrcOperand::makeImm(1));
    in.pred = 2;
    RegSet uses = usedRegs(in);
    EXPECT_TRUE(uses.test(1));
    EXPECT_TRUE(uses.test(2));
    EXPECT_TRUE(uses.test(5)) << "merge semantics: dst is also a use";
}

TEST(Predication, ReachingDefsMergeNotKill)
{
    Kernel k = parseKernelOrDie(R"(.kernel rd
entry:
    mov R2, #5
    setlt R1, R0, #3
    @R1 mov R2, #9
    st.global [R0], R2
    exit
)");
    Cfg cfg(k);
    ReachingDefs rd(k, cfg);
    // The store's read of R2 sees both the unconditional and the
    // predicated definition.
    auto defs = rd.reachingDefs(3, 1);
    ASSERT_EQ(defs.size(), 2u);
    EXPECT_EQ(rd.defInstr(defs[0]), 0);
    EXPECT_EQ(rd.defInstr(defs[1]), 2);
}

TEST(Predication, InstancesGroupPredicatedDefWithPrior)
{
    Kernel k = parseKernelOrDie(R"(.kernel gi
entry:
    mov R2, #5
    setlt R1, R0, #3
    @R1 mov R2, #9
    iadd R3, R2, #1
    st.global [R0], R3
    exit
)");
    Cfg cfg(k);
    StrandAnalysis sa(k, cfg);
    ReachingDefs rd(k, cfg);
    InstanceAnalysis ia(k, cfg, sa, rd);
    // The two defs of R2 form one grouped instance (a one-instruction
    // hammock) whose merge read is servable from a shared entry.
    for (const auto &vi : ia.values()) {
        if (vi.reg == 2) {
            EXPECT_EQ(vi.defLins.size(), 2u);
            EXPECT_EQ(vi.uses.size(), 1u);
        }
    }
}

TEST(Predication, HierarchyExecutionVerifiesClean)
{
    // Divergent predicates across warps; the grouped ORF entry must
    // hold the architecturally-correct merged value either way.
    Kernel k = parseKernelOrDie(R"(.kernel hv
entry:
    mov R2, #5
    setlt R1, R0, #3
    @R1 iadd R2, R0, #9
    iadd R3, R2, #1
    @R1 iadd R3, R3, #2
    st.shared [R0], R3
    st.shared [R0+4], R2
    exit
)");
    for (bool lrf : {false, true}) {
        AllocOptions opts;
        opts.useLRF = lrf;
        opts.splitLRF = lrf;
        Kernel kk = k;
        HierarchyAllocator alloc(EnergyParams{}, opts);
        alloc.run(kk);
        SwExecConfig cfg;
        cfg.run.numWarps = 8;
        SwExecResult r = runSwHierarchy(kk, opts, cfg);
        EXPECT_TRUE(r.ok()) << r.error;
    }
}

TEST(Predication, DisabledWritesNotCounted)
{
    // A never-true predicate: the write must not be charged anywhere.
    Kernel k = parseKernelOrDie(R"(.kernel nc
entry:
    mov R1, #0
    @R1 iadd R2, R0, #1
    st.shared [R0], R0
    exit
)");
    RunConfig rc;
    rc.numWarps = 1;
    AccessCounts base = runBaseline(k, rc);
    // Writes: only the mov (the predicated iadd is squashed).
    EXPECT_EQ(base.allWrites(), 1u);
}

TEST(Predication, SimtLanesDivergeOnPredicate)
{
    // Lanes 0..2 take the predicated add; the rest keep the old value.
    Kernel k = parseKernelOrDie(R"(.kernel sd
entry:
    mov R2, #5
    setlt R1, R0, #3
    @R1 iadd R2, R2, #10
    st.global [R0], R2
    exit
)");
    Cfg cfg(k);
    SimtWarp warp(k, cfg, 0, 8);
    while (!warp.done())
        warp.step();
    for (int l = 0; l < 8; l++)
        EXPECT_EQ(warp.laneRegs(l)[2], l < 3 ? 15u : 5u) << l;
    // Predication needs no reconvergence stack activity.
    EXPECT_EQ(warp.divergences(), 0u);
}

TEST(Predication, PredicatedLongLatencyStaysSound)
{
    Kernel k = parseKernelOrDie(R"(.kernel pll
entry:
    setlt R1, R0, #4
    @R1 ld.global R2, [R0]
    iadd R3, R2, #1
    st.shared [R0], R3
    exit
)");
    AllocOptions opts;
    HierarchyAllocator alloc(EnergyParams{}, opts);
    Kernel kk = k;
    alloc.run(kk);
    SwExecConfig cfg;
    cfg.run.numWarps = 8;  // some warps load, some do not
    SwExecResult r = runSwHierarchy(kk, opts, cfg);
    EXPECT_TRUE(r.ok()) << r.error;
}

} // namespace
} // namespace rfh
