/**
 * @file
 * Unit tests for the energy model (Tables 3 and 4), access-count
 * energy accounting, and the encoding-overhead model (Section 6.5).
 */

#include <gtest/gtest.h>

#include "energy/encoding_overhead.h"
#include "energy/energy_model.h"
#include "sim/access_counters.h"

namespace rfh {
namespace {

TEST(EnergyParams, Table3Values)
{
    EXPECT_DOUBLE_EQ(EnergyParams::orfReadPJ(1), 0.7);
    EXPECT_DOUBLE_EQ(EnergyParams::orfWritePJ(1), 2.0);
    EXPECT_DOUBLE_EQ(EnergyParams::orfReadPJ(3), 1.2);
    EXPECT_DOUBLE_EQ(EnergyParams::orfWritePJ(3), 4.4);
    EXPECT_DOUBLE_EQ(EnergyParams::orfReadPJ(8), 3.4);
    EXPECT_DOUBLE_EQ(EnergyParams::orfWritePJ(8), 10.9);
}

TEST(EnergyParams, LrfEqualsOneEntryOrf)
{
    EnergyParams p;
    EXPECT_DOUBLE_EQ(p.lrfReadPJ, EnergyParams::orfReadPJ(1));
    EXPECT_DOUBLE_EQ(p.lrfWritePJ, EnergyParams::orfWritePJ(1));
}

TEST(EnergyModel, PerOperandAccessEnergy)
{
    EnergyModel em(EnergyParams{}, 3);
    // 128-bit arrays serve 4 lanes; per-operand = table / 4.
    EXPECT_DOUBLE_EQ(em.accessEnergy(Level::MRF, false), 2.0);
    EXPECT_DOUBLE_EQ(em.accessEnergy(Level::MRF, true), 2.75);
    EXPECT_DOUBLE_EQ(em.accessEnergy(Level::ORF, false), 0.3);
    EXPECT_DOUBLE_EQ(em.accessEnergy(Level::ORF, true), 1.1);
    EXPECT_DOUBLE_EQ(em.accessEnergy(Level::LRF, false), 0.175);
    EXPECT_DOUBLE_EQ(em.accessEnergy(Level::LRF, true), 0.5);
}

TEST(EnergyModel, WireEnergyByDistance)
{
    EnergyModel em(EnergyParams{}, 3);
    EXPECT_DOUBLE_EQ(em.wireEnergy(Level::MRF, Datapath::PRIVATE), 1.9);
    EXPECT_DOUBLE_EQ(em.wireEnergy(Level::MRF, Datapath::SHARED), 1.9);
    EXPECT_NEAR(em.wireEnergy(Level::ORF, Datapath::PRIVATE), 0.38,
                1e-12);
    EXPECT_NEAR(em.wireEnergy(Level::ORF, Datapath::SHARED), 0.76,
                1e-12);
    EXPECT_NEAR(em.wireEnergy(Level::LRF, Datapath::PRIVATE), 0.095,
                1e-12);
}

TEST(EnergyModel, PaperWireRatios)
{
    // Section 5.2: private wire energy 5x lower for ORF, 20x for LRF.
    EnergyModel em(EnergyParams{}, 3);
    double mrf = em.wireEnergy(Level::MRF, Datapath::PRIVATE);
    EXPECT_NEAR(mrf / em.wireEnergy(Level::ORF, Datapath::PRIVATE), 5.0,
                1e-9);
    EXPECT_NEAR(mrf / em.wireEnergy(Level::LRF, Datapath::PRIVATE),
                20.0, 1e-9);
}

TEST(EnergyModel, SplitLrfWireFactor)
{
    EnergyParams p;
    EnergyModel unified(p, 3, false);
    EnergyModel split(p, 3, true);
    EXPECT_NEAR(split.wireEnergy(Level::LRF, Datapath::PRIVATE),
                unified.wireEnergy(Level::LRF, Datapath::PRIVATE) *
                    p.splitLrfWireFactor, 1e-12);
}

TEST(EnergyModel, OrfSizeAffectsAccessEnergy)
{
    EnergyModel small(EnergyParams{}, 1);
    EnergyModel large(EnergyParams{}, 8);
    EXPECT_LT(small.accessEnergy(Level::ORF, false),
              large.accessEnergy(Level::ORF, false));
    EXPECT_LT(small.accessEnergy(Level::ORF, true),
              large.accessEnergy(Level::ORF, true));
}

TEST(AccessCounts, EnergyAccumulation)
{
    EnergyModel em(EnergyParams{}, 3);
    AccessCounts c;
    c.read(Level::MRF, Datapath::PRIVATE, 10);
    c.write(Level::MRF, Datapath::PRIVATE, 5);
    double expected = 10 * (2.0 + 1.9) + 5 * (2.75 + 1.9);
    EXPECT_NEAR(c.totalEnergyPJ(em), expected, 1e-9);
    EXPECT_NEAR(c.accessEnergyPJ(em, Level::MRF), 10 * 2.0 + 5 * 2.75,
                1e-9);
    EXPECT_NEAR(c.wireEnergyPJ(em, Level::MRF), 15 * 1.9, 1e-9);
    EXPECT_EQ(c.totalEnergyPJ(em),
              c.accessEnergyPJ(em, Level::MRF) +
                  c.wireEnergyPJ(em, Level::MRF));
}

TEST(AccessCounts, SharedWireCharged)
{
    EnergyModel em(EnergyParams{}, 3);
    AccessCounts priv, shared;
    priv.read(Level::ORF, Datapath::PRIVATE, 10);
    shared.read(Level::ORF, Datapath::SHARED, 10);
    EXPECT_LT(priv.totalEnergyPJ(em), shared.totalEnergyPJ(em));
}

TEST(AccessCounts, AddMergesEverything)
{
    AccessCounts a, b;
    a.read(Level::MRF, Datapath::PRIVATE, 3);
    a.instructions = 7;
    a.wbReads = 2;
    b.write(Level::LRF, Datapath::PRIVATE, 4);
    b.deschedules = 1;
    a.add(b);
    EXPECT_EQ(a.totalReads(Level::MRF), 3u);
    EXPECT_EQ(a.totalWrites(Level::LRF), 4u);
    EXPECT_EQ(a.instructions, 7u);
    EXPECT_EQ(a.wbReads, 2u);
    EXPECT_EQ(a.deschedules, 1u);
    EXPECT_EQ(a.allReads(), 3u);
    EXPECT_EQ(a.allWrites(), 4u);
}

TEST(EncodingOverhead, PaperNumbers)
{
    EncodingOverheadModel eo;
    // 1 extra bit on a 32-bit instruction: ~3% fetch/decode increase,
    // ~0.3% chip-wide (Section 6.5).
    EXPECT_NEAR(eo.fetchDecodeIncrease(1), 1.0 / 32, 1e-12);
    EXPECT_NEAR(eo.chipOverhead(1), 0.003125, 1e-9);
    // 5 bits: ~15% fetch/decode, ~1.5% chip-wide.
    EXPECT_NEAR(eo.chipOverhead(5), 0.015625, 1e-9);
    // Net savings at the paper's 54% register-file saving.
    EXPECT_NEAR(eo.netChipSavings(0.54, 1), 0.058 - 0.003125, 1e-6);
    EXPECT_GT(eo.netChipSavings(0.54, 5), 0.042);
}

TEST(EncodingOverhead, RegisterFileShareDerivation)
{
    // 54% RF saving == 5.8% chip-wide saving (Section 6.4).
    EncodingOverheadModel eo;
    EXPECT_NEAR(eo.registerFileShare * 0.54, 0.058, 1e-9);
}

} // namespace
} // namespace rfh
