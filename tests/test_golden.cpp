/**
 * @file
 * Golden figure-shape regression suite (ctest label: golden).
 *
 * EXPERIMENTS.md quotes one measured number per paper claim; this
 * suite re-derives those numbers through the same engine paths the
 * bench harnesses use and pins each one inside an explicit tolerance
 * band. The simulation is fully deterministic, so the bands are not
 * statistical slack — they define how far a future change may move a
 * headline figure before CI calls it a regression. A legitimate
 * result-moving change must update the band here *and* the table in
 * EXPERIMENTS.md in the same commit (rows enforced here are marked
 * there).
 *
 * Band centres (from EXPERIMENTS.md):
 *   Fig 2:  read<=1 65.6%, once-within-3 54.1%, shared-consumed 20.8%,
 *           privately-produced 96.2%, reads/instr 1.35, writes/instr 0.85
 *   Fig 11: SW reads exactly 100% of baseline, HW +20.1% @3,
 *           MRF-read cut 23.0%, ORF-write increase 15.6%
 *   Fig 12: LRF 19.3% of reads, HW overhead writes 47.2%, SW 20.9%
 *   Fig 13: optima all @3; savings HW2 35.6%, HW3 41.4%, SW2 43.3%,
 *           SW3 47.8%; partial+readops gain 3.2 pp
 *   Fig 14: MRF share 68.9%, access balance 54.8%, LRF wire 0.78%
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/report.h"
#include "core/sweep.h"
#include "energy/energy_model.h"
#include "sim/baseline_exec.h"
#include "workloads/registry.h"

namespace rfh {
namespace {

/**
 * One full-suite sweep over every scheme, shared by the whole suite —
 * the same grid the fig11/fig12/fig13 harnesses print.
 */
class GoldenFigures : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        ExperimentConfig cfg;
        points_ = new std::vector<SweepPoint>(sweepEntries(
            {Scheme::HW_TWO_LEVEL, Scheme::HW_THREE_LEVEL,
             Scheme::SW_TWO_LEVEL, Scheme::SW_THREE_LEVEL},
            cfg));
        base_ = new AccessCounts(aggregateBaselineCounts());
    }

    static void
    TearDownTestSuite()
    {
        delete points_;
        delete base_;
        points_ = nullptr;
        base_ = nullptr;
    }

    static const SweepPoint &
    at(Scheme s, int entries)
    {
        for (const SweepPoint &p : *points_)
            if (p.scheme == s && p.entries == entries)
                return p;
        ADD_FAILURE() << "missing sweep point";
        static SweepPoint none;
        return none;
    }

    static AccessBreakdown
    breakdown(Scheme s, int entries)
    {
        return normalizeAccesses(at(s, entries).outcome.counts,
                                 *base_);
    }

    static std::vector<SweepPoint> *points_;
    static AccessCounts *base_;
};

std::vector<SweepPoint> *GoldenFigures::points_ = nullptr;
AccessCounts *GoldenFigures::base_ = nullptr;

// ---- Figure 2: register usage patterns ----

TEST(GoldenFig02, UsageMetricsStayInBand)
{
    UsageStats total;
    for (const Workload &w : allWorkloads())
        total.add(collectUsageStats(w.kernel, w.run));
    ASSERT_GT(total.totalValues, 0u);

    double readLe1 = total.fracRead(0) + total.fracRead(1);
    EXPECT_GT(readLe1, 0.60);  // measured 0.656
    EXPECT_LT(readLe1, 0.72);

    double onceWithin3 =
        static_cast<double>(total.life1 + total.life2 + total.life3) /
        static_cast<double>(total.totalValues);
    EXPECT_GT(onceWithin3, 0.48);  // measured 0.541
    EXPECT_LT(onceWithin3, 0.60);

    double sharedConsumed =
        static_cast<double>(total.sharedConsumed) /
        static_cast<double>(total.totalValues);
    EXPECT_GT(sharedConsumed, 0.15);  // measured 0.208
    EXPECT_LT(sharedConsumed, 0.27);

    double privatelyProduced =
        static_cast<double>(total.sharedConsumedPrivateProduced) /
        static_cast<double>(total.sharedConsumed);
    EXPECT_GT(privatelyProduced, 0.90);  // measured 0.962

    double readsPerInstr = static_cast<double>(total.regReads) /
        static_cast<double>(total.instructions);
    double writesPerInstr = static_cast<double>(total.regWrites) /
        static_cast<double>(total.instructions);
    EXPECT_GT(readsPerInstr, 1.25);  // measured 1.35
    EXPECT_LT(readsPerInstr, 1.45);
    EXPECT_GT(writesPerInstr, 0.78);  // measured 0.85
    EXPECT_LT(writesPerInstr, 0.92);
}

// ---- Figure 11: two-level access breakdown ----

TEST_F(GoldenFigures, Fig11SoftwareReadsExactlyMatchBaseline)
{
    // Software control performs no overhead reads at any size: the
    // demand reads just come from cheaper levels. This is an exact
    // integer invariant, not a band.
    std::uint64_t baseReads = base_->allReads();
    for (int e = 1; e <= kMaxOrfEntries; e++) {
        const AccessCounts &c =
            at(Scheme::SW_TWO_LEVEL, e).outcome.counts;
        EXPECT_EQ(c.wbReads, 0u) << "entries " << e;
        EXPECT_EQ(c.allReads(), baseReads) << "entries " << e;
    }
}

TEST_F(GoldenFigures, Fig11HardwareWritebackReadOverhead)
{
    // The RFC reads evicted live values back out for writeback, so its
    // demand+overhead reads exceed baseline (measured +20.1% @3).
    AccessBreakdown hw3 = breakdown(Scheme::HW_TWO_LEVEL, 3);
    EXPECT_GT(hw3.totalReads(), 1.05);
    EXPECT_LT(hw3.totalReads(), 1.40);

    // And software writes the upper level less than the RFC does
    // (measured 9.8% fewer @3).
    AccessBreakdown sw3 = breakdown(Scheme::SW_TWO_LEVEL, 3);
    EXPECT_LT(sw3.orfWrites, hw3.orfWrites);
}

TEST_F(GoldenFigures, Fig11PartialAndReadOperandAllocation)
{
    AccessBreakdown sw3 = breakdown(Scheme::SW_TWO_LEVEL, 3);
    ExperimentConfig plain;
    plain.scheme = Scheme::SW_TWO_LEVEL;
    plain.entries = 3;
    plain.partialRanges = false;
    plain.readOperands = false;
    AccessBreakdown off =
        normalizeAccesses(runAllWorkloads(plain).counts, *base_);

    // Partial-range + read-operand allocation convert >15% of the
    // remaining MRF reads into ORF reads (measured 23.0%)...
    double readCut = (off.mrfReads - sw3.mrfReads) / off.mrfReads;
    EXPECT_GT(readCut, 0.15);
    EXPECT_LT(readCut, 0.35);

    // ...for a bounded increase in ORF writes (measured 15.6%).
    double writeIncrease =
        (sw3.orfWrites - off.orfWrites) / off.orfWrites;
    EXPECT_GT(writeIncrease, 0.05);
    EXPECT_LT(writeIncrease, 0.30);
}

// ---- Figure 12: three-level access breakdown ----

TEST_F(GoldenFigures, Fig12LrfCapturesShortLivedReads)
{
    AccessBreakdown sw3 = breakdown(Scheme::SW_THREE_LEVEL, 3);
    double lrfShare = sw3.lrfReads / sw3.totalReads();
    EXPECT_GT(lrfShare, 0.15);  // measured 0.193
    EXPECT_LT(lrfShare, 0.30);
}

TEST_F(GoldenFigures, Fig12SoftwareCutsOverheadWrites)
{
    AccessBreakdown hw3 = breakdown(Scheme::HW_THREE_LEVEL, 3);
    AccessBreakdown sw3 = breakdown(Scheme::SW_THREE_LEVEL, 3);
    // Hardware: every captured value is also written below on
    // eviction (measured 1.472x baseline writes @3).
    EXPECT_GT(hw3.totalWrites(), 1.30);
    EXPECT_LT(hw3.totalWrites(), 1.60);
    // Software: compile-time placement skips most of those copies
    // (measured 1.209x), strictly below hardware.
    EXPECT_GT(sw3.totalWrites(), 1.05);
    EXPECT_LT(sw3.totalWrites(), 1.30);
    EXPECT_LT(sw3.totalWrites(), hw3.totalWrites());
}

// ---- Figure 13: normalised energy (the headline) ----

TEST_F(GoldenFigures, Fig13OptimaAndSavingsBands)
{
    struct Band
    {
        Scheme scheme;
        double lo, hi;  // savings fraction at the optimum
    };
    // Centres: HW2 35.6%, HW3 41.4%, SW2 43.3%, SW3 47.8% — all @3.
    const Band bands[] = {
        {Scheme::HW_TWO_LEVEL, 0.32, 0.40},
        {Scheme::HW_THREE_LEVEL, 0.37, 0.45},
        {Scheme::SW_TWO_LEVEL, 0.39, 0.47},
        {Scheme::SW_THREE_LEVEL, 0.44, 0.52},
    };
    for (const Band &b : bands) {
        const SweepPoint *best = bestPoint(*points_, b.scheme);
        ASSERT_NE(best, nullptr);
        EXPECT_EQ(best->entries, 3)
            << schemeName(b.scheme) << " optimum moved";
        double savings = 1.0 - best->outcome.normalizedEnergy();
        EXPECT_GT(savings, b.lo) << schemeName(b.scheme);
        EXPECT_LT(savings, b.hi) << schemeName(b.scheme);
    }

    // The paper's ordering: each added mechanism helps.
    auto savingsOf = [&](Scheme s) {
        return 1.0 - bestPoint(*points_, s)->outcome.normalizedEnergy();
    };
    EXPECT_GT(savingsOf(Scheme::SW_THREE_LEVEL),
              savingsOf(Scheme::SW_TWO_LEVEL));
    EXPECT_GT(savingsOf(Scheme::SW_TWO_LEVEL),
              savingsOf(Scheme::HW_THREE_LEVEL));
    EXPECT_GT(savingsOf(Scheme::HW_THREE_LEVEL),
              savingsOf(Scheme::HW_TWO_LEVEL));
}

TEST_F(GoldenFigures, Fig13PartialAndReadOperandEnergyGain)
{
    double with =
        at(Scheme::SW_THREE_LEVEL, 3).outcome.normalizedEnergy();
    ExperimentConfig off;
    off.scheme = Scheme::SW_THREE_LEVEL;
    off.entries = 3;
    off.partialRanges = false;
    off.readOperands = false;
    double without = runAllWorkloads(off).normalizedEnergy();
    double gainPp = without - with;
    EXPECT_GT(gainPp, 0.02);  // measured 3.2 pp
    EXPECT_LT(gainPp, 0.05);
}

// ---- Figure 14: energy breakdown of the best design ----

TEST_F(GoldenFigures, Fig14ResidualEnergyIsMrfDominated)
{
    const RunOutcome &o = at(Scheme::SW_THREE_LEVEL, 3).outcome;
    ExperimentConfig cfg;
    EnergyModel em(cfg.energy, 3, true);
    const AccessCounts &c = o.counts;
    double base = o.baselineEnergyPJ;
    ASSERT_GT(base, 0.0);
    double mrfWire = c.wireEnergyPJ(em, Level::MRF) / base;
    double mrfAcc = c.accessEnergyPJ(em, Level::MRF) / base;
    double total = mrfWire + mrfAcc +
        c.wireEnergyPJ(em, Level::ORF) / base +
        c.accessEnergyPJ(em, Level::ORF) / base +
        c.wireEnergyPJ(em, Level::LRF) / base +
        c.accessEnergyPJ(em, Level::LRF) / base;

    double mrfShare = (mrfWire + mrfAcc) / total;
    EXPECT_GT(mrfShare, 0.55);  // measured 0.689
    EXPECT_LT(mrfShare, 0.80);

    double accBalance = mrfAcc / (mrfAcc + mrfWire);
    EXPECT_GT(accBalance, 0.45);  // measured 0.548
    EXPECT_LT(accBalance, 0.65);

    double lrfWire = c.wireEnergyPJ(em, Level::LRF) / base;
    EXPECT_LT(lrfWire, 0.02);  // measured 0.0078
}

// ---- Section 6: the two-level scheduler claim, in pipeline form ----

/**
 * Suite-aggregate IPC of the cycle-level pipeline at 32 resident
 * warps under the flat baseline scheme: sum(issued) / sum(cycles)
 * over every registry workload.
 */
double
suiteIpc(SchedPolicy policy, int activeWarps)
{
    PipelineConfig pcfg;
    pcfg.policy = policy;
    pcfg.activeWarps = activeWarps;
    PipelineStats agg;
    for (const Workload &w : allWorkloads()) {
        Workload resident = w;
        resident.run.numWarps = 32;
        ExperimentConfig cfg;
        cfg.scheme = Scheme::BASELINE;
        SchemePipelineResult pr =
            runSchemePipeline(resident, cfg, pcfg);
        EXPECT_TRUE(pr.ok()) << w.name << ": " << pr.error;
        agg.add(pr.stats);
    }
    return agg.ipc();
}

TEST(GoldenScheduler, EightActiveWarpsLoseNothingToFlat32)
{
    // The paper's claim (Section 6): a two-level scheduler holding
    // only 8 of 32 resident warps in the active set performs like
    // scheduling all 32 — the active set alone hides ALU latency, and
    // swaps hide the long-latency tail.
    double flat32 = suiteIpc(SchedPolicy::FLAT_RR, 32);
    ASSERT_GT(flat32, 0.0);
    for (int active : {8, 32}) {
        double two = suiteIpc(SchedPolicy::TWO_LEVEL, active);
        EXPECT_GE(two, 0.95 * flat32) << active << " active";
    }
}

TEST(GoldenScheduler, IpcDegradesMonotonicallyBelowSixActiveWarps)
{
    // Below the latency-hiding knee the active set is the bottleneck:
    // every active warp removed costs throughput, monotonically.
    double prev = -1.0;
    for (int active : {1, 2, 3, 4, 5, 6}) {
        double ipc = suiteIpc(SchedPolicy::TWO_LEVEL, active);
        EXPECT_GE(ipc, prev)
            << active - 1 << " active out-performed " << active;
        prev = ipc;
    }
}

} // namespace
} // namespace rfh
