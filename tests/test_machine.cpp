/**
 * @file
 * Unit tests for the functional machine: opcode semantics, control
 * flow, memory behaviour, and determinism.
 */

#include <bit>
#include <gtest/gtest.h>

#include "ir/parser.h"
#include "sim/machine.h"

namespace rfh {
namespace {

std::uint32_t
evalOne(Opcode op, std::uint32_t a, std::uint32_t b = 0,
        std::uint32_t c = 0)
{
    Instruction in;
    in.op = op;
    in.numSrcs = numSrcOperands(op);
    Memory mem;
    std::array<std::uint32_t, kMaxSrcs> ops = {a, b, c};
    std::uint32_t lo = 0, hi = 0;
    evaluate(in, ops, mem, lo, hi);
    return lo;
}

std::uint32_t
f2u(float f)
{
    return std::bit_cast<std::uint32_t>(f);
}

TEST(Machine, IntegerOps)
{
    EXPECT_EQ(evalOne(Opcode::IADD, 3, 4), 7u);
    EXPECT_EQ(evalOne(Opcode::ISUB, 3, 4), 0xffffffffu);
    EXPECT_EQ(evalOne(Opcode::IMUL, 6, 7), 42u);
    EXPECT_EQ(evalOne(Opcode::IMAD, 2, 3, 4), 10u);
    EXPECT_EQ(evalOne(Opcode::IMIN, 0xffffffffu, 1), 0xffffffffu)
        << "imin is signed";
    EXPECT_EQ(evalOne(Opcode::IMAX, 0xffffffffu, 1), 1u);
    EXPECT_EQ(evalOne(Opcode::AND, 0xf0f0u, 0xff00u), 0xf000u);
    EXPECT_EQ(evalOne(Opcode::OR, 0xf0f0u, 0x0f00u), 0xfff0u);
    EXPECT_EQ(evalOne(Opcode::XOR, 0xff00u, 0x0ff0u), 0xf0f0u);
    EXPECT_EQ(evalOne(Opcode::NOT, 0u), 0xffffffffu);
    EXPECT_EQ(evalOne(Opcode::SHL, 1, 4), 16u);
    EXPECT_EQ(evalOne(Opcode::SHR, 16, 4), 1u);
    EXPECT_EQ(evalOne(Opcode::SHL, 1, 33), 2u) << "shift masked to 5 bits";
}

TEST(Machine, FloatOps)
{
    EXPECT_EQ(evalOne(Opcode::FADD, f2u(1.5f), f2u(2.5f)), f2u(4.0f));
    EXPECT_EQ(evalOne(Opcode::FMUL, f2u(3.0f), f2u(2.0f)), f2u(6.0f));
    EXPECT_EQ(evalOne(Opcode::FFMA, f2u(2.0f), f2u(3.0f), f2u(1.0f)),
              f2u(7.0f));
    EXPECT_EQ(evalOne(Opcode::FMIN, f2u(1.0f), f2u(2.0f)), f2u(1.0f));
    EXPECT_EQ(evalOne(Opcode::FMAX, f2u(1.0f), f2u(2.0f)), f2u(2.0f));
}

TEST(Machine, NanNormalised)
{
    std::uint32_t inf = f2u(std::numeric_limits<float>::infinity());
    std::uint32_t r = evalOne(Opcode::FSUB, inf, inf);
    EXPECT_EQ(r, 0x7fc00000u);
}

TEST(Machine, Comparisons)
{
    EXPECT_EQ(evalOne(Opcode::SETLT, 1, 2), 1u);
    EXPECT_EQ(evalOne(Opcode::SETLT, 2, 1), 0u);
    EXPECT_EQ(evalOne(Opcode::SETLT, 0xffffffffu, 0), 1u) << "signed";
    EXPECT_EQ(evalOne(Opcode::SETGE, 5, 5), 1u);
    EXPECT_EQ(evalOne(Opcode::SETEQ, 7, 7), 1u);
    EXPECT_EQ(evalOne(Opcode::SETNE, 7, 7), 0u);
    EXPECT_EQ(evalOne(Opcode::SEL, 1, 10, 20), 10u);
    EXPECT_EQ(evalOne(Opcode::SEL, 0, 10, 20), 20u);
}

TEST(Machine, WideMultiply)
{
    Instruction in;
    in.op = Opcode::IMUL;
    in.wide = true;
    in.numSrcs = 2;
    Memory mem;
    std::array<std::uint32_t, kMaxSrcs> ops = {0x80000000u, 4, 0};
    std::uint32_t lo = 0, hi = 0;
    evaluate(in, ops, mem, lo, hi);
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 2u);
}

TEST(Machine, MemoryRoundTrip)
{
    Memory mem(42);
    std::uint32_t before = mem.load(100);
    mem.store(100, 0xdeadbeef);
    EXPECT_EQ(mem.load(100), 0xdeadbeefu);
    EXPECT_NE(before, 0xdeadbeefu);
    // Other addresses unchanged and deterministic.
    Memory mem2(42);
    EXPECT_EQ(mem.load(104), mem2.load(104));
    // Different seeds produce different contents.
    Memory mem3(43);
    EXPECT_NE(mem2.load(104), mem3.load(104));
}

TEST(Machine, MemOffsetApplied)
{
    Kernel k = parseKernelOrDie(R"(.kernel off
entry:
    st.global [R1+8], R0
    ld.global R2, [R1+8]
    ld.global R3, [R1]
    exit
)");
    WarpContext w;
    w.reset(0);
    w.regs[1] = 1000;
    w.regs[0] = 77;
    step(k, w);
    step(k, w);
    step(k, w);
    EXPECT_EQ(w.regs[2], 77u);
    EXPECT_NE(w.regs[3], 77u);
}

TEST(Machine, ControlFlowLoop)
{
    Kernel k = parseKernelOrDie(R"(.kernel cf
entry:
    mov R1, #3
    mov R2, #0
loop:
    iadd R2, R2, #10
    isub R1, R1, #1
    setgt R3, R1, #0
    @R3 bra loop
out:
    exit
)");
    WarpContext w;
    w.reset(0);
    int steps = 0;
    while (!w.done && steps++ < 100)
        step(k, w);
    EXPECT_TRUE(w.done);
    EXPECT_EQ(w.regs[2], 30u);
    EXPECT_EQ(w.regs[1], 0u);
}

TEST(Machine, PredicatedBranchNotTaken)
{
    Kernel k = parseKernelOrDie(R"(.kernel nt
entry:
    mov R1, #0
    @R1 bra skip
body:
    mov R2, #42
skip:
    exit
)");
    WarpContext w;
    w.reset(0);
    while (!w.done)
        step(k, w);
    EXPECT_EQ(w.regs[2], 42u);
}

TEST(Machine, PredicatedBranchTaken)
{
    Kernel k = parseKernelOrDie(R"(.kernel t
entry:
    mov R1, #1
    mov R2, #7
    @R1 bra skip
body:
    mov R2, #42
skip:
    exit
)");
    WarpContext w;
    w.reset(0);
    while (!w.done)
        step(k, w);
    EXPECT_EQ(w.regs[2], 7u);
}

TEST(Machine, WarpSeedingConventions)
{
    WarpContext w;
    w.reset(5);
    EXPECT_EQ(w.regs[0], 5u);
    EXPECT_EQ(w.regs[kMaxRegs - 1], 0x1000u + 5 * 0x100);
    WarpContext w2;
    w2.reset(5);
    EXPECT_EQ(w.regs, w2.regs);
    WarpContext w3;
    w3.reset(6);
    EXPECT_NE(w.regs, w3.regs);
}

TEST(Machine, ExitStopsWarp)
{
    Kernel k = parseKernelOrDie(".kernel e\nentry:\n    exit\n");
    WarpContext w;
    w.reset(0);
    step(k, w);
    EXPECT_TRUE(w.done);
}

} // namespace
} // namespace rfh
