/**
 * @file
 * Corpus-tier statistical golden bands (ctest label: corpus).
 *
 * Where test_golden.cpp pins the paper's figures over the ~20
 * hand-written workloads, this suite pins them over generated kernel
 * *populations*: per-profile energy-ratio confidence bands, per-level
 * access-share medians, the profile round-trip contract, the seed
 * corpus drift guard, and the byte-identity of the aggregate document
 * across thread counts. The bands were measured at the exact
 * configurations used here (seed 1); a legitimate generator or engine
 * change that moves them must update the constants in this file and
 * the population table in EXPERIMENTS.md in the same commit.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/corpus.h"
#include "core/experiment.h"
#include "core/json.h"
#include "core/parallel.h"
#include "core/scheme.h"
#include "workloads/profiles.h"

namespace rfh {
namespace {

Scheme
schemeOf(const std::string &token)
{
    const SchemeInfo *info = SchemeRegistry::instance().findToken(token);
    EXPECT_NE(info, nullptr) << token;
    return info ? info->scheme : Scheme::BASELINE;
}

CorpusResult
runOrDie(const CorpusConfig &cfg, ThreadPool *pool = nullptr)
{
    CorpusResult r;
    std::string err;
    bool ok = runCorpus(cfg, r, pool, &err);
    EXPECT_TRUE(ok) << err;
    return r;
}

// ---- scenario-profile registry and round trip ----

TEST(CorpusProfiles, JsonRoundTripIsAFixpoint)
{
    for (const ScenarioProfile &p : allProfiles()) {
        std::string doc = profileToJson(p);
        JsonParseResult parsed = parseJson(doc);
        ASSERT_TRUE(parsed.ok) << p.name << ": " << parsed.error;
        ScenarioProfile back;
        std::string err;
        ASSERT_TRUE(profileFromJson(parsed.value, back, &err))
            << p.name << ": " << err;
        // name -> params -> JSON -> params -> JSON closes exactly.
        EXPECT_EQ(profileToJson(back), doc) << p.name;
        EXPECT_EQ(back.name, p.name);
        EXPECT_EQ(back.warps, p.warps);
    }
}

TEST(CorpusProfiles, UnknownProfileErrorListsValidNames)
{
    std::vector<ScenarioProfile> out;
    std::string err;
    EXPECT_FALSE(resolveProfiles({"no-such-profile"}, out, &err));
    EXPECT_NE(err.find("unknown profile 'no-such-profile'"),
              std::string::npos)
        << err;
    // Mirrors the service's unknown_scheme contract: the error quotes
    // every valid name so the caller can self-correct.
    for (const ScenarioProfile &p : allProfiles())
        EXPECT_NE(err.find(p.name), std::string::npos)
            << err << " missing " << p.name;
}

TEST(CorpusProfiles, RunCorpusSurfacesConfigErrors)
{
    CorpusConfig cfg;
    cfg.profiles = {"bogus"};
    CorpusResult r;
    std::string err;
    EXPECT_FALSE(runCorpus(cfg, r, nullptr, &err));
    EXPECT_NE(err.find("unknown profile"), std::string::npos) << err;

    CorpusConfig bad;
    bad.cells = {{schemeOf("sw3"), 0}};
    err.clear();
    EXPECT_FALSE(runCorpus(bad, r, nullptr, &err));
    EXPECT_NE(err.find("out of range"), std::string::npos) << err;
}

// ---- seed corpus drift guard ----

TEST(CorpusProfiles, SeedCorpusSliceFingerprintsArePinned)
{
    // FNV-1a over the printed text of each profile's first 64 kernels
    // at corpus seed 1. A generator, jitter, or printer change that
    // shifts the population must update this table deliberately —
    // silent drift would invalidate every band below.
    struct Pin
    {
        const char *profile;
        std::uint64_t fingerprint;
    };
    const Pin pins[] = {
        {"balanced", 0xb38637a0f7d61991ull},
        {"divergent", 0xef2cb4b34b90e1ccull},
        {"sfu-heavy", 0xbabffd42fbcdbc94ull},
        {"long-strands", 0x11a0eae45e92d643ull},
        {"short-strands", 0x119d842b3d8f5da0ull},
        {"persistent", 0x44fa5d19f4c22e9dull},
        {"high-pressure", 0x9bfd1dd575ed685eull},
        {"wild", 0xc29f0a8f12f17e0eull},
    };
    ASSERT_EQ(std::size(pins), allProfiles().size())
        << "profile set changed: re-pin the drift guard";
    for (const Pin &pin : pins) {
        const ScenarioProfile *p = findProfile(pin.profile);
        ASSERT_NE(p, nullptr) << pin.profile;
        EXPECT_EQ(corpusSliceFingerprint(*p, 1, 64), pin.fingerprint)
            << pin.profile << " seed corpus drifted";
    }
}

// ---- sample extraction: local == wire ----

TEST(CorpusSamples, OutcomeAndResultJsonExtractIdentically)
{
    // The fleet client folds samples parsed from service result
    // documents; the local runner folds them straight from
    // RunOutcome. Byte-identity of the aggregates requires the two
    // extractions to agree exactly — in particular the wire's
    // per-level "reads"/"writes" are already datapath totals and must
    // not have the shared component added again.
    ExperimentConfig cfg;
    cfg.scheme = schemeOf("sw3");
    cfg.entries = 3;
    RunOutcome o = runAllWorkloads(cfg);
    ASSERT_TRUE(o.ok()) << o.error;

    JsonWriter w;
    writeJson(w, o);
    JsonParseResult parsed = parseJson(w.str());
    ASSERT_TRUE(parsed.ok) << parsed.error;

    CorpusSample local = corpusSampleFromOutcome(o);
    CorpusSample wire;
    std::string err;
    ASSERT_TRUE(corpusSampleFromResultJson(parsed.value, wire, &err))
        << err;

    EXPECT_EQ(local.normalizedEnergy, wire.normalizedEnergy);
    for (int l = 0; l < 3; l++) {
        EXPECT_EQ(local.reads[l], wire.reads[l]) << "level " << l;
        EXPECT_EQ(local.writes[l], wire.writes[l]) << "level " << l;
    }
    EXPECT_EQ(local.instructions, wire.instructions);
    EXPECT_EQ(local.valueInstances, wire.valueInstances);
    EXPECT_EQ(local.lrfValues, wire.lrfValues);
    EXPECT_EQ(local.orfValues, wire.orfValues);
    EXPECT_EQ(local.mrfWritesElided, wire.mrfWritesElided);
    EXPECT_EQ(local.hasPerf, wire.hasPerf);
}

// ---- aggregate byte-identity across thread counts ----

TEST(CorpusDeterminism, AggregateJsonIsByteIdenticalAcrossThreadCounts)
{
    CorpusConfig cfg;
    cfg.profiles = {"balanced", "divergent"};
    cfg.kernelsPerProfile = 64;
    cfg.cells = {{schemeOf("sw3"), 2}, {schemeOf("hw2"), 4}};
    cfg.chunk = 16;

    ThreadPool one(1);
    ThreadPool four(4);
    std::string a = corpusToJson(runOrDie(cfg, &one));
    std::string b = corpusToJson(runOrDie(cfg, &four));
    EXPECT_EQ(a, b) << "corpus aggregate depends on thread count";

    // And across repeated runs with the default pool.
    std::string c = corpusToJson(runOrDie(cfg));
    EXPECT_EQ(a, c) << "corpus aggregate is not reproducible";
}

// ---- population golden bands ----

/**
 * The corpus-scale Figure 13 statement: over 1000 balanced-profile
 * kernels, SW_THREE_LEVEL at 3 entries saves about half the register
 * file energy, and the population confidence band overlaps the
 * deterministic golden point measured on the hand-written suite.
 */
TEST(CorpusGolden, Fig13Sw3PopulationBandBracketsGoldenValue)
{
    CorpusConfig cfg;
    cfg.profiles = {"balanced"};
    cfg.kernelsPerProfile = 1000;
    cfg.cells = {{schemeOf("sw3"), 3}};
    CorpusResult r = runOrDie(cfg);
    ASSERT_EQ(r.profiles.size(), 1u);
    const CorpusCellStats &cell = r.profiles[0].cells[0];
    EXPECT_EQ(cell.runs, 1000u);
    EXPECT_EQ(cell.errors, 0u) << cell.firstError;

    StatBand band = cell.energyRatio.bootstrapMeanBand(
        r.config.confidence, r.config.bootstrapResamples,
        r.config.seed);
    // Measured at this exact config: mean 0.5248, band
    // [0.5216, 0.5280]. The hand-written-suite golden point is 0.522
    // (47.8% savings, EXPERIMENTS.md Fig 13); the population band
    // must overlap it within a 1.5 pp margin.
    const double kGolden = 0.522;
    EXPECT_LE(band.lo, kGolden + 0.015) << "population moved high";
    EXPECT_GE(band.hi, kGolden - 0.015) << "population moved low";
    // The band itself stays tight and inside the deterministic
    // golden-test ratio band [0.48, 0.56] (savings 44-52%).
    EXPECT_LT(band.hi - band.lo, 0.03) << "band degenerated";
    EXPECT_GT(band.lo, 0.48);
    EXPECT_LT(band.hi, 0.56);
    EXPECT_TRUE(band.contains(cell.energyRatio.mean()));
}

/**
 * Per-level access-share medians of SW_THREE_LEVEL at 3 entries
 * across four profiles, 256 kernels each. Centres measured at this
 * exact config (seed 1); the +/-0.05 slack absorbs quantile bucket
 * resolution, not population drift — the drift guard above pins the
 * kernels themselves.
 */
TEST(CorpusGolden, Sw3AccessShareMediansStayInBandAcrossProfiles)
{
    struct ProfileBand
    {
        const char *profile;
        double read[3];  // median read share, MRF/ORF/LRF
        double write[3]; // median write share, MRF/ORF/LRF
    };
    const ProfileBand centres[] = {
        {"balanced", {0.432, 0.258, 0.313}, {0.314, 0.256, 0.430}},
        {"divergent", {0.405, 0.284, 0.306}, {0.294, 0.297, 0.401}},
        {"long-strands", {0.267, 0.320, 0.410}, {0.173, 0.276, 0.550}},
        {"short-strands", {0.543, 0.230, 0.231}, {0.429, 0.239, 0.333}},
    };
    const double kSlack = 0.05;

    CorpusConfig cfg;
    cfg.kernelsPerProfile = 256;
    cfg.cells = {{schemeOf("sw3"), 3}};
    cfg.profiles.clear();
    for (const ProfileBand &pb : centres)
        cfg.profiles.push_back(pb.profile);
    CorpusResult r = runOrDie(cfg);
    ASSERT_EQ(r.profiles.size(), std::size(centres));

    for (std::size_t i = 0; i < std::size(centres); i++) {
        const ProfileBand &pb = centres[i];
        const CorpusProfileStats &ps = r.profiles[i];
        ASSERT_EQ(ps.profile.name, pb.profile);
        const CorpusCellStats &cell = ps.cells[0];
        EXPECT_EQ(cell.errors, 0u)
            << pb.profile << ": " << cell.firstError;
        for (int l = 0; l < 3; l++) {
            EXPECT_NEAR(cell.readShare[l].quantile(0.5), pb.read[l],
                        kSlack)
                << pb.profile << " read level " << l;
            EXPECT_NEAR(cell.writeShare[l].quantile(0.5), pb.write[l],
                        kSlack)
                << pb.profile << " write level " << l;
        }
    }

    // Shape claims that must hold whatever the exact centres: long
    // strands keep values in registers longest, so the LRF+ORF soak
    // up most reads; short strands leave the MRF dominant.
    const CorpusCellStats &longs = r.profiles[2].cells[0];
    const CorpusCellStats &shorts = r.profiles[3].cells[0];
    EXPECT_GT(longs.readShare[2].quantile(0.5),
              longs.readShare[0].quantile(0.5))
        << "long-strands: LRF median read share below MRF";
    EXPECT_GT(shorts.readShare[0].quantile(0.5),
              shorts.readShare[2].quantile(0.5))
        << "short-strands: MRF median read share below LRF";
}

/**
 * The population ordering claims behind Figure 13 that survive the
 * move from the hand-written suite to generated populations: software
 * control beats hardware caching at equal depth, and a third level
 * beats two at equal control, per profile, on mean energy ratio.
 * (The cross claim sw2 < hw3 is suite-specific — on divergent and
 * long-strand populations the extra level outweighs compile-time
 * control, so it is deliberately not asserted here.)
 */
TEST(CorpusGolden, SchemeOrderingHoldsPerProfile)
{
    CorpusConfig cfg;
    cfg.profiles = {"balanced", "divergent", "long-strands"};
    cfg.kernelsPerProfile = 128;
    cfg.cells = {{schemeOf("sw3"), 3},
                 {schemeOf("sw2"), 3},
                 {schemeOf("hw3"), 3},
                 {schemeOf("hw2"), 3}};
    CorpusResult r = runOrDie(cfg);
    for (const CorpusProfileStats &ps : r.profiles) {
        double sw3 = ps.cells[0].energyRatio.mean();
        double sw2 = ps.cells[1].energyRatio.mean();
        double hw3 = ps.cells[2].energyRatio.mean();
        double hw2 = ps.cells[3].energyRatio.mean();
        EXPECT_LT(sw3, sw2) << ps.profile.name;  // control, 3 levels
        EXPECT_LT(sw2, hw2) << ps.profile.name;  // control, 2 levels
        EXPECT_LT(sw3, hw3) << ps.profile.name;  // depth, software
        EXPECT_LT(hw3, hw2) << ps.profile.name;  // depth, hardware
    }
}

} // namespace
} // namespace rfh
