/**
 * @file
 * Tests for SIMT divergence: post-dominator reconvergence, the
 * reconvergence stack, SIMD efficiency accounting, and the key
 * property that every SIMT lane produces bit-exactly the state the
 * scalar machine produces for the corresponding thread.
 */

#include <gtest/gtest.h>

#include "ir/parser.h"
#include "sim/simt.h"
#include "workloads/registry.h"
#include "workloads/synthetic.h"

namespace rfh {
namespace {

// ---------------------------------------------------- Post-dominators

TEST(PostDominators, Diamond)
{
    Kernel k = parseKernelOrDie(R"(.kernel d
entry:
    setlt R1, R0, #2
    @R1 bra els
thn:
    iadd R2, R0, #1
    bra merge
els:
    iadd R2, R0, #2
merge:
    st.global [R0], R2
    exit
)");
    Cfg cfg(k);
    EXPECT_EQ(cfg.immediatePostDominator(0), 3);
    EXPECT_EQ(cfg.immediatePostDominator(1), 3);
    EXPECT_EQ(cfg.immediatePostDominator(2), 3);
    EXPECT_EQ(cfg.immediatePostDominator(3), -1);
}

TEST(PostDominators, NestedHammocks)
{
    Kernel k = parseKernelOrDie(R"(.kernel n
b0:
    setlt R1, R0, #4
    @R1 bra b4
b1:
    setlt R2, R0, #2
    @R2 bra b3
b2:
    iadd R3, R0, #1
b3:
    iadd R3, R0, #2
b4:
    st.global [R0], R3
    exit
)");
    Cfg cfg(k);
    EXPECT_EQ(cfg.immediatePostDominator(0), 4);
    EXPECT_EQ(cfg.immediatePostDominator(1), 3);
    EXPECT_EQ(cfg.immediatePostDominator(2), 3);
    EXPECT_EQ(cfg.immediatePostDominator(3), 4);
}

TEST(PostDominators, LoopLatch)
{
    Kernel k = parseKernelOrDie(R"(.kernel l
entry:
    mov R1, #4
body:
    isub R1, R1, #1
    setgt R2, R1, #0
    @R2 bra body
out:
    exit
)");
    Cfg cfg(k);
    // The latch reconverges at the loop exit.
    EXPECT_EQ(cfg.immediatePostDominator(1), 2);
    EXPECT_EQ(cfg.immediatePostDominator(0), 1);
}

// ------------------------------------------------------- SIMT machine

/** Scalar reference: run thread @p tid through the scalar machine. */
std::array<std::uint32_t, kMaxRegs>
scalarThread(const Kernel &k, std::uint32_t tid)
{
    WarpContext w;
    w.reset(tid);
    std::uint64_t steps = 0;
    while (!w.done && steps++ < (1u << 20))
        step(k, w);
    EXPECT_TRUE(w.done);
    return w.regs;
}

void
expectLaneEquivalence(const Kernel &k, int warps, int width)
{
    Cfg cfg(k);
    for (int wid = 0; wid < warps; wid++) {
        SimtWarp warp(k, cfg, static_cast<std::uint32_t>(wid), width);
        std::uint64_t steps = 0;
        while (!warp.done() && steps++ < (1u << 21))
            warp.step();
        ASSERT_TRUE(warp.done()) << "warp " << wid << " hung";
        for (int l = 0; l < width; l++) {
            std::uint32_t tid = static_cast<std::uint32_t>(
                wid * width + l);
            EXPECT_EQ(warp.laneRegs(l), scalarThread(k, tid))
                << k.name << " warp " << wid << " lane " << l;
        }
    }
}

TEST(Simt, UniformControlFlowNeverDiverges)
{
    Kernel k = parseKernelOrDie(R"(.kernel u
entry:
    mov R1, #8
body:
    isub R1, R1, #1
    iadd R2, R1, R1
    setgt R3, R1, #0
    @R3 bra body
out:
    st.global [R0], R2
    exit
)");
    SimtStats s = runSimt(k, 2, 8);
    EXPECT_EQ(s.divergences, 0u);
    EXPECT_DOUBLE_EQ(s.simdEfficiency, 1.0);
    expectLaneEquivalence(k, 2, 8);
}

TEST(Simt, HammockDivergesAndReconverges)
{
    Kernel k = parseKernelOrDie(R"(.kernel h
entry:
    setlt R1, R0, #4
    @R1 bra low
high:
    iadd R2, R0, #100
    bra merge
low:
    iadd R2, R0, #200
merge:
    iadd R3, R2, #1
    st.global [R0], R3
    exit
)");
    // 8 lanes: tids 0..7, half take each side.
    SimtStats s = runSimt(k, 1, 8);
    EXPECT_EQ(s.divergences, 1u);
    EXPECT_LT(s.simdEfficiency, 1.0);
    EXPECT_GT(s.simdEfficiency, 0.5);
    expectLaneEquivalence(k, 1, 8);
}

TEST(Simt, DataDependentLoopTripCounts)
{
    // Each lane iterates tid+1 times: heavy latch divergence.
    Kernel k = parseKernelOrDie(R"(.kernel trip
entry:
    iadd R1, R0, #1
    mov R2, #0
body:
    iadd R2, R2, #3
    isub R1, R1, #1
    setgt R3, R1, #0
    @R3 bra body
out:
    st.global [R0], R2
    exit
)");
    SimtStats s = runSimt(k, 1, 8);
    EXPECT_GT(s.divergences, 0u);
    expectLaneEquivalence(k, 1, 8);
}

TEST(Simt, LoopBreakReconvergesAtExit)
{
    // Divergent forward break out of a loop (mandelbrot-style).
    Kernel k = parseKernelOrDie(R"(.kernel brk
entry:
    mov R1, #10
    mov R2, #0
body:
    iadd R2, R2, R0
    setgt R3, R2, #20
    @R3 bra esc
cont:
    isub R1, R1, #1
    setgt R4, R1, #0
    @R4 bra body
esc:
    st.global [R0], R2
    exit
)");
    expectLaneEquivalence(k, 2, 8);
}

TEST(Simt, AllWorkloadsLaneEquivalent)
{
    for (const Workload &w : allWorkloads())
        expectLaneEquivalence(w.kernel, 1, 4);
}

TEST(Simt, SyntheticKernelsLaneEquivalent)
{
    for (std::uint64_t seed : {11u, 22u, 33u, 44u}) {
        SynthParams p;
        p.seed = seed;
        p.pHammock = 0.5;
        Kernel k = generateSynthetic("simt", p);
        expectLaneEquivalence(k, 1, 8);
    }
}

TEST(Simt, WideWarpMasks)
{
    Kernel k = parseKernelOrDie(R"(.kernel w32
entry:
    setlt R1, R0, #16
    @R1 bra low
high:
    iadd R2, R0, #1
    bra merge
low:
    iadd R2, R0, #2
merge:
    st.global [R0], R2
    exit
)");
    SimtStats s = runSimt(k, 1, 32);
    EXPECT_EQ(s.divergences, 1u);
    expectLaneEquivalence(k, 1, 32);
}

TEST(Simt, EfficiencyReportsSerialisation)
{
    // needle's hammock predicate compares hashed data values, so
    // lanes within a warp take both sides; efficiency reflects the
    // serialised issue slots.
    const Workload &w = workloadByName("needle");
    SimtStats s = runSimt(w.kernel, 2, 8);
    EXPECT_GT(s.divergences, 0u);
    EXPECT_LT(s.simdEfficiency, 1.0);
    EXPECT_GT(s.simdEfficiency, 0.2);
}

} // namespace
} // namespace rfh
