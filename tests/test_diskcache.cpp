/**
 * @file
 * Tests for the persistent compile cache (src/core/diskcache.h) and
 * the exact binary serialization underneath it (src/core/serialize.h).
 *
 * The contract under test is the one that makes a disk hit safe to
 * substitute for a computation: a serialized analysis bundle, baseline
 * count set, or decoded trace deserializes to bytes that re-serialize
 * identically; any torn, truncated, corrupt, or version-skewed entry
 * reads as a miss (and is unlinked), never as wrong data; eviction
 * under a size cap races cleanly with concurrent readers; and a fresh
 * memo cache attached to a warm directory reproduces bit-identical
 * results without recomputing.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/diskcache.h"
#include "core/memo.h"
#include "core/serialize.h"
#include "ir/analysis_bundle.h"
#include "workloads/registry.h"

namespace rfh {
namespace {

namespace fs = std::filesystem;

/** Fresh cache directory per test, removed on scope exit. */
class TempDir
{
  public:
    TempDir()
    {
        const testing::TestInfo *info =
            testing::UnitTest::GetInstance()->current_test_info();
        path_ = fs::temp_directory_path() /
            ("rfh-dc-" + std::to_string(::getpid()) + "-" +
             info->name());
        fs::remove_all(path_);
    }

    ~TempDir() { fs::remove_all(path_); }

    std::string
    str() const
    {
        return path_.string();
    }

    /** The single entry file in the directory (fails if not exactly 1). */
    fs::path
    onlyEntry() const
    {
        std::vector<fs::path> files;
        for (const auto &e : fs::directory_iterator(path_))
            files.push_back(e.path());
        EXPECT_EQ(files.size(), 1u);
        return files.empty() ? fs::path() : files[0];
    }

  private:
    fs::path path_;
};

const Kernel &
testKernel()
{
    static const Kernel &k = findWorkload("matrixmul")->kernel;
    return k;
}

// ---- Serialization round-trips ----

TEST(DiskCache, AnalysisBundleRoundTripIsByteIdentical)
{
    AnalysisBundle bundle(testKernel());
    ByteWriter w;
    bundle.serialize(w);
    std::string bytes = w.take();
    ASSERT_FALSE(bytes.empty());

    ByteReader r(bytes);
    AnalysisBundle copy(r);
    ASSERT_TRUE(r.ok());
    // The payload must be fully consumed: trailing bytes would mean
    // the reader and writer disagree about the layout.
    ASSERT_TRUE(r.atEnd());

    ByteWriter w2;
    copy.serialize(w2);
    EXPECT_EQ(bytes, w2.take());
}

TEST(DiskCache, AccessCountsAndTraceRoundTrip)
{
    const Workload &wl = *findWorkload("vectoradd");
    ExperimentCache cache;
    const AccessCounts &counts = cache.baseline(wl.kernel, wl.run);
    auto trace = cache.trace(wl.kernel, wl.run);

    ByteWriter cw;
    serializeAccessCounts(cw, counts);
    std::string cbytes = cw.take();
    ByteReader cr(cbytes);
    AccessCounts counts2 = deserializeAccessCounts(cr);
    ASSERT_TRUE(cr.ok() && cr.atEnd());
    ByteWriter cw2;
    serializeAccessCounts(cw2, counts2);
    EXPECT_EQ(cbytes, cw2.take());

    ByteWriter tw;
    serializeDecodedTrace(tw, *trace);
    std::string tbytes = tw.take();
    ByteReader tr(tbytes);
    DecodedTrace trace2 = deserializeDecodedTrace(tr);
    ASSERT_TRUE(tr.ok() && tr.atEnd());
    ByteWriter tw2;
    serializeDecodedTrace(tw2, trace2);
    EXPECT_EQ(tbytes, tw2.take());
}

TEST(DiskCache, TruncatedPayloadReadsAsFailure)
{
    AnalysisBundle bundle(testKernel());
    ByteWriter w;
    bundle.serialize(w);
    std::string bytes = w.take();

    // Every proper prefix must fail cleanly (sticky !ok()), never
    // fabricate a bundle or over-read.
    for (std::size_t cut : {std::size_t(0), std::size_t(1),
                            bytes.size() / 2, bytes.size() - 1}) {
        std::string prefix = bytes.substr(0, cut);
        ByteReader r(prefix);
        AnalysisBundle copy(r);
        EXPECT_FALSE(r.ok() && r.atEnd()) << "cut=" << cut;
    }
}

// ---- DiskCache storage semantics ----

TEST(DiskCache, StoreThenLoadHitsWithIdenticalPayload)
{
    TempDir dir;
    DiskCache dc({dir.str(), 0, kDiskCacheVersion});
    ASSERT_TRUE(dc.usable());

    std::string payload = "payload \0 with\nbinary bytes";
    dc.store("analysis:fp=1234", payload);
    std::string got;
    ASSERT_TRUE(dc.load("analysis:fp=1234", got));
    EXPECT_EQ(got, payload);
    EXPECT_EQ(dc.stats().hits, 1u);
    EXPECT_EQ(dc.stats().writes, 1u);

    // A different key is a miss even though the directory is warm.
    EXPECT_FALSE(dc.load("analysis:fp=9999", got));
    EXPECT_EQ(dc.stats().misses, 1u);
}

TEST(DiskCache, TornEntryIsAMissAndGetsUnlinked)
{
    TempDir dir;
    DiskCache dc({dir.str(), 0, kDiskCacheVersion});
    dc.store("baseline:fp=1", std::string(4096, 'x'));

    // Simulate a crash mid-write published by a non-atomic writer:
    // truncate the entry under its final name.
    fs::path entry = dir.onlyEntry();
    fs::resize_file(entry, fs::file_size(entry) / 2);

    std::string got;
    EXPECT_FALSE(dc.load("baseline:fp=1", got));
    EXPECT_EQ(dc.stats().invalidated, 1u);
    EXPECT_FALSE(fs::exists(entry));
}

TEST(DiskCache, CorruptPayloadFailsTheChecksum)
{
    TempDir dir;
    DiskCache dc({dir.str(), 0, kDiskCacheVersion});
    dc.store("trace:fp=2", std::string(1024, 'y'));

    fs::path entry = dir.onlyEntry();
    {
        // Flip one payload byte near the end of the file.
        std::fstream f(entry, std::ios::in | std::ios::out |
                                  std::ios::binary);
        f.seekp(-8, std::ios::end);
        f.put('Z');
    }
    std::string got;
    EXPECT_FALSE(dc.load("trace:fp=2", got));
    EXPECT_EQ(dc.stats().invalidated, 1u);
}

TEST(DiskCache, VersionMismatchInvalidatesOldEntries)
{
    TempDir dir;
    std::string got;
    {
        DiskCache v1({dir.str(), 0, 1});
        v1.store("analysis:fp=3", "old-layout");
        ASSERT_TRUE(v1.load("analysis:fp=3", got));
    }
    // An upgraded process must treat the v1 entry as a miss (the
    // payload layout may have changed), unlink it, and repopulate.
    DiskCache v2({dir.str(), 0, 2});
    EXPECT_FALSE(v2.load("analysis:fp=3", got));
    EXPECT_EQ(v2.stats().invalidated, 1u);
    v2.store("analysis:fp=3", "new-layout");
    ASSERT_TRUE(v2.load("analysis:fp=3", got));
    EXPECT_EQ(got, "new-layout");
}

TEST(DiskCache, SizeCapEvictsLeastRecentlyUsed)
{
    TempDir dir;
    // ~16 KiB cap, 2 KiB payloads: the directory can hold a handful
    // of entries and must evict the cold ones as more arrive.
    DiskCache dc({dir.str(), 16 * 1024, kDiskCacheVersion});
    for (int i = 0; i < 16; i++)
        dc.store("k" + std::to_string(i), std::string(2048, 'a'));

    DiskCacheStats s = dc.stats();
    EXPECT_GT(s.evictions, 0u);
    EXPECT_LE(s.bytesStored, 16u * 1024u);

    // The newest entry survived the sweep.
    std::string got;
    EXPECT_TRUE(dc.load("k15", got));
}

TEST(DiskCache, ConcurrentReadersSurviveEviction)
{
    TempDir dir;
    DiskCache dc({dir.str(), 32 * 1024, kDiskCacheVersion});
    const std::string payload(2048, 'p');
    for (int i = 0; i < 8; i++)
        dc.store("warm" + std::to_string(i), payload);

    // Readers hammer the warm keys while a writer churns new entries
    // through the cap, forcing evictions underneath them. Every load
    // must be either a clean hit with the exact payload or a clean
    // miss — never a crash or torn bytes.
    std::atomic<bool> stop{false};
    std::atomic<int> badPayloads{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; t++)
        readers.emplace_back([&, t] {
            std::string got;
            while (!stop.load()) {
                std::string key = "warm" + std::to_string(t * 2);
                if (dc.load(key, got) && got != payload)
                    badPayloads++;
            }
        });
    for (int i = 0; i < 64; i++)
        dc.store("churn" + std::to_string(i), payload);
    stop = true;
    for (std::thread &t : readers)
        t.join();

    EXPECT_EQ(badPayloads.load(), 0);
    EXPECT_GT(dc.stats().evictions, 0u);
}

TEST(DiskCache, UnusableDirectoryDegradesToNoop)
{
    TempDir dir;
    // Create a regular file where the cache directory should go.
    fs::create_directories(fs::path(dir.str()).parent_path());
    std::ofstream(dir.str()) << "not a directory";

    DiskCache dc({dir.str(), 0, kDiskCacheVersion});
    EXPECT_FALSE(dc.usable());
    std::string got;
    EXPECT_FALSE(dc.load("k", got));
    dc.store("k", "v");  // must not crash
    EXPECT_FALSE(dc.load("k", got));
}

// ---- Memo integration: warm start ----

TEST(DiskCache, FreshMemoCacheStartsWarmFromDisk)
{
    TempDir dir;
    DiskCache dc({dir.str(), 0, kDiskCacheVersion});
    const Workload &wl = *findWorkload("reduction");

    // First process: compute and persist.
    ByteWriter w1;
    {
        ExperimentCache memo;
        memo.attachDiskCache(&dc);
        memo.analyses(wl.kernel)->serialize(w1);
        ByteWriter tmp;
        serializeAccessCounts(tmp, memo.baseline(wl.kernel, wl.run));
        memo.trace(wl.kernel, wl.run);
        memo.attachDiskCache(nullptr);
    }
    DiskCacheStats cold = dc.stats();
    EXPECT_EQ(cold.hits, 0u);
    EXPECT_GE(cold.writes, 3u);  // baseline + analyses + trace

    // Second process (fresh memo cache, same directory): every kind
    // loads from disk and the analyses are bit-identical.
    ByteWriter w2;
    {
        ExperimentCache memo;
        memo.attachDiskCache(&dc);
        memo.analyses(wl.kernel)->serialize(w2);
        memo.baseline(wl.kernel, wl.run);
        memo.trace(wl.kernel, wl.run);
        memo.attachDiskCache(nullptr);
    }
    DiskCacheStats warm = dc.stats();
    EXPECT_GE(warm.hits, cold.hits + 3);
    EXPECT_EQ(warm.writes, cold.writes);
    EXPECT_EQ(w1.take(), w2.take());
}

} // namespace
} // namespace rfh
