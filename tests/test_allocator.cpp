/**
 * @file
 * Unit tests for the hierarchy allocator: annotation correctness on
 * small kernels, partial-range and read-operand behaviour, the
 * three-level LRF pass, the split LRF, and option plumbing.
 */

#include <gtest/gtest.h>

#include "compiler/allocator.h"
#include "ir/parser.h"

namespace rfh {
namespace {

Kernel
allocate(std::string_view text, AllocOptions opts = {},
         AllocStats *stats_out = nullptr)
{
    Kernel k = parseKernelOrDie(text);
    HierarchyAllocator alloc(EnergyParams{}, opts);
    AllocStats stats = alloc.run(k);
    if (stats_out)
        *stats_out = stats;
    return k;
}

TEST(Allocator, ProducerConsumerGoesToOrf)
{
    AllocStats stats;
    Kernel k = allocate(R"(.kernel pc
entry:
    iadd R1, R0, #1
    iadd R2, R1, #2
    st.shared [R0], R2
    exit
)", {}, &stats);
    const Instruction &def = k.instr(0);
    EXPECT_TRUE(def.writeAnno.toORF);
    EXPECT_FALSE(def.writeAnno.toMRF) << "dead after use: MRF elided";
    const Instruction &use = k.instr(1);
    EXPECT_EQ(use.readAnno[0].level, Level::ORF);
    EXPECT_EQ(use.readAnno[0].entry, def.writeAnno.orfEntry);
    EXPECT_GE(stats.orfValuesFull, 2);
    EXPECT_GE(stats.mrfWritesElided, 2);
}

TEST(Allocator, LiveOutValueWritesBothLevels)
{
    Kernel k = allocate(R"(.kernel lo
entry:
    iadd R1, R0, #1
    iadd R2, R1, #2
    ld.global R3, [R0]
    iadd R4, R3, R1
    st.shared [R0], R4
    st.shared [R0], R2
    exit
)");
    // R1 is read in strand 1 (lin 1) and in strand 2 (lin 3): it must
    // be written to the MRF as well as any upper level.
    const Instruction &def = k.instr(0);
    EXPECT_TRUE(def.writeAnno.toMRF);
    // Its strand-2 read must come from the MRF (or a deposit).
    const Instruction &use2 = k.instr(3);
    EXPECT_EQ(use2.readAnno[1].level, Level::MRF);
}

TEST(Allocator, LongLatencyResultNeverInUpperLevels)
{
    Kernel k = allocate(R"(.kernel ll
entry:
    ld.global R1, [R0]
    iadd R2, R1, #1
    st.shared [R0], R2
    exit
)");
    const Instruction &ld = k.instr(0);
    EXPECT_FALSE(ld.writeAnno.toORF);
    EXPECT_FALSE(ld.writeAnno.toLRF);
    EXPECT_TRUE(ld.writeAnno.toMRF);
    EXPECT_EQ(k.instr(1).readAnno[0].level, Level::MRF);
}

TEST(Allocator, ValuesNeverCrossStrands)
{
    Kernel k = allocate(R"(.kernel cross
entry:
    iadd R1, R0, #1
    ld.global R2, [R0]
    iadd R3, R2, R1
    st.shared [R0], R3
    exit
)");
    // R1's only read is in the next strand: no upper-level write can
    // serve it, but the allocator may still use the ORF to elide
    // nothing — the read itself must be MRF or a deposit.
    const Instruction &use = k.instr(2);
    EXPECT_EQ(use.readAnno[1].level, Level::MRF);
    EXPECT_TRUE(k.instr(0).writeAnno.toMRF);
}

TEST(Allocator, ReadOperandAllocation)
{
    AllocStats stats;
    Kernel k = allocate(R"(.kernel ro
entry:
    iadd R1, R0, #1
    iadd R2, R0, #2
    iadd R3, R0, #3
    iadd R4, R0, #4
    st.shared [R1], R2
    st.shared [R3], R4
    exit
)", {}, &stats);
    // R0 is live-in and read four times: first read deposits, later
    // reads hit the ORF.
    EXPECT_GE(stats.orfReadsFull + stats.orfReadsPartial, 1);
    const Instruction &first = k.instr(0);
    EXPECT_EQ(first.readAnno[0].level, Level::MRF);
    EXPECT_TRUE(first.readAnno[0].depositToORF);
    const Instruction &later = k.instr(1);
    EXPECT_EQ(later.readAnno[0].level, Level::ORF);
    EXPECT_EQ(later.readAnno[0].entry, first.readAnno[0].entry);
}

TEST(Allocator, ReadOperandsDisabled)
{
    AllocOptions opts;
    opts.readOperands = false;
    AllocStats stats;
    Kernel k = allocate(R"(.kernel ro
entry:
    iadd R1, R0, #1
    iadd R2, R0, #2
    iadd R3, R0, #3
    st.shared [R1], R2
    exit
)", opts, &stats);
    EXPECT_EQ(stats.orfReadsFull + stats.orfReadsPartial, 0);
    for (int lin = 0; lin < 3; lin++)
        EXPECT_EQ(k.instr(lin).readAnno[0].level, Level::MRF);
}

TEST(Allocator, PartialRangeUnderPressure)
{
    // With a single ORF entry, competing values force partial ranges:
    // R1 is read early (ORF-worthy) and late (MRF).
    AllocOptions opts;
    opts.orfEntries = 1;
    opts.readOperands = false;
    AllocStats stats;
    Kernel k = allocate(R"(.kernel pr
entry:
    iadd R1, R0, #1
    iadd R2, R1, #2
    iadd R3, R2, #3
    iadd R4, R3, #4
    iadd R5, R4, R1
    st.shared [R0], R5
    exit
)", opts, &stats);
    EXPECT_GE(stats.orfValuesPartial, 1);
    // R1's late read (lin 4, slot 1) must be MRF.
    EXPECT_EQ(k.instr(4).readAnno[1].level, Level::MRF);
    // And R1 must reach the MRF for it.
    EXPECT_TRUE(k.instr(0).writeAnno.toMRF);
    // Its early read may still be served by the ORF.
    if (k.instr(0).writeAnno.toORF) {
        EXPECT_EQ(k.instr(1).readAnno[0].level, Level::ORF);
    }
}

TEST(Allocator, PartialRangesDisabled)
{
    AllocOptions opts;
    opts.orfEntries = 1;
    opts.readOperands = false;
    opts.partialRanges = false;
    AllocStats stats;
    allocate(R"(.kernel pr
entry:
    iadd R1, R0, #1
    iadd R2, R1, #2
    iadd R3, R2, #3
    iadd R4, R3, #4
    iadd R5, R4, R1
    st.shared [R0], R5
    exit
)", opts, &stats);
    EXPECT_EQ(stats.orfValuesPartial, 0);
    EXPECT_EQ(stats.orfReadsPartial, 0);
}

TEST(Allocator, ThreeLevelUsesLrfForNextInstructionValues)
{
    AllocOptions opts;
    opts.useLRF = true;
    AllocStats stats;
    Kernel k = allocate(R"(.kernel lrf
entry:
    iadd R1, R0, #1
    iadd R2, R1, #2
    iadd R3, R2, #3
    st.shared [R0], R3
    exit
)", opts, &stats);
    EXPECT_GE(stats.lrfValues, 1);
    // At least one def->next-instruction value sits in the LRF.
    bool lrf_read = false;
    for (int lin = 0; lin < k.numInstrs(); lin++)
        for (int s = 0; s < kMaxSrcs; s++)
            lrf_read |= k.instr(lin).readAnno[s].level == Level::LRF;
    EXPECT_TRUE(lrf_read);
    // No value is written to both LRF and ORF (Section 4.6).
    for (int lin = 0; lin < k.numInstrs(); lin++)
        EXPECT_FALSE(k.instr(lin).writeAnno.toLRF &&
                     k.instr(lin).writeAnno.toORF);
}

TEST(Allocator, SharedConsumedValuesAvoidLrf)
{
    AllocOptions opts;
    opts.useLRF = true;
    Kernel k = allocate(R"(.kernel sc
entry:
    iadd R1, R0, #1
    sin R2, R1
    fadd R3, R2, #3
    st.shared [R0], R3
    exit
)", opts);
    // R1 feeds the SFU, R3 feeds a store: neither may live in the LRF.
    EXPECT_FALSE(k.instr(0).writeAnno.toLRF);
    EXPECT_FALSE(k.instr(2).writeAnno.toLRF);
}

TEST(Allocator, SplitLrfAssignsBankBySlot)
{
    AllocOptions opts;
    opts.useLRF = true;
    opts.splitLRF = true;
    Kernel k = allocate(R"(.kernel split
entry:
    iadd R1, R0, #1
    xor  R2, R0, #2
    imax R3, R1, R2
    st.shared [R0], R3
    exit
)", opts);
    // R1 read in slot 0 and R2 in slot 1 of the imax: both fit in the
    // split LRF simultaneously, in different banks.
    const Instruction &use = k.instr(2);
    if (k.instr(0).writeAnno.toLRF && k.instr(1).writeAnno.toLRF) {
        EXPECT_EQ(use.readAnno[0].level, Level::LRF);
        EXPECT_EQ(use.readAnno[1].level, Level::LRF);
        EXPECT_NE(use.readAnno[0].lrfBank, use.readAnno[1].lrfBank);
    } else {
        ADD_FAILURE() << "pair not captured by the split LRF";
    }
}

TEST(Allocator, UnifiedLrfCannotHoldBoth)
{
    AllocOptions opts;
    opts.useLRF = true;
    opts.splitLRF = false;
    Kernel k = allocate(R"(.kernel uni
entry:
    iadd R1, R0, #1
    xor  R2, R0, #2
    imax R3, R1, R2
    st.shared [R0], R3
    exit
)", opts);
    int lrf_writes = 0;
    for (int lin = 0; lin < k.numInstrs(); lin++)
        lrf_writes += k.instr(lin).writeAnno.toLRF ? 1 : 0;
    EXPECT_LE(lrf_writes, 1) << "one entry cannot hold both values";
}

TEST(Allocator, WideValueGetsAdjacentEntries)
{
    AllocOptions opts;
    opts.orfEntries = 3;
    Kernel k = allocate(R"(.kernel wide
entry:
    imul.wide R2, R0, #8
    iadd R4, R2, R3
    st.shared [R0], R4
    exit
)", opts);
    const Instruction &def = k.instr(0);
    ASSERT_TRUE(def.writeAnno.toORF);
    const Instruction &use = k.instr(1);
    EXPECT_EQ(use.readAnno[0].level, Level::ORF);
    EXPECT_EQ(use.readAnno[0].entry, def.writeAnno.orfEntry);
    EXPECT_EQ(use.readAnno[1].level, Level::ORF);
    EXPECT_EQ(use.readAnno[1].entry, def.writeAnno.orfEntry + 1);
}

TEST(Allocator, WideValueNeedsTwoFreeEntries)
{
    AllocOptions opts;
    opts.orfEntries = 1;
    Kernel k = allocate(R"(.kernel wide1
entry:
    imul.wide R2, R0, #8
    iadd R4, R2, R3
    st.shared [R0], R4
    exit
)", opts);
    EXPECT_FALSE(k.instr(0).writeAnno.toORF)
        << "a 1-entry ORF cannot hold a 64-bit value";
}

TEST(Allocator, HammockSharesOneEntry)
{
    Kernel k = allocate(R"(.kernel f10c
bb6:
    setlt R2, R0, #4
    @R2 bra bb8
bb7:
    iadd R1, R0, #7
    bra bb9
bb8:
    iadd R1, R0, #8
bb9:
    iadd R3, R1, #1
    st.shared [R0], R3
    exit
)");
    const Instruction &d1 = k.instr(2);
    const Instruction &d2 = k.instr(4);
    ASSERT_TRUE(d1.writeAnno.toORF);
    ASSERT_TRUE(d2.writeAnno.toORF);
    EXPECT_EQ(d1.writeAnno.orfEntry, d2.writeAnno.orfEntry);
    EXPECT_FALSE(d1.writeAnno.toMRF);
    EXPECT_FALSE(d2.writeAnno.toMRF);
    EXPECT_EQ(k.instr(5).readAnno[0].level, Level::ORF);
}

TEST(Allocator, SharedProducersInLrfVariant)
{
    // With the non-Figure-4 write path, a load result consumed by the
    // next ALU instruction may live in the LRF.
    const char *text = R"(.kernel spv
entry:
    ld.shared R1, [R0]
    iadd R2, R1, #1
    st.shared [R0], R2
    exit
)";
    AllocOptions strict;
    strict.useLRF = true;
    Kernel ks = allocate(text, strict);
    EXPECT_FALSE(ks.instr(0).writeAnno.toLRF)
        << "Figure 4: loads cannot write the LRF";

    AllocOptions open = strict;
    open.lrfAllowSharedProducers = true;
    Kernel ko = allocate(text, open);
    EXPECT_TRUE(ko.instr(0).writeAnno.toLRF);
    EXPECT_EQ(ko.instr(1).readAnno[0].level, Level::LRF);
}

TEST(Allocator, EntriesNeverExceedConfig)
{
    for (int entries = 1; entries <= 4; entries++) {
        AllocOptions opts;
        opts.orfEntries = entries;
        opts.useLRF = true;
        opts.splitLRF = true;
        Kernel k = allocate(R"(.kernel many
entry:
    iadd R1, R0, #1
    iadd R2, R0, #2
    iadd R3, R0, #3
    iadd R4, R1, R2
    iadd R5, R3, R4
    iadd R6, R5, R1
    st.shared [R0], R6
    exit
)", opts);
        for (int lin = 0; lin < k.numInstrs(); lin++) {
            const Instruction &in = k.instr(lin);
            if (in.writeAnno.toORF) {
                EXPECT_LT(in.writeAnno.orfEntry, entries);
            }
            for (int s = 0; s < kMaxSrcs; s++) {
                if (in.readAnno[s].level == Level::ORF) {
                    EXPECT_LT(in.readAnno[s].entry, entries);
                }
            }
        }
    }
}

TEST(Allocator, DeadValueSkipsMrf)
{
    AllocStats stats;
    Kernel k = allocate(R"(.kernel dead
entry:
    iadd R1, R0, #1
    st.shared [R0], R0
    exit
)", {}, &stats);
    // The dead value is cheapest in the ORF (no MRF write at all).
    EXPECT_TRUE(k.instr(0).writeAnno.toORF);
    EXPECT_FALSE(k.instr(0).writeAnno.toMRF);
}

TEST(Allocator, PredicateReadCanUseOrf)
{
    Kernel k = allocate(R"(.kernel pred
entry:
    setgt R1, R0, #4
    @R1 bra out
body:
    st.shared [R0], R0
out:
    exit
)");
    const Instruction &br = k.instr(1);
    EXPECT_EQ(br.predAnno.level, Level::ORF);
}

TEST(Allocator, StatsAreConsistent)
{
    AllocStats stats;
    allocate(R"(.kernel st
entry:
    iadd R1, R0, #1
    iadd R2, R1, #2
    ld.global R3, [R0]
    iadd R4, R3, R2
    st.shared [R0], R4
    exit
)", {}, &stats);
    EXPECT_EQ(stats.strands, 2);
    EXPECT_EQ(static_cast<int>(stats.strandSavings.size()),
              stats.strands);
    EXPECT_GT(stats.predictedSavingsPJ, 0.0);
    double sum = 0;
    for (double s : stats.strandSavings)
        sum += s;
    EXPECT_NEAR(sum, stats.predictedSavingsPJ, 1e-9);
}

} // namespace
} // namespace rfh
