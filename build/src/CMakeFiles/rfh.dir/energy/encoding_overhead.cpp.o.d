src/CMakeFiles/rfh.dir/energy/encoding_overhead.cpp.o: \
 /root/repo/src/energy/encoding_overhead.cpp /usr/include/stdc-predef.h \
 /root/repo/src/energy/encoding_overhead.h
