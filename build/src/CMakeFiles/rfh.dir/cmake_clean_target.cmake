file(REMOVE_RECURSE
  "librfh.a"
)
