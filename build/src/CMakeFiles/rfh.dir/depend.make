# Empty dependencies file for rfh.
# This may be replaced when dependencies are built.
