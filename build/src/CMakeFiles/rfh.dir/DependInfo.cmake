
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/allocation.cpp" "src/CMakeFiles/rfh.dir/compiler/allocation.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/compiler/allocation.cpp.o.d"
  "/root/repo/src/compiler/allocator.cpp" "src/CMakeFiles/rfh.dir/compiler/allocator.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/compiler/allocator.cpp.o.d"
  "/root/repo/src/compiler/instances.cpp" "src/CMakeFiles/rfh.dir/compiler/instances.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/compiler/instances.cpp.o.d"
  "/root/repo/src/compiler/limit_study.cpp" "src/CMakeFiles/rfh.dir/compiler/limit_study.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/compiler/limit_study.cpp.o.d"
  "/root/repo/src/compiler/regalloc.cpp" "src/CMakeFiles/rfh.dir/compiler/regalloc.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/compiler/regalloc.cpp.o.d"
  "/root/repo/src/compiler/scheduler.cpp" "src/CMakeFiles/rfh.dir/compiler/scheduler.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/compiler/scheduler.cpp.o.d"
  "/root/repo/src/compiler/strand.cpp" "src/CMakeFiles/rfh.dir/compiler/strand.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/compiler/strand.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/rfh.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/json.cpp" "src/CMakeFiles/rfh.dir/core/json.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/core/json.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/rfh.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/core/report.cpp.o.d"
  "/root/repo/src/core/sweep.cpp" "src/CMakeFiles/rfh.dir/core/sweep.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/core/sweep.cpp.o.d"
  "/root/repo/src/energy/encoding_overhead.cpp" "src/CMakeFiles/rfh.dir/energy/encoding_overhead.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/energy/encoding_overhead.cpp.o.d"
  "/root/repo/src/energy/energy_model.cpp" "src/CMakeFiles/rfh.dir/energy/energy_model.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/energy/energy_model.cpp.o.d"
  "/root/repo/src/energy/energy_params.cpp" "src/CMakeFiles/rfh.dir/energy/energy_params.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/energy/energy_params.cpp.o.d"
  "/root/repo/src/ir/cfg_analysis.cpp" "src/CMakeFiles/rfh.dir/ir/cfg_analysis.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/ir/cfg_analysis.cpp.o.d"
  "/root/repo/src/ir/instruction.cpp" "src/CMakeFiles/rfh.dir/ir/instruction.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/ir/instruction.cpp.o.d"
  "/root/repo/src/ir/kernel.cpp" "src/CMakeFiles/rfh.dir/ir/kernel.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/ir/kernel.cpp.o.d"
  "/root/repo/src/ir/liveness.cpp" "src/CMakeFiles/rfh.dir/ir/liveness.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/ir/liveness.cpp.o.d"
  "/root/repo/src/ir/opcode.cpp" "src/CMakeFiles/rfh.dir/ir/opcode.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/ir/opcode.cpp.o.d"
  "/root/repo/src/ir/parser.cpp" "src/CMakeFiles/rfh.dir/ir/parser.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/ir/parser.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/CMakeFiles/rfh.dir/ir/printer.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/ir/printer.cpp.o.d"
  "/root/repo/src/ir/reaching_defs.cpp" "src/CMakeFiles/rfh.dir/ir/reaching_defs.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/ir/reaching_defs.cpp.o.d"
  "/root/repo/src/sim/access_counters.cpp" "src/CMakeFiles/rfh.dir/sim/access_counters.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/sim/access_counters.cpp.o.d"
  "/root/repo/src/sim/baseline_exec.cpp" "src/CMakeFiles/rfh.dir/sim/baseline_exec.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/sim/baseline_exec.cpp.o.d"
  "/root/repo/src/sim/hw_cache.cpp" "src/CMakeFiles/rfh.dir/sim/hw_cache.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/sim/hw_cache.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/CMakeFiles/rfh.dir/sim/machine.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/sim/machine.cpp.o.d"
  "/root/repo/src/sim/mrf_banks.cpp" "src/CMakeFiles/rfh.dir/sim/mrf_banks.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/sim/mrf_banks.cpp.o.d"
  "/root/repo/src/sim/perf_sim.cpp" "src/CMakeFiles/rfh.dir/sim/perf_sim.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/sim/perf_sim.cpp.o.d"
  "/root/repo/src/sim/simt.cpp" "src/CMakeFiles/rfh.dir/sim/simt.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/sim/simt.cpp.o.d"
  "/root/repo/src/sim/sw_exec.cpp" "src/CMakeFiles/rfh.dir/sim/sw_exec.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/sim/sw_exec.cpp.o.d"
  "/root/repo/src/sim/sw_exec_simt.cpp" "src/CMakeFiles/rfh.dir/sim/sw_exec_simt.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/sim/sw_exec_simt.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/rfh.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/sim/trace.cpp.o.d"
  "/root/repo/src/workloads/handwritten.cpp" "src/CMakeFiles/rfh.dir/workloads/handwritten.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/workloads/handwritten.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/CMakeFiles/rfh.dir/workloads/registry.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/workloads/registry.cpp.o.d"
  "/root/repo/src/workloads/synthetic.cpp" "src/CMakeFiles/rfh.dir/workloads/synthetic.cpp.o" "gcc" "src/CMakeFiles/rfh.dir/workloads/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
