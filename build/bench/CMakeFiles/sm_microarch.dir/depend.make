# Empty dependencies file for sm_microarch.
# This may be replaced when dependencies are built.
