file(REMOVE_RECURSE
  "CMakeFiles/sm_microarch.dir/sm_microarch.cpp.o"
  "CMakeFiles/sm_microarch.dir/sm_microarch.cpp.o.d"
  "sm_microarch"
  "sm_microarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_microarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
