# Empty compiler generated dependencies file for sec7_scheduling.
# This may be replaced when dependencies are built.
