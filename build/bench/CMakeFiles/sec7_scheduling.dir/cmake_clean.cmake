file(REMOVE_RECURSE
  "CMakeFiles/sec7_scheduling.dir/sec7_scheduling.cpp.o"
  "CMakeFiles/sec7_scheduling.dir/sec7_scheduling.cpp.o.d"
  "sec7_scheduling"
  "sec7_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec7_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
