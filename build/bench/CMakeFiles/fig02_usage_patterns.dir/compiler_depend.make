# Empty compiler generated dependencies file for fig02_usage_patterns.
# This may be replaced when dependencies are built.
