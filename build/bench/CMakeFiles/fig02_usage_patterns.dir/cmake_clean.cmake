file(REMOVE_RECURSE
  "CMakeFiles/fig02_usage_patterns.dir/fig02_usage_patterns.cpp.o"
  "CMakeFiles/fig02_usage_patterns.dir/fig02_usage_patterns.cpp.o.d"
  "fig02_usage_patterns"
  "fig02_usage_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_usage_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
