file(REMOVE_RECURSE
  "CMakeFiles/sec65_encoding.dir/sec65_encoding.cpp.o"
  "CMakeFiles/sec65_encoding.dir/sec65_encoding.cpp.o.d"
  "sec65_encoding"
  "sec65_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec65_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
