# Empty compiler generated dependencies file for sec65_encoding.
# This may be replaced when dependencies are built.
