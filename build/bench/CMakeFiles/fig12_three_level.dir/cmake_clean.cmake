file(REMOVE_RECURSE
  "CMakeFiles/fig12_three_level.dir/fig12_three_level.cpp.o"
  "CMakeFiles/fig12_three_level.dir/fig12_three_level.cpp.o.d"
  "fig12_three_level"
  "fig12_three_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_three_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
