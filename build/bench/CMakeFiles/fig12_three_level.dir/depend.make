# Empty dependencies file for fig12_three_level.
# This may be replaced when dependencies are built.
