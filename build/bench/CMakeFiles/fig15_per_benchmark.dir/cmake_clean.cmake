file(REMOVE_RECURSE
  "CMakeFiles/fig15_per_benchmark.dir/fig15_per_benchmark.cpp.o"
  "CMakeFiles/fig15_per_benchmark.dir/fig15_per_benchmark.cpp.o.d"
  "fig15_per_benchmark"
  "fig15_per_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_per_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
