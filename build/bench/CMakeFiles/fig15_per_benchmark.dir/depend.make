# Empty dependencies file for fig15_per_benchmark.
# This may be replaced when dependencies are built.
