file(REMOVE_RECURSE
  "CMakeFiles/fig11_two_level.dir/fig11_two_level.cpp.o"
  "CMakeFiles/fig11_two_level.dir/fig11_two_level.cpp.o.d"
  "fig11_two_level"
  "fig11_two_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_two_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
