# Empty dependencies file for fig11_two_level.
# This may be replaced when dependencies are built.
