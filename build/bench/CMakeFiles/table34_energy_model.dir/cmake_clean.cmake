file(REMOVE_RECURSE
  "CMakeFiles/table34_energy_model.dir/table34_energy_model.cpp.o"
  "CMakeFiles/table34_energy_model.dir/table34_energy_model.cpp.o.d"
  "table34_energy_model"
  "table34_energy_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table34_energy_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
