# Empty compiler generated dependencies file for table34_energy_model.
# This may be replaced when dependencies are built.
