file(REMOVE_RECURSE
  "CMakeFiles/scheduler_perf.dir/scheduler_perf.cpp.o"
  "CMakeFiles/scheduler_perf.dir/scheduler_perf.cpp.o.d"
  "scheduler_perf"
  "scheduler_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
