# Empty dependencies file for scheduler_perf.
# This may be replaced when dependencies are built.
