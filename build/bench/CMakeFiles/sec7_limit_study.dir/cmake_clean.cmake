file(REMOVE_RECURSE
  "CMakeFiles/sec7_limit_study.dir/sec7_limit_study.cpp.o"
  "CMakeFiles/sec7_limit_study.dir/sec7_limit_study.cpp.o.d"
  "sec7_limit_study"
  "sec7_limit_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec7_limit_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
