# Empty dependencies file for sec7_limit_study.
# This may be replaced when dependencies are built.
