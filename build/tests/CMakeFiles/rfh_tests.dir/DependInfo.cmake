
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_allocation.cpp" "tests/CMakeFiles/rfh_tests.dir/test_allocation.cpp.o" "gcc" "tests/CMakeFiles/rfh_tests.dir/test_allocation.cpp.o.d"
  "/root/repo/tests/test_allocator.cpp" "tests/CMakeFiles/rfh_tests.dir/test_allocator.cpp.o" "gcc" "tests/CMakeFiles/rfh_tests.dir/test_allocator.cpp.o.d"
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/rfh_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/rfh_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/rfh_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/rfh_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_energy.cpp" "tests/CMakeFiles/rfh_tests.dir/test_energy.cpp.o" "gcc" "tests/CMakeFiles/rfh_tests.dir/test_energy.cpp.o.d"
  "/root/repo/tests/test_hw_cache.cpp" "tests/CMakeFiles/rfh_tests.dir/test_hw_cache.cpp.o" "gcc" "tests/CMakeFiles/rfh_tests.dir/test_hw_cache.cpp.o.d"
  "/root/repo/tests/test_instances.cpp" "tests/CMakeFiles/rfh_tests.dir/test_instances.cpp.o" "gcc" "tests/CMakeFiles/rfh_tests.dir/test_instances.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/rfh_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/rfh_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_ir.cpp" "tests/CMakeFiles/rfh_tests.dir/test_ir.cpp.o" "gcc" "tests/CMakeFiles/rfh_tests.dir/test_ir.cpp.o.d"
  "/root/repo/tests/test_json.cpp" "tests/CMakeFiles/rfh_tests.dir/test_json.cpp.o" "gcc" "tests/CMakeFiles/rfh_tests.dir/test_json.cpp.o.d"
  "/root/repo/tests/test_machine.cpp" "tests/CMakeFiles/rfh_tests.dir/test_machine.cpp.o" "gcc" "tests/CMakeFiles/rfh_tests.dir/test_machine.cpp.o.d"
  "/root/repo/tests/test_mrf_banks.cpp" "tests/CMakeFiles/rfh_tests.dir/test_mrf_banks.cpp.o" "gcc" "tests/CMakeFiles/rfh_tests.dir/test_mrf_banks.cpp.o.d"
  "/root/repo/tests/test_perf_sim.cpp" "tests/CMakeFiles/rfh_tests.dir/test_perf_sim.cpp.o" "gcc" "tests/CMakeFiles/rfh_tests.dir/test_perf_sim.cpp.o.d"
  "/root/repo/tests/test_predication.cpp" "tests/CMakeFiles/rfh_tests.dir/test_predication.cpp.o" "gcc" "tests/CMakeFiles/rfh_tests.dir/test_predication.cpp.o.d"
  "/root/repo/tests/test_property.cpp" "tests/CMakeFiles/rfh_tests.dir/test_property.cpp.o" "gcc" "tests/CMakeFiles/rfh_tests.dir/test_property.cpp.o.d"
  "/root/repo/tests/test_regalloc.cpp" "tests/CMakeFiles/rfh_tests.dir/test_regalloc.cpp.o" "gcc" "tests/CMakeFiles/rfh_tests.dir/test_regalloc.cpp.o.d"
  "/root/repo/tests/test_scheduler.cpp" "tests/CMakeFiles/rfh_tests.dir/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/rfh_tests.dir/test_scheduler.cpp.o.d"
  "/root/repo/tests/test_simt.cpp" "tests/CMakeFiles/rfh_tests.dir/test_simt.cpp.o" "gcc" "tests/CMakeFiles/rfh_tests.dir/test_simt.cpp.o.d"
  "/root/repo/tests/test_strand.cpp" "tests/CMakeFiles/rfh_tests.dir/test_strand.cpp.o" "gcc" "tests/CMakeFiles/rfh_tests.dir/test_strand.cpp.o.d"
  "/root/repo/tests/test_sw_exec.cpp" "tests/CMakeFiles/rfh_tests.dir/test_sw_exec.cpp.o" "gcc" "tests/CMakeFiles/rfh_tests.dir/test_sw_exec.cpp.o.d"
  "/root/repo/tests/test_sw_exec_simt.cpp" "tests/CMakeFiles/rfh_tests.dir/test_sw_exec_simt.cpp.o" "gcc" "tests/CMakeFiles/rfh_tests.dir/test_sw_exec_simt.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/rfh_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/rfh_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/rfh_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/rfh_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rfh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
