# Empty dependencies file for rfh_tests.
# This may be replaced when dependencies are built.
