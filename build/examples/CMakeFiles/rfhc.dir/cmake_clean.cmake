file(REMOVE_RECURSE
  "CMakeFiles/rfhc.dir/rfhc.cpp.o"
  "CMakeFiles/rfhc.dir/rfhc.cpp.o.d"
  "rfhc"
  "rfhc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfhc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
