# Empty compiler generated dependencies file for rfhc.
# This may be replaced when dependencies are built.
