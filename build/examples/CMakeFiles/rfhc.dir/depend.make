# Empty dependencies file for rfhc.
# This may be replaced when dependencies are built.
