# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(rfhc_annotate "/root/repo/build/examples/rfhc" "annotate" "/root/repo/examples/kernels/saxpy.rptx")
set_tests_properties(rfhc_annotate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(rfhc_run "/root/repo/build/examples/rfhc" "run" "/root/repo/examples/kernels/blend.rptx" "--entries" "2" "--warps" "4")
set_tests_properties(rfhc_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(rfhc_stats "/root/repo/build/examples/rfhc" "stats" "/root/repo/examples/kernels/saxpy.rptx")
set_tests_properties(rfhc_stats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(rfhc_pipeline "/root/repo/build/examples/rfhc" "run" "/root/repo/examples/kernels/saxpy.rptx" "--schedule" "--regalloc" "12" "--no-lrf" "--entries" "4")
set_tests_properties(rfhc_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(rfhc_rejects_bad_usage "/root/repo/build/examples/rfhc" "bogus")
set_tests_properties(rfhc_rejects_bad_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(quickstart_runs "/root/repo/build/examples/quickstart")
set_tests_properties(quickstart_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(compare_schemes_runs "/root/repo/build/examples/compare_schemes" "needle")
set_tests_properties(compare_schemes_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
