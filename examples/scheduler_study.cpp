/**
 * @file
 * Two-level warp scheduler study on one benchmark.
 *
 * Usage:
 *   ./build/examples/scheduler_study [workload-name]
 *
 * Sweeps the active-set size of the two-level scheduler (Section 2.2)
 * and prints IPC, so the "no performance loss with 8 active warps"
 * tradeoff can be inspected per workload. A smaller active set means a
 * smaller ORF/LRF (only active warps hold entries), so this sweep is
 * the performance half of the hierarchy sizing decision.
 */

#include <cstdio>
#include <string>

#include "core/report.h"
#include "sim/perf_sim.h"
#include "workloads/registry.h"

int
main(int argc, char **argv)
{
    using namespace rfh;

    std::string name = argc > 1 ? argv[1] : "scalarprod";
    const Workload &w = workloadByName(name);
    std::printf("Two-level scheduler study: %s\n\n", w.name.c_str());

    PerfConfig base;
    PerfResult flat;
    TextTable t({"Active warps", "IPC", "vs flat", "Deschedules"});
    for (int a : {1, 2, 4, 6, 8, 12, 16, 24, 32}) {
        PerfConfig cfg = base;
        cfg.activeWarps = a;
        PerfResult r = runPerfSim(w.kernel, cfg);
        if (a == 32)
            flat = r;
        t.addRow({std::to_string(a), fmt(r.ipc(), 3), "",
                  std::to_string(r.deschedules)});
    }
    // Fill in the ratio column now that the flat result is known.
    TextTable t2({"Active warps", "IPC", "vs flat", "Deschedules"});
    for (int a : {1, 2, 4, 6, 8, 12, 16, 24, 32}) {
        PerfConfig cfg = base;
        cfg.activeWarps = a;
        PerfResult r = runPerfSim(w.kernel, cfg);
        t2.addRow({std::to_string(a), fmt(r.ipc(), 3),
                   pct(flat.ipc() > 0 ? r.ipc() / flat.ipc() : 0),
                   std::to_string(r.deschedules)});
    }
    std::printf("%s\n", t2.str().c_str());
    std::printf("32 resident warps; ALU %d cy, shared mem %d cy, "
                "DRAM %d cy (Table 2).\n", base.aluLatency,
                base.sharedMemLatency, base.dramLatency);
    return 0;
}
