/**
 * @file
 * Quickstart: compile a small kernel for the three-level register file
 * hierarchy and inspect what the allocator did.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "compiler/allocator.h"
#include "energy/energy_model.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "sim/sw_exec.h"

int
main()
{
    using namespace rfh;

    // An axpy-style kernel written in RPTX assembly. R0 is the thread
    // id, R63 the parameter base.
    const char *source = R"(.kernel axpy
entry:
    shl       R1, R0, #2
    ld.param  R2, [R63]
    iadd      R3, R2, R1
    mov       R4, #8
loop:
    ld.global R5, [R3]
    ld.global R6, [R3+4]
    fmul      R7, R5, #1069547520
    fadd      R8, R7, R6
    st.global [R3], R8
    iadd      R3, R3, #128
    isub      R4, R4, #1
    setgt     R9, R4, #0
    @R9 bra   loop
done:
    exit
)";

    ParseResult parsed = parseKernel(source);
    if (!parsed.ok) {
        std::fprintf(stderr, "parse error: %s\n", parsed.error.c_str());
        return 1;
    }
    Kernel kernel = std::move(parsed.kernel);

    // Configure a three-level hierarchy: 3-entry ORF + split LRF (the
    // paper's most efficient design) and run the allocator.
    AllocOptions opts;
    opts.orfEntries = 3;
    opts.useLRF = true;
    opts.splitLRF = true;
    HierarchyAllocator allocator(EnergyParams{}, opts);
    AllocStats stats = allocator.run(kernel);

    PrintOptions po;
    po.annotations = true;
    po.strands = true;
    std::printf("Annotated kernel (operand {level} tags, strand "
                "marks):\n\n%s\n", printKernel(kernel, po).c_str());

    std::printf("Allocation: %d strands, %d values (%d ORF, %d LRF, "
                "%d partial), %d read operands, %d MRF writes elided\n",
                stats.strands, stats.valueInstances,
                stats.orfValuesFull, stats.lrfValues,
                stats.orfValuesPartial,
                stats.orfReadsFull + stats.orfReadsPartial,
                stats.mrfWritesElided);

    // Execute through the hierarchy; the executor verifies every access
    // bit-exactly against a flat register file.
    SwExecResult result = runSwHierarchy(kernel, opts);
    if (!result.ok()) {
        std::fprintf(stderr, "verification failed: %s\n",
                     result.error.c_str());
        return 1;
    }

    EnergyModel em(EnergyParams{}, opts.orfEntries, opts.splitLRF);
    const AccessCounts &c = result.counts;
    std::printf("\nExecuted %llu instructions, %llu deschedules\n",
                static_cast<unsigned long long>(c.instructions),
                static_cast<unsigned long long>(c.deschedules));
    std::printf("Reads:  MRF %llu  ORF %llu  LRF %llu\n",
                static_cast<unsigned long long>(c.totalReads(Level::MRF)),
                static_cast<unsigned long long>(c.totalReads(Level::ORF)),
                static_cast<unsigned long long>(
                    c.totalReads(Level::LRF)));
    std::printf("Writes: MRF %llu  ORF %llu  LRF %llu\n",
                static_cast<unsigned long long>(
                    c.totalWrites(Level::MRF)),
                static_cast<unsigned long long>(
                    c.totalWrites(Level::ORF)),
                static_cast<unsigned long long>(
                    c.totalWrites(Level::LRF)));
    std::printf("Register file energy: %.1f pJ\n", c.totalEnergyPJ(em));
    return 0;
}
