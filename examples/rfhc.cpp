/**
 * @file
 * rfhc — command-line driver for the register file hierarchy compiler.
 *
 * Usage:
 *   rfhc annotate <file.rptx> [options]   print the allocated kernel
 *   rfhc run      <file.rptx> [options]   execute + report accesses
 *   rfhc stats    <file.rptx>             strand / usage statistics
 *
 * Options:
 *   --entries N        ORF entries per thread (default 3)
 *   --no-lrf           two-level hierarchy (ORF + MRF only)
 *   --unified-lrf      one LRF bank instead of one per operand slot
 *   --no-partial       disable partial-range allocation
 *   --no-readops       disable read-operand allocation
 *   --schedule         run the lifetime-shortening scheduler first
 *   --regalloc N       linear-scan onto N architectural registers
 *   --warps N          warps to execute (run; default 8)
 *
 * The tool lets users drive the full pipeline on their own RPTX
 * kernels without writing any C++.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "compiler/allocator.h"
#include "core/json.h"
#include "compiler/regalloc.h"
#include "compiler/scheduler.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "sim/baseline_exec.h"
#include "sim/sw_exec.h"

using namespace rfh;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: rfhc <annotate|run|stats> <file.rptx> "
                 "[--entries N] [--no-lrf]\n"
                 "            [--unified-lrf] [--no-partial] "
                 "[--no-readops] [--schedule]\n"
                 "            [--regalloc N] [--warps N]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    std::string cmd = argv[1];
    std::string path = argv[2];

    AllocOptions opts;
    opts.useLRF = true;
    opts.splitLRF = true;
    bool do_schedule = false;
    bool json = false;
    int regalloc_budget = 0;
    int warps = 8;
    for (int i = 3; i < argc; i++) {
        std::string a = argv[i];
        auto next_int = [&](int &out) {
            if (i + 1 >= argc)
                return false;
            out = std::atoi(argv[++i]);
            return out > 0;
        };
        if (a == "--entries") {
            if (!next_int(opts.orfEntries) ||
                opts.orfEntries > kMaxOrfEntries)
                return usage();
        } else if (a == "--no-lrf") {
            opts.useLRF = opts.splitLRF = false;
        } else if (a == "--unified-lrf") {
            opts.splitLRF = false;
        } else if (a == "--no-partial") {
            opts.partialRanges = false;
        } else if (a == "--no-readops") {
            opts.readOperands = false;
        } else if (a == "--schedule") {
            do_schedule = true;
        } else if (a == "--json") {
            json = true;
        } else if (a == "--regalloc") {
            if (!next_int(regalloc_budget))
                return usage();
        } else if (a == "--warps") {
            if (!next_int(warps))
                return usage();
        } else {
            return usage();
        }
    }

    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "rfhc: cannot open %s\n", path.c_str());
        return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    ParseResult parsed = parseKernel(text.str());
    if (!parsed.ok) {
        std::fprintf(stderr, "rfhc: %s: %s\n", path.c_str(),
                     parsed.error.c_str());
        return 1;
    }
    Kernel kernel = std::move(parsed.kernel);

    if (do_schedule) {
        ScheduleStats ss = scheduleKernel(kernel);
        std::fprintf(stderr,
                     "rfhc: scheduler moved %d instructions "
                     "(lifetime -%ld)\n",
                     ss.instructionsMoved, ss.lifetimeReduction);
    }
    if (regalloc_budget > 0) {
        RegAllocOptions ro;
        ro.numRegs = regalloc_budget;
        RegAllocStats rs = allocateRegisters(kernel, ro);
        std::fprintf(stderr,
                     "rfhc: regalloc used %d regs, spilled %d ranges "
                     "(%d loads, %d stores)\n",
                     rs.regsUsed, rs.spilledRanges, rs.spillLoads,
                     rs.spillStores);
    }

    if (cmd == "stats") {
        Cfg cfg(kernel);
        StrandAnalysis sa(kernel, cfg, opts.strandOptions);
        RunConfig rc;
        rc.numWarps = warps;
        UsageStats us = collectUsageStats(kernel, rc);
        std::printf("kernel %s: %d blocks, %d instructions, %d "
                    "registers\n",
                    kernel.name.c_str(),
                    static_cast<int>(kernel.blocks.size()),
                    kernel.numInstrs(), kernel.numRegs());
        std::printf("strands: %d\n", sa.numStrands());
        for (int s = 0; s < sa.numStrands(); s++) {
            const Strand &st = sa.strand(s);
            const char *why = "";
            switch (st.endReason) {
              case StrandEndReason::LONG_LATENCY:
                why = "long-latency dependence"; break;
              case StrandEndReason::BACKWARD_BRANCH:
                why = "backward branch"; break;
              case StrandEndReason::BACKWARD_TARGET:
                why = "backward-branch target"; break;
              case StrandEndReason::MERGE_UNCERTAIN:
                why = "uncertain merge"; break;
              case StrandEndReason::KERNEL_END:
                why = "kernel end"; break;
            }
            std::printf("  strand %d: lin [%d, %d]  ends: %s\n", s,
                        st.firstLin, st.lastLin, why);
        }
        std::printf("dynamic values: %llu (read0 %.1f%%, read1 %.1f%%, "
                    "read2 %.1f%%, more %.1f%%)\n",
                    static_cast<unsigned long long>(us.totalValues),
                    100 * us.fracRead(0), 100 * us.fracRead(1),
                    100 * us.fracRead(2), 100 * us.fracRead(3));
        return 0;
    }

    HierarchyAllocator alloc(EnergyParams{}, opts);
    AllocStats stats = alloc.run(kernel);

    if (cmd == "annotate") {
        PrintOptions po;
        po.annotations = true;
        po.strands = true;
        std::printf("%s", printKernel(kernel, po).c_str());
        std::fprintf(stderr,
                     "rfhc: %d strands; %d ORF values (%d partial), "
                     "%d LRF values, %d read operands, %d MRF writes "
                     "elided\n",
                     stats.strands, stats.orfValuesFull,
                     stats.orfValuesPartial, stats.lrfValues,
                     stats.orfReadsFull + stats.orfReadsPartial,
                     stats.mrfWritesElided);
        return 0;
    }

    if (cmd == "run") {
        SwExecConfig sc;
        sc.run.numWarps = warps;
        SwExecResult r = runSwHierarchy(kernel, opts, sc);
        if (!r.ok()) {
            std::fprintf(stderr, "rfhc: verification failed: %s\n",
                         r.error.c_str());
            return 1;
        }
        EnergyModel em(EnergyParams{}, opts.orfEntries, opts.splitLRF);
        AccessCounts base = runBaseline(kernel, sc.run);
        if (json) {
            RunOutcome o;
            o.counts = r.counts;
            o.energyPJ = r.counts.totalEnergyPJ(em);
            o.baselineEnergyPJ = base.totalEnergyPJ(em);
            std::printf("%s\n", outcomeToJson(o).c_str());
            return 0;
        }
        const AccessCounts &c = r.counts;
        std::printf("instructions: %llu   deschedules: %llu\n",
                    static_cast<unsigned long long>(c.instructions),
                    static_cast<unsigned long long>(c.deschedules));
        std::printf("reads:  MRF %llu  ORF %llu  LRF %llu\n",
                    static_cast<unsigned long long>(
                        c.totalReads(Level::MRF)),
                    static_cast<unsigned long long>(
                        c.totalReads(Level::ORF)),
                    static_cast<unsigned long long>(
                        c.totalReads(Level::LRF)));
        std::printf("writes: MRF %llu  ORF %llu  LRF %llu\n",
                    static_cast<unsigned long long>(
                        c.totalWrites(Level::MRF)),
                    static_cast<unsigned long long>(
                        c.totalWrites(Level::ORF)),
                    static_cast<unsigned long long>(
                        c.totalWrites(Level::LRF)));
        double e = c.totalEnergyPJ(em);
        double be = base.totalEnergyPJ(em);
        std::printf("energy: %.1f pJ (flat register file: %.1f pJ, "
                    "saved %.1f%%)\n", e, be, 100.0 * (1 - e / be));
        return 0;
    }

    return usage();
}
