/**
 * @file
 * rfhc — command-line driver for the register file hierarchy compiler.
 *
 * Usage:
 *   rfhc annotate <file.rptx> [options]     print the allocated kernel
 *   rfhc run      <file.rptx> [options]     execute + report accesses
 *   rfhc stats    <file.rptx>               strand / usage statistics
 *   rfhc bench-diff <old.json> <new.json>   compare two snapshots
 *   rfhc compare [options]                  cross-scheme leaderboard
 *   rfhc corpus [options]                   corpus-scale population sweep
 *   rfhc fuzz [options]                     differential fuzz campaign
 *   rfhc serve [options]                    batch compile/sim service
 *   rfhc loadgen [options]                  drive a running service
 *
 * Options (annotate / run / stats):
 *   --entries N        ORF entries per thread (default 3)
 *   --no-lrf           two-level hierarchy (ORF + MRF only)
 *   --unified-lrf      one LRF bank instead of one per operand slot
 *   --no-partial       disable partial-range allocation
 *   --no-readops       disable read-operand allocation
 *   --schedule         run the lifetime-shortening scheduler first
 *   --regalloc N       linear-scan onto N architectural registers
 *   --warps N          warps to execute (run; default 8)
 *   --scheme TOKEN     run any registered scheme by wire token (run;
 *                      default sw3, or sw2 under --no-lrf)
 *   --perf             also run the cycle-level SM pipeline: IPC,
 *                      stall breakdown, swaps, bank conflicts (run)
 *   --sched P          pipeline warp scheduler: flat, two-level (the
 *                      default), or gto (run, with --perf)
 *   --active N         two-level active-set size (run; default 8)
 *   --json             machine-readable outcome (run)
 *   --manifest F       write an rfh-manifest-v1 run manifest to F (run)
 *   --trace-events F   write chrome://tracing phase spans to F (run)
 *
 * Options (bench-diff):
 *   --threshold F      relative regression gate, e.g. 0.10 (default);
 *                      exits 1 when any benchmark regresses past it
 *
 * Options (compare):
 *   --entries N        entries for fixed (non-sweeping) schemes
 *   --perf             add per-scheme IPC / stall columns (one
 *                      pipeline pass per scheme at its best entries)
 *   --sched P          pipeline scheduler for --perf (default
 *                      two-level)
 *   --active N         two-level active-set size for --perf
 *   --json             print the leaderboard JSON instead of the table
 *   --out F            also write the leaderboard JSON to F
 *   --corpus N         also run an N-kernel scenario corpus and add a
 *                      population confidence-band column per row
 *
 * Options (corpus):
 *   --profiles P,...   scenario profiles, or "all" (default all); see
 *                      docs/corpus.md for the builtin populations
 *   --n N              total kernels across the resolved profiles,
 *                      split evenly (default 512)
 *   --schemes S,...    scheme wire tokens to aggregate (default:
 *                      every non-baseline registered scheme)
 *   --entries N,...    entries-per-thread points (default 1,2,3,4,6,8
 *                      for sweeping schemes, 3 for fixed ones)
 *   --seed S           corpus seed: same seed => same kernels and the
 *                      same aggregate bytes (default 1)
 *   --chunk N          kernels per replay batch slice (default 64)
 *   --warps N          override every profile's warp count
 *   --perf             also run the cycle-level pipeline; adds IPC
 *                      population stats per cell
 *   --sched P          pipeline scheduler for --perf
 *   --active N         two-level active-set size for --perf
 *   --resamples N      bootstrap resamples per band (default 200)
 *   --confidence F     band confidence level (default 0.95)
 *   --socket PATH      run via a serve/router fleet at PATH instead
 *                      of in-process (same aggregate bytes)
 *   --connections N    fleet client connections (default 4)
 *   --retries N        max retries of shed fleet requests (default 8)
 *   --json             print the rfh-corpus-v1 JSON instead of the
 *                      summary table
 *   --out F            also write the corpus JSON to F
 *
 * Options (fuzz):
 *   --iters N          kernels to generate and check (default 100)
 *   --seed S           campaign seed; same seed => same kernels,
 *                      same manifest scalars (default 1)
 *   --shrink           reduce the first failing kernel before writing
 *                      the .rptx repro artifact
 *   --inject           test-only fault injection: perturb one replay
 *                      leg so the oracle must report a discrepancy
 *   --dump DIR         write every generated kernel to DIR/<name>.rptx
 *   --out F            repro artifact path (default repro.rptx)
 *   --warps N          warps per oracle leg (default 4)
 *   --entries N        ORF/RFC entries per thread (default 3)
 *   --no-hw            skip the hardware-cache differential pairs
 *   --no-simt          skip the SIMT differential pairs
 *   --manifest F       write an rfh-manifest-v1 campaign manifest to F
 *
 * Options (serve):
 *   --socket PATH      listen on a Unix domain socket (default: stdio)
 *   --workers N        request workers (default: pool size)
 *   --queue N          admission queue capacity (default 64); full
 *                      queue sheds requests with `overloaded`
 *   --batch N          max requests a worker drains per wakeup into
 *                      one batched replay (default 8; 1 disables)
 *   --cache-max N      memo-cache entries before eviction (default 1024)
 *   --cache-dir D      persistent disk compile cache directory
 *   --cache-max-bytes N disk-cache size cap before LRU eviction
 *   --manifest F       write a session manifest on drain
 *   --trace-events F   record per-request chrome://tracing spans
 *
 * Options (router):
 *   --socket PATH      front socket (default rfhc-router.sock)
 *   --fleet N          worker processes (default 4)
 *   --cache-dir D      shared persistent disk cache for the fleet
 *   --cache-max-bytes N disk-cache size cap before LRU eviction
 *   --worker-threads N RFH_THREADS for each worker (default: inherit)
 *   --queue N          per-worker admission queue (default 64)
 *   --batch N          per-worker batch cap (default 8)
 *   --vnodes N         virtual ring nodes per worker (default 64)
 *   --max-restarts N   restart budget per worker (default 8)
 *   --manifest F       write a router session manifest on drain
 *
 * Options (loadgen):
 *   --socket PATH      server socket (default rfhc.sock)
 *   --clients N        concurrent connections (default 4)
 *   --requests N       total run requests (default 100)
 *   --workload W       pin one registry workload (default: mix)
 *   --scheme S         pin one scheme token (default: mix)
 *   --entries N        pin ORF entries (default: mix)
 *   --warps N          warps per request (default 8)
 *   --deadline MS      per-request deadline in milliseconds
 *   --retries N        max retries of shed requests (default 8)
 *   --verify           byte-compare every result vs local runScheme()
 *   --router           target is a router fleet: per-shard breakdown
 *                      and disk-cache hit ratio in the report
 *   --shutdown         send {"op":"shutdown"} when done
 *   --manifest F       write a loadgen manifest (throughput, p50/p99)
 *
 * The tool lets users drive the full pipeline on their own RPTX
 * kernels without writing any C++, and gates CI on performance
 * snapshots (see docs/observability.md).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "compiler/allocator.h"
#include "compiler/regalloc.h"
#include "compiler/scheduler.h"
#include "core/benchdiff.h"
#include "core/corpus.h"
#include "core/experiment.h"
#include "core/json.h"
#include "core/leaderboard.h"
#include "core/manifest.h"
#include "core/memo.h"
#include "core/metrics.h"
#include "core/timing.h"
#include "core/trace_events.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "service/corpus_client.h"
#include "service/loadgen.h"
#include "service/router.h"
#include "service/server.h"
#include "sim/baseline_exec.h"
#include "verify/oracle.h"
#include "verify/rptx_fuzz.h"
#include "verify/shrink.h"

using namespace rfh;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: rfhc <annotate|run|stats> <file.rptx> "
                 "[--entries N] [--no-lrf]\n"
                 "            [--unified-lrf] [--no-partial] "
                 "[--no-readops] [--schedule]\n"
                 "            [--regalloc N] [--warps N] "
                 "[--scheme TOKEN] [--json]\n"
                 "            [--perf] [--sched flat|two-level|gto] "
                 "[--active N]\n"
                 "            [--manifest out.json] "
                 "[--trace-events out.json]\n"
                 "       rfhc bench-diff <old.json> <new.json> "
                 "[--threshold F]\n"
                 "       rfhc compare [--entries N] [--perf] "
                 "[--sched P] [--active N]\n"
                 "            [--json] [--out F] [--corpus N]\n"
                 "       rfhc corpus [--profiles P,...] [--n N] "
                 "[--schemes S,...]\n"
                 "            [--entries N,...] [--seed S] [--chunk N] "
                 "[--warps N]\n"
                 "            [--perf] [--sched P] [--active N] "
                 "[--resamples N]\n"
                 "            [--confidence F] [--socket PATH] "
                 "[--connections N]\n"
                 "            [--retries N] [--json] [--out F]\n"
                 "       rfhc fuzz [--iters N] [--seed S] [--shrink] "
                 "[--inject]\n"
                 "            [--dump DIR] [--out repro.rptx] "
                 "[--warps N] [--entries N]\n"
                 "            [--no-hw] [--no-simt] "
                 "[--manifest out.json]\n"
                 "       rfhc serve [--socket PATH] [--workers N] "
                 "[--queue N] [--batch N]\n"
                 "            [--cache-max N] [--cache-dir DIR] "
                 "[--cache-max-bytes N]\n"
                 "            [--manifest out.json] "
                 "[--trace-events out.json]\n"
                 "       rfhc router [--socket PATH] [--fleet N] "
                 "[--cache-dir DIR]\n"
                 "            [--cache-max-bytes N] "
                 "[--worker-threads N] [--queue N]\n"
                 "            [--batch N] [--vnodes N] "
                 "[--max-restarts N] [--manifest out.json]\n"
                 "       rfhc loadgen [--socket PATH] [--clients N] "
                 "[--requests N]\n"
                 "            [--workload W] [--scheme S] [--entries N] "
                 "[--warps N]\n"
                 "            [--deadline MS] [--retries N] [--verify] "
                 "[--router] [--shutdown]\n"
                 "            [--manifest out.json]\n");
    return 2;
}

/** Load and parse one JSON snapshot; exits via return on failure. */
bool
loadSnapshot(const std::string &path, JsonValue &out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "rfhc: cannot open %s\n", path.c_str());
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    JsonParseResult parsed = parseJson(text.str());
    if (!parsed.ok) {
        std::fprintf(stderr, "rfhc: %s: %s\n", path.c_str(),
                     parsed.error.c_str());
        return false;
    }
    out = std::move(parsed.value);
    return true;
}

/**
 * `rfhc bench-diff old.json new.json [--threshold F]`: print a
 * per-benchmark delta table; exit 1 when any benchmark regresses
 * beyond the threshold, 0 otherwise.
 */
int
benchDiffMain(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    std::string old_path = argv[2];
    std::string new_path = argv[3];
    double threshold = 0.10;
    for (int i = 4; i < argc; i++) {
        std::string a = argv[i];
        if (a == "--threshold" && i + 1 < argc) {
            char *end = nullptr;
            threshold = std::strtod(argv[++i], &end);
            if (!end || *end != '\0' || threshold < 0)
                return usage();
        } else {
            return usage();
        }
    }

    JsonValue old_doc, new_doc;
    if (!loadSnapshot(old_path, old_doc) ||
        !loadSnapshot(new_path, new_doc))
        return 1;
    std::string err;
    std::vector<BenchEntry> olds = benchEntriesFromJson(old_doc, &err);
    if (olds.empty()) {
        std::fprintf(stderr, "rfhc: %s: %s\n", old_path.c_str(),
                     err.c_str());
        return 1;
    }
    std::vector<BenchEntry> news = benchEntriesFromJson(new_doc, &err);
    if (news.empty()) {
        std::fprintf(stderr, "rfhc: %s: %s\n", new_path.c_str(),
                     err.c_str());
        return 1;
    }

    BenchDiff diff = diffBenchmarks(olds, news, threshold);
    std::printf("%s", renderBenchDiff(diff, threshold).c_str());
    return diff.hasRegression() ? 1 : 0;
}

/**
 * `rfhc compare`: run every registered scheme over the full workload
 * suite and print the ranked cross-scheme leaderboard (sweeping the
 * entries axis for schemes that have one). The JSON document backs
 * the leaderboard section of EXPERIMENTS.md.
 */
int
compareMain(int argc, char **argv)
{
    ExperimentConfig base;
    bool json = false;
    int corpusKernels = 0;
    std::string out_path;
    for (int i = 2; i < argc; i++) {
        std::string a = argv[i];
        if (a == "--entries" && i + 1 < argc) {
            base.entries = std::atoi(argv[++i]);
            if (base.entries < 1 || base.entries > kMaxOrfEntries)
                return usage();
        } else if (a == "--json") {
            json = true;
        } else if (a == "--perf") {
            base.perf = true;
        } else if (a == "--sched" && i + 1 < argc) {
            if (!parseSchedPolicy(argv[++i], base.pipeline.policy))
                return usage();
        } else if (a == "--active" && i + 1 < argc) {
            base.pipeline.activeWarps = std::atoi(argv[++i]);
            if (base.pipeline.activeWarps < 1)
                return usage();
        } else if (a == "--corpus" && i + 1 < argc) {
            corpusKernels = std::atoi(argv[++i]);
            if (corpusKernels < 1)
                return usage();
        } else if (a == "--out" && i + 1 < argc) {
            out_path = argv[++i];
            if (out_path.empty())
                return usage();
        } else {
            return usage();
        }
    }

    Leaderboard lb = runLeaderboard(base);
    if (corpusKernels > 0) {
        CorpusConfig ccfg;
        std::size_t nProfiles = allProfiles().size();
        ccfg.kernelsPerProfile = static_cast<int>(
            (static_cast<std::size_t>(corpusKernels) + nProfiles - 1) /
            nProfiles);
        CorpusResult corpus;
        std::string err;
        if (!runCorpus(ccfg, corpus, nullptr, &err)) {
            std::fprintf(stderr, "rfhc compare: %s\n", err.c_str());
            return 2;
        }
        attachCorpusBands(lb, corpus);
    }
    std::string doc = leaderboardToJson(lb);
    if (json)
        std::printf("%s\n", doc.c_str());
    else
        std::printf("%s", renderLeaderboard(lb).c_str());
    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out) {
            std::fprintf(stderr, "rfhc: cannot write %s\n",
                         out_path.c_str());
            return 1;
        }
        out << doc << "\n";
        std::fprintf(stderr, "rfhc: wrote leaderboard %s\n",
                     out_path.c_str());
    }
    std::fprintf(stderr,
                 "rfhc compare: %d schemes in %.1fs (%.1fx speedup)\n",
                 static_cast<int>(lb.rows.size()), lb.timing.wallSec,
                 lb.timing.speedup());
    return 0;
}

/** Split @p s at commas into non-empty pieces. */
std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t comma = s.find(',', start);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > start)
            out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

/**
 * `rfhc corpus`: stream a population of generated kernels from the
 * named scenario profiles through the replay engine (or a service
 * fleet with --socket) and print streaming population statistics per
 * (profile, scheme, entries) cell. The rfh-corpus-v1 JSON document is
 * byte-identical across runs, thread counts, shard layouts, and the
 * local/fleet substrates.
 */
int
corpusMain(int argc, char **argv)
{
    CorpusConfig cfg;
    int totalKernels = 512;
    std::vector<std::string> schemeTokens;
    std::vector<int> entriesList;
    CorpusClientOptions client;
    bool remote = false;
    bool json = false;
    std::string out_path;
    for (int i = 2; i < argc; i++) {
        std::string a = argv[i];
        auto next_int = [&](int &out) {
            if (i + 1 >= argc)
                return false;
            out = std::atoi(argv[++i]);
            return out > 0;
        };
        auto next_str = [&](std::string &out) {
            if (i + 1 >= argc)
                return false;
            out = argv[++i];
            return !out.empty();
        };
        if (a == "--profiles") {
            std::string list;
            if (!next_str(list))
                return usage();
            cfg.profiles = splitList(list);
            if (cfg.profiles.empty())
                return usage();
        } else if (a == "--n") {
            if (!next_int(totalKernels))
                return usage();
        } else if (a == "--schemes") {
            std::string list;
            if (!next_str(list))
                return usage();
            schemeTokens = splitList(list);
            if (schemeTokens.empty())
                return usage();
        } else if (a == "--entries") {
            std::string list;
            if (!next_str(list))
                return usage();
            for (const std::string &piece : splitList(list)) {
                int e = std::atoi(piece.c_str());
                if (e < 1 || e > kMaxOrfEntries)
                    return usage();
                entriesList.push_back(e);
            }
            if (entriesList.empty())
                return usage();
        } else if (a == "--seed" && i + 1 < argc) {
            cfg.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (a == "--chunk") {
            if (!next_int(cfg.chunk))
                return usage();
        } else if (a == "--warps") {
            if (!next_int(cfg.warps))
                return usage();
        } else if (a == "--perf") {
            cfg.perf = true;
        } else if (a == "--sched" && i + 1 < argc) {
            if (!parseSchedPolicy(argv[++i], cfg.pipeline.policy))
                return usage();
        } else if (a == "--active" && i + 1 < argc) {
            cfg.pipeline.activeWarps = std::atoi(argv[++i]);
            if (cfg.pipeline.activeWarps < 1)
                return usage();
        } else if (a == "--resamples") {
            if (!next_int(cfg.bootstrapResamples))
                return usage();
        } else if (a == "--confidence" && i + 1 < argc) {
            cfg.confidence = std::strtod(argv[++i], nullptr);
            if (cfg.confidence <= 0.0 || cfg.confidence >= 1.0)
                return usage();
        } else if (a == "--socket") {
            if (!next_str(client.socketPath))
                return usage();
            remote = true;
        } else if (a == "--connections") {
            if (!next_int(client.connections))
                return usage();
        } else if (a == "--retries") {
            if (!next_int(client.maxRetries))
                return usage();
        } else if (a == "--json") {
            json = true;
        } else if (a == "--out") {
            if (!next_str(out_path))
                return usage();
        } else {
            return usage();
        }
    }

    // --n budgets the whole corpus; split it evenly across profiles.
    std::vector<ScenarioProfile> resolved;
    std::string err;
    if (!resolveProfiles(cfg.profiles, resolved, &err)) {
        std::fprintf(stderr, "rfhc corpus: %s\n", err.c_str());
        return 2;
    }
    cfg.kernelsPerProfile = static_cast<int>(
        (static_cast<std::size_t>(totalKernels) + resolved.size() - 1) /
        resolved.size());

    if (!schemeTokens.empty() || !entriesList.empty()) {
        const SchemeRegistry &reg = SchemeRegistry::instance();
        std::vector<const SchemeInfo *> schemes;
        if (schemeTokens.empty()) {
            for (const SchemeInfo *si : reg.schemes())
                if (si->scheme != Scheme::BASELINE)
                    schemes.push_back(si);
        } else {
            for (const std::string &token : schemeTokens) {
                const SchemeInfo *si = reg.findToken(token);
                if (!si) {
                    std::fprintf(stderr,
                                 "rfhc corpus: unknown scheme '%s' "
                                 "(valid: %s)\n",
                                 token.c_str(),
                                 reg.tokenList().c_str());
                    return 2;
                }
                schemes.push_back(si);
            }
        }
        static const int kDefaultEntries[] = {1, 2, 3, 4, 6, 8};
        for (const SchemeInfo *si : schemes) {
            if (!entriesList.empty()) {
                for (int e : entriesList)
                    cfg.cells.push_back({si->scheme, e});
            } else if (si->caps.sweepsEntries) {
                for (int e : kDefaultEntries)
                    cfg.cells.push_back({si->scheme, e});
            } else {
                cfg.cells.push_back({si->scheme, 3});
            }
        }
    }

    CorpusResult res;
    bool ok = remote ? runCorpusRemote(cfg, client, res, &err)
                     : runCorpus(cfg, res, nullptr, &err);
    if (!ok) {
        std::fprintf(stderr, "rfhc corpus: %s\n", err.c_str());
        return 2;
    }
    std::string doc = corpusToJson(res);
    if (json)
        std::printf("%s\n", doc.c_str());
    else
        std::printf("%s", renderCorpusSummary(res).c_str());
    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out) {
            std::fprintf(stderr, "rfhc: cannot write %s\n",
                         out_path.c_str());
            return 1;
        }
        out << doc << "\n";
        std::fprintf(stderr, "rfhc: wrote corpus %s\n",
                     out_path.c_str());
    }
    std::fprintf(stderr,
                 "rfhc corpus: %llu runs over %llu kernels "
                 "(%llu errors) in %.1fs%s\n",
                 static_cast<unsigned long long>(res.totalRuns),
                 static_cast<unsigned long long>([&] {
                     std::uint64_t k = 0;
                     for (const CorpusProfileStats &ps : res.profiles)
                         k += ps.kernels;
                     return k;
                 }()),
                 static_cast<unsigned long long>(res.totalErrors),
                 res.wallSec, remote ? " (fleet)" : "");
    return res.totalErrors > 0 ? 1 : 0;
}

/**
 * `rfhc fuzz`: a differential fuzz campaign. Generates seeded kernels
 * with the grammar fuzzer, runs every must-match scheme x engine pair
 * plus the allocation-invariant checker over each (src/verify/), and
 * exits 1 on the first finding, after optionally shrinking the
 * failing kernel to a minimal .rptx repro artifact.
 */
int
fuzzMain(int argc, char **argv)
{
    std::uint64_t seed = 1;
    int iters = 100;
    bool do_shrink = false;
    bool inject = false;
    std::string dump_dir;
    std::string out_path = "repro.rptx";
    std::string manifest_path;
    OracleOptions oo;
    oo.run.numWarps = 4;
    oo.run.maxInstrsPerWarp = 1u << 16;

    for (int i = 2; i < argc; i++) {
        std::string a = argv[i];
        auto next_int = [&](int &out) {
            if (i + 1 >= argc)
                return false;
            out = std::atoi(argv[++i]);
            return out > 0;
        };
        auto next_str = [&](std::string &out) {
            if (i + 1 >= argc)
                return false;
            out = argv[++i];
            return !out.empty();
        };
        if (a == "--iters") {
            if (!next_int(iters))
                return usage();
        } else if (a == "--seed") {
            if (i + 1 >= argc)
                return usage();
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (a == "--shrink") {
            do_shrink = true;
        } else if (a == "--inject") {
            inject = true;
        } else if (a == "--dump") {
            if (!next_str(dump_dir))
                return usage();
        } else if (a == "--out") {
            if (!next_str(out_path))
                return usage();
        } else if (a == "--warps") {
            if (!next_int(oo.run.numWarps))
                return usage();
        } else if (a == "--entries") {
            if (!next_int(oo.entries) || oo.entries > kMaxOrfEntries)
                return usage();
        } else if (a == "--no-hw") {
            oo.checkHwSchemes = false;
        } else if (a == "--no-simt") {
            oo.checkSimt = false;
        } else if (a == "--manifest") {
            if (!next_str(manifest_path))
                return usage();
        } else {
            return usage();
        }
    }
    if (inject)
        oo.perturb = OraclePerturb::EXTRA_MRF_READ;
    if (!dump_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(dump_dir, ec);
        if (ec) {
            std::fprintf(stderr, "rfhc: cannot create %s: %s\n",
                         dump_dir.c_str(), ec.message().c_str());
            return 1;
        }
    }

    Counter &kernels = globalMetrics().counter("fuzz.kernels");
    Counter &instrs = globalMetrics().counter("fuzz.instrs");
    Counter &pairs = globalMetrics().counter("fuzz.pairs");
    Counter &sites = globalMetrics().counter("fuzz.invariantSites");
    Counter &discrepancies =
        globalMetrics().counter("fuzz.discrepancies");
    Counter &violations =
        globalMetrics().counter("fuzz.invariantViolations");
    Counter &execErrors = globalMetrics().counter("fuzz.execErrors");

    auto writeFuzzManifest = [&](int ran, int findingCount,
                                 double wallSec) {
        if (manifest_path.empty())
            return true;
        ManifestInfo m;
        m.tool = "rfhc fuzz";
        m.engine = "direct+replay";
        m.config = {
            {"seed", std::to_string(seed)},
            {"iters", std::to_string(iters)},
            {"warps", std::to_string(oo.run.numWarps)},
            {"entries", std::to_string(oo.entries)},
            {"hwSchemes", oo.checkHwSchemes ? "true" : "false"},
            {"simt", oo.checkSimt ? "true" : "false"},
            {"inject", inject ? "true" : "false"},
        };
        m.timing.wallSec = wallSec;
        m.timing.threads = 1;
        // Benchmarks carry only seed-deterministic scalars, so two
        // campaigns with the same seed produce byte-identical entries
        // (wall time lives in the timing section only).
        m.benchmarks = {
            {"rfhc.fuzz/kernels", static_cast<double>(ran), "kernels",
             true},
            {"rfhc.fuzz/instrs", static_cast<double>(instrs.value()),
             "instrs", true},
            {"rfhc.fuzz/pairs", static_cast<double>(pairs.value()),
             "pairs", true},
            {"rfhc.fuzz/invariantSites",
             static_cast<double>(sites.value()), "sites", true},
            {"rfhc.fuzz/findings", static_cast<double>(findingCount),
             "findings", false},
        };
        if (!writeManifest(manifest_path, m)) {
            std::fprintf(stderr, "rfhc: cannot write %s\n",
                         manifest_path.c_str());
            return false;
        }
        std::fprintf(stderr, "rfhc: wrote manifest %s\n",
                     manifest_path.c_str());
        return true;
    };

    Stopwatch wall;
    for (int iter = 0; iter < iters; iter++) {
        FuzzParams fp = fuzzCase(seed, static_cast<std::uint64_t>(iter));
        std::string name = "fuzz_" + std::to_string(seed) + "_" +
            std::to_string(iter);
        Kernel k = generateFuzzKernel(name, fp);
        std::string invalid = k.validate();
        if (!invalid.empty()) {
            std::fprintf(stderr,
                         "rfhc: fuzzer produced an invalid kernel "
                         "(%s): %s\n", name.c_str(), invalid.c_str());
            return 1;
        }
        if (!dump_dir.empty())
            writeReproArtifact(k, dump_dir + "/" + name + ".rptx");

        OracleReport rep = runOracle(k, oo);
        if (rep.truncated) {
            // Generated kernels are termination-guaranteed; hitting
            // the cap means the generator itself is broken.
            std::fprintf(stderr,
                         "rfhc: fuzz kernel %s hit the instruction "
                         "cap (generator termination bug)\n",
                         name.c_str());
            return 1;
        }
        kernels.add();
        instrs.add(static_cast<std::uint64_t>(k.numInstrs()));
        pairs.add(static_cast<std::uint64_t>(rep.pairsChecked));
        sites.add(static_cast<std::uint64_t>(rep.invariantSites));
        for (const OracleFinding &f : rep.findings) {
            switch (f.kind) {
              case FindingKind::DISCREPANCY: discrepancies.add(); break;
              case FindingKind::INVARIANT: violations.add(); break;
              case FindingKind::EXEC_ERROR: execErrors.add(); break;
            }
        }
        // Each kernel memoizes its baseline/analyses/trace; drop them
        // so a long campaign runs in bounded memory.
        globalExperimentCache().clear();

        if (!rep.ok()) {
            std::printf("rfhc fuzz: FAILURE on kernel %s (iter %d)\n%s\n",
                        name.c_str(), iter, rep.summary().c_str());
            Kernel repro = k;
            if (do_shrink) {
                FailurePredicate still_fails =
                    [&](const Kernel &cand) {
                        globalExperimentCache().clear();
                        return !runOracle(cand, oo).ok();
                    };
                ShrinkResult sr = shrinkKernel(k, still_fails);
                globalExperimentCache().clear();
                repro = sr.kernel;
                std::printf("rfhc fuzz: shrunk %d -> %d instructions "
                            "(%d candidates, %d rounds)\n",
                            sr.originalInstrs, sr.finalInstrs,
                            sr.candidatesTried, sr.rounds);
            }
            if (writeReproArtifact(repro, out_path))
                std::printf("rfhc fuzz: wrote repro %s\n",
                            out_path.c_str());
            else
                std::fprintf(stderr, "rfhc: cannot write %s\n",
                             out_path.c_str());
            writeFuzzManifest(iter + 1,
                              static_cast<int>(rep.findings.size()),
                              wall.elapsedSec());
            return 1;
        }
        if ((iter + 1) % 100 == 0)
            std::fprintf(stderr,
                         "rfhc fuzz: %d/%d kernels clean (%.1fs)\n",
                         iter + 1, iters, wall.elapsedSec());
    }

    // Seed-deterministic summary on stdout (timing goes to stderr).
    std::printf("rfhc fuzz: %d kernels, %llu instructions, %llu "
                "pairs, %llu invariant sites, 0 findings\n",
                iters,
                static_cast<unsigned long long>(instrs.value()),
                static_cast<unsigned long long>(pairs.value()),
                static_cast<unsigned long long>(sites.value()));
    std::fprintf(stderr, "rfhc fuzz: clean in %.1fs\n",
                 wall.elapsedSec());
    if (!writeFuzzManifest(iters, 0, wall.elapsedSec()))
        return 1;
    return 0;
}

/**
 * `rfhc serve`: the persistent batch compile/sim service. Accepts
 * NDJSON requests on stdio or a Unix socket until a shutdown request,
 * EOF, or SIGINT/SIGTERM, then drains gracefully (see docs/service.md).
 */
int
serveMain(int argc, char **argv)
{
    ServeOptions so;
    for (int i = 2; i < argc; i++) {
        std::string a = argv[i];
        auto next_int = [&](int &out) {
            if (i + 1 >= argc)
                return false;
            out = std::atoi(argv[++i]);
            return out > 0;
        };
        auto next_str = [&](std::string &out) {
            if (i + 1 >= argc)
                return false;
            out = argv[++i];
            return !out.empty();
        };
        if (a == "--socket") {
            if (!next_str(so.socketPath))
                return usage();
        } else if (a == "--workers") {
            if (!next_int(so.service.workers))
                return usage();
        } else if (a == "--queue") {
            if (!next_int(so.service.queueCapacity))
                return usage();
        } else if (a == "--batch") {
            if (!next_int(so.service.batchMax))
                return usage();
        } else if (a == "--cache-max") {
            int n = 0;
            if (!next_int(n))
                return usage();
            so.service.cacheMaxEntries =
                static_cast<std::size_t>(n);
        } else if (a == "--cache-dir") {
            if (!next_str(so.cacheDir))
                return usage();
        } else if (a == "--cache-max-bytes") {
            if (i + 1 >= argc)
                return usage();
            so.cacheMaxBytes = std::strtoull(argv[++i], nullptr, 10);
        } else if (a == "--manifest") {
            if (!next_str(so.manifestPath))
                return usage();
        } else if (a == "--trace-events") {
            if (!next_str(so.traceEventsPath))
                return usage();
        } else {
            return usage();
        }
    }
    return runServe(so);
}

/**
 * `rfhc router`: sharded fleet front-end. Spawns and supervises N
 * `rfhc serve` workers and routes requests by kernel fingerprint
 * (see docs/service.md).
 */
int
routerMain(int argc, char **argv)
{
    RouterOptions ro;
    for (int i = 2; i < argc; i++) {
        std::string a = argv[i];
        auto next_int = [&](int &out) {
            if (i + 1 >= argc)
                return false;
            out = std::atoi(argv[++i]);
            return out > 0;
        };
        auto next_str = [&](std::string &out) {
            if (i + 1 >= argc)
                return false;
            out = argv[++i];
            return !out.empty();
        };
        if (a == "--socket") {
            if (!next_str(ro.socketPath))
                return usage();
        } else if (a == "--fleet") {
            if (!next_int(ro.workers))
                return usage();
        } else if (a == "--cache-dir") {
            if (!next_str(ro.cacheDir))
                return usage();
        } else if (a == "--cache-max-bytes") {
            if (i + 1 >= argc)
                return usage();
            ro.cacheMaxBytes = std::strtoull(argv[++i], nullptr, 10);
        } else if (a == "--worker-threads") {
            if (!next_int(ro.workerThreads))
                return usage();
        } else if (a == "--queue") {
            if (!next_int(ro.queueCapacity))
                return usage();
        } else if (a == "--batch") {
            if (!next_int(ro.batchMax))
                return usage();
        } else if (a == "--vnodes") {
            if (!next_int(ro.virtualNodes))
                return usage();
        } else if (a == "--max-restarts") {
            if (!next_int(ro.maxRestarts))
                return usage();
        } else if (a == "--manifest") {
            if (!next_str(ro.manifestPath))
                return usage();
        } else {
            return usage();
        }
    }
    return runRouter(ro);
}

/** `rfhc loadgen`: drive a running service (see docs/service.md). */
int
loadgenMain(int argc, char **argv)
{
    LoadgenOptions lo;
    for (int i = 2; i < argc; i++) {
        std::string a = argv[i];
        auto next_int = [&](int &out) {
            if (i + 1 >= argc)
                return false;
            out = std::atoi(argv[++i]);
            return out > 0;
        };
        auto next_str = [&](std::string &out) {
            if (i + 1 >= argc)
                return false;
            out = argv[++i];
            return !out.empty();
        };
        if (a == "--socket") {
            if (!next_str(lo.socketPath))
                return usage();
        } else if (a == "--clients") {
            if (!next_int(lo.clients))
                return usage();
        } else if (a == "--requests") {
            if (!next_int(lo.requests))
                return usage();
        } else if (a == "--workload") {
            if (!next_str(lo.workload))
                return usage();
        } else if (a == "--scheme") {
            if (!next_str(lo.scheme))
                return usage();
        } else if (a == "--entries") {
            if (!next_int(lo.entries) || lo.entries > kMaxOrfEntries)
                return usage();
        } else if (a == "--warps") {
            if (!next_int(lo.warps))
                return usage();
        } else if (a == "--deadline") {
            if (i + 1 >= argc)
                return usage();
            lo.deadlineMs = std::strtod(argv[++i], nullptr);
            if (lo.deadlineMs <= 0)
                return usage();
        } else if (a == "--retries") {
            if (!next_int(lo.maxRetries))
                return usage();
        } else if (a == "--verify") {
            lo.verify = true;
        } else if (a == "--router") {
            lo.router = true;
        } else if (a == "--shutdown") {
            lo.shutdownAfter = true;
        } else if (a == "--manifest") {
            if (!next_str(lo.manifestPath))
                return usage();
        } else {
            return usage();
        }
    }
    return runLoadgen(lo);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    if (cmd == "compare")
        return compareMain(argc, argv);
    if (cmd == "corpus")
        return corpusMain(argc, argv);
    if (cmd == "fuzz")
        return fuzzMain(argc, argv);
    if (cmd == "serve")
        return serveMain(argc, argv);
    if (cmd == "router")
        return routerMain(argc, argv);
    if (cmd == "loadgen")
        return loadgenMain(argc, argv);
    if (argc < 3)
        return usage();
    if (cmd == "bench-diff")
        return benchDiffMain(argc, argv);
    std::string path = argv[2];

    AllocOptions opts;
    opts.useLRF = true;
    opts.splitLRF = true;
    bool do_schedule = false;
    bool json = false;
    bool perf = false;
    PipelineConfig pcfg;
    int regalloc_budget = 0;
    int warps = 8;
    std::string manifest_path;
    std::string trace_events_path;
    std::string scheme_token;
    for (int i = 3; i < argc; i++) {
        std::string a = argv[i];
        auto next_int = [&](int &out) {
            if (i + 1 >= argc)
                return false;
            out = std::atoi(argv[++i]);
            return out > 0;
        };
        auto next_str = [&](std::string &out) {
            if (i + 1 >= argc)
                return false;
            out = argv[++i];
            return !out.empty();
        };
        if (a == "--entries") {
            if (!next_int(opts.orfEntries) ||
                opts.orfEntries > kMaxOrfEntries)
                return usage();
        } else if (a == "--no-lrf") {
            opts.useLRF = opts.splitLRF = false;
        } else if (a == "--unified-lrf") {
            opts.splitLRF = false;
        } else if (a == "--no-partial") {
            opts.partialRanges = false;
        } else if (a == "--no-readops") {
            opts.readOperands = false;
        } else if (a == "--schedule") {
            do_schedule = true;
        } else if (a == "--json") {
            json = true;
        } else if (a == "--manifest") {
            if (!next_str(manifest_path))
                return usage();
        } else if (a == "--trace-events") {
            if (!next_str(trace_events_path))
                return usage();
        } else if (a == "--regalloc") {
            if (!next_int(regalloc_budget))
                return usage();
        } else if (a == "--warps") {
            if (!next_int(warps))
                return usage();
        } else if (a == "--perf") {
            perf = true;
        } else if (a == "--sched") {
            std::string tok;
            if (!next_str(tok) ||
                !parseSchedPolicy(tok, pcfg.policy))
                return usage();
        } else if (a == "--active") {
            if (!next_int(pcfg.activeWarps))
                return usage();
        } else if (a == "--scheme") {
            if (!next_str(scheme_token))
                return usage();
        } else {
            return usage();
        }
    }

    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "rfhc: cannot open %s\n", path.c_str());
        return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    ParseResult parsed = parseKernel(text.str());
    if (!parsed.ok) {
        std::fprintf(stderr, "rfhc: %s: %s\n", path.c_str(),
                     parsed.error.c_str());
        return 1;
    }
    Kernel kernel = std::move(parsed.kernel);

    if (do_schedule) {
        ScheduleStats ss = scheduleKernel(kernel);
        std::fprintf(stderr,
                     "rfhc: scheduler moved %d instructions "
                     "(lifetime -%ld)\n",
                     ss.instructionsMoved, ss.lifetimeReduction);
    }
    if (regalloc_budget > 0) {
        RegAllocOptions ro;
        ro.numRegs = regalloc_budget;
        RegAllocStats rs = allocateRegisters(kernel, ro);
        std::fprintf(stderr,
                     "rfhc: regalloc used %d regs, spilled %d ranges "
                     "(%d loads, %d stores)\n",
                     rs.regsUsed, rs.spilledRanges, rs.spillLoads,
                     rs.spillStores);
    }

    if (cmd == "stats") {
        Cfg cfg(kernel);
        StrandAnalysis sa(kernel, cfg, opts.strandOptions);
        RunConfig rc;
        rc.numWarps = warps;
        UsageStats us = collectUsageStats(kernel, rc);
        std::printf("kernel %s: %d blocks, %d instructions, %d "
                    "registers\n",
                    kernel.name.c_str(),
                    static_cast<int>(kernel.blocks.size()),
                    kernel.numInstrs(), kernel.numRegs());
        std::printf("strands: %d\n", sa.numStrands());
        for (int s = 0; s < sa.numStrands(); s++) {
            const Strand &st = sa.strand(s);
            const char *why = "";
            switch (st.endReason) {
              case StrandEndReason::LONG_LATENCY:
                why = "long-latency dependence"; break;
              case StrandEndReason::BACKWARD_BRANCH:
                why = "backward branch"; break;
              case StrandEndReason::BACKWARD_TARGET:
                why = "backward-branch target"; break;
              case StrandEndReason::MERGE_UNCERTAIN:
                why = "uncertain merge"; break;
              case StrandEndReason::KERNEL_END:
                why = "kernel end"; break;
            }
            std::printf("  strand %d: lin [%d, %d]  ends: %s\n", s,
                        st.firstLin, st.lastLin, why);
        }
        std::printf("dynamic values: %llu (read0 %.1f%%, read1 %.1f%%, "
                    "read2 %.1f%%, more %.1f%%)\n",
                    static_cast<unsigned long long>(us.totalValues),
                    100 * us.fracRead(0), 100 * us.fracRead(1),
                    100 * us.fracRead(2), 100 * us.fracRead(3));
        return 0;
    }

    if (cmd == "annotate") {
        HierarchyAllocator alloc(EnergyParams{}, opts);
        AllocStats stats = alloc.run(kernel);
        PrintOptions po;
        po.annotations = true;
        po.strands = true;
        std::printf("%s", printKernel(kernel, po).c_str());
        std::fprintf(stderr,
                     "rfhc: %d strands; %d ORF values (%d partial), "
                     "%d LRF values, %d read operands, %d MRF writes "
                     "elided\n",
                     stats.strands, stats.orfValuesFull,
                     stats.orfValuesPartial, stats.lrfValues,
                     stats.orfReadsFull + stats.orfReadsPartial,
                     stats.mrfWritesElided);
        return 0;
    }

    if (cmd == "run") {
        if (!trace_events_path.empty())
            TraceEventLog::global().enable();

        Workload w;
        w.name = kernel.name;
        w.suite = "cli";
        w.kernel = std::move(kernel);
        w.run.numWarps = warps;

        ExperimentConfig cfg;
        cfg.scheme = opts.useLRF ? Scheme::SW_THREE_LEVEL
                                 : Scheme::SW_TWO_LEVEL;
        if (!scheme_token.empty()) {
            const SchemeInfo *si =
                SchemeRegistry::instance().findToken(scheme_token);
            if (!si) {
                std::fprintf(
                    stderr, "rfhc: unknown scheme '%s' (valid: %s)\n",
                    scheme_token.c_str(),
                    SchemeRegistry::instance().tokenList().c_str());
                return 1;
            }
            cfg.scheme = si->scheme;
        }
        cfg.entries = opts.orfEntries;
        cfg.splitLRF = opts.splitLRF;
        cfg.partialRanges = opts.partialRanges;
        cfg.readOperands = opts.readOperands;
        cfg.strandOptions = opts.strandOptions;
        cfg.engine = ExecEngine::DIRECT;
        cfg.perf = perf;
        cfg.pipeline = pcfg;

        Stopwatch wall;
        RunOutcome o = runScheme(w, cfg);
        if (!o.ok()) {
            std::fprintf(stderr, "rfhc: verification failed: %s\n",
                         o.error.c_str());
            return 1;
        }

        ManifestInfo m;
        m.tool = "rfhc run";
        m.engine = std::string(engineName(ExecEngine::DIRECT));
        m.config = {
            {"file", path},
            {"kernel", w.name},
            {"scheme", std::string(schemeName(cfg.scheme))},
            {"entries", std::to_string(cfg.entries)},
            {"warps", std::to_string(warps)},
            {"splitLRF", cfg.splitLRF ? "true" : "false"},
            {"partialRanges", cfg.partialRanges ? "true" : "false"},
            {"readOperands", cfg.readOperands ? "true" : "false"},
        };
        m.timing.wallSec = wall.elapsedSec();
        m.timing.cpuSec = o.phases.totalSec();
        m.timing.threads = 1;
        m.phases = o.phases;
        m.benchmarks = {
            {"rfhc.run/wallSec", m.timing.wallSec, "sec", false},
            {"rfhc.run/instrPerSec", o.phases.instrPerSec(), "instr/s",
             true},
        };
        if (!manifest_path.empty()) {
            if (!writeManifest(manifest_path, m)) {
                std::fprintf(stderr, "rfhc: cannot write %s\n",
                             manifest_path.c_str());
                return 1;
            }
            std::fprintf(stderr, "rfhc: wrote manifest %s\n",
                         manifest_path.c_str());
        }
        if (!trace_events_path.empty()) {
            if (!TraceEventLog::global().writeTo(trace_events_path)) {
                std::fprintf(stderr, "rfhc: cannot write %s\n",
                             trace_events_path.c_str());
                return 1;
            }
            std::fprintf(stderr, "rfhc: wrote trace events %s\n",
                         trace_events_path.c_str());
        }
        emitRunArtifacts(m);

        if (json) {
            std::printf("%s\n", outcomeToJson(o).c_str());
            return 0;
        }
        const AccessCounts &c = o.counts;
        std::printf("instructions: %llu   deschedules: %llu\n",
                    static_cast<unsigned long long>(c.instructions),
                    static_cast<unsigned long long>(c.deschedules));
        std::printf("reads:  MRF %llu  ORF %llu  LRF %llu\n",
                    static_cast<unsigned long long>(
                        c.totalReads(Level::MRF)),
                    static_cast<unsigned long long>(
                        c.totalReads(Level::ORF)),
                    static_cast<unsigned long long>(
                        c.totalReads(Level::LRF)));
        std::printf("writes: MRF %llu  ORF %llu  LRF %llu\n",
                    static_cast<unsigned long long>(
                        c.totalWrites(Level::MRF)),
                    static_cast<unsigned long long>(
                        c.totalWrites(Level::ORF)),
                    static_cast<unsigned long long>(
                        c.totalWrites(Level::LRF)));
        double e = o.energyPJ;
        double be = o.baselineEnergyPJ;
        std::printf("energy: %.1f pJ (flat register file: %.1f pJ, "
                    "saved %.1f%%)\n", e, be, 100.0 * (1 - e / be));
        if (o.hasPerf) {
            const PipelineStats &p = o.perf;
            std::printf(
                "perf:   %llu cycles  IPC %.3f  (%s, %d active; "
                "%llu swaps, %llu bank conflicts)\n",
                static_cast<unsigned long long>(p.cycles), p.ipc(),
                std::string(schedPolicyName(cfg.pipeline.policy))
                    .c_str(),
                cfg.pipeline.activeWarps,
                static_cast<unsigned long long>(p.swaps),
                static_cast<unsigned long long>(p.bankConflicts));
            double cyc = p.cycles ? static_cast<double>(p.cycles)
                                  : 1.0;
            std::printf(
                "stalls: scoreboard %.1f%%  collector %.1f%%  "
                "exec-busy %.1f%%  swap %.1f%%  drain %.1f%%\n",
                100.0 * p.stalls.scoreboard / cyc,
                100.0 * p.stalls.collector / cyc,
                100.0 * p.stalls.execBusy / cyc,
                100.0 * p.stalls.swap / cyc,
                100.0 * p.stalls.drain / cyc);
        }
        return 0;
    }

    return usage();
}
