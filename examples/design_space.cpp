/**
 * @file
 * Design-space exploration: find the most energy-efficient register
 * file hierarchy for a workload (or the whole suite).
 *
 * Usage:
 *   ./build/examples/design_space [workload-name]
 *
 * Sweeps ORF/RFC size 1..8 for all four organisations, reports the
 * energy of each point, and recommends a configuration — the workflow
 * a GPU architect would run when re-targeting the hierarchy to a new
 * workload mix (Section 6.4).
 */

#include <cstdio>
#include <optional>
#include <string>

#include "core/experiment.h"
#include "core/report.h"
#include "core/sweep.h"

int
main(int argc, char **argv)
{
    using namespace rfh;

    std::optional<std::string> name;
    if (argc > 1)
        name = argv[1];
    std::printf("Design-space sweep over %s\n\n",
                name ? name->c_str() : "the full benchmark suite");

    std::vector<Scheme> schemes = {Scheme::HW_TWO_LEVEL,
                                   Scheme::HW_THREE_LEVEL,
                                   Scheme::SW_TWO_LEVEL,
                                   Scheme::SW_THREE_LEVEL};

    TextTable t({"Entries", "HW", "HW LRF", "SW", "SW LRF split"});
    double best = 1e300;
    Scheme best_scheme = Scheme::BASELINE;
    int best_entries = 0;
    for (int e = 1; e <= kMaxOrfEntries; e++) {
        std::vector<std::string> row = {std::to_string(e)};
        for (Scheme s : schemes) {
            ExperimentConfig cfg;
            cfg.scheme = s;
            cfg.entries = e;
            RunOutcome o = name ? runScheme(workloadByName(*name), cfg)
                                : runAllWorkloads(cfg);
            if (!o.ok()) {
                std::fprintf(stderr, "verification failure: %s\n",
                             o.error.c_str());
                return 1;
            }
            row.push_back(fmt(o.normalizedEnergy(), 3));
            if (o.normalizedEnergy() < best) {
                best = o.normalizedEnergy();
                best_scheme = s;
                best_entries = e;
            }
        }
        t.addRow(row);
    }
    std::printf("Normalised register file energy\n%s\n",
                t.str().c_str());
    std::printf("Recommended configuration: %s with %d entries/thread "
                "(saves %s)\n",
                std::string(schemeName(best_scheme)).c_str(),
                best_entries, pct(1 - best).c_str());
    return 0;
}
