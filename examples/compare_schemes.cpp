/**
 * @file
 * Compare register file organisations on one benchmark.
 *
 * Usage:
 *   ./build/examples/compare_schemes [workload-name]
 *
 * Runs the flat baseline, the hardware RFC (two- and three-level), and
 * the software ORF/LRF hierarchy over the chosen workload and prints
 * the access breakdown and normalised energy of each, mirroring the
 * per-benchmark columns of Figures 11-13.
 */

#include <cstdio>
#include <string>

#include "core/experiment.h"
#include "core/report.h"
#include "sim/baseline_exec.h"

int
main(int argc, char **argv)
{
    using namespace rfh;

    std::string name = argc > 1 ? argv[1] : "matrixmul";
    const Workload &w = workloadByName(name);
    std::printf("Benchmark %s (%s suite), %d blocks, %d instructions\n\n",
                w.name.c_str(), w.suite.c_str(),
                static_cast<int>(w.kernel.blocks.size()),
                w.kernel.numInstrs());

    AccessCounts base = runBaseline(w.kernel, w.run);

    TextTable t({"Scheme", "MRF rd", "ORF rd", "LRF rd", "MRF wr",
                 "ORF wr", "LRF wr", "Energy", "Savings"});
    for (Scheme s : {Scheme::BASELINE, Scheme::HW_TWO_LEVEL,
                     Scheme::HW_THREE_LEVEL, Scheme::SW_TWO_LEVEL,
                     Scheme::SW_THREE_LEVEL}) {
        ExperimentConfig cfg;
        cfg.scheme = s;
        cfg.entries = s == Scheme::HW_TWO_LEVEL ||
            s == Scheme::HW_THREE_LEVEL ? 6 : 3;
        RunOutcome o = runScheme(w, cfg);
        if (!o.ok()) {
            std::fprintf(stderr, "%s failed verification: %s\n",
                         std::string(schemeName(s)).c_str(),
                         o.error.c_str());
            return 1;
        }
        AccessBreakdown b = normalizeAccesses(o.counts, base);
        t.addRow({std::string(schemeName(s)), pct(b.mrfReads),
                  pct(b.orfReads), pct(b.lrfReads), pct(b.mrfWrites),
                  pct(b.orfWrites), pct(b.lrfWrites),
                  fmt(o.normalizedEnergy(), 3),
                  pct(1 - o.normalizedEnergy())});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("(accesses normalised to the flat baseline; HW schemes "
                "use 6 cache entries,\nSW schemes a 3-entry ORF as in "
                "the paper's preferred configurations)\n");
    return 0;
}
