/**
 * @file
 * Minimal fixed-size thread pool for the experiment engine.
 *
 * The figure harnesses sweep schemes x ORF sizes x 36 workloads; every
 * grid point is independent, so the engine fans the grid out across a
 * pool and aggregates results in deterministic grid order. The worker
 * count comes from std::thread::hardware_concurrency(), overridable
 * with the RFH_THREADS environment variable; a count of 1 bypasses the
 * pool entirely and runs the loop inline on the calling thread, which
 * reproduces the historical sequential path exactly (same iteration
 * order, same floating-point accumulation order).
 */

#ifndef RFH_CORE_PARALLEL_H
#define RFH_CORE_PARALLEL_H

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rfh {

/**
 * Worker count for new pools: RFH_THREADS if set (clamped to
 * [1, 256]), else std::thread::hardware_concurrency(), else 1.
 */
int defaultThreadCount();

/** Fixed-size pool executing index-range jobs. */
class ThreadPool
{
  public:
    /** @param threads worker count; <= 0 means defaultThreadCount(). */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int
    threadCount() const
    {
        return threads_;
    }

    /**
     * Run fn(i) for every i in [0, n), blocking until all complete.
     *
     * With one worker (or n <= 1, or when called from inside one of
     * this pool's own tasks) the loop runs inline in ascending index
     * order — the exact sequential path. Otherwise indices are handed
     * to the workers (and the calling thread) in ascending order but
     * complete in arbitrary order; callers must write results into
     * per-index slots and aggregate afterwards if they need
     * deterministic output.
     *
     * The first exception thrown by any fn(i) is rethrown on the
     * calling thread once the job has drained.
     */
    void parallelFor(int n, const std::function<void(int)> &fn);

    /** parallelFor over @p items, collecting fn(item) per index. */
    template <typename T, typename F>
    auto
    parallelMap(const std::vector<T> &items, F fn)
        -> std::vector<decltype(fn(items[0]))>
    {
        std::vector<decltype(fn(items[0]))> out(items.size());
        parallelFor(static_cast<int>(items.size()),
                    [&](int i) { out[i] = fn(items[i]); });
        return out;
    }

  private:
    void workerLoop();
    /** Claim and run indices of the current job; @return when drained. */
    void drainJob();

    int threads_ = 1;
    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable wake_;   ///< Signals workers: job or stop.
    std::condition_variable done_;   ///< Signals caller: job drained.
    const std::function<void(int)> *job_ = nullptr;
    int jobSize_ = 0;
    int next_ = 0;       ///< Next unclaimed index.
    int pending_ = 0;    ///< Claimed-but-unfinished indices.
    std::uint64_t generation_ = 0;
    std::exception_ptr firstError_;
    bool stop_ = false;
};

/**
 * Shared process-wide pool used by the experiment engine
 * (sweepEntries, runAllWorkloads, the limit study). Sized by
 * defaultThreadCount() on first use.
 */
ThreadPool &globalPool();

} // namespace rfh

#endif // RFH_CORE_PARALLEL_H
