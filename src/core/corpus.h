/**
 * @file
 * Corpus-scale scenario sweeps: population statistics over tens of
 * thousands of generated kernels.
 *
 * Where the golden suite pins the paper's figures at ~20 hand-written
 * kernels (five golden points), the corpus engine turns each claim
 * into a population statement with error bars: it streams kernels
 * drawn from named scenario profiles (workloads/profiles.h) through
 * the batched replay engine, one chunk at a time, and folds each
 * run's energy ratio, per-level access shares, allocator decisions,
 * and (optionally) pipeline IPC into exactly-mergeable streaming
 * statistics (core/stats.h) per (profile, scheme, entries) cell.
 *
 * Determinism contract: sample values are quantized through the
 * result-JSON wire format before folding and the fold itself is exact
 * integer arithmetic, so the aggregate document is byte-identical
 * across thread counts, across repeated runs, and across execution
 * substrates — a local run, a single `rfhc serve` process, and a
 * sharded router fleet of any size all produce the same bytes
 * (service/corpus_client.h drives the remote variants through this
 * module's accumulator).
 */

#ifndef RFH_CORE_CORPUS_H
#define RFH_CORE_CORPUS_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/stats.h"
#include "workloads/profiles.h"

namespace rfh {

class ThreadPool;
struct JsonValue;

/** One aggregation cell: a scheme at one entries-per-thread point. */
struct CorpusCell
{
    Scheme scheme;
    int entries = 3;
};

/**
 * The default cell grid: every paper-or-contributed scheme whose
 * capabilities sweep the entries axis, at entries {1, 2, 3, 4, 6, 8}.
 */
std::vector<CorpusCell> defaultCorpusCells();

/** Corpus run configuration. */
struct CorpusConfig
{
    /** Profile names ("all" expands to every builtin). */
    std::vector<std::string> profiles = {"all"};
    /** Kernels generated per resolved profile. */
    int kernelsPerProfile = 256;
    /** Aggregation cells; empty means defaultCorpusCells(). */
    std::vector<CorpusCell> cells;
    /** Corpus-level seed folded into every per-kernel parameter draw. */
    std::uint64_t seed = 1;
    /** Kernels per replayBatch slice (bounds peak memo-cache size). */
    int chunk = 64;
    /** Override every profile's warp count (0 = profile default). */
    int warps = 0;
    /** Also run the cycle-level pipeline and aggregate IPC. */
    bool perf = false;
    /** Pipeline timing knobs when @c perf is set. */
    PipelineConfig pipeline;
    /** Bootstrap resamples behind each confidence band. */
    int bootstrapResamples = 200;
    /** Two-sided confidence level of the bands. */
    double confidence = 0.95;
    /**
     * Drop the process-wide experiment caches after each chunk so a
     * 10k-kernel corpus runs in bounded memory. Tests sharing a
     * process may turn this off.
     */
    bool clearCaches = true;
};

/**
 * One run's folded observation. Every field is either an exact
 * integer count widened to double or a wire-rounded real, so samples
 * extracted locally (corpusSampleFromOutcome) and from a service
 * result document (corpusSampleFromResultJson) are bit-identical.
 */
struct CorpusSample
{
    double normalizedEnergy = 0.0;
    /** Per-level read/write counts, MRF/ORF/LRF order. */
    double reads[3] = {0, 0, 0};
    double writes[3] = {0, 0, 0};
    double instructions = 0.0;
    /** Allocator decisions (zero for hardware-managed schemes). */
    double valueInstances = 0.0;
    double lrfValues = 0.0;
    double orfValues = 0.0; ///< Full + partial ORF allocations.
    double mrfWritesElided = 0.0;
    /** Cycle-level pipeline outcome (when the run carried perf). */
    bool hasPerf = false;
    double cycles = 0.0;
    double issued = 0.0;
};

/** Extract the sample of a local run outcome (wire-quantized). */
CorpusSample corpusSampleFromOutcome(const RunOutcome &o);

/**
 * Extract the sample of a parsed service result document (the
 * "result" object of a response envelope). @return false with a
 * message when required fields are missing.
 */
bool corpusSampleFromResultJson(const JsonValue &result,
                                CorpusSample &out, std::string *err);

/** Population statistics of one (profile, cell). */
struct CorpusCellStats
{
    CorpusCell cell;
    /** Registry token of the cell's scheme, e.g. "sw3". */
    std::string schemeToken;
    StreamStat energyRatio;
    /** Reads (writes) at each level / all reads (writes), MRF/ORF/LRF. */
    StreamStat readShare[3];
    StreamStat writeShare[3];
    /** Fractions of value instances, folded for allocator schemes. */
    StreamStat orfFrac;
    StreamStat lrfFrac;
    StreamStat elideFrac;
    /** Pipeline IPC, folded when runs carry perf. */
    StreamStat ipc;
    std::uint64_t runs = 0;
    std::uint64_t errors = 0;
    std::string firstError;
};

/** Population statistics of one resolved profile. */
struct CorpusProfileStats
{
    ScenarioProfile profile;
    std::uint64_t kernels = 0;
    /** Dynamic (warp) instructions per kernel. */
    StreamStat dynInstrs;
    std::vector<CorpusCellStats> cells;
};

/** The full corpus aggregate. */
struct CorpusResult
{
    /** The resolved configuration that produced the aggregate. */
    CorpusConfig config;
    std::vector<CorpusProfileStats> profiles;
    std::uint64_t totalRuns = 0;
    std::uint64_t totalErrors = 0;
    /** Observability only; excluded from corpusToJson. */
    double wallSec = 0.0;
};

/**
 * Order-canonical fold of samples into per-(profile, cell) streaming
 * statistics. Shared by the local runner and the fleet client so both
 * substrates aggregate identically; thanks to the exact merge the
 * fold order cannot change any byte, but callers still fold in
 * (kernel index, cell index) order by convention.
 */
class CorpusAccumulator
{
  public:
    /**
     * @param cfg resolved configuration (cells non-empty).
     * @param profiles the resolved profile set.
     */
    CorpusAccumulator(const CorpusConfig &cfg,
                      std::vector<ScenarioProfile> profiles);

    /** Fold one run's sample into (profileIdx, cellIdx). */
    void fold(int profileIdx, int cellIdx, const CorpusSample &s);

    /** Record a failed run of (profileIdx, cellIdx). */
    void foldError(int profileIdx, int cellIdx,
                   const std::string &message);

    /** Record one generated kernel's dynamic instruction count. */
    void foldKernel(int profileIdx, double instructions);

    /** Finish and move the aggregate out. */
    CorpusResult take();

  private:
    CorpusResult result_;
};

/**
 * Run the corpus locally: generate each profile's kernels chunk by
 * chunk (fanned out across @p pool), execute every (kernel, cell)
 * pair through replayBatch, and fold. On a configuration error
 * (unknown profile, unregistered scheme, out-of-range entries)
 * returns false and sets @p err; the message lists the valid names,
 * mirroring the service's unknown_scheme/unknown-profile pattern.
 */
bool runCorpus(const CorpusConfig &cfg, CorpusResult &out,
               ThreadPool *pool = nullptr, std::string *err = nullptr);

/**
 * The "rfh-corpus-v1" aggregate document: per profile, per cell, the
 * full streaming summaries with bootstrap bands on the energy ratio.
 * A pure function of the aggregate state — byte-identical across
 * thread counts, shard layouts, and local/service substrates.
 */
std::string corpusToJson(const CorpusResult &r);

/**
 * Aligned text summary: per profile x scheme, the lowest-mean-energy
 * cell with its confidence band and population quantiles.
 */
std::string renderCorpusSummary(const CorpusResult &r);

/**
 * Resolve and validate @p cfg without running anything: expand
 * profiles, default empty cells, range-check entries and scheme
 * registration. Shared by the local runner and the fleet client.
 */
bool resolveCorpusConfig(const CorpusConfig &cfg,
                         std::vector<ScenarioProfile> &profiles,
                         std::vector<CorpusCell> &cells,
                         std::string *err);

} // namespace rfh

#endif // RFH_CORE_CORPUS_H
