/**
 * @file
 * Wall-clock phase accounting for the experiment engine.
 *
 * Every runScheme call is split into four phases — analyze (CFG /
 * liveness / reaching-defs bundle plus the baseline functional
 * execution), trace (recording the pre-decoded dynamic stream, replay
 * engine only), allocate (the compile-time allocator), and execute
 * (the managed-hierarchy or hardware-cache simulation) — and the
 * engine aggregates these per sweep point. Timing never feeds back
 * into results: the result JSON is byte-identical across thread
 * counts, and timings are serialised separately (sweepTimingsToJson).
 *
 * PhaseTimes is the deterministic per-outcome aggregate carried inside
 * RunOutcome; the process-wide aggregation layer is the metrics
 * registry (core/metrics.h), which the engine feeds from the same
 * Stopwatch laps and which run manifests (core/manifest.h) snapshot.
 */

#ifndef RFH_CORE_TIMING_H
#define RFH_CORE_TIMING_H

#include <chrono>
#include <cstdint>

namespace rfh {

/** Wall-clock seconds spent per engine phase. */
struct PhaseTimes
{
    double analyzeSec = 0.0;   ///< Analyses + baseline execution.
    double traceSec = 0.0;     ///< Decoded-stream recording (replay).
    double allocateSec = 0.0;  ///< HierarchyAllocator::run.
    double executeSec = 0.0;   ///< SW/HW hierarchy simulation.
    /** Dynamic instructions simulated in the execute phase. */
    std::uint64_t dynInstrs = 0;

    void
    add(const PhaseTimes &o)
    {
        analyzeSec += o.analyzeSec;
        traceSec += o.traceSec;
        allocateSec += o.allocateSec;
        executeSec += o.executeSec;
        dynInstrs += o.dynInstrs;
    }

    /** Sum of all phases (CPU-side work, summed across threads). */
    double
    totalSec() const
    {
        return analyzeSec + traceSec + allocateSec + executeSec;
    }

    /** Dynamic instructions per execute-phase second (0 if untimed). */
    double
    instrPerSec() const
    {
        return executeSec > 0 ? static_cast<double>(dynInstrs) / executeSec
                              : 0.0;
    }
};

/** Monotonic stopwatch. */
class Stopwatch
{
  public:
    Stopwatch() : start_(clock::now()) {}

    /** Seconds since construction or the last restart(). */
    double
    elapsedSec() const
    {
        return std::chrono::duration<double>(clock::now() - start_)
            .count();
    }

    /** Restart and @return the elapsed seconds up to now. */
    double
    lap()
    {
        auto now = clock::now();
        double s = std::chrono::duration<double>(now - start_).count();
        start_ = now;
        return s;
    }

  private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

} // namespace rfh

#endif // RFH_CORE_TIMING_H
