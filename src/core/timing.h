/**
 * @file
 * Wall-clock phase accounting for the experiment engine.
 *
 * Every runScheme call is split into three phases — analyze (CFG /
 * liveness / reaching-defs bundle plus the baseline functional
 * execution), allocate (the compile-time allocator), and execute (the
 * managed-hierarchy or hardware-cache simulation) — and the engine
 * aggregates these per sweep point. Timing never feeds back into
 * results: the result JSON is byte-identical across thread counts,
 * and timings are serialised separately (sweepTimingsToJson).
 */

#ifndef RFH_CORE_TIMING_H
#define RFH_CORE_TIMING_H

#include <chrono>

namespace rfh {

/** Wall-clock seconds spent per engine phase. */
struct PhaseTimes
{
    double analyzeSec = 0.0;   ///< Analyses + baseline execution.
    double allocateSec = 0.0;  ///< HierarchyAllocator::run.
    double executeSec = 0.0;   ///< SW/HW hierarchy simulation.

    void
    add(const PhaseTimes &o)
    {
        analyzeSec += o.analyzeSec;
        allocateSec += o.allocateSec;
        executeSec += o.executeSec;
    }

    /** Sum of all phases (CPU-side work, summed across threads). */
    double
    totalSec() const
    {
        return analyzeSec + allocateSec + executeSec;
    }
};

/** Monotonic stopwatch. */
class Stopwatch
{
  public:
    Stopwatch() : start_(clock::now()) {}

    /** Seconds since construction or the last restart(). */
    double
    elapsedSec() const
    {
        return std::chrono::duration<double>(clock::now() - start_)
            .count();
    }

    /** Restart and @return the elapsed seconds up to now. */
    double
    lap()
    {
        auto now = clock::now();
        double s = std::chrono::duration<double>(now - start_).count();
        start_ = now;
        return s;
    }

  private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

} // namespace rfh

#endif // RFH_CORE_TIMING_H
