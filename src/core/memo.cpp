#include "core/memo.h"

#include "core/metrics.h"

namespace rfh {

namespace {

/** Registry mirror of the cache counters (one-time registration). */
struct MemoMetrics
{
    Counter &baselineHits = globalMetrics().counter("memo.baseline.hits");
    Counter &baselineMisses =
        globalMetrics().counter("memo.baseline.misses");
    Counter &analysisHits = globalMetrics().counter("memo.analysis.hits");
    Counter &analysisMisses =
        globalMetrics().counter("memo.analysis.misses");
    Counter &traceHits = globalMetrics().counter("memo.trace.hits");
    Counter &traceMisses = globalMetrics().counter("memo.trace.misses");
    Counter &decodeHits = globalMetrics().counter("memo.decode.hits");
    Counter &decodeMisses =
        globalMetrics().counter("memo.decode.misses");
};

MemoMetrics &
memoMetrics()
{
    static MemoMetrics m;
    return m;
}

/** FNV-1a 64-bit. */
class Fnv
{
  public:
    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; i++) {
            h_ ^= (v >> (8 * i)) & 0xff;
            h_ *= 0x100000001b3ull;
        }
    }

    void
    mix(const std::string &s)
    {
        mix(s.size());
        for (char c : s) {
            h_ ^= static_cast<unsigned char>(c);
            h_ *= 0x100000001b3ull;
        }
    }

    std::uint64_t
    value() const
    {
        return h_;
    }

  private:
    std::uint64_t h_ = 0xcbf29ce484222325ull;
};

} // namespace

std::uint64_t
kernelFingerprint(const Kernel &k)
{
    Fnv f;
    f.mix(k.name);
    f.mix(k.blocks.size());
    for (const auto &bb : k.blocks) {
        f.mix(bb.instrs.size());
        for (const Instruction &in : bb.instrs) {
            f.mix(static_cast<std::uint64_t>(in.op));
            f.mix(in.dst ? *in.dst : 0xffu);
            f.mix(static_cast<std::uint64_t>(in.numSrcs));
            for (int s = 0; s < in.numSrcs; s++) {
                const SrcOperand &src = in.srcs[s];
                f.mix(src.isReg ? 1u : 0u);
                f.mix(src.isReg ? src.reg : src.imm);
            }
            f.mix(in.pred ? *in.pred : 0xffu);
            f.mix(static_cast<std::uint64_t>(
                static_cast<std::int64_t>(in.branchTarget)));
            f.mix(in.wide ? 1u : 0u);
            f.mix(in.memOffset);
        }
    }
    return f.value();
}

const AccessCounts &
ExperimentCache::baseline(const Kernel &k, const RunConfig &run)
{
    BaselineKey key{kernelFingerprint(k), k.numInstrs(), run.numWarps,
                    run.maxInstrsPerWarp};
    std::shared_ptr<BaselineEntry> e;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto &slot = baseline_[key];
        if (!slot)
            slot = std::make_shared<BaselineEntry>();
        e = slot;
    }
    bool miss = false;
    std::call_once(e->once, [&] {
        e->counts = runBaseline(k, run);
        miss = true;
    });
    if (miss) {
        baselineMisses_++;
        memoMetrics().baselineMisses.add();
    } else {
        baselineHits_++;
        memoMetrics().baselineHits.add();
    }
    return e->counts;
}

std::shared_ptr<const AnalysisBundle>
ExperimentCache::analyses(const Kernel &k)
{
    AnalysisKey key{kernelFingerprint(k), k.numInstrs()};
    std::shared_ptr<AnalysisEntry> e;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto &slot = analyses_[key];
        if (!slot)
            slot = std::make_shared<AnalysisEntry>();
        e = slot;
    }
    bool miss = false;
    std::call_once(e->once, [&] {
        e->bundle = std::make_shared<const AnalysisBundle>(k);
        miss = true;
    });
    if (miss) {
        analysisMisses_++;
        memoMetrics().analysisMisses.add();
    } else {
        analysisHits_++;
        memoMetrics().analysisHits.add();
    }
    return e->bundle;
}

std::shared_ptr<const DecodedTrace>
ExperimentCache::trace(const Kernel &k, const RunConfig &run)
{
    BaselineKey key{kernelFingerprint(k), k.numInstrs(), run.numWarps,
                    run.maxInstrsPerWarp};
    std::shared_ptr<TraceEntry> e;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto &slot = traces_[key];
        if (!slot)
            slot = std::make_shared<TraceEntry>();
        e = slot;
    }
    bool miss = false;
    std::call_once(e->once, [&] {
        e->trace =
            std::make_shared<const DecodedTrace>(recordDecodedTrace(k, run));
        miss = true;
    });
    if (miss) {
        traceMisses_++;
        memoMetrics().traceMisses.add();
    } else {
        traceHits_++;
        memoMetrics().traceHits.add();
    }
    return e->trace;
}

std::shared_ptr<const ReplayDecode>
ExperimentCache::decode(const Kernel &k)
{
    AnalysisKey key{kernelFingerprint(k), k.numInstrs()};
    std::shared_ptr<DecodeEntry> e;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto &slot = decodes_[key];
        if (!slot)
            slot = std::make_shared<DecodeEntry>();
        e = slot;
    }
    bool miss = false;
    std::call_once(e->once, [&] {
        auto bundle = analyses(k);
        e->decode = std::make_shared<const ReplayDecode>(
            k, &bundle->reachingDefs);
        miss = true;
    });
    if (miss) {
        decodeMisses_++;
        memoMetrics().decodeMisses.add();
    } else {
        decodeHits_++;
        memoMetrics().decodeHits.add();
    }
    return e->decode;
}

void
ExperimentCache::clear()
{
    std::lock_guard<std::mutex> lk(mu_);
    baseline_.clear();
    analyses_.clear();
    traces_.clear();
    decodes_.clear();
}

std::size_t
ExperimentCache::entryCount() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return baseline_.size() + analyses_.size() + traces_.size() +
        decodes_.size();
}

ExperimentCache::Stats
ExperimentCache::stats() const
{
    Stats s;
    s.baselineHits = baselineHits_.load();
    s.baselineMisses = baselineMisses_.load();
    s.analysisHits = analysisHits_.load();
    s.analysisMisses = analysisMisses_.load();
    s.traceHits = traceHits_.load();
    s.traceMisses = traceMisses_.load();
    s.decodeHits = decodeHits_.load();
    s.decodeMisses = decodeMisses_.load();
    return s;
}

ExperimentCache &
globalExperimentCache()
{
    static ExperimentCache cache;
    return cache;
}

} // namespace rfh
