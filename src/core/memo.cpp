#include "core/memo.h"

#include <cstdio>

#include "core/diskcache.h"
#include "core/metrics.h"
#include "core/serialize.h"

namespace rfh {

namespace {

/** Registry mirror of the cache counters (one-time registration). */
struct MemoMetrics
{
    Counter &baselineHits = globalMetrics().counter("memo.baseline.hits");
    Counter &baselineMisses =
        globalMetrics().counter("memo.baseline.misses");
    Counter &analysisHits = globalMetrics().counter("memo.analysis.hits");
    Counter &analysisMisses =
        globalMetrics().counter("memo.analysis.misses");
    Counter &traceHits = globalMetrics().counter("memo.trace.hits");
    Counter &traceMisses = globalMetrics().counter("memo.trace.misses");
    Counter &decodeHits = globalMetrics().counter("memo.decode.hits");
    Counter &decodeMisses =
        globalMetrics().counter("memo.decode.misses");
};

MemoMetrics &
memoMetrics()
{
    static MemoMetrics m;
    return m;
}

/** FNV-1a 64-bit. */
class Fnv
{
  public:
    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; i++) {
            h_ ^= (v >> (8 * i)) & 0xff;
            h_ *= 0x100000001b3ull;
        }
    }

    void
    mix(const std::string &s)
    {
        mix(s.size());
        for (char c : s) {
            h_ ^= static_cast<unsigned char>(c);
            h_ *= 0x100000001b3ull;
        }
    }

    std::uint64_t
    value() const
    {
        return h_;
    }

  private:
    std::uint64_t h_ = 0xcbf29ce484222325ull;
};

/**
 * Disk-cache key strings. The key embeds every input the entry depends
 * on (the structural fingerprint plus the run parameters); the cache
 * stores the full string in the entry header, so a 64-bit filename
 * collision can never serve the wrong entry.
 */
std::string
diskKey(const char *kind, std::uint64_t fp, int numInstrs, int numWarps,
        std::uint64_t maxInstrs)
{
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "%s:fp=%016llx:n=%d:warps=%d:cap=%llu", kind,
                  static_cast<unsigned long long>(fp), numInstrs, numWarps,
                  static_cast<unsigned long long>(maxInstrs));
    return buf;
}

} // namespace

std::uint64_t
kernelFingerprint(const Kernel &k)
{
    Fnv f;
    f.mix(k.name);
    f.mix(k.blocks.size());
    for (const auto &bb : k.blocks) {
        f.mix(bb.instrs.size());
        for (const Instruction &in : bb.instrs) {
            f.mix(static_cast<std::uint64_t>(in.op));
            f.mix(in.dst ? *in.dst : 0xffu);
            f.mix(static_cast<std::uint64_t>(in.numSrcs));
            for (int s = 0; s < in.numSrcs; s++) {
                const SrcOperand &src = in.srcs[s];
                f.mix(src.isReg ? 1u : 0u);
                f.mix(src.isReg ? src.reg : src.imm);
            }
            f.mix(in.pred ? *in.pred : 0xffu);
            f.mix(static_cast<std::uint64_t>(
                static_cast<std::int64_t>(in.branchTarget)));
            f.mix(in.wide ? 1u : 0u);
            f.mix(in.memOffset);
        }
    }
    return f.value();
}

const AccessCounts &
ExperimentCache::baseline(const Kernel &k, const RunConfig &run)
{
    BaselineKey key{kernelFingerprint(k), k.numInstrs(), run.numWarps,
                    run.maxInstrsPerWarp};
    std::shared_ptr<BaselineEntry> e;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto &slot = baseline_[key];
        if (!slot)
            slot = std::make_shared<BaselineEntry>();
        e = slot;
    }
    bool miss = false;
    std::call_once(e->once, [&] {
        miss = true;
        DiskCache *dc = diskCache();
        std::string dkey;
        if (dc) {
            dkey = diskKey("baseline", std::get<0>(key), std::get<1>(key),
                           std::get<2>(key), std::get<3>(key));
            std::string payload;
            if (dc->load(dkey, payload)) {
                ByteReader r(payload);
                AccessCounts c = deserializeAccessCounts(r);
                if (r.ok() && r.atEnd()) {
                    e->counts = c;
                    return;
                }
            }
        }
        e->counts = runBaseline(k, run);
        if (dc) {
            ByteWriter w;
            serializeAccessCounts(w, e->counts);
            dc->store(dkey, w.bytes());
        }
    });
    if (miss) {
        baselineMisses_++;
        memoMetrics().baselineMisses.add();
    } else {
        baselineHits_++;
        memoMetrics().baselineHits.add();
    }
    return e->counts;
}

std::shared_ptr<const AnalysisBundle>
ExperimentCache::analyses(const Kernel &k)
{
    AnalysisKey key{kernelFingerprint(k), k.numInstrs()};
    std::shared_ptr<AnalysisEntry> e;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto &slot = analyses_[key];
        if (!slot)
            slot = std::make_shared<AnalysisEntry>();
        e = slot;
    }
    bool miss = false;
    std::call_once(e->once, [&] {
        miss = true;
        DiskCache *dc = diskCache();
        std::string dkey;
        if (dc) {
            dkey = diskKey("analysis", key.first, key.second, 0, 0);
            std::string payload;
            if (dc->load(dkey, payload)) {
                ByteReader r(payload);
                auto bundle = std::make_shared<const AnalysisBundle>(r);
                if (r.ok() && r.atEnd()) {
                    e->bundle = std::move(bundle);
                    return;
                }
            }
        }
        e->bundle = std::make_shared<const AnalysisBundle>(k);
        if (dc) {
            ByteWriter w;
            e->bundle->serialize(w);
            dc->store(dkey, w.bytes());
        }
    });
    if (miss) {
        analysisMisses_++;
        memoMetrics().analysisMisses.add();
    } else {
        analysisHits_++;
        memoMetrics().analysisHits.add();
    }
    return e->bundle;
}

std::shared_ptr<const DecodedTrace>
ExperimentCache::trace(const Kernel &k, const RunConfig &run)
{
    BaselineKey key{kernelFingerprint(k), k.numInstrs(), run.numWarps,
                    run.maxInstrsPerWarp};
    std::shared_ptr<TraceEntry> e;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto &slot = traces_[key];
        if (!slot)
            slot = std::make_shared<TraceEntry>();
        e = slot;
    }
    bool miss = false;
    std::call_once(e->once, [&] {
        miss = true;
        DiskCache *dc = diskCache();
        std::string dkey;
        if (dc) {
            dkey = diskKey("trace", std::get<0>(key), std::get<1>(key),
                           std::get<2>(key), std::get<3>(key));
            std::string payload;
            if (dc->load(dkey, payload)) {
                ByteReader r(payload);
                DecodedTrace t = deserializeDecodedTrace(r);
                if (r.ok() && r.atEnd()) {
                    e->trace = std::make_shared<const DecodedTrace>(
                        std::move(t));
                    return;
                }
            }
        }
        e->trace =
            std::make_shared<const DecodedTrace>(recordDecodedTrace(k, run));
        if (dc) {
            ByteWriter w;
            serializeDecodedTrace(w, *e->trace);
            dc->store(dkey, w.bytes());
        }
    });
    if (miss) {
        traceMisses_++;
        memoMetrics().traceMisses.add();
    } else {
        traceHits_++;
        memoMetrics().traceHits.add();
    }
    return e->trace;
}

std::shared_ptr<const ReplayDecode>
ExperimentCache::decode(const Kernel &k)
{
    AnalysisKey key{kernelFingerprint(k), k.numInstrs()};
    std::shared_ptr<DecodeEntry> e;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto &slot = decodes_[key];
        if (!slot)
            slot = std::make_shared<DecodeEntry>();
        e = slot;
    }
    bool miss = false;
    std::call_once(e->once, [&] {
        auto bundle = analyses(k);
        e->decode = std::make_shared<const ReplayDecode>(
            k, &bundle->reachingDefs);
        miss = true;
    });
    if (miss) {
        decodeMisses_++;
        memoMetrics().decodeMisses.add();
    } else {
        decodeHits_++;
        memoMetrics().decodeHits.add();
    }
    return e->decode;
}

void
ExperimentCache::clear()
{
    std::lock_guard<std::mutex> lk(mu_);
    baseline_.clear();
    analyses_.clear();
    traces_.clear();
    decodes_.clear();
}

std::size_t
ExperimentCache::entryCount() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return baseline_.size() + analyses_.size() + traces_.size() +
        decodes_.size();
}

ExperimentCache::Stats
ExperimentCache::stats() const
{
    Stats s;
    s.baselineHits = baselineHits_.load();
    s.baselineMisses = baselineMisses_.load();
    s.analysisHits = analysisHits_.load();
    s.analysisMisses = analysisMisses_.load();
    s.traceHits = traceHits_.load();
    s.traceMisses = traceMisses_.load();
    s.decodeHits = decodeHits_.load();
    s.decodeMisses = decodeMisses_.load();
    return s;
}

ExperimentCache &
globalExperimentCache()
{
    static ExperimentCache cache;
    return cache;
}

} // namespace rfh
