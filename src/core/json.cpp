#include "core/json.h"

#include <cstdio>

#include "core/memo.h"

namespace rfh {

void
JsonWriter::separator()
{
    if (afterKey_) {
        afterKey_ = false;
        return;
    }
    if (!needComma_.empty()) {
        if (needComma_.back())
            out_ += ",";
        needComma_.back() = true;
    }
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

JsonWriter &
JsonWriter::beginObject()
{
    separator();
    out_ += "{";
    needComma_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    out_ += "}";
    needComma_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separator();
    out_ += "[";
    needComma_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    out_ += "]";
    needComma_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    separator();
    out_ += "\"" + escape(k) + "\":";
    afterKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separator();
    out_ += "\"" + escape(v) + "\"";
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    separator();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separator();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    separator();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separator();
    out_ += v ? "true" : "false";
    return *this;
}

void
writeJson(JsonWriter &w, const AccessCounts &counts)
{
    w.beginObject();
    for (Level level : {Level::MRF, Level::ORF, Level::LRF}) {
        std::string name(levelName(level));
        w.key(name);
        w.beginObject();
        w.key("reads").value(counts.totalReads(level));
        w.key("writes").value(counts.totalWrites(level));
        w.key("sharedReads").value(
            counts.reads[static_cast<int>(level)][
                static_cast<int>(Datapath::SHARED)]);
        w.key("sharedWrites").value(
            counts.writes[static_cast<int>(level)][
                static_cast<int>(Datapath::SHARED)]);
        w.endObject();
    }
    w.key("writebackReads").value(counts.wbReads);
    w.key("writebackWrites").value(counts.wbWrites);
    w.key("instructions").value(counts.instructions);
    w.key("deschedules").value(counts.deschedules);
    w.endObject();
}

void
writeJson(JsonWriter &w, const RunOutcome &outcome)
{
    w.beginObject();
    w.key("ok").value(outcome.ok());
    if (!outcome.ok())
        w.key("error").value(outcome.error);
    w.key("energyPJ").value(outcome.energyPJ);
    w.key("baselineEnergyPJ").value(outcome.baselineEnergyPJ);
    w.key("normalizedEnergy").value(outcome.normalizedEnergy());
    w.key("accesses");
    writeJson(w, outcome.counts);
    w.key("allocation");
    w.beginObject();
    w.key("strands").value(outcome.alloc.strands);
    w.key("valueInstances").value(outcome.alloc.valueInstances);
    w.key("readInstances").value(outcome.alloc.readInstances);
    w.key("lrfValues").value(outcome.alloc.lrfValues);
    w.key("orfValuesFull").value(outcome.alloc.orfValuesFull);
    w.key("orfValuesPartial").value(outcome.alloc.orfValuesPartial);
    w.key("orfReadsFull").value(outcome.alloc.orfReadsFull);
    w.key("orfReadsPartial").value(outcome.alloc.orfReadsPartial);
    w.key("mrfWritesElided").value(outcome.alloc.mrfWritesElided);
    w.endObject();
    w.endObject();
}

std::string
sweepToJson(const std::vector<SweepPoint> &points)
{
    JsonWriter w;
    w.beginArray();
    for (const SweepPoint &pt : points) {
        w.beginObject();
        w.key("scheme").value(std::string(schemeName(pt.scheme)));
        w.key("entries").value(pt.entries);
        w.key("normalizedEnergy").value(
            pt.outcome.normalizedEnergy());
        w.endObject();
    }
    w.endArray();
    return w.str();
}

std::string
sweepTimingsToJson(const std::vector<SweepPoint> &points,
                   const SweepTiming &timing)
{
    JsonWriter w;
    w.beginObject();
    w.key("wallSec").value(timing.wallSec);
    w.key("cpuSec").value(timing.cpuSec);
    w.key("threads").value(timing.threads);
    w.key("speedup").value(timing.speedup());
    // Process-wide memoization counters (monotonic): how much of the
    // analyze/trace work the sweep served from cache.
    ExperimentCache::Stats cs = globalExperimentCache().stats();
    w.key("cache");
    w.beginObject();
    w.key("baselineHits").value(cs.baselineHits);
    w.key("baselineMisses").value(cs.baselineMisses);
    w.key("analysisHits").value(cs.analysisHits);
    w.key("analysisMisses").value(cs.analysisMisses);
    w.key("traceHits").value(cs.traceHits);
    w.key("traceMisses").value(cs.traceMisses);
    w.endObject();
    w.key("points");
    w.beginArray();
    for (const SweepPoint &pt : points) {
        w.beginObject();
        w.key("scheme").value(std::string(schemeName(pt.scheme)));
        w.key("entries").value(pt.entries);
        w.key("cpuSec").value(pt.cpuSec);
        w.key("analyzeSec").value(pt.outcome.phases.analyzeSec);
        w.key("traceSec").value(pt.outcome.phases.traceSec);
        w.key("allocateSec").value(pt.outcome.phases.allocateSec);
        w.key("executeSec").value(pt.outcome.phases.executeSec);
        w.key("dynInstrs").value(pt.outcome.phases.dynInstrs);
        w.key("instrPerSec").value(pt.outcome.phases.instrPerSec());
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
outcomeToJson(const RunOutcome &outcome)
{
    JsonWriter w;
    writeJson(w, outcome);
    return w.str();
}

} // namespace rfh
