#include "core/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "core/memo.h"

namespace rfh {

void
JsonWriter::separator()
{
    if (afterKey_) {
        afterKey_ = false;
        return;
    }
    if (!needComma_.empty()) {
        if (needComma_.back())
            out_ += ",";
        needComma_.back() = true;
    }
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

JsonWriter &
JsonWriter::beginObject()
{
    separator();
    out_ += "{";
    needComma_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    out_ += "}";
    needComma_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separator();
    out_ += "[";
    needComma_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    out_ += "]";
    needComma_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    separator();
    out_ += '"';
    out_ += escape(k);
    out_ += "\":";
    afterKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separator();
    out_ += '"';
    out_ += escape(v);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    separator();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separator();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    separator();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separator();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::rawValue(const std::string &json)
{
    separator();
    out_ += json;
    return *this;
}

void
writeJson(JsonWriter &w, const AccessCounts &counts)
{
    w.beginObject();
    for (Level level : {Level::MRF, Level::ORF, Level::LRF}) {
        std::string name(levelName(level));
        w.key(name);
        w.beginObject();
        w.key("reads").value(counts.totalReads(level));
        w.key("writes").value(counts.totalWrites(level));
        w.key("sharedReads").value(
            counts.reads[static_cast<int>(level)][
                static_cast<int>(Datapath::SHARED)]);
        w.key("sharedWrites").value(
            counts.writes[static_cast<int>(level)][
                static_cast<int>(Datapath::SHARED)]);
        w.endObject();
    }
    w.key("writebackReads").value(counts.wbReads);
    w.key("writebackWrites").value(counts.wbWrites);
    w.key("instructions").value(counts.instructions);
    w.key("deschedules").value(counts.deschedules);
    w.endObject();
}

void
writeJson(JsonWriter &w, const RunOutcome &outcome)
{
    w.beginObject();
    w.key("ok").value(outcome.ok());
    if (!outcome.ok())
        w.key("error").value(outcome.error);
    w.key("energyPJ").value(outcome.energyPJ);
    w.key("baselineEnergyPJ").value(outcome.baselineEnergyPJ);
    w.key("normalizedEnergy").value(outcome.normalizedEnergy());
    w.key("accesses");
    writeJson(w, outcome.counts);
    w.key("allocation");
    w.beginObject();
    w.key("strands").value(outcome.alloc.strands);
    w.key("valueInstances").value(outcome.alloc.valueInstances);
    w.key("readInstances").value(outcome.alloc.readInstances);
    w.key("lrfValues").value(outcome.alloc.lrfValues);
    w.key("orfValuesFull").value(outcome.alloc.orfValuesFull);
    w.key("orfValuesPartial").value(outcome.alloc.orfValuesPartial);
    w.key("orfReadsFull").value(outcome.alloc.orfReadsFull);
    w.key("orfReadsPartial").value(outcome.alloc.orfReadsPartial);
    w.key("mrfWritesElided").value(outcome.alloc.mrfWritesElided);
    w.endObject();
    // Emitted only when the cycle-level pipeline ran: the oracle,
    // loadgen, and golden tests byte-compare outcome JSON, so a run
    // without perf must serialise exactly as before.
    if (outcome.hasPerf) {
        w.key("perf");
        w.beginObject();
        w.key("cycles").value(outcome.perf.cycles);
        w.key("instructions").value(outcome.perf.issued);
        w.key("ipc").value(outcome.perf.ipc());
        w.key("swaps").value(outcome.perf.swaps);
        w.key("bankConflicts").value(outcome.perf.bankConflicts);
        w.key("stalls");
        w.beginObject();
        w.key("scoreboard").value(outcome.perf.stalls.scoreboard);
        w.key("collector").value(outcome.perf.stalls.collector);
        w.key("execBusy").value(outcome.perf.stalls.execBusy);
        w.key("swap").value(outcome.perf.stalls.swap);
        w.key("drain").value(outcome.perf.stalls.drain);
        w.endObject();
        w.endObject();
    }
    w.endObject();
}

std::string
sweepToJson(const std::vector<SweepPoint> &points)
{
    JsonWriter w;
    w.beginArray();
    for (const SweepPoint &pt : points) {
        w.beginObject();
        w.key("scheme").value(std::string(schemeName(pt.scheme)));
        w.key("entries").value(pt.entries);
        w.key("normalizedEnergy").value(
            pt.outcome.normalizedEnergy());
        w.endObject();
    }
    w.endArray();
    return w.str();
}

std::string
sweepTimingsToJson(const std::vector<SweepPoint> &points,
                   const SweepTiming &timing)
{
    JsonWriter w;
    w.beginObject();
    w.key("wallSec").value(timing.wallSec);
    w.key("cpuSec").value(timing.cpuSec);
    w.key("threads").value(timing.threads);
    w.key("speedup").value(timing.speedup());
    // Process-wide memoization counters (monotonic): how much of the
    // analyze/trace work the sweep served from cache.
    ExperimentCache::Stats cs = globalExperimentCache().stats();
    w.key("cache");
    w.beginObject();
    w.key("baselineHits").value(cs.baselineHits);
    w.key("baselineMisses").value(cs.baselineMisses);
    w.key("analysisHits").value(cs.analysisHits);
    w.key("analysisMisses").value(cs.analysisMisses);
    w.key("traceHits").value(cs.traceHits);
    w.key("traceMisses").value(cs.traceMisses);
    w.endObject();
    w.key("points");
    w.beginArray();
    for (const SweepPoint &pt : points) {
        w.beginObject();
        w.key("scheme").value(std::string(schemeName(pt.scheme)));
        w.key("entries").value(pt.entries);
        w.key("cpuSec").value(pt.cpuSec);
        w.key("analyzeSec").value(pt.outcome.phases.analyzeSec);
        w.key("traceSec").value(pt.outcome.phases.traceSec);
        w.key("allocateSec").value(pt.outcome.phases.allocateSec);
        w.key("executeSec").value(pt.outcome.phases.executeSec);
        w.key("dynInstrs").value(pt.outcome.phases.dynInstrs);
        w.key("instrPerSec").value(pt.outcome.phases.instrPerSec());
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
outcomeToJson(const RunOutcome &outcome)
{
    JsonWriter w;
    writeJson(w, outcome);
    return w.str();
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (type != Type::OBJECT)
        return nullptr;
    for (const auto &[k, v] : object)
        if (k == key)
            return &v;
    return nullptr;
}

double
JsonValue::numberOr(const std::string &key, double fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isNumber() ? v->number : fallback;
}

std::string
JsonValue::stringOr(const std::string &key,
                    const std::string &fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isString() ? v->string : fallback;
}

bool
JsonValue::boolOr(const std::string &key, bool fallback) const
{
    const JsonValue *v = find(key);
    return v && v->type == Type::BOOL ? v->boolean : fallback;
}

namespace {

/** Recursive-descent JSON parser over a string_view. */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    JsonParseResult
    parse()
    {
        JsonParseResult r;
        skipWs();
        if (!parseValue(r.value)) {
            r.error = "offset " + std::to_string(pos_) + ": " + error_;
            return r;
        }
        skipWs();
        if (pos_ != text_.size()) {
            r.error = "offset " + std::to_string(pos_) +
                      ": trailing characters after document";
            return r;
        }
        r.ok = true;
        return r;
    }

  private:
    bool
    fail(const std::string &msg)
    {
        if (error_.empty())
            error_ = msg;
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            pos_++;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            pos_++;
            return true;
        }
        return false;
    }

    bool
    consumeWord(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (depth_ > kMaxDepth)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"':
            out.type = JsonValue::Type::STRING;
            return parseString(out.string);
          case 't':
            out.type = JsonValue::Type::BOOL;
            out.boolean = true;
            return consumeWord("true") || fail("invalid literal");
          case 'f':
            out.type = JsonValue::Type::BOOL;
            out.boolean = false;
            return consumeWord("false") || fail("invalid literal");
          case 'n':
            out.type = JsonValue::Type::NUL;
            return consumeWord("null") || fail("invalid literal");
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        out.type = JsonValue::Type::OBJECT;
        depth_++;
        pos_++;  // '{'
        skipWs();
        if (consume('}')) {
            depth_--;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            if (!parseString(key))
                return false;
            skipWs();
            if (!consume(':'))
                return fail("expected ':' after object key");
            skipWs();
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.object.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}')) {
                depth_--;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.type = JsonValue::Type::ARRAY;
        depth_++;
        pos_++;  // '['
        skipWs();
        if (consume(']')) {
            depth_--;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.array.push_back(std::move(v));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']')) {
                depth_--;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseString(std::string &out)
    {
        pos_++;  // '"'
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; i++) {
                    char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("invalid \\u escape");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail("invalid escape character");
            }
        }
        return fail("unterminated string");
    }

    static void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    bool
    parseNumber(JsonValue &out)
    {
        std::size_t start = pos_;
        if (consume('-')) {
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            pos_++;
        if (pos_ == start)
            return fail("expected a value");
        std::string num(text_.substr(start, pos_ - start));
        char *end = nullptr;
        out.number = std::strtod(num.c_str(), &end);
        if (end != num.c_str() + num.size())
            return fail("invalid number");
        out.type = JsonValue::Type::NUMBER;
        return true;
    }

    static constexpr int kMaxDepth = 128;

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    std::string error_;
};

} // namespace

JsonParseResult
parseJson(std::string_view text)
{
    return JsonParser(text).parse();
}

} // namespace rfh
