#include "core/benchdiff.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "core/report.h"

namespace rfh {

std::string_view
benchDeltaName(BenchDeltaKind k)
{
    switch (k) {
      case BenchDeltaKind::UNCHANGED: return "ok";
      case BenchDeltaKind::IMPROVED: return "improved";
      case BenchDeltaKind::REGRESSED: return "REGRESSED";
      case BenchDeltaKind::ADDED: return "added";
      case BenchDeltaKind::REMOVED: return "removed";
    }
    return "?";
}

namespace {

/** google-benchmark output nested inside a BENCH_<n>.json snapshot. */
void
collectMicrobenchmarks(const JsonValue &micro,
                       std::vector<BenchEntry> &out)
{
    const JsonValue *benchmarks = micro.find("benchmarks");
    if (!benchmarks || !benchmarks->isArray())
        return;
    // Repeated runs (--benchmark_repetitions) are the noise-robust
    // form: when aggregate rows are present, compare only the median
    // of each benchmark, stripping the "_median" suffix so the rows
    // pair against single-shot names from older snapshots, and drop
    // the per-repetition and mean/stddev/cv rows.
    bool hasAggregates = false;
    for (const JsonValue &b : benchmarks->array) {
        if (b.stringOr("run_type", "") == "aggregate") {
            hasAggregates = true;
            break;
        }
    }
    for (const JsonValue &b : benchmarks->array) {
        std::string name = b.stringOr("name", "");
        if (name.empty())
            continue;
        if (hasAggregates) {
            if (b.stringOr("aggregate_name", "") != "median")
                continue;
            const std::string_view suffix = "_median";
            if (name.size() > suffix.size() &&
                name.compare(name.size() - suffix.size(),
                             suffix.size(), suffix) == 0)
                name.erase(name.size() - suffix.size());
        }
        BenchEntry e;
        e.name = name;
        e.value = b.numberOr("real_time", 0.0);
        e.unit = b.stringOr("time_unit", "ns");
        e.higherIsBetter = false;
        out.push_back(std::move(e));
    }
}

/** Engine-timing section of a BENCH_<n>.json snapshot. */
void
collectFig13(const JsonValue &fig13, std::vector<BenchEntry> &out)
{
    if (const JsonValue *v = fig13.find("wallSec");
        v && v->isNumber())
        out.push_back({"fig13/wallSec", v->number, "sec", false});
    if (const JsonValue *v = fig13.find("instrPerSec");
        v && v->isNumber())
        out.push_back({"fig13/instrPerSec", v->number, "instr/s", true});
}

/** "benchmarks" array of an rfh-manifest-v1 document. */
void
collectManifest(const JsonValue &doc, std::vector<BenchEntry> &out)
{
    const JsonValue *benchmarks = doc.find("benchmarks");
    if (!benchmarks || !benchmarks->isArray())
        return;
    for (const JsonValue &b : benchmarks->array) {
        BenchEntry e;
        e.name = b.stringOr("name", "");
        if (e.name.empty())
            continue;
        e.value = b.numberOr("value", 0.0);
        e.unit = b.stringOr("unit", "");
        const JsonValue *h = b.find("higherIsBetter");
        e.higherIsBetter =
            h && h->type == JsonValue::Type::BOOL && h->boolean;
        out.push_back(std::move(e));
    }
}

} // namespace

std::vector<BenchEntry>
benchEntriesFromJson(const JsonValue &doc, std::string *error)
{
    std::vector<BenchEntry> out;
    if (!doc.isObject()) {
        if (error)
            *error = "snapshot is not a JSON object";
        return out;
    }
    if (doc.stringOr("schema", "") == "rfh-manifest-v1") {
        collectManifest(doc, out);
        if (out.empty() && error)
            *error = "manifest has no benchmarks array";
        return out;
    }
    if (const JsonValue *micro = doc.find("microbenchmarks"))
        collectMicrobenchmarks(*micro, out);
    if (const JsonValue *fig13 = doc.find("fig13"))
        collectFig13(*fig13, out);
    if (out.empty() && error)
        *error = "unrecognised snapshot format (expected BENCH_<n>.json "
                 "or rfh-manifest-v1)";
    return out;
}

BenchDiff
diffBenchmarks(const std::vector<BenchEntry> &oldEntries,
               const std::vector<BenchEntry> &newEntries,
               double threshold)
{
    std::map<std::string, const BenchEntry *> olds;
    for (const BenchEntry &e : oldEntries)
        olds.emplace(e.name, &e);

    BenchDiff diff;
    for (const BenchEntry &e : newEntries) {
        BenchDiffRow row;
        row.name = e.name;
        row.unit = e.unit;
        row.newValue = e.value;
        auto it = olds.find(e.name);
        if (it == olds.end()) {
            row.kind = BenchDeltaKind::ADDED;
            diff.rows.push_back(std::move(row));
            continue;
        }
        const BenchEntry &o = *it->second;
        olds.erase(it);
        row.oldValue = o.value;
        if (o.value != 0.0)
            row.deltaFrac = (e.value - o.value) / o.value;
        // "Worse" means slower (higher) for time-like entries and
        // lower for throughput-like entries.
        double worse = e.higherIsBetter ? -row.deltaFrac : row.deltaFrac;
        if (worse > threshold) {
            row.kind = BenchDeltaKind::REGRESSED;
            diff.regressed++;
        } else if (worse < -threshold) {
            row.kind = BenchDeltaKind::IMPROVED;
            diff.improved++;
        } else {
            row.kind = BenchDeltaKind::UNCHANGED;
        }
        diff.rows.push_back(std::move(row));
    }
    // Entries only the old snapshot has, in its order.
    for (const BenchEntry &e : oldEntries) {
        if (!olds.count(e.name))
            continue;
        BenchDiffRow row;
        row.name = e.name;
        row.unit = e.unit;
        row.oldValue = e.value;
        row.kind = BenchDeltaKind::REMOVED;
        diff.rows.push_back(std::move(row));
    }
    return diff;
}

namespace {

std::string
cell(double v, const std::string &unit)
{
    if (v == 0.0)
        return "-";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4g %s", v, unit.c_str());
    return buf;
}

} // namespace

std::string
renderBenchDiff(const BenchDiff &diff, double threshold)
{
    TextTable t({"benchmark", "old", "new", "delta", "status"});
    for (const BenchDiffRow &row : diff.rows) {
        std::string delta = "-";
        if (row.kind != BenchDeltaKind::ADDED &&
            row.kind != BenchDeltaKind::REMOVED) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%+.1f%%",
                          100.0 * row.deltaFrac);
            delta = buf;
        }
        t.addRow({row.name, cell(row.oldValue, row.unit),
                  cell(row.newValue, row.unit), delta,
                  std::string(benchDeltaName(row.kind))});
    }
    char summary[160];
    std::snprintf(summary, sizeof(summary),
                  "%d compared, %d improved, %d regressed "
                  "(threshold %.0f%%)\n",
                  static_cast<int>(diff.rows.size()), diff.improved,
                  diff.regressed, 100.0 * threshold);
    return t.str() + summary;
}

} // namespace rfh
