/**
 * @file
 * Design-space sweeps over the hierarchy size (the x-axes of
 * Figures 11, 12, and 13: entries per thread from 1 to 8).
 */

#ifndef RFH_CORE_SWEEP_H
#define RFH_CORE_SWEEP_H

#include <vector>

#include "core/experiment.h"

namespace rfh {

/** One point of an entries-per-thread sweep. */
struct SweepPoint
{
    Scheme scheme;
    int entries = 0;
    RunOutcome outcome;  ///< Aggregated over all workloads.
};

/**
 * Sweep @p schemes over entries 1..kMaxOrfEntries, aggregating across
 * all workloads. @p base supplies every other configuration knob.
 */
std::vector<SweepPoint> sweepEntries(const std::vector<Scheme> &schemes,
                                     const ExperimentConfig &base);

/** Aggregate flat-MRF counts over all workloads (for normalisation). */
AccessCounts aggregateBaselineCounts();

/**
 * @return the sweep point with the lowest normalised energy for
 * @p scheme, or nullptr if absent.
 */
const SweepPoint *bestPoint(const std::vector<SweepPoint> &points,
                            Scheme scheme);

} // namespace rfh

#endif // RFH_CORE_SWEEP_H
