/**
 * @file
 * Design-space sweeps over the hierarchy size (the x-axes of
 * Figures 11, 12, and 13: entries per thread from 1 to 8).
 *
 * The sweep engine fans the (scheme, entries, workload) grid out
 * across a thread pool and folds results back in deterministic grid /
 * registry order, so reports — including the serialised JSON — are
 * byte-identical for every thread count. RFH_THREADS=1 reproduces the
 * historical sequential path exactly.
 */

#ifndef RFH_CORE_SWEEP_H
#define RFH_CORE_SWEEP_H

#include <vector>

#include "core/experiment.h"
#include "core/parallel.h"
#include "core/timing.h"

namespace rfh {

/** One point of an entries-per-thread sweep. */
struct SweepPoint
{
    Scheme scheme;
    int entries = 0;
    RunOutcome outcome;  ///< Aggregated over all workloads.
    /**
     * Wall-clock spent on this point's cells, summed across the
     * workers that executed them (CPU time, not elapsed time).
     */
    double cpuSec = 0.0;
};

/** Engine-level timing of one sweep call. */
struct SweepTiming
{
    double wallSec = 0.0;  ///< Elapsed time of the whole sweep.
    double cpuSec = 0.0;   ///< Summed per-cell time across workers.
    int threads = 1;       ///< Pool size that executed the sweep.

    /** Parallel efficiency proxy: summed cell time / elapsed time. */
    double
    speedup() const
    {
        return wallSec > 0 ? cpuSec / wallSec : 0.0;
    }
};

/**
 * Sweep @p schemes over entries 1..kMaxOrfEntries, aggregating across
 * all workloads. @p base supplies every other configuration knob.
 *
 * @param pool pool to fan the grid out on (global pool when null).
 * @param timing optional out-param receiving engine timing.
 */
std::vector<SweepPoint> sweepEntries(const std::vector<Scheme> &schemes,
                                     const ExperimentConfig &base,
                                     ThreadPool *pool = nullptr,
                                     SweepTiming *timing = nullptr);

/**
 * Aggregate flat-MRF counts over all workloads (for normalisation).
 * Baseline runs are memoized, so repeated calls are free.
 */
AccessCounts aggregateBaselineCounts();

/**
 * @return the sweep point with the lowest normalised energy for
 * @p scheme, or nullptr if absent. Ties keep the earliest point (the
 * smallest entry count, given sweepEntries order).
 */
const SweepPoint *bestPoint(const std::vector<SweepPoint> &points,
                            Scheme scheme);

} // namespace rfh

#endif // RFH_CORE_SWEEP_H
