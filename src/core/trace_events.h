/**
 * @file
 * Chrome-trace profiling hooks: spans of engine phases and workloads,
 * serialised in the chrome://tracing / Perfetto `trace_events` JSON
 * format for flame-graph inspection.
 *
 * Recording is off by default and costs one relaxed atomic load per
 * span when disabled. Enable it programmatically (enable()) or by
 * pointing the RFH_TRACE_EVENTS environment variable at an output
 * path; harnesses and the rfhc CLI write the file on exit via
 * emitRunArtifacts() (core/manifest.h).
 *
 * Spans record as complete ("ph":"X") events with microsecond
 * timestamps relative to process start, one pid, and a small integer
 * tid assigned per recording thread — the parallel sweep's workers
 * show up as parallel tracks in the viewer.
 */

#ifndef RFH_CORE_TRACE_EVENTS_H
#define RFH_CORE_TRACE_EVENTS_H

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "core/timing.h"

namespace rfh {

/** One complete span (chrome trace "X" event). */
struct TraceEvent
{
    std::string name;
    std::string category;
    std::string args;  ///< Pre-rendered JSON object, may be empty.
    int tid = 0;
    double startUs = 0.0;
    double durUs = 0.0;
};

/** Process-wide span collector (see file comment). */
class TraceEventLog
{
  public:
    /**
     * Whether spans are being recorded; TraceSpan checks this once at
     * construction, so toggling mid-span only affects later spans.
     */
    bool
    enabled() const noexcept
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void
    enable(bool on = true) noexcept
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /** Microseconds since process start (the span timebase). */
    static double nowUs();

    /** Record a complete span on the calling thread's track. */
    void add(std::string name, std::string category, double startUs,
             double durUs, std::string args = "");

    /** Recorded span count. */
    std::size_t size() const;

    /** Drop every recorded span (keeps the enabled flag). */
    void clear();

    /**
     * Serialise as a chrome://tracing document:
     * {"traceEvents":[...],"displayTimeUnit":"ms"}.
     */
    std::string toJson() const;

    /** Write toJson() to @p path; @return false on I/O failure. */
    bool writeTo(const std::string &path) const;

    /**
     * The global log. First use honours RFH_TRACE_EVENTS: when the
     * variable names a path, recording starts enabled and
     * traceEventsPath() returns that path.
     */
    static TraceEventLog &global();

  private:
    mutable std::mutex mu_;
    std::vector<TraceEvent> events_;
    std::atomic<bool> enabled_{false};
};

/** RFH_TRACE_EVENTS output path ("" when unset). */
const std::string &traceEventsPath();

/**
 * RAII span: records [construction, destruction) into the global log
 * when recording is enabled. @p args, when non-empty, must be a JSON
 * object literal (e.g. R"({"workload":"fft"})").
 */
class TraceSpan
{
  public:
    TraceSpan(std::string name, std::string category,
              std::string args = "")
    {
        if (!TraceEventLog::global().enabled())
            return;
        live_ = true;
        name_ = std::move(name);
        category_ = std::move(category);
        args_ = std::move(args);
        startUs_ = TraceEventLog::nowUs();
    }

    ~TraceSpan()
    {
        if (live_)
            TraceEventLog::global().add(
                std::move(name_), std::move(category_), startUs_,
                TraceEventLog::nowUs() - startUs_, std::move(args_));
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    bool live_ = false;
    std::string name_, category_, args_;
    double startUs_ = 0.0;
};

} // namespace rfh

#endif // RFH_CORE_TRACE_EVENTS_H
