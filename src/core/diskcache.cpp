#include "core/diskcache.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <vector>

#include "core/metrics.h"
#include "core/serialize.h"

namespace fs = std::filesystem;

namespace rfh {

namespace {

/** "RFHC" little-endian. */
constexpr std::uint32_t kMagic = 0x43484652u;

/** Entry filename suffix (everything else in the dir is ignored). */
constexpr const char *kSuffix = ".rfc";

/** Registry mirror of the cache counters (one-time registration). */
struct CacheMetrics
{
    Counter &hits = globalMetrics().counter("service.cache.disk_hits");
    Counter &misses = globalMetrics().counter("service.cache.disk_misses");
    Counter &writes = globalMetrics().counter("service.cache.disk_writes");
    Counter &writeErrors =
        globalMetrics().counter("service.cache.disk_write_errors");
    Counter &evictions =
        globalMetrics().counter("service.cache.disk_evictions");
    Counter &invalidated =
        globalMetrics().counter("service.cache.disk_invalidated");
    Counter &bytesRead =
        globalMetrics().counter("service.cache.disk_bytes_read");
    Counter &bytesWritten =
        globalMetrics().counter("service.cache.disk_bytes_written");
    Gauge &bytesStored = globalMetrics().gauge("service.cache.disk_bytes");
};

CacheMetrics &
cacheMetrics()
{
    static CacheMetrics m;
    return m;
}

/** FNV-1a 64-bit over raw bytes (payload checksum). */
std::uint64_t
fnv64(std::string_view bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Read a whole file; false on any error (open race, I/O). */
bool
readFile(const fs::path &p, std::string &out)
{
    std::ifstream f(p, std::ios::binary);
    if (!f)
        return false;
    std::string data((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
    if (f.bad())
        return false;
    out = std::move(data);
    return true;
}

} // namespace

DiskCache::DiskCache(const DiskCacheOptions &opts) : opts_(opts)
{
    std::error_code ec;
    fs::create_directories(opts_.dir, ec);
    usable_ = !opts_.dir.empty() && fs::is_directory(opts_.dir, ec);
    if (usable_) {
        std::lock_guard<std::mutex> lk(mu_);
        stats_.bytesStored = scanBytes();
        cacheMetrics().bytesStored.set(
            static_cast<double>(stats_.bytesStored));
    }
}

std::string
DiskCache::entryPath(const std::string &key) const
{
    char name[32];
    std::snprintf(name, sizeof name, "%016llx",
                  static_cast<unsigned long long>(fnv64(key)));
    return (fs::path(opts_.dir) / (std::string(name) + kSuffix)).string();
}

bool
DiskCache::load(const std::string &key, std::string &payload)
{
    if (!usable_)
        return false;
    std::lock_guard<std::mutex> lk(mu_);
    std::string path = entryPath(key);
    std::string raw;
    if (!readFile(path, raw)) {
        stats_.misses++;
        cacheMetrics().misses.add();
        return false;
    }
    ByteReader r(raw);
    std::uint32_t magic = r.u32();
    std::uint32_t version = r.u32();
    std::string storedKey = r.str();
    std::uint64_t checksum = r.u64();
    std::string body = r.str();
    bool valid = r.atEnd() && magic == kMagic && version == opts_.version &&
        storedKey == key && checksum == fnv64(body);
    if (!valid) {
        // Torn, truncated, corrupt, stale-version, or hash-collision
        // entry: drop it and recompute.
        invalidate(path);
        stats_.misses++;
        cacheMetrics().misses.add();
        return false;
    }
    // Touch the LRU clock so hot entries survive eviction.
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
    stats_.hits++;
    stats_.bytesRead += body.size();
    cacheMetrics().hits.add();
    cacheMetrics().bytesRead.add(body.size());
    payload = std::move(body);
    return true;
}

void
DiskCache::store(const std::string &key, std::string_view payload)
{
    if (!usable_)
        return;
    std::lock_guard<std::mutex> lk(mu_);
    ByteWriter w;
    w.u32(kMagic);
    w.u32(opts_.version);
    w.str(key);
    w.u64(fnv64(payload));
    w.str(payload);
    const std::string &entry = w.bytes();

    // Write-then-rename: the entry never exists half-written under its
    // final name, and concurrent same-key writers (deterministic
    // content) just race renames harmlessly.
    fs::path tmp = fs::path(opts_.dir) /
        ("tmp-" + std::to_string(static_cast<unsigned long long>(
                      reinterpret_cast<std::uintptr_t>(this))) +
         "-" + std::to_string(tmpSeq_++));
    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        f.write(entry.data(),
                static_cast<std::streamsize>(entry.size()));
        f.flush();
        if (!f) {
            stats_.writeErrors++;
            cacheMetrics().writeErrors.add();
            std::error_code ec;
            fs::remove(tmp, ec);
            return;
        }
    }
    std::error_code ec;
    fs::rename(tmp, entryPath(key), ec);
    if (ec) {
        stats_.writeErrors++;
        cacheMetrics().writeErrors.add();
        fs::remove(tmp, ec);
        return;
    }
    stats_.writes++;
    stats_.bytesWritten += payload.size();
    stats_.bytesStored += entry.size();
    cacheMetrics().writes.add();
    cacheMetrics().bytesWritten.add(payload.size());
    if (opts_.maxBytes != 0 && stats_.bytesStored > opts_.maxBytes)
        enforceCap();
    cacheMetrics().bytesStored.set(static_cast<double>(stats_.bytesStored));
}

void
DiskCache::invalidate(const std::string &path)
{
    std::error_code ec;
    std::uint64_t sz = fs::file_size(path, ec);
    if (fs::remove(path, ec) && !ec) {
        stats_.invalidated++;
        cacheMetrics().invalidated.add();
        stats_.bytesStored -= std::min(stats_.bytesStored, sz);
        cacheMetrics().bytesStored.set(
            static_cast<double>(stats_.bytesStored));
    }
}

void
DiskCache::enforceCap()
{
    // Rescan for an exact figure (same-key overwrites make the running
    // total an overestimate), then drop oldest-first to ~90% of cap.
    stats_.bytesStored = scanBytes();
    if (stats_.bytesStored <= opts_.maxBytes)
        return;
    struct Ent
    {
        fs::path path;
        fs::file_time_type mtime;
        std::uint64_t size;
    };
    std::vector<Ent> ents;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(opts_.dir, ec)) {
        if (de.path().extension() != kSuffix)
            continue;
        std::error_code fec;
        Ent e{de.path(), fs::last_write_time(de.path(), fec),
              fs::file_size(de.path(), fec)};
        if (!fec)
            ents.push_back(std::move(e));
    }
    std::sort(ents.begin(), ents.end(),
              [](const Ent &a, const Ent &b) { return a.mtime < b.mtime; });
    std::uint64_t target = opts_.maxBytes - opts_.maxBytes / 10;
    for (const Ent &e : ents) {
        if (stats_.bytesStored <= target)
            break;
        std::error_code rec;
        // A reader that opened this entry before the unlink keeps a
        // valid descriptor; one that loses the race just misses.
        if (fs::remove(e.path, rec) && !rec) {
            stats_.evictions++;
            cacheMetrics().evictions.add();
            stats_.bytesStored -= std::min(stats_.bytesStored, e.size);
        }
    }
}

std::uint64_t
DiskCache::scanBytes()
{
    std::uint64_t total = 0;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(opts_.dir, ec)) {
        if (de.path().extension() != kSuffix)
            continue;
        std::error_code fec;
        std::uint64_t sz = fs::file_size(de.path(), fec);
        if (!fec)
            total += sz;
    }
    return total;
}

DiskCacheStats
DiskCache::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

} // namespace rfh
