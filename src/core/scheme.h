/**
 * @file
 * Pluggable register-file scheme registry.
 *
 * A *scheme* is one register-file organisation competing on the
 * workload suite: the paper's three (flat baseline, hardware-managed
 * RFC, compiler-managed ORF/LRF hierarchy, each in two- and
 * three-level form) plus any number of competing designs from the
 * literature (compiler-assisted RF caching, shared-memory register
 * spilling, power-gated banks, ...).
 *
 * Every engine layer that used to switch on a hard-coded enum —
 * runScheme(), the sweep engine, the replay batcher, the service
 * protocol, the differential fuzz oracle, the leaderboard — now asks
 * the SchemeRegistry instead. Registering a backend is therefore all
 * it takes to make a new design runnable from the CLI and the service,
 * sweepable, energy-accounted, differentially fuzzed against the
 * baseline, and ranked on the cross-scheme leaderboard. The authoring
 * contract is documented in docs/schemes.md.
 */

#ifndef RFH_CORE_SCHEME_H
#define RFH_CORE_SCHEME_H

#include <cstdint>
#include <deque>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "compiler/allocation.h"
#include "sim/access_counters.h"

namespace rfh {

struct ExperimentConfig;
struct Workload;
struct Kernel;
struct AnalysisBundle;
struct DecodedTrace;
struct ReplayDecode;
class EnergyModel;

/**
 * Registry-backed scheme handle: a small value type identifying one
 * registered register-file organisation. Copyable, comparable, and
 * storable everywhere the old `enum class Scheme` was; the behaviour
 * behind the handle lives in the registered SchemeBackend.
 *
 * The five paper organisations have fixed ids and keep their historic
 * spellings (`Scheme::BASELINE`, ...); backends registered later get
 * the next free id, in registration order.
 */
class Scheme
{
  public:
    constexpr Scheme() = default;

    /** Wrap a raw registry id (normally obtained from the registry). */
    constexpr explicit Scheme(std::uint8_t id) : id_(id) {}

    /** Registry index of this scheme. */
    constexpr std::uint8_t
    id() const
    {
        return id_;
    }

    friend constexpr bool
    operator==(Scheme a, Scheme b)
    {
        return a.id_ == b.id_;
    }

    friend constexpr bool
    operator!=(Scheme a, Scheme b)
    {
        return a.id_ != b.id_;
    }

    friend constexpr bool
    operator<(Scheme a, Scheme b)
    {
        return a.id_ < b.id_;
    }

    // The paper's organisations, registered first with fixed ids.
    static const Scheme BASELINE;        ///< Flat single-level MRF.
    static const Scheme HW_TWO_LEVEL;    ///< RFC + MRF, hardware managed.
    static const Scheme HW_THREE_LEVEL;  ///< LRF + RFC + MRF, hardware managed.
    static const Scheme SW_TWO_LEVEL;    ///< ORF + MRF, compiler managed.
    static const Scheme SW_THREE_LEVEL;  ///< LRF + ORF + MRF, compiler managed.

  private:
    std::uint8_t id_ = 0;
};

inline const Scheme Scheme::BASELINE{0};
inline const Scheme Scheme::HW_TWO_LEVEL{1};
inline const Scheme Scheme::HW_THREE_LEVEL{2};
inline const Scheme Scheme::SW_TWO_LEVEL{3};
inline const Scheme Scheme::SW_THREE_LEVEL{4};

/**
 * Capability flags of one backend: which shared engine facilities the
 * scheme consumes and which oracle checks apply to it. The engine
 * layers branch on these flags instead of on scheme identity, so a
 * new backend describes itself once and every layer adapts.
 */
struct SchemeCaps
{
    /** Needs the memoized CFG/liveness/reaching-defs bundle. */
    bool usesAnalyses = true;
    /**
     * Has a replay-engine path consuming the pre-decoded dynamic
     * stream (DecodedTrace). Schemes without one are executed the
     * same way under both engines, and the oracle's direct-vs-replay
     * pair degenerates to a determinism check.
     */
    bool usesTrace = true;
    /** Replay wants the shared per-kernel ReplayDecode table. */
    bool wantsDecode = false;
    /**
     * Runs the compile phase: allocate() annotates a private kernel
     * copy, AllocStats are reported, and the fuzz oracle additionally
     * checks the paper's static allocation invariants
     * (checkAllocationInvariants) against the annotated kernel.
     */
    bool usesAllocator = false;
    /** SIMT executors exist; the oracle runs the SIMT pairs. */
    bool hasSimt = false;
    /**
     * Hardware-managed caching scheme: skipped by the oracle when
     * OracleOptions::checkHwSchemes is off (`rfhc fuzz --no-hw`).
     */
    bool hwManaged = false;
    /**
     * The entries-per-thread axis changes results. When false the
     * leaderboard evaluates the scheme at a single point instead of
     * sweeping entries 1..kMaxOrfEntries.
     */
    bool sweepsEntries = true;
    /**
     * The backend implements makePipelineAccounting(), so the
     * cycle-level SM pipeline (sim/pipeline.h) can run it: `rfhc run
     * --perf` produces IPC and a stall breakdown, and the oracle
     * cross-checks pipeline counts against the functional path.
     */
    bool pipelined = false;
};

/** ctx.engine values after AUTO resolution (mirrors ExecEngine). */
enum class ResolvedEngine
{
    DIRECT,  ///< Value-verifying functional interpretation.
    REPLAY,  ///< Pre-decoded stream replay (counting only).
};

/**
 * Everything a backend may consume during its execute phase. Pointers
 * are owned by the caller (runScheme) and valid for the duration of
 * the simulate() call; optional inputs are null exactly when the
 * backend's capability flags say it does not use them.
 */
struct SchemeRunContext
{
    /** Workload being run (kernel, run config, registry name). */
    const Workload *workload = nullptr;
    /** Full experiment configuration. */
    const ExperimentConfig *cfg = nullptr;
    /** Resolved execution engine for this run. */
    ResolvedEngine engine = ResolvedEngine::DIRECT;
    /**
     * Kernel to execute: the allocator-annotated private copy when
     * caps.usesAllocator, else the workload's pristine kernel.
     */
    const Kernel *kernel = nullptr;
    /** Analyses bundle (null unless caps.usesAnalyses). */
    const AnalysisBundle *analyses = nullptr;
    /** Pre-decoded dynamic stream (null unless replaying with caps.usesTrace). */
    const DecodedTrace *trace = nullptr;
    /** Shared per-kernel decode (null unless caps.wantsDecode applies). */
    const ReplayDecode *decode = nullptr;
    /** Memoized flat-MRF counts of this workload; never null. */
    const AccessCounts *baseline = nullptr;
};

/** Outcome of one backend execute phase. */
struct SchemeSimResult
{
    AccessCounts counts;
    /** Empty on success; else the first verification failure. */
    std::string error;
};

class PipelineAccounting;

/**
 * Inputs of SchemeBackend::makePipelineAccounting. Pointer lifetimes
 * match SchemeRunContext: owned by the caller and valid while the
 * returned accounting (and the pipeline run driving it) lives.
 */
struct PipelineBuildContext
{
    /**
     * Kernel to account: the allocator-annotated private copy when
     * caps.usesAllocator, else the pristine kernel.
     */
    const Kernel *kernel = nullptr;
    /** Full experiment configuration. */
    const ExperimentConfig *cfg = nullptr;
    /** Analyses bundle (null unless caps.usesAnalyses). */
    const AnalysisBundle *analyses = nullptr;
    /** Shared per-kernel decode of the pristine kernel; may be null. */
    const ReplayDecode *decode = nullptr;
    /** Accumulator every warp accountant adds into; never null. */
    AccessCounts *counts = nullptr;
};

/**
 * One register-file organisation: the narrow interface every engine
 * layer dispatches through. The phases mirror runScheme():
 *
 *   allocate (compile)  ->  simulate (execute)  ->  account energy
 *
 * Implementations must be deterministic (identical inputs produce
 * identical counts and stats, bit-for-bit — results are memoized,
 * diffed by the fuzz oracle, and byte-compared across the service
 * boundary) and thread-safe: one backend instance is shared by every
 * concurrent run.
 */
class SchemeBackend
{
  public:
    virtual ~SchemeBackend() = default;

    /**
     * The allocator options implied by @p cfg for this scheme. The
     * default builds them from the configuration knobs with
     * useLRF = false; allocator-driven schemes override the LRF
     * selection.
     */
    virtual AllocOptions allocOptions(const ExperimentConfig &cfg) const;

    /**
     * Compile phase: annotate @p k in place and return allocation
     * statistics. Only called when caps().usesAllocator; the default
     * is a no-op.
     */
    virtual AllocStats allocate(Kernel &k, const ExperimentConfig &cfg,
                                const AnalysisBundle *analyses) const;

    /** Execute phase: produce the access counts of one run. */
    virtual SchemeSimResult simulate(const SchemeRunContext &ctx) const = 0;

    /**
     * Price the LRF as split per-operand-slot banks when building the
     * energy model for @p cfg. Default false.
     */
    virtual bool splitLrfEnergy(const ExperimentConfig &cfg) const;

    /**
     * Energy accounting: total energy of @p c under @p em (pJ). The
     * default charges the standard per-access + wire energy; backends
     * with traffic outside the three register-file levels (e.g.
     * shared-memory spill space) or structural savings (e.g.
     * power-gated banks) override this.
     */
    virtual double accountEnergyPJ(const SchemeRunContext &ctx,
                                   const AccessCounts &c,
                                   const EnergyModel &em) const;

    /**
     * Scheme-specific conservation laws, checked by the fuzz oracle:
     * given this scheme's counts and the flat-MRF baseline counts of
     * the same run, return one message per violated law (empty when
     * clean). The default returns no checks; every serious backend
     * should state at least a read-conservation law so the oracle can
     * catch dropped or double-counted accesses.
     */
    virtual std::vector<std::string>
    checkConservation(const AccessCounts &c,
                      const AccessCounts &baseline) const;

    /**
     * Build the per-warp accounting the cycle-level pipeline
     * (sim/pipeline.h) drives at issue. Must replicate simulate()'s
     * counting exactly — the verify oracle enforces identical counts
     * per scheme and warp count. Only called when caps().pipelined;
     * the default returns null.
     */
    virtual std::unique_ptr<PipelineAccounting>
    makePipelineAccounting(const PipelineBuildContext &ctx) const;
};

/** Immutable registration record of one scheme. */
struct SchemeInfo
{
    /** Registry handle. */
    Scheme scheme;
    /** Wire token, e.g. "sw3" — stable, used by the service protocol. */
    std::string token;
    /** Display name used in figures and tables, e.g. "SW LRF". */
    std::string display;
    /** Oracle check-name tag (historically "base" for the baseline). */
    std::string tag;
    /** One-line description for docs and --help output. */
    std::string summary;
    /** One of the paper's five organisations. */
    bool paper = false;
    SchemeCaps caps;
    std::unique_ptr<SchemeBackend> backend;
};

/** Registration descriptor (everything but the backend). */
struct SchemeSpec
{
    std::string token;
    std::string display;
    /** Oracle tag; defaults to the token when empty. */
    std::string tag;
    std::string summary;
    bool paper = false;
    SchemeCaps caps;
};

/**
 * Process-wide scheme registry. The five paper schemes and the
 * in-tree competing backends are registered on first access
 * (registerBuiltinSchemes); further backends may register at static
 * initialisation through RFH_REGISTER_SCHEME or at runtime through
 * add(). Lookups are thread-safe; registration must not race with
 * concurrent lookups of the scheme being added.
 */
class SchemeRegistry
{
  public:
    /** The singleton (builtins registered on first call). */
    static SchemeRegistry &instance();

    /**
     * Register a backend. Ids are assigned in registration order, so
     * enumeration — and every JSON document derived from it — is
     * deterministic for a given binary.
     *
     * @throws std::invalid_argument when the token is empty or
     *         already registered (duplicate registration is always a
     *         programming error, and tests assert it is caught).
     */
    Scheme add(SchemeSpec spec, std::unique_ptr<SchemeBackend> backend);

    /** @return the record of @p s, or null for an unregistered id. */
    const SchemeInfo *find(Scheme s) const;

    /** @return the record with wire token @p token, or null. */
    const SchemeInfo *findToken(std::string_view token) const;

    /**
     * Every registration record, in registration order. Pointers stay
     * valid for the life of the process (records are append-only and
     * never move).
     */
    std::vector<const SchemeInfo *> schemes() const;

    /** Number of registered schemes. */
    std::size_t size() const;

    /**
     * Comma-joined wire tokens in registration order — the "valid
     * schemes" list quoted by service errors and usage text.
     */
    std::string tokenList() const;

  private:
    SchemeRegistry();

    mutable std::shared_mutex mu_;
    /** Deque: stable addresses across add() (callers hold SchemeInfo*). */
    std::deque<SchemeInfo> infos_;
};

/**
 * Register the in-tree backends: the five paper schemes (fixed ids
 * 0..4, matching the Scheme constants) followed by the competing
 * designs (ccrfc, regdem, greener). Defined in
 * src/sim/schemes_builtin.cpp; called once by
 * SchemeRegistry::instance(). In-tree backends are added here rather
 * than via RFH_REGISTER_SCHEME because static-library object files
 * without referenced symbols may be dropped by the linker, taking
 * their self-registration with them.
 */
void registerBuiltinSchemes(SchemeRegistry &registry);

/** Static-initialisation registrar behind RFH_REGISTER_SCHEME. */
struct SchemeRegistrar
{
    SchemeRegistrar(SchemeSpec spec,
                    std::unique_ptr<SchemeBackend> (*factory)())
    {
        SchemeRegistry::instance().add(std::move(spec), factory());
    }
};

/**
 * Register @p factory's backend under @p spec at static
 * initialisation. For translation units that are certain to be
 * linked (executables, OBJECT libraries); in-tree library backends
 * use registerBuiltinSchemes() instead (see there).
 */
#define RFH_REGISTER_SCHEME(ident, spec, factory) \
    static ::rfh::SchemeRegistrar ident { spec, factory }

} // namespace rfh

#endif // RFH_CORE_SCHEME_H
