#include "core/manifest.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/memo.h"
#include "core/metrics.h"
#include "core/parallel.h"
#include "core/trace_events.h"

namespace rfh {

std::string
buildGitSha()
{
    if (const char *env = std::getenv("RFH_GIT_SHA"))
        return env;
#ifdef RFH_GIT_SHA
    return RFH_GIT_SHA;
#else
    return "unknown";
#endif
}

std::string
manifestToJson(const ManifestInfo &m)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value("rfh-manifest-v1");
    w.key("tool").value(m.tool);
    w.key("gitSha").value(buildGitSha());
    w.key("threads").value(m.timing.threads > 0 ? m.timing.threads
                                                : defaultThreadCount());
    w.key("engine").value(m.engine);
    w.key("config");
    w.beginObject();
    for (const auto &[k, v] : m.config)
        w.key(k).value(v);
    w.endObject();
    w.key("timing");
    w.beginObject();
    w.key("wallSec").value(m.timing.wallSec);
    w.key("cpuSec").value(m.timing.cpuSec);
    w.key("speedup").value(m.timing.speedup());
    w.endObject();
    w.key("phases");
    w.beginObject();
    w.key("analyzeSec").value(m.phases.analyzeSec);
    w.key("traceSec").value(m.phases.traceSec);
    w.key("allocateSec").value(m.phases.allocateSec);
    w.key("executeSec").value(m.phases.executeSec);
    w.key("dynInstrs").value(m.phases.dynInstrs);
    w.key("instrPerSec").value(m.phases.instrPerSec());
    w.endObject();
    ExperimentCache::Stats cs = globalExperimentCache().stats();
    w.key("cache");
    w.beginObject();
    w.key("baselineHits").value(cs.baselineHits);
    w.key("baselineMisses").value(cs.baselineMisses);
    w.key("analysisHits").value(cs.analysisHits);
    w.key("analysisMisses").value(cs.analysisMisses);
    w.key("traceHits").value(cs.traceHits);
    w.key("traceMisses").value(cs.traceMisses);
    w.endObject();
    w.key("metrics").rawValue(globalMetrics().toJson());
    w.key("benchmarks");
    w.beginArray();
    for (const BenchEntry &b : m.benchmarks) {
        w.beginObject();
        w.key("name").value(b.name);
        w.key("value").value(b.value);
        w.key("unit").value(b.unit);
        w.key("higherIsBetter").value(b.higherIsBetter);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

bool
writeManifest(const std::string &path, const ManifestInfo &m)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << manifestToJson(m) << "\n";
    return static_cast<bool>(out);
}

const std::string &
manifestPath()
{
    static const std::string path = [] {
        const char *p = std::getenv("RFH_MANIFEST");
        return std::string(p ? p : "");
    }();
    return path;
}

void
emitRunArtifacts(const ManifestInfo &m)
{
    if (!manifestPath().empty()) {
        if (writeManifest(manifestPath(), m))
            std::fprintf(stderr, "manifest: %s\n",
                         manifestPath().c_str());
        else
            std::fprintf(stderr, "manifest: cannot write %s\n",
                         manifestPath().c_str());
    }
    if (!traceEventsPath().empty()) {
        if (TraceEventLog::global().writeTo(traceEventsPath()))
            std::fprintf(stderr, "trace events: %s\n",
                         traceEventsPath().c_str());
        else
            std::fprintf(stderr, "trace events: cannot write %s\n",
                         traceEventsPath().c_str());
    }
}

} // namespace rfh
