#include "core/serialize.h"

#include "sim/access_counters.h"
#include "sim/trace.h"

namespace rfh {

void
serializeAccessCounts(ByteWriter &w, const AccessCounts &c)
{
    for (int l = 0; l < 3; l++)
        for (int d = 0; d < 2; d++)
            w.u64(c.reads[l][d]);
    for (int l = 0; l < 3; l++)
        for (int d = 0; d < 2; d++)
            w.u64(c.writes[l][d]);
    w.u64(c.wbReads);
    w.u64(c.wbWrites);
    w.u64(c.instructions);
    w.u64(c.deschedules);
}

AccessCounts
deserializeAccessCounts(ByteReader &r)
{
    AccessCounts c;
    for (int l = 0; l < 3; l++)
        for (int d = 0; d < 2; d++)
            c.reads[l][d] = r.u64();
    for (int l = 0; l < 3; l++)
        for (int d = 0; d < 2; d++)
            c.writes[l][d] = r.u64();
    c.wbReads = r.u64();
    c.wbWrites = r.u64();
    c.instructions = r.u64();
    c.deschedules = r.u64();
    return c;
}

void
serializeDecodedTrace(ByteWriter &w, const DecodedTrace &t)
{
    w.vec(t.lin);
    w.vec(t.flags);
    w.vec(t.warpBegin);
    w.vec(t.warpEndLin);
    w.vec(t.execWords);
    w.vec(t.takenWords);
    w.vec(t.llWords);
    w.u64(t.executedInstrs);
    w.u64(t.takenBranches);
}

DecodedTrace
deserializeDecodedTrace(ByteReader &r)
{
    DecodedTrace t;
    t.lin = r.vec<std::int32_t>();
    t.flags = r.vec<std::uint8_t>();
    t.warpBegin = r.vec<std::uint32_t>();
    t.warpEndLin = r.vec<std::int32_t>();
    t.execWords = r.vec<std::uint64_t>();
    t.takenWords = r.vec<std::uint64_t>();
    t.llWords = r.vec<std::uint64_t>();
    t.executedInstrs = r.u64();
    t.takenBranches = r.u64();
    return t;
}

} // namespace rfh
