/**
 * @file
 * Minimal JSON emission for machine-readable results (the library's
 * equivalent of a stats dump): access counts, run outcomes, and sweep
 * series serialise to stable, ordered JSON for downstream tooling.
 */

#ifndef RFH_CORE_JSON_H
#define RFH_CORE_JSON_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/sweep.h"

namespace rfh {

/** Tiny ordered JSON writer (objects, arrays, scalars). */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();
    /** Emit a key inside an object (must be followed by a value). */
    JsonWriter &key(const std::string &k);
    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);

    const std::string &
    str() const
    {
        return out_;
    }

  private:
    void separator();
    static std::string escape(const std::string &s);

    std::string out_;
    std::vector<bool> needComma_;
    bool afterKey_ = false;
};

/** Serialise access counts (per-level reads/writes, overheads). */
void writeJson(JsonWriter &w, const AccessCounts &counts);

/** Serialise a run outcome (counts, energy, allocation stats). */
void writeJson(JsonWriter &w, const RunOutcome &outcome);

/** Serialise an entries sweep (Figure 13 style series). */
std::string sweepToJson(const std::vector<SweepPoint> &points);

/**
 * Serialise engine timing: overall wall/CPU seconds and thread count,
 * plus per-sweep-point per-phase (analyze/allocate/execute) stats.
 *
 * Deliberately a separate document from sweepToJson: result JSON is
 * byte-identical across thread counts, timing JSON is not.
 */
std::string sweepTimingsToJson(const std::vector<SweepPoint> &points,
                               const SweepTiming &timing);

/** One-call helper: outcome as a JSON document. */
std::string outcomeToJson(const RunOutcome &outcome);

} // namespace rfh

#endif // RFH_CORE_JSON_H
