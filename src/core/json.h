/**
 * @file
 * Minimal JSON support for machine-readable results: a stable ordered
 * writer (access counts, run outcomes, sweep series) plus a small
 * recursive-descent parser used by the observability tooling — the
 * `rfhc bench-diff` snapshot comparator and the manifest round-trip
 * tests read documents back with parseJson().
 */

#ifndef RFH_CORE_JSON_H
#define RFH_CORE_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "core/sweep.h"

namespace rfh {

/** Tiny ordered JSON writer (objects, arrays, scalars). */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();
    /** Emit a key inside an object (must be followed by a value). */
    JsonWriter &key(const std::string &k);
    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);
    /** Splice @p json in verbatim (must be one complete JSON value). */
    JsonWriter &rawValue(const std::string &json);

    const std::string &
    str() const
    {
        return out_;
    }

  private:
    void separator();
    static std::string escape(const std::string &s);

    std::string out_;
    std::vector<bool> needComma_;
    bool afterKey_ = false;
};

/** Serialise access counts (per-level reads/writes, overheads). */
void writeJson(JsonWriter &w, const AccessCounts &counts);

/** Serialise a run outcome (counts, energy, allocation stats). */
void writeJson(JsonWriter &w, const RunOutcome &outcome);

/** Serialise an entries sweep (Figure 13 style series). */
std::string sweepToJson(const std::vector<SweepPoint> &points);

/**
 * Serialise engine timing: overall wall/CPU seconds and thread count,
 * plus per-sweep-point per-phase (analyze/allocate/execute) stats.
 *
 * Deliberately a separate document from sweepToJson: result JSON is
 * byte-identical across thread counts, timing JSON is not.
 */
std::string sweepTimingsToJson(const std::vector<SweepPoint> &points,
                               const SweepTiming &timing);

/** One-call helper: outcome as a JSON document. */
std::string outcomeToJson(const RunOutcome &outcome);

/**
 * A parsed JSON document node. Objects preserve source key order;
 * numbers are kept as double (adequate for every metric and timing
 * value the tooling reads back).
 */
struct JsonValue
{
    enum class Type { NUL, BOOL, NUMBER, STRING, ARRAY, OBJECT };

    Type type = Type::NUL;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    bool
    isObject() const
    {
        return type == Type::OBJECT;
    }

    bool
    isArray() const
    {
        return type == Type::ARRAY;
    }

    bool
    isNumber() const
    {
        return type == Type::NUMBER;
    }

    bool
    isString() const
    {
        return type == Type::STRING;
    }

    /** Object member by key, or nullptr (also when not an object). */
    const JsonValue *find(const std::string &key) const;

    /** find(key)->number, or @p fallback when absent / not a number. */
    double numberOr(const std::string &key, double fallback) const;

    /** find(key)->string, or @p fallback when absent / not a string. */
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;

    /** find(key)->boolean, or @p fallback when absent / not a bool. */
    bool boolOr(const std::string &key, bool fallback) const;
};

/** Outcome of parseJson: the document, or a positioned error. */
struct JsonParseResult
{
    bool ok = false;
    std::string error;  ///< "offset N: message" when !ok.
    JsonValue value;
};

/**
 * Parse one complete JSON document (trailing whitespace allowed,
 * trailing garbage is an error). Supports the full scalar syntax
 * including \\uXXXX escapes (encoded as UTF-8).
 */
JsonParseResult parseJson(std::string_view text);

} // namespace rfh

#endif // RFH_CORE_JSON_H
