#include "core/leaderboard.h"

#include <algorithm>

#include "core/corpus.h"
#include "core/json.h"

namespace rfh {

void
attachCorpusBands(Leaderboard &lb, const CorpusResult &corpus)
{
    for (LeaderboardRow &row : lb.rows) {
        // Merge the row's (token, entries) cell across every profile:
        // the population behind the band is the whole corpus, and the
        // exact merge makes the result independent of profile order.
        StreamStat merged;
        for (const CorpusProfileStats &ps : corpus.profiles)
            for (const CorpusCellStats &cs : ps.cells)
                if (cs.schemeToken == row.token &&
                    cs.cell.entries == row.entries)
                    merged.merge(cs.energyRatio);
        if (merged.count() == 0)
            continue;
        row.hasPopulation = true;
        row.populationMean = merged.mean();
        row.populationRuns = merged.count();
        row.populationBand = merged.bootstrapMeanBand(
            corpus.config.confidence, corpus.config.bootstrapResamples,
            corpus.config.seed);
    }
}

Leaderboard
runLeaderboard(const ExperimentConfig &base, ThreadPool *pool)
{
    Leaderboard lb;
    Stopwatch wall;

    // The energy sweep never pays for cycle-level timing: perf runs
    // once per scheme at its chosen entries point, below, not for
    // every grid cell.
    ExperimentConfig swcfg = base;
    swcfg.perf = false;

    std::vector<Scheme> swept;
    for (const SchemeInfo *si : SchemeRegistry::instance().schemes())
        if (si->caps.sweepsEntries)
            swept.push_back(si->scheme);
    std::vector<SweepPoint> points =
        sweepEntries(swept, swcfg, pool, &lb.timing);
    lb.baseline = aggregateBaselineCounts();

    for (const SchemeInfo *si : SchemeRegistry::instance().schemes()) {
        LeaderboardRow row;
        row.scheme = si->scheme;
        row.token = si->token;
        row.display = si->display;
        row.paper = si->paper;
        if (si->caps.sweepsEntries) {
            const SweepPoint *best = bestPoint(points, si->scheme);
            row.swept = true;
            row.entries = best->entries;
            row.outcome = best->outcome;
        } else {
            ExperimentConfig cfg = swcfg;
            cfg.scheme = si->scheme;
            row.entries = cfg.entries;
            row.outcome = runAllWorkloads(cfg, pool);
        }
        if (base.perf && si->caps.pipelined) {
            ExperimentConfig pc = base;
            pc.scheme = si->scheme;
            pc.entries = row.entries;
            for (const Workload &w : allWorkloads()) {
                SchemePipelineResult pr =
                    runSchemePipeline(w, pc, base.pipeline);
                if (!pr.ok()) {
                    if (!row.outcome.error.empty())
                        row.outcome.error += "; ";
                    row.outcome.error +=
                        w.name + ": pipeline: " + pr.error;
                    continue;
                }
                row.outcome.perf.add(pr.stats);
                row.outcome.hasPerf = true;
            }
        }
        row.breakdown =
            normalizeAccesses(row.outcome.counts, lb.baseline);
        lb.rows.push_back(std::move(row));
    }

    // Rank by ascending normalised energy; stable sort keeps registry
    // order on ties so the board is deterministic.
    std::stable_sort(lb.rows.begin(), lb.rows.end(),
                     [](const LeaderboardRow &a,
                        const LeaderboardRow &b) {
                         return a.outcome.normalizedEnergy() <
                             b.outcome.normalizedEnergy();
                     });
    lb.timing.wallSec = wall.elapsedSec();
    return lb;
}

std::string
renderLeaderboard(const Leaderboard &lb)
{
    bool perf = false;
    bool population = false;
    for (const LeaderboardRow &row : lb.rows) {
        perf |= row.outcome.hasPerf;
        population |= row.hasPopulation;
    }

    std::vector<std::string> head = {"Rank", "Scheme", "Token",
                                     "Entries", "Energy", "Saved",
                                     "Reads M/O/L", "Writes M/O/L"};
    if (population)
        head.push_back("Pop CI");
    if (perf) {
        head.push_back("IPC");
        head.push_back("Stall sb/cl/ex/sw/dr");
    }
    TextTable t(head);
    int rank = 0;
    for (const LeaderboardRow &row : lb.rows) {
        rank++;
        const AccessBreakdown &b = row.breakdown;
        std::vector<std::string> cells = {
            std::to_string(rank),
            row.display + (row.paper ? "" : " *"), row.token,
            row.swept ? std::to_string(row.entries)
                      : std::to_string(row.entries) + " (fixed)",
            fmt(row.outcome.normalizedEnergy(), 3),
            pct(1.0 - row.outcome.normalizedEnergy()),
            pct(b.mrfReads) + "/" + pct(b.orfReads) + "/" +
                pct(b.lrfReads),
            pct(b.mrfWrites) + "/" + pct(b.orfWrites) + "/" +
                pct(b.lrfWrites)};
        if (population) {
            cells.push_back(
                row.hasPopulation
                    ? fmt(row.populationMean, 3) + " [" +
                          fmt(row.populationBand.lo, 3) + "," +
                          fmt(row.populationBand.hi, 3) + "]"
                    : "-");
        }
        if (perf) {
            if (row.outcome.hasPerf) {
                const PipelineStats &p = row.outcome.perf;
                double c = p.cycles ? static_cast<double>(p.cycles)
                                    : 1.0;
                const PipelineStalls &s = p.stalls;
                cells.push_back(fmt(p.ipc(), 3));
                cells.push_back(pct(s.scoreboard / c) + "/" +
                                pct(s.collector / c) + "/" +
                                pct(s.execBusy / c) + "/" +
                                pct(s.swap / c) + "/" +
                                pct(s.drain / c));
            } else {
                cells.push_back("-");
                cells.push_back("-");
            }
        }
        t.addRow(cells);
    }
    std::string legend =
        "(* = contributed backend, not a paper scheme; "
        "M/O/L = MRF/ORF/LRF fraction of baseline)\n";
    if (population)
        legend += "(Pop CI = corpus population energy-ratio mean and "
                  "bootstrap confidence band at the row's entries "
                  "point)\n";
    if (perf)
        legend +=
            "(IPC over the workload suite; stalls as cycle fractions: "
            "sb=scoreboard cl=collector ex=exec-busy sw=swap "
            "dr=drain)\n";
    return t.str() + legend;
}

std::string
leaderboardToJson(const Leaderboard &lb)
{
    JsonWriter w;
    w.beginObject();
    w.key("rows");
    w.beginArray();
    int rank = 0;
    for (const LeaderboardRow &row : lb.rows) {
        rank++;
        const AccessBreakdown &b = row.breakdown;
        w.beginObject();
        w.key("rank").value(rank);
        w.key("scheme").value(row.token);
        w.key("display").value(row.display);
        w.key("paper").value(row.paper);
        w.key("swept").value(row.swept);
        w.key("entries").value(row.entries);
        w.key("energyPJ").value(row.outcome.energyPJ);
        w.key("baselineEnergyPJ")
            .value(row.outcome.baselineEnergyPJ);
        w.key("normalizedEnergy")
            .value(row.outcome.normalizedEnergy());
        w.key("reads");
        w.beginObject();
        w.key("mrf").value(b.mrfReads);
        w.key("orf").value(b.orfReads);
        w.key("lrf").value(b.lrfReads);
        w.endObject();
        w.key("writes");
        w.beginObject();
        w.key("mrf").value(b.mrfWrites);
        w.key("orf").value(b.orfWrites);
        w.key("lrf").value(b.lrfWrites);
        w.endObject();
        w.key("wbReads").value(row.outcome.counts.wbReads);
        w.key("wbWrites").value(row.outcome.counts.wbWrites);
        if (row.outcome.hasPerf) {
            const PipelineStats &p = row.outcome.perf;
            w.key("perf");
            w.beginObject();
            w.key("cycles").value(p.cycles);
            w.key("instructions").value(p.issued);
            w.key("ipc").value(p.ipc());
            w.key("swaps").value(p.swaps);
            w.key("bankConflicts").value(p.bankConflicts);
            w.key("stalls");
            w.beginObject();
            w.key("scoreboard").value(p.stalls.scoreboard);
            w.key("collector").value(p.stalls.collector);
            w.key("execBusy").value(p.stalls.execBusy);
            w.key("swap").value(p.stalls.swap);
            w.key("drain").value(p.stalls.drain);
            w.endObject();
            w.endObject();
        }
        if (row.hasPopulation) {
            w.key("population");
            w.beginObject();
            w.key("runs").value(row.populationRuns);
            w.key("mean").value(row.populationMean);
            w.key("lo").value(row.populationBand.lo);
            w.key("hi").value(row.populationBand.hi);
            w.endObject();
        }
        if (!row.outcome.ok())
            w.key("error").value(row.outcome.error);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace rfh
