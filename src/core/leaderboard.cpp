#include "core/leaderboard.h"

#include <algorithm>

#include "core/json.h"

namespace rfh {

Leaderboard
runLeaderboard(const ExperimentConfig &base, ThreadPool *pool)
{
    Leaderboard lb;
    Stopwatch wall;

    std::vector<Scheme> swept;
    for (const SchemeInfo *si : SchemeRegistry::instance().schemes())
        if (si->caps.sweepsEntries)
            swept.push_back(si->scheme);
    std::vector<SweepPoint> points =
        sweepEntries(swept, base, pool, &lb.timing);
    lb.baseline = aggregateBaselineCounts();

    for (const SchemeInfo *si : SchemeRegistry::instance().schemes()) {
        LeaderboardRow row;
        row.scheme = si->scheme;
        row.token = si->token;
        row.display = si->display;
        row.paper = si->paper;
        if (si->caps.sweepsEntries) {
            const SweepPoint *best = bestPoint(points, si->scheme);
            row.swept = true;
            row.entries = best->entries;
            row.outcome = best->outcome;
        } else {
            ExperimentConfig cfg = base;
            cfg.scheme = si->scheme;
            row.entries = cfg.entries;
            row.outcome = runAllWorkloads(cfg, pool);
        }
        row.breakdown =
            normalizeAccesses(row.outcome.counts, lb.baseline);
        lb.rows.push_back(std::move(row));
    }

    // Rank by ascending normalised energy; stable sort keeps registry
    // order on ties so the board is deterministic.
    std::stable_sort(lb.rows.begin(), lb.rows.end(),
                     [](const LeaderboardRow &a,
                        const LeaderboardRow &b) {
                         return a.outcome.normalizedEnergy() <
                             b.outcome.normalizedEnergy();
                     });
    lb.timing.wallSec = wall.elapsedSec();
    return lb;
}

std::string
renderLeaderboard(const Leaderboard &lb)
{
    TextTable t({"Rank", "Scheme", "Token", "Entries", "Energy",
                 "Saved", "Reads M/O/L", "Writes M/O/L"});
    int rank = 0;
    for (const LeaderboardRow &row : lb.rows) {
        rank++;
        const AccessBreakdown &b = row.breakdown;
        t.addRow({std::to_string(rank),
                  row.display + (row.paper ? "" : " *"), row.token,
                  row.swept ? std::to_string(row.entries)
                            : std::to_string(row.entries) + " (fixed)",
                  fmt(row.outcome.normalizedEnergy(), 3),
                  pct(1.0 - row.outcome.normalizedEnergy()),
                  pct(b.mrfReads) + "/" + pct(b.orfReads) + "/" +
                      pct(b.lrfReads),
                  pct(b.mrfWrites) + "/" + pct(b.orfWrites) + "/" +
                      pct(b.lrfWrites)});
    }
    return t.str() + "(* = contributed backend, not a paper scheme; "
                     "M/O/L = MRF/ORF/LRF fraction of baseline)\n";
}

std::string
leaderboardToJson(const Leaderboard &lb)
{
    JsonWriter w;
    w.beginObject();
    w.key("rows");
    w.beginArray();
    int rank = 0;
    for (const LeaderboardRow &row : lb.rows) {
        rank++;
        const AccessBreakdown &b = row.breakdown;
        w.beginObject();
        w.key("rank").value(rank);
        w.key("scheme").value(row.token);
        w.key("display").value(row.display);
        w.key("paper").value(row.paper);
        w.key("swept").value(row.swept);
        w.key("entries").value(row.entries);
        w.key("energyPJ").value(row.outcome.energyPJ);
        w.key("baselineEnergyPJ")
            .value(row.outcome.baselineEnergyPJ);
        w.key("normalizedEnergy")
            .value(row.outcome.normalizedEnergy());
        w.key("reads");
        w.beginObject();
        w.key("mrf").value(b.mrfReads);
        w.key("orf").value(b.orfReads);
        w.key("lrf").value(b.lrfReads);
        w.endObject();
        w.key("writes");
        w.beginObject();
        w.key("mrf").value(b.mrfWrites);
        w.key("orf").value(b.orfWrites);
        w.key("lrf").value(b.lrfWrites);
        w.endObject();
        w.key("wbReads").value(row.outcome.counts.wbReads);
        w.key("wbWrites").value(row.outcome.counts.wbWrites);
        if (!row.outcome.ok())
            w.key("error").value(row.outcome.error);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace rfh
