#include "core/parallel.h"

#include <cstdlib>

namespace rfh {

namespace {

/**
 * Set while this thread is executing a pool task. A nested
 * parallelFor from inside a task runs inline instead of queueing,
 * which both avoids deadlock (the pool runs one job at a time) and
 * keeps nested loops in deterministic index order.
 */
thread_local bool t_insideTask = false;

} // namespace

int
defaultThreadCount()
{
    if (const char *env = std::getenv("RFH_THREADS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0') {
            if (v < 1)
                return 1;
            if (v > 256)
                return 256;
            return static_cast<int>(v);
        }
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads)
    : threads_(threads > 0 ? threads : defaultThreadCount())
{
    // The calling thread participates in every job, so a pool of N
    // threads spawns N-1 workers.
    workers_.reserve(threads_ - 1);
    for (int i = 0; i < threads_ - 1; i++)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::parallelFor(int n, const std::function<void(int)> &fn)
{
    if (n <= 0)
        return;
    if (threads_ == 1 || n == 1 || t_insideTask) {
        // Exact sequential path: ascending order on this thread.
        for (int i = 0; i < n; i++)
            fn(i);
        return;
    }

    std::unique_lock<std::mutex> lk(mu_);
    // One job at a time; concurrent top-level callers queue here.
    done_.wait(lk, [&] { return job_ == nullptr; });
    job_ = &fn;
    jobSize_ = n;
    next_ = 0;
    pending_ = 0;
    firstError_ = nullptr;
    lk.unlock();
    wake_.notify_all();

    drainJob();

    lk.lock();
    done_.wait(lk, [&] { return next_ >= jobSize_ && pending_ == 0; });
    job_ = nullptr;
    std::exception_ptr err = firstError_;
    firstError_ = nullptr;
    lk.unlock();
    done_.notify_all();
    if (err)
        std::rethrow_exception(err);
}

void
ThreadPool::drainJob()
{
    for (;;) {
        const std::function<void(int)> *fn = nullptr;
        int i = -1;
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (!job_ || next_ >= jobSize_)
                return;
            i = next_++;
            pending_++;
            fn = job_;
        }
        t_insideTask = true;
        std::exception_ptr err;
        try {
            (*fn)(i);
        } catch (...) {
            err = std::current_exception();
        }
        t_insideTask = false;
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (err && !firstError_)
                firstError_ = err;
            pending_--;
            if (next_ >= jobSize_ && pending_ == 0)
                done_.notify_all();
        }
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(mu_);
            wake_.wait(lk, [&] {
                return stop_ || (job_ && next_ < jobSize_);
            });
            if (stop_)
                return;
        }
        drainJob();
    }
}

ThreadPool &
globalPool()
{
    static ThreadPool pool;
    return pool;
}

} // namespace rfh
