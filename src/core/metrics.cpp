#include "core/metrics.h"

#include <stdexcept>

#include "core/json.h"

namespace rfh {

int
metricsThreadShard()
{
    static std::atomic<int> next{0};
    thread_local int shard =
        next.fetch_add(1, std::memory_order_relaxed) &
        (kMetricShards - 1);
    return shard;
}

MetricsRegistry::Entry &
MetricsRegistry::lookup(std::string_view name, MetricSample::Kind kind)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        Entry e;
        e.kind = kind;
        switch (kind) {
          case MetricSample::Kind::COUNTER:
            e.counter = std::make_unique<Counter>();
            break;
          case MetricSample::Kind::GAUGE:
            e.gauge = std::make_unique<Gauge>();
            break;
          case MetricSample::Kind::TIMER:
            e.timer = std::make_unique<Timer>();
            break;
          case MetricSample::Kind::HISTOGRAM:
            e.histogram = std::make_unique<Histogram>();
            break;
        }
        it = entries_.emplace(std::string(name), std::move(e)).first;
    } else if (it->second.kind != kind) {
        throw std::logic_error("metric '" + std::string(name) +
                               "' registered with a different kind");
    }
    return it->second;
}

Counter &
MetricsRegistry::counter(std::string_view name)
{
    return *lookup(name, MetricSample::Kind::COUNTER).counter;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    return *lookup(name, MetricSample::Kind::GAUGE).gauge;
}

Timer &
MetricsRegistry::timer(std::string_view name)
{
    return *lookup(name, MetricSample::Kind::TIMER).timer;
}

Histogram &
MetricsRegistry::histogram(std::string_view name)
{
    return *lookup(name, MetricSample::Kind::HISTOGRAM).histogram;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lk(mu_);
    for (auto &[name, e] : entries_) {
        switch (e.kind) {
          case MetricSample::Kind::COUNTER: e.counter->reset(); break;
          case MetricSample::Kind::GAUGE: e.gauge->reset(); break;
          case MetricSample::Kind::TIMER: e.timer->reset(); break;
          case MetricSample::Kind::HISTOGRAM:
            e.histogram->reset();
            break;
        }
    }
}

std::vector<MetricSample>
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<MetricSample> out;
    out.reserve(entries_.size());
    for (const auto &[name, e] : entries_) {
        MetricSample s;
        s.name = name;
        s.kind = e.kind;
        switch (e.kind) {
          case MetricSample::Kind::COUNTER:
            s.count = e.counter->value();
            break;
          case MetricSample::Kind::GAUGE:
            s.number = e.gauge->value();
            break;
          case MetricSample::Kind::TIMER:
            s.number = e.timer->totalSec();
            s.count = e.timer->count();
            break;
          case MetricSample::Kind::HISTOGRAM:
            s.count = e.histogram->count();
            s.sum = e.histogram->sum();
            for (int b = 0; b < Histogram::kBuckets; b++) {
                std::uint64_t c = e.histogram->bucketCount(b);
                if (c)
                    s.buckets.emplace_back(1ull << b, c);
            }
            break;
        }
        out.push_back(std::move(s));
    }
    return out;
}

std::string
MetricsRegistry::toJson() const
{
    JsonWriter w;
    w.beginObject();
    for (const MetricSample &s : snapshot()) {
        w.key(s.name);
        switch (s.kind) {
          case MetricSample::Kind::COUNTER:
            w.value(s.count);
            break;
          case MetricSample::Kind::GAUGE:
            w.value(s.number);
            break;
          case MetricSample::Kind::TIMER:
            w.beginObject();
            w.key("totalSec").value(s.number);
            w.key("count").value(s.count);
            w.endObject();
            break;
          case MetricSample::Kind::HISTOGRAM:
            w.beginObject();
            w.key("count").value(s.count);
            w.key("sum").value(s.sum);
            w.key("buckets");
            w.beginArray();
            for (const auto &[le, c] : s.buckets) {
                w.beginObject();
                w.key("le").value(le);
                w.key("count").value(c);
                w.endObject();
            }
            w.endArray();
            w.endObject();
            break;
        }
    }
    w.endObject();
    return w.str();
}

MetricsRegistry &
globalMetrics()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace rfh
