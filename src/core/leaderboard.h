/**
 * @file
 * Cross-scheme leaderboard: every scheme in the SchemeRegistry run
 * over the full workload suite and ranked by normalised energy.
 *
 * Schemes whose capabilities advertise an entries axis
 * (SchemeCaps::sweepsEntries) are swept from 1 to kMaxOrfEntries and
 * enter the board at their best point; fixed-configuration schemes
 * (the flat baseline, power-gating variants) contribute one aggregate
 * point. The board is the competitive backbone of `rfhc compare` and
 * the leaderboard section of EXPERIMENTS.md: registering a new
 * backend is all it takes to appear in the ranking.
 */

#ifndef RFH_CORE_LEADERBOARD_H
#define RFH_CORE_LEADERBOARD_H

#include <string>
#include <vector>

#include "core/report.h"
#include "core/scheme.h"
#include "core/stats.h"
#include "core/sweep.h"

namespace rfh {

struct CorpusResult;

/** One ranked row of the cross-scheme leaderboard. */
struct LeaderboardRow
{
    Scheme scheme;
    /** Registry identity, copied so rows outlive registry locks. */
    std::string token;
    std::string display;
    /** One of the source paper's five organisations. */
    bool paper = false;
    /** The entries axis was swept; `entries` is the best point. */
    bool swept = false;
    /** Best (or fixed) entries-per-thread configuration. */
    int entries = 0;
    /** Aggregate outcome over every workload at `entries`. */
    RunOutcome outcome;
    /** Per-level accesses as fractions of the flat baseline. */
    AccessBreakdown breakdown;
    /**
     * Population energy-ratio statistics from a corpus run at this
     * row's entries point, merged across profiles (attachCorpusBands).
     * Valid when hasPopulation.
     */
    bool hasPopulation = false;
    double populationMean = 0.0;
    StatBand populationBand;
    std::uint64_t populationRuns = 0;
};

/** The ranked cross-scheme comparison. */
struct Leaderboard
{
    /** Rows by ascending normalised energy; ties keep registry order. */
    std::vector<LeaderboardRow> rows;
    /** Flat-MRF counts aggregated over all workloads. */
    AccessCounts baseline;
    /** Engine timing of the underlying sweep (observability only). */
    SweepTiming timing;
};

class ThreadPool;

/**
 * Run every registered scheme over the full workload suite and rank
 * the results. @p base supplies every non-swept configuration knob
 * (entries for fixed schemes, energy constants, engine override).
 * Deterministic for any thread count, like the sweep engine beneath.
 */
Leaderboard runLeaderboard(const ExperimentConfig &base = {},
                           ThreadPool *pool = nullptr);

/**
 * Annotate @p lb with population energy-ratio bands from @p corpus:
 * each row whose (token, entries) point has corpus cells gets the
 * profile-merged streaming stat's mean and bootstrap confidence band
 * (confidence and resample count from the corpus configuration). Rows
 * without a matching cell are left untouched.
 */
void attachCorpusBands(Leaderboard &lb, const CorpusResult &corpus);

/** Aligned text table of @p lb, one row per scheme. */
std::string renderLeaderboard(const Leaderboard &lb);

/**
 * Machine-readable leaderboard document (the EXPERIMENTS.md figure
 * format): ranked rows with energy, normalised energy, and the
 * per-level read/write breakdown as fractions of the baseline.
 */
std::string leaderboardToJson(const Leaderboard &lb);

} // namespace rfh

#endif // RFH_CORE_LEADERBOARD_H
