/**
 * @file
 * Reporting helpers: normalised access breakdowns and plain-text table
 * rendering for the benchmark harness.
 */

#ifndef RFH_CORE_REPORT_H
#define RFH_CORE_REPORT_H

#include <string>
#include <vector>

#include "core/sweep.h"
#include "sim/access_counters.h"

namespace rfh {

/**
 * Reads/writes per level as a fraction of the baseline totals
 * (the y-axes of Figures 11 and 12).
 */
struct AccessBreakdown
{
    double mrfReads = 0, orfReads = 0, lrfReads = 0;
    double mrfWrites = 0, orfWrites = 0, lrfWrites = 0;

    double
    totalReads() const
    {
        return mrfReads + orfReads + lrfReads;
    }

    double
    totalWrites() const
    {
        return mrfWrites + orfWrites + lrfWrites;
    }
};

/** Normalise @p counts against the flat-MRF @p baseline. */
AccessBreakdown normalizeAccesses(const AccessCounts &counts,
                                  const AccessCounts &baseline);

/** Minimal aligned-column text table. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns (two-space separator). */
    std::string str() const;

  private:
    std::vector<std::vector<std::string>> rows_;
};

/**
 * One-paragraph engine timing summary for the bench harnesses: wall
 * and summed-CPU seconds, thread count, effective speedup, and the
 * per-phase split. @p phases is the phase aggregate (e.g. summed over
 * sweep points or a runAllWorkloads outcome).
 */
std::string timingSummary(const SweepTiming &timing,
                          const PhaseTimes &phases);

/** Format @p v as a percentage with one decimal ("54.0%"). */
std::string pct(double v);

/** Format @p v with @p digits decimals. */
std::string fmt(double v, int digits = 2);

} // namespace rfh

#endif // RFH_CORE_REPORT_H
