/**
 * @file
 * Binary serialization primitives for the persistent compile cache.
 *
 * ByteWriter/ByteReader implement a tiny little-endian wire format —
 * fixed-width integers, length-prefixed strings and vectors — with no
 * schema evolution: the disk cache (core/diskcache.h) versions whole
 * entries, so a format change is a cache-version bump, never an
 * in-place migration. Serialization is exact: every analysis structure
 * round-trips to bit-identical contents, which is what lets a disk-hit
 * worker produce result JSON byte-identical to a cold computation
 * (tests/test_diskcache.cpp pins this).
 *
 * ByteReader is checked, not throwing: a read past the end sets a
 * sticky failure flag and returns zero values. Callers that parse
 * untrusted bytes (the disk cache validates a checksum first, so this
 * is defence in depth) must test ok() after deserializing.
 */

#ifndef RFH_CORE_SERIALIZE_H
#define RFH_CORE_SERIALIZE_H

#include <bitset>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace rfh {

struct AccessCounts;
struct DecodedTrace;

/** Append-only little-endian binary encoder. */
class ByteWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(static_cast<char>(v));
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; i++)
            buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; i++)
            buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    i32(std::int32_t v)
    {
        u32(static_cast<std::uint32_t>(v));
    }

    void
    i64(std::int64_t v)
    {
        u64(static_cast<std::uint64_t>(v));
    }

    void
    str(std::string_view s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        buf_.append(s.data(), s.size());
    }

    template <std::size_t N>
    void
    bits(const std::bitset<N> &b)
    {
        static_assert(N <= 64, "widen bits() for larger sets");
        u64(b.to_ullong());
    }

    /** Length-prefixed vector of integral elements. */
    template <typename T>
    void
    vec(const std::vector<T> &v)
    {
        u32(static_cast<std::uint32_t>(v.size()));
        for (const T &e : v)
            u64(static_cast<std::uint64_t>(e));
    }

    /** vector<bool> as one byte per element. */
    void
    boolVec(const std::vector<bool> &v)
    {
        u32(static_cast<std::uint32_t>(v.size()));
        for (bool b : v)
            u8(b ? 1 : 0);
    }

    const std::string &
    bytes() const
    {
        return buf_;
    }

    std::string
    take()
    {
        return std::move(buf_);
    }

  private:
    std::string buf_;
};

/** Checked sequential decoder over a byte buffer. */
class ByteReader
{
  public:
    explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

    std::uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return static_cast<std::uint8_t>(bytes_[off_++]);
    }

    std::uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; i++)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(bytes_[off_ + i]))
                << (8 * i);
        off_ += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; i++)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(bytes_[off_ + i]))
                << (8 * i);
        off_ += 8;
        return v;
    }

    std::int32_t
    i32()
    {
        return static_cast<std::int32_t>(u32());
    }

    std::int64_t
    i64()
    {
        return static_cast<std::int64_t>(u64());
    }

    std::string
    str()
    {
        std::uint32_t n = u32();
        if (!need(n))
            return "";
        std::string s(bytes_.substr(off_, n));
        off_ += n;
        return s;
    }

    template <std::size_t N>
    std::bitset<N>
    bits()
    {
        static_assert(N <= 64, "widen bits() for larger sets");
        return std::bitset<N>(u64());
    }

    template <typename T>
    std::vector<T>
    vec()
    {
        std::uint32_t n = u32();
        // A length that cannot fit in the remaining bytes is corrupt;
        // fail instead of allocating it.
        if (!need(static_cast<std::size_t>(n) * 8))
            return {};
        std::vector<T> v;
        v.reserve(n);
        for (std::uint32_t i = 0; i < n; i++)
            v.push_back(static_cast<T>(u64()));
        return v;
    }

    std::vector<bool>
    boolVec()
    {
        std::uint32_t n = u32();
        if (!need(n))
            return {};
        std::vector<bool> v;
        v.reserve(n);
        for (std::uint32_t i = 0; i < n; i++)
            v.push_back(u8() != 0);
        return v;
    }

    /** True when every read so far was in bounds. */
    bool
    ok() const
    {
        return ok_;
    }

    /** True when the whole buffer was consumed (and ok()). */
    bool
    atEnd() const
    {
        return ok_ && off_ == bytes_.size();
    }

  private:
    bool
    need(std::size_t n)
    {
        if (!ok_ || bytes_.size() - off_ < n) {
            ok_ = false;
            return false;
        }
        return true;
    }

    std::string_view bytes_;
    std::size_t off_ = 0;
    bool ok_ = true;
};

/** Exact binary encoding of flat access counts. */
void serializeAccessCounts(ByteWriter &w, const AccessCounts &c);
/** Inverse of serializeAccessCounts (all-zero on a failed reader). */
AccessCounts deserializeAccessCounts(ByteReader &r);

/** Exact binary encoding of a pre-decoded dynamic stream. */
void serializeDecodedTrace(ByteWriter &w, const DecodedTrace &t);
/** Inverse of serializeDecodedTrace. */
DecodedTrace deserializeDecodedTrace(ByteReader &r);

} // namespace rfh

#endif // RFH_CORE_SERIALIZE_H
