/**
 * @file
 * Memoization caches for the experiment engine.
 *
 * A design-space sweep evaluates schemes x ORF sizes x 36 workloads,
 * but two expensive inputs of every grid point are configuration
 * independent:
 *
 *  - the baseline functional execution (flat-MRF AccessCounts) depends
 *    only on the kernel and its RunConfig, and
 *  - the CFG / liveness / reaching-defs analyses depend only on the
 *    kernel's architectural structure (see ir/analysis_bundle.h).
 *
 * ExperimentCache computes each exactly once per process and serves
 * all later requests — including concurrent ones from the parallel
 * sweep — from the cache. Entries are keyed by a structural
 * fingerprint of the kernel (not its address), so distinct kernels
 * that happen to reuse storage can never alias, and annotated copies
 * of a cached kernel hit the same entry. Cached results are bitwise
 * identical to a fresh computation, so memoization never changes any
 * report.
 */

#ifndef RFH_CORE_MEMO_H
#define RFH_CORE_MEMO_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "ir/analysis_bundle.h"
#include "sim/baseline_exec.h"
#include "sim/trace.h"

namespace rfh {

class DiskCache;

/**
 * Structural fingerprint of a kernel: name, block layout, opcodes and
 * operands. Allocator annotations are deliberately excluded so a
 * kernel and its annotated copies fingerprint identically.
 */
std::uint64_t kernelFingerprint(const Kernel &k);

/** Process-wide memoization for baseline runs and analysis bundles. */
class ExperimentCache
{
  public:
    /**
     * Back this in-memory cache with a persistent compile cache
     * (core/diskcache.h). A miss in baseline(), analyses(), or trace()
     * first consults the disk — a valid entry deserializes to
     * bit-identical contents and skips the computation entirely — and
     * a computed result is written back so later processes start warm.
     * decode() is not persisted: it rebuilds cheaply from the kernel
     * plus the (cached) reaching definitions. Pass nullptr to detach.
     * The cache must outlive every lookup; attach before serving.
     */
    void
    attachDiskCache(DiskCache *dc)
    {
        disk_.store(dc, std::memory_order_release);
    }

    DiskCache *
    diskCache() const
    {
        return disk_.load(std::memory_order_acquire);
    }

    /**
     * Flat-MRF baseline counts of @p k under @p run, computed on first
     * request and cached. Concurrent first requests block until the
     * single computation finishes. The returned reference stays valid
     * until clear().
     */
    const AccessCounts &baseline(const Kernel &k, const RunConfig &run);

    /** Shared immutable analyses of @p k, computed on first request. */
    std::shared_ptr<const AnalysisBundle> analyses(const Kernel &k);

    /**
     * Pre-decoded dynamic stream of @p k under @p run, recorded by a
     * single functional execution on first request and then shared
     * read-only by every replay-mode grid cell. Keyed like baseline():
     * annotated copies of a cached kernel hit the same entry, since
     * annotations never change the dynamic path.
     */
    std::shared_ptr<const DecodedTrace> trace(const Kernel &k,
                                              const RunConfig &run);

    /**
     * Shared replay pre-decode of @p k, built (with shared-consumer
     * info from the cached reaching definitions) on first request.
     * Keyed by the structural fingerprint, so annotated copies share
     * one entry — consumers must not read annotations out of the
     * cached decode's instruction snapshots (see ReplayDecode).
     */
    std::shared_ptr<const ReplayDecode> decode(const Kernel &k);

    /** Drop every entry (tests; not thread-safe vs. active lookups). */
    void clear();

    /**
     * Total cached entries across the three maps. Long-lived callers
     * (the batch service) poll this to bound memory: when it exceeds
     * their budget they quiesce lookups and clear(). Thread-safe.
     */
    std::size_t entryCount() const;

    /** Hit/miss counters (monotonic; for benchmarks and tests). */
    struct Stats
    {
        std::uint64_t baselineHits = 0;
        std::uint64_t baselineMisses = 0;
        std::uint64_t analysisHits = 0;
        std::uint64_t analysisMisses = 0;
        std::uint64_t traceHits = 0;
        std::uint64_t traceMisses = 0;
        std::uint64_t decodeHits = 0;
        std::uint64_t decodeMisses = 0;
    };

    Stats stats() const;

  private:
    struct BaselineEntry
    {
        std::once_flag once;
        AccessCounts counts;
    };

    struct AnalysisEntry
    {
        std::once_flag once;
        std::shared_ptr<const AnalysisBundle> bundle;
    };

    struct TraceEntry
    {
        std::once_flag once;
        std::shared_ptr<const DecodedTrace> trace;
    };

    struct DecodeEntry
    {
        std::once_flag once;
        std::shared_ptr<const ReplayDecode> decode;
    };

    /** Fingerprint + instruction count + run parameters. */
    using BaselineKey =
        std::tuple<std::uint64_t, int, int, std::uint64_t>;
    using AnalysisKey = std::pair<std::uint64_t, int>;

    mutable std::mutex mu_;
    std::atomic<DiskCache *> disk_{nullptr};
    std::map<BaselineKey, std::shared_ptr<BaselineEntry>> baseline_;
    std::map<AnalysisKey, std::shared_ptr<AnalysisEntry>> analyses_;
    std::map<BaselineKey, std::shared_ptr<TraceEntry>> traces_;
    std::map<AnalysisKey, std::shared_ptr<DecodeEntry>> decodes_;
    std::atomic<std::uint64_t> baselineHits_{0};
    std::atomic<std::uint64_t> baselineMisses_{0};
    std::atomic<std::uint64_t> analysisHits_{0};
    std::atomic<std::uint64_t> analysisMisses_{0};
    std::atomic<std::uint64_t> traceHits_{0};
    std::atomic<std::uint64_t> traceMisses_{0};
    std::atomic<std::uint64_t> decodeHits_{0};
    std::atomic<std::uint64_t> decodeMisses_{0};
};

/** The cache shared by runScheme, the sweeps, and the limit study. */
ExperimentCache &globalExperimentCache();

} // namespace rfh

#endif // RFH_CORE_MEMO_H
