#include "core/report.h"

#include <cstdio>
#include <sstream>

namespace rfh {

AccessBreakdown
normalizeAccesses(const AccessCounts &counts, const AccessCounts &baseline)
{
    AccessBreakdown b;
    double r = static_cast<double>(baseline.allReads());
    double w = static_cast<double>(baseline.allWrites());
    if (r > 0) {
        b.mrfReads = counts.totalReads(Level::MRF) / r;
        b.orfReads = counts.totalReads(Level::ORF) / r;
        b.lrfReads = counts.totalReads(Level::LRF) / r;
    }
    if (w > 0) {
        b.mrfWrites = counts.totalWrites(Level::MRF) / w;
        b.orfWrites = counts.totalWrites(Level::ORF) / w;
        b.lrfWrites = counts.totalWrites(Level::LRF) / w;
    }
    return b;
}

TextTable::TextTable(std::vector<std::string> header)
{
    rows_.push_back(std::move(header));
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::str() const
{
    std::vector<std::size_t> width;
    for (const auto &row : rows_) {
        if (width.size() < row.size())
            width.resize(row.size(), 0);
        for (std::size_t c = 0; c < row.size(); c++)
            width[c] = std::max(width[c], row[c].size());
    }
    std::ostringstream os;
    for (std::size_t r = 0; r < rows_.size(); r++) {
        for (std::size_t c = 0; c < rows_[r].size(); c++) {
            os << rows_[r][c];
            if (c + 1 < rows_[r].size())
                os << std::string(width[c] - rows_[r][c].size() + 2, ' ');
        }
        os << "\n";
        if (r == 0) {
            std::size_t total = 0;
            for (std::size_t c = 0; c < width.size(); c++)
                total += width[c] + (c + 1 < width.size() ? 2 : 0);
            os << std::string(total, '-') << "\n";
        }
    }
    return os.str();
}

std::string
timingSummary(const SweepTiming &timing, const PhaseTimes &phases)
{
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "engine: %.3fs wall, %.3fs cpu on %d thread%s "
                  "(%.2fx), phases analyze %.3fs / trace %.3fs / "
                  "allocate %.3fs / execute %.3fs, %.1fM dyn instr "
                  "(%.1fM instr/s)",
                  timing.wallSec, timing.cpuSec, timing.threads,
                  timing.threads == 1 ? "" : "s", timing.speedup(),
                  phases.analyzeSec, phases.traceSec,
                  phases.allocateSec, phases.executeSec,
                  static_cast<double>(phases.dynInstrs) / 1e6,
                  phases.instrPerSec() / 1e6);
    return buf;
}

std::string
pct(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%", v * 100.0);
    return buf;
}

std::string
fmt(double v, int digits)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

} // namespace rfh
