#include "core/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/json.h"

namespace rfh {

namespace {

/** splitmix64 step (the repo's standard small deterministic RNG). */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Largest magnitude the fixed-point sums accept without overflow. */
constexpr double kClampAbs = 1.099511627776e12; // 2^40

} // namespace

double
wireRound(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return std::strtod(buf, nullptr);
}

int
StreamStat::bucketOf(double x)
{
    if (!(x > 0.0))
        return 0;
    int exp = 0;
    double m = std::frexp(x, &exp); // x = m * 2^exp, m in [0.5, 1)
    // Sub-bucket from the mantissa: log2(m) in [-1, 0).
    int sub = static_cast<int>((std::log2(m) + 1.0) * kSubBuckets);
    sub = std::clamp(sub, 0, kSubBuckets - 1);
    long idx = (static_cast<long>(exp) - 1 - kMinExp) * kSubBuckets +
        sub + 1;
    return static_cast<int>(std::clamp<long>(idx, 1, kBuckets - 1));
}

double
StreamStat::bucketLo(int b)
{
    if (b <= 0)
        return 0.0;
    return std::exp2(kMinExp +
                     static_cast<double>(b - 1) / kSubBuckets);
}

double
StreamStat::bucketHi(int b)
{
    if (b <= 0)
        return 0.0;
    return std::exp2(kMinExp + static_cast<double>(b) / kSubBuckets);
}

void
StreamStat::add(double x)
{
    double clamped = std::clamp(x, -kClampAbs, kClampAbs);
    // One quantization, then exact arithmetic (see file comment).
    long long q = std::llround(std::ldexp(clamped, kFracBits));
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    n_++;
    sum_ += q;
    sumSq_ += static_cast<unsigned __int128>(
        static_cast<__int128>(q) * static_cast<__int128>(q));
    if (hist_.empty())
        hist_.assign(kBuckets, 0);
    hist_[static_cast<std::size_t>(bucketOf(x))]++;
}

void
StreamStat::merge(const StreamStat &o)
{
    if (o.n_ == 0)
        return;
    if (n_ == 0) {
        min_ = o.min_;
        max_ = o.max_;
    } else {
        min_ = std::min(min_, o.min_);
        max_ = std::max(max_, o.max_);
    }
    n_ += o.n_;
    sum_ += o.sum_;
    sumSq_ += o.sumSq_;
    if (hist_.empty())
        hist_.assign(kBuckets, 0);
    for (int b = 0; b < kBuckets; b++)
        hist_[static_cast<std::size_t>(b)] +=
            o.hist_[static_cast<std::size_t>(b)];
}

double
StreamStat::mean() const
{
    if (n_ == 0)
        return 0.0;
    return std::ldexp(static_cast<double>(sum_) /
                          static_cast<double>(n_),
                      -kFracBits);
}

double
StreamStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    double m = mean();
    double meanSq = std::ldexp(static_cast<double>(sumSq_) /
                                   static_cast<double>(n_),
                               -2 * kFracBits);
    double biased = std::max(0.0, meanSq - m * m);
    return biased * static_cast<double>(n_) /
        static_cast<double>(n_ - 1);
}

double
StreamStat::stddev() const
{
    return std::sqrt(variance());
}

double
StreamStat::min() const
{
    return n_ ? min_ : 0.0;
}

double
StreamStat::max() const
{
    return n_ ? max_ : 0.0;
}

double
StreamStat::quantile(double q) const
{
    if (n_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank in [1, n]: the q-th smallest sample, nearest-rank with
    // linear interpolation inside the landing bucket.
    double rank = q * static_cast<double>(n_ - 1) + 1.0;
    std::uint64_t before = 0;
    for (int b = 0; b < kBuckets; b++) {
        std::uint64_t c = hist_[static_cast<std::size_t>(b)];
        if (c == 0)
            continue;
        if (rank <= static_cast<double>(before + c)) {
            double frac = (rank - static_cast<double>(before)) /
                static_cast<double>(c);
            frac = std::clamp(frac, 0.0, 1.0);
            double lo = bucketLo(b);
            double hi = bucketHi(b);
            // Clip the bucket to the observed sample range so
            // single-bucket distributions report sensible extremes.
            lo = std::max(lo, min_);
            hi = std::min(hi, max_);
            if (hi < lo)
                hi = lo;
            return lo + (hi - lo) * frac;
        }
        before += c;
    }
    return max_;
}

StatBand
StreamStat::bootstrapMeanBand(double confidence, int resamples,
                              std::uint64_t seed) const
{
    StatBand band{mean(), mean()};
    if (n_ < 2 || resamples < 2)
        return band;

    // Cumulative bucket counts once; draws binary-search into them.
    std::vector<std::uint64_t> cum;
    std::vector<double> mid;
    cum.reserve(64);
    mid.reserve(64);
    std::uint64_t running = 0;
    double histSum = 0.0;
    for (int b = 0; b < kBuckets; b++) {
        std::uint64_t c = hist_[static_cast<std::size_t>(b)];
        if (c == 0)
            continue;
        running += c;
        cum.push_back(running);
        double v = b == 0 ? std::min(0.0, min_)
                          : 0.5 * (bucketLo(b) + bucketHi(b));
        mid.push_back(v);
        histSum += v * static_cast<double>(c);
    }
    // Recentre: resample means carry the bucket-midpoint bias, so
    // shift the whole band onto the exact fixed-point mean.
    double shift = mean() - histSum / static_cast<double>(n_);

    std::vector<double> means;
    means.reserve(static_cast<std::size_t>(resamples));
    // Mix the caller's seed before folding in the resample index:
    // XOR-ing raw adjacent seeds with the index would hand nearly the
    // same *set* of streams to seed and seed+1, and identical sorted
    // percentiles with them.
    const std::uint64_t mixedSeed = mix64(seed ^ 0x8badf00dULL);
    for (int r = 0; r < resamples; r++) {
        std::uint64_t stream =
            mix64(mixedSeed + static_cast<std::uint64_t>(r));
        double sum = 0.0;
        for (std::uint64_t i = 0; i < n_; i++) {
            stream = mix64(stream);
            std::uint64_t pick = stream % n_;
            std::size_t idx = static_cast<std::size_t>(
                std::upper_bound(cum.begin(), cum.end(), pick) -
                cum.begin());
            sum += mid[idx];
        }
        means.push_back(sum / static_cast<double>(n_) + shift);
    }
    std::sort(means.begin(), means.end());
    double alpha = std::clamp(1.0 - confidence, 0.0, 1.0);
    auto at = [&](double p) {
        int i = static_cast<int>(p * (resamples - 1));
        return means[static_cast<std::size_t>(
            std::clamp(i, 0, resamples - 1))];
    };
    band.lo = at(alpha / 2);
    band.hi = at(1.0 - alpha / 2);
    return band;
}

std::uint64_t
StreamStat::fingerprint() const
{
    std::uint64_t h = 1469598103934665603ULL; // FNV-1a offset basis
    auto fold = [&h](const void *p, std::size_t len) {
        const unsigned char *b = static_cast<const unsigned char *>(p);
        for (std::size_t i = 0; i < len; i++) {
            h ^= b[i];
            h *= 1099511628211ULL;
        }
    };
    fold(&n_, sizeof n_);
    fold(&sum_, sizeof sum_);
    fold(&sumSq_, sizeof sumSq_);
    if (n_) {
        fold(&min_, sizeof min_);
        fold(&max_, sizeof max_);
    }
    for (std::size_t b = 0; b < hist_.size(); b++) {
        if (hist_[b]) {
            fold(&b, sizeof b);
            fold(&hist_[b], sizeof hist_[b]);
        }
    }
    return h;
}

void
StreamStat::writeJson(JsonWriter &w, double confidence, int resamples,
                      std::uint64_t seed) const
{
    w.beginObject();
    w.key("count").value(static_cast<std::uint64_t>(n_));
    w.key("mean").value(mean());
    w.key("stddev").value(stddev());
    w.key("min").value(min());
    w.key("max").value(max());
    w.key("p10").value(quantile(0.10));
    w.key("p50").value(quantile(0.50));
    w.key("p90").value(quantile(0.90));
    if (resamples > 0) {
        StatBand band = bootstrapMeanBand(confidence, resamples, seed);
        w.key("band");
        w.beginObject();
        w.key("confidence").value(confidence);
        w.key("lo").value(band.lo);
        w.key("hi").value(band.hi);
        w.endObject();
    }
    w.endObject();
}

} // namespace rfh
