#include "core/scheme.h"

#include <mutex>
#include <stdexcept>

#include "core/experiment.h"
#include "sim/pipeline_account.h"

namespace rfh {

AllocOptions
SchemeBackend::allocOptions(const ExperimentConfig &cfg) const
{
    AllocOptions a;
    a.orfEntries = cfg.entries;
    a.orfPriceEntries = cfg.orfPriceEntries;
    a.useLRF = false;
    a.splitLRF = false;
    a.lrfAllowSharedProducers = cfg.lrfAllowSharedProducers;
    a.partialRanges = cfg.partialRanges;
    a.readOperands = cfg.readOperands;
    a.strandOptions = cfg.strandOptions;
    return a;
}

AllocStats
SchemeBackend::allocate(Kernel &, const ExperimentConfig &,
                        const AnalysisBundle *) const
{
    return AllocStats{};
}

bool
SchemeBackend::splitLrfEnergy(const ExperimentConfig &) const
{
    return false;
}

double
SchemeBackend::accountEnergyPJ(const SchemeRunContext &,
                               const AccessCounts &c,
                               const EnergyModel &em) const
{
    return c.totalEnergyPJ(em);
}

std::vector<std::string>
SchemeBackend::checkConservation(const AccessCounts &,
                                 const AccessCounts &) const
{
    return {};
}

// Out of line so scheme.h needs only a forward declaration of
// PipelineAccounting (unique_ptr of an incomplete type cannot be
// destroyed in an inline default).
std::unique_ptr<PipelineAccounting>
SchemeBackend::makePipelineAccounting(const PipelineBuildContext &) const
{
    return nullptr;
}

SchemeRegistry::SchemeRegistry() = default;

SchemeRegistry &
SchemeRegistry::instance()
{
    static SchemeRegistry *reg = [] {
        auto *r = new SchemeRegistry();
        registerBuiltinSchemes(*r);
        return r;
    }();
    return *reg;
}

Scheme
SchemeRegistry::add(SchemeSpec spec,
                    std::unique_ptr<SchemeBackend> backend)
{
    if (spec.token.empty())
        throw std::invalid_argument(
            "scheme registration needs a non-empty token");
    if (!backend)
        throw std::invalid_argument("scheme '" + spec.token +
                                    "' registered without a backend");
    std::unique_lock lock(mu_);
    for (const SchemeInfo &si : infos_)
        if (si.token == spec.token)
            throw std::invalid_argument(
                "duplicate scheme token '" + spec.token +
                "' (already registered as #" +
                std::to_string(si.scheme.id()) + ", display '" +
                si.display + "')");
    SchemeInfo info;
    info.scheme = Scheme(static_cast<std::uint8_t>(infos_.size()));
    info.token = std::move(spec.token);
    info.display = std::move(spec.display);
    info.tag = spec.tag.empty() ? info.token : std::move(spec.tag);
    info.summary = std::move(spec.summary);
    info.paper = spec.paper;
    info.caps = spec.caps;
    info.backend = std::move(backend);
    infos_.push_back(std::move(info));
    return infos_.back().scheme;
}

const SchemeInfo *
SchemeRegistry::find(Scheme s) const
{
    std::shared_lock lock(mu_);
    if (s.id() >= infos_.size())
        return nullptr;
    return &infos_[s.id()];
}

const SchemeInfo *
SchemeRegistry::findToken(std::string_view token) const
{
    std::shared_lock lock(mu_);
    for (const SchemeInfo &si : infos_)
        if (si.token == token)
            return &si;
    return nullptr;
}

std::vector<const SchemeInfo *>
SchemeRegistry::schemes() const
{
    std::shared_lock lock(mu_);
    std::vector<const SchemeInfo *> out;
    out.reserve(infos_.size());
    for (const SchemeInfo &si : infos_)
        out.push_back(&si);
    return out;
}

std::size_t
SchemeRegistry::size() const
{
    std::shared_lock lock(mu_);
    return infos_.size();
}

std::string
SchemeRegistry::tokenList() const
{
    std::shared_lock lock(mu_);
    std::string out;
    for (const SchemeInfo &si : infos_) {
        if (!out.empty())
            out += ", ";
        out += si.token;
    }
    return out;
}

} // namespace rfh
