/**
 * @file
 * Structured metrics registry: the process-wide observability spine.
 *
 * Every phase of the pipeline reports into one named-metric registry —
 * the allocator's passes, the trace recorder, the direct and replay
 * executors, the hardware-cache simulator, and the memoization caches.
 * Four metric kinds cover the needs of the experiment engine:
 *
 *  - Counter   — monotonic event count (cache hits, runs, instructions),
 *  - Gauge     — last-written value (pool size, thresholds),
 *  - Timer     — accumulated wall-clock + invocation count per phase,
 *  - Histogram — log2-bucketed sample distribution (dynamic
 *                instructions per run, span durations).
 *
 * Counters and timers shard their accumulation across cache-line-sized
 * slots indexed by a thread-local shard id, so the parallel sweep's
 * workers never contend on one cache line; reads fold the shards.
 * All mutation is lock-free after registration (relaxed atomics:
 * metrics are diagnostics, and exact cross-thread ordering is not
 * observable through the snapshot API anyway).
 *
 * Metrics never feed back into results: result JSON stays
 * byte-identical for any thread count and any metrics state. Snapshots
 * serialise deterministically (name-sorted) into run manifests
 * (core/manifest.h) and the `rfhc` CLI.
 */

#ifndef RFH_CORE_METRICS_H
#define RFH_CORE_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/timing.h"

namespace rfh {

/**
 * Stable per-thread shard index in [0, kMetricShards). Threads are
 * assigned round-robin on first use, so a pool of N workers spreads
 * across min(N, kMetricShards) distinct cache lines.
 */
int metricsThreadShard();

/** Shard count for sharded accumulators (power of two). */
inline constexpr int kMetricShards = 16;

/** Monotonic event counter with per-thread sharded accumulation. */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1) noexcept
    {
        shards_[metricsThreadShard()].v.fetch_add(
            n, std::memory_order_relaxed);
    }

    /** Sum over all shards. */
    std::uint64_t
    value() const noexcept
    {
        std::uint64_t total = 0;
        for (const Shard &s : shards_)
            total += s.v.load(std::memory_order_relaxed);
        return total;
    }

    void
    reset() noexcept
    {
        for (Shard &s : shards_)
            s.v.store(0, std::memory_order_relaxed);
    }

  private:
    struct alignas(64) Shard
    {
        std::atomic<std::uint64_t> v{0};
    };
    Shard shards_[kMetricShards];
};

/** Last-written value (not aggregated across threads). */
class Gauge
{
  public:
    void
    set(double v) noexcept
    {
        v_.store(v, std::memory_order_relaxed);
    }

    double
    value() const noexcept
    {
        return v_.load(std::memory_order_relaxed);
    }

    void
    reset() noexcept
    {
        v_.store(0.0, std::memory_order_relaxed);
    }

  private:
    std::atomic<double> v_{0.0};
};

/**
 * Accumulated duration + invocation count. Durations are stored as
 * integer nanoseconds so accumulation is a single relaxed fetch_add
 * and totals are exact (no floating-point accumulation-order drift).
 */
class Timer
{
  public:
    void
    addSec(double seconds) noexcept
    {
        auto ns = static_cast<std::uint64_t>(seconds * 1e9);
        Shard &s = shards_[metricsThreadShard()];
        s.nanos.fetch_add(ns, std::memory_order_relaxed);
        s.count.fetch_add(1, std::memory_order_relaxed);
    }

    double
    totalSec() const noexcept
    {
        std::uint64_t ns = 0;
        for (const Shard &s : shards_)
            ns += s.nanos.load(std::memory_order_relaxed);
        return static_cast<double>(ns) / 1e9;
    }

    std::uint64_t
    count() const noexcept
    {
        std::uint64_t c = 0;
        for (const Shard &s : shards_)
            c += s.count.load(std::memory_order_relaxed);
        return c;
    }

    void
    reset() noexcept
    {
        for (Shard &s : shards_) {
            s.nanos.store(0, std::memory_order_relaxed);
            s.count.store(0, std::memory_order_relaxed);
        }
    }

  private:
    struct alignas(64) Shard
    {
        std::atomic<std::uint64_t> nanos{0};
        std::atomic<std::uint64_t> count{0};
    };
    Shard shards_[kMetricShards];
};

/** RAII phase timer: accumulates its lifetime into a Timer. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Timer &t) : t_(t) {}
    ~ScopedTimer() { t_.addSec(watch_.elapsedSec()); }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Timer &t_;
    Stopwatch watch_;
};

/**
 * Log2-bucketed histogram of unsigned samples: bucket b counts
 * samples whose value v satisfies 2^(b-1) < v <= 2^b (bucket 0 counts
 * v <= 1). Fixed 64 buckets cover the whole uint64 range.
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 64;

    void
    observe(std::uint64_t sample) noexcept
    {
        buckets_[bucketOf(sample)].fetch_add(1,
                                             std::memory_order_relaxed);
        sum_.fetch_add(sample, std::memory_order_relaxed);
    }

    /** Bucket index for @p sample (see class comment). */
    static int
    bucketOf(std::uint64_t sample) noexcept
    {
        int b = 0;
        while (sample > (1ull << b) && b < kBuckets - 1)
            b++;
        return b;
    }

    std::uint64_t
    bucketCount(int b) const noexcept
    {
        return buckets_[b].load(std::memory_order_relaxed);
    }

    std::uint64_t
    count() const noexcept
    {
        std::uint64_t c = 0;
        for (const auto &b : buckets_)
            c += b.load(std::memory_order_relaxed);
        return c;
    }

    std::uint64_t
    sum() const noexcept
    {
        return sum_.load(std::memory_order_relaxed);
    }

    void
    reset() noexcept
    {
        for (auto &b : buckets_)
            b.store(0, std::memory_order_relaxed);
        sum_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> buckets_[kBuckets] = {};
    std::atomic<std::uint64_t> sum_{0};
};

/** One metric's value at snapshot time. */
struct MetricSample
{
    enum class Kind { COUNTER, GAUGE, TIMER, HISTOGRAM };

    std::string name;
    Kind kind = Kind::COUNTER;
    std::uint64_t count = 0;  ///< Counter value / timer or hist count.
    double number = 0.0;      ///< Gauge value / timer total seconds.
    std::uint64_t sum = 0;    ///< Histogram sample sum.
    /** Non-empty histogram buckets as (upper bound, count). */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
};

/**
 * Name → metric registry. Registration (the first counter("x") call)
 * takes a mutex; the returned reference is stable for the process
 * lifetime, so hot paths cache it in a function-local static and pay
 * only the relaxed-atomic accumulation afterwards.
 *
 * Names are namespaced with dots by convention ("alloc.phase.orf",
 * "memo.trace.hits"); one name maps to exactly one kind — requesting
 * an existing name as a different kind throws std::logic_error.
 */
class MetricsRegistry
{
  public:
    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    Timer &timer(std::string_view name);
    Histogram &histogram(std::string_view name);

    /** Zero every value; registrations (and references) survive. */
    void reset();

    /** All metrics, name-sorted, deterministic given quiescence. */
    std::vector<MetricSample> snapshot() const;

    /**
     * Snapshot as one JSON object: counters and gauges as numbers,
     * timers as {"totalSec","count"}, histograms as
     * {"count","sum","buckets":[{"le","count"}...]}.
     */
    std::string toJson() const;

  private:
    struct Entry
    {
        MetricSample::Kind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Timer> timer;
        std::unique_ptr<Histogram> histogram;
    };

    Entry &lookup(std::string_view name, MetricSample::Kind kind);

    mutable std::mutex mu_;
    std::map<std::string, Entry, std::less<>> entries_;
};

/** The registry every pipeline phase reports into. */
MetricsRegistry &globalMetrics();

} // namespace rfh

#endif // RFH_CORE_METRICS_H
