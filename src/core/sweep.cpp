#include "core/sweep.h"

#include "sim/baseline_exec.h"

namespace rfh {

std::vector<SweepPoint>
sweepEntries(const std::vector<Scheme> &schemes,
             const ExperimentConfig &base)
{
    std::vector<SweepPoint> points;
    for (Scheme s : schemes) {
        for (int e = 1; e <= kMaxOrfEntries; e++) {
            ExperimentConfig cfg = base;
            cfg.scheme = s;
            cfg.entries = e;
            SweepPoint pt;
            pt.scheme = s;
            pt.entries = e;
            pt.outcome = runAllWorkloads(cfg);
            points.push_back(std::move(pt));
        }
    }
    return points;
}

AccessCounts
aggregateBaselineCounts()
{
    AccessCounts agg;
    for (const Workload &w : allWorkloads())
        agg.add(runBaseline(w.kernel, w.run));
    return agg;
}

const SweepPoint *
bestPoint(const std::vector<SweepPoint> &points, Scheme scheme)
{
    const SweepPoint *best = nullptr;
    for (const auto &pt : points) {
        if (pt.scheme != scheme)
            continue;
        if (!best || pt.outcome.normalizedEnergy() <
            best->outcome.normalizedEnergy())
            best = &pt;
    }
    return best;
}

} // namespace rfh
