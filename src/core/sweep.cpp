#include "core/sweep.h"

#include "core/memo.h"
#include "core/metrics.h"
#include "core/trace_events.h"
#include "sim/baseline_exec.h"

namespace rfh {

std::vector<SweepPoint>
sweepEntries(const std::vector<Scheme> &schemes,
             const ExperimentConfig &base, ThreadPool *pool,
             SweepTiming *timing)
{
    const std::vector<Workload> &ws = allWorkloads();
    ThreadPool &p = pool ? *pool : globalPool();
    const int W = static_cast<int>(ws.size());

    std::vector<SweepPoint> points;
    std::vector<ExperimentConfig> cfgs;
    for (Scheme s : schemes) {
        for (int e = 1; e <= kMaxOrfEntries; e++) {
            SweepPoint pt;
            pt.scheme = s;
            pt.entries = e;
            points.push_back(pt);
            ExperimentConfig cfg = base;
            cfg.scheme = s;
            cfg.entries = e;
            // Sweeps record the dynamic stream once per workload and
            // replay it for every grid cell; the direct oracle stays
            // selectable through base.engine.
            if (cfg.engine == ExecEngine::AUTO)
                cfg.engine = ExecEngine::REPLAY;
            cfgs.push_back(cfg);
        }
    }
    const int P = static_cast<int>(points.size());

    // Fan out the full (point, workload) grid; cell order is
    // point-major so the single-thread path visits the grid in the
    // historical nesting order.
    std::vector<RunOutcome> cells(static_cast<std::size_t>(P) * W);
    std::vector<double> cellSec(cells.size(), 0.0);
    TraceSpan span("sweepEntries", "sweep",
                   "{\"points\":" + std::to_string(P) +
                       ",\"cells\":" + std::to_string(P * W) + "}");
    Stopwatch wall;
    p.parallelFor(P * W, [&](int t) {
        Stopwatch cellWatch;
        cells[t] = runScheme(ws[t % W], cfgs[t / W]);
        cellSec[t] = cellWatch.elapsedSec();
    });
    double wallSec = wall.elapsedSec();
    globalMetrics().counter("sweep.calls").add();
    globalMetrics().counter("sweep.cells").add(
        static_cast<std::uint64_t>(P) * W);
    globalMetrics().timer("sweep.wall").addSec(wallSec);

    // Deterministic fold: workloads in registry order per point.
    double cpuSec = 0.0;
    for (int i = 0; i < P; i++) {
        for (int w = 0; w < W; w++) {
            std::size_t t = static_cast<std::size_t>(i) * W + w;
            accumulateOutcome(points[i].outcome, cells[t], ws[w].name);
            points[i].cpuSec += cellSec[t];
        }
        cpuSec += points[i].cpuSec;
    }
    if (timing) {
        timing->wallSec = wallSec;
        timing->cpuSec = cpuSec;
        timing->threads = p.threadCount();
    }
    return points;
}

AccessCounts
aggregateBaselineCounts()
{
    const std::vector<Workload> &ws = allWorkloads();
    ExperimentCache &cache = globalExperimentCache();
    // Warm the memoized baselines in parallel, then fold in registry
    // order for a deterministic aggregate.
    globalPool().parallelFor(
        static_cast<int>(ws.size()),
        [&](int i) { cache.baseline(ws[i].kernel, ws[i].run); });
    AccessCounts agg;
    for (const Workload &w : ws)
        agg.add(cache.baseline(w.kernel, w.run));
    return agg;
}

const SweepPoint *
bestPoint(const std::vector<SweepPoint> &points, Scheme scheme)
{
    const SweepPoint *best = nullptr;
    for (const auto &pt : points) {
        if (pt.scheme != scheme)
            continue;
        if (!best || pt.outcome.normalizedEnergy() <
            best->outcome.normalizedEnergy())
            best = &pt;
    }
    return best;
}

} // namespace rfh
