/**
 * @file
 * Benchmark snapshot comparison — the perf regression gate behind
 * `rfhc bench-diff` and `scripts/bench_diff.sh`.
 *
 * A snapshot is either a `BENCH_<n>.json` file written by
 * `scripts/bench_snapshot.sh` (google-benchmark microbenchmarks plus
 * the fig13 engine timing) or an `rfh-manifest-v1` run manifest
 * (core/manifest.h). Both reduce to a flat list of named scalar
 * benchmark entries, each tagged with the direction that counts as
 * better; the diff pairs entries by name, computes relative deltas,
 * and classifies each row against a configurable threshold so CI can
 * fail on regressions (`scripts/check.sh --bench`).
 */

#ifndef RFH_CORE_BENCHDIFF_H
#define RFH_CORE_BENCHDIFF_H

#include <string>
#include <vector>

#include "core/json.h"

namespace rfh {

/** One comparable scalar extracted from a snapshot. */
struct BenchEntry
{
    std::string name;
    double value = 0.0;
    std::string unit;           ///< "ns", "sec", "instr/s", ...
    bool higherIsBetter = false;
};

/** Classification of one paired benchmark against the threshold. */
enum class BenchDeltaKind
{
    UNCHANGED,  ///< |delta| within the threshold.
    IMPROVED,   ///< Better by more than the threshold.
    REGRESSED,  ///< Worse by more than the threshold.
    ADDED,      ///< Present only in the new snapshot.
    REMOVED,    ///< Present only in the old snapshot.
};

/** @return "ok", "improved", "REGRESSED", "added", or "removed". */
std::string_view benchDeltaName(BenchDeltaKind k);

/** One row of the delta table. */
struct BenchDiffRow
{
    std::string name;
    std::string unit;
    double oldValue = 0.0;
    double newValue = 0.0;
    /** (new - old) / old; 0 when unpaired or old == 0. */
    double deltaFrac = 0.0;
    BenchDeltaKind kind = BenchDeltaKind::UNCHANGED;
};

/** Full diff of two snapshots. */
struct BenchDiff
{
    std::vector<BenchDiffRow> rows;
    int improved = 0;
    int regressed = 0;

    /** True when any benchmark regressed beyond the threshold. */
    bool
    hasRegression() const
    {
        return regressed > 0;
    }
};

/**
 * Extract comparable entries from a parsed snapshot document,
 * auto-detecting the format (BENCH_<n>.json vs run manifest). On an
 * unrecognised document, returns an empty list and sets @p error.
 */
std::vector<BenchEntry> benchEntriesFromJson(const JsonValue &doc,
                                             std::string *error);

/**
 * Pair @p oldEntries and @p newEntries by name and classify each pair
 * against @p threshold (a relative fraction, e.g. 0.10 = 10%). Rows
 * follow the new snapshot's order, then removed-only entries in the
 * old snapshot's order.
 */
BenchDiff diffBenchmarks(const std::vector<BenchEntry> &oldEntries,
                         const std::vector<BenchEntry> &newEntries,
                         double threshold);

/** Render the per-benchmark delta table plus a summary line. */
std::string renderBenchDiff(const BenchDiff &diff, double threshold);

} // namespace rfh

#endif // RFH_CORE_BENCHDIFF_H
