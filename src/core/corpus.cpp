#include "core/corpus.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "core/json.h"
#include "core/memo.h"
#include "core/parallel.h"
#include "energy/energy_params.h"

namespace rfh {

namespace {

/** Entries grid of schemes that sweep the entries axis. */
constexpr int kSweepEntries[] = {1, 2, 3, 4, 6, 8};

/** Fold @p x into an FNV-1a hash (band-seed derivation). */
std::uint64_t
foldHash(std::uint64_t h, std::uint64_t x)
{
    for (int i = 0; i < 8; i++) {
        h ^= (x >> (8 * i)) & 0xffu;
        h *= 1099511628211ULL;
    }
    return h;
}

/**
 * Bootstrap seed of cell (@p pi, @p ci): a pure function of the
 * corpus seed and the cell's structural position, so the band — and
 * with it every byte of the aggregate document — is independent of
 * execution order, thread count, and shard layout.
 */
std::uint64_t
bandSeed(const CorpusConfig &cfg, std::size_t pi, std::size_t ci)
{
    std::uint64_t h = 1469598103934665603ULL;
    h = foldHash(h, cfg.seed);
    h = foldHash(h, pi);
    h = foldHash(h, ci);
    return h;
}

void
writeStat(JsonWriter &w, const char *key, const StreamStat &s)
{
    w.key(key);
    s.writeJson(w);
}

const char *const kLevelKeys[3] = {"MRF", "ORF", "LRF"};

} // namespace

std::vector<CorpusCell>
defaultCorpusCells()
{
    std::vector<CorpusCell> cells;
    for (const SchemeInfo *info : SchemeRegistry::instance().schemes()) {
        if (info->scheme == Scheme::BASELINE)
            continue; // Its energy ratio is 1 by construction.
        if (info->caps.sweepsEntries) {
            for (int e : kSweepEntries)
                cells.push_back({info->scheme, e});
        } else {
            cells.push_back({info->scheme, 3});
        }
    }
    return cells;
}

bool
resolveCorpusConfig(const CorpusConfig &cfg,
                    std::vector<ScenarioProfile> &profiles,
                    std::vector<CorpusCell> &cells, std::string *err)
{
    auto fail = [&](const std::string &m) {
        if (err)
            *err = m;
        return false;
    };
    if (cfg.kernelsPerProfile < 1)
        return fail("corpus: kernelsPerProfile must be >= 1");
    if (cfg.chunk < 1)
        return fail("corpus: chunk must be >= 1");
    if (!resolveProfiles(cfg.profiles, profiles, err))
        return false;
    cells = cfg.cells.empty() ? defaultCorpusCells() : cfg.cells;
    if (cells.empty())
        return fail("corpus: no cells to aggregate");
    const SchemeRegistry &reg = SchemeRegistry::instance();
    for (const CorpusCell &c : cells) {
        const SchemeInfo *info = reg.find(c.scheme);
        if (!info)
            return fail("corpus: unregistered scheme id " +
                        std::to_string(int(c.scheme.id())) +
                        " (valid: " + reg.tokenList() + ")");
        if (c.entries < 1 || c.entries > kMaxOrfEntries)
            return fail("corpus: entries " + std::to_string(c.entries) +
                        " out of range (1.." +
                        std::to_string(kMaxOrfEntries) + ") for scheme '" +
                        info->token + "'");
    }
    return true;
}

CorpusSample
corpusSampleFromOutcome(const RunOutcome &o)
{
    CorpusSample s;
    // The one real-valued sample: quantize it through the result-JSON
    // wire format so local and fleet-parsed samples are identical.
    s.normalizedEnergy = wireRound(o.normalizedEnergy());
    for (int l = 0; l < 3; l++) {
        Level lv = static_cast<Level>(l);
        s.reads[l] = static_cast<double>(o.counts.totalReads(lv));
        s.writes[l] = static_cast<double>(o.counts.totalWrites(lv));
    }
    s.instructions = static_cast<double>(o.counts.instructions);
    s.valueInstances = static_cast<double>(o.alloc.valueInstances);
    s.lrfValues = static_cast<double>(o.alloc.lrfValues);
    s.orfValues = static_cast<double>(o.alloc.orfValuesFull +
                                      o.alloc.orfValuesPartial);
    s.mrfWritesElided = static_cast<double>(o.alloc.mrfWritesElided);
    s.hasPerf = o.hasPerf;
    s.cycles = static_cast<double>(o.perf.cycles);
    s.issued = static_cast<double>(o.perf.issued);
    return s;
}

bool
corpusSampleFromResultJson(const JsonValue &result, CorpusSample &out,
                           std::string *err)
{
    auto fail = [&](const std::string &m) {
        if (err)
            *err = m;
        return false;
    };
    if (!result.isObject())
        return fail("corpus sample: result is not an object");
    const JsonValue *ne = result.find("normalizedEnergy");
    if (!ne || !ne->isNumber())
        return fail("corpus sample: missing normalizedEnergy");
    CorpusSample s;
    s.normalizedEnergy = ne->number;
    const JsonValue *acc = result.find("accesses");
    if (!acc || !acc->isObject())
        return fail("corpus sample: missing accesses");
    for (int l = 0; l < 3; l++) {
        const JsonValue *lvl = acc->find(kLevelKeys[l]);
        if (!lvl || !lvl->isObject())
            return fail(std::string("corpus sample: missing accesses.") +
                        kLevelKeys[l]);
        // The wire "reads"/"writes" are already datapath totals
        // (AccessCounts::totalReads); sharedReads/sharedWrites break
        // out the shared component and must not be added again.
        s.reads[l] = lvl->numberOr("reads", 0);
        s.writes[l] = lvl->numberOr("writes", 0);
    }
    s.instructions = acc->numberOr("instructions", 0);
    const JsonValue *alloc = result.find("allocation");
    if (!alloc || !alloc->isObject())
        return fail("corpus sample: missing allocation");
    s.valueInstances = alloc->numberOr("valueInstances", 0);
    s.lrfValues = alloc->numberOr("lrfValues", 0);
    s.orfValues = alloc->numberOr("orfValuesFull", 0) +
        alloc->numberOr("orfValuesPartial", 0);
    s.mrfWritesElided = alloc->numberOr("mrfWritesElided", 0);
    if (const JsonValue *perf = result.find("perf");
        perf && perf->isObject()) {
        s.hasPerf = true;
        s.cycles = perf->numberOr("cycles", 0);
        s.issued = perf->numberOr("instructions", 0);
    }
    out = s;
    return true;
}

CorpusAccumulator::CorpusAccumulator(const CorpusConfig &cfg,
                                     std::vector<ScenarioProfile> profiles)
{
    result_.config = cfg;
    const SchemeRegistry &reg = SchemeRegistry::instance();
    result_.profiles.reserve(profiles.size());
    for (ScenarioProfile &p : profiles) {
        CorpusProfileStats ps;
        ps.profile = std::move(p);
        ps.cells.reserve(cfg.cells.size());
        for (const CorpusCell &c : cfg.cells) {
            CorpusCellStats cs;
            cs.cell = c;
            const SchemeInfo *info = reg.find(c.scheme);
            cs.schemeToken = info ? info->token : "?";
            ps.cells.push_back(std::move(cs));
        }
        result_.profiles.push_back(std::move(ps));
    }
}

void
CorpusAccumulator::fold(int profileIdx, int cellIdx,
                        const CorpusSample &s)
{
    CorpusCellStats &cs =
        result_.profiles[static_cast<std::size_t>(profileIdx)]
            .cells[static_cast<std::size_t>(cellIdx)];
    cs.runs++;
    result_.totalRuns++;
    cs.energyRatio.add(s.normalizedEnergy);
    // Shares are ratios of exact integer counts; the division result
    // is a pure function of those integers, so the folded sample is
    // identical whichever substrate produced the counts.
    double allReads = s.reads[0] + s.reads[1] + s.reads[2];
    double allWrites = s.writes[0] + s.writes[1] + s.writes[2];
    for (int l = 0; l < 3; l++) {
        if (allReads > 0)
            cs.readShare[l].add(s.reads[l] / allReads);
        if (allWrites > 0)
            cs.writeShare[l].add(s.writes[l] / allWrites);
    }
    const SchemeInfo *info = SchemeRegistry::instance().find(cs.cell.scheme);
    bool allocator = info && info->caps.usesAllocator;
    if (allocator && s.valueInstances > 0) {
        cs.orfFrac.add(s.orfValues / s.valueInstances);
        cs.lrfFrac.add(s.lrfValues / s.valueInstances);
        cs.elideFrac.add(s.mrfWritesElided / s.valueInstances);
    }
    if (s.hasPerf && s.cycles > 0)
        cs.ipc.add(s.issued / s.cycles);
}

void
CorpusAccumulator::foldError(int profileIdx, int cellIdx,
                             const std::string &message)
{
    CorpusCellStats &cs =
        result_.profiles[static_cast<std::size_t>(profileIdx)]
            .cells[static_cast<std::size_t>(cellIdx)];
    cs.errors++;
    result_.totalErrors++;
    if (cs.firstError.empty())
        cs.firstError = message;
}

void
CorpusAccumulator::foldKernel(int profileIdx, double instructions)
{
    CorpusProfileStats &ps =
        result_.profiles[static_cast<std::size_t>(profileIdx)];
    ps.kernels++;
    ps.dynInstrs.add(instructions);
}

CorpusResult
CorpusAccumulator::take()
{
    return std::move(result_);
}

bool
runCorpus(const CorpusConfig &cfg, CorpusResult &out, ThreadPool *pool,
          std::string *err)
{
    std::vector<ScenarioProfile> profiles;
    std::vector<CorpusCell> cells;
    if (!resolveCorpusConfig(cfg, profiles, cells, err))
        return false;
    CorpusConfig resolved = cfg;
    resolved.cells = cells;
    resolved.profiles.clear();
    for (const ScenarioProfile &p : profiles)
        resolved.profiles.push_back(p.name);

    ThreadPool &exec = pool ? *pool : globalPool();
    auto start = std::chrono::steady_clock::now();
    CorpusAccumulator acc(resolved, profiles);
    int nCells = static_cast<int>(cells.size());
    for (std::size_t pi = 0; pi < profiles.size(); pi++) {
        const ScenarioProfile &p = profiles[pi];
        for (int c0 = 0; c0 < cfg.kernelsPerProfile; c0 += cfg.chunk) {
            int count =
                std::min(cfg.chunk, cfg.kernelsPerProfile - c0);
            // Generate the chunk's kernels into per-index slots, then
            // run every (kernel, cell) pair through one batch so the
            // replay engine amortises per-kernel setup across cells.
            std::vector<Workload> ws(static_cast<std::size_t>(count));
            exec.parallelFor(count, [&](int k) {
                Workload w = corpusWorkload(p, cfg.seed, c0 + k);
                if (cfg.warps > 0)
                    w.run.numWarps = cfg.warps;
                ws[static_cast<std::size_t>(k)] = std::move(w);
            });
            std::vector<BatchItem> items;
            items.reserve(static_cast<std::size_t>(count) *
                          static_cast<std::size_t>(nCells));
            for (int k = 0; k < count; k++) {
                for (const CorpusCell &cell : cells) {
                    BatchItem item;
                    item.workload = &ws[static_cast<std::size_t>(k)];
                    item.cfg.scheme = cell.scheme;
                    item.cfg.entries = cell.entries;
                    item.cfg.engine = ExecEngine::AUTO;
                    item.cfg.perf = cfg.perf;
                    item.cfg.pipeline = cfg.pipeline;
                    items.push_back(std::move(item));
                }
            }
            std::vector<RunOutcome> outcomes = replayBatch(items, &exec);
            for (int k = 0; k < count; k++) {
                const RunOutcome &first =
                    outcomes[static_cast<std::size_t>(k * nCells)];
                acc.foldKernel(
                    static_cast<int>(pi),
                    first.ok()
                        ? static_cast<double>(first.counts.instructions)
                        : 0.0);
                for (int ci = 0; ci < nCells; ci++) {
                    const RunOutcome &o = outcomes[static_cast<std::size_t>(
                        k * nCells + ci)];
                    if (o.ok())
                        acc.fold(static_cast<int>(pi), ci,
                                 corpusSampleFromOutcome(o));
                    else
                        acc.foldError(static_cast<int>(pi), ci,
                                      ws[static_cast<std::size_t>(k)].name +
                                          ": " + o.error);
                }
            }
            if (cfg.clearCaches)
                globalExperimentCache().clear();
        }
    }
    out = acc.take();
    out.wallSec = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    return true;
}

std::string
corpusToJson(const CorpusResult &r)
{
    const CorpusConfig &cfg = r.config;
    JsonWriter w;
    w.beginObject();
    w.key("version").value("rfh-corpus-v1");
    w.key("config");
    w.beginObject();
    w.key("seed").value(static_cast<std::uint64_t>(cfg.seed));
    w.key("kernelsPerProfile").value(cfg.kernelsPerProfile);
    w.key("chunk").value(cfg.chunk);
    w.key("warps").value(cfg.warps);
    w.key("perf").value(cfg.perf);
    w.key("confidence").value(cfg.confidence);
    w.key("bootstrapResamples").value(cfg.bootstrapResamples);
    w.endObject();
    w.key("profiles");
    w.beginArray();
    for (std::size_t pi = 0; pi < r.profiles.size(); pi++) {
        const CorpusProfileStats &ps = r.profiles[pi];
        w.beginObject();
        w.key("profile").rawValue(profileToJson(ps.profile));
        w.key("kernels").value(static_cast<std::uint64_t>(ps.kernels));
        writeStat(w, "dynInstrs", ps.dynInstrs);
        w.key("cells");
        w.beginArray();
        for (std::size_t ci = 0; ci < ps.cells.size(); ci++) {
            const CorpusCellStats &cs = ps.cells[ci];
            w.beginObject();
            w.key("scheme").value(cs.schemeToken);
            w.key("entries").value(cs.cell.entries);
            w.key("runs").value(static_cast<std::uint64_t>(cs.runs));
            w.key("errors").value(static_cast<std::uint64_t>(cs.errors));
            if (!cs.firstError.empty())
                w.key("firstError").value(cs.firstError);
            w.key("energyRatio");
            cs.energyRatio.writeJson(w, cfg.confidence,
                                     cfg.bootstrapResamples,
                                     bandSeed(cfg, pi, ci));
            w.key("readShare");
            w.beginObject();
            for (int l = 0; l < 3; l++)
                writeStat(w, kLevelKeys[l], cs.readShare[l]);
            w.endObject();
            w.key("writeShare");
            w.beginObject();
            for (int l = 0; l < 3; l++)
                writeStat(w, kLevelKeys[l], cs.writeShare[l]);
            w.endObject();
            if (cs.orfFrac.count() || cs.lrfFrac.count() ||
                cs.elideFrac.count()) {
                w.key("alloc");
                w.beginObject();
                writeStat(w, "orfFrac", cs.orfFrac);
                writeStat(w, "lrfFrac", cs.lrfFrac);
                writeStat(w, "elideFrac", cs.elideFrac);
                w.endObject();
            }
            if (cs.ipc.count())
                writeStat(w, "ipc", cs.ipc);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.key("totalRuns").value(static_cast<std::uint64_t>(r.totalRuns));
    w.key("totalErrors").value(static_cast<std::uint64_t>(r.totalErrors));
    w.endObject();
    return w.str();
}

std::string
renderCorpusSummary(const CorpusResult &r)
{
    const CorpusConfig &cfg = r.config;
    std::string out;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%-14s %-8s %7s %6s  %-23s %7s %7s\n", "profile",
                  "scheme", "entries", "runs", "energy mean [ci]", "p50",
                  "errs");
    out += line;
    for (std::size_t pi = 0; pi < r.profiles.size(); pi++) {
        const CorpusProfileStats &ps = r.profiles[pi];
        // One line per scheme: its lowest-mean-energy cell.
        std::vector<std::string> seen;
        for (std::size_t ci = 0; ci < ps.cells.size(); ci++) {
            const CorpusCellStats &cs = ps.cells[ci];
            if (std::find(seen.begin(), seen.end(), cs.schemeToken) !=
                seen.end())
                continue;
            seen.push_back(cs.schemeToken);
            std::size_t best = ci;
            for (std::size_t cj = ci + 1; cj < ps.cells.size(); cj++) {
                const CorpusCellStats &other = ps.cells[cj];
                if (other.schemeToken != cs.schemeToken)
                    continue;
                if (other.energyRatio.count() &&
                    (!ps.cells[best].energyRatio.count() ||
                     other.energyRatio.mean() <
                         ps.cells[best].energyRatio.mean()))
                    best = cj;
            }
            const CorpusCellStats &b = ps.cells[best];
            StatBand band = b.energyRatio.bootstrapMeanBand(
                cfg.confidence, cfg.bootstrapResamples,
                bandSeed(cfg, pi, best));
            std::snprintf(line, sizeof(line),
                          "%-14s %-8s %7d %6llu  %.4f [%.4f,%.4f] %7.4f "
                          "%7llu\n",
                          ps.profile.name.c_str(), b.schemeToken.c_str(),
                          b.cell.entries,
                          static_cast<unsigned long long>(b.runs),
                          b.energyRatio.mean(), band.lo, band.hi,
                          b.energyRatio.quantile(0.5),
                          static_cast<unsigned long long>(b.errors));
            out += line;
        }
    }
    std::snprintf(line, sizeof(line),
                  "corpus: %llu runs, %llu errors, %.1fs\n",
                  static_cast<unsigned long long>(r.totalRuns),
                  static_cast<unsigned long long>(r.totalErrors),
                  r.wallSec);
    out += line;
    return out;
}

} // namespace rfh
