/**
 * @file
 * Structured run manifests: one JSON document per sweep/figure/CLI run
 * capturing everything needed to interpret and reproduce its numbers —
 * git SHA, tool name, thread count, engine, configuration, per-phase
 * timing, memoization hit/miss counters, the full metrics-registry
 * snapshot (core/metrics.h), and a list of comparable benchmark
 * scalars that `rfhc bench-diff` can gate on.
 *
 * Harnesses emit a manifest when the RFH_MANIFEST environment variable
 * names an output path (emitRunArtifacts(), which also honours
 * RFH_TRACE_EVENTS for the chrome-trace span file); the rfhc CLI takes
 * an explicit `--manifest out.json` flag. Schema: "rfh-manifest-v1",
 * documented in docs/observability.md.
 */

#ifndef RFH_CORE_MANIFEST_H
#define RFH_CORE_MANIFEST_H

#include <string>
#include <utility>
#include <vector>

#include "core/benchdiff.h"
#include "core/sweep.h"
#include "core/timing.h"

namespace rfh {

/** Everything a manifest records about one run. */
struct ManifestInfo
{
    /** Emitting binary + subcommand ("fig13_energy", "rfhc run"). */
    std::string tool;
    /** Execute engine that produced the numbers (resolved, not AUTO). */
    std::string engine;
    /** Free-form configuration key/value pairs, emitted in order. */
    std::vector<std::pair<std::string, std::string>> config;
    /** Engine-level wall/CPU timing (threads <= 0 fills the default). */
    SweepTiming timing;
    /** Per-phase aggregate for the run. */
    PhaseTimes phases;
    /** Comparable scalars for bench-diff (may be empty). */
    std::vector<BenchEntry> benchmarks;
};

/**
 * Git SHA baked into the build (RFH_GIT_SHA compile definition,
 * captured at configure time), overridable at runtime with the
 * RFH_GIT_SHA environment variable; "unknown" when neither is set.
 */
std::string buildGitSha();

/**
 * Serialise @p m plus the current global state — metrics-registry
 * snapshot and memoization cache counters — as one
 * "rfh-manifest-v1" JSON document.
 */
std::string manifestToJson(const ManifestInfo &m);

/** Write manifestToJson(m) to @p path; @return false on I/O failure. */
bool writeManifest(const std::string &path, const ManifestInfo &m);

/** RFH_MANIFEST output path ("" when unset). */
const std::string &manifestPath();

/**
 * End-of-run hook for harnesses: writes the manifest to $RFH_MANIFEST
 * and the chrome-trace span log to $RFH_TRACE_EVENTS when those
 * variables are set, reporting each written path on stderr. A no-op
 * when neither is set.
 */
void emitRunArtifacts(const ManifestInfo &m);

} // namespace rfh

#endif // RFH_CORE_MANIFEST_H
