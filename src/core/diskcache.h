/**
 * @file
 * Persistent content-addressed compile cache.
 *
 * The compile-time managed hierarchy front-loads all allocation work
 * into compilation, which makes compiled results perfectly cacheable:
 * a kernel's baseline counts, analysis bundle, and decoded trace
 * depend only on the kernel fingerprint (core/memo.h) and the run
 * configuration — never on which process computed them. DiskCache
 * persists those memo entries across processes and restarts, in the
 * spirit of ccache/sccache: a cold `rfhc serve` worker starts warm,
 * and a whole router fleet shares one compilation of each kernel.
 *
 * Storage model (one directory, one file per entry):
 *  - Entries are keyed by a 64-bit content hash; the full key string
 *    ("baseline:fp=...:warps=..." ) is stored in the entry header and
 *    verified on load, so hash collisions degrade to misses, never to
 *    wrong results.
 *  - Writes go to a temp file in the same directory and are published
 *    with rename(2) — readers never observe a half-written entry under
 *    its final name, and concurrent writers of the same key are
 *    idempotent (entries are deterministic functions of their key).
 *  - Reads validate magic, cache version, key string, length, and a
 *    payload checksum; any torn, truncated, or stale-version entry is
 *    treated as a miss and unlinked. A crash mid-write costs one
 *    recomputation, never corruption.
 *  - The directory is size-capped: when stored bytes exceed maxBytes,
 *    the least-recently-used entries (hit loads re-touch mtime) are
 *    evicted down to ~90% of the cap. Readers racing an eviction are
 *    safe: an unlinked-but-open file stays readable, and a lost race
 *    on open is just a miss.
 *
 * Counters are mirrored into the global metrics registry under
 * `service.cache.*` (disk_hits, disk_misses, disk_writes,
 * disk_evictions, disk_bytes_read, disk_bytes_written, and the
 * disk_bytes gauge), so session manifests record cache effectiveness.
 */

#ifndef RFH_CORE_DISKCACHE_H
#define RFH_CORE_DISKCACHE_H

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

namespace rfh {

/** Bump when any serialized payload layout changes. */
inline constexpr std::uint32_t kDiskCacheVersion = 1;

/** DiskCache configuration. */
struct DiskCacheOptions
{
    /** Cache directory (created if absent). */
    std::string dir;
    /** Stored-bytes cap before LRU eviction (0 = unlimited). */
    std::uint64_t maxBytes = 256ull << 20;
    /**
     * Entry format version; a loaded entry whose version differs is
     * invalidated. Tests override this to simulate upgrades; real
     * callers keep the default.
     */
    std::uint32_t version = kDiskCacheVersion;
};

/** Monotonic counters (also mirrored into core/metrics). */
struct DiskCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writes = 0;       ///< Entries published.
    std::uint64_t writeErrors = 0;  ///< I/O failures (cache stays best-effort).
    std::uint64_t evictions = 0;    ///< Entries unlinked by the size cap.
    std::uint64_t invalidated = 0;  ///< Torn/corrupt/stale entries unlinked.
    std::uint64_t bytesRead = 0;    ///< Payload bytes of hits.
    std::uint64_t bytesWritten = 0; ///< Payload bytes of writes.
    std::uint64_t bytesStored = 0;  ///< Approx. bytes on disk now.
};

/** One on-disk content-addressed cache directory (see file comment). */
class DiskCache
{
  public:
    explicit DiskCache(const DiskCacheOptions &opts);

    DiskCache(const DiskCache &) = delete;
    DiskCache &operator=(const DiskCache &) = delete;

    /**
     * Look up the entry for @p key. On a hit, @p payload receives the
     * stored bytes and the entry's LRU clock is touched. @return false
     * (a miss) when absent, torn, corrupt, or written by a different
     * cache version — the caller recomputes and store()s.
     */
    bool load(const std::string &key, std::string &payload);

    /**
     * Publish @p payload under @p key (atomic rename; best-effort —
     * I/O errors are counted, not thrown), then enforce the size cap.
     */
    void store(const std::string &key, std::string_view payload);

    /** True when the cache directory is usable. */
    bool
    usable() const
    {
        return usable_;
    }

    const std::string &
    dir() const
    {
        return opts_.dir;
    }

    DiskCacheStats stats() const;

  private:
    std::string entryPath(const std::string &key) const;
    /** Unlink a bad entry and count the invalidation. */
    void invalidate(const std::string &path);
    /** Evict oldest entries until stored bytes fit the cap. */
    void enforceCap();
    /** Recompute bytesStored_ from the directory. */
    std::uint64_t scanBytes();

    DiskCacheOptions opts_;
    bool usable_ = false;
    mutable std::mutex mu_;
    DiskCacheStats stats_;
    std::uint64_t tmpSeq_ = 0;
};

} // namespace rfh

#endif // RFH_CORE_DISKCACHE_H
