/**
 * @file
 * Top-level experiment API: configure a register-file organisation,
 * run a workload through it, and obtain access counts and energy.
 *
 * This is the library's primary entry point; the examples and the
 * benchmark harness are thin layers over it.
 */

#ifndef RFH_CORE_EXPERIMENT_H
#define RFH_CORE_EXPERIMENT_H

#include <functional>
#include <string>

#include "compiler/allocation.h"
#include "core/scheme.h"
#include "core/timing.h"
#include "energy/energy_params.h"
#include "sim/access_counters.h"
#include "sim/pipeline.h"
#include "workloads/registry.h"

namespace rfh {

/**
 * @return the registered display name of @p s ("HW", "SW LRF", ...),
 * or "?" for an unregistered handle.
 */
std::string_view schemeName(Scheme s);

/**
 * How the execute phase simulates the hierarchy.
 *
 * DIRECT interprets the kernel instruction by instruction with real
 * 32-bit values, verifying every access bit-exactly — the oracle.
 * REPLAY walks a pre-decoded dynamic stream (recorded once per
 * (kernel, RunConfig) and memoized in the ExperimentCache) doing only
 * hierarchy state updates and access counting: no opcode dispatch, no
 * value computation, no branch evaluation. Both engines produce
 * byte-identical reports; REPLAY is the fast path for sweeps.
 */
enum class ExecEngine
{
    AUTO,    ///< DIRECT for single runs, REPLAY inside sweeps.
    DIRECT,  ///< Value-verifying interpretation.
    REPLAY,  ///< Pre-decoded stream replay (counting only).
};

/** @return "direct" or "replay" (AUTO resolves before display). */
std::string_view engineName(ExecEngine e);

/** Full experiment configuration. */
struct ExperimentConfig
{
    Scheme scheme = Scheme::SW_THREE_LEVEL;
    /** RFC or ORF entries per thread (1..8). */
    int entries = 3;
    /**
     * Price ORF accesses as if the ORF had this many entries
     * (0 = entries). Used by the Section 7 idealisations.
     */
    int orfPriceEntries = 0;
    /**
     * Section 7 "never flush" idealisation: ORF/LRF contents survive
     * deschedules and strand boundaries.
     */
    bool idealNoFlush = false;
    /** Split the LRF per operand slot (SW three-level only). */
    bool splitLRF = true;
    /** Let SFU/MEM/TEX results enter the LRF (non-Figure-4 variant). */
    bool lrfAllowSharedProducers = false;
    /** Partial-range allocation (Section 4.3). */
    bool partialRanges = true;
    /** Read-operand allocation (Section 4.4). */
    bool readOperands = true;
    /** Strand-formation rules (Section 4.1 / Section 7 variants). */
    StrandOptions strandOptions;
    /** Hardware variant: flush the RFC at backward branches. */
    bool hwFlushOnBackwardBranch = false;
    /**
     * Execution engine for the simulate phase. AUTO picks DIRECT for
     * a lone runScheme call and REPLAY inside sweepEntries /
     * runAllWorkloads; the choice never changes any report byte.
     */
    ExecEngine engine = ExecEngine::AUTO;
    /**
     * Also run the cycle-level SM pipeline (sim/pipeline.h) after a
     * clean simulate phase and attach IPC / stall-breakdown stats to
     * the outcome (RunOutcome::perf). Only schemes whose caps say
     * @c pipelined participate; others ignore the flag. Off by
     * default: the pipeline costs another pass over the trace.
     */
    bool perf = false;
    /** Pipeline timing knobs used when @c perf is set. */
    PipelineConfig pipeline;
    /**
     * Cooperative cancellation probe, polled by runScheme between
     * phases (after analyze, after trace, after allocate). When it
     * returns true the run stops early with error "cancelled" and
     * later phases are skipped. Null (the default) disables polling.
     * Memoized sub-results (baseline, analyses, trace) are only ever
     * stored fully computed, so cancellation never poisons the shared
     * caches. Used by the batch service to enforce per-request
     * deadlines (src/service/).
     */
    std::function<bool()> cancel;
    /** Technology constants. */
    EnergyParams energy;

    /** The allocator options implied by this configuration. */
    AllocOptions allocOptions() const;
};

/** Outcome of running one workload under one configuration. */
struct RunOutcome
{
    AccessCounts counts;
    AllocStats alloc;              ///< Software schemes only.
    double energyPJ = 0.0;         ///< Access + wire energy.
    double baselineEnergyPJ = 0.0; ///< Flat-MRF energy, same workload.
    std::string error;             ///< Non-empty on verification failure.
    /**
     * Cycle-level pipeline stats; meaningful only when @c hasPerf.
     * Filled by runScheme when ExperimentConfig::perf is set and the
     * scheme's caps say @c pipelined.
     */
    PipelineStats perf;
    bool hasPerf = false;
    /**
     * Wall-clock spent per engine phase (aggregated across workloads
     * for runAllWorkloads outcomes). Observability only: timing is
     * excluded from the result JSON, which stays byte-identical
     * across thread counts and cache states.
     */
    PhaseTimes phases;

    bool
    ok() const
    {
        return error.empty();
    }

    /** Energy normalised to the flat register file (Figure 13). */
    double
    normalizedEnergy() const
    {
        return baselineEnergyPJ > 0 ? energyPJ / baselineEnergyPJ : 0.0;
    }
};

/**
 * Run @p w under configuration @p cfg.
 *
 * Configuration-independent work is memoized in the process-wide
 * ExperimentCache: the baseline functional execution is computed once
 * per (kernel, RunConfig), and the CFG/liveness/reaching-defs bundle
 * once per kernel, then shared read-only by the allocator and both
 * executors. Thread-safe; results are identical to an uncached run.
 */
RunOutcome runScheme(const Workload &w, const ExperimentConfig &cfg);

/** Outcome of a standalone cycle-level pipeline run. */
struct SchemePipelineResult
{
    PipelineStats stats;
    /** Accesses accounted at issue; must equal the functional counts. */
    AccessCounts counts;
    std::string error; ///< Non-empty on failure.

    bool
    ok() const
    {
        return error.empty();
    }
};

/**
 * Run @p w through the cycle-level SM pipeline under scheme
 * @p cfg.scheme with timing knobs @p pcfg. The scheme's replay
 * accounting runs at issue, so the returned counts are identical to
 * runScheme's for the same configuration (the oracle cross-checks
 * this for every scheme); the stats add IPC, stall breakdown, swap
 * and bank-conflict totals on top. Fails with an error (not a crash)
 * for schemes whose caps lack @c pipelined.
 */
SchemePipelineResult runSchemePipeline(const Workload &w,
                                       const ExperimentConfig &cfg,
                                       const PipelineConfig &pcfg = {});

/**
 * Fold @p one (the outcome of workload @p name) into @p agg in
 * deterministic order: counts and energies are summed, and every
 * failing workload's message is appended to agg.error as
 * "name: message", "; "-joined in fold order.
 */
void accumulateOutcome(RunOutcome &agg, const RunOutcome &one,
                       const std::string &name);

class ThreadPool;

/**
 * Run every workload of every suite and aggregate the counts (summed
 * across workloads before normalisation, matching the paper's
 * all-benchmark averages).
 *
 * Workloads fan out across @p pool (the global pool when null) and
 * are folded back in registry order, so the outcome — including every
 * floating-point accumulation — is identical for any thread count;
 * RFH_THREADS=1 runs the historical sequential path exactly.
 */
RunOutcome runAllWorkloads(const ExperimentConfig &cfg,
                           ThreadPool *pool = nullptr);

/** One request of a batched replay (see replayBatch). */
struct BatchItem
{
    /** Workload to run; must outlive the replayBatch call. */
    const Workload *workload = nullptr;
    ExperimentConfig cfg;
};

/**
 * Run a batch of experiments through the replay engine, amortising
 * the per-kernel setup across the batch: every distinct kernel's
 * analyses, decoded trace, and replay pre-decode are materialised in
 * the ExperimentCache once (in parallel) before the items fan out, so
 * no two items race to record the same trace and every item starts
 * with warm caches and a reusable per-thread replay arena.
 *
 * Each item's AUTO engine resolves to REPLAY (this is the batch fast
 * path; callers wanting the direct oracle say so explicitly).
 * Outcomes are byte-identical to running each item through a lone
 * runScheme call with the same resolved engine, in item order.
 */
std::vector<RunOutcome> replayBatch(const std::vector<BatchItem> &items,
                                    ThreadPool *pool = nullptr);

} // namespace rfh

#endif // RFH_CORE_EXPERIMENT_H
