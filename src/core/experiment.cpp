#include "core/experiment.h"

#include "compiler/allocator.h"
#include "sim/baseline_exec.h"
#include "sim/hw_cache.h"
#include "sim/sw_exec.h"

namespace rfh {

std::string_view
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::BASELINE: return "Baseline";
      case Scheme::HW_TWO_LEVEL: return "HW";
      case Scheme::HW_THREE_LEVEL: return "HW LRF";
      case Scheme::SW_TWO_LEVEL: return "SW";
      case Scheme::SW_THREE_LEVEL: return "SW LRF";
    }
    return "?";
}

AllocOptions
ExperimentConfig::allocOptions() const
{
    AllocOptions a;
    a.orfEntries = entries;
    a.orfPriceEntries = orfPriceEntries;
    a.useLRF = scheme == Scheme::SW_THREE_LEVEL;
    a.splitLRF = a.useLRF && splitLRF;
    a.lrfAllowSharedProducers = lrfAllowSharedProducers;
    a.partialRanges = partialRanges;
    a.readOperands = readOperands;
    a.strandOptions = strandOptions;
    return a;
}

RunOutcome
runScheme(const Workload &w, const ExperimentConfig &cfg)
{
    RunOutcome out;
    bool split = cfg.scheme == Scheme::SW_THREE_LEVEL && cfg.splitLRF;
    int price = cfg.orfPriceEntries ? cfg.orfPriceEntries : cfg.entries;
    EnergyModel em(cfg.energy, price, split);

    AccessCounts base = runBaseline(w.kernel, w.run);
    out.baselineEnergyPJ = base.totalEnergyPJ(em);

    switch (cfg.scheme) {
      case Scheme::BASELINE:
        out.counts = base;
        break;
      case Scheme::HW_TWO_LEVEL:
      case Scheme::HW_THREE_LEVEL: {
        HwCacheConfig hc;
        hc.rfcEntries = cfg.entries;
        hc.useLRF = cfg.scheme == Scheme::HW_THREE_LEVEL;
        hc.flushOnBackwardBranch = cfg.hwFlushOnBackwardBranch;
        hc.run = w.run;
        out.counts = runHwCache(w.kernel, hc);
        break;
      }
      case Scheme::SW_TWO_LEVEL:
      case Scheme::SW_THREE_LEVEL: {
        // The allocator annotates a private copy of the kernel.
        Kernel annotated = w.kernel;
        HierarchyAllocator alloc(cfg.energy, cfg.allocOptions());
        out.alloc = alloc.run(annotated);
        SwExecConfig sc;
        sc.run = w.run;
        sc.idealNoFlush = cfg.idealNoFlush;
        SwExecResult res = runSwHierarchy(annotated, cfg.allocOptions(),
                                          sc);
        out.counts = res.counts;
        out.error = res.error;
        break;
      }
    }

    out.energyPJ = out.counts.totalEnergyPJ(em);
    return out;
}

RunOutcome
runAllWorkloads(const ExperimentConfig &cfg)
{
    RunOutcome agg;
    for (const Workload &w : allWorkloads()) {
        RunOutcome one = runScheme(w, cfg);
        agg.counts.add(one.counts);
        agg.alloc.add(one.alloc);
        agg.energyPJ += one.energyPJ;
        agg.baselineEnergyPJ += one.baselineEnergyPJ;
        if (!one.ok() && agg.ok())
            agg.error = w.name + ": " + one.error;
    }
    return agg;
}

} // namespace rfh
