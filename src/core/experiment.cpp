#include "core/experiment.h"

#include <map>

#include "core/memo.h"
#include "core/metrics.h"
#include "core/parallel.h"
#include "core/scheme.h"
#include "core/trace_events.h"
#include "sim/baseline_exec.h"
#include "sim/trace.h"

namespace rfh {

namespace {

/**
 * Engine metrics, registered once and accumulated with relaxed
 * atomics — runScheme's hot path never takes the registry mutex.
 */
struct EngineMetrics
{
    Counter &runs = globalMetrics().counter("engine.runs");
    Counter &runsDirect = globalMetrics().counter("engine.runs.direct");
    Counter &runsReplay = globalMetrics().counter("engine.runs.replay");
    Counter &dynInstrs =
        globalMetrics().counter("engine.execute.dynInstrs");
    Timer &analyze = globalMetrics().timer("engine.phase.analyze");
    Timer &trace = globalMetrics().timer("engine.phase.trace");
    Timer &allocate = globalMetrics().timer("engine.phase.allocate");
    Timer &execute = globalMetrics().timer("engine.phase.execute");
    Histogram &runInstrs =
        globalMetrics().histogram("engine.run.dynInstrs");
};

/** Cycle-level pipeline observability (sim.pipeline.*). */
struct PipelineMetrics
{
    Counter &runs = globalMetrics().counter("sim.pipeline.runs");
    Counter &cycles = globalMetrics().counter("sim.pipeline.cycles");
    Counter &issued = globalMetrics().counter("sim.pipeline.issued");
    Counter &swaps = globalMetrics().counter("sim.pipeline.swaps");
    Counter &bankConflicts =
        globalMetrics().counter("sim.pipeline.bankConflicts");
    Timer &run = globalMetrics().timer("sim.pipeline.run");
};

PipelineMetrics &
pipelineMetrics()
{
    static PipelineMetrics m;
    return m;
}

EngineMetrics &
engineMetrics()
{
    static EngineMetrics m;
    return m;
}

/**
 * Record an already-measured phase as a chrome-trace span: the span
 * ends "now" and lasted @p sec, so no extra clock reads happen when
 * recording is disabled.
 */
void
recordPhaseSpan(const char *phase, const std::string &workload,
                double sec)
{
    TraceEventLog &log = TraceEventLog::global();
    if (!log.enabled() || sec <= 0.0)
        return;
    double endUs = TraceEventLog::nowUs();
    log.add(phase, "phase", endUs - sec * 1e6, sec * 1e6,
            "{\"workload\":\"" + workload + "\"}");
}

} // namespace

std::string_view
schemeName(Scheme s)
{
    const SchemeInfo *si = SchemeRegistry::instance().find(s);
    return si ? std::string_view(si->display) : std::string_view("?");
}

std::string_view
engineName(ExecEngine e)
{
    switch (e) {
      case ExecEngine::AUTO: return "auto";
      case ExecEngine::DIRECT: return "direct";
      case ExecEngine::REPLAY: return "replay";
    }
    return "?";
}

AllocOptions
ExperimentConfig::allocOptions() const
{
    const SchemeInfo *si = SchemeRegistry::instance().find(scheme);
    if (si)
        return si->backend->allocOptions(*this);
    // Unregistered handle: the scheme-independent defaults.
    AllocOptions a;
    a.orfEntries = entries;
    a.orfPriceEntries = orfPriceEntries;
    a.lrfAllowSharedProducers = lrfAllowSharedProducers;
    a.partialRanges = partialRanges;
    a.readOperands = readOperands;
    a.strandOptions = strandOptions;
    return a;
}

RunOutcome
runScheme(const Workload &w, const ExperimentConfig &cfg)
{
    RunOutcome out;
    const SchemeInfo *si = SchemeRegistry::instance().find(cfg.scheme);
    if (!si) {
        out.error = "unregistered scheme id " +
            std::to_string(cfg.scheme.id()) + " (valid: " +
            SchemeRegistry::instance().tokenList() + ")";
        return out;
    }
    const SchemeBackend &backend = *si->backend;
    const SchemeCaps &caps = si->caps;
    int price = cfg.orfPriceEntries ? cfg.orfPriceEntries : cfg.entries;
    EnergyModel em(cfg.energy, price, backend.splitLrfEnergy(cfg));

    // A lone runScheme call defaults to the value-verifying engine;
    // the sweeps resolve AUTO to REPLAY before fanning out.
    ExecEngine engine = cfg.engine == ExecEngine::AUTO
                            ? ExecEngine::DIRECT
                            : cfg.engine;

    ExperimentCache &cache = globalExperimentCache();
    Stopwatch watch;

    // Cooperative cancellation: polled between phases so a deadline
    // can stop a request before its most expensive work, without ever
    // interrupting a memoized computation mid-flight.
    auto cancelled = [&] { return cfg.cancel && cfg.cancel(); };
    if (cancelled()) {
        out.error = "cancelled";
        return out;
    }

    // ---- Analyze: structural analyses + baseline execution, both
    // memoized (configuration-independent) ----
    std::shared_ptr<const AnalysisBundle> analyses;
    if (caps.usesAnalyses)
        analyses = cache.analyses(w.kernel);
    const AccessCounts &base = cache.baseline(w.kernel, w.run);
    out.baselineEnergyPJ = base.totalEnergyPJ(em);
    out.phases.analyzeSec = watch.lap();
    recordPhaseSpan("analyze", w.name, out.phases.analyzeSec);
    if (cancelled()) {
        out.error = "cancelled";
        return out;
    }

    // ---- Trace: the pre-decoded dynamic stream, recorded once per
    // (kernel, RunConfig) and shared by every replay grid cell ----
    std::shared_ptr<const DecodedTrace> trace;
    if (engine == ExecEngine::REPLAY && caps.usesTrace) {
        trace = cache.trace(w.kernel, w.run);
        out.phases.traceSec = watch.lap();
        recordPhaseSpan("trace", w.name, out.phases.traceSec);
    }
    if (cancelled()) {
        out.error = "cancelled";
        return out;
    }

    // Replay shares the memoized pre-decode (SoA op records +
    // shared-consumer flags) across every grid cell of the kernel.
    std::shared_ptr<const ReplayDecode> dec;
    if (trace && caps.wantsDecode)
        dec = cache.decode(w.kernel);

    // ---- Allocate: the compiler annotates a private kernel copy ----
    Kernel annotated;
    const Kernel *kernel = &w.kernel;
    if (caps.usesAllocator) {
        annotated = w.kernel;
        out.alloc = backend.allocate(annotated, cfg, analyses.get());
        kernel = &annotated;
        out.phases.allocateSec = watch.lap();
        recordPhaseSpan("allocate", w.name, out.phases.allocateSec);
        if (cancelled()) {
            out.error = "cancelled";
            return out;
        }
    }

    // ---- Execute ----
    SchemeRunContext ctx;
    ctx.workload = &w;
    ctx.cfg = &cfg;
    ctx.engine = trace ? ResolvedEngine::REPLAY : ResolvedEngine::DIRECT;
    ctx.kernel = kernel;
    ctx.analyses = analyses.get();
    ctx.trace = trace.get();
    ctx.decode = dec.get();
    ctx.baseline = &base;
    SchemeSimResult res = backend.simulate(ctx);
    out.counts = res.counts;
    out.error = res.error;
    if (caps.usesTrace) {
        out.phases.executeSec = watch.lap();
        recordPhaseSpan("execute", w.name, out.phases.executeSec);
    }

    out.phases.dynInstrs = out.counts.instructions;
    out.energyPJ = backend.accountEnergyPJ(ctx, out.counts, em);

    // ---- Perf (opt-in): cycle-level pipeline pass ----
    if (cfg.perf && caps.pipelined && out.ok() && !cancelled()) {
        SchemePipelineResult pr = runSchemePipeline(w, cfg, cfg.pipeline);
        if (pr.ok()) {
            out.perf = pr.stats;
            out.hasPerf = true;
        } else {
            out.error = "pipeline: " + pr.error;
        }
    }

    // Observability only: metrics never feed back into the outcome,
    // so results stay byte-identical with any metrics state.
    EngineMetrics &mm = engineMetrics();
    mm.runs.add();
    if (caps.usesTrace)
        (engine == ExecEngine::REPLAY ? mm.runsReplay : mm.runsDirect)
            .add();
    mm.analyze.addSec(out.phases.analyzeSec);
    if (trace)
        mm.trace.addSec(out.phases.traceSec);
    if (out.phases.allocateSec > 0)
        mm.allocate.addSec(out.phases.allocateSec);
    mm.execute.addSec(out.phases.executeSec);
    mm.dynInstrs.add(out.counts.instructions);
    mm.runInstrs.observe(out.counts.instructions);
    return out;
}

SchemePipelineResult
runSchemePipeline(const Workload &w, const ExperimentConfig &cfg,
                  const PipelineConfig &pcfg)
{
    SchemePipelineResult out;
    const SchemeInfo *si = SchemeRegistry::instance().find(cfg.scheme);
    if (!si) {
        out.error = "unregistered scheme id " +
            std::to_string(cfg.scheme.id()) + " (valid: " +
            SchemeRegistry::instance().tokenList() + ")";
        return out;
    }
    if (!si->caps.pipelined) {
        out.error = "scheme '" + si->token +
            "' has no pipeline accounting";
        return out;
    }

    ExperimentCache &cache = globalExperimentCache();
    auto cancelled = [&] { return cfg.cancel && cfg.cancel(); };
    if (cancelled()) {
        out.error = "cancelled";
        return out;
    }

    // Shared memoized sub-results, exactly as runScheme gathers them.
    std::shared_ptr<const AnalysisBundle> analyses;
    if (si->caps.usesAnalyses)
        analyses = cache.analyses(w.kernel);
    std::shared_ptr<const DecodedTrace> trace =
        cache.trace(w.kernel, w.run);
    // The pristine-kernel decode drives the engine (latencies,
    // scoreboard sets — annotations change neither); backends that
    // need annotation-aware decodes build their own.
    std::shared_ptr<const ReplayDecode> dec = cache.decode(w.kernel);
    if (cancelled()) {
        out.error = "cancelled";
        return out;
    }

    // The allocator's annotated copy must outlive the run: the
    // accounting reads annotations from it on every issue.
    Kernel annotated;
    const Kernel *kernel = &w.kernel;
    if (si->caps.usesAllocator) {
        annotated = w.kernel;
        si->backend->allocate(annotated, cfg, analyses.get());
        kernel = &annotated;
        if (cancelled()) {
            out.error = "cancelled";
            return out;
        }
    }

    PipelineBuildContext ctx;
    ctx.kernel = kernel;
    ctx.cfg = &cfg;
    ctx.analyses = analyses.get();
    ctx.decode = dec.get();
    ctx.counts = &out.counts;
    std::unique_ptr<PipelineAccounting> acct =
        si->backend->makePipelineAccounting(ctx);
    if (!acct) {
        out.error = "scheme '" + si->token +
            "' advertises pipelined caps but built no accounting";
        return out;
    }

    Stopwatch watch;
    PipelineResult r = runPipeline(*trace, *dec, *acct, pcfg);
    out.stats = r.stats;
    out.error = r.error;

    PipelineMetrics &pm = pipelineMetrics();
    pm.runs.add();
    pm.cycles.add(r.stats.cycles);
    pm.issued.add(r.stats.issued);
    pm.swaps.add(r.stats.swaps);
    pm.bankConflicts.add(r.stats.bankConflicts);
    pm.run.addSec(watch.lap());
    return out;
}

void
accumulateOutcome(RunOutcome &agg, const RunOutcome &one,
                  const std::string &name)
{
    agg.counts.add(one.counts);
    agg.alloc.add(one.alloc);
    agg.energyPJ += one.energyPJ;
    agg.baselineEnergyPJ += one.baselineEnergyPJ;
    agg.phases.add(one.phases);
    if (one.hasPerf) {
        agg.perf.add(one.perf);
        agg.hasPerf = true;
    }
    if (!one.ok()) {
        if (!agg.error.empty())
            agg.error += "; ";
        agg.error += name + ": " + one.error;
    }
}

RunOutcome
runAllWorkloads(const ExperimentConfig &cfg, ThreadPool *pool)
{
    const std::vector<Workload> &ws = allWorkloads();
    ThreadPool &p = pool ? *pool : globalPool();
    // Sweep-style bulk evaluation: AUTO resolves to the replay engine
    // (the direct oracle remains selectable via cfg.engine).
    ExperimentConfig run = cfg;
    if (run.engine == ExecEngine::AUTO)
        run.engine = ExecEngine::REPLAY;
    std::vector<RunOutcome> outs(ws.size());
    p.parallelFor(static_cast<int>(ws.size()),
                  [&](int i) { outs[i] = runScheme(ws[i], run); });
    // Fold in registry order so aggregation (floating-point sums
    // included) is independent of completion order and thread count.
    RunOutcome agg;
    for (std::size_t i = 0; i < ws.size(); i++)
        accumulateOutcome(agg, outs[i], ws[i].name);
    return agg;
}

std::vector<RunOutcome>
replayBatch(const std::vector<BatchItem> &items, ThreadPool *pool)
{
    static Counter &batches =
        globalMetrics().counter("engine.replayBatch.calls");
    static Histogram &sizes =
        globalMetrics().histogram("engine.replayBatch.items");
    batches.add();
    sizes.observe(items.size());

    ThreadPool &p = pool ? *pool : globalPool();
    ExperimentCache &cache = globalExperimentCache();

    // Resolve engines up front; the pre-warm below only matters for
    // replay items.
    std::vector<ExperimentConfig> cfgs(items.size());
    for (std::size_t i = 0; i < items.size(); i++) {
        cfgs[i] = items[i].cfg;
        if (cfgs[i].engine == ExecEngine::AUTO)
            cfgs[i].engine = ExecEngine::REPLAY;
    }

    // ---- Pre-warm: one slot per distinct kernel ----
    // Materialise the shared sub-results once each, in parallel, so
    // the fan-out below never serialises on a cold cache entry (the
    // memo's call_once would otherwise block every grid cell of a
    // kernel behind the first).
    struct Warm
    {
        const Workload *w = nullptr;
        bool wantAnalyses = false;
        bool wantTrace = false;
        bool wantDecode = false;
    };
    SchemeRegistry &registry = SchemeRegistry::instance();
    std::vector<Warm> warm;
    std::map<std::uint64_t, std::size_t> slot;
    for (std::size_t i = 0; i < items.size(); i++) {
        const Workload *w = items[i].workload;
        if (!w)
            continue;
        auto [it, fresh] =
            slot.try_emplace(kernelFingerprint(w->kernel), warm.size());
        if (fresh)
            warm.push_back(Warm{w, false, false, false});
        Warm &entry = warm[it->second];
        const SchemeInfo *si = registry.find(cfgs[i].scheme);
        if (!si)
            continue;
        if (cfgs[i].engine == ExecEngine::REPLAY && si->caps.usesTrace) {
            entry.wantTrace = true;
            entry.wantAnalyses |= si->caps.usesAnalyses;
            entry.wantDecode |= si->caps.wantsDecode;
        }
    }
    p.parallelFor(static_cast<int>(warm.size()), [&](int i) {
        const Warm &e = warm[i];
        cache.baseline(e.w->kernel, e.w->run);
        if (e.wantAnalyses || e.wantDecode)
            cache.analyses(e.w->kernel);
        if (e.wantTrace)
            cache.trace(e.w->kernel, e.w->run);
        if (e.wantDecode)
            cache.decode(e.w->kernel);
    });

    // ---- Fan out ----
    std::vector<RunOutcome> outs(items.size());
    p.parallelFor(static_cast<int>(items.size()), [&](int i) {
        if (!items[i].workload) {
            outs[i].error = "batch item has no workload";
            return;
        }
        outs[i] = runScheme(*items[i].workload, cfgs[i]);
    });
    return outs;
}

} // namespace rfh
