#include "core/experiment.h"

#include <map>

#include "compiler/allocator.h"
#include "core/memo.h"
#include "core/metrics.h"
#include "core/parallel.h"
#include "core/trace_events.h"
#include "sim/baseline_exec.h"
#include "sim/hw_cache.h"
#include "sim/sw_exec.h"

namespace rfh {

namespace {

/**
 * Engine metrics, registered once and accumulated with relaxed
 * atomics — runScheme's hot path never takes the registry mutex.
 */
struct EngineMetrics
{
    Counter &runs = globalMetrics().counter("engine.runs");
    Counter &runsDirect = globalMetrics().counter("engine.runs.direct");
    Counter &runsReplay = globalMetrics().counter("engine.runs.replay");
    Counter &dynInstrs =
        globalMetrics().counter("engine.execute.dynInstrs");
    Timer &analyze = globalMetrics().timer("engine.phase.analyze");
    Timer &trace = globalMetrics().timer("engine.phase.trace");
    Timer &allocate = globalMetrics().timer("engine.phase.allocate");
    Timer &execute = globalMetrics().timer("engine.phase.execute");
    Histogram &runInstrs =
        globalMetrics().histogram("engine.run.dynInstrs");
};

EngineMetrics &
engineMetrics()
{
    static EngineMetrics m;
    return m;
}

/**
 * Record an already-measured phase as a chrome-trace span: the span
 * ends "now" and lasted @p sec, so no extra clock reads happen when
 * recording is disabled.
 */
void
recordPhaseSpan(const char *phase, const std::string &workload,
                double sec)
{
    TraceEventLog &log = TraceEventLog::global();
    if (!log.enabled() || sec <= 0.0)
        return;
    double endUs = TraceEventLog::nowUs();
    log.add(phase, "phase", endUs - sec * 1e6, sec * 1e6,
            "{\"workload\":\"" + workload + "\"}");
}

} // namespace

std::string_view
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::BASELINE: return "Baseline";
      case Scheme::HW_TWO_LEVEL: return "HW";
      case Scheme::HW_THREE_LEVEL: return "HW LRF";
      case Scheme::SW_TWO_LEVEL: return "SW";
      case Scheme::SW_THREE_LEVEL: return "SW LRF";
    }
    return "?";
}

std::string_view
engineName(ExecEngine e)
{
    switch (e) {
      case ExecEngine::AUTO: return "auto";
      case ExecEngine::DIRECT: return "direct";
      case ExecEngine::REPLAY: return "replay";
    }
    return "?";
}

AllocOptions
ExperimentConfig::allocOptions() const
{
    AllocOptions a;
    a.orfEntries = entries;
    a.orfPriceEntries = orfPriceEntries;
    a.useLRF = scheme == Scheme::SW_THREE_LEVEL;
    a.splitLRF = a.useLRF && splitLRF;
    a.lrfAllowSharedProducers = lrfAllowSharedProducers;
    a.partialRanges = partialRanges;
    a.readOperands = readOperands;
    a.strandOptions = strandOptions;
    return a;
}

RunOutcome
runScheme(const Workload &w, const ExperimentConfig &cfg)
{
    RunOutcome out;
    bool split = cfg.scheme == Scheme::SW_THREE_LEVEL && cfg.splitLRF;
    int price = cfg.orfPriceEntries ? cfg.orfPriceEntries : cfg.entries;
    EnergyModel em(cfg.energy, price, split);

    // A lone runScheme call defaults to the value-verifying engine;
    // the sweeps resolve AUTO to REPLAY before fanning out.
    ExecEngine engine = cfg.engine == ExecEngine::AUTO
                            ? ExecEngine::DIRECT
                            : cfg.engine;

    ExperimentCache &cache = globalExperimentCache();
    Stopwatch watch;

    // Cooperative cancellation: polled between phases so a deadline
    // can stop a request before its most expensive work, without ever
    // interrupting a memoized computation mid-flight.
    auto cancelled = [&] { return cfg.cancel && cfg.cancel(); };
    if (cancelled()) {
        out.error = "cancelled";
        return out;
    }

    // ---- Analyze: structural analyses + baseline execution, both
    // memoized (configuration-independent) ----
    std::shared_ptr<const AnalysisBundle> analyses;
    if (cfg.scheme != Scheme::BASELINE)
        analyses = cache.analyses(w.kernel);
    const AccessCounts &base = cache.baseline(w.kernel, w.run);
    out.baselineEnergyPJ = base.totalEnergyPJ(em);
    out.phases.analyzeSec = watch.lap();
    recordPhaseSpan("analyze", w.name, out.phases.analyzeSec);
    if (cancelled()) {
        out.error = "cancelled";
        return out;
    }

    // ---- Trace: the pre-decoded dynamic stream, recorded once per
    // (kernel, RunConfig) and shared by every replay grid cell ----
    std::shared_ptr<const DecodedTrace> trace;
    if (engine == ExecEngine::REPLAY && cfg.scheme != Scheme::BASELINE) {
        trace = cache.trace(w.kernel, w.run);
        out.phases.traceSec = watch.lap();
        recordPhaseSpan("trace", w.name, out.phases.traceSec);
    }
    if (cancelled()) {
        out.error = "cancelled";
        return out;
    }

    switch (cfg.scheme) {
      case Scheme::BASELINE:
        out.counts = base;
        break;
      case Scheme::HW_TWO_LEVEL:
      case Scheme::HW_THREE_LEVEL: {
        HwCacheConfig hc;
        hc.rfcEntries = cfg.entries;
        hc.useLRF = cfg.scheme == Scheme::HW_THREE_LEVEL;
        hc.flushOnBackwardBranch = cfg.hwFlushOnBackwardBranch;
        hc.run = w.run;
        // Replay shares the memoized pre-decode (SoA op records +
        // shared-consumer flags) across every grid cell of the kernel.
        std::shared_ptr<const ReplayDecode> dec;
        if (trace)
            dec = cache.decode(w.kernel);
        out.counts = trace ? replayHwCache(w.kernel, hc, *trace,
                                           analyses.get(), dec.get())
                           : runHwCache(w.kernel, hc, analyses.get());
        out.phases.executeSec = watch.lap();
        recordPhaseSpan("execute", w.name, out.phases.executeSec);
        break;
      }
      case Scheme::SW_TWO_LEVEL:
      case Scheme::SW_THREE_LEVEL: {
        // The allocator annotates a private copy of the kernel.
        Kernel annotated = w.kernel;
        HierarchyAllocator alloc(cfg.energy, cfg.allocOptions());
        out.alloc = alloc.run(annotated, analyses.get());
        out.phases.allocateSec = watch.lap();
        recordPhaseSpan("allocate", w.name, out.phases.allocateSec);
        if (cancelled()) {
            out.error = "cancelled";
            return out;
        }
        SwExecConfig sc;
        sc.run = w.run;
        sc.idealNoFlush = cfg.idealNoFlush;
        // Annotations never change the dynamic path, so the pristine
        // kernel's trace replays the annotated copy exactly.
        SwExecResult res =
            trace ? replaySwHierarchy(annotated, cfg.allocOptions(),
                                      *trace, sc, analyses.get())
                  : runSwHierarchy(annotated, cfg.allocOptions(), sc,
                                   analyses.get());
        out.counts = res.counts;
        out.error = res.error;
        out.phases.executeSec = watch.lap();
        recordPhaseSpan("execute", w.name, out.phases.executeSec);
        break;
      }
    }

    out.phases.dynInstrs = out.counts.instructions;
    out.energyPJ = out.counts.totalEnergyPJ(em);

    // Observability only: metrics never feed back into the outcome,
    // so results stay byte-identical with any metrics state.
    EngineMetrics &mm = engineMetrics();
    mm.runs.add();
    if (cfg.scheme != Scheme::BASELINE)
        (engine == ExecEngine::REPLAY ? mm.runsReplay : mm.runsDirect)
            .add();
    mm.analyze.addSec(out.phases.analyzeSec);
    if (trace)
        mm.trace.addSec(out.phases.traceSec);
    if (out.phases.allocateSec > 0)
        mm.allocate.addSec(out.phases.allocateSec);
    mm.execute.addSec(out.phases.executeSec);
    mm.dynInstrs.add(out.counts.instructions);
    mm.runInstrs.observe(out.counts.instructions);
    return out;
}

void
accumulateOutcome(RunOutcome &agg, const RunOutcome &one,
                  const std::string &name)
{
    agg.counts.add(one.counts);
    agg.alloc.add(one.alloc);
    agg.energyPJ += one.energyPJ;
    agg.baselineEnergyPJ += one.baselineEnergyPJ;
    agg.phases.add(one.phases);
    if (!one.ok()) {
        if (!agg.error.empty())
            agg.error += "; ";
        agg.error += name + ": " + one.error;
    }
}

RunOutcome
runAllWorkloads(const ExperimentConfig &cfg, ThreadPool *pool)
{
    const std::vector<Workload> &ws = allWorkloads();
    ThreadPool &p = pool ? *pool : globalPool();
    // Sweep-style bulk evaluation: AUTO resolves to the replay engine
    // (the direct oracle remains selectable via cfg.engine).
    ExperimentConfig run = cfg;
    if (run.engine == ExecEngine::AUTO)
        run.engine = ExecEngine::REPLAY;
    std::vector<RunOutcome> outs(ws.size());
    p.parallelFor(static_cast<int>(ws.size()),
                  [&](int i) { outs[i] = runScheme(ws[i], run); });
    // Fold in registry order so aggregation (floating-point sums
    // included) is independent of completion order and thread count.
    RunOutcome agg;
    for (std::size_t i = 0; i < ws.size(); i++)
        accumulateOutcome(agg, outs[i], ws[i].name);
    return agg;
}

std::vector<RunOutcome>
replayBatch(const std::vector<BatchItem> &items, ThreadPool *pool)
{
    static Counter &batches =
        globalMetrics().counter("engine.replayBatch.calls");
    static Histogram &sizes =
        globalMetrics().histogram("engine.replayBatch.items");
    batches.add();
    sizes.observe(items.size());

    ThreadPool &p = pool ? *pool : globalPool();
    ExperimentCache &cache = globalExperimentCache();

    // Resolve engines up front; the pre-warm below only matters for
    // replay items.
    std::vector<ExperimentConfig> cfgs(items.size());
    for (std::size_t i = 0; i < items.size(); i++) {
        cfgs[i] = items[i].cfg;
        if (cfgs[i].engine == ExecEngine::AUTO)
            cfgs[i].engine = ExecEngine::REPLAY;
    }

    // ---- Pre-warm: one slot per distinct kernel ----
    // Materialise the shared sub-results once each, in parallel, so
    // the fan-out below never serialises on a cold cache entry (the
    // memo's call_once would otherwise block every grid cell of a
    // kernel behind the first).
    struct Warm
    {
        const Workload *w = nullptr;
        bool wantTrace = false;
        bool wantDecode = false;
    };
    std::vector<Warm> warm;
    std::map<std::uint64_t, std::size_t> slot;
    for (std::size_t i = 0; i < items.size(); i++) {
        const Workload *w = items[i].workload;
        if (!w)
            continue;
        auto [it, fresh] =
            slot.try_emplace(kernelFingerprint(w->kernel), warm.size());
        if (fresh)
            warm.push_back(Warm{w, false, false});
        Warm &entry = warm[it->second];
        if (cfgs[i].engine == ExecEngine::REPLAY &&
            cfgs[i].scheme != Scheme::BASELINE) {
            entry.wantTrace = true;
            if (cfgs[i].scheme == Scheme::HW_TWO_LEVEL ||
                cfgs[i].scheme == Scheme::HW_THREE_LEVEL)
                entry.wantDecode = true;
        }
    }
    p.parallelFor(static_cast<int>(warm.size()), [&](int i) {
        const Warm &e = warm[i];
        cache.baseline(e.w->kernel, e.w->run);
        if (e.wantTrace || e.wantDecode)
            cache.analyses(e.w->kernel);
        if (e.wantTrace)
            cache.trace(e.w->kernel, e.w->run);
        if (e.wantDecode)
            cache.decode(e.w->kernel);
    });

    // ---- Fan out ----
    std::vector<RunOutcome> outs(items.size());
    p.parallelFor(static_cast<int>(items.size()), [&](int i) {
        if (!items[i].workload) {
            outs[i].error = "batch item has no workload";
            return;
        }
        outs[i] = runScheme(*items[i].workload, cfgs[i]);
    });
    return outs;
}

} // namespace rfh
