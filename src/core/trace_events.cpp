#include "core/trace_events.h"

#include <chrono>
#include <cstdlib>
#include <fstream>

#include "core/json.h"

namespace rfh {

namespace {

/** Small integer track id per recording thread, assigned on first use. */
int
threadTrackId()
{
    static std::atomic<int> next{0};
    thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

std::chrono::steady_clock::time_point
processStart()
{
    static const auto start = std::chrono::steady_clock::now();
    return start;
}

} // namespace

double
TraceEventLog::nowUs()
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - processStart())
        .count();
}

void
TraceEventLog::add(std::string name, std::string category,
                   double startUs, double durUs, std::string args)
{
    TraceEvent e;
    e.name = std::move(name);
    e.category = std::move(category);
    e.args = std::move(args);
    e.tid = threadTrackId();
    e.startUs = startUs;
    e.durUs = durUs;
    std::lock_guard<std::mutex> lk(mu_);
    events_.push_back(std::move(e));
}

std::size_t
TraceEventLog::size() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return events_.size();
}

void
TraceEventLog::clear()
{
    std::lock_guard<std::mutex> lk(mu_);
    events_.clear();
}

std::string
TraceEventLog::toJson() const
{
    std::vector<TraceEvent> events;
    {
        std::lock_guard<std::mutex> lk(mu_);
        events = events_;
    }
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent &e : events) {
        if (!first)
            out += ",";
        first = false;
        JsonWriter w;
        w.beginObject();
        w.key("name").value(e.name);
        w.key("cat").value(e.category);
        w.key("ph").value("X");
        w.key("pid").value(1);
        w.key("tid").value(e.tid);
        w.key("ts").value(e.startUs);
        w.key("dur").value(e.durUs);
        w.endObject();
        std::string obj = w.str();
        // The args field is a pre-rendered JSON object; splice it in
        // before the closing brace (JsonWriter emits scalars only).
        if (!e.args.empty())
            obj.insert(obj.size() - 1, ",\"args\":" + e.args);
        out += obj;
    }
    out += "],\"displayTimeUnit\":\"ms\"}";
    return out;
}

bool
TraceEventLog::writeTo(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toJson() << "\n";
    return static_cast<bool>(out);
}

TraceEventLog &
TraceEventLog::global()
{
    static TraceEventLog *log = [] {
        auto *l = new TraceEventLog();
        if (!traceEventsPath().empty())
            l->enable();
        return l;
    }();
    return *log;
}

const std::string &
traceEventsPath()
{
    static const std::string path = [] {
        const char *p = std::getenv("RFH_TRACE_EVENTS");
        return std::string(p ? p : "");
    }();
    return path;
}

} // namespace rfh
