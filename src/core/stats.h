/**
 * @file
 * Mergeable streaming statistics for corpus-scale population sweeps.
 *
 * A StreamStat summarises one scalar metric (energy ratio, access
 * share, IPC, ...) over an unbounded sample stream in O(1) memory per
 * stream: exactly-mergeable moments, a log-bucket histogram for
 * quantiles, and a bootstrap confidence band for the mean.
 *
 * Determinism contract: every sample is quantized ONCE (to 2^-24
 * fixed point for the moments, to a 2^(1/16)-wide log bucket for the
 * histogram) at add() time; all later accumulation is exact integer
 * arithmetic on 128-bit sums and 64-bit bucket counts. merge() is
 * therefore exactly associative and commutative — splitting a stream
 * across any number of workers or shards and merging in any order
 * reproduces the sequential state bit for bit, which is what lets the
 * corpus engine (core/corpus.h) promise byte-identical aggregate JSON
 * across thread counts and fleet layouts.
 *
 * The derived figures (mean, variance, quantiles, bootstrap band) are
 * pure functions of that exact state, so they inherit the guarantee.
 */

#ifndef RFH_CORE_STATS_H
#define RFH_CORE_STATS_H

#include <cstdint>
#include <string>
#include <vector>

namespace rfh {

class JsonWriter;

/**
 * Round @p v through the result-JSON wire format ("%.6g", the
 * JsonWriter double encoding). The corpus engine quantizes every
 * real-valued sample through this before folding, so samples derived
 * locally (from full-precision RunOutcome doubles) and remotely (from
 * parsed service result documents) are identical, and local and
 * fleet corpus aggregates agree byte for byte.
 */
double wireRound(double v);

/** A two-sided confidence band. */
struct StatBand
{
    double lo = 0.0;
    double hi = 0.0;

    /** @return whether @p v lies inside the closed band. */
    bool
    contains(double v) const
    {
        return v >= lo && v <= hi;
    }
};

/**
 * Exactly-mergeable streaming summary of one nonnegative-ish scalar
 * (negative samples are accepted by the moments but pooled into one
 * histogram bucket; every corpus metric is nonnegative).
 */
class StreamStat
{
  public:
    /** Samples per octave bucket: quantile resolution 2^(1/16)-1. */
    static constexpr int kSubBuckets = 16;
    /** Smallest positive bucketed magnitude: 2^kMinExp. */
    static constexpr int kMinExp = -32;
    /** One-past-largest bucketed exponent: values >= 2^kMaxExp clamp. */
    static constexpr int kMaxExp = 40;
    /** Log-bucket count (plus one leading nonpositive bucket). */
    static constexpr int kBuckets =
        (kMaxExp - kMinExp) * kSubBuckets + 1;
    /** Fixed-point fraction bits of the moment sums. */
    static constexpr int kFracBits = 24;

    /** Fold one sample (quantized once; see file comment). */
    void add(double x);

    /**
     * Fold another stream's state in. Exactly associative and
     * commutative: any split/merge tree over the same multiset of
     * add() calls yields bit-identical state.
     */
    void merge(const StreamStat &o);

    std::uint64_t
    count() const
    {
        return n_;
    }

    /** Mean of the fixed-point-quantized samples. */
    double mean() const;

    /** Unbiased sample variance (0 for fewer than two samples). */
    double variance() const;

    double stddev() const;

    /** Smallest / largest sample seen (0 when empty). */
    double min() const;
    double max() const;

    /**
     * Histogram-interpolated quantile @p q in [0, 1]: exact to one
     * log bucket (relative error <= 2^(1/16) - 1, about 4.4%), linear
     * within the bucket. 0 when empty.
     */
    double quantile(double q) const;

    /**
     * Bootstrap confidence band for the mean: @p resamples resample
     * means drawn from the histogram with a splitmix64 stream seeded
     * by @p seed, recentred on the exact mean(), at two-sided level
     * @p confidence. Deterministic: a pure function of (state,
     * confidence, resamples, seed). Degenerates to [mean, mean] for
     * fewer than two samples.
     */
    StatBand bootstrapMeanBand(double confidence, int resamples,
                               std::uint64_t seed) const;

    /**
     * FNV-1a digest of the exact state (n, fixed-point sums, min/max
     * bits, bucket counts). Two stats compare equal iff their digests
     * do; the merge tests pin split-merge == sequential with this.
     */
    std::uint64_t fingerprint() const;

    /**
     * Serialise the summary as one JSON object: count, mean, stddev,
     * min, max, p10/p50/p90, and — when @p resamples > 0 — the
     * bootstrap band as {"band":{"lo":…,"hi":…}}. Pure function of
     * the exact state.
     */
    void writeJson(JsonWriter &w, double confidence = 0.95,
                   int resamples = 0, std::uint64_t seed = 1) const;

  private:
    /** Histogram bucket of @p x (0 = nonpositive pool). */
    static int bucketOf(double x);
    /** Lower / upper value bounds of bucket @p b. */
    static double bucketLo(int b);
    static double bucketHi(int b);

    std::uint64_t n_ = 0;
    /** Sum of quantized samples, in 2^-kFracBits units. */
    __int128 sum_ = 0;
    /** Sum of squared quantized samples, in 2^-2*kFracBits units. */
    unsigned __int128 sumSq_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
    /** Lazily sized to kBuckets on first add (empty stats stay tiny). */
    std::vector<std::uint64_t> hist_;
};

} // namespace rfh

#endif // RFH_CORE_STATS_H
