/**
 * @file
 * Pretty-printer for RPTX kernels, optionally showing allocator
 * annotations (operand levels, write destinations, strand boundaries).
 */

#ifndef RFH_IR_PRINTER_H
#define RFH_IR_PRINTER_H

#include <string>

#include "ir/kernel.h"

namespace rfh {

/** Printing options. */
struct PrintOptions
{
    /** Show hierarchy-level annotations next to each operand. */
    bool annotations = false;
    /** Show strand-endpoint markers. */
    bool strands = false;
};

/** Render one instruction as a single line (no trailing newline). */
std::string formatInstruction(const Instruction &instr, const Kernel &k,
                              const PrintOptions &opts = {});

/** Render the whole kernel as parseable RPTX text. */
std::string printKernel(const Kernel &k, const PrintOptions &opts = {});

} // namespace rfh

#endif // RFH_IR_PRINTER_H
