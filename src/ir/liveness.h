/**
 * @file
 * Register liveness analysis.
 *
 * Standard backward may-analysis over the CFG. Provides per-block
 * live-in/live-out sets and a precomputed live-after set for every
 * instruction, which the hardware cache baseline uses to elide
 * writebacks of dead values (Section 2.2) and the allocator uses to
 * decide whether a value is live out of its strand.
 */

#ifndef RFH_IR_LIVENESS_H
#define RFH_IR_LIVENESS_H

#include <bitset>
#include <vector>

#include "ir/cfg_analysis.h"
#include "ir/kernel.h"

namespace rfh {

/** Set of architectural registers. */
using RegSet = std::bitset<kMaxRegs>;

/** Registers read by @p instr (sources and predicate). */
RegSet usedRegs(const Instruction &instr);

/** Registers written by @p instr (destination; two when wide). */
RegSet definedRegs(const Instruction &instr);

class ByteReader;
class ByteWriter;

/** Liveness information for one kernel. */
class Liveness
{
  public:
    Liveness(const Kernel &k, const Cfg &cfg);
    /** Rebuild from serialize() output (persistent compile cache). */
    explicit Liveness(ByteReader &r);

    /** Exact binary encoding; Liveness(ByteReader&) restores it. */
    void serialize(ByteWriter &w) const;

    /** Registers live on entry to block @p b. */
    const RegSet &
    liveIn(int b) const
    {
        return liveIn_[b];
    }

    /** Registers live on exit from block @p b. */
    const RegSet &
    liveOut(int b) const
    {
        return liveOut_[b];
    }

    /** Registers live immediately after linear instruction @p lin. */
    const RegSet &
    liveAfter(int lin) const
    {
        return liveAfter_[lin];
    }

    /** @return true if @p r is live immediately after @p lin. */
    bool
    liveAfter(int lin, Reg r) const
    {
        return liveAfter_[lin].test(r);
    }

  private:
    std::vector<RegSet> liveIn_;
    std::vector<RegSet> liveOut_;
    std::vector<RegSet> liveAfter_;
};

} // namespace rfh

#endif // RFH_IR_LIVENESS_H
