/**
 * @file
 * Kernels and basic blocks: the unit of compilation and simulation.
 *
 * A kernel is a list of basic blocks in layout order. Control flow is
 * implied by each block's terminator: a block ends either with an
 * unconditional branch, EXIT, or falls through to the next block in
 * layout order (optionally after a conditional branch). Backward
 * branches (target index <= source index) delimit strands (Section 4.1).
 */

#ifndef RFH_IR_KERNEL_H
#define RFH_IR_KERNEL_H

#include <string>
#include <vector>

#include "ir/instruction.h"

namespace rfh {

/** Position of an instruction inside a kernel. */
struct InstrRef
{
    int block = -1;  ///< Basic-block index.
    int idx = -1;    ///< Instruction index within the block.

    bool
    operator==(const InstrRef &o) const
    {
        return block == o.block && idx == o.idx;
    }
};

/** A basic block: straight-line instructions plus an implied terminator. */
struct BasicBlock
{
    std::string label;
    std::vector<Instruction> instrs;
};

/**
 * An RPTX kernel: named CFG of basic blocks in layout order.
 *
 * Instructions are also addressable through a flat linear numbering
 * (layout order), which the allocator uses for occupancy intervals.
 */
class Kernel
{
  public:
    std::string name;
    std::vector<BasicBlock> blocks;

    /** Rebuild the linear index after structural changes. */
    void finalize();

    /** @return total instruction count. */
    int
    numInstrs() const
    {
        return static_cast<int>(linear_.size());
    }

    /** @return the position of linear instruction @p lin. */
    const InstrRef &
    ref(int lin) const
    {
        return linear_[lin];
    }

    /** @return the linear index of the first instruction of block @p b. */
    int
    blockStart(int b) const
    {
        return blockStart_[b];
    }

    const Instruction &
    instr(int lin) const
    {
        const InstrRef &r = linear_[lin];
        return blocks[r.block].instrs[r.idx];
    }

    Instruction &
    instr(int lin)
    {
        const InstrRef &r = linear_[lin];
        return blocks[r.block].instrs[r.idx];
    }

    /** @return the highest register number referenced, plus one. */
    int numRegs() const;

    /**
     * Successor block indices of block @p b, derived from its
     * terminator. An empty vector means the kernel exits.
     */
    std::vector<int> successors(int b) const;

    /** Predecessor block indices of block @p b. */
    std::vector<int> predecessors(int b) const;

    /** Reset all allocator annotations in every instruction. */
    void clearAnnotations();

    /**
     * Structural validation; returns an empty string if the kernel is
     * well formed, otherwise a description of the first problem found.
     * Checks branch targets, terminator placement, operand counts, and
     * register bounds.
     */
    std::string validate() const;

  private:
    std::vector<InstrRef> linear_;
    std::vector<int> blockStart_;
};

/**
 * Fluent helper for building kernels in tests and generators.
 *
 * Usage:
 * @code
 *   KernelBuilder b("axpy");
 *   b.block("entry");
 *   b.add(makeLoad(Opcode::LD_GLOBAL, 1, 0));
 *   ...
 *   Kernel k = b.take();
 * @endcode
 */
class KernelBuilder
{
  public:
    explicit KernelBuilder(std::string name);

    /** Start a new basic block; @return its index. */
    int block(std::string label = "");

    /** Append an instruction to the current block. */
    KernelBuilder &add(Instruction instr);

    /** Finalize and return the kernel (builder becomes empty). */
    Kernel take();

  private:
    Kernel kernel_;
};

} // namespace rfh

#endif // RFH_IR_KERNEL_H
