#include "ir/liveness.h"

namespace rfh {

RegSet
usedRegs(const Instruction &instr)
{
    RegSet s;
    for (int i = 0; i < instr.numSrcs; i++)
        if (instr.srcs[i].isReg)
            s.set(instr.srcs[i].reg);
    if (instr.pred) {
        s.set(*instr.pred);
        // A predicated definition merges with the old value (inactive
        // threads keep it), so the destination is also a use.
        s |= definedRegs(instr);
    }
    return s;
}

RegSet
definedRegs(const Instruction &instr)
{
    RegSet s;
    if (instr.dst) {
        s.set(*instr.dst);
        if (instr.wide)
            s.set(*instr.dst + 1);
    }
    return s;
}

Liveness::Liveness(const Kernel &k, const Cfg &cfg)
{
    int n = cfg.numBlocks();
    liveIn_.assign(n, RegSet());
    liveOut_.assign(n, RegSet());

    // Per-block use (upward-exposed) and def sets.
    std::vector<RegSet> use(n), def(n);
    for (int b = 0; b < n; b++) {
        for (const auto &in : k.blocks[b].instrs) {
            use[b] |= usedRegs(in) & ~def[b];
            def[b] |= definedRegs(in);
        }
    }

    bool changed = true;
    while (changed) {
        changed = false;
        for (int b = n - 1; b >= 0; b--) {
            RegSet out;
            for (int s : cfg.succs(b))
                out |= liveIn_[s];
            RegSet in = use[b] | (out & ~def[b]);
            if (out != liveOut_[b] || in != liveIn_[b]) {
                liveOut_[b] = out;
                liveIn_[b] = in;
                changed = true;
            }
        }
    }

    // Per-instruction live-after, by walking each block backwards.
    liveAfter_.assign(k.numInstrs(), RegSet());
    for (int b = 0; b < n; b++) {
        RegSet cur = liveOut_[b];
        const auto &instrs = k.blocks[b].instrs;
        for (int i = static_cast<int>(instrs.size()) - 1; i >= 0; i--) {
            int lin = k.blockStart(b) + i;
            liveAfter_[lin] = cur;
            cur &= ~definedRegs(instrs[i]);
            cur |= usedRegs(instrs[i]);
        }
    }
}

} // namespace rfh
