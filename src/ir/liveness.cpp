#include "ir/liveness.h"

#include "core/serialize.h"

namespace rfh {

namespace {

std::vector<RegSet>
readRegSets(ByteReader &r)
{
    std::uint32_t n = r.u32();
    std::vector<RegSet> v;
    v.reserve(n);
    for (std::uint32_t i = 0; i < n; i++)
        v.push_back(r.bits<kMaxRegs>());
    return v;
}

void
writeRegSets(ByteWriter &w, const std::vector<RegSet> &v)
{
    w.u32(static_cast<std::uint32_t>(v.size()));
    for (const RegSet &s : v)
        w.bits(s);
}

} // namespace

Liveness::Liveness(ByteReader &r)
{
    liveIn_ = readRegSets(r);
    liveOut_ = readRegSets(r);
    liveAfter_ = readRegSets(r);
}

void
Liveness::serialize(ByteWriter &w) const
{
    writeRegSets(w, liveIn_);
    writeRegSets(w, liveOut_);
    writeRegSets(w, liveAfter_);
}

RegSet
usedRegs(const Instruction &instr)
{
    RegSet s;
    for (int i = 0; i < instr.numSrcs; i++)
        if (instr.srcs[i].isReg)
            s.set(instr.srcs[i].reg);
    if (instr.pred) {
        s.set(*instr.pred);
        // A predicated definition merges with the old value (inactive
        // threads keep it), so the destination is also a use.
        s |= definedRegs(instr);
    }
    return s;
}

RegSet
definedRegs(const Instruction &instr)
{
    RegSet s;
    if (instr.dst) {
        s.set(*instr.dst);
        if (instr.wide)
            s.set(*instr.dst + 1);
    }
    return s;
}

Liveness::Liveness(const Kernel &k, const Cfg &cfg)
{
    int n = cfg.numBlocks();
    liveIn_.assign(n, RegSet());
    liveOut_.assign(n, RegSet());

    // Per-block use (upward-exposed) and def sets.
    std::vector<RegSet> use(n), def(n);
    for (int b = 0; b < n; b++) {
        for (const auto &in : k.blocks[b].instrs) {
            use[b] |= usedRegs(in) & ~def[b];
            def[b] |= definedRegs(in);
        }
    }

    bool changed = true;
    while (changed) {
        changed = false;
        for (int b = n - 1; b >= 0; b--) {
            RegSet out;
            for (int s : cfg.succs(b))
                out |= liveIn_[s];
            RegSet in = use[b] | (out & ~def[b]);
            if (out != liveOut_[b] || in != liveIn_[b]) {
                liveOut_[b] = out;
                liveIn_[b] = in;
                changed = true;
            }
        }
    }

    // Per-instruction live-after, by walking each block backwards.
    liveAfter_.assign(k.numInstrs(), RegSet());
    for (int b = 0; b < n; b++) {
        RegSet cur = liveOut_[b];
        const auto &instrs = k.blocks[b].instrs;
        for (int i = static_cast<int>(instrs.size()) - 1; i >= 0; i--) {
            int lin = k.blockStart(b) + i;
            liveAfter_[lin] = cur;
            cur &= ~definedRegs(instrs[i]);
            cur |= usedRegs(instrs[i]);
        }
    }
}

} // namespace rfh
