#include "ir/opcode.h"

#include <array>
#include <unordered_map>

namespace rfh {

namespace {

struct OpInfo
{
    std::string_view name;
    UnitClass unit;
    LatencyClass latency;
    bool dest;
    int srcs;
};

constexpr std::array<OpInfo, kNumOpcodes> opTable = {{
    // name          unit             latency                dest  srcs
    {"iadd",      UnitClass::ALU,  LatencyClass::SHORT,  true,  2},
    {"isub",      UnitClass::ALU,  LatencyClass::SHORT,  true,  2},
    {"imul",      UnitClass::ALU,  LatencyClass::SHORT,  true,  2},
    {"imad",      UnitClass::ALU,  LatencyClass::SHORT,  true,  3},
    {"imin",      UnitClass::ALU,  LatencyClass::SHORT,  true,  2},
    {"imax",      UnitClass::ALU,  LatencyClass::SHORT,  true,  2},
    {"and",       UnitClass::ALU,  LatencyClass::SHORT,  true,  2},
    {"or",        UnitClass::ALU,  LatencyClass::SHORT,  true,  2},
    {"xor",       UnitClass::ALU,  LatencyClass::SHORT,  true,  2},
    {"not",       UnitClass::ALU,  LatencyClass::SHORT,  true,  1},
    {"shl",       UnitClass::ALU,  LatencyClass::SHORT,  true,  2},
    {"shr",       UnitClass::ALU,  LatencyClass::SHORT,  true,  2},
    {"fadd",      UnitClass::ALU,  LatencyClass::SHORT,  true,  2},
    {"fsub",      UnitClass::ALU,  LatencyClass::SHORT,  true,  2},
    {"fmul",      UnitClass::ALU,  LatencyClass::SHORT,  true,  2},
    {"ffma",      UnitClass::ALU,  LatencyClass::SHORT,  true,  3},
    {"fmin",      UnitClass::ALU,  LatencyClass::SHORT,  true,  2},
    {"fmax",      UnitClass::ALU,  LatencyClass::SHORT,  true,  2},
    {"setlt",     UnitClass::ALU,  LatencyClass::SHORT,  true,  2},
    {"setle",     UnitClass::ALU,  LatencyClass::SHORT,  true,  2},
    {"seteq",     UnitClass::ALU,  LatencyClass::SHORT,  true,  2},
    {"setne",     UnitClass::ALU,  LatencyClass::SHORT,  true,  2},
    {"setgt",     UnitClass::ALU,  LatencyClass::SHORT,  true,  2},
    {"setge",     UnitClass::ALU,  LatencyClass::SHORT,  true,  2},
    {"sel",       UnitClass::ALU,  LatencyClass::SHORT,  true,  3},
    {"mov",       UnitClass::ALU,  LatencyClass::SHORT,  true,  1},
    {"cvt",       UnitClass::ALU,  LatencyClass::SHORT,  true,  1},
    {"rcp",       UnitClass::SFU,  LatencyClass::MEDIUM, true,  1},
    {"sqrt",      UnitClass::SFU,  LatencyClass::MEDIUM, true,  1},
    {"rsqrt",     UnitClass::SFU,  LatencyClass::MEDIUM, true,  1},
    {"sin",       UnitClass::SFU,  LatencyClass::MEDIUM, true,  1},
    {"cos",       UnitClass::SFU,  LatencyClass::MEDIUM, true,  1},
    {"lg2",       UnitClass::SFU,  LatencyClass::MEDIUM, true,  1},
    {"ex2",       UnitClass::SFU,  LatencyClass::MEDIUM, true,  1},
    {"ld.global", UnitClass::MEM,  LatencyClass::LONG,   true,  1},
    {"ld.shared", UnitClass::MEM,  LatencyClass::MEDIUM, true,  1},
    {"ld.param",  UnitClass::MEM,  LatencyClass::MEDIUM, true,  1},
    {"st.global", UnitClass::MEM,  LatencyClass::SHORT,  false, 2},
    {"st.shared", UnitClass::MEM,  LatencyClass::SHORT,  false, 2},
    {"tex",       UnitClass::TEX,  LatencyClass::LONG,   true,  1},
    {"bra",       UnitClass::CTRL, LatencyClass::SHORT,  false, 0},
    {"bar",       UnitClass::CTRL, LatencyClass::MEDIUM, false, 0},
    {"exit",      UnitClass::CTRL, LatencyClass::SHORT,  false, 0},
}};

const OpInfo &
info(Opcode op)
{
    return opTable[static_cast<int>(op)];
}

} // namespace

UnitClass
unitClass(Opcode op)
{
    return info(op).unit;
}

LatencyClass
latencyClass(Opcode op)
{
    return info(op).latency;
}

bool
hasDest(Opcode op)
{
    return info(op).dest;
}

int
numSrcOperands(Opcode op)
{
    return info(op).srcs;
}

std::string_view
mnemonic(Opcode op)
{
    return info(op).name;
}

bool
parseOpcode(std::string_view s, Opcode &out)
{
    static const std::unordered_map<std::string_view, Opcode> lookup = [] {
        std::unordered_map<std::string_view, Opcode> m;
        for (int i = 0; i < kNumOpcodes; i++)
            m.emplace(opTable[i].name, static_cast<Opcode>(i));
        return m;
    }();
    auto it = lookup.find(s);
    if (it == lookup.end())
        return false;
    out = it->second;
    return true;
}

} // namespace rfh
