#include "ir/parser.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

namespace rfh {

namespace {

/** Cursor over one line of text. */
class LineCursor
{
  public:
    explicit LineCursor(std::string_view s) : s_(s) {}

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == ','))
            pos_++;
    }

    bool
    done()
    {
        skipWs();
        return pos_ >= s_.size();
    }

    char
    peek()
    {
        skipWs();
        return pos_ < s_.size() ? s_[pos_] : '\0';
    }

    bool
    consume(char c)
    {
        if (peek() == c) {
            pos_++;
            return true;
        }
        return false;
    }

    /** Read a token of [A-Za-z0-9_.$%]. */
    std::string_view
    token()
    {
        skipWs();
        size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '_' || s_[pos_] == '.' || s_[pos_] == '$' ||
                s_[pos_] == '%' || s_[pos_] == '-'))
            pos_++;
        return s_.substr(start, pos_ - start);
    }

  private:
    std::string_view s_;
    size_t pos_ = 0;
};

std::string_view
stripComment(std::string_view line)
{
    for (size_t i = 0; i < line.size(); i++) {
        if (line[i] == ';' ||
            (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '/'))
            return line.substr(0, i);
    }
    return line;
}

std::string_view
trim(std::string_view s)
{
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
        s.remove_prefix(1);
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
        s.remove_suffix(1);
    return s;
}

bool
parseRegToken(std::string_view tok, Reg &out)
{
    if (tok.size() < 2 || (tok[0] != 'R' && tok[0] != 'r'))
        return false;
    int v = 0;
    for (size_t i = 1; i < tok.size(); i++) {
        if (!std::isdigit(static_cast<unsigned char>(tok[i])))
            return false;
        v = v * 10 + (tok[i] - '0');
    }
    if (v >= kMaxRegs)
        return false;
    out = static_cast<Reg>(v);
    return true;
}

bool
parseImmToken(std::string_view tok, std::uint32_t &out)
{
    if (tok.empty())
        return false;
    std::string tmp(tok);
    char *end = nullptr;
    long long v = std::strtoll(tmp.c_str(), &end, 0);
    if (end != tmp.c_str() + tmp.size())
        return false;
    out = static_cast<std::uint32_t>(v);
    return true;
}

} // namespace

ParseResult
parseKernel(std::string_view text)
{
    ParseResult result;
    Kernel &k = result.kernel;
    std::map<std::string, int, std::less<>> label_to_block;
    // (block, instr, line, label) for branch fixups.
    struct Fixup { int block; int instr; int line; std::string label; };
    std::vector<Fixup> fixups;

    auto fail = [&](int line, const std::string &msg) {
        result.ok = false;
        result.error = "line " + std::to_string(line) + ": " + msg;
        return result;
    };

    int line_no = 0;
    size_t pos = 0;
    bool in_block = false;
    while (pos <= text.size()) {
        size_t eol = text.find('\n', pos);
        if (eol == std::string_view::npos)
            eol = text.size();
        std::string_view raw = text.substr(pos, eol - pos);
        pos = eol + 1;
        line_no++;
        std::string_view line = trim(stripComment(raw));
        if (line.empty())
            continue;

        if (line.substr(0, 7) == ".kernel") {
            k.name = std::string(trim(line.substr(7)));
            continue;
        }
        if (line.back() == ':') {
            std::string label(trim(line.substr(0, line.size() - 1)));
            if (label_to_block.count(label))
                return fail(line_no, "duplicate label '" + label + "'");
            k.blocks.push_back(BasicBlock{label, {}});
            label_to_block.emplace(label,
                                   static_cast<int>(k.blocks.size()) - 1);
            in_block = true;
            continue;
        }
        if (!in_block) {
            // Implicit entry block.
            k.blocks.push_back(BasicBlock{"entry", {}});
            label_to_block.emplace("entry", 0);
            in_block = true;
        }

        LineCursor cur(line);
        Instruction instr;

        // Optional predicate: @Rn.
        if (cur.consume('@')) {
            Reg p;
            if (!parseRegToken(cur.token(), p))
                return fail(line_no, "bad predicate register");
            instr.pred = p;
        }

        std::string_view mnem = cur.token();
        if (mnem.empty())
            return fail(line_no, "expected mnemonic");
        bool wide = false;
        if (mnem.size() > 5 && mnem.substr(mnem.size() - 5) == ".wide") {
            wide = true;
            mnem = mnem.substr(0, mnem.size() - 5);
        }
        if (!parseOpcode(mnem, instr.op))
            return fail(line_no, "unknown opcode '" + std::string(mnem) +
                        "'");
        instr.wide = wide;

        if (instr.op == Opcode::BRA) {
            std::string_view tgt = cur.token();
            if (tgt.empty())
                return fail(line_no, "branch needs a target label");
            fixups.push_back({static_cast<int>(k.blocks.size()) - 1,
                              static_cast<int>(
                                  k.blocks.back().instrs.size()),
                              line_no, std::string(tgt)});
            k.blocks.back().instrs.push_back(instr);
            continue;
        }
        bool is_store = instr.op == Opcode::ST_GLOBAL ||
            instr.op == Opcode::ST_SHARED;
        bool is_load = instr.op == Opcode::LD_GLOBAL ||
            instr.op == Opcode::LD_SHARED || instr.op == Opcode::LD_PARAM;

        if (hasDest(instr.op)) {
            Reg d;
            if (!parseRegToken(cur.token(), d))
                return fail(line_no, "expected destination register");
            instr.dst = d;
        }

        int want = numSrcOperands(instr.op);
        for (int s = 0; s < want; s++) {
            bool bracket = cur.consume('[');
            std::string_view tok;
            if (cur.consume('#')) {
                tok = cur.token();
                std::uint32_t imm;
                if (!parseImmToken(tok, imm))
                    return fail(line_no, "bad immediate");
                instr.srcs[s] = SrcOperand::makeImm(imm);
            } else {
                tok = cur.token();
                if (tok.empty())
                    return fail(line_no, "missing operand");
                Reg r;
                std::uint32_t imm;
                if (parseRegToken(tok, r)) {
                    instr.srcs[s] = SrcOperand::makeReg(r);
                } else if (parseImmToken(tok, imm)) {
                    instr.srcs[s] = SrcOperand::makeImm(imm);
                } else {
                    return fail(line_no, "bad operand '" +
                                std::string(tok) + "'");
                }
            }
            if (bracket && cur.consume('+')) {
                std::uint32_t off;
                if (!parseImmToken(cur.token(), off))
                    return fail(line_no, "bad address offset");
                instr.memOffset = off;
            }
            if (bracket && !cur.consume(']'))
                return fail(line_no, "missing ']'");
            if (bracket && !instr.srcs[s].isReg)
                return fail(line_no, "address operand must be a register");
            // Address operands of loads/stores must be registers.
            if ((is_load || (is_store && s == 0)) && !instr.srcs[s].isReg)
                return fail(line_no, "address operand must be a register");
            instr.numSrcs++;
        }
        if (!cur.done())
            return fail(line_no, "trailing junk on line");
        k.blocks.back().instrs.push_back(instr);
    }

    for (const auto &fx : fixups) {
        auto it = label_to_block.find(fx.label);
        if (it == label_to_block.end())
            return fail(fx.line, "undefined label '" + fx.label + "'");
        k.blocks[fx.block].instrs[fx.instr].branchTarget = it->second;
    }

    k.finalize();
    std::string verr = k.validate();
    if (!verr.empty()) {
        result.ok = false;
        result.error = verr;
        return result;
    }
    result.ok = true;
    return result;
}

Kernel
parseKernelOrDie(std::string_view text)
{
    ParseResult r = parseKernel(text);
    if (!r.ok) {
        std::fprintf(stderr, "rfh: kernel parse error: %s\n",
                     r.error.c_str());
        std::abort();
    }
    return std::move(r.kernel);
}

} // namespace rfh
