#include "ir/reaching_defs.h"

#include <algorithm>
#include <array>

#include "core/serialize.h"
#include "ir/liveness.h"

namespace rfh {

ReachingDefs::ReachingDefs(ByteReader &r)
{
    defLin_ = r.vec<int>();
    defReg_ = r.vec<Reg>();
    defsAt_.resize(r.u32());
    for (auto &v : defsAt_)
        v = r.vec<DefId>();
    uses_.resize(r.u32());
    for (auto &sites : uses_) {
        sites.resize(r.u32());
        for (UseSite &u : sites) {
            u.lin = r.i32();
            u.slot = r.i32();
        }
    }
    useDefs_.resize(r.u32());
    for (auto &slots : useDefs_) {
        slots.resize(r.u32());
        for (auto &defs : slots)
            defs = r.vec<DefId>();
    }
    slotBase_ = r.vec<int>();
}

void
ReachingDefs::serialize(ByteWriter &w) const
{
    w.vec(defLin_);
    w.vec(defReg_);
    w.u32(static_cast<std::uint32_t>(defsAt_.size()));
    for (const auto &v : defsAt_)
        w.vec(v);
    w.u32(static_cast<std::uint32_t>(uses_.size()));
    for (const auto &sites : uses_) {
        w.u32(static_cast<std::uint32_t>(sites.size()));
        for (const UseSite &u : sites) {
            w.i32(u.lin);
            w.i32(u.slot);
        }
    }
    w.u32(static_cast<std::uint32_t>(useDefs_.size()));
    for (const auto &slots : useDefs_) {
        w.u32(static_cast<std::uint32_t>(slots.size()));
        for (const auto &defs : slots)
            w.vec(defs);
    }
    w.vec(slotBase_);
}

namespace {

using DefSet = std::vector<DefId>;

void
setUnion(DefSet &into, const DefSet &from)
{
    DefSet merged;
    merged.reserve(into.size() + from.size());
    std::set_union(into.begin(), into.end(), from.begin(), from.end(),
                   std::back_inserter(merged));
    into = std::move(merged);
}

} // namespace

int
ReachingDefs::slotIndex(int lin, int slot) const
{
    (void)lin;
    return slot == kPredSlot ? kMaxSrcs : slot;
}

const std::vector<DefId> &
ReachingDefs::reachingDefs(int lin, int slot) const
{
    return useDefs_[lin][slotIndex(lin, slot)];
}

ReachingDefs::ReachingDefs(const Kernel &k, const Cfg &cfg)
{
    int nblocks = cfg.numBlocks();
    int ninstrs = k.numInstrs();

    // Boundary defs occupy ids [0, kMaxRegs).
    defLin_.assign(kMaxRegs, -1);
    defReg_.resize(kMaxRegs);
    for (int r = 0; r < kMaxRegs; r++)
        defReg_[r] = static_cast<Reg>(r);

    defsAt_.assign(ninstrs, {});
    for (int lin = 0; lin < ninstrs; lin++) {
        const Instruction &in = k.instr(lin);
        RegSet defs = definedRegs(in);
        for (int r = 0; r < kMaxRegs; r++) {
            if (defs.test(r)) {
                defsAt_[lin].push_back(static_cast<DefId>(defLin_.size()));
                defLin_.push_back(lin);
                defReg_.push_back(static_cast<Reg>(r));
            }
        }
    }

    // Per-block gen sets and kill flags. An unpredicated definition
    // kills everything before it; a predicated definition only merges
    // (inactive threads keep the old value), so it generates without
    // killing.
    std::vector<std::array<DefSet, kMaxRegs>> gen(nblocks);
    std::vector<std::array<bool, kMaxRegs>> kill(
        nblocks, [] {
            std::array<bool, kMaxRegs> a{};
            return a;
        }());
    for (int b = 0; b < nblocks; b++) {
        for (int i = 0; i < static_cast<int>(k.blocks[b].instrs.size());
             i++) {
            int lin = k.blockStart(b) + i;
            const Instruction &instr = k.instr(lin);
            bool kills = !instr.pred.has_value();
            for (DefId d : defsAt_[lin]) {
                Reg r = defReg_[d];
                if (kills) {
                    gen[b][r] = {d};
                    kill[b][r] = true;
                } else {
                    DefSet one = {d};
                    setUnion(gen[b][r], one);
                }
            }
        }
    }

    // Iterative forward dataflow: in/out are per-reg def sets.
    std::vector<std::array<DefSet, kMaxRegs>> in(nblocks), out(nblocks);
    for (int r = 0; r < kMaxRegs; r++)
        in[0][r] = {r};  // boundary defs reach the entry
    auto computeOut = [&](int b) {
        bool changed = false;
        for (int r = 0; r < kMaxRegs; r++) {
            DefSet next = gen[b][r];
            if (!kill[b][r])
                setUnion(next, in[b][r]);
            if (next != out[b][r]) {
                out[b][r] = std::move(next);
                changed = true;
            }
        }
        return changed;
    };
    for (int b = 0; b < nblocks; b++)
        computeOut(b);
    bool changed = true;
    while (changed) {
        changed = false;
        for (int b : cfg.reversePostOrder()) {
            std::array<DefSet, kMaxRegs> merged;
            if (b == 0)
                for (int r = 0; r < kMaxRegs; r++)
                    merged[r] = {r};
            for (int p : cfg.preds(b))
                for (int r = 0; r < kMaxRegs; r++)
                    setUnion(merged[r], out[p][r]);
            for (int r = 0; r < kMaxRegs; r++) {
                if (merged[r] != in[b][r]) {
                    in[b][r] = std::move(merged[r]);
                    changed = true;
                }
            }
            if (computeOut(b))
                changed = true;
        }
    }

    // Walk each block to bind uses to reaching defs.
    uses_.assign(defLin_.size(), {});
    useDefs_.assign(ninstrs,
                    std::vector<std::vector<DefId>>(kMaxSrcs + 1));
    for (int b = 0; b < nblocks; b++) {
        std::array<DefSet, kMaxRegs> cur = in[b];
        for (int i = 0; i < static_cast<int>(k.blocks[b].instrs.size());
             i++) {
            int lin = k.blockStart(b) + i;
            const Instruction &instr = k.instr(lin);
            auto record = [&](Reg r, int slot) {
                useDefs_[lin][slotIndex(lin, slot)] = cur[r];
                for (DefId d : cur[r])
                    uses_[d].push_back(UseSite{lin, slot});
            };
            for (int s = 0; s < instr.numSrcs; s++)
                if (instr.srcs[s].isReg)
                    record(instr.srcs[s].reg, s);
            if (instr.pred)
                record(*instr.pred, kPredSlot);
            bool kills = !instr.pred.has_value() ||
                instr.op == Opcode::BRA;
            for (DefId d : defsAt_[lin]) {
                if (kills) {
                    cur[defReg_[d]] = {d};
                } else {
                    DefSet one = {d};
                    setUnion(cur[defReg_[d]], one);
                }
            }
        }
    }
}

} // namespace rfh
