#include "ir/printer.h"

#include <sstream>

namespace rfh {

namespace {

std::string
annoSuffix(const ReadAnnotation &a)
{
    std::ostringstream os;
    os << "{" << levelName(a.level);
    if (a.level == Level::ORF)
        os << static_cast<int>(a.entry);
    if (a.level == Level::LRF)
        os << "." << static_cast<int>(a.lrfBank);
    if (a.depositToORF)
        os << ">ORF" << static_cast<int>(a.entry);
    os << "}";
    return os.str();
}

} // namespace

std::string
formatInstruction(const Instruction &instr, const Kernel &k,
                  const PrintOptions &opts)
{
    std::ostringstream os;
    if (instr.pred) {
        os << "@R" << static_cast<int>(*instr.pred);
        if (opts.annotations)
            os << annoSuffix(instr.predAnno);
        os << " ";
    }
    os << mnemonic(instr.op);
    if (instr.wide)
        os << ".wide";
    bool first = true;
    auto sep = [&] {
        os << (first ? " " : ", ");
        first = false;
    };
    if (instr.op == Opcode::BRA) {
        sep();
        os << k.blocks[instr.branchTarget].label;
    } else {
        if (instr.dst) {
            sep();
            os << "R" << static_cast<int>(*instr.dst);
            if (opts.annotations) {
                const WriteAnnotation &w = instr.writeAnno;
                os << "{";
                bool any = false;
                if (w.toLRF) {
                    os << "LRF." << static_cast<int>(w.lrfBank);
                    any = true;
                }
                if (w.toORF) {
                    os << (any ? "+" : "") << "ORF"
                       << static_cast<int>(w.orfEntry);
                    any = true;
                }
                if (w.toMRF)
                    os << (any ? "+" : "") << "MRF";
                os << "}";
            }
        }
        bool is_mem = unitClass(instr.op) == UnitClass::MEM ||
            instr.op == Opcode::TEX;
        for (int s = 0; s < instr.numSrcs; s++) {
            sep();
            bool bracket = is_mem && s == 0 && instr.srcs[s].isReg;
            if (bracket)
                os << "[";
            if (instr.srcs[s].isReg) {
                os << "R" << static_cast<int>(instr.srcs[s].reg);
                if (opts.annotations)
                    os << annoSuffix(instr.readAnno[s]);
            } else {
                os << "#" << instr.srcs[s].imm;
            }
            if (bracket && instr.memOffset != 0)
                os << "+" << instr.memOffset;
            if (bracket)
                os << "]";
        }
    }
    if (opts.strands && instr.endOfStrand)
        os << "   // <end of strand>";
    return os.str();
}

std::string
printKernel(const Kernel &k, const PrintOptions &opts)
{
    std::ostringstream os;
    os << ".kernel " << k.name << "\n";
    for (const auto &bb : k.blocks) {
        os << bb.label << ":\n";
        for (const auto &in : bb.instrs)
            os << "    " << formatInstruction(in, k, opts) << "\n";
    }
    return os.str();
}

} // namespace rfh
