/**
 * @file
 * RPTX instructions, operands, and register-file-level annotations.
 *
 * An instruction carries both its architectural semantics (opcode,
 * destination, sources, branch target, predicate) and the compiler
 * annotations produced by the hierarchy allocator: for each read operand
 * the level (and entry) it is fetched from, for the written value the set
 * of levels it is written to, and an end-of-strand bit (Section 4.1).
 */

#ifndef RFH_IR_INSTRUCTION_H
#define RFH_IR_INSTRUCTION_H

#include <array>
#include <cstdint>
#include <optional>

#include "ir/opcode.h"

namespace rfh {

/** Architectural register index into the per-thread MRF allocation. */
using Reg = std::uint8_t;

/** Maximum architectural registers per thread (32 per Table 2). */
inline constexpr int kMaxRegs = 64;

/** Maximum source operands of any instruction. */
inline constexpr int kMaxSrcs = 3;

/** Register-file hierarchy level (Section 3). */
enum class Level : std::uint8_t {
    MRF,  ///< Main register file.
    ORF,  ///< Operand register file.
    LRF,  ///< Last result file.
};

/** @return a short display name ("MRF" etc.). */
std::string_view levelName(Level level);

/**
 * A source operand: either an architectural register or a 32-bit
 * immediate.
 */
struct SrcOperand
{
    bool isReg = false;
    Reg reg = 0;
    std::uint32_t imm = 0;

    static SrcOperand
    makeReg(Reg r)
    {
        SrcOperand s;
        s.isReg = true;
        s.reg = r;
        return s;
    }

    static SrcOperand
    makeImm(std::uint32_t v)
    {
        SrcOperand s;
        s.imm = v;
        return s;
    }

    bool
    operator==(const SrcOperand &o) const
    {
        return isReg == o.isReg && (isReg ? reg == o.reg : imm == o.imm);
    }
};

/**
 * Allocator annotation for one read operand: which level the value is
 * fetched from. For ORF reads, @c entry names the physical ORF entry;
 * for LRF reads with a split LRF, @c lrfBank names the per-operand-slot
 * bank (Section 3.2).
 */
struct ReadAnnotation
{
    Level level = Level::MRF;
    std::uint8_t entry = 0;
    std::uint8_t lrfBank = 0;
    /**
     * Read-operand allocation (Section 4.4): this MRF read also
     * deposits the fetched value into ORF entry @c entry, from which
     * later instructions read it.
     */
    bool depositToORF = false;

    bool
    operator==(const ReadAnnotation &o) const
    {
        return level == o.level && entry == o.entry &&
            lrfBank == o.lrfBank && depositToORF == o.depositToORF;
    }
};

/**
 * Allocator annotation for the written value: the set of levels the
 * result is written to. A value may be written to the MRF together with
 * either the ORF or the LRF, but never to both the ORF and LRF
 * (Section 4.6).
 */
struct WriteAnnotation
{
    bool toMRF = true;
    bool toORF = false;
    bool toLRF = false;
    std::uint8_t orfEntry = 0;
    std::uint8_t lrfBank = 0;

    bool
    anyUpper() const
    {
        return toORF || toLRF;
    }
};

/**
 * One RPTX instruction.
 *
 * Branches may be predicated by a register (taken iff the register value
 * is non-zero). Wide (64-bit) results are modelled by @c wide, which
 * makes the destination occupy registers {dst, dst+1}.
 */
struct Instruction
{
    Opcode op = Opcode::EXIT;
    std::optional<Reg> dst;
    std::array<SrcOperand, kMaxSrcs> srcs = {};
    int numSrcs = 0;
    /** Predicate register for conditional branches. */
    std::optional<Reg> pred;
    /** Target basic-block index for BRA. */
    int branchTarget = -1;
    /** Destination occupies two consecutive registers (64-bit value). */
    bool wide = false;
    /**
     * Immediate byte offset folded into the address operand of memory
     * and texture instructions (PTX-style "[Rn+imm]" addressing).
     */
    std::uint32_t memOffset = 0;

    // ---- Compiler annotations (filled by the allocator) ----
    std::array<ReadAnnotation, kMaxSrcs> readAnno = {};
    /** Annotation for the predicate read of a conditional branch. */
    ReadAnnotation predAnno;
    WriteAnnotation writeAnno;
    /** End-of-strand marker bit (Section 4.1). */
    bool endOfStrand = false;

    /** @return the function-unit class of this instruction. */
    UnitClass
    unit() const
    {
        return unitClass(op);
    }

    /** @return true if this instruction ends with a long-latency op. */
    bool
    longLatency() const
    {
        return isLongLatency(op);
    }

    /** @return number of register read operands (incl. predicate). */
    int
    numRegReads() const
    {
        int n = 0;
        for (int i = 0; i < numSrcs; i++)
            n += srcs[i].isReg ? 1 : 0;
        n += pred.has_value() ? 1 : 0;
        return n;
    }

    /** @return number of registers written (0, 1, or 2 when wide). */
    int
    numRegWrites() const
    {
        if (!dst)
            return 0;
        return wide ? 2 : 1;
    }

    /** Reset all allocator annotations to MRF-only defaults. */
    void
    clearAnnotations()
    {
        for (auto &ra : readAnno)
            ra = ReadAnnotation();
        predAnno = ReadAnnotation();
        writeAnno = WriteAnnotation();
        endOfStrand = false;
    }
};

/** Convenience builders for tests and generated code. */
Instruction makeALU(Opcode op, Reg dst, SrcOperand a, SrcOperand b);
Instruction makeALU3(Opcode op, Reg dst, SrcOperand a, SrcOperand b,
                     SrcOperand c);
Instruction makeUnary(Opcode op, Reg dst, SrcOperand a);
Instruction makeLoad(Opcode op, Reg dst, Reg addr,
                     std::uint32_t offset = 0);
Instruction makeStore(Opcode op, Reg addr, Reg value,
                      std::uint32_t offset = 0);
Instruction makeBranch(int target);
Instruction makeCondBranch(Reg pred, int target);
Instruction makeExit();

} // namespace rfh

#endif // RFH_IR_INSTRUCTION_H
