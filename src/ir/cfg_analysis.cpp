#include "ir/cfg_analysis.h"

#include <algorithm>
#include <functional>

#include "core/serialize.h"

namespace rfh {

Cfg::Cfg(ByteReader &r)
{
    std::uint32_t n = r.u32();
    succs_.resize(n);
    preds_.resize(n);
    for (auto &v : succs_)
        v = r.vec<int>();
    for (auto &v : preds_)
        v = r.vec<int>();
    reachable_ = r.boolVec();
    backwardSource_ = r.boolVec();
    backwardTarget_ = r.boolVec();
    rpo_ = r.vec<int>();
    ipdom_ = r.vec<int>();
}

void
Cfg::serialize(ByteWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(succs_.size()));
    for (const auto &v : succs_)
        w.vec(v);
    for (const auto &v : preds_)
        w.vec(v);
    w.boolVec(reachable_);
    w.boolVec(backwardSource_);
    w.boolVec(backwardTarget_);
    w.vec(rpo_);
    w.vec(ipdom_);
}

Cfg::Cfg(const Kernel &k)
{
    int n = static_cast<int>(k.blocks.size());
    succs_.resize(n);
    preds_.resize(n);
    reachable_.assign(n, false);
    backwardSource_.assign(n, false);
    backwardTarget_.assign(n, false);

    for (int b = 0; b < n; b++) {
        succs_[b] = k.successors(b);
        for (int s : succs_[b])
            preds_[s].push_back(b);
        if (!k.blocks[b].instrs.empty()) {
            const Instruction &last = k.blocks[b].instrs.back();
            if (last.op == Opcode::BRA && last.branchTarget <= b) {
                backwardSource_[b] = true;
                backwardTarget_[last.branchTarget] = true;
            }
        }
    }

    // DFS for reachability and post order.
    std::vector<int> post;
    std::vector<bool> visited(n, false);
    std::function<void(int)> dfs = [&](int b) {
        visited[b] = true;
        reachable_[b] = true;
        for (int s : succs_[b])
            if (!visited[s])
                dfs(s);
        post.push_back(b);
    };
    if (n > 0)
        dfs(0);
    rpo_.assign(post.rbegin(), post.rend());

    computePostDominators(k);
}

void
Cfg::computePostDominators(const Kernel &k)
{
    (void)k;
    int n = numBlocks();
    // Iterative post-dominator sets over a virtual exit: pdom(b) is
    // the intersection over successors, plus b itself; exit blocks
    // (no successors) post-dominate only themselves.
    std::vector<std::vector<bool>> pdom(
        n, std::vector<bool>(n, true));
    for (int b = 0; b < n; b++) {
        if (succs_[b].empty()) {
            std::fill(pdom[b].begin(), pdom[b].end(), false);
            pdom[b][b] = true;
        }
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (int b = n - 1; b >= 0; b--) {
            if (succs_[b].empty())
                continue;
            std::vector<bool> next(n, true);
            for (int s : succs_[b])
                for (int x = 0; x < n; x++)
                    next[x] = next[x] && pdom[s][x];
            next[b] = true;
            if (next != pdom[b]) {
                pdom[b] = std::move(next);
                changed = true;
            }
        }
    }
    // Immediate post-dominator: the strict post-dominator that is
    // post-dominated by every other strict post-dominator. With
    // layout-ordered CFGs it is the smallest-index strict pdom that
    // all other strict pdoms contain... compute directly.
    ipdom_.assign(n, -1);
    for (int b = 0; b < n; b++) {
        for (int c = 0; c < n; c++) {
            if (c == b || !pdom[b][c])
                continue;
            // c strictly post-dominates b; it is the immediate
            // (closest) one iff every other strict post-dominator d of
            // b also post-dominates c.
            bool immediate = true;
            for (int d = 0; d < n && immediate; d++) {
                if (d == b || d == c || !pdom[b][d])
                    continue;
                if (!pdom[c][d])
                    immediate = false;
            }
            if (immediate) {
                ipdom_[b] = c;
                break;
            }
        }
    }
}

} // namespace rfh
