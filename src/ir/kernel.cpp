#include "ir/kernel.h"

#include <algorithm>
#include <sstream>

namespace rfh {

void
Kernel::finalize()
{
    linear_.clear();
    blockStart_.clear();
    for (int b = 0; b < static_cast<int>(blocks.size()); b++) {
        blockStart_.push_back(static_cast<int>(linear_.size()));
        for (int i = 0; i < static_cast<int>(blocks[b].instrs.size()); i++)
            linear_.push_back(InstrRef{b, i});
    }
}

int
Kernel::numRegs() const
{
    int hi = -1;
    for (const auto &bb : blocks) {
        for (const auto &in : bb.instrs) {
            if (in.dst)
                hi = std::max(hi, static_cast<int>(*in.dst) +
                              (in.wide ? 1 : 0));
            for (int s = 0; s < in.numSrcs; s++)
                if (in.srcs[s].isReg)
                    hi = std::max(hi, static_cast<int>(in.srcs[s].reg));
            if (in.pred)
                hi = std::max(hi, static_cast<int>(*in.pred));
        }
    }
    return hi + 1;
}

std::vector<int>
Kernel::successors(int b) const
{
    std::vector<int> out;
    const auto &instrs = blocks[b].instrs;
    bool fallthrough = true;
    if (!instrs.empty()) {
        const Instruction &last = instrs.back();
        if (last.op == Opcode::EXIT) {
            fallthrough = false;
        } else if (last.op == Opcode::BRA) {
            out.push_back(last.branchTarget);
            // Unconditional branch has no fallthrough.
            fallthrough = last.pred.has_value();
        }
    }
    if (fallthrough && b + 1 < static_cast<int>(blocks.size())) {
        if (std::find(out.begin(), out.end(), b + 1) == out.end())
            out.push_back(b + 1);
    }
    return out;
}

std::vector<int>
Kernel::predecessors(int b) const
{
    std::vector<int> out;
    for (int p = 0; p < static_cast<int>(blocks.size()); p++) {
        for (int s : successors(p)) {
            if (s == b) {
                out.push_back(p);
                break;
            }
        }
    }
    return out;
}

void
Kernel::clearAnnotations()
{
    for (auto &bb : blocks)
        for (auto &in : bb.instrs)
            in.clearAnnotations();
}

std::string
Kernel::validate() const
{
    std::ostringstream err;
    if (blocks.empty())
        return "kernel has no blocks";
    int nblocks = static_cast<int>(blocks.size());
    for (int b = 0; b < nblocks; b++) {
        const auto &bb = blocks[b];
        if (bb.instrs.empty()) {
            err << "block " << b << " is empty";
            return err.str();
        }
        for (int i = 0; i < static_cast<int>(bb.instrs.size()); i++) {
            const Instruction &in = bb.instrs[i];
            bool is_term = in.op == Opcode::BRA || in.op == Opcode::EXIT;
            bool is_last = i == static_cast<int>(bb.instrs.size()) - 1;
            if (is_term && !is_last) {
                err << "block " << b << " instr " << i
                    << ": terminator not at end of block";
                return err.str();
            }
            if (in.op == Opcode::BRA &&
                (in.branchTarget < 0 || in.branchTarget >= nblocks)) {
                err << "block " << b << " instr " << i
                    << ": branch target " << in.branchTarget
                    << " out of range";
                return err.str();
            }
            if (in.numSrcs != numSrcOperands(in.op) &&
                in.op != Opcode::BRA) {
                err << "block " << b << " instr " << i << " ("
                    << mnemonic(in.op) << "): expected "
                    << numSrcOperands(in.op) << " sources, got "
                    << in.numSrcs;
                return err.str();
            }
            if (in.dst.has_value() != hasDest(in.op)) {
                err << "block " << b << " instr " << i << " ("
                    << mnemonic(in.op) << "): destination mismatch";
                return err.str();
            }
            if (in.dst && static_cast<int>(*in.dst) + (in.wide ? 1 : 0) >=
                kMaxRegs) {
                err << "block " << b << " instr " << i
                    << ": register out of range";
                return err.str();
            }
        }
    }
    // The last block must not fall off the end of the kernel.
    if (!successors(nblocks - 1).empty() ||
        blocks[nblocks - 1].instrs.empty() ||
        (blocks[nblocks - 1].instrs.back().op != Opcode::EXIT &&
         blocks[nblocks - 1].instrs.back().op != Opcode::BRA)) {
        // Falling off the end is only legal if an EXIT terminates it;
        // successors() already returns empty for EXIT.
        if (blocks[nblocks - 1].instrs.empty() ||
            blocks[nblocks - 1].instrs.back().op != Opcode::EXIT) {
            return "last block must end with exit or unconditional branch";
        }
    }
    return "";
}

KernelBuilder::KernelBuilder(std::string name)
{
    kernel_.name = std::move(name);
}

int
KernelBuilder::block(std::string label)
{
    BasicBlock bb;
    if (label.empty())
        label = "BB" + std::to_string(kernel_.blocks.size());
    bb.label = std::move(label);
    kernel_.blocks.push_back(std::move(bb));
    return static_cast<int>(kernel_.blocks.size()) - 1;
}

KernelBuilder &
KernelBuilder::add(Instruction instr)
{
    kernel_.blocks.back().instrs.push_back(instr);
    return *this;
}

Kernel
KernelBuilder::take()
{
    kernel_.finalize();
    return std::move(kernel_);
}

} // namespace rfh
