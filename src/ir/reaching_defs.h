/**
 * @file
 * Reaching-definition analysis and def-use chains.
 *
 * Every static write of a register is a definition ("register instance"
 * in the paper's terms, since PTX input is in pseudo-SSA form). A
 * synthetic boundary definition per register models values that are live
 * into the kernel (parameters, thread id, and anything produced by
 * earlier kernels); those are assumed to reside in the MRF.
 *
 * The allocator uses def-use chains to find each value's reads, to group
 * hammock definitions that merge at a common read (Section 4.5), and to
 * distinguish in-strand uses from uses that force the value to be
 * written to the MRF.
 */

#ifndef RFH_IR_REACHING_DEFS_H
#define RFH_IR_REACHING_DEFS_H

#include <vector>

#include "ir/cfg_analysis.h"
#include "ir/kernel.h"

namespace rfh {

/** Identifier of a definition. Values < kMaxRegs are boundary defs. */
using DefId = int;

/** Operand slot of a use; kPredSlot marks a branch predicate read. */
inline constexpr int kPredSlot = -1;

/** One use site of a definition. */
struct UseSite
{
    int lin = -1;   ///< Linear index of the reading instruction.
    int slot = 0;   ///< Source-operand slot, or kPredSlot.

    bool
    operator==(const UseSite &o) const
    {
        return lin == o.lin && slot == o.slot;
    }
};

class ByteReader;
class ByteWriter;

/** Reaching definitions over a finalized kernel. */
class ReachingDefs
{
  public:
    ReachingDefs(const Kernel &k, const Cfg &cfg);
    /** Rebuild from serialize() output (persistent compile cache). */
    explicit ReachingDefs(ByteReader &r);

    /** Exact binary encoding; ReachingDefs(ByteReader&) restores it. */
    void serialize(ByteWriter &w) const;

    /** @return true if @p d is a synthetic kernel-boundary def. */
    static bool
    isBoundary(DefId d)
    {
        return d < kMaxRegs;
    }

    /** @return number of definitions (boundary defs included). */
    int
    numDefs() const
    {
        return static_cast<int>(defLin_.size());
    }

    /** Linear instruction of def @p d (-1 for boundary defs). */
    int
    defInstr(DefId d) const
    {
        return defLin_[d];
    }

    /** Register written by def @p d. */
    Reg
    defReg(DefId d) const
    {
        return defReg_[d];
    }

    /** Defs of @p instr at linear index @p lin (empty if none). */
    const std::vector<DefId> &
    defsAt(int lin) const
    {
        return defsAt_[lin];
    }

    /**
     * Definitions that reach the read of source slot @p slot of the
     * instruction at linear index @p lin. Sorted ascending.
     */
    const std::vector<DefId> &reachingDefs(int lin, int slot) const;

    /** All use sites of definition @p d. */
    const std::vector<UseSite> &
    uses(DefId d) const
    {
        return uses_[d];
    }

  private:
    std::vector<int> defLin_;
    std::vector<Reg> defReg_;
    std::vector<std::vector<DefId>> defsAt_;
    std::vector<std::vector<UseSite>> uses_;
    // Reaching-def sets keyed by use site: useKey_[lin] maps slots.
    std::vector<std::vector<std::vector<DefId>>> useDefs_;
    std::vector<int> slotBase_;

    int slotIndex(int lin, int slot) const;
};

} // namespace rfh

#endif // RFH_IR_REACHING_DEFS_H
