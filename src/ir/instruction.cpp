#include "ir/instruction.h"

namespace rfh {

std::string_view
levelName(Level level)
{
    switch (level) {
      case Level::MRF: return "MRF";
      case Level::ORF: return "ORF";
      case Level::LRF: return "LRF";
    }
    return "?";
}

Instruction
makeALU(Opcode op, Reg dst, SrcOperand a, SrcOperand b)
{
    Instruction i;
    i.op = op;
    i.dst = dst;
    i.srcs[0] = a;
    i.srcs[1] = b;
    i.numSrcs = 2;
    return i;
}

Instruction
makeALU3(Opcode op, Reg dst, SrcOperand a, SrcOperand b, SrcOperand c)
{
    Instruction i;
    i.op = op;
    i.dst = dst;
    i.srcs[0] = a;
    i.srcs[1] = b;
    i.srcs[2] = c;
    i.numSrcs = 3;
    return i;
}

Instruction
makeUnary(Opcode op, Reg dst, SrcOperand a)
{
    Instruction i;
    i.op = op;
    i.dst = dst;
    i.srcs[0] = a;
    i.numSrcs = 1;
    return i;
}

Instruction
makeLoad(Opcode op, Reg dst, Reg addr, std::uint32_t offset)
{
    Instruction i;
    i.op = op;
    i.dst = dst;
    i.srcs[0] = SrcOperand::makeReg(addr);
    i.numSrcs = 1;
    i.memOffset = offset;
    return i;
}

Instruction
makeStore(Opcode op, Reg addr, Reg value, std::uint32_t offset)
{
    Instruction i;
    i.op = op;
    i.srcs[0] = SrcOperand::makeReg(addr);
    i.srcs[1] = SrcOperand::makeReg(value);
    i.numSrcs = 2;
    i.memOffset = offset;
    return i;
}

Instruction
makeBranch(int target)
{
    Instruction i;
    i.op = Opcode::BRA;
    i.branchTarget = target;
    return i;
}

Instruction
makeCondBranch(Reg pred, int target)
{
    Instruction i;
    i.op = Opcode::BRA;
    i.pred = pred;
    i.branchTarget = target;
    return i;
}

Instruction
makeExit()
{
    Instruction i;
    i.op = Opcode::EXIT;
    return i;
}

} // namespace rfh
