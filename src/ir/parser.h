/**
 * @file
 * Text parser for RPTX assembly.
 *
 * Grammar (one instruction per line; '//' and ';' start comments):
 *
 * @code
 *   .kernel vecadd
 *   entry:
 *       ld.param  R0, [R63]
 *       imul.wide R2, R0, R1      // '.wide': dst occupies R2 and R3
 *       ld.global R4, [R2]
 *       fadd      R5, R4, #0x3f800000
 *   loop:
 *       @R7 bra loop              // predicated (backward) branch
 *       st.global [R2], R5
 *       exit
 * @endcode
 *
 * Registers are written R0..R63, immediates as decimal or 0x-hex
 * (optionally prefixed with '#'), memory operands as [Rn], branch targets
 * as block labels.
 */

#ifndef RFH_IR_PARSER_H
#define RFH_IR_PARSER_H

#include <string>
#include <string_view>

#include "ir/kernel.h"

namespace rfh {

/** Outcome of parsing a kernel from text. */
struct ParseResult
{
    bool ok = false;
    Kernel kernel;
    std::string error;  ///< "line N: message" when !ok.
};

/** Parse one kernel from RPTX text. */
ParseResult parseKernel(std::string_view text);

/**
 * Parse a kernel that is known to be valid (aborts on error).
 * Intended for embedded workload sources and tests.
 */
Kernel parseKernelOrDie(std::string_view text);

} // namespace rfh

#endif // RFH_IR_PARSER_H
