/**
 * @file
 * Control-flow-graph analyses over a kernel: cached predecessor and
 * successor lists, reverse post order, reachability, and backward-branch
 * identification (which delimits strands, Section 4.1).
 */

#ifndef RFH_IR_CFG_ANALYSIS_H
#define RFH_IR_CFG_ANALYSIS_H

#include <vector>

#include "ir/kernel.h"

namespace rfh {

class ByteReader;
class ByteWriter;

/** Cached CFG structure for a finalized kernel. */
class Cfg
{
  public:
    explicit Cfg(const Kernel &k);
    /** Rebuild from serialize() output (persistent compile cache). */
    explicit Cfg(ByteReader &r);

    int
    numBlocks() const
    {
        return static_cast<int>(succs_.size());
    }

    const std::vector<int> &
    succs(int b) const
    {
        return succs_[b];
    }

    const std::vector<int> &
    preds(int b) const
    {
        return preds_[b];
    }

    /** @return true if block @p b is reachable from the entry block. */
    bool
    reachable(int b) const
    {
        return reachable_[b];
    }

    /**
     * @return true if block @p b ends with a branch whose target does
     * not come after it in layout order (a backward branch).
     */
    bool
    endsWithBackwardBranch(int b) const
    {
        return backwardSource_[b];
    }

    /** @return true if block @p b is the target of a backward branch. */
    bool
    isBackwardTarget(int b) const
    {
        return backwardTarget_[b];
    }

    /** Blocks in reverse post order from the entry. */
    const std::vector<int> &
    reversePostOrder() const
    {
        return rpo_;
    }

    /** Exact binary encoding; Cfg(ByteReader&) restores it bitwise. */
    void serialize(ByteWriter &w) const;

    /**
     * Immediate post-dominator of block @p b, or -1 when @p b
     * post-dominates every path to the kernel's exits (its only
     * "post-dominator" is the virtual exit). Branch reconvergence
     * points for SIMT divergence are the immediate post-dominators of
     * the branching blocks (Section 2's active-mask execution model).
     */
    int
    immediatePostDominator(int b) const
    {
        return ipdom_[b];
    }

  private:
    std::vector<std::vector<int>> succs_;
    std::vector<std::vector<int>> preds_;
    std::vector<bool> reachable_;
    std::vector<bool> backwardSource_;
    std::vector<bool> backwardTarget_;
    std::vector<int> rpo_;
    std::vector<int> ipdom_;

    void computePostDominators(const Kernel &k);
};

} // namespace rfh

#endif // RFH_IR_CFG_ANALYSIS_H
