/**
 * @file
 * Immutable per-kernel analysis bundle.
 *
 * The CFG, liveness, and reaching-definition analyses depend only on a
 * kernel's architectural structure (blocks, opcodes, operands), never
 * on the allocator's annotations — so one bundle computed on the
 * pristine kernel is valid for every annotated copy with the same
 * structure and can be shared read-only between the hierarchy
 * allocator, the hardware-cache baseline, and the executors across
 * all sweep configurations. The experiment engine caches bundles per
 * kernel (core/memo.h) so each workload is analysed once per process
 * instead of once per sweep point.
 */

#ifndef RFH_IR_ANALYSIS_BUNDLE_H
#define RFH_IR_ANALYSIS_BUNDLE_H

#include "ir/cfg_analysis.h"
#include "ir/liveness.h"
#include "ir/reaching_defs.h"

namespace rfh {

/** CFG + liveness + reaching defs of one kernel, computed together. */
struct AnalysisBundle
{
    Cfg cfg;
    Liveness liveness;
    ReachingDefs reachingDefs;

    explicit AnalysisBundle(const Kernel &k)
        : cfg(k), liveness(k, cfg), reachingDefs(k, cfg)
    {
    }

    AnalysisBundle(const AnalysisBundle &) = delete;
    AnalysisBundle &operator=(const AnalysisBundle &) = delete;
};

} // namespace rfh

#endif // RFH_IR_ANALYSIS_BUNDLE_H
