/**
 * @file
 * Immutable per-kernel analysis bundle.
 *
 * The CFG, liveness, and reaching-definition analyses depend only on a
 * kernel's architectural structure (blocks, opcodes, operands), never
 * on the allocator's annotations — so one bundle computed on the
 * pristine kernel is valid for every annotated copy with the same
 * structure and can be shared read-only between the hierarchy
 * allocator, the hardware-cache baseline, and the executors across
 * all sweep configurations. The experiment engine caches bundles per
 * kernel (core/memo.h) so each workload is analysed once per process
 * instead of once per sweep point.
 */

#ifndef RFH_IR_ANALYSIS_BUNDLE_H
#define RFH_IR_ANALYSIS_BUNDLE_H

#include "ir/cfg_analysis.h"
#include "ir/liveness.h"
#include "ir/reaching_defs.h"

namespace rfh {

/** CFG + liveness + reaching defs of one kernel, computed together. */
struct AnalysisBundle
{
    Cfg cfg;
    Liveness liveness;
    ReachingDefs reachingDefs;

    explicit AnalysisBundle(const Kernel &k)
        : cfg(k), liveness(k, cfg), reachingDefs(k, cfg)
    {
    }

    /**
     * Rebuild a bundle from serialize() output (the persistent compile
     * cache, core/diskcache.h). Members deserialize in declaration
     * order; the result is bit-identical to the bundle that was
     * serialized, so a disk-cache hit changes no downstream number.
     */
    explicit AnalysisBundle(ByteReader &r)
        : cfg(r), liveness(r), reachingDefs(r)
    {
    }

    /** Exact binary encoding of all three analyses. */
    void
    serialize(ByteWriter &w) const
    {
        cfg.serialize(w);
        liveness.serialize(w);
        reachingDefs.serialize(w);
    }

    AnalysisBundle(const AnalysisBundle &) = delete;
    AnalysisBundle &operator=(const AnalysisBundle &) = delete;
};

} // namespace rfh

#endif // RFH_IR_ANALYSIS_BUNDLE_H
