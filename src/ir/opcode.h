/**
 * @file
 * Opcode definitions for the RPTX intermediate representation.
 *
 * RPTX is a small PTX-like assembly language sufficient to express the
 * register dataflow, control flow, and function-unit mix of the GPU
 * compute kernels evaluated in the paper. Each opcode carries the
 * function-unit class that executes it (which determines operand wire
 * distances and LRF accessibility) and a latency class (which determines
 * strand boundaries and two-level scheduler behaviour).
 */

#ifndef RFH_IR_OPCODE_H
#define RFH_IR_OPCODE_H

#include <cstdint>
#include <string_view>

namespace rfh {

/** Function-unit class that executes an instruction (Figure 1(c)). */
enum class UnitClass : std::uint8_t {
    ALU,   ///< Private per-lane ALU; may read/write the LRF.
    SFU,   ///< Shared special-function unit (transcendentals).
    MEM,   ///< Shared memory/load-store port.
    TEX,   ///< Shared texture unit.
    CTRL,  ///< Branch / barrier / exit; executes on the private datapath.
};

/** Latency class of an instruction (Table 2). */
enum class LatencyClass : std::uint8_t {
    SHORT,        ///< ALU (8 cycles) — hidden by the active warp set.
    MEDIUM,       ///< SFU / shared memory (20 cycles).
    LONG,         ///< Global loads / texture (400 cycles); ends strands.
};

/** RPTX opcodes. */
enum class Opcode : std::uint8_t {
    // Integer ALU.
    IADD, ISUB, IMUL, IMAD, IMIN, IMAX,
    AND, OR, XOR, NOT, SHL, SHR,
    // Floating-point ALU.
    FADD, FSUB, FMUL, FFMA, FMIN, FMAX,
    // Comparison and select (predicate values live in regular registers).
    SETLT, SETLE, SETEQ, SETNE, SETGT, SETGE, SEL,
    // Data movement.
    MOV, CVT,
    // Special-function unit.
    RCP, SQRT, RSQRT, SIN, COS, LG2, EX2,
    // Memory. Loads produce a value from an address register; stores
    // consume an address register and a data register.
    LD_GLOBAL, LD_SHARED, LD_PARAM,
    ST_GLOBAL, ST_SHARED,
    // Texture fetch.
    TEX,
    // Control.
    BRA,   ///< Branch to a block label; optionally predicated.
    BAR,   ///< Barrier (synchronises warps; no register effects).
    EXIT,  ///< Kernel exit.
};

/** Number of distinct opcodes (for table sizing). */
inline constexpr int kNumOpcodes = static_cast<int>(Opcode::EXIT) + 1;

/** @return the function-unit class executing @p op. */
UnitClass unitClass(Opcode op);

/** @return the latency class of @p op. */
LatencyClass latencyClass(Opcode op);

/** @return true if @p op has a long latency (ends strands). */
inline bool
isLongLatency(Opcode op)
{
    return latencyClass(op) == LatencyClass::LONG;
}

/** @return true if @p op writes a destination register. */
bool hasDest(Opcode op);

/** @return the number of source register/immediate operands of @p op. */
int numSrcOperands(Opcode op);

/** @return true if the unit class is part of the shared datapath. */
inline bool
isSharedUnit(UnitClass uc)
{
    return uc == UnitClass::SFU || uc == UnitClass::MEM ||
        uc == UnitClass::TEX;
}

/** @return the lower-case mnemonic for @p op (e.g. "ld.global"). */
std::string_view mnemonic(Opcode op);

/**
 * Parse a mnemonic into an opcode.
 *
 * @param s lower-case mnemonic.
 * @param out parsed opcode on success.
 * @return true on success.
 */
bool parseOpcode(std::string_view s, Opcode &out);

} // namespace rfh

#endif // RFH_IR_OPCODE_H
