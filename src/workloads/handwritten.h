/**
 * @file
 * Hand-written RPTX kernels mirroring the control and dataflow
 * structure of the paper's benchmarks (Table 1).
 *
 * The paper evaluates CUDA SDK 3.2, Parboil, and Rodinia applications
 * compiled to PTX. Those binaries are not available offline, so each
 * kernel here reproduces the register-usage skeleton of its namesake:
 * the same mix of global/shared/texture accesses, function-unit usage,
 * loop structure, and producer-consumer distances that drive the
 * register file hierarchy results.
 */

#ifndef RFH_WORKLOADS_HANDWRITTEN_H
#define RFH_WORKLOADS_HANDWRITTEN_H

#include <string_view>
#include <vector>

#include "ir/kernel.h"

namespace rfh {

/** Names of all hand-written kernels. */
std::vector<std::string_view> handwrittenKernelNames();

/**
 * Build the hand-written kernel called @p name.
 * Aborts if the name is unknown (see handwrittenKernelNames()).
 */
Kernel buildHandwrittenKernel(std::string_view name);

} // namespace rfh

#endif // RFH_WORKLOADS_HANDWRITTEN_H
