#include "workloads/profiles.h"

#include <algorithm>
#include <cmath>

#include "core/json.h"
#include "ir/printer.h"

namespace rfh {

namespace {

/** splitmix64 stream (the repo's standard deterministic RNG). */
class Jitter
{
  public:
    explicit Jitter(std::uint64_t seed)
        : state_(seed + 0x9e3779b97f4a7c15ULL)
    {
    }

    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** One scale factor in [1 - amp, 1 + amp]. */
    double
    factor(double amp)
    {
        return 1.0 + amp * (2.0 * uniform() - 1.0);
    }

  private:
    std::uint64_t state_;
};

int
scaleCount(int base, double f, int floor = 1)
{
    return std::max(floor,
                    static_cast<int>(std::llround(base * f)));
}

double
scaleProb(double base, double f)
{
    return std::clamp(base * f, 0.0, 0.95);
}

/** Per-kernel RNG: profile centre seed x corpus seed x index. */
std::uint64_t
kernelSeed(std::uint64_t profileSeed, std::uint64_t corpusSeed,
           int index)
{
    Jitter j(profileSeed ^ (corpusSeed * 0x9e3779b97f4a7c15ULL));
    j.next();
    return j.next() ^
        (static_cast<std::uint64_t>(index) * 0xbf58476d1ce4e5b9ULL);
}

std::vector<ScenarioProfile>
buildProfiles()
{
    std::vector<ScenarioProfile> v;

    {
        ScenarioProfile p;
        p.name = "balanced";
        p.summary = "Figure-2-calibrated generic compute kernels "
                    "(the synthetic generator's centre)";
        p.gen = ProfileGen::SYNTH;
        v.push_back(p);
    }
    {
        ScenarioProfile p;
        p.name = "divergent";
        p.summary = "hammock- and predication-heavy control flow "
                    "(SIMT divergence stress)";
        p.gen = ProfileGen::SYNTH;
        p.synth.pHammock = 0.45;
        p.synth.pPredicated = 0.18;
        p.synth.pPairOps = 0.12;
        v.push_back(p);
    }
    {
        ScenarioProfile p;
        p.name = "sfu-heavy";
        p.summary = "shared-datapath producers dominate (SFU density "
                    "stresses the LRF eligibility rules)";
        p.gen = ProfileGen::SYNTH;
        p.synth.fracSfu = 0.35;
        p.synth.pPairOps = 0.10;
        v.push_back(p);
    }
    {
        ScenarioProfile p;
        p.name = "long-strands";
        p.summary = "few long strands with wide reuse windows "
                    "(ORF-friendly lifetimes)";
        p.gen = ProfileGen::SYNTH;
        p.synth.strandsPerBody = 1;
        p.synth.opsPerStrand = 18;
        p.synth.loadsPerStrand = 1;
        p.synth.recencyWindow = 8;
        v.push_back(p);
    }
    {
        ScenarioProfile p;
        p.name = "short-strands";
        p.summary = "many short strands broken by long-latency loads "
                    "(frequent ORF flushes)";
        p.gen = ProfileGen::SYNTH;
        p.synth.strandsPerBody = 4;
        p.synth.opsPerStrand = 4;
        p.synth.loadsPerStrand = 3;
        p.synth.recencyWindow = 3;
        v.push_back(p);
    }
    {
        ScenarioProfile p;
        p.name = "persistent";
        p.summary = "long-lived values read repeatedly over long "
                    "ranges (persistence mix)";
        p.gen = ProfileGen::SYNTH;
        p.synth.pPersistent = 0.30;
        p.synth.recencyWindow = 6;
        p.synth.prologueOps = 10;
        v.push_back(p);
    }
    {
        ScenarioProfile p;
        p.name = "high-pressure";
        p.summary = "fuzz-grammar kernels drawing defs from nearly "
                    "the whole architectural file";
        p.gen = ProfileGen::FUZZ;
        p.fuzz.highPressure = true;
        p.fuzz.maxInstrs = 128;
        v.push_back(p);
    }
    {
        ScenarioProfile p;
        p.name = "wild";
        p.summary = "unconstrained fuzz grammar: nested hammocks, "
                    "forward branches, degenerate blocks";
        p.gen = ProfileGen::FUZZ;
        v.push_back(p);
    }
    return v;
}

} // namespace

std::string_view
profileGenName(ProfileGen g)
{
    return g == ProfileGen::SYNTH ? "synth" : "fuzz";
}

bool
profileGenFromName(std::string_view name, ProfileGen &out)
{
    if (name == "synth") {
        out = ProfileGen::SYNTH;
        return true;
    }
    if (name == "fuzz") {
        out = ProfileGen::FUZZ;
        return true;
    }
    return false;
}

const std::vector<ScenarioProfile> &
allProfiles()
{
    static const std::vector<ScenarioProfile> v = buildProfiles();
    return v;
}

const ScenarioProfile *
findProfile(std::string_view name)
{
    for (const ScenarioProfile &p : allProfiles())
        if (p.name == name)
            return &p;
    return nullptr;
}

std::string
profileNameList()
{
    std::string out;
    for (const ScenarioProfile &p : allProfiles()) {
        if (!out.empty())
            out += ", ";
        out += p.name;
    }
    return out;
}

bool
resolveProfiles(const std::vector<std::string> &names,
                std::vector<ScenarioProfile> &out, std::string *err)
{
    out.clear();
    for (const std::string &name : names) {
        if (name == "all") {
            for (const ScenarioProfile &p : allProfiles())
                out.push_back(p);
            continue;
        }
        const ScenarioProfile *p = findProfile(name);
        if (!p) {
            if (err)
                *err = "unknown profile '" + name +
                    "' (valid: " + profileNameList() + ")";
            return false;
        }
        out.push_back(*p);
    }
    return true;
}

std::string
profileToJson(const ScenarioProfile &p)
{
    JsonWriter w;
    w.beginObject();
    w.key("name").value(p.name);
    w.key("summary").value(p.summary);
    w.key("generator").value(std::string(profileGenName(p.gen)));
    w.key("warps").value(p.warps);
    w.key("jitter").value(p.jitter);
    w.key("synth");
    w.beginObject();
    w.key("seed").value(static_cast<std::uint64_t>(p.synth.seed));
    w.key("loopIters").value(p.synth.loopIters);
    w.key("strandsPerBody").value(p.synth.strandsPerBody);
    w.key("loadsPerStrand").value(p.synth.loadsPerStrand);
    w.key("opsPerStrand").value(p.synth.opsPerStrand);
    w.key("fracSfu").value(p.synth.fracSfu);
    w.key("useTex").value(p.synth.useTex);
    w.key("storesPerStrand").value(p.synth.storesPerStrand);
    w.key("pImmediate").value(p.synth.pImmediate);
    w.key("pPairOps").value(p.synth.pPairOps);
    w.key("pPersistent").value(p.synth.pPersistent);
    w.key("recencyWindow").value(p.synth.recencyWindow);
    w.key("pHammock").value(p.synth.pHammock);
    w.key("pPredicated").value(p.synth.pPredicated);
    w.key("prologueOps").value(p.synth.prologueOps);
    w.endObject();
    w.key("fuzz");
    w.beginObject();
    w.key("seed").value(static_cast<std::uint64_t>(p.fuzz.seed));
    w.key("maxInstrs").value(p.fuzz.maxInstrs);
    w.key("maxLoopDepth").value(p.fuzz.maxLoopDepth);
    w.key("maxHammockDepth").value(p.fuzz.maxHammockDepth);
    w.key("maxLoopIters").value(p.fuzz.maxLoopIters);
    w.key("allowWide").value(p.fuzz.allowWide);
    w.key("allowTex").value(p.fuzz.allowTex);
    w.key("highPressure").value(p.fuzz.highPressure);
    w.key("pPredicatedStore").value(p.fuzz.pPredicatedStore);
    w.key("pDuplicateOperand").value(p.fuzz.pDuplicateOperand);
    w.key("pForwardBranch").value(p.fuzz.pForwardBranch);
    w.key("pDegenerateBlock").value(p.fuzz.pDegenerateBlock);
    w.key("pSfuTail").value(p.fuzz.pSfuTail);
    w.endObject();
    w.endObject();
    return w.str();
}

namespace {

/** Strict field cursor over one JSON object. */
struct FieldReader
{
    const JsonValue &obj;
    std::string scope;
    std::string *err;
    bool ok = true;

    bool
    fail(const std::string &msg)
    {
        if (err && ok)
            *err = scope + msg;
        ok = false;
        return false;
    }

    bool
    checkKnown(const std::vector<std::string_view> &known)
    {
        for (const auto &[k, v] : obj.object) {
            bool found = false;
            for (std::string_view s : known)
                if (k == s)
                    found = true;
            if (!found)
                return fail("unknown field '" + k + "'");
        }
        return ok;
    }

    bool
    number(std::string_view key, double &out, bool required = true)
    {
        const JsonValue *v = obj.find(std::string(key));
        if (!v)
            return required
                ? fail("missing field '" + std::string(key) + "'")
                : true;
        if (!v->isNumber())
            return fail("field '" + std::string(key) +
                        "' must be a number");
        out = v->number;
        return true;
    }

    bool
    integer(std::string_view key, int &out, int lo, int hi,
            bool required = true)
    {
        double d = out;
        if (!number(key, d, required) || !ok)
            return ok;
        if (d != std::floor(d) || d < lo || d > hi)
            return fail("field '" + std::string(key) +
                        "' out of range");
        out = static_cast<int>(d);
        return true;
    }

    bool
    probability(std::string_view key, double &out,
                bool required = true)
    {
        if (!number(key, out, required) || !ok)
            return ok;
        if (out < 0.0 || out > 1.0)
            return fail("field '" + std::string(key) +
                        "' must be in [0, 1]");
        return true;
    }

    bool
    boolean(std::string_view key, bool &out, bool required = true)
    {
        const JsonValue *v = obj.find(std::string(key));
        if (!v)
            return required
                ? fail("missing field '" + std::string(key) + "'")
                : true;
        if (v->type != JsonValue::Type::BOOL)
            return fail("field '" + std::string(key) +
                        "' must be a boolean");
        out = v->boolean;
        return true;
    }
};

} // namespace

bool
profileFromJson(const JsonValue &v, ScenarioProfile &out,
                std::string *err)
{
    if (!v.isObject()) {
        if (err)
            *err = "profile must be a JSON object";
        return false;
    }
    FieldReader r{v, "profile: ", err};
    r.checkKnown({"name", "summary", "generator", "warps", "jitter",
                  "synth", "fuzz"});
    if (!r.ok)
        return false;

    const JsonValue *name = v.find("name");
    if (!name || !name->isString())
        return r.fail("field 'name' must be a string");
    out.name = name->string;
    out.summary = v.stringOr("summary", "");
    const JsonValue *gen = v.find("generator");
    if (!gen || !gen->isString() ||
        !profileGenFromName(gen->string, out.gen))
        return r.fail("field 'generator' must be "
                      "\"synth\" or \"fuzz\"");
    r.integer("warps", out.warps, 1, 64, false);
    r.number("jitter", out.jitter, false);
    if (r.ok && (out.jitter < 0.0 || out.jitter > 1.0))
        return r.fail("field 'jitter' must be in [0, 1]");
    if (!r.ok)
        return false;

    if (const JsonValue *s = v.find("synth")) {
        if (!s->isObject())
            return r.fail("field 'synth' must be an object");
        FieldReader sr{*s, "profile synth: ", err};
        sr.checkKnown({"seed", "loopIters", "strandsPerBody",
                       "loadsPerStrand", "opsPerStrand", "fracSfu",
                       "useTex", "storesPerStrand", "pImmediate",
                       "pPairOps", "pPersistent", "recencyWindow",
                       "pHammock", "pPredicated", "prologueOps"});
        SynthParams &sp = out.synth;
        double seed = static_cast<double>(sp.seed);
        sr.number("seed", seed, false);
        sp.seed = static_cast<std::uint64_t>(seed);
        sr.integer("loopIters", sp.loopIters, 1, 1 << 20, false);
        sr.integer("strandsPerBody", sp.strandsPerBody, 1, 64, false);
        sr.integer("loadsPerStrand", sp.loadsPerStrand, 0, 64, false);
        sr.integer("opsPerStrand", sp.opsPerStrand, 1, 256, false);
        sr.probability("fracSfu", sp.fracSfu, false);
        sr.boolean("useTex", sp.useTex, false);
        sr.integer("storesPerStrand", sp.storesPerStrand, 0, 64,
                   false);
        sr.probability("pImmediate", sp.pImmediate, false);
        sr.probability("pPairOps", sp.pPairOps, false);
        sr.probability("pPersistent", sp.pPersistent, false);
        sr.integer("recencyWindow", sp.recencyWindow, 1, 64, false);
        sr.probability("pHammock", sp.pHammock, false);
        sr.probability("pPredicated", sp.pPredicated, false);
        sr.integer("prologueOps", sp.prologueOps, 0, 256, false);
        if (!sr.ok)
            return false;
    }
    if (const JsonValue *f = v.find("fuzz")) {
        if (!f->isObject())
            return r.fail("field 'fuzz' must be an object");
        FieldReader fr{*f, "profile fuzz: ", err};
        fr.checkKnown({"seed", "maxInstrs", "maxLoopDepth",
                       "maxHammockDepth", "maxLoopIters", "allowWide",
                       "allowTex", "highPressure", "pPredicatedStore",
                       "pDuplicateOperand", "pForwardBranch",
                       "pDegenerateBlock", "pSfuTail"});
        FuzzParams &fp = out.fuzz;
        double seed = static_cast<double>(fp.seed);
        fr.number("seed", seed, false);
        fp.seed = static_cast<std::uint64_t>(seed);
        fr.integer("maxInstrs", fp.maxInstrs, 8, 4096, false);
        fr.integer("maxLoopDepth", fp.maxLoopDepth, 0, 8, false);
        fr.integer("maxHammockDepth", fp.maxHammockDepth, 0, 8,
                   false);
        fr.integer("maxLoopIters", fp.maxLoopIters, 1, 64, false);
        fr.boolean("allowWide", fp.allowWide, false);
        fr.boolean("allowTex", fp.allowTex, false);
        fr.boolean("highPressure", fp.highPressure, false);
        fr.probability("pPredicatedStore", fp.pPredicatedStore,
                       false);
        fr.probability("pDuplicateOperand", fp.pDuplicateOperand,
                       false);
        fr.probability("pForwardBranch", fp.pForwardBranch, false);
        fr.probability("pDegenerateBlock", fp.pDegenerateBlock,
                       false);
        fr.probability("pSfuTail", fp.pSfuTail, false);
        if (!fr.ok)
            return false;
    }
    return true;
}

SynthParams
synthParamsFor(const ScenarioProfile &p, std::uint64_t seed,
               int index)
{
    SynthParams sp = p.synth;
    Jitter j(kernelSeed(sp.seed, seed, index));
    sp.seed = j.next();
    double amp = p.jitter;
    sp.loopIters = scaleCount(p.synth.loopIters, j.factor(amp));
    sp.strandsPerBody =
        scaleCount(p.synth.strandsPerBody, j.factor(amp));
    sp.loadsPerStrand =
        scaleCount(p.synth.loadsPerStrand, j.factor(amp), 0);
    sp.opsPerStrand = scaleCount(p.synth.opsPerStrand, j.factor(amp));
    sp.prologueOps = scaleCount(p.synth.prologueOps, j.factor(amp), 0);
    sp.recencyWindow =
        scaleCount(p.synth.recencyWindow, j.factor(amp), 2);
    sp.fracSfu = scaleProb(p.synth.fracSfu, j.factor(amp));
    sp.pImmediate = scaleProb(p.synth.pImmediate, j.factor(amp));
    sp.pPairOps = scaleProb(p.synth.pPairOps, j.factor(amp));
    sp.pPersistent = scaleProb(p.synth.pPersistent, j.factor(amp));
    sp.pHammock = scaleProb(p.synth.pHammock, j.factor(amp));
    sp.pPredicated = scaleProb(p.synth.pPredicated, j.factor(amp));
    return sp;
}

FuzzParams
fuzzParamsFor(const ScenarioProfile &p, std::uint64_t seed, int index)
{
    FuzzParams fp = p.fuzz;
    Jitter j(kernelSeed(fp.seed, seed, index));
    fp.seed = j.next();
    double amp = p.jitter;
    fp.maxInstrs = scaleCount(p.fuzz.maxInstrs, j.factor(amp), 16);
    fp.maxLoopIters =
        scaleCount(p.fuzz.maxLoopIters, j.factor(amp));
    fp.pPredicatedStore =
        scaleProb(p.fuzz.pPredicatedStore, j.factor(amp));
    fp.pDuplicateOperand =
        scaleProb(p.fuzz.pDuplicateOperand, j.factor(amp));
    fp.pForwardBranch =
        scaleProb(p.fuzz.pForwardBranch, j.factor(amp));
    fp.pDegenerateBlock =
        scaleProb(p.fuzz.pDegenerateBlock, j.factor(amp));
    fp.pSfuTail = scaleProb(p.fuzz.pSfuTail, j.factor(amp));
    return fp;
}

Workload
corpusWorkload(const ScenarioProfile &p, std::uint64_t seed,
               int index)
{
    Workload w;
    w.name = p.name + "_" + std::to_string(seed) + "_" +
        std::to_string(index);
    w.suite = "corpus";
    if (p.gen == ProfileGen::SYNTH)
        w.kernel = generateSynthetic(w.name,
                                     synthParamsFor(p, seed, index));
    else
        w.kernel =
            generateFuzzKernel(w.name, fuzzParamsFor(p, seed, index));
    // Only the warp count deviates from the default run configuration:
    // the service builds inline-kernel workloads with default limits,
    // and local and fleet corpus runs must execute identically.
    w.run.numWarps = p.warps;
    return w;
}

std::uint64_t
corpusSliceFingerprint(const ScenarioProfile &p, std::uint64_t seed,
                       int n)
{
    std::uint64_t h = 1469598103934665603ULL; // FNV-1a offset basis
    for (int i = 0; i < n; i++) {
        Workload w = corpusWorkload(p, seed, i);
        std::string text = printKernel(w.kernel);
        for (unsigned char c : text) {
            h ^= c;
            h *= 1099511628211ULL;
        }
    }
    return h;
}

} // namespace rfh
