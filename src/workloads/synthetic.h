/**
 * @file
 * Statistical synthetic kernel generator.
 *
 * Generates deterministic, terminating RPTX kernels whose register
 * usage patterns are calibrated to the paper's measurements (Figure 2):
 * most values are read at most once, usually within a few instructions
 * of being produced; a small persistent set is read repeatedly over
 * long ranges; ~7% of values feed the shared datapath. Each paper
 * benchmark that has no hand-written counterpart is represented by a
 * parameter preset of this generator.
 */

#ifndef RFH_WORKLOADS_SYNTHETIC_H
#define RFH_WORKLOADS_SYNTHETIC_H

#include <cstdint>
#include <string>

#include "ir/kernel.h"

namespace rfh {

/** Generator parameters (defaults produce a generic compute kernel). */
struct SynthParams
{
    std::uint64_t seed = 1;
    /** Dynamic iterations of the outer (counted) loop. */
    int loopIters = 16;
    /** Long-latency groups per loop body (each starts a new strand). */
    int strandsPerBody = 2;
    /** Global loads issued back-to-back at the top of each strand. */
    int loadsPerStrand = 2;
    /** ALU/SFU producer ops per strand. */
    int opsPerStrand = 8;
    /** Fraction of producer ops executed on the SFU. */
    double fracSfu = 0.05;
    /** Replace global-load groups with texture fetches. */
    bool useTex = false;
    /** Stores per strand. */
    int storesPerStrand = 1;
    /** Probability that a secondary source is an immediate. */
    double pImmediate = 0.18;
    /**
     * Probability of emitting a "pair" pattern: two fresh values
     * consumed together through fixed operand slots (the split-LRF
     * sweet spot, Section 3.2).
     */
    double pPairOps = 0.20;
    /** Probability that a source reads a long-lived persistent value. */
    double pPersistent = 0.08;
    /** Recency window for source sampling (smaller = shorter lives). */
    int recencyWindow = 4;
    /** Probability that a strand contains an if/else hammock. */
    double pHammock = 0.10;
    /**
     * Probability that a producer op is predicated (PTX-style
     * if-conversion: the def merges with the old value).
     */
    double pPredicated = 0.04;
    /** Straight-line prologue ops before the loop. */
    int prologueOps = 6;
};

/** Generate a kernel named @p name from @p params (deterministic). */
Kernel generateSynthetic(const std::string &name,
                         const SynthParams &params);

} // namespace rfh

#endif // RFH_WORKLOADS_SYNTHETIC_H
