#include "workloads/registry.h"

#include <cstdio>
#include <cstdlib>

#include "workloads/handwritten.h"

namespace rfh {

namespace {

Workload
hand(const char *name, const char *suite)
{
    Workload w;
    w.name = name;
    w.suite = suite;
    w.kernel = buildHandwrittenKernel(name);
    return w;
}

std::vector<Workload>
build()
{
    std::vector<Workload> v;

    // ---- CUDA SDK 3.2 ----
    v.push_back(hand("bicubictexture", "CUDA SDK"));
    v.push_back(hand("binomialoptions", "CUDA SDK"));
    v.push_back(hand("boxfilter", "CUDA SDK"));
    v.push_back(hand("convolutionseparable", "CUDA SDK"));
    v.push_back(hand("convolutiontexture", "CUDA SDK"));
    v.push_back(hand("dct8x8", "CUDA SDK"));
    v.push_back(hand("dwthaar1d", "CUDA SDK"));
    v.push_back(hand("dxtc", "CUDA SDK"));
    v.push_back(hand("eigenvalues", "CUDA SDK"));
    v.push_back(hand("fastwalshtransform", "CUDA SDK"));
    v.push_back(hand("histogram", "CUDA SDK"));
    v.push_back(hand("imagedenoising", "CUDA SDK"));
    v.push_back(hand("mandelbrot", "CUDA SDK"));
    v.push_back(hand("matrixmul", "CUDA SDK"));
    v.push_back(hand("mergesort", "CUDA SDK"));
    v.push_back(hand("montecarlo", "CUDA SDK"));
    v.push_back(hand("nbody", "CUDA SDK"));
    v.push_back(hand("recursivegaussian", "CUDA SDK"));
    v.push_back(hand("reduction", "CUDA SDK"));
    v.push_back(hand("scalarprod", "CUDA SDK"));
    v.push_back(hand("sobelfilter", "CUDA SDK"));
    v.push_back(hand("sobolqrng", "CUDA SDK"));
    v.push_back(hand("sortingnetworks", "CUDA SDK"));
    v.push_back(hand("vectoradd", "CUDA SDK"));
    v.push_back(hand("volumerender", "CUDA SDK"));

    // ---- Parboil ----
    v.push_back(hand("cp", "Parboil"));
    v.push_back(hand("mri-fhd", "Parboil"));
    v.push_back(hand("mri-q", "Parboil"));
    v.push_back(hand("rpes", "Parboil"));
    v.push_back(hand("sad", "Parboil"));

    // ---- Rodinia ----
    v.push_back(hand("backprop", "Rodinia"));
    v.push_back(hand("hotspot", "Rodinia"));
    v.push_back(hand("hwt", "Rodinia"));
    v.push_back(hand("lu", "Rodinia"));
    v.push_back(hand("needle", "Rodinia"));
    v.push_back(hand("srad", "Rodinia"));

    for (auto &w : v) {
        std::string err = w.kernel.validate();
        if (!err.empty()) {
            std::fprintf(stderr, "rfh: workload %s invalid: %s\n",
                         w.name.c_str(), err.c_str());
            std::abort();
        }
    }
    return v;
}

} // namespace

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> v = build();
    return v;
}

std::vector<const Workload *>
suiteWorkloads(const std::string &suite)
{
    std::vector<const Workload *> out;
    for (const auto &w : allWorkloads())
        if (w.suite == suite)
            out.push_back(&w);
    return out;
}

const Workload &
workloadByName(const std::string &name)
{
    if (const Workload *w = findWorkload(name))
        return *w;
    std::fprintf(stderr, "rfh: unknown workload '%s'\n", name.c_str());
    std::abort();
}

const Workload *
findWorkload(const std::string &name)
{
    for (const auto &w : allWorkloads())
        if (w.name == name)
            return &w;
    return nullptr;
}

const std::vector<std::string> &
suiteNames()
{
    static const std::vector<std::string> names = {
        "CUDA SDK", "Parboil", "Rodinia",
    };
    return names;
}

} // namespace rfh
