#include "workloads/synthetic.h"

#include <algorithm>
#include <deque>

namespace rfh {

namespace {

/** splitmix64: small deterministic RNG. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL)
    {
    }

    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    int
    range(int n)
    {
        return static_cast<int>(next() % static_cast<std::uint64_t>(n));
    }

  private:
    std::uint64_t state_;
};

// Register conventions inside generated kernels.
constexpr Reg kTid = 0;        // thread id (seeded)
constexpr Reg kOffset = 1;     // byte offset = tid * 4
constexpr Reg kAddr = 2;       // running global address
constexpr Reg kAcc = 3;        // accumulator (live across strands)
constexpr Reg kCounter = 4;    // loop counter
constexpr Reg kPred = 5;       // scratch predicate
constexpr Reg kPersistBase = 6;  // persistents: R6..R8
constexpr int kNumPersist = 3;
constexpr Reg kTempBase = 9;   // rotating temps: R9..R30
constexpr int kNumTemps = 22;
constexpr Reg kParam = 63;     // parameter base (seeded)

/** A pooled value with the operand slot its consumers should use. */
struct PooledValue
{
    Reg reg = kOffset;
    int slot = 0;
};

/** Tracks recent temporaries for source sampling. */
class ValuePool
{
  public:
    explicit ValuePool(Rng &rng) : rng_(rng) {}

    /**
     * Record a new definition. Each value is assigned a preferred
     * operand slot round-robin; consumers read it through that slot,
     * which keeps multi-read values split-LRF eligible and spreads
     * single-read values across the per-slot banks (Section 3.2).
     */
    void
    defined(Reg r)
    {
        recent_.push_front(PooledValue{r, nextSlot_});
        nextSlot_ = (nextSlot_ + 1) % 3;
        if (recent_.size() > 16)
            recent_.pop_back();
    }

    void
    clear()
    {
        recent_.clear();
    }

    /**
     * Sample a source register with recency bias: index ~ geometric
     * over the last @p window defs, which yields mostly read-once and
     * read-in-burst behaviour. Most sampled values are retired from
     * the pool so the read-once fraction matches Figure 2(a).
     */
    PooledValue
    sample(int window)
    {
        if (recent_.empty())
            return PooledValue{};
        int limit = std::min<int>(window,
                                  static_cast<int>(recent_.size()));
        int idx = 0;
        while (idx + 1 < limit && rng_.uniform() < 0.5)
            idx++;
        PooledValue v = recent_[idx];
        if (rng_.uniform() < 0.65)
            recent_.erase(recent_.begin() + idx);
        return v;
    }

    /** Most recently defined temp (or the offset register). */
    Reg
    newest() const
    {
        return recent_.empty() ? kOffset : recent_.front().reg;
    }

    bool
    empty() const
    {
        return recent_.empty();
    }

  private:
    Rng &rng_;
    int nextSlot_ = 0;
    std::deque<PooledValue> recent_;
};

// Two-source ALU ops (value in slot 0, second source in slot 1).
constexpr Opcode kAlu2Ops[] = {
    Opcode::IADD, Opcode::ISUB, Opcode::XOR, Opcode::AND, Opcode::OR,
    Opcode::SHL, Opcode::SHR, Opcode::IMIN, Opcode::IMAX,
    Opcode::FADD, Opcode::FMUL,
};
constexpr Opcode kAlu3Ops[] = {
    Opcode::FFMA, Opcode::IMAD, Opcode::SEL,
};
constexpr Opcode kSfuOps[] = {
    Opcode::RCP, Opcode::SQRT, Opcode::RSQRT, Opcode::SIN, Opcode::COS,
    Opcode::EX2, Opcode::LG2,
};
constexpr Opcode kPairOps[][2] = {
    {Opcode::IMIN, Opcode::IMAX},
    {Opcode::FADD, Opcode::FSUB},
    {Opcode::AND, Opcode::OR},
};

} // namespace

Kernel
generateSynthetic(const std::string &name, const SynthParams &p)
{
    Rng rng(p.seed);
    KernelBuilder b(name);
    ValuePool pool(rng);

    int next_temp = 0;
    auto fresh_temp = [&]() -> Reg {
        Reg r = static_cast<Reg>(kTempBase + next_temp);
        next_temp = (next_temp + 1) % kNumTemps;
        return r;
    };

    // Filler source: an immediate, a persistent register, or the
    // thread offset — never a pooled temporary (those are placed at
    // their preferred slots only).
    auto filler_src = [&]() -> SrcOperand {
        double total = p.pImmediate + p.pPersistent;
        double u = rng.uniform() * std::max(total, 0.26);
        if (u < p.pImmediate)
            return SrcOperand::makeImm(
                static_cast<std::uint32_t>(rng.range(255) + 1));
        if (u < total)
            return SrcOperand::makeReg(static_cast<Reg>(
                kPersistBase + rng.range(kNumPersist)));
        return SrcOperand::makeReg(kOffset);
    };
    // Kept for call sites that want an "older value or filler" source.
    auto second_src = [&]() -> SrcOperand {
        if (rng.uniform() < 0.5) {
            PooledValue v = pool.sample(p.recencyWindow + 2);
            return SrcOperand::makeReg(v.reg);
        }
        return filler_src();
    };

    auto emit_producer = [&](bool allow_sfu) {
        Reg dst = fresh_temp();
        bool sfu = allow_sfu && rng.uniform() < p.fracSfu;
        PooledValue fresh = pool.sample(p.recencyWindow);
        SrcOperand fresh_op = SrcOperand::makeReg(fresh.reg);
        if (sfu) {
            Opcode op = kSfuOps[rng.range(std::size(kSfuOps))];
            b.add(makeUnary(op, dst, fresh_op));
        } else if (rng.uniform() < 0.4) {
            // Pooled values are consumed only through their preferred
            // operand slot, so the split LRF's per-slot banks all see
            // traffic and multi-read values stay single-slot
            // (Section 3.2).
            Opcode op = kAlu3Ops[rng.range(std::size(kAlu3Ops))];
            SrcOperand srcs[3] = {filler_src(), filler_src(),
                                  filler_src()};
            srcs[fresh.slot] = fresh_op;
            if (rng.uniform() < 0.5) {
                PooledValue extra = pool.sample(p.recencyWindow + 2);
                if (extra.slot != fresh.slot)
                    srcs[extra.slot] = SrcOperand::makeReg(extra.reg);
            }
            b.add(makeALU3(op, dst, srcs[0], srcs[1], srcs[2]));
        } else {
            Opcode op = kAlu2Ops[rng.range(std::size(kAlu2Ops))];
            int fslot = fresh.slot % 2;
            SrcOperand other = filler_src();
            if (rng.uniform() < 0.35) {
                PooledValue extra = pool.sample(p.recencyWindow + 2);
                if (extra.slot % 2 != fslot)
                    other = SrcOperand::makeReg(extra.reg);
            }
            Instruction alu = fslot == 0
                ? makeALU(op, dst, fresh_op, other)
                : makeALU(op, dst, other, fresh_op);
            // Occasional if-conversion: a predicated merge into a
            // register defined earlier this strand.
            if (rng.uniform() < p.pPredicated) {
                b.add(makeALU(Opcode::SETLT, kPred, fresh_op,
                              SrcOperand::makeImm(0x20000000)));
                alu.pred = kPred;
                alu.dst = pool.newest();
                dst = *alu.dst;
            }
            b.add(alu);
        }
        pool.defined(dst);
        return dst;
    };

    // Pair pattern: two fresh values consumed together through fixed
    // operand slots (the split-LRF sweet spot, Section 3.2).
    auto emit_pair = [&]() {
        Reg v1 = fresh_temp();
        Reg v2 = fresh_temp();
        const auto &ops = kPairOps[rng.range(std::size(kPairOps))];
        b.add(makeALU(Opcode::IADD, v1,
                      SrcOperand::makeReg(pool.sample(
                          p.recencyWindow).reg),
                      second_src()));
        b.add(makeALU(Opcode::XOR, v2,
                      SrcOperand::makeReg(pool.sample(
                          p.recencyWindow).reg),
                      second_src()));
        Reg w1 = fresh_temp();
        b.add(makeALU(ops[0], w1, SrcOperand::makeReg(v1),
                      SrcOperand::makeReg(v2)));
        pool.defined(w1);
        // A second consumer of the same pair only half the time, so
        // read-once values stay the majority (Figure 2(a)).
        if (rng.uniform() < 0.5) {
            Reg w2 = fresh_temp();
            b.add(makeALU(ops[1], w2, SrcOperand::makeReg(v1),
                          SrcOperand::makeReg(v2)));
            pool.defined(w2);
        }
    };

    // ---- Prologue ----
    b.block("entry");
    b.add(makeALU(Opcode::SHL, kOffset, SrcOperand::makeReg(kTid),
                  SrcOperand::makeImm(2)));
    b.add(makeLoad(Opcode::LD_PARAM, kAddr, kParam));
    b.add(makeALU(Opcode::IADD, kAddr, SrcOperand::makeReg(kAddr),
                  SrcOperand::makeReg(kOffset)));
    for (int i = 0; i < kNumPersist; i++) {
        b.add(makeALU(Opcode::IADD, static_cast<Reg>(kPersistBase + i),
                      SrcOperand::makeReg(kOffset),
                      SrcOperand::makeImm(
                          static_cast<std::uint32_t>(17 * (i + 1)))));
    }
    pool.defined(kOffset);
    for (int i = 0; i < p.prologueOps; i++)
        emit_producer(false);
    b.add(makeALU(Opcode::AND, kAcc, SrcOperand::makeReg(kOffset),
                  SrcOperand::makeImm(0)));
    b.add(makeALU(Opcode::IADD, kCounter, SrcOperand::makeReg(kAcc),
                  SrcOperand::makeImm(
                      static_cast<std::uint32_t>(p.loopIters))));

    // ---- Loop body ----
    int loop_block = b.block("loop");
    pool.clear();  // loop entry is a strand boundary
    int hammock_id = 0;
    for (int s = 0; s < p.strandsPerBody; s++) {
        // Long-latency group at the top of the strand: loads walk the
        // persistent address register directly (address values are
        // kernel-lifetime, matching PTX code where addresses come from
        // long-lived registers).
        std::vector<Reg> loaded;
        for (int l = 0; l < p.loadsPerStrand; l++) {
            Reg v = fresh_temp();
            Reg base = s == 0 && l == 0
                ? kAddr
                : static_cast<Reg>(kPersistBase + (s + l) % kNumPersist);
            b.add(makeLoad(p.useTex ? Opcode::TEX : Opcode::LD_GLOBAL,
                           v, base,
                           static_cast<std::uint32_t>(4 * (s + l))));
            loaded.push_back(v);
        }
        for (Reg v : loaded)
            pool.defined(v);

        int ops = p.opsPerStrand;
        while (ops > 0) {
            if (ops >= 4 && rng.uniform() < p.pPairOps) {
                emit_pair();
                ops -= 4;
            } else {
                emit_producer(true);
                ops--;
            }
        }

        // Optional hammock writing one register on both paths
        // (Figure 10(c) pattern).
        if (rng.uniform() < p.pHammock) {
            Reg merged = fresh_temp();
            std::string suffix = std::to_string(hammock_id++);
            SrcOperand cond = SrcOperand::makeReg(
                pool.sample(p.recencyWindow).reg);
            b.add(makeALU(Opcode::SETLT, kPred, cond,
                          SrcOperand::makeImm(0x40000000)));
            b.add(makeCondBranch(kPred, -1));  // patched below
            b.block("then" + suffix);
            b.add(makeALU(Opcode::IADD, merged,
                          SrcOperand::makeReg(pool.sample(
                              p.recencyWindow).reg),
                          SrcOperand::makeImm(3)));
            b.add(makeBranch(-1));
            b.block("else" + suffix);
            b.add(makeALU(Opcode::ISUB, merged,
                          SrcOperand::makeReg(pool.sample(
                              p.recencyWindow).reg),
                          SrcOperand::makeImm(5)));
            b.block("merge" + suffix);
            b.add(makeALU(Opcode::IADD, kAcc,
                          SrcOperand::makeReg(kAcc),
                          SrcOperand::makeReg(merged)));
            pool.defined(merged);
        }

        // Fold the newest value into the accumulator.
        b.add(makeALU(Opcode::IADD, kAcc, SrcOperand::makeReg(kAcc),
                      SrcOperand::makeReg(pool.newest())));
        // Stores write back long-lived state (persistents), so the
        // shared datapath consumes few of the freshly produced values
        // (~7% in the paper's traces, Section 3.2).
        for (int st = 0; st < p.storesPerStrand; st++) {
            Reg data = static_cast<Reg>(kPersistBase +
                                        st % kNumPersist);
            b.add(makeStore(Opcode::ST_SHARED, kOffset, data,
                            static_cast<std::uint32_t>(4 * st)));
        }
    }
    b.add(makeALU(Opcode::IADD, kAddr, SrcOperand::makeReg(kAddr),
                  SrcOperand::makeImm(128)));
    b.add(makeALU(Opcode::ISUB, kCounter, SrcOperand::makeReg(kCounter),
                  SrcOperand::makeImm(1)));
    b.add(makeALU(Opcode::SETGT, kPred, SrcOperand::makeReg(kCounter),
                  SrcOperand::makeImm(0)));
    b.add(makeCondBranch(kPred, loop_block));

    // ---- Epilogue ----
    b.block("done");
    b.add(makeStore(Opcode::ST_GLOBAL, kAddr, kAcc));
    b.add(makeExit());

    Kernel k = b.take();

    // Fix up the hammock branch targets: every conditional branch with
    // target -1 jumps to the following "else" block; every
    // unconditional -1 branch jumps to the following "merge" block.
    for (int bb = 0; bb < static_cast<int>(k.blocks.size()); bb++) {
        for (auto &in : k.blocks[bb].instrs) {
            if (in.op != Opcode::BRA || in.branchTarget != -1)
                continue;
            for (int t = bb + 1; t < static_cast<int>(k.blocks.size());
                 t++) {
                const std::string &label = k.blocks[t].label;
                bool want_else = in.pred.has_value();
                if ((want_else && label.rfind("else", 0) == 0) ||
                    (!want_else && label.rfind("merge", 0) == 0)) {
                    in.branchTarget = t;
                    break;
                }
            }
        }
    }
    k.finalize();
    return k;
}

} // namespace rfh
