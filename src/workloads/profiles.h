/**
 * @file
 * Scenario-profile space: named, registered points of the kernel
 * generator parameter space, the corpus engine's workload aperture.
 *
 * A ScenarioProfile names one population of kernels: a generator (the
 * Figure-2-calibrated synthetic generator or the grammar fuzzer), its
 * base parameters, and a jitter amplitude. Kernel @c index of a
 * profile is produced from deterministically jittered parameters —
 * pressure, divergence rate, SFU density, strand-length distribution,
 * persistence mix all vary around the profile's centre — so a profile
 * is a *distribution* over kernels, not a single preset, and corpus
 * statistics over it carry real population spread.
 *
 * Profiles are registered like schemes (core/scheme.h): a fixed
 * builtin set enumerable in registration order, lookup by name, and
 * unknown-name errors that list the valid names. Each profile
 * round-trips through JSON (profileToJson / profileFromJson) so runs
 * can be reproduced from their manifests alone.
 */

#ifndef RFH_WORKLOADS_PROFILES_H
#define RFH_WORKLOADS_PROFILES_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "verify/rptx_fuzz.h"
#include "workloads/registry.h"
#include "workloads/synthetic.h"

namespace rfh {

struct JsonValue;

/** Which generator realises a profile's kernels. */
enum class ProfileGen
{
    SYNTH, ///< workloads/synthetic.h (well-behaved compiler output).
    FUZZ,  ///< verify/rptx_fuzz.h (pathological control flow).
};

/** Wire name of @p g: "synth" or "fuzz". */
std::string_view profileGenName(ProfileGen g);

/** Inverse of profileGenName. @return false for unknown names. */
bool profileGenFromName(std::string_view name, ProfileGen &out);

/** One named kernel population (see file comment). */
struct ScenarioProfile
{
    /** Registry name, e.g. "balanced" — stable, used on the wire. */
    std::string name;
    /** One-line description for docs and error messages. */
    std::string summary;
    ProfileGen gen = ProfileGen::SYNTH;
    /** Generator centre when gen == SYNTH. */
    SynthParams synth;
    /** Generator centre when gen == FUZZ. */
    FuzzParams fuzz;
    /** Warps per generated workload's run configuration. */
    int warps = 8;
    /**
     * Relative jitter amplitude of the per-kernel parameter draw:
     * each knob is scaled by a factor from [1-jitter, 1+jitter]
     * (probabilities clamped to [0, 0.95], counts kept >= 1).
     */
    double jitter = 0.35;
};

/** The builtin profiles, in registration order. */
const std::vector<ScenarioProfile> &allProfiles();

/** Lookup by name; @return null when unregistered. */
const ScenarioProfile *findProfile(std::string_view name);

/**
 * Comma-joined registered names — the "valid profiles" list quoted
 * by unknown-profile errors (mirroring SchemeRegistry::tokenList).
 */
std::string profileNameList();

/**
 * Resolve @p names ("all" expands to every builtin, in order) into
 * profiles. On an unknown name, @return false and set @p err to
 * "unknown profile '<name>' (valid: <list>)".
 */
bool resolveProfiles(const std::vector<std::string> &names,
                     std::vector<ScenarioProfile> &out,
                     std::string *err);

/** Serialise @p p as one JSON object (full parameter round-trip). */
std::string profileToJson(const ScenarioProfile &p);

/**
 * Strict inverse of profileToJson: unknown keys, wrong types, and
 * out-of-range values fail with a message naming the field.
 * profileToJson(parsed) reproduces the input document byte for byte.
 */
bool profileFromJson(const JsonValue &v, ScenarioProfile &out,
                     std::string *err);

/**
 * The jittered synthetic parameters of kernel @p index of @p p under
 * corpus seed @p seed (only meaningful when p.gen == SYNTH).
 */
SynthParams synthParamsFor(const ScenarioProfile &p,
                           std::uint64_t seed, int index);

/** Fuzz-generator counterpart of synthParamsFor. */
FuzzParams fuzzParamsFor(const ScenarioProfile &p, std::uint64_t seed,
                         int index);

/**
 * Generate kernel @p index of profile @p p under corpus seed @p seed
 * as a runnable workload (suite "corpus", name
 * "<profile>_<seed>_<index>"). Deterministic; the kernel always
 * passes Kernel::validate().
 */
Workload corpusWorkload(const ScenarioProfile &p, std::uint64_t seed,
                        int index);

/**
 * FNV-1a digest over the printed text of the profile's first @p n
 * kernels under corpus seed @p seed. The drift-guard tests pin these
 * per profile, so generator or jitter changes surface as explicit
 * test updates rather than silent population shifts.
 */
std::uint64_t corpusSliceFingerprint(const ScenarioProfile &p,
                                     std::uint64_t seed, int n);

} // namespace rfh

#endif // RFH_WORKLOADS_PROFILES_H
