/**
 * @file
 * Benchmark registry: the paper's benchmark suites (Table 1), each
 * realised either as a hand-written RPTX kernel or as a calibrated
 * synthetic preset.
 */

#ifndef RFH_WORKLOADS_REGISTRY_H
#define RFH_WORKLOADS_REGISTRY_H

#include <string>
#include <vector>

#include "ir/kernel.h"
#include "sim/baseline_exec.h"

namespace rfh {

/** One benchmark: a kernel plus its execution configuration. */
struct Workload
{
    std::string name;
    std::string suite;  ///< "CUDA SDK", "Parboil", or "Rodinia".
    Kernel kernel;
    RunConfig run;
};

/** All benchmarks of Table 1, built once and cached. */
const std::vector<Workload> &allWorkloads();

/** The subset belonging to @p suite. */
std::vector<const Workload *> suiteWorkloads(const std::string &suite);

/** Look up one workload by name (aborts if unknown). */
const Workload &workloadByName(const std::string &name);

/**
 * Non-aborting lookup for callers serving untrusted names (the batch
 * service): @return the workload, or nullptr when unknown.
 */
const Workload *findWorkload(const std::string &name);

/** Names of the three suites in presentation order. */
const std::vector<std::string> &suiteNames();

} // namespace rfh

#endif // RFH_WORKLOADS_REGISTRY_H
