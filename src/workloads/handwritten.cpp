#include "workloads/handwritten.h"

#include <cstdio>
#include <cstdlib>
#include <map>

#include "ir/parser.h"

namespace rfh {

namespace {

// Register conventions: R0 = thread/warp id, R63 = parameter base.
// Float immediates are written as their IEEE-754 bit patterns.

constexpr std::string_view kVectorAdd = R"(.kernel vectoradd
entry:
    shl       R1, R0, #2
    ld.param  R2, [R63]
    ld.param  R3, [R63+4]
    iadd      R5, R2, R1
    iadd      R6, R3, R1
    ld.global R7, [R5]
    ld.global R8, [R6]
    fadd      R9, R7, R8
    ld.param  R11, [R63+8]
    iadd      R12, R11, R1
    st.global [R12], R9
    exit
)";

constexpr std::string_view kScalarProd = R"(.kernel scalarprod
entry:
    shl       R1, R0, #2
    ld.param  R2, [R63]
    iadd      R3, R2, R1
    ld.param  R5, [R63+4]
    iadd      R6, R5, R1
    mov       R7, #0
    mov       R8, #64
loop:
    ld.global R9, [R3]
    ld.global R10, [R6]
    iadd      R3, R3, #128
    iadd      R6, R6, #128
    ffma      R7, R9, R10, R7
    isub      R8, R8, #1
    setgt     R11, R8, #0
    @R11 bra  loop
done:
    ld.param  R13, [R63+8]
    iadd      R14, R13, R1
    st.global [R14], R7
    exit
)";

constexpr std::string_view kReduction = R"(.kernel reduction
entry:
    shl       R1, R0, #2
    ld.param  R2, [R63]
    iadd      R3, R2, R1
    mov       R4, #0
    mov       R5, #96
acc:
    ld.global R6, [R3]
    iadd      R3, R3, #128
    iadd      R4, R4, R6
    isub      R5, R5, #1
    setgt     R7, R5, #0
    @R7 bra   acc
done:
    st.shared [R1], R4
    bar
    ld.shared R8, [R1]
    ld.param  R10, [R63+4]
    iadd      R11, R10, R1
    st.global [R11], R8
    exit
)";

constexpr std::string_view kMatrixMul = R"(.kernel matrixmul
entry:
    shl       R1, R0, #2
    ld.param  R2, [R63]
    iadd      R3, R2, R1
    ld.param  R5, [R63+4]
    iadd      R6, R5, R1
    mov       R7, #0
    mov       R8, #16
outer:
    ld.global R9, [R3]
    ld.global R10, [R6]
    st.shared [R1], R9
    st.shared [R1+1024], R10
    bar
    ld.shared R15, [R1]
    ld.shared R17, [R1+1024]
    ffma      R7, R15, R17, R7
    ld.shared R15, [R1+4]
    ld.shared R17, [R1+1028]
    ffma      R7, R15, R17, R7
    ld.shared R15, [R1+8]
    ld.shared R17, [R1+1032]
    ffma      R7, R15, R17, R7
    ld.shared R15, [R1+12]
    ld.shared R17, [R1+1036]
    ffma      R7, R15, R17, R7
    iadd      R3, R3, #64
    iadd      R6, R6, #64
    bar
    isub      R8, R8, #1
    setgt     R19, R8, #0
    @R19 bra  outer
done:
    ld.param  R21, [R63+8]
    iadd      R22, R21, R1
    st.global [R22], R7
    exit
)";

constexpr std::string_view kConvSep = R"(.kernel convolutionseparable
entry:
    shl       R1, R0, #2
    mov       R20, #32
    ld.param  R2, [R63]
    iadd      R3, R2, R1
row:
    ld.global R4, [R3]
    st.shared [R1], R4
    bar
    ld.shared R6, [R1]
    ld.shared R7, [R1+4]
    ld.shared R9, [R1+8]
    fmul      R10, R6, #1059648963
    ffma      R10, R7, #1065353216, R10
    ffma      R10, R9, #1059648963, R10
    ld.shared R12, [R1+12]
    ld.shared R14, [R1+16]
    ffma      R10, R12, #1056964608, R10
    ffma      R10, R14, #1048576000, R10
    ld.param  R16, [R63+4]
    iadd      R17, R16, R1
    st.global [R17], R10
    iadd      R3, R3, #128
    isub      R20, R20, #1
    setgt     R21, R20, #0
    @R21 bra  row
fin:
    exit
)";

constexpr std::string_view kMonteCarlo = R"(.kernel montecarlo
entry:
    mov       R2, #128
    mov       R3, #0
    shl       R1, R0, #2
    ld.param  R4, [R63]
    iadd      R5, R4, R1
path:
    ld.global R6, [R5]
    fmul      R7, R6, #1036831949
    sin       R8, R7
    cos       R9, R7
    fmul      R10, R8, R9
    fmul      R11, R10, R10
    fadd      R12, R11, #1065353216
    ex2       R13, R12
    ffma      R3, R13, #1036831949, R3
    iadd      R5, R5, #4
    isub      R2, R2, #1
    setgt     R14, R2, #0
    @R14 bra  path
end:
    st.global [R5], R3
    exit
)";

constexpr std::string_view kHistogram = R"(.kernel histogram
entry:
    shl       R1, R0, #2
    ld.param  R2, [R63]
    iadd      R3, R2, R1
    mov       R4, #48
scan:
    ld.global R5, [R3]
    and       R6, R5, #255
    shl       R7, R6, #2
    ld.shared R8, [R7]
    iadd      R9, R8, #1
    st.shared [R7], R9
    shr       R10, R5, #8
    and       R11, R10, #255
    shl       R12, R11, #2
    ld.shared R13, [R12]
    iadd      R14, R13, #1
    st.shared [R12], R14
    shr       R15, R5, #16
    and       R16, R15, #255
    shl       R17, R16, #2
    ld.shared R18, [R17]
    iadd      R19, R18, #1
    st.shared [R17], R19
    shr       R20, R5, #24
    shl       R21, R20, #2
    ld.shared R22, [R21]
    iadd      R23, R22, #1
    st.shared [R21], R23
    iadd      R3, R3, #128
    isub      R4, R4, #1
    setgt     R24, R4, #0
    @R24 bra  scan
done:
    exit
)";

constexpr std::string_view kBicubicTexture = R"(.kernel bicubictexture
entry:
    shl       R1, R0, #2
    mov       R2, #16
px:
    tex       R3, [R1]
    tex       R5, [R1+4]
    tex       R7, [R1+8]
    tex       R9, [R1+12]
    fmul      R10, R3, #1056964608
    ffma      R10, R5, #1065353216, R10
    ffma      R10, R7, #1065353216, R10
    ffma      R10, R9, #1056964608, R10
    ld.param  R11, [R63]
    iadd      R12, R11, R1
    st.global [R12], R10
    iadd      R1, R1, #64
    isub      R2, R2, #1
    setgt     R13, R2, #0
    @R13 bra  px
end:
    exit
)";

constexpr std::string_view kMandelbrot = R"(.kernel mandelbrot
entry:
    shl       R2, R0, #20
    shl       R3, R0, #19
    mov       R4, #0
    mov       R5, #0
    mov       R6, #48
iter:
    fmul      R7, R4, R4
    fmul      R8, R5, R5
    fadd      R9, R7, R8
    setgt     R10, R9, #1082130432
    @R10 bra  esc
body:
    fsub      R11, R7, R8
    fadd      R11, R11, R2
    fmul      R12, R4, R5
    fadd      R12, R12, R12
    fadd      R5, R12, R3
    mov       R4, R11
    isub      R6, R6, #1
    setgt     R13, R6, #0
    @R13 bra  iter
esc:
    ld.param  R14, [R63]
    shl       R15, R0, #2
    iadd      R16, R14, R15
    st.global [R16], R6
    exit
)";

constexpr std::string_view kNeedle = R"(.kernel needle
entry:
    shl       R1, R0, #2
    ld.param  R2, [R63]
    iadd      R3, R2, R1
    mov       R4, #32
cell:
    ld.global R5, [R3]
    ld.shared R6, [R1]
    ld.shared R8, [R1+4]
    setgt     R9, R6, R8
    @R9 bra   left
right:
    iadd      R10, R8, R5
    bra       merge
left:
    iadd      R10, R6, R5
merge:
    imax      R11, R10, #0
    st.shared [R1], R11
    iadd      R3, R3, #128
    isub      R4, R4, #1
    setgt     R12, R4, #0
    @R12 bra  cell
done:
    exit
)";

constexpr std::string_view kHotspot = R"(.kernel hotspot
entry:
    shl       R1, R0, #2
    mov       R2, #24
step:
    ld.shared R3, [R1]
    ld.shared R5, [R1+4]
    ld.shared R7, [R1+8]
    ld.shared R9, [R1+128]
    ld.shared R11, [R1+256]
    fadd      R12, R5, R7
    fadd      R13, R9, R11
    fadd      R14, R12, R13
    ffma      R15, R3, #3229614080, R14
    fmul      R16, R15, #1045220557
    fadd      R17, R3, R16
    st.shared [R1], R17
    isub      R2, R2, #1
    setgt     R18, R2, #0
    @R18 bra  step
done:
    exit
)";

constexpr std::string_view kSrad = R"(.kernel srad
entry:
    shl       R1, R0, #2
    ld.param  R2, [R63]
    iadd      R3, R2, R1
    mov       R4, #16
it:
    ld.global R5, [R3]
    ld.shared R6, [R1]
    ld.shared R7, [R1+4]
    ld.shared R8, [R1+128]
    ld.shared R9, [R1+132]
    fsub      R10, R6, R5
    fsub      R11, R7, R5
    fsub      R12, R8, R5
    fsub      R13, R9, R5
    fadd      R14, R10, R11
    fadd      R15, R12, R13
    fadd      R16, R14, R15
    fmul      R17, R5, R5
    rcp       R18, R17
    fmul      R19, R16, R18
    setlt     R20, R19, #1056964608
    @R20 bra  small
big:
    fmul      R21, R19, #1061997773
    bra       join
small:
    fmul      R21, R19, #1050253722
join:
    ffma      R22, R21, R16, R5
    st.global [R3], R22
    iadd      R3, R3, #128
    isub      R4, R4, #1
    setgt     R23, R4, #0
    @R23 bra  it
fin:
    exit
)";

constexpr std::string_view kDwtHaar = R"(.kernel dwthaar1d
entry:
    shl       R1, R0, #2
    ld.param  R2, [R63]
    imul.wide R4, R1, #8
    iadd      R6, R2, R4
    mov       R7, #32
pair:
    ld.global R8, [R6]
    ld.global R10, [R6+4]
    fadd      R11, R8, R10
    fsub      R12, R8, R10
    fmul      R11, R11, #1060439283
    fmul      R12, R12, #1060439283
    st.shared [R1], R11
    st.shared [R1+2048], R12
    iadd      R6, R6, #8
    isub      R7, R7, #1
    setgt     R14, R7, #0
    @R14 bra  pair
done:
    iadd      R15, R5, #0
    st.shared [R15], R7
    exit
)";

constexpr std::string_view kSortingNetworks = R"(.kernel sortingnetworks
entry:
    shl       R1, R0, #2
    ld.param  R2, [R63]
    iadd      R3, R2, R1
    mov       R16, #16
net:
    ld.global R4, [R3]
    ld.global R6, [R3+4]
    ld.global R8, [R3+8]
    ld.global R10, [R3+12]
    imin      R11, R4, R6
    imax      R12, R4, R6
    imin      R13, R8, R10
    imax      R14, R8, R10
    imin      R15, R12, R13
    imax      R17, R12, R13
    imax      R18, R11, R15
    imin      R19, R17, R14
    imin      R20, R11, R18
    imax      R21, R11, R18
    imin      R22, R19, R14
    imax      R23, R19, R14
    imax      R24, R21, R15
    imin      R25, R22, R17
    st.shared [R1], R20
    st.shared [R1+4], R24
    st.shared [R1+8], R25
    st.shared [R1+12], R23
    iadd      R3, R3, #128
    isub      R16, R16, #1
    setgt     R26, R16, #0
    @R26 bra  net
done:
    exit
)";

constexpr std::string_view kBackprop = R"(.kernel backprop
entry:
    shl       R1, R0, #2
    ld.param  R2, [R63]
    iadd      R3, R2, R1
    mov       R4, #24
neuron:
    ld.global R5, [R3]
    ld.shared R6, [R1]
    fmul      R7, R5, R6
    ex2       R8, R7
    fadd      R9, R8, #1065353216
    rcp       R10, R9
    fmul      R11, R10, R10
    fsub      R12, R10, R11
    fmul      R13, R12, R5
    st.shared [R1], R13
    iadd      R3, R3, #128
    isub      R4, R4, #1
    setgt     R14, R4, #0
    @R14 bra  neuron
out:
    exit
)";

constexpr std::string_view kFastWalsh = R"(.kernel fastwalshtransform
entry:
    shl       R1, R0, #2
    mov       R2, #5
    mov       R3, #1
fwt:
    shl       R4, R3, #2
    iadd      R5, R1, R4
    ld.shared R6, [R1]
    ld.shared R7, [R5]
    fadd      R8, R6, R7
    fsub      R9, R6, R7
    fmul      R8, R8, #1060439283
    fmul      R9, R9, #1060439283
    st.shared [R1], R8
    st.shared [R5], R9
    ld.shared R10, [R1+64]
    ld.shared R11, [R5+64]
    fadd      R12, R10, R11
    fsub      R13, R10, R11
    fmul      R12, R12, #1060439283
    fmul      R13, R13, #1060439283
    st.shared [R1+64], R12
    st.shared [R5+64], R13
    bar
    shl       R3, R3, #1
    isub      R2, R2, #1
    setgt     R14, R2, #0
    @R14 bra  fwt
done:
    ld.param  R15, [R63]
    iadd      R16, R15, R1
    ld.shared R17, [R1]
    st.global [R16], R17
    exit
)";


constexpr std::string_view kNbody = R"(.kernel nbody
entry:
    shl       R1, R0, #2
    ld.param  R2, [R63]
    iadd      R3, R2, R1
    ld.global R4, [R3]
    ld.global R5, [R3+4]
    ld.global R6, [R3+8]
    mov       R7, #0
    mov       R8, #0
    mov       R9, #0
    mov       R10, #24
body:
    ld.shared R11, [R1]
    ld.shared R12, [R1+4]
    ld.shared R13, [R1+8]
    fsub      R14, R11, R4
    fsub      R15, R12, R5
    fsub      R16, R13, R6
    fmul      R17, R14, R14
    ffma      R17, R15, R15, R17
    ffma      R17, R16, R16, R17
    fadd      R17, R17, #953267991
    rsqrt     R18, R17
    fmul      R19, R18, R18
    fmul      R20, R19, R18
    ffma      R7, R14, R20, R7
    ffma      R8, R15, R20, R8
    ffma      R9, R16, R20, R9
    iadd      R1, R1, #12
    isub      R10, R10, #1
    setgt     R21, R10, #0
    @R21 bra  body
writeback:
    st.global [R3], R7
    st.global [R3+4], R8
    st.global [R3+8], R9
    exit
)";

constexpr std::string_view kMergeSort = R"(.kernel mergesort
entry:
    shl       R1, R0, #2
    ld.param  R2, [R63]
    iadd      R3, R2, R1
    ld.param  R4, [R63+4]
    iadd      R5, R4, R1
    mov       R6, #24
    mov       R14, #0
step:
    ld.global R7, [R3]
    ld.global R8, [R5]
    setlt     R9, R7, R8
    @R9 bra   takeleft
takeright:
    imin      R10, R8, R7
    iadd      R11, R14, R10
    shr       R12, R11, #1
    st.shared [R1], R12
    iadd      R5, R5, #4
    iadd      R14, R14, #1
    bra       next
takeleft:
    imin      R10, R7, R8
    iadd      R11, R14, R10
    shr       R12, R11, #1
    st.shared [R1], R12
    iadd      R3, R3, #4
    iadd      R14, R14, #2
next:
    and       R13, R14, #1023
    iadd      R1, R1, #4
    isub      R6, R6, #1
    setgt     R15, R6, #0
    @R15 bra  step
done:
    st.global [R3], R13
    exit
)";

constexpr std::string_view kDct8x8 = R"(.kernel dct8x8
entry:
    shl       R1, R0, #2
    mov       R2, #12
rowloop:
    ld.shared R3, [R1]
    ld.shared R4, [R1+4]
    ld.shared R5, [R1+8]
    ld.shared R6, [R1+12]
    ld.shared R7, [R1+16]
    ld.shared R8, [R1+20]
    ld.shared R9, [R1+24]
    ld.shared R10, [R1+28]
    fadd      R11, R3, R10
    fsub      R12, R3, R10
    fadd      R13, R4, R9
    fsub      R14, R4, R9
    fadd      R15, R5, R8
    fsub      R16, R5, R8
    fadd      R17, R6, R7
    fsub      R18, R6, R7
    fadd      R19, R11, R17
    fsub      R20, R11, R17
    fadd      R21, R13, R15
    fsub      R22, R13, R15
    fadd      R23, R19, R21
    fsub      R24, R19, R21
    fmul      R25, R12, #1064076126
    ffma      R25, R18, #1051260355, R25
    fmul      R26, R14, #1060439283
    ffma      R26, R16, #1053028117, R26
    fmul      R27, R20, #1064076126
    ffma      R27, R22, #1051260355, R27
    st.shared [R1], R23
    st.shared [R1+4], R25
    st.shared [R1+8], R26
    st.shared [R1+12], R24
    st.shared [R1+16], R27
    iadd      R1, R1, #32
    isub      R2, R2, #1
    setgt     R28, R2, #0
    @R28 bra  rowloop
out:
    ld.param  R29, [R63]
    shl       R30, R0, #2
    iadd      R31, R29, R30
    ld.shared R32, [R30]
    st.global [R31], R32
    exit
)";

constexpr std::string_view kSobelFilter = R"(.kernel sobelfilter
entry:
    shl       R1, R0, #2
    ld.param  R2, [R63]
    iadd      R3, R2, R1
    mov       R4, #20
pix:
    ld.shared R5, [R1]
    ld.shared R6, [R1+4]
    ld.shared R7, [R1+8]
    ld.shared R8, [R1+128]
    ld.shared R9, [R1+136]
    ld.shared R10, [R1+256]
    ld.shared R11, [R1+260]
    ld.shared R12, [R1+264]
    fsub      R13, R7, R5
    fsub      R14, R12, R10
    fadd      R15, R13, R14
    fsub      R16, R9, R8
    ffma      R15, R16, #1073741824, R15
    fsub      R17, R10, R5
    fsub      R18, R12, R7
    fadd      R19, R17, R18
    fsub      R20, R11, R6
    ffma      R19, R20, #1073741824, R19
    fmul      R21, R15, R15
    ffma      R21, R19, R19, R21
    sqrt      R22, R21
    st.global [R3], R22
    iadd      R3, R3, #128
    iadd      R1, R1, #4
    isub      R4, R4, #1
    setgt     R23, R4, #0
    @R23 bra  pix
done:
    exit
)";

constexpr std::string_view kBinomialOptions = R"(.kernel binomialoptions
entry:
    shl       R1, R0, #2
    ld.param  R2, [R63]
    iadd      R3, R2, R1
    ld.global R4, [R3]
    mov       R5, #32
fold:
    ld.shared R6, [R1]
    ld.shared R7, [R1+4]
    fmul      R8, R6, #1056964608
    ffma      R8, R7, #1056964608, R8
    fmul      R9, R8, #1064514355
    fmax      R10, R9, R4
    st.shared [R1], R10
    isub      R5, R5, #1
    setgt     R11, R5, #0
    @R11 bra  fold
done:
    ld.shared R12, [R1]
    st.global [R3], R12
    exit
)";

constexpr std::string_view kBoxFilter = R"(.kernel boxfilter
entry:
    shl       R1, R0, #2
    ld.param  R2, [R63]
    iadd      R3, R2, R1
    mov       R4, #0
    mov       R5, #20
row:
    ld.global R6, [R3]
    ld.global R7, [R3+4]
    ld.global R8, [R3+8]
    ld.global R9, [R3+12]
    fadd      R10, R6, R7
    fadd      R11, R8, R9
    fadd      R12, R10, R11
    fmul      R13, R12, #1048576000
    fadd      R4, R4, R13
    st.shared [R1], R13
    iadd      R3, R3, #128
    isub      R5, R5, #1
    setgt     R14, R5, #0
    @R14 bra  row
done:
    ld.param  R15, [R63+4]
    iadd      R16, R15, R1
    st.global [R16], R4
    exit
)";

constexpr std::string_view kConvTexture = R"(.kernel convolutiontexture
entry:
    shl       R1, R0, #2
    mov       R2, #20
tap:
    tex       R3, [R1]
    tex       R4, [R1+4]
    tex       R5, [R1+8]
    fmul      R6, R3, #1050253722
    ffma      R6, R4, #1063675494, R6
    ffma      R6, R5, #1050253722, R6
    ld.param  R7, [R63]
    iadd      R8, R7, R1
    st.global [R8], R6
    iadd      R1, R1, #64
    isub      R2, R2, #1
    setgt     R9, R2, #0
    @R9 bra   tap
done:
    exit
)";

constexpr std::string_view kVolumeRender = R"(.kernel volumerender
entry:
    shl       R1, R0, #2
    mov       R2, #0
    mov       R3, #1065353216
    mov       R4, #28
ray:
    tex       R5, [R1]
    fmul      R6, R5, #1048576000
    fmul      R7, R6, R3
    fadd      R2, R2, R7
    fsub      R8, #1065353216, R6
    fmul      R3, R3, R8
    setlt     R9, R3, #1008981770
    @R9 bra   opaque
advance:
    iadd      R1, R1, #16
    isub      R4, R4, #1
    setgt     R10, R4, #0
    @R10 bra  ray
opaque:
    ld.param  R11, [R63]
    shl       R12, R0, #2
    iadd      R13, R11, R12
    st.global [R13], R2
    exit
)";

constexpr std::string_view kCp = R"(.kernel cp
entry:
    shl       R1, R0, #2
    ld.param  R2, [R63]
    iadd      R3, R2, R1
    ld.global R4, [R3]
    ld.global R5, [R3+4]
    mov       R6, #0
    mov       R7, #28
atom:
    ld.shared R8, [R1]
    ld.shared R9, [R1+4]
    ld.shared R10, [R1+8]
    fsub      R11, R8, R4
    fsub      R12, R9, R5
    fmul      R13, R11, R11
    ffma      R13, R12, R12, R13
    fadd      R13, R13, #953267991
    rsqrt     R14, R13
    fmul      R15, R10, R14
    fadd      R6, R6, R15
    iadd      R1, R1, #12
    isub      R7, R7, #1
    setgt     R16, R7, #0
    @R16 bra  atom
done:
    st.global [R3], R6
    exit
)";

constexpr std::string_view kSad = R"(.kernel sad
entry:
    shl       R1, R0, #2
    ld.param  R2, [R63]
    iadd      R3, R2, R1
    ld.param  R4, [R63+4]
    iadd      R5, R4, R1
    mov       R6, #0
    mov       R7, #24
blockrow:
    ld.global R8, [R3]
    ld.global R9, [R5]
    ld.global R10, [R3+4]
    ld.global R11, [R5+4]
    isub      R12, R8, R9
    imax      R13, R12, #0
    isub      R14, R9, R8
    imax      R15, R14, #0
    iadd      R16, R13, R15
    isub      R17, R10, R11
    imax      R18, R17, #0
    isub      R19, R11, R10
    imax      R20, R19, #0
    iadd      R21, R18, R20
    iadd      R6, R6, R16
    iadd      R6, R6, R21
    iadd      R3, R3, #128
    iadd      R5, R5, #128
    isub      R7, R7, #1
    setgt     R22, R7, #0
    @R22 bra  blockrow
done:
    st.global [R3], R6
    exit
)";

constexpr std::string_view kLu = R"(.kernel lu
entry:
    shl       R1, R0, #2
    mov       R2, #16
elim:
    ld.shared R3, [R1]
    ld.shared R4, [R1+4]
    ld.shared R5, [R1+128]
    setne     R6, R3, #0
    @R6 bra   divide
skip:
    st.shared [R1+128], R5
    bra       next
divide:
    rcp       R7, R3
    fmul      R8, R5, R7
    ffma      R9, R8, R4, R5
    st.shared [R1+128], R9
next:
    iadd      R1, R1, #4
    isub      R2, R2, #1
    setgt     R10, R2, #0
    @R10 bra  elim
done:
    ld.param  R11, [R63]
    shl       R12, R0, #2
    iadd      R13, R11, R12
    ld.shared R14, [R12]
    st.global [R13], R14
    exit
)";

constexpr std::string_view kHwt = R"(.kernel hwt
entry:
    shl       R1, R0, #2
    ld.param  R2, [R63]
    iadd      R3, R2, R1
    mov       R4, #20
wave:
    ld.global R5, [R3]
    ld.global R6, [R3+4]
    fadd      R7, R5, R6
    fsub      R8, R5, R6
    fmul      R7, R7, #1060439283
    fmul      R8, R8, #1060439283
    st.shared [R1], R7
    st.shared [R1+1024], R8
    iadd      R3, R3, #8
    isub      R4, R4, #1
    setgt     R9, R4, #0
    @R9 bra   wave
done:
    ld.shared R10, [R1]
    st.global [R3], R10
    exit
)";


constexpr std::string_view kDxtc = R"(.kernel dxtc
entry:
    shl       R1, R0, #2
    ld.param  R2, [R63]
    iadd      R3, R2, R1
    mov       R4, #16
block:
    ld.global R5, [R3]
    ld.global R6, [R3+4]
    ld.global R7, [R3+8]
    ld.global R8, [R3+12]
    imin      R9, R5, R6
    imax      R10, R5, R6
    imin      R11, R7, R8
    imax      R12, R7, R8
    imin      R13, R9, R11
    imax      R14, R10, R12
    isub      R15, R14, R13
    shr       R16, R15, #3
    iadd      R17, R13, R16
    and       R18, R17, #248
    shr       R19, R14, #2
    and       R20, R19, #252
    shl       R21, R18, #8
    or        R22, R21, R20
    st.shared [R1], R22
    iadd      R3, R3, #128
    isub      R4, R4, #1
    setgt     R23, R4, #0
    @R23 bra  block
done:
    exit
)";

constexpr std::string_view kEigenValues = R"(.kernel eigenvalues
entry:
    shl       R1, R0, #2
    ld.param  R2, [R63]
    iadd      R3, R2, R1
    ld.global R4, [R3]
    ld.global R5, [R3+4]
    mov       R6, #20
bisect:
    fadd      R7, R4, R5
    fmul      R8, R7, #1056964608
    ld.shared R9, [R1]
    fsub      R10, R9, R8
    fmul      R11, R10, R10
    setlt     R12, R11, #953267991
    @R12 bra  narrow
wide:
    setlt     R13, R9, R8
    @R13 bra  left
right:
    mov       R4, R8
    bra       next
left:
    mov       R5, R8
    bra       next
narrow:
    mov       R4, R8
    mov       R5, R8
next:
    isub      R6, R6, #1
    setgt     R14, R6, #0
    @R14 bra  bisect
done:
    st.global [R3], R8
    exit
)";

constexpr std::string_view kImageDenoising = R"(.kernel imagedenoising
entry:
    shl       R1, R0, #2
    ld.param  R2, [R63]
    iadd      R3, R2, R1
    mov       R4, #0
    mov       R5, #0
    mov       R6, #16
window:
    ld.global R7, [R3]
    ld.shared R8, [R1]
    fsub      R9, R7, R8
    fmul      R10, R9, R9
    fmul      R11, R10, #3204448256
    ex2       R12, R11
    ffma      R4, R12, R7, R4
    fadd      R5, R5, R12
    iadd      R3, R3, #4
    isub      R6, R6, #1
    setgt     R13, R6, #0
    @R13 bra  window
normalise:
    rcp       R14, R5
    fmul      R15, R4, R14
    ld.param  R16, [R63+4]
    iadd      R17, R16, R1
    st.global [R17], R15
    exit
)";

constexpr std::string_view kRecursiveGaussian = R"(.kernel recursivegaussian
entry:
    shl       R1, R0, #2
    ld.param  R2, [R63]
    iadd      R3, R2, R1
    mov       R4, #0
    mov       R5, #0
    mov       R6, #32
scanline:
    ld.global R7, [R3]
    fmul      R8, R7, #1048576000
    ffma      R8, R4, #1061997773, R8
    ffma      R8, R5, #3196059648, R8
    mov       R5, R4
    mov       R4, R8
    st.shared [R1], R8
    iadd      R3, R3, #128
    isub      R6, R6, #1
    setgt     R9, R6, #0
    @R9 bra   scanline
done:
    ld.param  R10, [R63+4]
    iadd      R11, R10, R1
    st.global [R11], R4
    exit
)";

constexpr std::string_view kSobolQrng = R"(.kernel sobolqrng
entry:
    shl       R1, R0, #2
    ld.param  R2, [R63]
    iadd      R3, R2, R1
    mov       R4, #0
    mov       R5, #1
    mov       R6, #32
dim:
    ld.global R7, [R3]
    and       R8, R5, R7
    setne     R9, R8, #0
    @R9 bra   flip
keep:
    bra       next
flip:
    shr       R10, R7, #1
    xor       R4, R4, R10
next:
    shl       R5, R5, #1
    xor       R11, R4, R5
    shr       R12, R11, #9
    xor       R13, R11, R12
    st.shared [R1], R13
    iadd      R3, R3, #4
    isub      R6, R6, #1
    setgt     R14, R6, #0
    @R14 bra  dim
done:
    st.global [R3], R4
    exit
)";

constexpr std::string_view kMriFhd = R"(.kernel mri-fhd
entry:
    shl       R1, R0, #2
    ld.param  R2, [R63]
    iadd      R3, R2, R1
    ld.global R4, [R3]
    ld.global R5, [R3+4]
    mov       R6, #0
    mov       R7, #0
    mov       R8, #24
sample:
    ld.shared R9, [R1]
    ld.shared R10, [R1+4]
    fmul      R11, R9, R4
    ffma      R11, R10, R5, R11
    fmul      R11, R11, #1078530011
    sin       R12, R11
    cos       R13, R11
    ld.shared R14, [R1+8]
    ffma      R6, R14, R13, R6
    ffma      R7, R14, R12, R7
    iadd      R1, R1, #12
    isub      R8, R8, #1
    setgt     R15, R8, #0
    @R15 bra  sample
writeback:
    st.global [R3], R6
    st.global [R3+4], R7
    exit
)";

constexpr std::string_view kMriQ = R"(.kernel mri-q
entry:
    shl       R1, R0, #2
    ld.param  R2, [R63]
    iadd      R3, R2, R1
    ld.global R4, [R3]
    mov       R5, #0
    mov       R6, #0
    mov       R7, #28
kpoint:
    ld.shared R8, [R1]
    ld.shared R9, [R1+4]
    fmul      R10, R8, R4
    fadd      R10, R10, R9
    fmul      R10, R10, #1078530011
    sin       R11, R10
    cos       R12, R10
    ld.shared R13, [R1+8]
    ffma      R5, R13, R12, R5
    ffma      R6, R13, R11, R6
    iadd      R1, R1, #12
    isub      R7, R7, #1
    setgt     R14, R7, #0
    @R14 bra  kpoint
writeback:
    st.global [R3], R5
    st.global [R3+4], R6
    exit
)";

constexpr std::string_view kRpes = R"(.kernel rpes
entry:
    shl       R1, R0, #2
    ld.param  R2, [R63]
    iadd      R3, R2, R1
    ld.global R4, [R3]
    ld.global R5, [R3+4]
    mov       R6, #0
    mov       R7, #8
outer:
    ld.global R8, [R3+8]
    mov       R9, #4
inner:
    ld.shared R10, [R1]
    ld.shared R11, [R1+4]
    fsub      R12, R10, R4
    fsub      R13, R11, R5
    fmul      R14, R12, R12
    ffma      R14, R13, R13, R14
    fadd      R14, R14, #953267991
    rsqrt     R15, R14
    fmul      R16, R15, R15
    fmul      R17, R16, R15
    ffma      R6, R8, R17, R6
    iadd      R1, R1, #8
    isub      R9, R9, #1
    setgt     R18, R9, #0
    @R18 bra  inner
after:
    iadd      R3, R3, #32
    isub      R7, R7, #1
    setgt     R19, R7, #0
    @R19 bra  outer
done:
    st.global [R3], R6
    exit
)";

const std::map<std::string_view, std::string_view> &
sources()
{
    static const std::map<std::string_view, std::string_view> m = {
        {"vectoradd", kVectorAdd},
        {"scalarprod", kScalarProd},
        {"reduction", kReduction},
        {"matrixmul", kMatrixMul},
        {"convolutionseparable", kConvSep},
        {"montecarlo", kMonteCarlo},
        {"histogram", kHistogram},
        {"bicubictexture", kBicubicTexture},
        {"mandelbrot", kMandelbrot},
        {"needle", kNeedle},
        {"hotspot", kHotspot},
        {"srad", kSrad},
        {"dwthaar1d", kDwtHaar},
        {"sortingnetworks", kSortingNetworks},
        {"backprop", kBackprop},
        {"fastwalshtransform", kFastWalsh},
        {"nbody", kNbody},
        {"mergesort", kMergeSort},
        {"dct8x8", kDct8x8},
        {"sobelfilter", kSobelFilter},
        {"binomialoptions", kBinomialOptions},
        {"boxfilter", kBoxFilter},
        {"convolutiontexture", kConvTexture},
        {"volumerender", kVolumeRender},
        {"cp", kCp},
        {"sad", kSad},
        {"lu", kLu},
        {"hwt", kHwt},
        {"dxtc", kDxtc},
        {"eigenvalues", kEigenValues},
        {"imagedenoising", kImageDenoising},
        {"recursivegaussian", kRecursiveGaussian},
        {"sobolqrng", kSobolQrng},
        {"mri-fhd", kMriFhd},
        {"mri-q", kMriQ},
        {"rpes", kRpes},
    };
    return m;
}

} // namespace

std::vector<std::string_view>
handwrittenKernelNames()
{
    std::vector<std::string_view> names;
    for (const auto &[name, src] : sources()) {
        (void)src;
        names.push_back(name);
    }
    return names;
}

Kernel
buildHandwrittenKernel(std::string_view name)
{
    auto it = sources().find(name);
    if (it == sources().end()) {
        std::fprintf(stderr, "rfh: unknown hand-written kernel '%.*s'\n",
                     static_cast<int>(name.size()), name.data());
        std::abort();
    }
    return parseKernelOrDie(it->second);
}

} // namespace rfh
