#include "sim/access_counters.h"

namespace rfh {

double
AccessCounts::accessEnergyPJ(const EnergyModel &em, Level level) const
{
    int l = static_cast<int>(level);
    double e = 0.0;
    for (int d = 0; d < 2; d++) {
        e += reads[l][d] * em.accessEnergy(level, false);
        e += writes[l][d] * em.accessEnergy(level, true);
    }
    return e;
}

double
AccessCounts::wireEnergyPJ(const EnergyModel &em, Level level) const
{
    int l = static_cast<int>(level);
    double e = 0.0;
    for (int d = 0; d < 2; d++) {
        Datapath dp = static_cast<Datapath>(d);
        if (reads[l][d] == 0 && writes[l][d] == 0)
            continue;  // avoid querying impossible paths (LRF+shared)
        e += reads[l][d] * em.wireEnergy(level, dp);
        e += writes[l][d] * em.wireEnergy(level, dp);
    }
    return e;
}

double
AccessCounts::totalEnergyPJ(const EnergyModel &em) const
{
    double e = 0.0;
    for (Level l : {Level::MRF, Level::ORF, Level::LRF})
        e += accessEnergyPJ(em, l) + wireEnergyPJ(em, l);
    return e;
}

} // namespace rfh
