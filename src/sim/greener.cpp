#include "sim/greener.h"

#include <algorithm>

namespace rfh {

int
greenerActiveBanks(const Kernel &k)
{
    const int regsPerBank = kMaxRegs / kGreenerBanks;
    const int banks = (k.numRegs() + regsPerBank - 1) / regsPerBank;
    return std::clamp(banks, 1, kGreenerBanks);
}

double
greenerEnergyPJ(const AccessCounts &c, const EnergyModel &em,
                int activeBanks)
{
    const double fraction =
        static_cast<double>(std::clamp(activeBanks, 1, kGreenerBanks)) /
        static_cast<double>(kGreenerBanks);
    const double mrfArray = c.accessEnergyPJ(em, Level::MRF);
    return c.totalEnergyPJ(em) - (1.0 - fraction) * mrfArray;
}

} // namespace rfh
