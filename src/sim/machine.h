/**
 * @file
 * Functional execution machine for RPTX kernels.
 *
 * Executes kernels with real 32-bit values so that the register-file
 * simulators can verify data correctness: a hierarchical execution
 * (values flowing through LRF/ORF with strand flushes) must produce
 * bit-identical register state to a plain MRF-only execution.
 *
 * Each warp is modelled scalarly (one representative thread); memory
 * returns deterministic hashed values so loads are reproducible, and
 * stores are remembered so load-after-store round-trips work.
 */

#ifndef RFH_SIM_MACHINE_H
#define RFH_SIM_MACHINE_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "ir/kernel.h"

namespace rfh {

/** Deterministic sparse memory: hashed contents, stores remembered. */
class Memory
{
  public:
    explicit Memory(std::uint32_t seed = 0) : seed_(seed)
    {
        // An open-addressing flat table (linear probing, power-of-two
        // capacity) keyed by address: the load/store path is hot in
        // the direct oracle and a node-based map's pointer chase and
        // per-store allocation dominated it. Sized for a typical
        // warp's store footprint up front.
        rehash(512);
    }

    std::uint32_t load(std::uint32_t addr) const;
    void store(std::uint32_t addr, std::uint32_t value);

  private:
    /** Slot holding @p addr, or the first free probe slot. */
    std::size_t probe(std::uint32_t addr) const;
    /** Grow to @p capacity (a power of two) and reinsert. */
    void rehash(std::size_t capacity);

    std::uint32_t seed_;
    std::vector<std::uint32_t> keys_;
    std::vector<std::uint32_t> vals_;
    std::vector<std::uint8_t> used_;
    std::size_t size_ = 0;
    std::size_t mask_ = 0;
};

/** Architectural state of one warp. */
struct WarpContext
{
    std::array<std::uint32_t, kMaxRegs> regs{};
    int block = 0;   ///< Current basic block.
    int idx = 0;     ///< Next instruction within the block.
    bool done = false;
    Memory memory;

    /** Initialise registers deterministically from a warp id. */
    void reset(std::uint32_t warp_id);

    /** Linear index of the next instruction. */
    int
    pc(const Kernel &k) const
    {
        return k.blockStart(block) + idx;
    }
};

/** Result of executing one instruction. */
struct StepInfo
{
    int lin = -1;                ///< Linear index executed.
    bool branchTaken = false;
    std::uint32_t result = 0;    ///< Destination value (low half).
    std::uint32_t resultHi = 0;  ///< High half for wide results.
};

/**
 * Compute the result of @p instr given operand values. Exposed
 * separately so executors that fetch operands from different levels
 * can share the semantics.
 *
 * @param ops operand values in slot order.
 * @param lo low 32 bits of the result.
 * @param hi high 32 bits (wide results only).
 */
void evaluate(const Instruction &instr, const std::array<std::uint32_t,
              kMaxSrcs> &ops, Memory &mem, std::uint32_t &lo,
              std::uint32_t &hi);

/**
 * Execute the next instruction of @p warp on @p k with all operands
 * read from / written to the architectural register file. Advances
 * control flow and sets @c warp.done on EXIT.
 */
StepInfo step(const Kernel &k, WarpContext &warp);

/** Mixing hash used for memory contents and register seeding. */
std::uint32_t hashU32(std::uint32_t x);

} // namespace rfh

#endif // RFH_SIM_MACHINE_H
