/**
 * @file
 * Ready/valid port connecting two pipeline stages.
 *
 * A Port is a FIFO with explicit backpressure: the producer asks
 * canPush() before push() (ready), the consumer asks empty() before
 * front()/pop() (valid). A bounded port models a physical skid buffer
 * between stages — a full port stalls the producer; an unbounded port
 * (capacity 0) models a structure whose occupancy is limited elsewhere,
 * such as the in-flight completion queue whose depth the issue stage
 * already bounds.
 *
 * Every element pushed is popped exactly once: the port never drops,
 * duplicates, or reorders. The pushed()/popped() lifetime counters
 * expose that conservation law to the property tests —
 * pushed() == popped() + size() holds at every point in time.
 */

#ifndef RFH_SIM_PORT_H
#define RFH_SIM_PORT_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rfh {

/** Bounded (or unbounded when capacity 0) stage-to-stage FIFO. */
template <typename T>
class Port
{
  public:
    /**
     * @param capacity maximum occupancy; 0 means unbounded (the ring
     *        grows on demand and canPush() is always true).
     */
    explicit Port(std::size_t capacity = 0)
        : cap_(capacity), buf_(capacity ? capacity : 4)
    {
    }

    /** True when a push() would be accepted this cycle. */
    bool
    canPush() const
    {
        return cap_ == 0 || count_ < cap_;
    }

    /**
     * Enqueue @p v. @return false (dropping nothing — the value is
     * not consumed) when the port is full; producers must treat a
     * refused push as a stall, not a loss.
     */
    bool
    push(T v)
    {
        if (!canPush())
            return false;
        if (count_ == buf_.size())
            grow();
        buf_[(head_ + count_) % buf_.size()] = std::move(v);
        count_++;
        pushed_++;
        return true;
    }

    /** True when no element is waiting. */
    bool
    empty() const
    {
        return count_ == 0;
    }

    /** Current occupancy. */
    std::size_t
    size() const
    {
        return count_;
    }

    /** Oldest element; undefined when empty(). */
    const T &
    front() const
    {
        return buf_[head_];
    }

    /** Oldest element; undefined when empty(). */
    T &
    front()
    {
        return buf_[head_];
    }

    /** Dequeue the oldest element; undefined when empty(). */
    void
    pop()
    {
        head_ = (head_ + 1) % buf_.size();
        count_--;
        popped_++;
    }

    /** Lifetime count of accepted push() calls. */
    std::uint64_t
    pushed() const
    {
        return pushed_;
    }

    /** Lifetime count of pop() calls. */
    std::uint64_t
    popped() const
    {
        return popped_;
    }

  private:
    /** Double the ring (unbounded ports only), preserving order. */
    void
    grow()
    {
        std::vector<T> bigger(buf_.size() * 2);
        for (std::size_t i = 0; i < count_; i++)
            bigger[i] = std::move(buf_[(head_ + i) % buf_.size()]);
        buf_ = std::move(bigger);
        head_ = 0;
    }

    std::size_t cap_;
    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::uint64_t pushed_ = 0;
    std::uint64_t popped_ = 0;
};

} // namespace rfh

#endif // RFH_SIM_PORT_H
