#include "sim/hw_cache.h"

#include <optional>
#include <vector>

#include "core/metrics.h"
#include "ir/liveness.h"
#include "ir/reaching_defs.h"
#include "sim/machine.h"
#include "sim/trace.h"

namespace rfh {

namespace {

/**
 * Per-warp RFC state: a register bitset for O(1) membership tests on
 * the read path plus a ring buffer preserving FIFO insertion order
 * for eviction. Both executors probe this on every operand, so the
 * membership test must not scan.
 */
class Rfc
{
  public:
    explicit Rfc(int entries)
        : entries_(entries),
          fifo_(static_cast<std::size_t>(entries > 0 ? entries : 1))
    {
    }

    /** @return true if @p r is cached. */
    bool
    contains(Reg r) const
    {
        return present_.test(r);
    }

    /**
     * Insert @p r (overwriting in place on a hit). When the cache is
     * full, the FIFO victim register is returned through @p evicted.
     *
     * @return true if a valid entry was evicted.
     */
    bool
    insert(Reg r, Reg &evicted)
    {
        if (entries_ <= 0 || present_.test(r))
            return false;
        present_.set(r);
        if (size_ < entries_) {
            fifo_[wrap(head_ + size_)] = r;
            size_++;
            return false;
        }
        evicted = fifo_[head_];
        present_.reset(evicted);
        fifo_[head_] = r;
        head_ = wrap(head_ + 1);
        return true;
    }

    void
    erase(Reg r)
    {
        if (!present_.test(r))
            return;
        present_.reset(r);
        // Compact the ring in place; survivors keep FIFO order (the
        // write slot always trails the read slot).
        int kept = 0;
        for (int i = 0; i < size_; i++) {
            Reg v = fifo_[wrap(head_ + i)];
            if (v != r)
                fifo_[wrap(head_ + kept++)] = v;
        }
        size_ = kept;
    }

    /** Visit the cached registers in FIFO order. */
    template <typename F>
    void
    forEach(F f) const
    {
        for (int i = 0; i < size_; i++)
            f(fifo_[wrap(head_ + i)]);
    }

    void
    clear()
    {
        present_.reset();
        head_ = 0;
        size_ = 0;
    }

  private:
    int
    wrap(int i) const
    {
        return i >= entries_ ? i - entries_ : i;
    }

    int entries_;
    RegSet present_;
    std::vector<Reg> fifo_;
    int head_ = 0;
    int size_ = 0;
};

/**
 * Hierarchy state + access accounting of one warp under the hardware
 * cache. The direct executor drives it from the functional machine;
 * the replay executor drives it from a pre-decoded trace. Both feed
 * the same onInstr(), so their counts are identical by construction:
 * everything value-dependent is folded into the @c enabled and
 * @c branchTaken inputs.
 */
class HwWarpSim
{
  public:
    HwWarpSim(const ReplayDecode &dec, const HwCacheConfig &cfg,
              const Liveness &liveness,
              const std::vector<bool> &shared_consumer,
              AccessCounts &counts)
        : dec_(dec), cfg_(cfg), liveness_(liveness),
          shared_consumer_(shared_consumer), counts_(counts),
          rfc_(cfg.rfcEntries)
    {
    }

    /** Reset the hierarchy for a fresh warp. */
    void
    beginWarp()
    {
        rfc_.clear();
        lrf_valid_ = false;
        lrf_reg_ = 0;
        pending_.reset();
    }

    /**
     * Account one dynamic instruction. @p enabled is the predicate
     * outcome at issue; @p branch_taken whether a BRA was taken.
     */
    void
    onInstr(int lin, bool enabled, bool branch_taken)
    {
        const Instruction &in = dec_.instr[lin];
        Datapath dp = static_cast<Datapath>(dec_.datapath[lin]);
        bool shared = dec_.shared[lin] != 0;

        // Two-level scheduler: deschedule on a dependence on an
        // outstanding long-latency operation (reads, writes, or
        // overwrites of its destination).
        if ((dec_.touched[lin] & pending_).any()) {
            // Liveness immediately before this instruction.
            RegSet live_before =
                (liveness_.liveAfter(lin) & ~dec_.defined[lin]) |
                usedRegs(in);
            flushAll(live_before);
            pending_.reset();
            counts_.deschedules++;
        }

        // Operand reads: LRF (private only) -> RFC -> MRF.
        auto read_one = [&](Reg r) {
            if (cfg_.useLRF && !shared && lrf_valid_ && lrf_reg_ == r) {
                counts_.read(Level::LRF, dp);
            } else if (rfc_.contains(r)) {
                counts_.read(Level::ORF, dp);
            } else {
                counts_.read(Level::MRF, dp);
            }
        };
        for (int s = 0; s < in.numSrcs; s++)
            if (in.srcs[s].isReg)
                read_one(in.srcs[s].reg);
        if (in.pred)
            read_one(*in.pred);

        // Result write (suppressed when predicated off).
        if (in.dst && enabled) {
            int halves = in.wide ? 2 : 1;
            if (in.longLatency()) {
                // Long-latency results bypass the hierarchy.
                counts_.write(Level::MRF, dp, halves);
                // Their destination must not linger in the caches.
                for (int h = 0; h < halves; h++) {
                    Reg r = static_cast<Reg>(*in.dst + h);
                    rfc_.erase(r);
                    if (lrf_valid_ && lrf_reg_ == r)
                        lrf_valid_ = false;
                }
                pending_ |= dec_.defined[lin];
            } else if (cfg_.useLRF && !in.wide &&
                       in.unit() == UnitClass::ALU &&
                       !shared_consumer_[lin]) {
                // Private result consumed privately: goes to LRF.
                if (lrf_valid_ && lrf_reg_ != *in.dst)
                    spillLrfToRfc(lin);
                rfc_.erase(*in.dst);  // keep a single location
                lrf_valid_ = true;
                lrf_reg_ = *in.dst;
                counts_.write(Level::LRF, dp);
            } else {
                for (int h = 0; h < halves; h++) {
                    Reg r = static_cast<Reg>(*in.dst + h);
                    if (cfg_.useLRF && lrf_valid_ && lrf_reg_ == r)
                        lrf_valid_ = false;  // overwritten
                    Reg victim = 0;
                    if (rfc_.insert(r, victim)) {
                        if (liveness_.liveAfter(lin, victim)) {
                            counts_.read(Level::ORF, dp);
                            counts_.wbReads++;
                            counts_.write(Level::MRF, dp);
                            counts_.wbWrites++;
                        }
                    }
                    counts_.write(Level::ORF, dp);
                }
            }
        }

        counts_.instructions++;

        // Backward branch taken: optional flush variant.
        if (cfg_.flushOnBackwardBranch && branch_taken &&
            dec_.backwardBranch[lin])
            flushAll(liveness_.liveAfter(lin));
    }

  private:
    /** Spill the LRF occupant into the RFC (LRF eviction path). */
    void
    spillLrfToRfc(int lin)
    {
        if (!lrf_valid_)
            return;
        if (liveness_.liveAfter(lin, lrf_reg_)) {
            counts_.read(Level::LRF, Datapath::PRIVATE);
            counts_.wbReads++;
            Reg victim = 0;
            if (rfc_.insert(lrf_reg_, victim)) {
                if (liveness_.liveAfter(lin, victim)) {
                    counts_.read(Level::ORF, Datapath::PRIVATE);
                    counts_.wbReads++;
                    counts_.write(Level::MRF, Datapath::PRIVATE);
                    counts_.wbWrites++;
                }
            }
            counts_.write(Level::ORF, Datapath::PRIVATE);
        }
        lrf_valid_ = false;
    }

    /** Flush everything live back to the MRF (deschedule). */
    void
    flushAll(const RegSet &live)
    {
        if (lrf_valid_ && live.test(lrf_reg_)) {
            counts_.read(Level::LRF, Datapath::PRIVATE);
            counts_.wbReads++;
            counts_.write(Level::MRF, Datapath::PRIVATE);
            counts_.wbWrites++;
        }
        lrf_valid_ = false;
        rfc_.forEach([&](Reg r) {
            if (live.test(r)) {
                counts_.read(Level::ORF, Datapath::PRIVATE);
                counts_.wbReads++;
                counts_.write(Level::MRF, Datapath::PRIVATE);
                counts_.wbWrites++;
            }
        });
        rfc_.clear();
    }

    const ReplayDecode &dec_;
    const HwCacheConfig &cfg_;
    const Liveness &liveness_;
    const std::vector<bool> &shared_consumer_;
    AccessCounts &counts_;
    Rfc rfc_;
    bool lrf_valid_ = false;
    Reg lrf_reg_ = 0;
    RegSet pending_;
};

/**
 * Static per-instruction flag: does any consumer of this result run
 * on the shared datapath? Such values bypass the hardware LRF
 * (Section 6.2: the compiler guarantees shared-unit operands are
 * available in the RFC or MRF).
 */
std::vector<bool>
sharedConsumers(const Kernel &k, const ReachingDefs &rdefs)
{
    std::vector<bool> shared_consumer(k.numInstrs(), false);
    for (int lin = 0; lin < k.numInstrs(); lin++) {
        for (DefId d : rdefs.defsAt(lin)) {
            for (const UseSite &u : rdefs.uses(d)) {
                if (u.slot == kPredSlot)
                    continue;
                if (isSharedUnit(k.instr(u.lin).unit()))
                    shared_consumer[lin] = true;
            }
        }
    }
    return shared_consumer;
}

} // namespace

namespace {

/** Hardware-scheme observability, fed by both execution drivers. */
void
noteHwRun(const AccessCounts &counts, bool replay)
{
    static Counter &runs = globalMetrics().counter("sim.hw.runs");
    static Counter &replays =
        globalMetrics().counter("sim.hw.runs.replay");
    static Counter &instrs = globalMetrics().counter("sim.hw.instrs");
    runs.add();
    if (replay)
        replays.add();
    instrs.add(counts.instructions);
}

} // namespace

AccessCounts
runHwCache(const Kernel &k, const HwCacheConfig &cfg,
           const AnalysisBundle *analyses)
{
    // The analyses are structure-only, so a shared precomputed bundle
    // is equivalent to computing them here.
    std::optional<AnalysisBundle> local;
    if (!analyses)
        analyses = &local.emplace(k);
    std::vector<bool> shared_consumer =
        sharedConsumers(k, analyses->reachingDefs);
    ReplayDecode dec(k);

    AccessCounts counts;
    HwWarpSim sim(dec, cfg, analyses->liveness, shared_consumer, counts);
    for (int w = 0; w < cfg.run.numWarps; w++) {
        WarpContext warp;
        warp.reset(static_cast<std::uint32_t>(w));
        sim.beginWarp();
        std::uint64_t executed = 0;
        while (!warp.done && executed < cfg.run.maxInstrsPerWarp) {
            int lin = warp.pc(k);
            const Instruction &in = k.instr(lin);
            bool enabled = !in.pred || warp.regs[*in.pred] != 0;
            StepInfo si = step(k, warp);
            executed++;
            sim.onInstr(lin, enabled, si.branchTaken);
        }
    }
    noteHwRun(counts, /*replay=*/false);
    return counts;
}

AccessCounts
replayHwCache(const Kernel &k, const HwCacheConfig &cfg,
              const DecodedTrace &trace, const AnalysisBundle *analyses)
{
    std::optional<AnalysisBundle> local;
    if (!analyses)
        analyses = &local.emplace(k);
    std::vector<bool> shared_consumer =
        sharedConsumers(k, analyses->reachingDefs);
    ReplayDecode dec(k);

    AccessCounts counts;
    HwWarpSim sim(dec, cfg, analyses->liveness, shared_consumer, counts);
    for (int w = 0; w < trace.numWarps(); w++) {
        sim.beginWarp();
        for (std::uint32_t t = trace.warpBegin[w];
             t < trace.warpBegin[w + 1]; t++) {
            int lin = trace.lin[t];
            std::uint8_t flags = trace.flags[t];
            sim.onInstr(lin, flags & kReplayExecuted,
                        flags & kReplayBranchTaken);
        }
    }
    noteHwRun(counts, /*replay=*/true);
    return counts;
}

} // namespace rfh
