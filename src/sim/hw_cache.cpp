#include "sim/hw_cache.h"

#include <optional>
#include <vector>

#include "core/metrics.h"
#include "ir/liveness.h"
#include "ir/reaching_defs.h"
#include "sim/machine.h"
#include "sim/pipeline_account.h"
#include "sim/replay_arena.h"
#include "sim/rfc_ring.h"
#include "sim/trace.h"

namespace rfh {

namespace {

/** FIFO cache state (shared with the compiler-assisted RFC). */
using Rfc = RfcRing;

/**
 * Hierarchy state + access accounting of one warp under the hardware
 * cache. The direct executor drives it from the functional machine;
 * the replay executor drives it from a pre-decoded trace. Both feed
 * the same onInstr(), so their counts are identical by construction:
 * everything value-dependent is folded into the @c enabled and
 * @c branchTaken inputs.
 *
 * The inner loop reads only the compact ReplayOp records and the
 * derived register sets of the decode — never the Instruction
 * snapshots — so a decode shared across annotated copies is safe.
 * The decode must carry shared-consumer info (kOpLrfAble).
 */
class HwWarpSim
{
  public:
    HwWarpSim(const ReplayDecode &dec, const HwCacheConfig &cfg,
              const Liveness &liveness, AccessCounts &counts,
              ReplayArena &arena)
        : dec_(dec), cfg_(cfg), liveness_(liveness), counts_(counts),
          rfc_(cfg.rfcEntries, arena)
    {
    }

    /** Reset the hierarchy for a fresh warp. */
    void
    beginWarp()
    {
        rfc_.clear();
        lrf_valid_ = false;
        lrf_reg_ = 0;
        pending_.reset();
    }

    /**
     * Account one dynamic instruction. @p enabled is the predicate
     * outcome at issue; @p branch_taken whether a BRA was taken.
     */
    void
    onInstr(int lin, bool enabled, bool branch_taken)
    {
        const ReplayOp &o = dec_.op[lin];
        const Datapath dp = static_cast<Datapath>(o.dp);
        const bool shared = (o.flags & kOpShared) != 0;

        // Two-level scheduler: deschedule on a dependence on an
        // outstanding long-latency operation (reads, writes, or
        // overwrites of its destination).
        if ((dec_.touched[lin] & pending_).any()) {
            // Liveness immediately before this instruction.
            RegSet live_before =
                (liveness_.liveAfter(lin) & ~dec_.defined[lin]) |
                dec_.used[lin];
            flushAll(live_before);
            pending_.reset();
            counts_.deschedules++;
        }

        // Operand reads: LRF (private only) -> RFC -> MRF.
        auto read_one = [&](Reg r) {
            if (cfg_.useLRF && !shared && lrf_valid_ && lrf_reg_ == r) {
                counts_.read(Level::LRF, dp);
                if (plan_)
                    plan_->numBypass++;
            } else if (rfc_.contains(r)) {
                counts_.read(Level::ORF, dp);
                if (plan_)
                    plan_->numBypass++;
            } else {
                counts_.read(Level::MRF, dp);
                if (plan_)
                    plan_->mrfReg[plan_->numMrf++] = r;
            }
        };
        for (int s = 0; s < o.nsrc; s++)
            read_one(o.src[s]);
        if (o.pred >= 0)
            read_one(static_cast<Reg>(o.pred));

        // Result write (suppressed when predicated off).
        if (o.dst >= 0 && enabled) {
            const Reg dst = static_cast<Reg>(o.dst);
            const int halves = o.halves;
            if (o.flags & kOpLongLat) {
                // Long-latency results bypass the hierarchy.
                counts_.write(Level::MRF, dp, halves);
                // Their destination must not linger in the caches.
                for (int h = 0; h < halves; h++) {
                    Reg r = static_cast<Reg>(dst + h);
                    rfc_.erase(r);
                    if (lrf_valid_ && lrf_reg_ == r)
                        lrf_valid_ = false;
                }
                pending_ |= dec_.defined[lin];
            } else if (cfg_.useLRF && (o.flags & kOpLrfAble)) {
                // Private result consumed privately: goes to LRF.
                if (lrf_valid_ && lrf_reg_ != dst)
                    spillLrfToRfc(lin);
                rfc_.erase(dst);  // keep a single location
                lrf_valid_ = true;
                lrf_reg_ = dst;
                counts_.write(Level::LRF, dp);
            } else {
                for (int h = 0; h < halves; h++) {
                    Reg r = static_cast<Reg>(dst + h);
                    if (cfg_.useLRF && lrf_valid_ && lrf_reg_ == r)
                        lrf_valid_ = false;  // overwritten
                    Reg victim = 0;
                    if (rfc_.insert(r, victim)) {
                        if (liveness_.liveAfter(lin, victim)) {
                            counts_.read(Level::ORF, dp);
                            counts_.wbReads++;
                            counts_.write(Level::MRF, dp);
                            counts_.wbWrites++;
                        }
                    }
                    counts_.write(Level::ORF, dp);
                }
            }
        }

        counts_.instructions++;

        // Backward branch taken: optional flush variant.
        if (cfg_.flushOnBackwardBranch && branch_taken &&
            (o.flags & kOpBackward))
            flushAll(liveness_.liveAfter(lin));
    }

    /**
     * Capture the operand sourcing of subsequent onInstr() calls into
     * @p plan (MRF reads vs upper-level bypasses); null to stop.
     * Timing-only: the captured plan never feeds the counters.
     */
    void
    setPlan(OperandPlan *plan)
    {
        plan_ = plan;
    }

  private:
    /** Spill the LRF occupant into the RFC (LRF eviction path). */
    void
    spillLrfToRfc(int lin)
    {
        if (!lrf_valid_)
            return;
        if (liveness_.liveAfter(lin, lrf_reg_)) {
            counts_.read(Level::LRF, Datapath::PRIVATE);
            counts_.wbReads++;
            Reg victim = 0;
            if (rfc_.insert(lrf_reg_, victim)) {
                if (liveness_.liveAfter(lin, victim)) {
                    counts_.read(Level::ORF, Datapath::PRIVATE);
                    counts_.wbReads++;
                    counts_.write(Level::MRF, Datapath::PRIVATE);
                    counts_.wbWrites++;
                }
            }
            counts_.write(Level::ORF, Datapath::PRIVATE);
        }
        lrf_valid_ = false;
    }

    /** Flush everything live back to the MRF (deschedule). */
    void
    flushAll(const RegSet &live)
    {
        if (lrf_valid_ && live.test(lrf_reg_)) {
            counts_.read(Level::LRF, Datapath::PRIVATE);
            counts_.wbReads++;
            counts_.write(Level::MRF, Datapath::PRIVATE);
            counts_.wbWrites++;
        }
        lrf_valid_ = false;
        rfc_.forEach([&](Reg r) {
            if (live.test(r)) {
                counts_.read(Level::ORF, Datapath::PRIVATE);
                counts_.wbReads++;
                counts_.write(Level::MRF, Datapath::PRIVATE);
                counts_.wbWrites++;
            }
        });
        rfc_.clear();
    }

    const ReplayDecode &dec_;
    const HwCacheConfig &cfg_;
    const Liveness &liveness_;
    AccessCounts &counts_;
    Rfc rfc_;
    bool lrf_valid_ = false;
    Reg lrf_reg_ = 0;
    RegSet pending_;
    OperandPlan *plan_ = nullptr;
};

/** Pipeline adapter: one HwWarpSim driven at issue. */
class HwWarpAccountant final : public WarpAccountant
{
  public:
    HwWarpAccountant(const ReplayDecode &dec, const HwCacheConfig &cfg,
                     const Liveness &liveness, AccessCounts &counts,
                     ReplayArena &arena)
        : sim_(dec, cfg, liveness, counts, arena)
    {
        sim_.beginWarp();
    }

    void
    onIssue(int lin, bool enabled, bool taken, std::int32_t /*nextLin*/,
            OperandPlan &plan) override
    {
        sim_.setPlan(&plan);
        sim_.onInstr(lin, enabled, taken);
        sim_.setPlan(nullptr);
    }

  private:
    HwWarpSim sim_;
};

/** Pipeline accounting factory for the hardware cache scheme. */
class HwAccounting final : public PipelineAccounting
{
  public:
    HwAccounting(const Kernel &k, const HwCacheConfig &cfg,
                 const AnalysisBundle *analyses, const ReplayDecode *dec,
                 AccessCounts &counts)
        : cfg_(cfg), counts_(counts)
    {
        analyses_ = analyses ? analyses : &localAnalyses_.emplace(k);
        dec_ = dec && dec->hasSharedConsumerInfo()
            ? dec
            : &localDec_.emplace(k, &analyses_->reachingDefs);
    }

    std::unique_ptr<WarpAccountant>
    makeWarp(int /*warp*/) override
    {
        return std::make_unique<HwWarpAccountant>(
            *dec_, cfg_, analyses_->liveness, counts_, arena_);
    }

  private:
    HwCacheConfig cfg_;
    AccessCounts &counts_;
    std::optional<AnalysisBundle> localAnalyses_;
    std::optional<ReplayDecode> localDec_;
    const AnalysisBundle *analyses_;
    const ReplayDecode *dec_;
    // Private arena: warp accountants outlive any tick of the
    // thread-local replay arena, which other code resets freely.
    ReplayArena arena_;
};

/** Hardware-scheme observability, fed by both execution drivers. */
void
noteHwRun(const AccessCounts &counts, bool replay)
{
    static Counter &runs = globalMetrics().counter("sim.hw.runs");
    static Counter &replays =
        globalMetrics().counter("sim.hw.runs.replay");
    static Counter &instrs = globalMetrics().counter("sim.hw.instrs");
    runs.add();
    if (replay)
        replays.add();
    instrs.add(counts.instructions);
}

/**
 * Resolve the shared decode for the hardware executors: use the
 * caller's when it carries shared-consumer info, else build one
 * locally from the (cached or local) analyses.
 */
const ReplayDecode &
resolveDecode(const Kernel &k, const ReplayDecode *dec,
              const AnalysisBundle &analyses,
              std::optional<ReplayDecode> &local)
{
    if (dec && dec->hasSharedConsumerInfo())
        return *dec;
    return local.emplace(k, &analyses.reachingDefs);
}

} // namespace

AccessCounts
runHwCache(const Kernel &k, const HwCacheConfig &cfg,
           const AnalysisBundle *analyses, const ReplayDecode *dec)
{
    // The analyses are structure-only, so a shared precomputed bundle
    // is equivalent to computing them here.
    std::optional<AnalysisBundle> local;
    if (!analyses)
        analyses = &local.emplace(k);
    std::optional<ReplayDecode> localDec;
    const ReplayDecode &d = resolveDecode(k, dec, *analyses, localDec);

    ReplayArena &arena = acquireThreadReplayArena();
    AccessCounts counts;
    HwWarpSim sim(d, cfg, analyses->liveness, counts, arena);
    for (int w = 0; w < cfg.run.numWarps; w++) {
        WarpContext warp;
        warp.reset(static_cast<std::uint32_t>(w));
        sim.beginWarp();
        std::uint64_t executed = 0;
        while (!warp.done && executed < cfg.run.maxInstrsPerWarp) {
            int lin = warp.pc(k);
            const Instruction &in = k.instr(lin);
            bool enabled = !in.pred || warp.regs[*in.pred] != 0;
            StepInfo si = step(k, warp);
            executed++;
            sim.onInstr(lin, enabled, si.branchTaken);
        }
    }
    noteHwRun(counts, /*replay=*/false);
    return counts;
}

AccessCounts
replayHwCache(const Kernel &k, const HwCacheConfig &cfg,
              const DecodedTrace &trace, const AnalysisBundle *analyses,
              const ReplayDecode *dec)
{
    std::optional<AnalysisBundle> local;
    if (!analyses)
        analyses = &local.emplace(k);
    std::optional<ReplayDecode> localDec;
    const ReplayDecode &d = resolveDecode(k, dec, *analyses, localDec);

    ReplayArena &arena = acquireThreadReplayArena();
    AccessCounts counts;
    HwWarpSim sim(d, cfg, analyses->liveness, counts, arena);
    for (int w = 0; w < trace.numWarps(); w++) {
        sim.beginWarp();
        for (std::uint32_t t = trace.warpBegin[w];
             t < trace.warpBegin[w + 1]; t++) {
            int lin = trace.lin[t];
            std::uint8_t flags = trace.flags[t];
            sim.onInstr(lin, flags & kReplayExecuted,
                        flags & kReplayBranchTaken);
        }
    }
    noteHwRun(counts, /*replay=*/true);
    return counts;
}

std::unique_ptr<PipelineAccounting>
makeHwCacheAccounting(const Kernel &k, const HwCacheConfig &cfg,
                      const AnalysisBundle *analyses,
                      const ReplayDecode *dec, AccessCounts &counts)
{
    return std::make_unique<HwAccounting>(k, cfg, analyses, dec, counts);
}

} // namespace rfh
