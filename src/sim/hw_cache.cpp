#include "sim/hw_cache.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <vector>

#include "ir/liveness.h"
#include "ir/reaching_defs.h"
#include "sim/machine.h"

namespace rfh {

namespace {

/** Per-warp RFC state. */
class Rfc
{
  public:
    explicit Rfc(int entries) : entries_(entries) {}

    /** @return true if @p r is cached. */
    bool
    contains(Reg r) const
    {
        return std::find(regs_.begin(), regs_.end(), r) != regs_.end();
    }

    /**
     * Insert @p r (overwriting in place on a hit). When the cache is
     * full, the FIFO victim register is returned through @p evicted.
     *
     * @return true if a valid entry was evicted.
     */
    bool
    insert(Reg r, Reg &evicted)
    {
        if (contains(r))
            return false;
        if (static_cast<int>(regs_.size()) < entries_) {
            regs_.push_back(r);
            return false;
        }
        evicted = regs_.front();
        regs_.pop_front();
        regs_.push_back(r);
        return true;
    }

    void
    erase(Reg r)
    {
        auto it = std::find(regs_.begin(), regs_.end(), r);
        if (it != regs_.end())
            regs_.erase(it);
    }

    const std::deque<Reg> &
    contents() const
    {
        return regs_;
    }

    void
    clear()
    {
        regs_.clear();
    }

  private:
    int entries_;
    std::deque<Reg> regs_;
};

} // namespace

AccessCounts
runHwCache(const Kernel &k, const HwCacheConfig &cfg,
           const AnalysisBundle *analyses)
{
    // The analyses are structure-only, so a shared precomputed bundle
    // is equivalent to computing them here.
    std::optional<AnalysisBundle> local;
    if (!analyses)
        analyses = &local.emplace(k);
    const Liveness &liveness = analyses->liveness;
    const ReachingDefs &rdefs = analyses->reachingDefs;

    // Static per-instruction flag: does any consumer of this result run
    // on the shared datapath? Such values bypass the hardware LRF
    // (Section 6.2: the compiler guarantees shared-unit operands are
    // available in the RFC or MRF).
    std::vector<bool> shared_consumer(k.numInstrs(), false);
    for (int lin = 0; lin < k.numInstrs(); lin++) {
        for (DefId d : rdefs.defsAt(lin)) {
            for (const UseSite &u : rdefs.uses(d)) {
                if (u.slot == kPredSlot)
                    continue;
                if (isSharedUnit(k.instr(u.lin).unit()))
                    shared_consumer[lin] = true;
            }
        }
    }

    AccessCounts counts;
    for (int w = 0; w < cfg.run.numWarps; w++) {
        WarpContext warp;
        warp.reset(static_cast<std::uint32_t>(w));
        Rfc rfc(cfg.rfcEntries);
        bool lrf_valid = false;
        Reg lrf_reg = 0;
        RegSet pending;
        std::uint64_t executed = 0;

        // Spill the LRF occupant into the RFC (LRF eviction path).
        auto spill_lrf_to_rfc = [&](int lin) {
            if (!lrf_valid)
                return;
            if (liveness.liveAfter(lin, lrf_reg)) {
                counts.read(Level::LRF, Datapath::PRIVATE);
                counts.wbReads++;
                Reg victim = 0;
                if (rfc.insert(lrf_reg, victim)) {
                    if (liveness.liveAfter(lin, victim)) {
                        counts.read(Level::ORF, Datapath::PRIVATE);
                        counts.wbReads++;
                        counts.write(Level::MRF, Datapath::PRIVATE);
                        counts.wbWrites++;
                    }
                }
                counts.write(Level::ORF, Datapath::PRIVATE);
            }
            lrf_valid = false;
        };

        // Flush everything live back to the MRF (deschedule).
        auto flush_all = [&](const RegSet &live) {
            if (lrf_valid && live.test(lrf_reg)) {
                counts.read(Level::LRF, Datapath::PRIVATE);
                counts.wbReads++;
                counts.write(Level::MRF, Datapath::PRIVATE);
                counts.wbWrites++;
            }
            lrf_valid = false;
            for (Reg r : rfc.contents()) {
                if (live.test(r)) {
                    counts.read(Level::ORF, Datapath::PRIVATE);
                    counts.wbReads++;
                    counts.write(Level::MRF, Datapath::PRIVATE);
                    counts.wbWrites++;
                }
            }
            rfc.clear();
        };

        while (!warp.done && executed < cfg.run.maxInstrsPerWarp) {
            int lin = warp.pc(k);
            const Instruction &in = k.instr(lin);
            Datapath dp = datapathOf(in.unit());
            bool shared = isSharedUnit(in.unit());

            // Two-level scheduler: deschedule on a dependence on an
            // outstanding long-latency operation (reads, writes, or
            // overwrites of its destination).
            RegSet touched = usedRegs(in) | definedRegs(in);
            if ((touched & pending).any()) {
                // Liveness immediately before this instruction.
                RegSet live_before =
                    (liveness.liveAfter(lin) & ~definedRegs(in)) |
                    usedRegs(in);
                flush_all(live_before);
                pending.reset();
                counts.deschedules++;
            }

            // Operand reads: LRF (private only) -> RFC -> MRF.
            auto read_one = [&](Reg r) {
                if (cfg.useLRF && !shared && lrf_valid && lrf_reg == r) {
                    counts.read(Level::LRF, dp);
                } else if (rfc.contains(r)) {
                    counts.read(Level::ORF, dp);
                } else {
                    counts.read(Level::MRF, dp);
                }
            };
            for (int s = 0; s < in.numSrcs; s++)
                if (in.srcs[s].isReg)
                    read_one(in.srcs[s].reg);
            if (in.pred)
                read_one(*in.pred);

            // Result write (suppressed when predicated off).
            bool enabled = !in.pred || warp.regs[*in.pred] != 0;
            if (in.dst && enabled) {
                int halves = in.wide ? 2 : 1;
                if (in.longLatency()) {
                    // Long-latency results bypass the hierarchy.
                    counts.write(Level::MRF, dp, halves);
                    // Their destination must not linger in the caches.
                    for (int h = 0; h < halves; h++) {
                        Reg r = static_cast<Reg>(*in.dst + h);
                        rfc.erase(r);
                        if (lrf_valid && lrf_reg == r)
                            lrf_valid = false;
                    }
                    pending |= definedRegs(in);
                } else if (cfg.useLRF && !in.wide &&
                           in.unit() == UnitClass::ALU &&
                           !shared_consumer[lin]) {
                    // Private result consumed privately: goes to LRF.
                    if (lrf_valid && lrf_reg != *in.dst)
                        spill_lrf_to_rfc(lin);
                    rfc.erase(*in.dst);  // keep a single location
                    lrf_valid = true;
                    lrf_reg = *in.dst;
                    counts.write(Level::LRF, dp);
                } else {
                    for (int h = 0; h < halves; h++) {
                        Reg r = static_cast<Reg>(*in.dst + h);
                        if (cfg.useLRF && lrf_valid && lrf_reg == r)
                            lrf_valid = false;  // overwritten
                        Reg victim = 0;
                        if (rfc.insert(r, victim)) {
                            if (liveness.liveAfter(lin, victim)) {
                                counts.read(Level::ORF, dp);
                                counts.wbReads++;
                                counts.write(Level::MRF, dp);
                                counts.wbWrites++;
                            }
                        }
                        counts.write(Level::ORF, dp);
                    }
                }
            }

            counts.instructions++;
            StepInfo si = step(k, warp);
            executed++;

            if (cfg.flushOnBackwardBranch && in.op == Opcode::BRA &&
                si.branchTaken && in.branchTarget >= 0) {
                // Backward branch taken: optional flush variant.
                const InstrRef &tr = k.ref(lin);
                if (in.branchTarget <= tr.block)
                    flush_all(liveness.liveAfter(lin));
            }
        }
    }
    return counts;
}

} // namespace rfh
