/**
 * @file
 * Scheme accounting driven by the staged SM pipeline.
 *
 * The cycle-level pipeline (sim/pipeline.h) separates *timing* from
 * *counting*: access accounting happens once per dynamic instruction
 * at issue, by replaying the scheme's exact per-warp hierarchy state
 * machine — the same code path the functional executors drive — while
 * the timing model routes the resulting operand plan through the
 * operand collector, MRF banks, and latency pipes. Because every
 * scheme's counting walk is a pure function of the per-warp record
 * stream (which the scheduler never reorders within a warp) and the
 * shared AccessCounts accumulator is additive, the pipeline's totals
 * equal the functional trace path's totals exactly, for any scheduler
 * policy and any interleaving — the invariant the verify oracle
 * enforces per scheme and warp count.
 *
 * A WarpAccountant is the per-warp state machine; a PipelineAccounting
 * is the per-run factory that owns everything the warps share (decode
 * tables, hints, liveness, its own arena). Backends expose a factory
 * through SchemeBackend::makePipelineAccounting.
 */

#ifndef RFH_SIM_PIPELINE_ACCOUNT_H
#define RFH_SIM_PIPELINE_ACCOUNT_H

#include <array>
#include <cstdint>
#include <memory>
#include <string_view>

#include "ir/kernel.h"
#include "sim/access_counters.h"

namespace rfh {

struct ReplayDecode;

/**
 * Where one instruction's register operands are physically fetched
 * from: MRF operands go through the banked operand collector (and can
 * conflict); bypass operands are served by the scheme's upper levels
 * (LRF/ORF/RFC), which read in a single cycle with no distribution
 * network. Filled by WarpAccountant::onIssue; consumed only by the
 * timing model — the plan never feeds the access counters.
 */
struct OperandPlan
{
    /** Registers fetched from the MRF (sources + predicate). */
    std::array<Reg, kMaxSrcs + 1> mrfReg{};
    /** Number of valid entries in mrfReg. */
    std::uint8_t numMrf = 0;
    /** Operands served by an upper level (LRF/ORF/RFC). */
    std::uint8_t numBypass = 0;
};

/**
 * Per-warp hierarchy state machine: accounts one dynamic instruction
 * per onIssue() call, in the warp's trace order. Implementations
 * replicate their scheme's functional accounting exactly (including
 * deschedule counting), so driving every record of a warp through
 * onIssue produces the same AccessCounts delta as the functional
 * executor — regardless of how the scheduler interleaves warps.
 */
class WarpAccountant
{
  public:
    virtual ~WarpAccountant() = default;

    /**
     * Account the dynamic instruction at linear index @p lin.
     *
     * @param lin static linear instruction index.
     * @param enabled the record's kReplayExecuted flag (writeback
     *        enabled at issue).
     * @param taken the record's kReplayBranchTaken flag.
     * @param nextLin linear index of the warp's next instruction along
     *        the recorded path, or -1 when the warp terminates — the
     *        strand-boundary lookahead of the software scheme.
     * @param plan out-parameter: the operand sourcing plan for the
     *        collector stage.
     */
    virtual void onIssue(int lin, bool enabled, bool taken,
                         std::int32_t nextLin, OperandPlan &plan) = 0;

    /**
     * First verification failure, or empty. Checked by the pipeline
     * after every onIssue; a failing run stops at that instruction.
     */
    virtual std::string_view
    error() const
    {
        return {};
    }
};

/**
 * Per-run accounting factory: owns the state shared by every warp of
 * one pipeline run and creates the per-warp machines. The AccessCounts
 * accumulator passed at construction is shared by all warps (the
 * counters are additive, so totals are interleaving-invariant).
 */
class PipelineAccounting
{
  public:
    virtual ~PipelineAccounting() = default;

    /** Create the state machine of warp @p warp, reset for a fresh run. */
    virtual std::unique_ptr<WarpAccountant> makeWarp(int warp) = 0;
};

/**
 * Flat single-level accounting: every register operand is an MRF
 * access (the baseline and GREENER schemes — identical counts to
 * replayBaseline). @p dec may be null (a private decode is built);
 * @p k and @p counts must outlive the returned object.
 */
std::unique_ptr<PipelineAccounting> makeFlatAccounting(
    const Kernel &k, const ReplayDecode *dec, AccessCounts &counts);

} // namespace rfh

#endif // RFH_SIM_PIPELINE_ACCOUNT_H
