#include "sim/perf_sim.h"

#include <algorithm>
#include <vector>

#include "sim/pipeline.h"
#include "sim/pipeline_account.h"
#include "sim/trace.h"

namespace rfh {

namespace {

/**
 * Map the legacy Table-2 knobs onto the staged pipeline. activeWarps
 * >= numWarps degenerates to flat round-robin inside the two-level
 * scheduler (the active set never fills below the machine size), so
 * the policy is always TWO_LEVEL here and the old flat/two-level
 * split falls out of the set size alone.
 */
PipelineConfig
pipelineConfigOf(const PerfConfig &cfg)
{
    PipelineConfig p;
    p.policy = SchedPolicy::TWO_LEVEL;
    p.activeWarps = cfg.activeWarps;
    p.aluLatency = cfg.aluLatency;
    p.sfuLatency = cfg.sfuLatency;
    p.sharedMemLatency = cfg.sharedMemLatency;
    p.texLatency = cfg.texLatency;
    p.dramLatency = cfg.dramLatency;
    p.swapPenalty = cfg.swapPenalty;
    p.sharedIssueInterval = cfg.sharedIssueInterval;
    p.maxCycles = cfg.maxCycles;
    return p;
}

PerfResult
runDecoded(const Kernel &k, DecodedTrace &trace, const PerfConfig &cfg)
{
    if (!trace.hasPlanes())
        trace.buildPlanes(k);
    ReplayDecode dec(k);
    AccessCounts counts;
    auto acct = makeFlatAccounting(k, &dec, counts);
    PipelineResult r = runPipeline(trace, dec, *acct,
                                   pipelineConfigOf(cfg));
    PerfResult out;
    out.cycles = r.stats.cycles;
    out.instructions = r.stats.issued;
    out.deschedules = r.stats.swaps;
    return out;
}

} // namespace

PerfResult
runPerfSim(const Kernel &k, const PerfConfig &cfg)
{
    RunConfig rc;
    rc.numWarps = cfg.numWarps;
    rc.maxInstrsPerWarp = cfg.maxInstrsPerWarp;
    DecodedTrace trace = recordDecodedTrace(k, rc);
    return runDecoded(k, trace, cfg);
}

PerfResult
runPerfSimFromTrace(const Kernel &k, const KernelTrace &trace,
                    const PerfConfig &cfg)
{
    // Expand the recorded block paths into a decoded stream: warp w
    // replays path (w % recorded), every instruction of every visited
    // block unconditionally executed — the trace-based methodology of
    // Section 5.1, where timing ignores predication.
    DecodedTrace d;
    d.warpBegin.assign(1, 0);
    d.warpEndLin.reserve(cfg.numWarps);
    for (int w = 0; w < cfg.numWarps; w++) {
        const std::vector<int> &path =
            trace.warpPaths[w % trace.numWarps()];
        std::uint64_t emitted = 0;
        std::int32_t endLin = -1;
        for (std::size_t p = 0;
             p < path.size() && endLin < 0; p++) {
            int b = path[p];
            int first = k.blockStart(b);
            int count = static_cast<int>(k.blocks[b].instrs.size());
            for (int i = 0; i < count; i++) {
                if (emitted >= cfg.maxInstrsPerWarp) {
                    // Capped mid-path: remember what would have been
                    // next, mirroring the recorder's warpEndLin.
                    endLin = first + i;
                    break;
                }
                d.lin.push_back(first + i);
                d.flags.push_back(kReplayExecuted);
                emitted++;
            }
        }
        d.warpBegin.push_back(
            static_cast<std::uint32_t>(d.lin.size()));
        d.warpEndLin.push_back(endLin);
    }
    d.buildPlanes(k);
    return runDecoded(k, d, cfg);
}

} // namespace rfh
