#include "sim/perf_sim.h"

#include <algorithm>
#include <deque>
#include <vector>

#include "ir/liveness.h"
#include "sim/machine.h"
#include "sim/trace.h"

namespace rfh {

namespace {

/**
 * How a warp's instruction stream advances: live functional execution,
 * or replay of a recorded block path.
 */
struct WarpStream
{
    // Live mode.
    WarpContext ctx;
    bool live = true;
    // Replay mode.
    const std::vector<int> *path = nullptr;
    std::size_t pathPos = 0;
    int replayBlock = 0;
    int replayIdx = 0;
    bool replayDone = false;

    bool
    done() const
    {
        return live ? ctx.done : replayDone;
    }

    const Instruction &
    current(const Kernel &k) const
    {
        if (live)
            return k.instr(ctx.pc(k));
        return k.blocks[replayBlock].instrs[replayIdx];
    }

    void
    advance(const Kernel &k)
    {
        if (live) {
            step(k, ctx);
            return;
        }
        replayIdx++;
        if (replayIdx >=
            static_cast<int>(k.blocks[replayBlock].instrs.size())) {
            pathPos++;
            if (path == nullptr || pathPos >= path->size()) {
                replayDone = true;
            } else {
                replayBlock = (*path)[pathPos];
                replayIdx = 0;
            }
        }
    }
};

struct WarpPerfState
{
    WarpStream stream;
    /** Cycle at which each register's value becomes readable. */
    std::array<std::uint64_t, kMaxRegs> ready{};
    /** Producing op of the last write (for deschedule decisions). */
    std::array<bool, kMaxRegs> longProducer{};
    std::uint64_t executed = 0;
    std::uint64_t activatedAt = 0;
};

int
latencyOf(const Instruction &in, const PerfConfig &cfg)
{
    switch (in.op) {
      case Opcode::LD_GLOBAL: return cfg.dramLatency;
      case Opcode::TEX: return cfg.texLatency;
      case Opcode::LD_SHARED: return cfg.sharedMemLatency;
      case Opcode::LD_PARAM: return cfg.sharedMemLatency;
      case Opcode::ST_GLOBAL:
      case Opcode::ST_SHARED: return 1;
      case Opcode::BRA:
      case Opcode::EXIT: return 1;
      case Opcode::BAR: return 1;
      default:
        return isSharedUnit(in.unit()) ? cfg.sfuLatency
                                       : cfg.aluLatency;
    }
}

PerfResult
runModel(const Kernel &k, const PerfConfig &cfg,
         std::vector<WarpPerfState> &warps)
{
    PerfResult result;
    int n = static_cast<int>(warps.size());
    std::deque<int> active, pending;
    int nactive = std::min(cfg.activeWarps, n);
    for (int w = 0; w < n; w++)
        (w < nactive ? active : pending).push_back(w);

    std::uint64_t now = 0;
    std::uint64_t shared_port_free = 0;
    std::size_t rr = 0;  // round-robin pointer into the active set
    int warps_left = n;

    while (warps_left > 0 && now < cfg.maxCycles) {
        bool issued = false;
        int blocked_long = -1;  // active warp stalled on a long value

        for (std::size_t i = 0; i < active.size() && !issued; i++) {
            int wid = active[(rr + i) % active.size()];
            WarpPerfState &w = warps[wid];
            if (w.stream.done() || now < w.activatedAt)
                continue;
            const Instruction &in = w.stream.current(k);

            // Structural hazard: shared units accept one op per
            // sharedIssueInterval cycles.
            if (isSharedUnit(in.unit()) && now < shared_port_free)
                continue;

            // Data hazards (in-order scoreboard on sources and dest).
            bool blocked = false;
            bool blocked_by_long = false;
            RegSet need = usedRegs(in) | definedRegs(in);
            for (int r = 0; r < kMaxRegs; r++) {
                if (!need.test(r))
                    continue;
                if (w.ready[r] > now) {
                    blocked = true;
                    blocked_by_long |= w.longProducer[r];
                }
            }
            if (blocked) {
                if (blocked_by_long && blocked_long < 0)
                    blocked_long = wid;
                continue;
            }

            // Issue.
            int lat = latencyOf(in, cfg);
            if (in.dst) {
                for (int h = 0; h < (in.wide ? 2 : 1); h++) {
                    w.ready[*in.dst + h] = now + lat;
                    w.longProducer[*in.dst + h] = in.longLatency();
                }
            }
            if (isSharedUnit(in.unit()))
                shared_port_free = now + cfg.sharedIssueInterval;
            w.stream.advance(k);
            w.executed++;
            result.instructions++;
            issued = true;
            rr = (rr + i + 1) % std::max<std::size_t>(1, active.size());
            if (w.stream.done() || w.executed >= cfg.maxInstrsPerWarp) {
                if (!w.stream.done() && w.stream.live)
                    w.stream.ctx.done = true;
                else if (!w.stream.done())
                    w.stream.replayDone = true;
                warps_left--;
                // Retire from the active set; promote a pending warp.
                active.erase(std::find(active.begin(), active.end(),
                                       wid));
                if (!pending.empty()) {
                    int next = pending.front();
                    pending.pop_front();
                    warps[next].activatedAt = now + cfg.swapPenalty;
                    active.push_back(next);
                }
                rr = 0;
            }
        }

        // Two-level scheduler: swap out a warp stalled on a
        // long-latency dependence if a pending warp could make
        // progress.
        if (!issued && blocked_long >= 0 && !pending.empty()) {
            // Prefer a pending warp that is ready to issue right away.
            std::size_t pick = 0;
            for (std::size_t i = 0; i < pending.size(); i++) {
                WarpPerfState &cand = warps[pending[i]];
                if (cand.stream.done())
                    continue;
                const Instruction &cin = cand.stream.current(k);
                RegSet need = usedRegs(cin) | definedRegs(cin);
                bool ready = true;
                for (int r = 0; r < kMaxRegs && ready; r++)
                    if (need.test(r) && cand.ready[r] > now)
                        ready = false;
                if (ready) {
                    pick = i;
                    break;
                }
            }
            int next = pending[pick];
            pending.erase(pending.begin() + pick);
            active.erase(std::find(active.begin(), active.end(),
                                   blocked_long));
            pending.push_back(blocked_long);
            warps[next].activatedAt = now + cfg.swapPenalty;
            active.push_back(next);
            result.deschedules++;
            rr = 0;
        }

        now++;
    }

    result.cycles = now;
    return result;
}

} // namespace

PerfResult
runPerfSim(const Kernel &k, const PerfConfig &cfg)
{
    std::vector<WarpPerfState> warps(cfg.numWarps);
    for (int w = 0; w < cfg.numWarps; w++) {
        warps[w].stream.live = true;
        warps[w].stream.ctx.reset(static_cast<std::uint32_t>(w));
    }
    return runModel(k, cfg, warps);
}

PerfResult
runPerfSimFromTrace(const Kernel &k, const KernelTrace &trace,
                    const PerfConfig &cfg)
{
    std::vector<WarpPerfState> warps(cfg.numWarps);
    for (int w = 0; w < cfg.numWarps; w++) {
        WarpStream &s = warps[w].stream;
        s.live = false;
        const auto &path = trace.warpPaths[w % trace.numWarps()];
        s.path = &path;
        s.pathPos = 0;
        s.replayDone = path.empty();
        if (!path.empty()) {
            s.replayBlock = path.front();
            s.replayIdx = 0;
        }
    }
    return runModel(k, cfg, warps);
}

} // namespace rfh
