/**
 * @file
 * Control-flow trace recording and replay (the paper's methodology,
 * Section 5.1: full-application runs produce per-path execution
 * frequencies, and a custom trace-based simulator reconstructs likely
 * warp interleavings from them).
 *
 * A trace stores, per warp, the sequence of basic blocks the warp
 * visited. Replaying a trace drives the performance simulator without
 * re-executing the functional machine, and the recorded frequencies
 * feed profile-style analyses (hot blocks, dynamic strand mix).
 */

#ifndef RFH_SIM_TRACE_H
#define RFH_SIM_TRACE_H

#include <cstdint>
#include <vector>

#include "ir/kernel.h"
#include "sim/baseline_exec.h"

namespace rfh {

/** Recorded dynamic behaviour of one kernel launch. */
struct KernelTrace
{
    /** Per warp: the sequence of basic-block ids executed. */
    std::vector<std::vector<int>> warpPaths;
    /** Dynamic execution count of each basic block (all warps). */
    std::vector<std::uint64_t> blockCounts;
    /** Total dynamic instructions across all warps. */
    std::uint64_t instructions = 0;

    int
    numWarps() const
    {
        return static_cast<int>(warpPaths.size());
    }
};

/** Execute @p k functionally and record each warp's block path. */
KernelTrace recordTrace(const Kernel &k, const RunConfig &cfg = {});

/**
 * Validate that @p trace is a legal execution of @p k: every recorded
 * transition must be a CFG edge, every path starts at the entry block,
 * and every path ends at a block that can terminate.
 *
 * @return empty string if consistent, else a description.
 */
std::string validateTrace(const Kernel &k, const KernelTrace &trace);

/**
 * Per-block dynamic instruction histogram: how many instructions each
 * block contributes to the dynamic stream (blockCounts × block size).
 */
std::vector<std::uint64_t> dynamicInstrsPerBlock(const Kernel &k,
                                                 const KernelTrace &t);

} // namespace rfh

#endif // RFH_SIM_TRACE_H
