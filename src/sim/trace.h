/**
 * @file
 * Control-flow trace recording and replay (the paper's methodology,
 * Section 5.1: full-application runs produce per-path execution
 * frequencies, and a custom trace-based simulator reconstructs likely
 * warp interleavings from them).
 *
 * Two trace representations are provided:
 *
 *  - KernelTrace: per warp, the sequence of basic blocks visited —
 *    feeds profile-style analyses (hot blocks, dynamic strand mix).
 *  - DecodedTrace: the flat, pre-decoded dynamic instruction stream
 *    that drives the replay executors. Recorded once per
 *    (kernel, RunConfig) — the functional machine runs exactly once —
 *    and then replayed by every (scheme x entries) grid cell doing
 *    only hierarchy state updates and access counting: no opcode
 *    dispatch, no value computation, no branch evaluation.
 *
 * The dynamic stream is a structure-of-arrays: one int32 linear
 * instruction index and one flags byte per dynamic instruction, with
 * per-warp extents. Everything value-dependent that the access
 * counters need is folded into the flags (executed-vs-predicated-off,
 * branch taken); everything static (register indices, immediates,
 * wide halves, unit class) is resolved once into a ReplayDecode table
 * indexed by the linear instruction id.
 */

#ifndef RFH_SIM_TRACE_H
#define RFH_SIM_TRACE_H

#include <cstdint>
#include <vector>

#include "ir/kernel.h"
#include "ir/liveness.h"
#include "sim/baseline_exec.h"

namespace rfh {

class ReachingDefs;

/** Recorded dynamic behaviour of one kernel launch. */
struct KernelTrace
{
    /** Per warp: the sequence of basic-block ids executed. */
    std::vector<std::vector<int>> warpPaths;
    /** Dynamic execution count of each basic block (all warps). */
    std::vector<std::uint64_t> blockCounts;
    /** Total dynamic instructions across all warps. */
    std::uint64_t instructions = 0;

    int
    numWarps() const
    {
        return static_cast<int>(warpPaths.size());
    }
};

/** Execute @p k functionally and record each warp's block path. */
KernelTrace recordTrace(const Kernel &k, const RunConfig &cfg = {});

/**
 * Validate that @p trace is a legal execution of @p k: every recorded
 * transition must be a CFG edge, every path starts at the entry block,
 * and every path ends at a block that can terminate.
 *
 * @return empty string if consistent, else a description.
 */
std::string validateTrace(const Kernel &k, const KernelTrace &trace);

/**
 * Per-block dynamic instruction histogram: how many instructions each
 * block contributes to the dynamic stream (blockCounts × block size).
 */
std::vector<std::uint64_t> dynamicInstrsPerBlock(const Kernel &k,
                                                 const KernelTrace &t);

// ---- Pre-decoded replay stream ----

/** Per-dynamic-instruction replay flags. */
enum ReplayFlags : std::uint8_t
{
    /**
     * The instruction's writeback was enabled (predicate absent or
     * non-zero at issue). For the SIMT stream: at least one active
     * lane was enabled.
     */
    kReplayExecuted = 1u << 0,
    /**
     * A conditional/unconditional branch was taken. For the SIMT
     * stream: a backward branch had at least one enabled lane (the
     * warp-synchronisation trigger).
     */
    kReplayBranchTaken = 1u << 1,
};

/**
 * The pre-decoded dynamic instruction stream of one kernel launch,
 * laid out as a flat structure-of-arrays over all warps.
 *
 * Replaying the stream reproduces, bit-exactly, every quantity the
 * access counters depend on — which instruction issued, whether its
 * writeback was enabled, and which way branches went — without
 * re-executing the functional machine.
 */
struct DecodedTrace
{
    /** Static linear instruction index, one per dynamic instruction. */
    std::vector<std::int32_t> lin;
    /** ReplayFlags, parallel to @c lin. */
    std::vector<std::uint8_t> flags;
    /**
     * Per-warp extents into the flat arrays: warp w's records are
     * [warpBegin[w], warpBegin[w+1]). Size numWarps + 1.
     */
    std::vector<std::uint32_t> warpBegin;
    /**
     * Per warp: the linear index of the instruction that would have
     * issued next had the run not hit the per-warp instruction cap,
     * or -1 when the warp terminated. Lets replay reproduce the
     * strand-boundary check of the final recorded instruction.
     */
    std::vector<std::int32_t> warpEndLin;

    // ---- Bit-planes over the record stream ----
    // Bit (t % 64) of word (t / 64) classifies record t. Built once by
    // the recorders (buildPlanes); the replay executors consume them
    // with popcount sweeps and bit scans instead of per-record
    // branching. Unused bits of the final word are zero.

    /** kReplayExecuted per record. */
    std::vector<std::uint64_t> execWords;
    /** kReplayBranchTaken per record. */
    std::vector<std::uint64_t> takenWords;
    /**
     * Records that executed AND name a long-latency instruction with a
     * destination — exactly the records that can set the outstanding
     * (pending) register set during replay. Structural: annotations
     * never affect it, so it is valid for any annotated copy of the
     * recorded kernel.
     */
    std::vector<std::uint64_t> llWords;
    /** Total records with kReplayExecuted (classification pass). */
    std::uint64_t executedInstrs = 0;
    /** Total records with kReplayBranchTaken (classification pass). */
    std::uint64_t takenBranches = 0;

    /** True when the planes match the current record stream. */
    bool
    hasPlanes() const
    {
        const std::size_t words = (lin.size() + 63) / 64;
        return execWords.size() == words &&
            takenWords.size() == words && llWords.size() == words;
    }

    /** (Re)build the planes and classification totals from @p k. */
    void buildPlanes(const Kernel &k);

    int
    numWarps() const
    {
        return static_cast<int>(warpEndLin.size());
    }

    /** Total dynamic instructions across all warps. */
    std::uint64_t
    instructions() const
    {
        return static_cast<std::uint64_t>(lin.size());
    }

    /**
     * Linear index of the instruction following record @p t of warp
     * @p w along the recorded path, or -1 when the warp terminated.
     */
    std::int32_t
    nextLin(int w, std::uint32_t t) const
    {
        return t + 1 < warpBegin[w + 1] ? lin[t + 1] : warpEndLin[w];
    }
};

/**
 * Execute @p k functionally — once — and record the pre-decoded
 * per-warp dynamic stream. The warp loop, instruction cap, and
 * predicate semantics mirror the direct executors exactly, so a
 * replay visits precisely the dynamic instructions a direct run
 * executes.
 */
DecodedTrace recordDecodedTrace(const Kernel &k, const RunConfig &cfg = {});

/**
 * Record the warp-level SIMT stream of @p k: one record per issued
 * warp instruction (divergent hammock sides serialised, as executed
 * by SimtWarp). kReplayExecuted means at least one active lane passed
 * its predicate; kReplayBranchTaken marks backward branches with at
 * least one enabled lane. @p width lanes per warp.
 */
DecodedTrace recordSimtDecodedTrace(const Kernel &k, int numWarps,
                                    int width,
                                    std::uint64_t maxInstrsPerWarp);

/** Packed classification bits of one ReplayOp. */
enum ReplayOpFlags : std::uint8_t
{
    kOpLongLat = 1u << 0,   ///< isLongLatency(op).
    kOpShared = 1u << 1,    ///< isSharedUnit(unit()).
    kOpBackward = 1u << 2,  ///< BRA with target block <= own block.
    kOpWide = 1u << 3,      ///< 64-bit destination (two halves).
    /**
     * Hardware-LRF eligible result: private non-wide ALU value with no
     * shared-datapath consumer. Only meaningful when the decode was
     * built with reaching definitions (hasSharedConsumerInfo()).
     */
    kOpLrfAble = 1u << 4,
};

/**
 * Compact structure-of-arrays record of one static instruction: the
 * 10 bytes the replay inner loops actually touch, instead of the
 * ~200-byte Instruction. One cache line holds six of them.
 */
struct ReplayOp
{
    std::array<Reg, kMaxSrcs> src{};  ///< Register sources, packed.
    std::uint8_t nsrc = 0;            ///< Count of register sources.
    std::int16_t pred = -1;           ///< Predicate register or -1.
    std::int16_t dst = -1;            ///< Destination register or -1.
    std::uint8_t halves = 1;          ///< Registers written (1 or 2).
    std::uint8_t dp = 0;              ///< Datapath index.
    std::uint8_t flags = 0;           ///< ReplayOpFlags.
};

/**
 * Flat static pre-decode of a kernel for replay, indexed by linear
 * instruction id: the instructions themselves in one contiguous
 * array, compact ReplayOp records for the hot loops, plus the derived
 * sets and classifications the loops would otherwise recompute per
 * dynamic instruction.
 *
 * A decode built from a pristine kernel is structurally identical to
 * one built from any allocator-annotated copy except for the @c instr
 * snapshots, which carry whatever annotations the source kernel had.
 * Cached decodes (ExperimentCache::decode) are therefore shared
 * across annotated copies, and consumers of a shared decode must not
 * read annotations out of @c instr.
 */
struct ReplayDecode
{
    /** Contiguous instruction copies in layout (linear) order. */
    std::vector<Instruction> instr;
    /** Compact per-instruction records for the replay inner loops. */
    std::vector<ReplayOp> op;
    /** usedRegs | definedRegs per instruction. */
    std::vector<RegSet> touched;
    /** usedRegs per instruction. */
    std::vector<RegSet> used;
    /** definedRegs per instruction. */
    std::vector<RegSet> defined;
    /** Datapath index (static_cast<int>(datapathOf(unit))). */
    std::vector<std::uint8_t> datapath;
    /** isSharedUnit(unit()) per instruction. */
    std::vector<std::uint8_t> shared;
    /** BRA with a valid target block <= its own block. */
    std::vector<std::uint8_t> backwardBranch;
    /** numRegReads() per instruction (baseline accounting). */
    std::vector<std::uint8_t> regReads;
    /** numRegWrites() per instruction (baseline accounting). */
    std::vector<std::uint8_t> regWrites;

    /**
     * @param rdefs when given, kOpLrfAble is resolved from the
     *        shared-consumer analysis (hardware-cache LRF bypass,
     *        Section 6.2); when null the flag is left unset and
     *        hasSharedConsumerInfo() is false.
     */
    explicit ReplayDecode(const Kernel &k,
                          const ReachingDefs *rdefs = nullptr);

    bool
    hasSharedConsumerInfo() const
    {
        return hasSharedConsumerInfo_;
    }

  private:
    bool hasSharedConsumerInfo_ = false;
};

} // namespace rfh

#endif // RFH_SIM_TRACE_H
