/**
 * @file
 * The in-tree scheme backends: the paper's five register-file
 * organisations plus the competing designs from the literature
 * (compiler-assisted RFC, RegDem shared-memory spilling, GREENER
 * power-gated banks), registered by registerBuiltinSchemes() in the
 * fixed order that gives the paper schemes their historic ids.
 */

#include <string>

#include "compiler/allocator.h"
#include "core/experiment.h"
#include "core/scheme.h"
#include "sim/cc_rfc.h"
#include "sim/greener.h"
#include "sim/hw_cache.h"
#include "sim/pipeline_account.h"
#include "sim/regdem.h"
#include "sim/sw_exec.h"

namespace rfh {

namespace {

/** Flat single-level MRF: the memoized baseline counts verbatim. */
class BaselineScheme : public SchemeBackend
{
  public:
    SchemeSimResult
    simulate(const SchemeRunContext &ctx) const override
    {
        SchemeSimResult r;
        r.counts = *ctx.baseline;
        return r;
    }

    std::unique_ptr<PipelineAccounting>
    makePipelineAccounting(const PipelineBuildContext &ctx) const override
    {
        return makeFlatAccounting(*ctx.kernel, ctx.decode, *ctx.counts);
    }
};

/**
 * Conservation laws of a hardware-managed cache over the flat MRF.
 * Demand traffic (everything except the wb-tagged writeback overhead)
 * must match the baseline access for access. With @p exactWrites the
 * write law is an equality (two-level caches: every untagged write is
 * a demand write); the three-level cache's LRF-to-RFC spill counts an
 * untagged movement write into the RFC, so there the law weakens to a
 * lower bound plus an MRF-side upper bound.
 */
std::vector<std::string>
hwConservation(const AccessCounts &c, const AccessCounts &baseline,
               bool exactWrites)
{
    std::vector<std::string> v;
    const std::uint64_t demandReads = c.allReads() - c.wbReads;
    const std::uint64_t demandWrites = c.allWrites() - c.wbWrites;
    if (demandReads != baseline.totalReads(Level::MRF))
        v.push_back("demand reads " + std::to_string(demandReads) +
                    " != baseline reads " +
                    std::to_string(baseline.totalReads(Level::MRF)));
    if (c.instructions != baseline.instructions)
        v.push_back("instructions " + std::to_string(c.instructions) +
                    " != baseline " +
                    std::to_string(baseline.instructions));
    if (exactWrites) {
        if (demandWrites != baseline.totalWrites(Level::MRF))
            v.push_back(
                "demand writes " + std::to_string(demandWrites) +
                " != baseline writes " +
                std::to_string(baseline.totalWrites(Level::MRF)));
    } else if (demandWrites < baseline.totalWrites(Level::MRF)) {
        v.push_back("demand writes " + std::to_string(demandWrites) +
                    " below baseline writes " +
                    std::to_string(baseline.totalWrites(Level::MRF)) +
                    " (a definition reached no level)");
    }
    // Every MRF write is either a demand write (bounded by the
    // baseline) or a tagged writeback.
    if (c.totalWrites(Level::MRF) >
        baseline.totalWrites(Level::MRF) + c.wbWrites)
        v.push_back(
            "MRF writes " + std::to_string(c.totalWrites(Level::MRF)) +
            " exceed baseline writes " +
            std::to_string(baseline.totalWrites(Level::MRF)) +
            " plus writebacks " + std::to_string(c.wbWrites));
    return v;
}

/** Hardware-managed RFC (two-level) / RFC+LRF (three-level). */
class HwCacheScheme : public SchemeBackend
{
  public:
    explicit HwCacheScheme(bool threeLevel) : threeLevel_(threeLevel) {}

    SchemeSimResult
    simulate(const SchemeRunContext &ctx) const override
    {
        HwCacheConfig hc;
        hc.rfcEntries = ctx.cfg->entries;
        hc.useLRF = threeLevel_;
        hc.flushOnBackwardBranch = ctx.cfg->hwFlushOnBackwardBranch;
        hc.run = ctx.workload->run;
        SchemeSimResult r;
        r.counts = ctx.trace
                       ? replayHwCache(*ctx.kernel, hc, *ctx.trace,
                                       ctx.analyses, ctx.decode)
                       : runHwCache(*ctx.kernel, hc, ctx.analyses,
                                    ctx.decode);
        return r;
    }

    std::vector<std::string>
    checkConservation(const AccessCounts &c,
                      const AccessCounts &baseline) const override
    {
        return hwConservation(c, baseline,
                              /*exactWrites=*/!threeLevel_);
    }

    std::unique_ptr<PipelineAccounting>
    makePipelineAccounting(const PipelineBuildContext &ctx) const override
    {
        HwCacheConfig hc;
        hc.rfcEntries = ctx.cfg->entries;
        hc.useLRF = threeLevel_;
        hc.flushOnBackwardBranch = ctx.cfg->hwFlushOnBackwardBranch;
        return makeHwCacheAccounting(*ctx.kernel, hc, ctx.analyses,
                                     ctx.decode, *ctx.counts);
    }

  private:
    bool threeLevel_;
};

/** Compiler-managed ORF (two-level) / ORF+LRF (three-level). */
class SwHierarchyScheme : public SchemeBackend
{
  public:
    explicit SwHierarchyScheme(bool threeLevel)
        : threeLevel_(threeLevel)
    {
    }

    AllocOptions
    allocOptions(const ExperimentConfig &cfg) const override
    {
        AllocOptions a = SchemeBackend::allocOptions(cfg);
        a.useLRF = threeLevel_;
        a.splitLRF = a.useLRF && cfg.splitLRF;
        return a;
    }

    AllocStats
    allocate(Kernel &k, const ExperimentConfig &cfg,
             const AnalysisBundle *analyses) const override
    {
        HierarchyAllocator alloc(cfg.energy, allocOptions(cfg));
        return alloc.run(k, analyses);
    }

    SchemeSimResult
    simulate(const SchemeRunContext &ctx) const override
    {
        SwExecConfig sc;
        sc.run = ctx.workload->run;
        sc.idealNoFlush = ctx.cfg->idealNoFlush;
        const AllocOptions ao = allocOptions(*ctx.cfg);
        // Annotations never change the dynamic path, so the pristine
        // kernel's trace replays the annotated copy exactly.
        SwExecResult res =
            ctx.trace ? replaySwHierarchy(*ctx.kernel, ao, *ctx.trace,
                                          sc, ctx.analyses)
                      : runSwHierarchy(*ctx.kernel, ao, sc,
                                       ctx.analyses);
        SchemeSimResult r;
        r.counts = res.counts;
        r.error = res.error;
        return r;
    }

    bool
    splitLrfEnergy(const ExperimentConfig &cfg) const override
    {
        return threeLevel_ && cfg.splitLRF;
    }

    std::vector<std::string>
    checkConservation(const AccessCounts &c,
                      const AccessCounts &baseline) const override
    {
        // Every register operand read is serviced at exactly one
        // level, every enabled definition lands in at least one
        // level, and the MRF sees no more writes than the baseline.
        std::vector<std::string> v;
        if (c.allReads() != baseline.totalReads(Level::MRF))
            v.push_back(
                "total reads " + std::to_string(c.allReads()) +
                " != baseline reads " +
                std::to_string(baseline.totalReads(Level::MRF)));
        if (c.instructions != baseline.instructions)
            v.push_back("instructions " +
                        std::to_string(c.instructions) +
                        " != baseline " +
                        std::to_string(baseline.instructions));
        if (c.totalWrites(Level::MRF) >
            baseline.totalWrites(Level::MRF))
            v.push_back(
                "MRF writes " +
                std::to_string(c.totalWrites(Level::MRF)) +
                " exceed baseline writes " +
                std::to_string(baseline.totalWrites(Level::MRF)));
        if (c.allWrites() < baseline.totalWrites(Level::MRF))
            v.push_back(
                "total writes " + std::to_string(c.allWrites()) +
                " below baseline writes " +
                std::to_string(baseline.totalWrites(Level::MRF)) +
                " (a definition reached no level)");
        if (c.wbReads != 0 || c.wbWrites != 0)
            v.push_back("software scheme reported writeback traffic");
        return v;
    }

    std::unique_ptr<PipelineAccounting>
    makePipelineAccounting(const PipelineBuildContext &ctx) const override
    {
        SwExecConfig sc;
        sc.idealNoFlush = ctx.cfg->idealNoFlush;
        return makeSwHierarchyAccounting(*ctx.kernel,
                                         allocOptions(*ctx.cfg), sc,
                                         ctx.analyses, *ctx.counts);
    }

  private:
    bool threeLevel_;
};

/** Compiler-assisted RFC (Shoushtary et al., arXiv:2310.17501). */
class CcRfcScheme : public SchemeBackend
{
  public:
    SchemeSimResult
    simulate(const SchemeRunContext &ctx) const override
    {
        CcRfcConfig cc;
        cc.entries = ctx.cfg->entries;
        cc.run = ctx.workload->run;
        SchemeSimResult r;
        r.counts = ctx.trace
                       ? replayCcRfc(*ctx.kernel, cc, *ctx.trace,
                                     ctx.analyses, ctx.decode)
                       : runCcRfc(*ctx.kernel, cc, ctx.analyses,
                                  ctx.decode);
        return r;
    }

    std::vector<std::string>
    checkConservation(const AccessCounts &c,
                      const AccessCounts &baseline) const override
    {
        return hwConservation(c, baseline, /*exactWrites=*/true);
    }

    std::unique_ptr<PipelineAccounting>
    makePipelineAccounting(const PipelineBuildContext &ctx) const override
    {
        CcRfcConfig cc;
        cc.entries = ctx.cfg->entries;
        return makeCcRfcAccounting(*ctx.kernel, cc, ctx.analyses,
                                   ctx.decode, *ctx.counts);
    }
};

/** RegDem shared-memory spilling (Sakdhnagool et al., 1907.02894). */
class RegDemScheme : public SchemeBackend
{
  public:
    SchemeSimResult
    simulate(const SchemeRunContext &ctx) const override
    {
        RegDemConfig rc;
        rc.entries = ctx.cfg->entries;
        rc.run = ctx.workload->run;
        SchemeSimResult r;
        r.counts = ctx.trace ? replayRegDem(*ctx.kernel, rc,
                                            *ctx.trace, ctx.decode)
                             : runRegDem(*ctx.kernel, rc, ctx.decode);
        return r;
    }

    double
    accountEnergyPJ(const SchemeRunContext &ctx, const AccessCounts &c,
                    const EnergyModel &em) const override
    {
        return c.totalEnergyPJ(em) +
            regdemSpillEnergyPJ(c, ctx.cfg->energy);
    }

    std::vector<std::string>
    checkConservation(const AccessCounts &c,
                      const AccessCounts &baseline) const override
    {
        // Demoted accesses live in the writeback (spill) counters;
        // resident accesses stay MRF traffic. Together they must
        // reproduce the baseline access for access.
        std::vector<std::string> v;
        if (c.allReads() + c.wbReads !=
            baseline.totalReads(Level::MRF))
            v.push_back(
                "resident reads " + std::to_string(c.allReads()) +
                " + spill reads " + std::to_string(c.wbReads) +
                " != baseline reads " +
                std::to_string(baseline.totalReads(Level::MRF)));
        if (c.instructions != baseline.instructions)
            v.push_back("instructions " +
                        std::to_string(c.instructions) +
                        " != baseline " +
                        std::to_string(baseline.instructions));
        if (c.allWrites() + c.wbWrites !=
            baseline.totalWrites(Level::MRF))
            v.push_back(
                "resident writes " + std::to_string(c.allWrites()) +
                " + spill writes " + std::to_string(c.wbWrites) +
                " != baseline writes " +
                std::to_string(baseline.totalWrites(Level::MRF)));
        if (c.totalReads(Level::ORF) != 0 ||
            c.totalReads(Level::LRF) != 0 ||
            c.totalWrites(Level::ORF) != 0 ||
            c.totalWrites(Level::LRF) != 0)
            v.push_back("register demotion reported upper-level "
                        "traffic");
        return v;
    }

    std::unique_ptr<PipelineAccounting>
    makePipelineAccounting(const PipelineBuildContext &ctx) const override
    {
        RegDemConfig rc;
        rc.entries = ctx.cfg->entries;
        return makeRegDemAccounting(*ctx.kernel, rc, ctx.decode,
                                    *ctx.counts);
    }
};

/** GREENER power-gated MRF banks: baseline traffic, scaled energy. */
class GreenerScheme : public SchemeBackend
{
  public:
    SchemeSimResult
    simulate(const SchemeRunContext &ctx) const override
    {
        SchemeSimResult r;
        r.counts = *ctx.baseline;
        return r;
    }

    double
    accountEnergyPJ(const SchemeRunContext &ctx, const AccessCounts &c,
                    const EnergyModel &em) const override
    {
        return greenerEnergyPJ(c, em,
                               greenerActiveBanks(*ctx.kernel));
    }

    std::vector<std::string>
    checkConservation(const AccessCounts &c,
                      const AccessCounts &baseline) const override
    {
        // Power gating changes no dynamic behaviour at all: the
        // counts must be the flat baseline's, field for field.
        std::vector<std::string> v;
        for (int l = 0; l < 3; l++)
            for (int d = 0; d < 2; d++)
                if (c.reads[l][d] != baseline.reads[l][d] ||
                    c.writes[l][d] != baseline.writes[l][d]) {
                    v.push_back("gated-bank counts differ from the "
                                "flat baseline");
                    return v;
                }
        if (c.wbReads != baseline.wbReads ||
            c.wbWrites != baseline.wbWrites ||
            c.instructions != baseline.instructions ||
            c.deschedules != baseline.deschedules)
            v.push_back("gated-bank counts differ from the flat "
                        "baseline");
        return v;
    }

    std::unique_ptr<PipelineAccounting>
    makePipelineAccounting(const PipelineBuildContext &ctx) const override
    {
        // Power gating changes no traffic: flat accounting, with the
        // gated banks priced by accountEnergyPJ as usual.
        return makeFlatAccounting(*ctx.kernel, ctx.decode, *ctx.counts);
    }
};

SchemeCaps
paperBaselineCaps()
{
    SchemeCaps c;
    c.usesAnalyses = false;
    c.usesTrace = false;
    c.sweepsEntries = false;
    c.pipelined = true;
    return c;
}

SchemeCaps
hwCaps()
{
    SchemeCaps c;
    c.wantsDecode = true;
    c.hwManaged = true;
    c.pipelined = true;
    return c;
}

SchemeCaps
swCaps()
{
    SchemeCaps c;
    c.usesAllocator = true;
    c.hasSimt = true;
    c.pipelined = true;
    return c;
}

SchemeSpec
spec(std::string token, std::string display, std::string tag,
     std::string summary, bool paper, SchemeCaps caps)
{
    SchemeSpec s;
    s.token = std::move(token);
    s.display = std::move(display);
    s.tag = std::move(tag);
    s.summary = std::move(summary);
    s.paper = paper;
    s.caps = caps;
    return s;
}

} // namespace

void
registerBuiltinSchemes(SchemeRegistry &registry)
{
    // The paper's five organisations first, in the fixed order that
    // assigns the historic ids of the Scheme constants (0..4).
    registry.add(spec("baseline", "Baseline", "base",
                      "flat single-level MRF (the paper's baseline)",
                      true, paperBaselineCaps()),
                 std::make_unique<BaselineScheme>());
    registry.add(
        spec("hw2", "HW", "hw2",
             "hardware-managed RFC + MRF (Section 2.2)", true,
             hwCaps()),
        std::make_unique<HwCacheScheme>(/*threeLevel=*/false));
    registry.add(
        spec("hw3", "HW LRF", "hw3",
             "hardware-managed LRF + RFC + MRF (Section 6.2)", true,
             hwCaps()),
        std::make_unique<HwCacheScheme>(/*threeLevel=*/true));
    registry.add(
        spec("sw2", "SW", "sw2",
             "compiler-managed ORF + MRF (Section 3.1)", true,
             swCaps()),
        std::make_unique<SwHierarchyScheme>(/*threeLevel=*/false));
    registry.add(
        spec("sw3", "SW LRF", "sw3",
             "compiler-managed LRF + ORF + MRF (Section 3.2)", true,
             swCaps()),
        std::make_unique<SwHierarchyScheme>(/*threeLevel=*/true));

    // Competing designs from the literature (PAPERS.md).
    {
        SchemeCaps c = hwCaps();
        registry.add(
            spec("ccrfc", "CC RFC", "ccrfc",
                 "compiler-assisted RF cache with allocation and "
                 "last-read hints (arXiv:2310.17501)",
                 false, c),
            std::make_unique<CcRfcScheme>());
    }
    {
        SchemeCaps c;
        c.usesAnalyses = false;
        c.wantsDecode = true;
        c.pipelined = true;
        registry.add(
            spec("regdem", "RegDem", "regdem",
                 "register demotion to shared-memory spill space "
                 "(arXiv:1907.02894)",
                 false, c),
            std::make_unique<RegDemScheme>());
    }
    {
        SchemeCaps c;
        c.usesAnalyses = false;
        c.usesTrace = false;
        c.sweepsEntries = false;
        c.pipelined = true;
        registry.add(
            spec("greener", "GREENER", "greener",
                 "power-gated MRF banks: baseline traffic, "
                 "footprint-scaled array energy",
                 false, c),
            std::make_unique<GreenerScheme>());
    }
}

} // namespace rfh
