#include "sim/cc_rfc.h"

#include <optional>

#include "core/metrics.h"
#include "ir/liveness.h"
#include "sim/machine.h"
#include "sim/pipeline_account.h"
#include "sim/replay_arena.h"
#include "sim/rfc_ring.h"
#include "sim/trace.h"

namespace rfh {

namespace {

/**
 * Hierarchy state + access accounting of one warp under the
 * compiler-assisted RFC. The direct executor drives it from the
 * functional machine; the replay executor drives it from a
 * pre-decoded trace. Both feed the same onInstr(), so their counts
 * are identical by construction: everything value-dependent is folded
 * into the @c enabled input, and the compile-time hints are a pure
 * function of the static kernel.
 */
class CcWarpSim
{
  public:
    CcWarpSim(const ReplayDecode &dec, const CcRfcConfig &cfg,
              const Liveness &liveness,
              const std::vector<std::uint8_t> &insertHint,
              AccessCounts &counts, ReplayArena &arena)
        : dec_(dec), liveness_(liveness), insertHint_(insertHint),
          counts_(counts), rfc_(cfg.entries, arena)
    {
    }

    /** Reset the hierarchy for a fresh warp. */
    void
    beginWarp()
    {
        rfc_.clear();
        pending_.reset();
    }

    /**
     * Account one dynamic instruction. @p enabled is the predicate
     * outcome at issue.
     */
    void
    onInstr(int lin, bool enabled)
    {
        const ReplayOp &o = dec_.op[lin];
        const Datapath dp = static_cast<Datapath>(o.dp);

        // Two-level scheduler: deschedule on a dependence on an
        // outstanding long-latency operation.
        if ((dec_.touched[lin] & pending_).any()) {
            RegSet live_before =
                (liveness_.liveAfter(lin) & ~dec_.defined[lin]) |
                dec_.used[lin];
            flushAll(live_before);
            pending_.reset();
            counts_.deschedules++;
        }

        // Operand reads: RFC -> MRF. Last-read erasure is applied
        // after every operand of the instruction has been fetched, so
        // a register named twice is served at one level both times;
        // the erase frees the slot early and ensures a dead value
        // never reaches the eviction writeback path.
        auto read_one = [&](Reg r) {
            const bool hit = rfc_.contains(r);
            counts_.read(hit ? Level::ORF : Level::MRF, dp);
            if (plan_) {
                if (hit)
                    plan_->numBypass++;
                else
                    plan_->mrfReg[plan_->numMrf++] = r;
            }
        };
        for (int s = 0; s < o.nsrc; s++)
            read_one(o.src[s]);
        if (o.pred >= 0)
            read_one(static_cast<Reg>(o.pred));
        auto erase_dead = [&](Reg r) {
            if (rfc_.contains(r) && !liveness_.liveAfter(lin, r))
                rfc_.erase(r);
        };
        for (int s = 0; s < o.nsrc; s++)
            erase_dead(o.src[s]);
        if (o.pred >= 0)
            erase_dead(static_cast<Reg>(o.pred));

        // Result write (suppressed when predicated off).
        if (o.dst >= 0 && enabled) {
            const Reg dst = static_cast<Reg>(o.dst);
            const int halves = o.halves;
            if (o.flags & kOpLongLat) {
                // Long-latency results bypass the hierarchy.
                counts_.write(Level::MRF, dp, halves);
                for (int h = 0; h < halves; h++)
                    rfc_.erase(static_cast<Reg>(dst + h));
                pending_ |= dec_.defined[lin];
            } else if (insertHint_[lin]) {
                // Allocation hint: a nearby read exists, cache it.
                Reg victim = 0;
                if (rfc_.insert(dst, victim)) {
                    if (liveness_.liveAfter(lin, victim)) {
                        counts_.read(Level::ORF, dp);
                        counts_.wbReads++;
                        counts_.write(Level::MRF, dp);
                        counts_.wbWrites++;
                    }
                }
                counts_.write(Level::ORF, dp);
            } else {
                // Bypass: straight to the MRF; drop any stale copy.
                counts_.write(Level::MRF, dp, halves);
                for (int h = 0; h < halves; h++)
                    rfc_.erase(static_cast<Reg>(dst + h));
            }
        }

        counts_.instructions++;
    }

    /**
     * Capture the operand sourcing of subsequent onInstr() calls into
     * @p plan (MRF reads vs RFC bypasses); null to stop. Timing-only:
     * the captured plan never feeds the counters.
     */
    void
    setPlan(OperandPlan *plan)
    {
        plan_ = plan;
    }

  private:
    /** Flush everything live back to the MRF (deschedule). */
    void
    flushAll(const RegSet &live)
    {
        rfc_.forEach([&](Reg r) {
            if (live.test(r)) {
                counts_.read(Level::ORF, Datapath::PRIVATE);
                counts_.wbReads++;
                counts_.write(Level::MRF, Datapath::PRIVATE);
                counts_.wbWrites++;
            }
        });
        rfc_.clear();
    }

    const ReplayDecode &dec_;
    const Liveness &liveness_;
    const std::vector<std::uint8_t> &insertHint_;
    AccessCounts &counts_;
    RfcRing rfc_;
    RegSet pending_;
    OperandPlan *plan_ = nullptr;
};

/** Pipeline adapter: one CcWarpSim driven at issue. */
class CcWarpAccountant final : public WarpAccountant
{
  public:
    CcWarpAccountant(const ReplayDecode &dec, const CcRfcConfig &cfg,
                     const Liveness &liveness,
                     const std::vector<std::uint8_t> &hints,
                     AccessCounts &counts, ReplayArena &arena)
        : sim_(dec, cfg, liveness, hints, counts, arena)
    {
        sim_.beginWarp();
    }

    void
    onIssue(int lin, bool enabled, bool /*taken*/,
            std::int32_t /*nextLin*/, OperandPlan &plan) override
    {
        sim_.setPlan(&plan);
        sim_.onInstr(lin, enabled);
        sim_.setPlan(nullptr);
    }

  private:
    CcWarpSim sim_;
};

/** Pipeline accounting factory for the compiler-assisted RFC. */
class CcAccounting final : public PipelineAccounting
{
  public:
    CcAccounting(const Kernel &k, const CcRfcConfig &cfg,
                 const AnalysisBundle *analyses, const ReplayDecode *dec,
                 AccessCounts &counts)
        : cfg_(cfg), counts_(counts),
          hints_(ccRfcAllocationHints(k, cfg.entries))
    {
        analyses_ = analyses ? analyses : &localAnalyses_.emplace(k);
        dec_ = dec ? dec : &localDec_.emplace(k);
    }

    std::unique_ptr<WarpAccountant>
    makeWarp(int /*warp*/) override
    {
        return std::make_unique<CcWarpAccountant>(
            *dec_, cfg_, analyses_->liveness, hints_, counts_, arena_);
    }

  private:
    CcRfcConfig cfg_;
    AccessCounts &counts_;
    std::vector<std::uint8_t> hints_;
    std::optional<AnalysisBundle> localAnalyses_;
    std::optional<ReplayDecode> localDec_;
    const AnalysisBundle *analyses_;
    const ReplayDecode *dec_;
    // Private arena: warp accountants outlive any tick of the
    // thread-local replay arena, which other code resets freely.
    ReplayArena arena_;
};

/** Compiler-assisted-RFC observability, fed by both drivers. */
void
noteCcRun(const AccessCounts &counts, bool replay)
{
    static Counter &runs = globalMetrics().counter("sim.ccrfc.runs");
    static Counter &replays =
        globalMetrics().counter("sim.ccrfc.runs.replay");
    static Counter &instrs =
        globalMetrics().counter("sim.ccrfc.instrs");
    runs.add();
    if (replay)
        replays.add();
    instrs.add(counts.instructions);
}

const ReplayDecode &
resolveDecode(const Kernel &k, const ReplayDecode *dec,
              std::optional<ReplayDecode> &local)
{
    // Any decode works here: the compiler-assisted RFC never reads
    // the kOpLrfAble flag, so shared-consumer info is not required.
    if (dec)
        return *dec;
    return local.emplace(k);
}

} // namespace

int
ccRfcHintWindow(int entries)
{
    return 8 + 4 * entries;
}

std::vector<std::uint8_t>
ccRfcAllocationHints(const Kernel &k, int entries)
{
    const int n = k.numInstrs();
    const int window = ccRfcHintWindow(entries);
    std::vector<std::uint8_t> hint(static_cast<std::size_t>(n), 0);
    for (int lin = 0; lin < n; lin++) {
        const Instruction &in = k.instr(lin);
        if (!in.dst || in.wide || in.longLatency())
            continue;
        const Reg r = *in.dst;
        // Scan forward in layout order for a read of r before it is
        // redefined. Layout distance is the compiler's static stand-in
        // for dynamic distance — the same approximation a real
        // compiler pass would make without a profile.
        for (int j = lin + 1; j < n && j <= lin + window; j++) {
            const Instruction &next = k.instr(j);
            bool reads = false;
            for (int s = 0; s < next.numSrcs; s++)
                if (next.srcs[s].isReg && next.srcs[s].reg == r)
                    reads = true;
            if (next.pred && *next.pred == r)
                reads = true;
            if (reads) {
                hint[static_cast<std::size_t>(lin)] = 1;
                break;
            }
            if (next.dst) {
                const int halves = next.wide ? 2 : 1;
                bool redefined = false;
                for (int h = 0; h < halves; h++)
                    if (static_cast<Reg>(*next.dst + h) == r)
                        redefined = true;
                if (redefined)
                    break;
            }
        }
    }
    return hint;
}

AccessCounts
runCcRfc(const Kernel &k, const CcRfcConfig &cfg,
         const AnalysisBundle *analyses, const ReplayDecode *dec)
{
    std::optional<AnalysisBundle> local;
    if (!analyses)
        analyses = &local.emplace(k);
    std::optional<ReplayDecode> localDec;
    const ReplayDecode &d = resolveDecode(k, dec, localDec);
    const std::vector<std::uint8_t> hints =
        ccRfcAllocationHints(k, cfg.entries);

    ReplayArena &arena = acquireThreadReplayArena();
    AccessCounts counts;
    CcWarpSim sim(d, cfg, analyses->liveness, hints, counts, arena);
    for (int w = 0; w < cfg.run.numWarps; w++) {
        WarpContext warp;
        warp.reset(static_cast<std::uint32_t>(w));
        sim.beginWarp();
        std::uint64_t executed = 0;
        while (!warp.done && executed < cfg.run.maxInstrsPerWarp) {
            int lin = warp.pc(k);
            const Instruction &in = k.instr(lin);
            bool enabled = !in.pred || warp.regs[*in.pred] != 0;
            step(k, warp);
            executed++;
            sim.onInstr(lin, enabled);
        }
    }
    noteCcRun(counts, /*replay=*/false);
    return counts;
}

AccessCounts
replayCcRfc(const Kernel &k, const CcRfcConfig &cfg,
            const DecodedTrace &trace, const AnalysisBundle *analyses,
            const ReplayDecode *dec)
{
    std::optional<AnalysisBundle> local;
    if (!analyses)
        analyses = &local.emplace(k);
    std::optional<ReplayDecode> localDec;
    const ReplayDecode &d = resolveDecode(k, dec, localDec);
    const std::vector<std::uint8_t> hints =
        ccRfcAllocationHints(k, cfg.entries);

    ReplayArena &arena = acquireThreadReplayArena();
    AccessCounts counts;
    CcWarpSim sim(d, cfg, analyses->liveness, hints, counts, arena);
    for (int w = 0; w < trace.numWarps(); w++) {
        sim.beginWarp();
        for (std::uint32_t t = trace.warpBegin[w];
             t < trace.warpBegin[w + 1]; t++) {
            int lin = trace.lin[t];
            sim.onInstr(lin, trace.flags[t] & kReplayExecuted);
        }
    }
    noteCcRun(counts, /*replay=*/true);
    return counts;
}

std::unique_ptr<PipelineAccounting>
makeCcRfcAccounting(const Kernel &k, const CcRfcConfig &cfg,
                    const AnalysisBundle *analyses,
                    const ReplayDecode *dec, AccessCounts &counts)
{
    return std::make_unique<CcAccounting>(k, cfg, analyses, dec, counts);
}

} // namespace rfh
