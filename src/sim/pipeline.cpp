#include "sim/pipeline.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <vector>

#include "sim/port.h"
#include "sim/tick.h"
#include "sim/trace.h"

namespace rfh {

std::string_view
schedPolicyName(SchedPolicy p)
{
    switch (p) {
      case SchedPolicy::FLAT_RR: return "flat";
      case SchedPolicy::TWO_LEVEL: return "two-level";
      case SchedPolicy::GTO: return "gto";
    }
    return "?";
}

bool
parseSchedPolicy(std::string_view token, SchedPolicy &out)
{
    if (token == "flat" || token == "rr") {
        out = SchedPolicy::FLAT_RR;
    } else if (token == "two-level" || token == "twolevel") {
        out = SchedPolicy::TWO_LEVEL;
    } else if (token == "gto") {
        out = SchedPolicy::GTO;
    } else {
        return false;
    }
    return true;
}

namespace {

constexpr std::uint64_t kNoEvent =
    std::numeric_limits<std::uint64_t>::max();

/** Issue latency of one static instruction (old perf-model table). */
int
latencyOf(const Instruction &in, const PipelineConfig &cfg)
{
    switch (in.op) {
      case Opcode::LD_GLOBAL: return cfg.dramLatency;
      case Opcode::TEX: return cfg.texLatency;
      case Opcode::LD_SHARED: return cfg.sharedMemLatency;
      case Opcode::LD_PARAM: return cfg.sharedMemLatency;
      case Opcode::ST_GLOBAL:
      case Opcode::ST_SHARED: return 1;
      case Opcode::BRA:
      case Opcode::EXIT: return 1;
      case Opcode::BAR: return 1;
      default:
        return isSharedUnit(in.unit()) ? cfg.sfuLatency
                                       : cfg.aluLatency;
    }
}

/** One issued instruction on its way to the operand collector. */
struct IssueSlot
{
    int warp = 0;
    int lat = 1;
    /** Destination registers to release at writeback. */
    RegSet dst;
    /** MRF bank of each collector-fetched operand. */
    std::array<int, kMaxSrcs + 1> bank{};
    int nbank = 0;
};

/** One instruction occupying a latency pipe. */
struct ExecOp
{
    int warp = 0;
    RegSet dst;
    std::uint64_t done = 0;
};

/** Per-warp scheduler state. */
struct WarpState
{
    std::uint32_t cursor = 0;  ///< Next flat record index.
    std::uint32_t end = 0;     ///< One past the warp's last record.
    /** Registers with an outstanding (unwritten) result. */
    RegSet pending;
    /** Subset of @c pending produced by long-latency ops. */
    RegSet longPending;
    std::uint64_t activatedAt = 0;
    std::uint64_t lastIssue = 0;
    std::unique_ptr<WarpAccountant> acct;

    bool
    doneIssuing() const
    {
        return cursor >= end;
    }
};

/**
 * Occupancy-tracked latency pipes: absorbs dispatched ops, holds them
 * for their latency, hands completions to writeback.
 */
class ExecStage final : public Ticked
{
  public:
    ExecStage(Port<ExecOp> &in, Port<ExecOp> &out) : in_(in), out_(out) {}

    bool
    tick(std::uint64_t now) override
    {
        bool progress = false;
        while (!in_.empty()) {
            inflight_.push_back(in_.front());
            in_.pop();
            progress = true;
        }
        for (std::size_t i = 0; i < inflight_.size();) {
            if (inflight_[i].done <= now) {
                out_.push(inflight_[i]);
                inflight_[i] = inflight_.back();
                inflight_.pop_back();
                progress = true;
            } else {
                i++;
            }
        }
        return progress;
    }

    bool
    empty() const
    {
        return inflight_.empty() && in_.empty();
    }

    /**
     * Earliest in-flight completion time, or kNoEvent. Ops still in
     * the input port are absorbed on the next tick, so they count as
     * an event at @p now + 1.
     */
    std::uint64_t
    nextDoneAt(std::uint64_t now) const
    {
        std::uint64_t t = kNoEvent;
        for (const ExecOp &op : inflight_)
            t = std::min(t, op.done);
        if (!in_.empty())
            t = std::min(t, now + 1);
        return t;
    }

  private:
    Port<ExecOp> &in_;
    Port<ExecOp> &out_;
    std::vector<ExecOp> inflight_;
};

/** Releases completed results: clears scoreboard bits. */
class WritebackStage final : public Ticked
{
  public:
    WritebackStage(Port<ExecOp> &in, std::vector<WarpState> &warps)
        : in_(in), warps_(warps)
    {
    }

    bool
    tick(std::uint64_t /*now*/) override
    {
        bool progress = false;
        while (!in_.empty()) {
            const ExecOp &op = in_.front();
            warps_[op.warp].pending &= ~op.dst;
            warps_[op.warp].longPending &= ~op.dst;
            in_.pop();
            retired_++;
            progress = true;
        }
        return progress;
    }

    std::uint64_t
    retired() const
    {
        return retired_;
    }

  private:
    Port<ExecOp> &in_;
    std::vector<WarpState> &warps_;
    std::uint64_t retired_ = 0;
};

/**
 * Operand collector: a small pool of entries, each fetching its
 * instruction's MRF operands across the banked register file — one
 * read per bank per cycle, oldest entry first. Same-bank operands
 * (within or across entries) serialise; bypass operands (LRF/ORF/RFC)
 * never enter the banks, so hierarchy schemes drain entries faster.
 * An entry whose operands are all fetched dispatches to execute the
 * same cycle.
 */
class CollectorStage final : public Ticked
{
  public:
    CollectorStage(Port<IssueSlot> &in, Port<ExecOp> &out,
                   const PipelineConfig &cfg, PipelineStats &stats)
        : in_(in), out_(out), cfg_(cfg), stats_(stats),
          bankBusy_(std::max(1, cfg.banks.numBanks), 0)
    {
    }

    bool
    tick(std::uint64_t now) override
    {
        bool progress = false;
        const std::size_t slots =
            static_cast<std::size_t>(std::max(1, cfg_.collectorSlots));
        while (!in_.empty() && entries_.size() < slots) {
            entries_.push_back(Entry{in_.front(), {}});
            in_.pop();
            progress = true;
        }
        std::fill(bankBusy_.begin(), bankBusy_.end(), 0);
        for (Entry &e : entries_) {
            for (int i = 0; i < e.slot.nbank; i++) {
                if (e.served[static_cast<std::size_t>(i)])
                    continue;
                const int b = e.slot.bank[static_cast<std::size_t>(i)];
                if (!bankBusy_[static_cast<std::size_t>(b)]) {
                    bankBusy_[static_cast<std::size_t>(b)] = 1;
                    e.served[static_cast<std::size_t>(i)] = true;
                    progress = true;
                } else {
                    stats_.bankConflicts++;
                }
            }
        }
        for (std::size_t i = 0; i < entries_.size();) {
            if (entries_[i].complete()) {
                const IssueSlot &s = entries_[i].slot;
                out_.push(ExecOp{s.warp, s.dst,
                                 now + static_cast<std::uint64_t>(s.lat)});
                entries_.erase(entries_.begin() +
                               static_cast<std::ptrdiff_t>(i));
                progress = true;
            } else {
                i++;
            }
        }
        return progress;
    }

    bool
    empty() const
    {
        return entries_.empty() && in_.empty();
    }

  private:
    struct Entry
    {
        IssueSlot slot;
        std::array<bool, kMaxSrcs + 1> served{};

        bool
        complete() const
        {
            for (int i = 0; i < slot.nbank; i++)
                if (!served[static_cast<std::size_t>(i)])
                    return false;
            return true;
        }
    };

    Port<IssueSlot> &in_;
    Port<ExecOp> &out_;
    const PipelineConfig &cfg_;
    PipelineStats &stats_;
    std::vector<std::uint8_t> bankBusy_;
    std::deque<Entry> entries_;
};

/**
 * Fetch/issue with a pluggable warp scheduler. Single-issue: one warp
 * instruction per cycle, picked by policy, gated by the in-order
 * scoreboard, the shared-unit issue port, and collector backpressure.
 */
class IssueStage final : public Ticked
{
  public:
    IssueStage(const DecodedTrace &trace, const ReplayDecode &dec,
               const PipelineConfig &cfg,
               const std::vector<int> &latency,
               std::vector<WarpState> &warps, Port<IssueSlot> &out,
               PipelineStats &stats, std::string &error)
        : trace_(trace), dec_(dec), cfg_(cfg), latency_(latency),
          warps_(warps), out_(out), stats_(stats), error_(error)
    {
        const int n = static_cast<int>(warps_.size());
        int nactive = cfg.policy == SchedPolicy::TWO_LEVEL
            ? std::max(1, cfg.activeWarps)
            : n;
        for (int w = 0; w < n; w++) {
            if (warps_[static_cast<std::size_t>(w)].doneIssuing())
                continue;
            if (static_cast<int>(active_.size()) < nactive)
                active_.push_back(w);
            else
                pendingQ_.push_back(w);
        }
        left_ = static_cast<int>(active_.size() + pendingQ_.size());
    }

    bool
    tick(std::uint64_t now) override
    {
        issuedThis_ = false;
        swappedThis_ = false;
        sawScoreboard_ = sawCollector_ = sawExecBusy_ =
            sawActivation_ = false;
        bool progress = false;
        int blockedLong = -1;

        if (cfg_.policy == SchedPolicy::GTO)
            buildGtoOrder();

        const std::size_t nc = cfg_.policy == SchedPolicy::GTO
            ? gtoOrder_.size()
            : active_.size();
        for (std::size_t i = 0; i < nc && !issuedThis_; i++) {
            const int wid = cfg_.policy == SchedPolicy::GTO
                ? gtoOrder_[i]
                : active_[(rr_ + i) % active_.size()];
            WarpState &w = warps_[static_cast<std::size_t>(wid)];
            if (w.doneIssuing())
                continue;
            if (now < w.activatedAt) {
                sawActivation_ = true;
                continue;
            }
            const int lin = trace_.lin[w.cursor];
            const ReplayOp &o = dec_.op[static_cast<std::size_t>(lin)];
            if ((o.flags & kOpShared) && now < sharedFree_) {
                sawExecBusy_ = true;
                continue;
            }
            const RegSet &touched =
                dec_.touched[static_cast<std::size_t>(lin)];
            if ((touched & w.pending).any()) {
                sawScoreboard_ = true;
                if (blockedLong < 0 && (touched & w.longPending).any())
                    blockedLong = wid;
                continue;
            }
            if (!out_.canPush()) {
                sawCollector_ = true;
                break;  // a full collector port blocks every warp
            }
            issueOne(wid, w, lin, o, now);
            if (!error_.empty())
                return true;
            progress = true;
            if (cfg_.policy != SchedPolicy::GTO)
                rr_ = (rr_ + i + 1) %
                    std::max<std::size_t>(1, active_.size());
            if (w.doneIssuing())
                retire(wid, now);
        }

        // Two-level scheduler: a warp stalled on a long-latency value
        // swaps out for a pending warp (paper Section 5.2).
        if (!issuedThis_ && blockedLong >= 0 && !pendingQ_.empty()) {
            swapOut(blockedLong, now);
            progress = true;
        }
        return progress;
    }

    bool allIssued() const { return left_ == 0; }
    bool issuedThis() const { return issuedThis_; }
    bool swappedThis() const { return swappedThis_; }
    bool sawScoreboard() const { return sawScoreboard_; }
    bool sawCollector() const { return sawCollector_; }
    bool sawExecBusy() const { return sawExecBusy_; }
    bool sawActivation() const { return sawActivation_; }

    /** Shared-port free time, for fast-forward targeting. */
    std::uint64_t
    sharedFree() const
    {
        return sharedFree_;
    }

    /** Earliest pending warp activation after @p now, or kNoEvent. */
    std::uint64_t
    nextActivation(std::uint64_t now) const
    {
        std::uint64_t t = kNoEvent;
        for (int wid : active_) {
            const WarpState &w = warps_[static_cast<std::size_t>(wid)];
            if (!w.doneIssuing() && w.activatedAt > now)
                t = std::min(t, w.activatedAt);
        }
        return t;
    }

  private:
    void
    issueOne(int wid, WarpState &w, int lin, const ReplayOp &o,
             std::uint64_t now)
    {
        OperandPlan plan;
        const std::uint8_t fl = trace_.flags[w.cursor];
        w.acct->onIssue(lin, (fl & kReplayExecuted) != 0,
                        (fl & kReplayBranchTaken) != 0,
                        trace_.nextLin(wid, w.cursor), plan);
        if (!w.acct->error().empty()) {
            error_ = std::string(w.acct->error());
            return;
        }
        IssueSlot s;
        s.warp = wid;
        s.lat = latency_[static_cast<std::size_t>(lin)];
        s.dst = dec_.defined[static_cast<std::size_t>(lin)];
        for (int i = 0; i < plan.numMrf; i++)
            s.bank[static_cast<std::size_t>(s.nbank++)] =
                bankOf(plan.mrfReg[static_cast<std::size_t>(i)], wid,
                       cfg_.banks);
        out_.push(s);
        w.pending |= s.dst;
        if (o.flags & kOpLongLat)
            w.longPending |= s.dst;
        if (o.flags & kOpShared)
            sharedFree_ = now + static_cast<std::uint64_t>(
                                    cfg_.sharedIssueInterval);
        w.cursor++;
        w.lastIssue = now;
        lastWarp_ = wid;
        stats_.issued++;
        issuedThis_ = true;
    }

    /** Remove a finished warp from the active set; promote a pending one. */
    void
    retire(int wid, std::uint64_t now)
    {
        auto it = std::find(active_.begin(), active_.end(), wid);
        if (it != active_.end())
            active_.erase(it);
        left_--;
        if (!pendingQ_.empty()) {
            const int next = pendingQ_.front();
            pendingQ_.pop_front();
            warps_[static_cast<std::size_t>(next)].activatedAt =
                now + static_cast<std::uint64_t>(cfg_.swapPenalty);
            active_.push_back(next);
        }
        rr_ = 0;
    }

    /** Swap a long-latency-blocked warp for a pending one. */
    void
    swapOut(int blocked, std::uint64_t now)
    {
        // Prefer a pending warp whose next instruction is ready.
        std::size_t pick = 0;
        for (std::size_t i = 0; i < pendingQ_.size(); i++) {
            const WarpState &cand =
                warps_[static_cast<std::size_t>(pendingQ_[i])];
            if (cand.doneIssuing())
                continue;
            const int lin = trace_.lin[cand.cursor];
            if ((dec_.touched[static_cast<std::size_t>(lin)] &
                 cand.pending)
                    .none()) {
                pick = i;
                break;
            }
        }
        const int next = pendingQ_[pick];
        pendingQ_.erase(pendingQ_.begin() +
                        static_cast<std::ptrdiff_t>(pick));
        auto it = std::find(active_.begin(), active_.end(), blocked);
        if (it != active_.end())
            active_.erase(it);
        pendingQ_.push_back(blocked);
        warps_[static_cast<std::size_t>(next)].activatedAt =
            now + static_cast<std::uint64_t>(cfg_.swapPenalty);
        active_.push_back(next);
        stats_.swaps++;
        swappedThis_ = true;
        rr_ = 0;
    }

    /** Greedy-then-oldest priority: last issuer first, then LRU. */
    void
    buildGtoOrder()
    {
        gtoOrder_.clear();
        for (int wid : active_)
            if (!warps_[static_cast<std::size_t>(wid)].doneIssuing())
                gtoOrder_.push_back(wid);
        std::stable_sort(
            gtoOrder_.begin(), gtoOrder_.end(), [this](int a, int b) {
                const WarpState &wa = warps_[static_cast<std::size_t>(a)];
                const WarpState &wb = warps_[static_cast<std::size_t>(b)];
                if ((a == lastWarp_) != (b == lastWarp_))
                    return a == lastWarp_;
                if (wa.lastIssue != wb.lastIssue)
                    return wa.lastIssue < wb.lastIssue;
                return a < b;
            });
    }

    const DecodedTrace &trace_;
    const ReplayDecode &dec_;
    const PipelineConfig &cfg_;
    const std::vector<int> &latency_;
    std::vector<WarpState> &warps_;
    Port<IssueSlot> &out_;
    PipelineStats &stats_;
    std::string &error_;

    std::deque<int> active_;
    std::deque<int> pendingQ_;
    std::vector<int> gtoOrder_;
    std::size_t rr_ = 0;
    std::uint64_t sharedFree_ = 0;
    int left_ = 0;
    int lastWarp_ = -1;

    bool issuedThis_ = false;
    bool swappedThis_ = false;
    bool sawScoreboard_ = false;
    bool sawCollector_ = false;
    bool sawExecBusy_ = false;
    bool sawActivation_ = false;
};

} // namespace

PipelineResult
runPipeline(const DecodedTrace &trace, const ReplayDecode &dec,
            PipelineAccounting &acct, const PipelineConfig &cfg)
{
    PipelineResult result;
    const int n = trace.numWarps();

    // Static latency table, one lookup per issue.
    std::vector<int> latency(dec.instr.size(), 1);
    for (std::size_t i = 0; i < dec.instr.size(); i++)
        latency[i] = latencyOf(dec.instr[i], cfg);

    std::vector<WarpState> warps(static_cast<std::size_t>(n));
    for (int w = 0; w < n; w++) {
        WarpState &s = warps[static_cast<std::size_t>(w)];
        s.cursor = trace.warpBegin[static_cast<std::size_t>(w)];
        s.end = trace.warpBegin[static_cast<std::size_t>(w) + 1];
        s.acct = acct.makeWarp(w);
    }

    Port<IssueSlot> toCollector(1);
    Port<ExecOp> toExec;
    Port<ExecOp> toWriteback;

    ExecStage exec(toExec, toWriteback);
    WritebackStage writeback(toWriteback, warps);
    CollectorStage collector(toCollector, toExec, cfg, result.stats);
    IssueStage issue(trace, dec, cfg, latency, warps, toCollector,
                     result.stats, result.error);

    // Consumers before producers along the dataflow, except writeback
    // directly after execute so a completing value unblocks a
    // dependent issue in the same cycle (result forwarding).
    TickSchedule sched;
    sched.add(&exec);
    sched.add(&writeback);
    sched.add(&collector);
    sched.add(&issue);

    auto finished = [&] {
        return issue.allIssued() && collector.empty() && exec.empty() &&
            toCollector.empty() && toWriteback.empty();
    };

    std::uint64_t now = 0;
    while (!finished() && now < cfg.maxCycles) {
        const bool progress = sched.tick(now);
        if (!result.error.empty())
            break;

        // Attribute an unused issue slot to its dominant cause.
        std::uint64_t *stall = nullptr;
        if (!issue.issuedThis()) {
            PipelineStalls &st = result.stats.stalls;
            if (issue.swappedThis())
                stall = &st.swap;
            else if (issue.sawScoreboard())
                stall = &st.scoreboard;
            else if (issue.sawCollector())
                stall = &st.collector;
            else if (issue.sawExecBusy())
                stall = &st.execBusy;
            else if (issue.sawActivation())
                stall = &st.swap;
            else
                stall = &st.drain;
            (*stall)++;
        }

        if (progress) {
            now++;
            continue;
        }

        // Idle span: nothing can change until the next scheduled
        // event. Jump there, attributing the skipped cycles to the
        // same cause — cycle counts match the naive one-at-a-time
        // loop exactly.
        std::uint64_t next = exec.nextDoneAt(now);
        next = std::min(next, issue.nextActivation(now));
        if (issue.sawExecBusy() && issue.sharedFree() > now)
            next = std::min(next, issue.sharedFree());
        if (next == kNoEvent) {
            result.error = "pipeline deadlock: no issue, no progress, "
                           "and no scheduled event";
            break;
        }
        next = std::max(next, now + 1);
        if (next > cfg.maxCycles)
            next = cfg.maxCycles;
        if (stall != nullptr)
            *stall += next - now - 1;
        now = next;
    }

    result.stats.cycles = now;
    return result;
}

} // namespace rfh
