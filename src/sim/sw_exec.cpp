#include "sim/sw_exec.h"

#include <array>
#include <optional>
#include <sstream>

#include "compiler/strand.h"
#include "core/metrics.h"
#include "ir/liveness.h"
#include "sim/machine.h"
#include "sim/pipeline_account.h"
#include "sim/replay_arena.h"
#include "sim/replay_kernels.h"
#include "sim/trace.h"

namespace rfh {

namespace {

/** One physical upper-level entry of a warp. */
struct Slot
{
    bool valid = false;
    Reg reg = 0;
    std::uint32_t value = 0;
};

/** Software-scheme observability, fed by both execution drivers. */
void
noteSwRun(const SwExecResult &result, bool replay)
{
    static Counter &runs = globalMetrics().counter("sim.sw.runs");
    static Counter &replays =
        globalMetrics().counter("sim.sw.runs.replay");
    static Counter &instrs = globalMetrics().counter("sim.sw.instrs");
    static Counter &deschedules =
        globalMetrics().counter("sim.sw.deschedules");
    static Counter &failures =
        globalMetrics().counter("sim.sw.verifyFailures");
    runs.add();
    if (replay)
        replays.add();
    instrs.add(result.counts.instructions);
    deschedules.add(result.counts.deschedules);
    if (!result.ok())
        failures.add();
}

} // namespace

SwExecResult
runSwHierarchy(const Kernel &k, const AllocOptions &opts,
               const SwExecConfig &cfg, const AnalysisBundle *analyses)
{
    SwExecResult result;
    AccessCounts &counts = result.counts;
    int lrf_banks = opts.useLRF ? (opts.splitLRF ? 3 : 1) : 0;

    // Recompute the strand partition to detect dynamic strand
    // crossings (ORF/LRF invalidation points). The CFG is structural,
    // so a shared precomputed one is equivalent.
    std::optional<Cfg> localCfg;
    const Cfg &cfg_graph = analyses ? analyses->cfg : localCfg.emplace(k);
    StrandAnalysis strands(k, cfg_graph, opts.strandOptions);

    auto fail = [&](int lin, const std::string &msg) {
        std::ostringstream os;
        os << k.name << " @lin " << lin << ": " << msg;
        result.error = os.str();
    };

    // Read-operand deposits happen in the write phase, after every
    // source of an instruction has been fetched. Hoisted out of the
    // hot loop so the per-instruction cost is a clear(), not a heap
    // allocation.
    std::vector<std::pair<int, Reg>> deposits;
    deposits.reserve(kMaxSrcs + 1);

    for (int w = 0; w < cfg.run.numWarps && result.ok(); w++) {
        WarpContext warp;
        warp.reset(static_cast<std::uint32_t>(w));

        // Shadow of the values that actually reached the MRF.
        std::array<std::uint32_t, kMaxRegs> mrf = warp.regs;
        std::vector<Slot> orf(opts.orfEntries);
        std::vector<Slot> lrf(lrf_banks);
        RegSet pending;
        std::uint64_t executed = 0;

        while (!warp.done && executed < cfg.run.maxInstrsPerWarp &&
               result.ok()) {
            int lin = warp.pc(k);
            const Instruction &in = k.instr(lin);
            Datapath dp = datapathOf(in.unit());
            bool shared = isSharedUnit(in.unit());

            // A well-formed strand never stalls mid-strand: any use of
            // an outstanding long-latency value must sit right after an
            // end-of-strand marker.
            RegSet touched = usedRegs(in) | definedRegs(in);
            if ((touched & pending).any()) {
                if (cfg.idealNoFlush) {
                    // Warp deschedules; entries persist (Section 7).
                    counts.deschedules++;
                    pending.reset();
                } else {
                    fail(lin, "instruction touches an outstanding "
                         "long-latency register inside a strand");
                    break;
                }
            }

            // ---- Operand reads ----
            deposits.clear();
            auto read_one = [&](Reg r, const ReadAnnotation &ra) {
                std::uint32_t arch = warp.regs[r];
                switch (ra.level) {
                  case Level::MRF:
                    counts.read(Level::MRF, dp);
                    if (mrf[r] != arch) {
                        fail(lin, "MRF read of R" + std::to_string(r) +
                             " returns a stale value");
                        return;
                    }
                    if (ra.depositToORF) {
                        deposits.emplace_back(ra.entry, r);
                        counts.write(Level::ORF, dp);
                    }
                    break;
                  case Level::ORF: {
                    const Slot &s = orf[ra.entry];
                    counts.read(Level::ORF, dp);
                    if (!s.valid || s.reg != r || s.value != arch) {
                        fail(lin, "ORF entry " +
                             std::to_string(ra.entry) +
                             " does not hold R" + std::to_string(r) +
                             " (valid=" + std::to_string(s.valid) +
                             " reg=R" + std::to_string(s.reg) +
                             " value=" + std::to_string(s.value) +
                             " arch=" + std::to_string(arch) + ")");
                    }
                    break;
                  }
                  case Level::LRF: {
                    if (shared) {
                        fail(lin, "shared-datapath LRF read");
                        return;
                    }
                    if (ra.lrfBank >= lrf.size()) {
                        fail(lin, "LRF bank out of range");
                        return;
                    }
                    const Slot &s = lrf[ra.lrfBank];
                    counts.read(Level::LRF, dp);
                    if (!s.valid || s.reg != r || s.value != arch) {
                        fail(lin, "LRF bank " +
                             std::to_string(ra.lrfBank) +
                             " does not hold R" + std::to_string(r));
                    }
                    break;
                  }
                }
            };
            for (int s = 0; s < in.numSrcs && result.ok(); s++)
                if (in.srcs[s].isReg)
                    read_one(in.srcs[s].reg, in.readAnno[s]);
            if (in.pred && result.ok())
                read_one(*in.pred, in.predAnno);
            if (!result.ok())
                break;
            for (auto [entry, r] : deposits) {
                Slot &s = orf[entry];
                s.valid = true;
                s.reg = r;
                s.value = warp.regs[r];
            }

            // ---- Execute ----
            bool enabled = !in.pred || warp.regs[*in.pred] != 0;
            counts.instructions++;
            step(k, warp);
            executed++;

            // ---- Result writes (suppressed when predicated off) ----
            if (in.dst && enabled) {
                const WriteAnnotation &wa = in.writeAnno;
                int halves = in.wide ? 2 : 1;
                if (in.longLatency() && wa.anyUpper() &&
                    !cfg.idealNoFlush) {
                    fail(lin, "long-latency result annotated to an "
                         "upper level");
                    break;
                }
                if (wa.toLRF) {
                    if (in.wide || lrf.empty()) {
                        fail(lin, "invalid LRF write annotation");
                        break;
                    }
                    Slot &s = lrf[wa.lrfBank];
                    s.valid = true;
                    s.reg = *in.dst;
                    s.value = warp.regs[*in.dst];
                    counts.write(Level::LRF, dp);
                }
                if (wa.toORF) {
                    for (int h = 0; h < halves; h++) {
                        if (wa.orfEntry + h >=
                            static_cast<int>(orf.size())) {
                            fail(lin, "ORF entry out of range");
                            break;
                        }
                        Slot &s = orf[wa.orfEntry + h];
                        s.valid = true;
                        s.reg = static_cast<Reg>(*in.dst + h);
                        s.value = warp.regs[*in.dst + h];
                        counts.write(Level::ORF, dp);
                    }
                }
                if (wa.toLRF && wa.toORF) {
                    fail(lin, "value written to both LRF and ORF");
                    break;
                }
                if (wa.toMRF) {
                    for (int h = 0; h < halves; h++) {
                        mrf[*in.dst + h] = warp.regs[*in.dst + h];
                        counts.write(Level::MRF, dp);
                    }
                }
                if (in.longLatency())
                    pending |= definedRegs(in);
            }

            // ---- Strand boundary ----
            // Control passing into a different strand — or re-entering
            // the current strand through a backward edge — invalidates
            // the upper levels and deschedules the warp if a
            // long-latency operation is outstanding.
            bool crossing = false;
            if (!warp.done && !cfg.idealNoFlush) {
                int next = warp.pc(k);
                crossing = strands.strandOf(next) != strands.strandOf(lin)
                    || (next <= lin &&
                        opts.strandOptions.cutAtBackwardBranch);
            }
            if (crossing) {
                if (pending.any()) {
                    counts.deschedules++;
                    pending.reset();
                }
                for (auto &s : orf)
                    s.valid = false;
                for (auto &s : lrf)
                    s.valid = false;
            }
        }

    }
    noteSwRun(result, /*replay=*/false);
    return result;
}

namespace {

/**
 * Per-record counting deltas of one static instruction under its
 * current annotations: reads happen on every dynamic record (operands
 * are fetched before the predicate squashes the instruction), writes
 * only on executed records with a destination. All deltas land on the
 * instruction's own datapath.
 */
struct SwLinCost
{
    std::uint8_t reads[3] = {0, 0, 0};  ///< Per level.
    std::uint8_t depositWrites = 0;     ///< ORF writes from deposits.
    std::uint8_t wLRF = 0, wORF = 0, wMRF = 0;  ///< Executed-only.
};

/**
 * Scan the annotated kernel once, filling @p cost per instruction and
 * @p touched / @p defined for the deschedule pass. @return false when
 * any instruction could trigger a replay verification failure — the
 * caller must take the slow per-record path, which reproduces the
 * failing run (message, stop point, partial counts) byte-exactly.
 */
bool
scanSwAnnotations(const Kernel &k, const AllocOptions &opts,
                  const SwExecConfig &cfg, SwLinCost *cost,
                  RegSet *touched, RegSet *defined)
{
    const int lrf_banks = opts.useLRF ? (opts.splitLRF ? 3 : 1) : 0;
    const int n = k.numInstrs();
    for (int lin = 0; lin < n; lin++) {
        const Instruction &in = k.instr(lin);
        const bool shared = isSharedUnit(in.unit());
        RegSet def = definedRegs(in);
        defined[lin] = def;
        touched[lin] = usedRegs(in) | def;
        SwLinCost &c = cost[lin];

        auto scan_read = [&](const ReadAnnotation &ra) {
            c.reads[static_cast<int>(ra.level)]++;
            if (ra.level == Level::MRF && ra.depositToORF)
                c.depositWrites++;
            if (ra.level == Level::LRF &&
                (shared ||
                 ra.lrfBank >= static_cast<std::uint8_t>(lrf_banks)))
                return false;
            return true;
        };
        for (int s = 0; s < in.numSrcs; s++)
            if (in.srcs[s].isReg && !scan_read(in.readAnno[s]))
                return false;
        if (in.pred && !scan_read(in.predAnno))
            return false;

        if (in.dst) {
            const WriteAnnotation &wa = in.writeAnno;
            const int halves = in.wide ? 2 : 1;
            if (in.longLatency() && wa.anyUpper() && !cfg.idealNoFlush)
                return false;
            if (wa.toLRF) {
                if (in.wide || lrf_banks == 0 || wa.toORF)
                    return false;
                c.wLRF = 1;
            }
            if (wa.toORF) {
                if (wa.orfEntry + halves > opts.orfEntries)
                    return false;
                c.wORF = static_cast<std::uint8_t>(halves);
            }
            if (wa.toMRF)
                c.wMRF = static_cast<std::uint8_t>(halves);
        }
    }
    return true;
}

/** First set bit of @p words in [@p from, @p end), or @p end. */
std::uint32_t
nextSetBit(const std::vector<std::uint64_t> &words, std::uint32_t from,
           std::uint32_t end)
{
    if (from >= end)
        return end;
    std::uint32_t w = from / 64;
    const std::uint32_t last = (end - 1) / 64;
    std::uint64_t word = words[w] & (~std::uint64_t{0} << (from % 64));
    while (true) {
        if (word) {
            std::uint32_t t = w * 64 + __builtin_ctzll(word);
            return t < end ? t : end;
        }
        if (w == last)
            return end;
        word = words[++w];
    }
}

/**
 * The original per-record replay loop, kept verbatim as the fallback
 * for traces without bit-planes and for runs that can fail
 * verification (so a failing allocation stops at the same record with
 * the same message and the same partial counts as before).
 */
SwExecResult
replaySwHierarchySlow(const Kernel &k, const AllocOptions &opts,
                      const DecodedTrace &trace, const SwExecConfig &cfg,
                      const AnalysisBundle *analyses)
{
    SwExecResult result;
    AccessCounts &counts = result.counts;
    int lrf_banks = opts.useLRF ? (opts.splitLRF ? 3 : 1) : 0;
    const int orf_size = opts.orfEntries;

    std::optional<Cfg> localCfg;
    const Cfg &cfg_graph = analyses ? analyses->cfg : localCfg.emplace(k);
    StrandAnalysis strands(k, cfg_graph, opts.strandOptions);
    ReplayDecode dec(k);

    auto fail = [&](int lin, const std::string &msg) {
        std::ostringstream os;
        os << k.name << " @lin " << lin << ": " << msg;
        result.error = os.str();
    };

    for (int w = 0; w < trace.numWarps() && result.ok(); w++) {
        RegSet pending;
        const std::uint32_t end = trace.warpBegin[w + 1];

        for (std::uint32_t t = trace.warpBegin[w];
             t < end && result.ok(); t++) {
            const int lin = trace.lin[t];
            const Instruction &in = dec.instr[lin];
            const Datapath dp = static_cast<Datapath>(dec.datapath[lin]);
            const bool shared = dec.shared[lin] != 0;

            // Mid-strand touch of an outstanding long-latency value
            // (same structural check as the direct executor; the
            // trace carries the identical dynamic path).
            if ((dec.touched[lin] & pending).any()) {
                if (cfg.idealNoFlush) {
                    counts.deschedules++;
                    pending.reset();
                } else {
                    fail(lin, "instruction touches an outstanding "
                         "long-latency register inside a strand");
                    break;
                }
            }

            // ---- Operand reads: pure level accounting ----
            // Value verification is the direct executor's job; replay
            // keeps only the structural (value-independent) checks so
            // a failing allocation stops at the same instruction.
            auto read_one = [&](const ReadAnnotation &ra) {
                switch (ra.level) {
                  case Level::MRF:
                    counts.read(Level::MRF, dp);
                    if (ra.depositToORF)
                        counts.write(Level::ORF, dp);
                    break;
                  case Level::ORF:
                    counts.read(Level::ORF, dp);
                    break;
                  case Level::LRF:
                    if (shared) {
                        fail(lin, "shared-datapath LRF read");
                        return;
                    }
                    if (ra.lrfBank >=
                        static_cast<std::uint8_t>(lrf_banks)) {
                        fail(lin, "LRF bank out of range");
                        return;
                    }
                    counts.read(Level::LRF, dp);
                    break;
                }
            };
            for (int s = 0; s < in.numSrcs && result.ok(); s++)
                if (in.srcs[s].isReg)
                    read_one(in.readAnno[s]);
            if (in.pred && result.ok())
                read_one(in.predAnno);
            if (!result.ok())
                break;

            // ---- Execute (pre-decoded) ----
            const bool enabled = trace.flags[t] & kReplayExecuted;
            counts.instructions++;

            // ---- Result writes (suppressed when predicated off) ----
            if (in.dst && enabled) {
                const WriteAnnotation &wa = in.writeAnno;
                int halves = in.wide ? 2 : 1;
                if (in.longLatency() && wa.anyUpper() &&
                    !cfg.idealNoFlush) {
                    fail(lin, "long-latency result annotated to an "
                         "upper level");
                    break;
                }
                if (wa.toLRF) {
                    if (in.wide || lrf_banks == 0) {
                        fail(lin, "invalid LRF write annotation");
                        break;
                    }
                    counts.write(Level::LRF, dp);
                }
                if (wa.toORF) {
                    for (int h = 0; h < halves; h++) {
                        if (wa.orfEntry + h >= orf_size) {
                            fail(lin, "ORF entry out of range");
                            break;
                        }
                        counts.write(Level::ORF, dp);
                    }
                }
                if (wa.toLRF && wa.toORF) {
                    fail(lin, "value written to both LRF and ORF");
                    break;
                }
                if (wa.toMRF)
                    counts.write(Level::MRF, dp, halves);
                if (in.longLatency())
                    pending |= dec.defined[lin];
            }

            // ---- Strand boundary ----
            const std::int32_t next = trace.nextLin(w, t);
            bool crossing = false;
            if (next >= 0 && !cfg.idealNoFlush)
                crossing = strands.strandOf(next) != strands.strandOf(lin)
                    || (next <= lin &&
                        opts.strandOptions.cutAtBackwardBranch);
            if (crossing && pending.any()) {
                counts.deschedules++;
                pending.reset();
            }
        }
    }
    return result;
}

} // namespace

SwExecResult
replaySwHierarchy(const Kernel &k, const AllocOptions &opts,
                  const DecodedTrace &trace, const SwExecConfig &cfg,
                  const AnalysisBundle *analyses)
{
    // ---- Fast path: histogram counting + popcount sweeps ----
    // Every count is a sum over dynamic records of a per-instruction
    // delta, so instead of walking the stream doing per-record
    // annotation dispatch, histogram the stream by static instruction
    // and apply each instruction's delta once — byte-identical totals
    // in O(records) trivial work plus O(instrs) finalisation. Only the
    // deschedule count is order-dependent; a dedicated pass handles it
    // by bit-scanning directly between the rare records that can make
    // a long-latency register outstanding.
    const int n = k.numInstrs();
    ReplayArena &arena = acquireThreadReplayArena();
    SwLinCost *cost = arena.allocZeroed<SwLinCost>(n);
    RegSet *touched = arena.alloc<RegSet>(n);
    RegSet *defined = arena.alloc<RegSet>(n);
    if (!trace.hasPlanes() ||
        !scanSwAnnotations(k, opts, cfg, cost, touched, defined)) {
        SwExecResult slow =
            replaySwHierarchySlow(k, opts, trace, cfg, analyses);
        noteSwRun(slow, /*replay=*/true);
        return slow;
    }

    SwExecResult result;
    AccessCounts &counts = result.counts;

    // ---- Deschedule pass ----
    // pending can only become non-empty at an executed long-latency
    // record with a destination (llWords); while it is empty every
    // other record is a no-op for this pass, so skip between set bits.
    // A mid-strand touch of an outstanding register is a verification
    // failure outside the ideal model — delegate the whole run to the
    // slow path so the failure is reproduced byte-exactly.
    std::optional<Cfg> localCfg;
    const Cfg &cfg_graph =
        analyses ? analyses->cfg : localCfg.emplace(k);
    StrandAnalysis strands(k, cfg_graph, opts.strandOptions);
    const bool cut_backward = opts.strandOptions.cutAtBackwardBranch;
    for (int w = 0; w < trace.numWarps(); w++) {
        const std::uint32_t end = trace.warpBegin[w + 1];
        std::uint32_t t = trace.warpBegin[w];
        RegSet pending;
        while (t < end) {
            const bool first_ll = pending.none();
            if (first_ll) {
                t = nextSetBit(trace.llWords, t, end);
                if (t == end)
                    break;
            }
            const int lin = trace.lin[t];
            if (!first_ll && (touched[lin] & pending).any()) {
                if (!cfg.idealNoFlush) {
                    SwExecResult slow = replaySwHierarchySlow(
                        k, opts, trace, cfg, analyses);
                    noteSwRun(slow, /*replay=*/true);
                    return slow;
                }
                counts.deschedules++;
                pending.reset();
            }
            if ((trace.llWords[t / 64] >> (t % 64)) & 1u)
                pending |= defined[lin];
            if (!cfg.idealNoFlush && pending.any()) {
                const std::int32_t next = trace.nextLin(w, t);
                if (next >= 0 &&
                    (strands.strandOf(next) != strands.strandOf(lin) ||
                     (next <= lin && cut_backward))) {
                    counts.deschedules++;
                    pending.reset();
                }
            }
            t++;
        }
    }

    // ---- Access counting: histogram + per-instruction deltas ----
    const std::size_t total = trace.lin.size();
    std::uint32_t *histAll = arena.allocZeroed<std::uint32_t>(n);
    std::uint32_t *histOff = arena.allocZeroed<std::uint32_t>(n);
    histogramRecords(trace.lin.data(), total, histAll);
    if (trace.executedInstrs != total)
        histogramClearBits(trace.execWords.data(), trace.lin.data(),
                           total, histOff);
    for (int lin = 0; lin < n; lin++) {
        const std::uint64_t all = histAll[lin];
        if (all == 0)
            continue;
        const std::uint64_t ex = all - histOff[lin];
        const SwLinCost &c = cost[lin];
        const Datapath dp = datapathOf(k.instr(lin).unit());
        for (int l = 0; l < 3; l++)
            counts.read(static_cast<Level>(l), dp, c.reads[l] * all);
        counts.write(Level::ORF, dp,
                     c.depositWrites * all + c.wORF * ex);
        if (c.wLRF)
            counts.write(Level::LRF, dp, c.wLRF * ex);
        if (c.wMRF)
            counts.write(Level::MRF, dp, c.wMRF * ex);
    }
    counts.instructions = total;
    noteSwRun(result, /*replay=*/true);
    return result;
}

namespace {

/**
 * Pipeline adapter for the software hierarchy: the per-record walk of
 * replaySwHierarchySlow, one warp per accountant, driven at issue.
 * Annotated-MRF operands enter the collector; ORF/LRF operands bypass
 * the banks (the single-cycle upper levels of Section 4). Structural
 * annotation violations surface through error() with the exact message
 * the functional executors produce.
 */
class SwWarpAccountant final : public WarpAccountant
{
  public:
    SwWarpAccountant(const Kernel &k, const ReplayDecode &dec,
                     const AllocOptions &opts, const SwExecConfig &cfg,
                     const StrandAnalysis &strands, AccessCounts &counts)
        : k_(k), dec_(dec), opts_(opts), cfg_(cfg), strands_(strands),
          counts_(counts),
          lrfBanks_(opts.useLRF ? (opts.splitLRF ? 3 : 1) : 0)
    {
    }

    void
    onIssue(int lin, bool enabled, bool /*taken*/, std::int32_t nextLin,
            OperandPlan &plan) override
    {
        if (!error_.empty())
            return;
        const Instruction &in = dec_.instr[static_cast<std::size_t>(lin)];
        const Datapath dp = static_cast<Datapath>(
            dec_.datapath[static_cast<std::size_t>(lin)]);
        const bool shared =
            dec_.shared[static_cast<std::size_t>(lin)] != 0;

        if ((dec_.touched[static_cast<std::size_t>(lin)] & pending_)
                .any()) {
            if (cfg_.idealNoFlush) {
                counts_.deschedules++;
                pending_.reset();
            } else {
                fail(lin, "instruction touches an outstanding "
                     "long-latency register inside a strand");
                return;
            }
        }

        // ---- Operand reads: annotated level accounting ----
        auto read_one = [&](Reg r, const ReadAnnotation &ra) {
            switch (ra.level) {
              case Level::MRF:
                counts_.read(Level::MRF, dp);
                plan.mrfReg[plan.numMrf++] = r;
                if (ra.depositToORF)
                    counts_.write(Level::ORF, dp);
                break;
              case Level::ORF:
                counts_.read(Level::ORF, dp);
                plan.numBypass++;
                break;
              case Level::LRF:
                if (shared) {
                    fail(lin, "shared-datapath LRF read");
                    return;
                }
                if (ra.lrfBank >=
                    static_cast<std::uint8_t>(lrfBanks_)) {
                    fail(lin, "LRF bank out of range");
                    return;
                }
                counts_.read(Level::LRF, dp);
                plan.numBypass++;
                break;
            }
        };
        for (int s = 0; s < in.numSrcs && error_.empty(); s++)
            if (in.srcs[s].isReg)
                read_one(in.srcs[s].reg, in.readAnno[s]);
        if (in.pred && error_.empty())
            read_one(*in.pred, in.predAnno);
        if (!error_.empty())
            return;

        counts_.instructions++;

        // ---- Result writes (suppressed when predicated off) ----
        if (in.dst && enabled) {
            const WriteAnnotation &wa = in.writeAnno;
            const int halves = in.wide ? 2 : 1;
            if (in.longLatency() && wa.anyUpper() && !cfg_.idealNoFlush) {
                fail(lin,
                     "long-latency result annotated to an upper level");
                return;
            }
            if (wa.toLRF) {
                if (in.wide || lrfBanks_ == 0) {
                    fail(lin, "invalid LRF write annotation");
                    return;
                }
                counts_.write(Level::LRF, dp);
            }
            if (wa.toORF) {
                for (int h = 0; h < halves; h++) {
                    if (wa.orfEntry + h >= opts_.orfEntries) {
                        fail(lin, "ORF entry out of range");
                        return;
                    }
                    counts_.write(Level::ORF, dp);
                }
            }
            if (wa.toLRF && wa.toORF) {
                fail(lin, "value written to both LRF and ORF");
                return;
            }
            if (wa.toMRF)
                counts_.write(Level::MRF, dp, halves);
            if (in.longLatency())
                pending_ |= dec_.defined[static_cast<std::size_t>(lin)];
        }

        // ---- Strand boundary ----
        bool crossing = false;
        if (nextLin >= 0 && !cfg_.idealNoFlush)
            crossing =
                strands_.strandOf(nextLin) != strands_.strandOf(lin) ||
                (nextLin <= lin &&
                 opts_.strandOptions.cutAtBackwardBranch);
        if (crossing && pending_.any()) {
            counts_.deschedules++;
            pending_.reset();
        }
    }

    std::string_view
    error() const override
    {
        return error_;
    }

  private:
    void
    fail(int lin, const std::string &msg)
    {
        std::ostringstream os;
        os << k_.name << " @lin " << lin << ": " << msg;
        error_ = os.str();
    }

    const Kernel &k_;
    const ReplayDecode &dec_;
    const AllocOptions &opts_;
    const SwExecConfig &cfg_;
    const StrandAnalysis &strands_;
    AccessCounts &counts_;
    const int lrfBanks_;
    RegSet pending_;
    std::string error_;
};

/** Pipeline accounting factory for the software hierarchy. */
class SwAccounting final : public PipelineAccounting
{
  public:
    SwAccounting(const Kernel &k, const AllocOptions &opts,
                 const SwExecConfig &cfg, const AnalysisBundle *analyses,
                 AccessCounts &counts)
        : k_(k), opts_(opts), cfg_(cfg), counts_(counts),
          cfgGraph_(analyses ? nullptr : &localCfg_.emplace(k)),
          strands_(k, analyses ? analyses->cfg : *cfgGraph_,
                   opts.strandOptions),
          // The decode must come from the *annotated* kernel: the
          // accounting reads annotations out of the instr snapshots,
          // which a shared cached decode does not carry.
          dec_(k)
    {
    }

    std::unique_ptr<WarpAccountant>
    makeWarp(int /*warp*/) override
    {
        return std::make_unique<SwWarpAccountant>(k_, dec_, opts_, cfg_,
                                                  strands_, counts_);
    }

  private:
    const Kernel &k_;
    AllocOptions opts_;
    SwExecConfig cfg_;
    AccessCounts &counts_;
    std::optional<Cfg> localCfg_;
    const Cfg *cfgGraph_;
    StrandAnalysis strands_;
    ReplayDecode dec_;
};

} // namespace

std::unique_ptr<PipelineAccounting>
makeSwHierarchyAccounting(const Kernel &k, const AllocOptions &opts,
                          const SwExecConfig &cfg,
                          const AnalysisBundle *analyses,
                          AccessCounts &counts)
{
    return std::make_unique<SwAccounting>(k, opts, cfg, analyses, counts);
}

} // namespace rfh
