/**
 * @file
 * SIMT execution with per-lane divergence (Section 2).
 *
 * The paper's SM executes warps of threads under an active mask: a
 * single warp instruction is fetched, and lanes whose mask bit is set
 * execute it. Divergent branches serialise the two sides and
 * reconverge at the branch block's immediate post-dominator, using the
 * classic reconvergence-stack mechanism.
 *
 * This module provides the vector (multi-lane) counterpart of the
 * scalar machine in machine.h, plus divergence statistics (SIMD
 * efficiency, serialisation) that quantify how much warp-level access
 * counting abstracts away.
 */

#ifndef RFH_SIM_SIMT_H
#define RFH_SIM_SIMT_H

#include <array>
#include <cstdint>
#include <vector>

#include "ir/cfg_analysis.h"
#include "ir/kernel.h"
#include "sim/machine.h"

namespace rfh {

/** Lane active mask (up to 32 lanes per warp). */
using LaneMask = std::uint32_t;

/** One entry of the SIMT reconvergence stack. */
struct SimtStackEntry
{
    int pcBlock = 0;     ///< Block to execute next.
    int pcIdx = 0;       ///< Instruction index within that block.
    LaneMask mask = 0;   ///< Lanes executing this path.
    int rpcBlock = -1;   ///< Reconvergence block (-1 = kernel exit).
};

/** A warp of SIMT lanes with a reconvergence stack. */
class SimtWarp
{
  public:
    /**
     * @param k kernel to execute (must outlive the warp).
     * @param cfg CFG of @p k (for post-dominator reconvergence).
     * @param warp_id seeds memory and registers.
     * @param width lanes per warp (1..32); lane l runs as thread
     *        warp_id * width + l.
     */
    SimtWarp(const Kernel &k, const Cfg &cfg, std::uint32_t warp_id,
             int width);

    bool
    done() const
    {
        return stack_.empty();
    }

    int
    width() const
    {
        return static_cast<int>(lanes_.size());
    }

    /** Active mask of the path being executed. */
    LaneMask activeMask() const;

    /** Next warp instruction (valid while !done()). */
    const Instruction &currentInstr() const;

    /** Linear index of the next warp instruction (valid while !done()). */
    int
    currentLin() const
    {
        return kernel_.blockStart(stack_.back().pcBlock) +
            stack_.back().pcIdx;
    }

    /** Register file of lane @p l at the current point in execution. */
    const std::array<std::uint32_t, kMaxRegs> &
    laneRegsNow(int l) const
    {
        return lanes_[l].regs;
    }

    /**
     * Execute one warp instruction for all active lanes; handles
     * divergence, serialisation, and reconvergence.
     */
    void step();

    /** Final register file of lane @p l (after done()). */
    const std::array<std::uint32_t, kMaxRegs> &
    laneRegs(int l) const
    {
        return lanes_[l].regs;
    }

    /** Warp instructions issued (each counts once, whatever the mask). */
    std::uint64_t
    issued() const
    {
        return issued_;
    }

    /** Sum over issued instructions of their active lane count. */
    std::uint64_t
    activeLaneSum() const
    {
        return activeLanes_;
    }

    /** Times a branch diverged (mask split). */
    std::uint64_t
    divergences() const
    {
        return divergences_;
    }

    /**
     * SIMD efficiency: average fraction of lanes active per issued
     * instruction (1.0 = never diverged).
     */
    double
    simdEfficiency() const
    {
        return issued_ ? static_cast<double>(activeLanes_) /
                (static_cast<double>(issued_) * width())
                       : 1.0;
    }

  private:
    struct Lane
    {
        std::array<std::uint32_t, kMaxRegs> regs{};
    };

    const Kernel &kernel_;
    const Cfg &cfg_;
    std::vector<Lane> lanes_;
    /** Per-lane memories (lane l of warp w == scalar thread w*W+l). */
    std::vector<Memory> memories_;
    std::vector<SimtStackEntry> stack_;
    std::uint64_t issued_ = 0;
    std::uint64_t activeLanes_ = 0;
    std::uint64_t divergences_ = 0;

    void advanceTop();
    void maybeReconverge();
};

/** Aggregate divergence statistics for one kernel. */
struct SimtStats
{
    std::uint64_t warpInstructions = 0;
    std::uint64_t divergences = 0;
    double simdEfficiency = 1.0;
};

/**
 * Run @p warps SIMT warps of @p width lanes over @p k to completion
 * and aggregate divergence statistics.
 */
SimtStats runSimt(const Kernel &k, int warps = 4, int width = 8,
                  std::uint64_t max_instrs = 1u << 20);

} // namespace rfh

#endif // RFH_SIM_SIMT_H
