/**
 * @file
 * Baseline single-level execution and register-usage profiling.
 *
 * The baseline executor counts every register operand as an MRF access;
 * all normalized results in the paper (Figures 11-15) are relative to
 * it. The usage profiler reproduces the measurements behind Figure 2:
 * how often each dynamic value is read, and the lifetime of values that
 * are read exactly once.
 */

#ifndef RFH_SIM_BASELINE_EXEC_H
#define RFH_SIM_BASELINE_EXEC_H

#include <cstdint>

#include "ir/kernel.h"
#include "sim/access_counters.h"

namespace rfh {

/** Common trace-execution parameters. */
struct RunConfig
{
    /** Number of warps to execute (each with its own seed/paths). */
    int numWarps = 8;
    /** Safety cap on executed instructions per warp. */
    std::uint64_t maxInstrsPerWarp = 1u << 20;
};

/** Execute @p k against a flat MRF and count accesses. */
AccessCounts runBaseline(const Kernel &k, const RunConfig &cfg = {});

struct DecodedTrace;
struct ReplayDecode;

/**
 * Replay-mode counterpart of runBaseline: derive the flat-MRF counts
 * from a pre-decoded trace of @p k without re-executing the machine.
 * Identical counts to runBaseline on the trace's RunConfig.
 *
 * @param dec optional shared pre-decode of @p k (e.g. from
 *        ExperimentCache::decode); built locally when null.
 */
AccessCounts replayBaseline(const Kernel &k, const DecodedTrace &trace,
                            const ReplayDecode *dec = nullptr);

/** Dynamic register-usage statistics (Figure 2). */
struct UsageStats
{
    /** Values by times read: 0, 1, 2, >2 (Figure 2(a)). */
    std::uint64_t read0 = 0, read1 = 0, read2 = 0, readMore = 0;
    /** Read-once values by lifetime in instructions: 1, 2, 3, >3. */
    std::uint64_t life1 = 0, life2 = 0, life3 = 0, lifeMore = 0;
    std::uint64_t totalValues = 0;
    /**
     * Multi-read values whose reads all land in a burst (max gap
     * between consecutive reads <= 3 instructions). The paper's
     * Section 2.1 observes that values read several times tend to be
     * read in bursts, which is what makes a tiny ORF sufficient.
     */
    std::uint64_t burstyMultiReads = 0;
    /** Values read two or more times. */
    std::uint64_t multiReads = 0;
    /** Values with at least one shared-datapath consumer. */
    std::uint64_t sharedConsumed = 0;
    /** Shared-consumed values produced by the private datapath. */
    std::uint64_t sharedConsumedPrivateProduced = 0;
    std::uint64_t instructions = 0;
    std::uint64_t regReads = 0;
    std::uint64_t regWrites = 0;

    void add(const UsageStats &o);

    double
    fracRead(int times) const
    {
        double t = static_cast<double>(totalValues);
        if (t == 0)
            return 0.0;
        switch (times) {
          case 0: return read0 / t;
          case 1: return read1 / t;
          case 2: return read2 / t;
          default: return readMore / t;
        }
    }
};

/** Profile dynamic register usage of @p k (Figure 2). */
UsageStats collectUsageStats(const Kernel &k, const RunConfig &cfg = {});

} // namespace rfh

#endif // RFH_SIM_BASELINE_EXEC_H
