/**
 * @file
 * Per-warp register-file-cache state shared by the hardware-managed
 * cache executors (sim/hw_cache.cpp) and the compiler-assisted RFC
 * (sim/cc_rfc.cpp): a register bitset for O(1) membership tests on the
 * read path plus a ring buffer preserving FIFO insertion order for
 * eviction. Both executors probe this on every operand, so the
 * membership test must not scan. The ring lives in the per-run replay
 * arena — one contiguous block shared with the rest of the executor
 * state, reused across grid cells.
 */

#ifndef RFH_SIM_RFC_RING_H
#define RFH_SIM_RFC_RING_H

#include "ir/liveness.h"
#include "sim/replay_arena.h"

namespace rfh {

/** FIFO register cache: bitset membership + ring eviction order. */
class RfcRing
{
  public:
    RfcRing(int entries, ReplayArena &arena)
        : entries_(entries),
          fifo_(arena.alloc<Reg>(
              static_cast<std::size_t>(entries > 0 ? entries : 1)))
    {
    }

    /** @return true if @p r is cached. */
    bool
    contains(Reg r) const
    {
        return present_.test(r);
    }

    /**
     * Insert @p r (overwriting in place on a hit). When the cache is
     * full, the FIFO victim register is returned through @p evicted.
     *
     * @return true if a valid entry was evicted.
     */
    bool
    insert(Reg r, Reg &evicted)
    {
        if (entries_ <= 0 || present_.test(r))
            return false;
        present_.set(r);
        if (size_ < entries_) {
            fifo_[wrap(head_ + size_)] = r;
            size_++;
            return false;
        }
        evicted = fifo_[head_];
        present_.reset(evicted);
        fifo_[head_] = r;
        head_ = wrap(head_ + 1);
        return true;
    }

    void
    erase(Reg r)
    {
        if (!present_.test(r))
            return;
        present_.reset(r);
        // Compact the ring in place; survivors keep FIFO order (the
        // write slot always trails the read slot).
        int kept = 0;
        for (int i = 0; i < size_; i++) {
            Reg v = fifo_[wrap(head_ + i)];
            if (v != r)
                fifo_[wrap(head_ + kept++)] = v;
        }
        size_ = kept;
    }

    /** Visit the cached registers in FIFO order. */
    template <typename F>
    void
    forEach(F f) const
    {
        for (int i = 0; i < size_; i++)
            f(fifo_[wrap(head_ + i)]);
    }

    void
    clear()
    {
        present_.reset();
        head_ = 0;
        size_ = 0;
    }

  private:
    int
    wrap(int i) const
    {
        return i >= entries_ ? i - entries_ : i;
    }

    int entries_;
    RegSet present_;
    Reg *fifo_;
    int head_ = 0;
    int size_ = 0;
};

} // namespace rfh

#endif // RFH_SIM_RFC_RING_H
