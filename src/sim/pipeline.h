/**
 * @file
 * Cycle-level staged SM pipeline (Section 6, Table 2).
 *
 * Replaces the old cycle-approximate monolith with four composable
 * tick/port stages over the pre-decoded dynamic stream:
 *
 *   issue ──port──> operand collector ──port──> execute ──port──> writeback
 *
 * Issue picks one warp instruction per cycle under a pluggable
 * scheduler policy (flat round-robin, the paper's two-level
 * active/pending scheduler, greedy-then-oldest) against an in-order
 * scoreboard. The operand collector arbitrates each instruction's MRF
 * source reads across the banked register file (sim/mrf_banks.h) —
 * same-bank operands serialise — while upper-level (LRF/ORF/RFC)
 * operands bypass the banks entirely, which is how hierarchy schemes
 * shorten operand collection. Execute models occupancy-tracked latency
 * pipes with a shared-unit issue interval; writeback releases the
 * scoreboard.
 *
 * Counting is delegated to the scheme's WarpAccountant at issue
 * (sim/pipeline_account.h), so access totals are identical to the
 * functional trace path by construction; the verify oracle enforces
 * that per scheme and warp count. Timing-only quantities (cycles, IPC,
 * swaps, stall breakdown) live in PipelineStats. Fully deterministic:
 * identical inputs produce identical stats, bit for bit.
 */

#ifndef RFH_SIM_PIPELINE_H
#define RFH_SIM_PIPELINE_H

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/mrf_banks.h"
#include "sim/pipeline_account.h"

namespace rfh {

struct DecodedTrace;

/** Warp scheduler policy of the issue stage. */
enum class SchedPolicy
{
    FLAT_RR,    ///< Round-robin over all resident warps.
    TWO_LEVEL,  ///< Active/pending sets with long-latency swaps (paper).
    GTO,        ///< Greedy-then-oldest over all resident warps.
};

/** @return "flat", "two-level", or "gto". */
std::string_view schedPolicyName(SchedPolicy p);

/** Parse a policy token; @return false on an unknown token. */
bool parseSchedPolicy(std::string_view token, SchedPolicy &out);

/** Pipeline parameters (latency defaults from Table 2). */
struct PipelineConfig
{
    /** Scheduler policy of the issue stage. */
    SchedPolicy policy = SchedPolicy::TWO_LEVEL;
    /** Active-set size (TWO_LEVEL; >= numWarps degenerates to flat). */
    int activeWarps = 8;
    int aluLatency = 8;
    int sfuLatency = 20;
    int sharedMemLatency = 20;
    int texLatency = 400;
    int dramLatency = 400;
    /** Cycles to swap a pending warp into the active set. */
    int swapPenalty = 1;
    /** Shared units (SFU/MEM/TEX) accept one op per this many cycles. */
    int sharedIssueInterval = 4;
    /** Operand-collector entries (in-flight operand fetches). */
    int collectorSlots = 4;
    /** MRF banking layout for source-operand arbitration. */
    MrfBankConfig banks;
    /** Safety cap; the model stops counting past it. */
    std::uint64_t maxCycles = 50'000'000;
};

/** Why issue slots went unused, one counter per no-issue cycle. */
struct PipelineStalls
{
    /** Every eligible warp waits on an operand or WAW hazard. */
    std::uint64_t scoreboard = 0;
    /** The operand collector had no free entry (backpressure). */
    std::uint64_t collector = 0;
    /** A ready instruction waited on the shared-unit issue port. */
    std::uint64_t execBusy = 0;
    /** Swap penalty / pending-warp activation delay. */
    std::uint64_t swap = 0;
    /** All warps done issuing; latency pipes draining. */
    std::uint64_t drain = 0;

    /** Sum of all stall counters. */
    std::uint64_t
    total() const
    {
        return scoreboard + collector + execBusy + swap + drain;
    }
};

/** Timing outcome of one pipeline run. */
struct PipelineStats
{
    /** Cycles from the first issue opportunity to the last writeback. */
    std::uint64_t cycles = 0;
    /** Dynamic warp instructions issued. */
    std::uint64_t issued = 0;
    /** Two-level active/pending swaps on long-latency dependences. */
    std::uint64_t swaps = 0;
    /** Operand fetches deferred a cycle by an MRF bank conflict. */
    std::uint64_t bankConflicts = 0;
    /** No-issue cycle breakdown. */
    PipelineStalls stalls;

    /** Accumulate @p o (suite-level aggregation; all fields sum). */
    void
    add(const PipelineStats &o)
    {
        cycles += o.cycles;
        issued += o.issued;
        swaps += o.swaps;
        bankConflicts += o.bankConflicts;
        stalls.scoreboard += o.stalls.scoreboard;
        stalls.collector += o.stalls.collector;
        stalls.execBusy += o.stalls.execBusy;
        stalls.swap += o.stalls.swap;
        stalls.drain += o.stalls.drain;
    }

    /** Instructions per cycle. */
    double
    ipc() const
    {
        return cycles
            ? static_cast<double>(issued) / static_cast<double>(cycles)
            : 0.0;
    }
};

/** Outcome of runPipeline. */
struct PipelineResult
{
    PipelineStats stats;
    /** First accounting verification failure; empty on success. */
    std::string error;

    bool
    ok() const
    {
        return error.empty();
    }
};

/**
 * Run the staged pipeline over the pre-decoded stream @p trace of the
 * kernel @p dec was built from, accounting through @p acct.
 *
 * @param trace per-warp dynamic record stream (recordDecodedTrace).
 * @param dec shared static pre-decode of the same kernel (scoreboard
 *        sets, unit classes, latency classification).
 * @param acct scheme accounting factory; its AccessCounts accumulator
 *        receives every warp's counts.
 * @param cfg timing parameters.
 */
PipelineResult runPipeline(const DecodedTrace &trace,
                           const ReplayDecode &dec,
                           PipelineAccounting &acct,
                           const PipelineConfig &cfg = {});

} // namespace rfh

#endif // RFH_SIM_PIPELINE_H
