#include "sim/sw_exec_simt.h"

#include <sstream>
#include <vector>

#include "compiler/strand.h"
#include "ir/liveness.h"
#include "sim/replay_arena.h"
#include "sim/replay_kernels.h"
#include "sim/simt.h"
#include "sim/trace.h"

namespace rfh {

namespace {

struct LaneSlot
{
    bool valid = false;
    Reg reg = 0;
    std::uint32_t value = 0;
};

/** Per-lane upper-level state. */
struct LaneState
{
    std::vector<LaneSlot> orf;
    std::vector<LaneSlot> lrf;
    std::array<std::uint32_t, kMaxRegs> mrf{};
    int lastActiveLin = -1;

    void
    invalidate()
    {
        for (auto &s : orf)
            s.valid = false;
        for (auto &s : lrf)
            s.valid = false;
    }
};

} // namespace

SwExecResult
runSwHierarchySimt(const Kernel &k, const AllocOptions &opts,
                   const SimtExecConfig &cfg)
{
    SwExecResult result;
    AccessCounts &counts = result.counts;
    int lrf_banks = opts.useLRF ? (opts.splitLRF ? 3 : 1) : 0;

    Cfg cfg_graph(k);
    StrandAnalysis strands(k, cfg_graph, opts.strandOptions);

    auto fail = [&](int lin, int lane, const std::string &msg) {
        std::ostringstream os;
        os << k.name << " @lin " << lin << " lane " << lane << ": "
           << msg;
        result.error = os.str();
    };

    // Per-instruction scratch, hoisted out of the hot loop so each
    // dynamic instruction costs a clear(), not heap allocations.
    struct Deposit { int entry; Reg reg; };
    std::vector<Deposit> deposits;
    deposits.reserve(kMaxSrcs + 1);
    std::vector<bool> was_enabled(cfg.width);

    for (int w = 0; w < cfg.numWarps && result.ok(); w++) {
        SimtWarp warp(k, cfg_graph, static_cast<std::uint32_t>(w),
                      cfg.width);
        std::vector<LaneState> lanes(cfg.width);
        for (auto &ls : lanes) {
            ls.orf.resize(opts.orfEntries);
            ls.lrf.resize(lrf_banks);
        }
        // The MRF shadow starts as the seeded register file.
        for (int l = 0; l < cfg.width; l++)
            lanes[l].mrf = warp.laneRegsNow(l);
        RegSet pending;
        int prev_lin = -1;
        bool prev_taken_backward = false;

        std::uint64_t executed = 0;
        while (!warp.done() && executed++ < cfg.maxInstrsPerWarp &&
               result.ok()) {
            int lin = warp.currentLin();
            const Instruction &in = warp.currentInstr();
            LaneMask mask = warp.activeMask();
            Datapath dp = datapathOf(in.unit());
            bool shared = isSharedUnit(in.unit());
            int strand = strands.strandOf(lin);

            // Per-lane strand-crossing invalidation along each lane's
            // own dynamic path.
            for (int l = 0; l < cfg.width; l++) {
                if (!((mask >> l) & 1u))
                    continue;
                LaneState &ls = lanes[l];
                if (ls.lastActiveLin >= 0) {
                    bool crossing =
                        strands.strandOf(ls.lastActiveLin) != strand ||
                        (lin <= ls.lastActiveLin &&
                         opts.strandOptions.cutAtBackwardBranch);
                    if (crossing)
                        ls.invalidate();
                }
                ls.lastActiveLin = lin;
            }

            // Warp-level synchronisation: the execution point moving
            // forward into a new strand, or re-entering a strand via a
            // taken backward branch, resolves outstanding long-latency
            // loads — descheduling the warp (flushing every lane) when
            // any are pending. Serialised hammock sides switch the
            // execution point within one strand and do not sync.
            bool warp_sync = prev_taken_backward ||
                (prev_lin >= 0 && lin > prev_lin &&
                 strands.strandOf(lin) != strands.strandOf(prev_lin));
            if (warp_sync && pending.any()) {
                counts.deschedules++;
                pending.reset();
                for (auto &ls : lanes)
                    ls.invalidate();
            }

            // A touch of a still-outstanding long-latency register
            // inside a strand means the compiler missed an endpoint.
            RegSet touched = usedRegs(in) | definedRegs(in);
            if ((touched & pending).any()) {
                fail(lin, -1, "instruction touches an outstanding "
                     "long-latency register inside a strand");
                break;
            }

            // Per-lane enable (active + predicate).
            auto enabled = [&](int l) {
                if (!((mask >> l) & 1u))
                    return false;
                return !in.pred ||
                    warp.laneRegsNow(l)[*in.pred] != 0;
            };
            // For branches: does any lane take it?
            auto was_enabled_branch = [&](int l) { return enabled(l); };

            // ---- Verify reads per enabled lane; count per warp ----
            deposits.clear();
            auto read_one = [&](Reg r, const ReadAnnotation &ra) {
                counts.read(ra.level, dp);
                if (ra.depositToORF) {
                    deposits.push_back({ra.entry, r});
                    counts.write(Level::ORF, dp);
                }
                for (int l = 0; l < cfg.width && result.ok(); l++) {
                    // Operands are fetched before the predicate
                    // squashes the instruction, so every ACTIVE lane
                    // reads (and is verified) — matching the scalar
                    // executor, which reads operands regardless of
                    // the predicate value.
                    if (!((mask >> l) & 1u))
                        continue;
                    std::uint32_t arch = warp.laneRegsNow(l)[r];
                    LaneState &ls = lanes[l];
                    switch (ra.level) {
                      case Level::MRF:
                        if (ls.mrf[r] != arch)
                            fail(lin, l, "stale MRF value for R" +
                                 std::to_string(r));
                        break;
                      case Level::ORF: {
                        const LaneSlot &s = ls.orf[ra.entry];
                        if (!s.valid || s.reg != r || s.value != arch)
                            fail(lin, l, "ORF entry " +
                                 std::to_string(ra.entry) +
                                 " does not hold R" +
                                 std::to_string(r));
                        break;
                      }
                      case Level::LRF: {
                        if (shared) {
                            fail(lin, l, "shared-datapath LRF read");
                            break;
                        }
                        const LaneSlot &s = ls.lrf[ra.lrfBank];
                        if (!s.valid || s.reg != r || s.value != arch)
                            fail(lin, l, "LRF bank " +
                                 std::to_string(ra.lrfBank) +
                                 " does not hold R" +
                                 std::to_string(r));
                        break;
                      }
                    }
                }
            };
            for (int s = 0; s < in.numSrcs && result.ok(); s++)
                if (in.srcs[s].isReg)
                    read_one(in.srcs[s].reg, in.readAnno[s]);
            if (in.pred && result.ok()) {
                // The predicate is an operand like any other: it is
                // read by every active lane and can carry a deposit.
                read_one(*in.pred, in.predAnno);
            }
            if (!result.ok())
                break;

            // Deposits land for every ACTIVE lane: the operand is
            // fetched before the predicate squashes the instruction,
            // so the deposit does not depend on the predicate (which
            // keeps read-operand anchors sound under predication).
            for (const Deposit &d : deposits) {
                for (int l = 0; l < cfg.width; l++) {
                    if (!((mask >> l) & 1u))
                        continue;
                    LaneSlot &s = lanes[l].orf[d.entry];
                    s.valid = true;
                    s.reg = d.reg;
                    s.value = warp.laneRegsNow(l)[d.reg];
                }
            }

            // Snapshot enables before execution mutates predicates.
            for (int l = 0; l < cfg.width; l++)
                was_enabled[l] = enabled(l);

            // ---- Execute the warp instruction ----
            counts.instructions++;
            prev_lin = lin;
            prev_taken_backward = false;
            if (in.op == Opcode::BRA &&
                in.branchTarget <= k.ref(lin).block) {
                for (int l = 0; l < cfg.width; l++)
                    if (was_enabled_branch(l)) {
                        prev_taken_backward = true;
                        break;
                    }
            }
            warp.step();

            // ---- Writes per enabled lane; count per warp ----
            if (in.dst) {
                const WriteAnnotation &wa = in.writeAnno;
                int halves = in.wide ? 2 : 1;
                bool any = false;
                for (int l = 0; l < cfg.width; l++) {
                    if (!was_enabled[l])
                        continue;
                    any = true;
                    LaneState &ls = lanes[l];
                    for (int h = 0; h < halves; h++) {
                        Reg r = static_cast<Reg>(*in.dst + h);
                        std::uint32_t v = warp.laneRegsNow(l)[r];
                        if (wa.toLRF) {
                            LaneSlot &s = ls.lrf[wa.lrfBank];
                            s.valid = true;
                            s.reg = r;
                            s.value = v;
                        }
                        if (wa.toORF) {
                            LaneSlot &s = ls.orf[wa.orfEntry + h];
                            s.valid = true;
                            s.reg = r;
                            s.value = v;
                        }
                        if (wa.toMRF)
                            ls.mrf[r] = v;
                    }
                }
                if (any) {
                    if (wa.toLRF)
                        counts.write(Level::LRF, dp);
                    if (wa.toORF)
                        counts.write(Level::ORF, dp, halves);
                    if (wa.toMRF)
                        counts.write(Level::MRF, dp, halves);
                    if (in.longLatency())
                        pending |= definedRegs(in);
                }
            }
        }
    }
    return result;
}

namespace {

/** Per-record counting deltas of one static instruction (SIMT). */
struct SimtLinCost
{
    std::uint8_t reads[3] = {0, 0, 0};  ///< Per level, once per warp.
    std::uint8_t depositWrites = 0;     ///< ORF writes from deposits.
    std::uint8_t wLRF = 0, wORF = 0, wMRF = 0;  ///< Any-lane-enabled.
};

/**
 * One pass over the annotated kernel filling the SIMT cost tables.
 * @return false when some instruction could fail replay verification
 * (a shared-datapath LRF read) — caller takes the slow path.
 */
bool
scanSimtAnnotations(const Kernel &k, SimtLinCost *cost, RegSet *touched,
                    RegSet *defined)
{
    const int n = k.numInstrs();
    for (int lin = 0; lin < n; lin++) {
        const Instruction &in = k.instr(lin);
        const bool shared = isSharedUnit(in.unit());
        RegSet def = definedRegs(in);
        defined[lin] = def;
        touched[lin] = usedRegs(in) | def;
        SimtLinCost &c = cost[lin];

        auto scan_read = [&](const ReadAnnotation &ra) {
            c.reads[static_cast<int>(ra.level)]++;
            if (ra.depositToORF)
                c.depositWrites++;
            return !(ra.level == Level::LRF && shared);
        };
        for (int s = 0; s < in.numSrcs; s++)
            if (in.srcs[s].isReg && !scan_read(in.readAnno[s]))
                return false;
        if (in.pred && !scan_read(in.predAnno))
            return false;

        if (in.dst) {
            const WriteAnnotation &wa = in.writeAnno;
            const int halves = in.wide ? 2 : 1;
            if (wa.toLRF)
                c.wLRF = 1;
            if (wa.toORF)
                c.wORF = static_cast<std::uint8_t>(halves);
            if (wa.toMRF)
                c.wMRF = static_cast<std::uint8_t>(halves);
        }
    }
    return true;
}

/** First set bit of @p words in [@p from, @p end), or @p end. */
std::uint32_t
nextSetBit(const std::vector<std::uint64_t> &words, std::uint32_t from,
           std::uint32_t end)
{
    if (from >= end)
        return end;
    std::uint32_t w = from / 64;
    const std::uint32_t last = (end - 1) / 64;
    std::uint64_t word = words[w] & (~std::uint64_t{0} << (from % 64));
    while (true) {
        if (word) {
            std::uint32_t t = w * 64 + __builtin_ctzll(word);
            return t < end ? t : end;
        }
        if (w == last)
            return end;
        word = words[++w];
    }
}

/**
 * Original per-record SIMT replay loop — fallback for traces without
 * bit-planes and for runs that can fail verification, reproducing the
 * failure (message, stop point, partial counts) byte-exactly.
 */
SwExecResult
replaySwHierarchySimtSlow(const Kernel &k, const AllocOptions &opts,
                          const DecodedTrace &trace,
                          const SimtExecConfig &cfg)
{
    SwExecResult result;
    AccessCounts &counts = result.counts;

    Cfg cfg_graph(k);
    StrandAnalysis strands(k, cfg_graph, opts.strandOptions);
    ReplayDecode dec(k);
    (void)cfg;

    auto fail = [&](int lin, int lane, const std::string &msg) {
        std::ostringstream os;
        os << k.name << " @lin " << lin << " lane " << lane << ": "
           << msg;
        result.error = os.str();
    };

    for (int w = 0; w < trace.numWarps() && result.ok(); w++) {
        RegSet pending;
        int prev_lin = -1;
        bool prev_taken_backward = false;

        for (std::uint32_t t = trace.warpBegin[w];
             t < trace.warpBegin[w + 1] && result.ok(); t++) {
            const int lin = trace.lin[t];
            const Instruction &in = dec.instr[lin];
            const Datapath dp = static_cast<Datapath>(dec.datapath[lin]);
            const bool shared = dec.shared[lin] != 0;
            const bool any_enabled = trace.flags[t] & kReplayExecuted;

            // Warp-level synchronisation (see the direct executor):
            // forward motion into a new strand, or a taken backward
            // branch, resolves outstanding long-latency loads.
            bool warp_sync = prev_taken_backward ||
                (prev_lin >= 0 && lin > prev_lin &&
                 strands.strandOf(lin) != strands.strandOf(prev_lin));
            if (warp_sync && pending.any()) {
                counts.deschedules++;
                pending.reset();
            }

            // A touch of a still-outstanding long-latency register
            // inside a strand means the compiler missed an endpoint.
            if ((dec.touched[lin] & pending).any()) {
                fail(lin, -1, "instruction touches an outstanding "
                     "long-latency register inside a strand");
                break;
            }

            // ---- Reads: count per warp; structural checks only ----
            auto read_one = [&](Reg r, const ReadAnnotation &ra) {
                counts.read(ra.level, dp);
                if (ra.depositToORF)
                    counts.write(Level::ORF, dp);
                if (ra.level == Level::LRF && shared && any_enabled)
                    fail(lin, -1, "shared-datapath LRF read");
                (void)r;
            };
            for (int s = 0; s < in.numSrcs && result.ok(); s++)
                if (in.srcs[s].isReg)
                    read_one(in.srcs[s].reg, in.readAnno[s]);
            if (in.pred && result.ok()) {
                // The predicate is an operand like any other: it is
                // read by every active lane and can carry a deposit.
                read_one(*in.pred, in.predAnno);
            }
            if (!result.ok())
                break;

            // ---- Execute (pre-decoded) ----
            counts.instructions++;
            prev_lin = lin;
            prev_taken_backward = trace.flags[t] & kReplayBranchTaken;

            // ---- Writes: count per warp when any lane was enabled ----
            if (in.dst && any_enabled) {
                const WriteAnnotation &wa = in.writeAnno;
                int halves = in.wide ? 2 : 1;
                if (wa.toLRF)
                    counts.write(Level::LRF, dp);
                if (wa.toORF)
                    counts.write(Level::ORF, dp, halves);
                if (wa.toMRF)
                    counts.write(Level::MRF, dp, halves);
                if (in.longLatency())
                    pending |= dec.defined[lin];
            }
        }
    }
    return result;
}

} // namespace

SwExecResult
replaySwHierarchySimt(const Kernel &k, const AllocOptions &opts,
                      const DecodedTrace &trace,
                      const SimtExecConfig &cfg)
{
    // ---- Fast path (see replaySwHierarchy) ----
    // Warp-level counting is a sum of per-instruction deltas over the
    // record stream; only the deschedule count depends on record
    // order, handled by a bit-scan pass over the long-latency plane.
    const int n = k.numInstrs();
    ReplayArena &arena = acquireThreadReplayArena();
    SimtLinCost *cost = arena.allocZeroed<SimtLinCost>(n);
    RegSet *touched = arena.alloc<RegSet>(n);
    RegSet *defined = arena.alloc<RegSet>(n);
    if (!trace.hasPlanes() ||
        !scanSimtAnnotations(k, cost, touched, defined))
        return replaySwHierarchySimtSlow(k, opts, trace, cfg);

    SwExecResult result;
    AccessCounts &counts = result.counts;

    // ---- Deschedule pass ----
    // pending becomes non-empty only at llWords records; while empty,
    // the warp-sync and touch checks are no-ops, so skip directly to
    // the next such record. The warp-sync evaluation there needs no
    // previous-record state: with an empty pending set the sync is a
    // no-op whatever the previous record was.
    Cfg cfg_graph(k);
    StrandAnalysis strands(k, cfg_graph, opts.strandOptions);
    for (int w = 0; w < trace.numWarps(); w++) {
        const std::uint32_t end = trace.warpBegin[w + 1];
        std::uint32_t t = trace.warpBegin[w];
        RegSet pending;
        int prev_lin = -1;
        bool prev_taken_backward = false;
        while (t < end) {
            if (pending.none()) {
                t = nextSetBit(trace.llWords, t, end);
                if (t == end)
                    break;
                const int lin = trace.lin[t];
                pending |= defined[lin];
                prev_lin = lin;
                prev_taken_backward =
                    (trace.takenWords[t / 64] >> (t % 64)) & 1u;
                t++;
                continue;
            }
            const int lin = trace.lin[t];
            const bool warp_sync = prev_taken_backward ||
                (prev_lin >= 0 && lin > prev_lin &&
                 strands.strandOf(lin) != strands.strandOf(prev_lin));
            if (warp_sync && pending.any()) {
                counts.deschedules++;
                pending.reset();
            }
            if ((touched[lin] & pending).any())
                return replaySwHierarchySimtSlow(k, opts, trace, cfg);
            prev_lin = lin;
            prev_taken_backward =
                (trace.takenWords[t / 64] >> (t % 64)) & 1u;
            if ((trace.llWords[t / 64] >> (t % 64)) & 1u)
                pending |= defined[lin];
            t++;
        }
    }

    // ---- Access counting: histogram + per-instruction deltas ----
    const std::size_t total = trace.lin.size();
    std::uint32_t *histAll = arena.allocZeroed<std::uint32_t>(n);
    std::uint32_t *histOff = arena.allocZeroed<std::uint32_t>(n);
    histogramRecords(trace.lin.data(), total, histAll);
    if (trace.executedInstrs != total)
        histogramClearBits(trace.execWords.data(), trace.lin.data(),
                           total, histOff);
    for (int lin = 0; lin < n; lin++) {
        const std::uint64_t all = histAll[lin];
        if (all == 0)
            continue;
        const std::uint64_t ex = all - histOff[lin];
        const SimtLinCost &c = cost[lin];
        const Datapath dp = datapathOf(k.instr(lin).unit());
        for (int l = 0; l < 3; l++)
            counts.read(static_cast<Level>(l), dp, c.reads[l] * all);
        counts.write(Level::ORF, dp,
                     c.depositWrites * all + c.wORF * ex);
        if (c.wLRF)
            counts.write(Level::LRF, dp, c.wLRF * ex);
        if (c.wMRF)
            counts.write(Level::MRF, dp, c.wMRF * ex);
    }
    counts.instructions = total;
    return result;
}

} // namespace rfh
