/**
 * @file
 * Cycle-stepping framework for composable pipeline stages.
 *
 * A stage implements Ticked: one tick() call advances it by a single
 * cycle at an explicit timestamp. A TickSchedule ticks its stages in a
 * fixed registration order every cycle; the staged SM pipeline
 * registers consumers before producers along the dataflow
 * (execute -> writeback -> collect -> issue), so a value leaving one
 * stage is visible to the next stage on the following cycle — exactly
 * one pipeline register per port — while a completion's writeback and
 * the dependent issue it unblocks land in the same cycle, like a
 * forwarded result.
 *
 * tick() returns whether the stage made progress (moved, completed, or
 * accepted work). A cycle in which no stage progresses cannot change
 * state until some scheduled future event (a latency pipe draining, a
 * swapped-in warp activating), which lets the driver fast-forward idle
 * spans without simulating them cycle by cycle — the cycle counts are
 * identical to the naive loop because idle cycles are idle by
 * definition.
 */

#ifndef RFH_SIM_TICK_H
#define RFH_SIM_TICK_H

#include <cstdint>
#include <vector>

namespace rfh {

/** One pipeline stage advanced a cycle at a time. */
class Ticked
{
  public:
    virtual ~Ticked() = default;

    /**
     * Advance one cycle at timestamp @p now.
     * @return true when the stage made progress this cycle (accepted,
     *         moved, or completed at least one item).
     */
    virtual bool tick(std::uint64_t now) = 0;
};

/** Ticks registered stages in order, once per cycle. */
class TickSchedule
{
  public:
    /** Append @p stage (not owned; must outlive the schedule). */
    void
    add(Ticked *stage)
    {
        stages_.push_back(stage);
    }

    /**
     * Tick every stage at @p now, in registration order.
     * @return true when any stage made progress.
     */
    bool
    tick(std::uint64_t now)
    {
        bool progress = false;
        for (Ticked *s : stages_)
            progress |= s->tick(now);
        return progress;
    }

  private:
    std::vector<Ticked *> stages_;
};

} // namespace rfh

#endif // RFH_SIM_TICK_H
