/**
 * @file
 * Cycle-approximate in-order SM performance simulator (Table 2).
 *
 * Validates the two-level warp scheduler claim: with at least 8 active
 * warps out of 32 machine-resident warps, an SM suffers no performance
 * penalty relative to scheduling all 32 warps (Section 6). The SM
 * issues one warp instruction per cycle, ALU latency is hidden by the
 * active set, and long-latency (global load / texture) dependences
 * trigger a swap between the active and pending sets.
 */

#ifndef RFH_SIM_PERF_SIM_H
#define RFH_SIM_PERF_SIM_H

#include <cstdint>

#include "ir/kernel.h"

namespace rfh {

/** Performance-model parameters (defaults from Table 2). */
struct PerfConfig
{
    int numWarps = 32;      ///< Machine-resident warps.
    int activeWarps = 8;    ///< Active-set size (== numWarps: flat).
    int aluLatency = 8;
    int sfuLatency = 20;
    int sharedMemLatency = 20;
    int texLatency = 400;
    int dramLatency = 400;
    /** Cycles to swap a pending warp into the active set. */
    int swapPenalty = 1;
    /** Shared units (SFU/MEM/TEX) accept one op per this many cycles. */
    int sharedIssueInterval = 4;
    std::uint64_t maxCycles = 50'000'000;
    std::uint64_t maxInstrsPerWarp = 1u << 18;
};

/** Outcome of one performance simulation. */
struct PerfResult
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t deschedules = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) / cycles : 0.0;
    }
};

/** Run the SM model over @p k (live functional execution). */
PerfResult runPerfSim(const Kernel &k, const PerfConfig &cfg = {});

struct KernelTrace;

/**
 * Replay a recorded control-flow trace through the SM model (the
 * paper's trace-based methodology, Section 5.1). Warps follow their
 * recorded block paths instead of executing functionally; timing and
 * scheduling behave exactly as in runPerfSim. Warps beyond the trace
 * replay recorded paths round-robin.
 */
PerfResult runPerfSimFromTrace(const Kernel &k, const KernelTrace &trace,
                               const PerfConfig &cfg = {});

} // namespace rfh

#endif // RFH_SIM_PERF_SIM_H
