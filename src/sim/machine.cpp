#include "sim/machine.h"

#include <bit>
#include <cmath>

namespace rfh {

std::uint32_t
hashU32(std::uint32_t x)
{
    x ^= x >> 16;
    x *= 0x7feb352dU;
    x ^= x >> 15;
    x *= 0x846ca68bU;
    x ^= x >> 16;
    return x;
}

std::size_t
Memory::probe(std::uint32_t addr) const
{
    std::size_t i = hashU32(addr) & mask_;
    while (used_[i] && keys_[i] != addr)
        i = (i + 1) & mask_;
    return i;
}

void
Memory::rehash(std::size_t capacity)
{
    std::vector<std::uint32_t> oldKeys = std::move(keys_);
    std::vector<std::uint32_t> oldVals = std::move(vals_);
    std::vector<std::uint8_t> oldUsed = std::move(used_);
    keys_.assign(capacity, 0);
    vals_.assign(capacity, 0);
    used_.assign(capacity, 0);
    mask_ = capacity - 1;
    for (std::size_t i = 0; i < oldUsed.size(); i++) {
        if (!oldUsed[i])
            continue;
        std::size_t j = probe(oldKeys[i]);
        used_[j] = 1;
        keys_[j] = oldKeys[i];
        vals_[j] = oldVals[i];
    }
}

std::uint32_t
Memory::load(std::uint32_t addr) const
{
    std::size_t i = probe(addr);
    if (used_[i])
        return vals_[i];
    return hashU32(addr ^ seed_ ^ 0x9e3779b9U);
}

void
Memory::store(std::uint32_t addr, std::uint32_t value)
{
    std::size_t i = probe(addr);
    if (!used_[i]) {
        // Keep the table under ~70% full so probes stay short.
        if ((size_ + 1) * 10 >= (mask_ + 1) * 7) {
            rehash((mask_ + 1) * 2);
            i = probe(addr);
        }
        used_[i] = 1;
        keys_[i] = addr;
        size_++;
    }
    vals_[i] = value;
}

void
WarpContext::reset(std::uint32_t warp_id)
{
    memory = Memory(warp_id);
    for (int r = 0; r < kMaxRegs; r++)
        regs[r] = hashU32(warp_id * 131 + r);
    // By convention R0 holds the thread id and R63 the parameter base;
    // keep them small so address arithmetic stays well behaved.
    regs[0] = warp_id;
    regs[kMaxRegs - 1] = 0x1000 + warp_id * 0x100;
    block = 0;
    idx = 0;
    done = false;
}

namespace {

float
asF(std::uint32_t x)
{
    return std::bit_cast<float>(x);
}

std::uint32_t
asU(float f)
{
    // Normalise NaNs so hierarchical and flat executions compare equal.
    if (std::isnan(f))
        return 0x7fc00000U;
    return std::bit_cast<std::uint32_t>(f);
}

} // namespace

void
evaluate(const Instruction &instr,
         const std::array<std::uint32_t, kMaxSrcs> &ops, Memory &mem,
         std::uint32_t &lo, std::uint32_t &hi)
{
    const std::uint32_t a = ops[0] +
        (unitClass(instr.op) == UnitClass::MEM ||
         instr.op == Opcode::TEX ? instr.memOffset : 0);
    const std::uint32_t b = ops[1], c = ops[2];
    const std::int32_t sa = static_cast<std::int32_t>(a);
    const std::int32_t sb = static_cast<std::int32_t>(b);
    lo = 0;
    hi = 0;
    switch (instr.op) {
      case Opcode::IADD: lo = a + b; break;
      case Opcode::ISUB: lo = a - b; break;
      case Opcode::IMUL:
        if (instr.wide) {
            std::uint64_t p = static_cast<std::uint64_t>(a) * b;
            lo = static_cast<std::uint32_t>(p);
            hi = static_cast<std::uint32_t>(p >> 32);
        } else {
            lo = a * b;
        }
        break;
      case Opcode::IMAD: lo = a * b + c; break;
      case Opcode::IMIN: lo = sa < sb ? a : b; break;
      case Opcode::IMAX: lo = sa > sb ? a : b; break;
      case Opcode::AND: lo = a & b; break;
      case Opcode::OR: lo = a | b; break;
      case Opcode::XOR: lo = a ^ b; break;
      case Opcode::NOT: lo = ~a; break;
      case Opcode::SHL: lo = a << (b & 31); break;
      case Opcode::SHR: lo = a >> (b & 31); break;
      case Opcode::FADD: lo = asU(asF(a) + asF(b)); break;
      case Opcode::FSUB: lo = asU(asF(a) - asF(b)); break;
      case Opcode::FMUL: lo = asU(asF(a) * asF(b)); break;
      case Opcode::FFMA: lo = asU(asF(a) * asF(b) + asF(c)); break;
      case Opcode::FMIN: lo = asU(std::fmin(asF(a), asF(b))); break;
      case Opcode::FMAX: lo = asU(std::fmax(asF(a), asF(b))); break;
      case Opcode::SETLT: lo = sa < sb ? 1 : 0; break;
      case Opcode::SETLE: lo = sa <= sb ? 1 : 0; break;
      case Opcode::SETEQ: lo = a == b ? 1 : 0; break;
      case Opcode::SETNE: lo = a != b ? 1 : 0; break;
      case Opcode::SETGT: lo = sa > sb ? 1 : 0; break;
      case Opcode::SETGE: lo = sa >= sb ? 1 : 0; break;
      case Opcode::SEL: lo = a ? b : c; break;
      case Opcode::MOV: lo = a; break;
      case Opcode::CVT: lo = static_cast<std::uint32_t>(
          static_cast<std::int32_t>(asF(a))); break;
      case Opcode::RCP: lo = asU(1.0f / asF(a)); break;
      case Opcode::SQRT: lo = asU(std::sqrt(std::fabs(asF(a)))); break;
      case Opcode::RSQRT:
        lo = asU(1.0f / std::sqrt(std::fabs(asF(a)) + 1e-30f));
        break;
      case Opcode::SIN: lo = asU(std::sin(asF(a))); break;
      case Opcode::COS: lo = asU(std::cos(asF(a))); break;
      case Opcode::LG2: lo = asU(std::log2(std::fabs(asF(a)) + 1e-30f));
        break;
      case Opcode::EX2: lo = asU(std::exp2(asF(a))); break;
      case Opcode::LD_GLOBAL: lo = mem.load(a); break;
      case Opcode::LD_SHARED: lo = mem.load(a ^ 0x5555aaaaU); break;
      case Opcode::LD_PARAM: lo = mem.load(a ^ 0x33cc33ccU); break;
      case Opcode::ST_GLOBAL: mem.store(a, b); break;
      case Opcode::ST_SHARED: mem.store(a ^ 0x5555aaaaU, b); break;
      case Opcode::TEX: lo = hashU32(a ^ 0x07e707e7U); break;
      case Opcode::BRA:
      case Opcode::BAR:
      case Opcode::EXIT:
        break;
    }
}

StepInfo
step(const Kernel &k, WarpContext &warp)
{
    StepInfo info;
    const Instruction &in = k.blocks[warp.block].instrs[warp.idx];
    info.lin = warp.pc(k);

    std::array<std::uint32_t, kMaxSrcs> ops{};
    for (int s = 0; s < in.numSrcs; s++)
        ops[s] = in.srcs[s].isReg ? warp.regs[in.srcs[s].reg]
                                  : in.srcs[s].imm;

    if (in.op == Opcode::EXIT) {
        warp.done = true;
        return info;
    }
    if (in.op == Opcode::BRA) {
        bool taken = !in.pred || warp.regs[*in.pred] != 0;
        info.branchTaken = taken;
        if (taken) {
            warp.block = in.branchTarget;
            warp.idx = 0;
        } else {
            warp.block++;
            warp.idx = 0;
            if (warp.block >= static_cast<int>(k.blocks.size()))
                warp.done = true;
        }
        return info;
    }

    // Predicated non-branch instructions execute only when the
    // predicate is non-zero (inactive threads keep old values).
    bool enabled = !in.pred || warp.regs[*in.pred] != 0;
    std::uint32_t lo = 0, hi = 0;
    if (enabled) {
        evaluate(in, ops, warp.memory, lo, hi);
        if (in.dst) {
            warp.regs[*in.dst] = lo;
            if (in.wide)
                warp.regs[*in.dst + 1] = hi;
        }
    }
    info.result = lo;
    info.resultHi = hi;

    warp.idx++;
    if (warp.idx >= static_cast<int>(k.blocks[warp.block].instrs.size())) {
        warp.block++;
        warp.idx = 0;
        if (warp.block >= static_cast<int>(k.blocks.size()))
            warp.done = true;
    }
    return info;
}

} // namespace rfh
