/**
 * @file
 * Register-file access accounting.
 *
 * All executors (baseline, hardware cache, software hierarchy) produce
 * an AccessCounts: the number of 32-bit operand reads and writes per
 * hierarchy level, split by the datapath (private ALU vs shared
 * SFU/MEM/TEX) that sourced or consumed the operand — the split
 * determines wire energy. Writeback traffic of the hardware schemes is
 * additionally tagged so overhead accesses can be reported separately
 * (Section 6.1).
 */

#ifndef RFH_SIM_ACCESS_COUNTERS_H
#define RFH_SIM_ACCESS_COUNTERS_H

#include <array>
#include <cstdint>

#include "energy/energy_model.h"
#include "ir/instruction.h"

namespace rfh {

/** Access counts for one simulation run. */
struct AccessCounts
{
    /** reads[level][datapath]: 32-bit operand reads. */
    std::array<std::array<std::uint64_t, 2>, 3> reads{};
    /** writes[level][datapath]: 32-bit operand writes. */
    std::array<std::array<std::uint64_t, 2>, 3> writes{};
    /** Upper-level reads performed only to write a value back. */
    std::uint64_t wbReads = 0;
    /** MRF writes performed by writeback / deschedule flush. */
    std::uint64_t wbWrites = 0;
    /** Executed (warp) instructions. */
    std::uint64_t instructions = 0;
    /** Warp deschedule events (two-level scheduler swaps). */
    std::uint64_t deschedules = 0;

    void
    read(Level level, Datapath dp, std::uint64_t n = 1)
    {
        reads[static_cast<int>(level)][static_cast<int>(dp)] += n;
    }

    void
    write(Level level, Datapath dp, std::uint64_t n = 1)
    {
        writes[static_cast<int>(level)][static_cast<int>(dp)] += n;
    }

    std::uint64_t
    totalReads(Level level) const
    {
        const auto &r = reads[static_cast<int>(level)];
        return r[0] + r[1];
    }

    std::uint64_t
    totalWrites(Level level) const
    {
        const auto &w = writes[static_cast<int>(level)];
        return w[0] + w[1];
    }

    std::uint64_t
    allReads() const
    {
        return totalReads(Level::MRF) + totalReads(Level::ORF) +
            totalReads(Level::LRF);
    }

    std::uint64_t
    allWrites() const
    {
        return totalWrites(Level::MRF) + totalWrites(Level::ORF) +
            totalWrites(Level::LRF);
    }

    void
    add(const AccessCounts &o)
    {
        for (int l = 0; l < 3; l++) {
            for (int d = 0; d < 2; d++) {
                reads[l][d] += o.reads[l][d];
                writes[l][d] += o.writes[l][d];
            }
        }
        wbReads += o.wbReads;
        wbWrites += o.wbWrites;
        instructions += o.instructions;
        deschedules += o.deschedules;
    }

    /** Total access+wire energy under @p em (pJ). */
    double totalEnergyPJ(const EnergyModel &em) const;

    /** Storage-array energy at @p level (pJ). */
    double accessEnergyPJ(const EnergyModel &em, Level level) const;

    /** Wire energy at @p level (pJ). */
    double wireEnergyPJ(const EnergyModel &em, Level level) const;
};

} // namespace rfh

#endif // RFH_SIM_ACCESS_COUNTERS_H
