/**
 * @file
 * Hardware-managed register file cache baseline (Section 2.2 and the
 * three-level hardware variant of Section 6.2).
 *
 * The RFC is a small per-thread cache with FIFO replacement. All
 * results except long-latency loads/texture fetches are written into
 * it; evictions of live values read the RFC and write the MRF (the
 * overhead traffic the software scheme eliminates). Static liveness
 * from the compiler elides writebacks of dead values. When the
 * two-level scheduler deschedules a warp on a long-latency dependence,
 * all live cached values are flushed to the MRF.
 *
 * The optional hardware LRF level (Section 6.2) catches results whose
 * consumers are exclusively on the private datapath; LRF evictions
 * spill into the RFC.
 */

#ifndef RFH_SIM_HW_CACHE_H
#define RFH_SIM_HW_CACHE_H

#include <memory>

#include "ir/analysis_bundle.h"
#include "ir/kernel.h"
#include "sim/access_counters.h"
#include "sim/baseline_exec.h"

namespace rfh {

/** Hardware cache configuration. */
struct HwCacheConfig
{
    /** RFC entries per thread (1..8). */
    int rfcEntries = 6;
    /** Add a 1-entry hardware LRF level (Section 6.2). */
    bool useLRF = false;
    /**
     * Flush the RFC when a backward branch is taken; the Section 7
     * limit study compares this against keeping values resident.
     */
    bool flushOnBackwardBranch = false;
    RunConfig run;
};

struct DecodedTrace;
struct ReplayDecode;

/**
 * Execute @p k under the hardware-managed cache and count accesses.
 *
 * @param analyses optional precomputed analyses of a kernel with
 *        @p k's structure; computed locally when null.
 * @param dec optional shared pre-decode with shared-consumer info
 *        (ExperimentCache::decode); built locally when null or when
 *        it lacks that info.
 */
AccessCounts runHwCache(const Kernel &k, const HwCacheConfig &cfg = {},
                        const AnalysisBundle *analyses = nullptr,
                        const ReplayDecode *dec = nullptr);

/**
 * Replay-mode counterpart of runHwCache: walk the pre-decoded dynamic
 * stream @p trace (recorded from @p k under the same RunConfig as
 * @p cfg.run) doing only hierarchy state updates and access counting.
 * Counts are identical to runHwCache by construction — both drive the
 * same per-warp accounting model.
 */
AccessCounts replayHwCache(const Kernel &k, const HwCacheConfig &cfg,
                           const DecodedTrace &trace,
                           const AnalysisBundle *analyses = nullptr,
                           const ReplayDecode *dec = nullptr);

class PipelineAccounting;

/**
 * Per-warp hardware-cache accounting for the cycle-level pipeline
 * (sim/pipeline.h): the same HwWarpSim state machine the executors
 * drive, called once per dynamic instruction at issue. RFC/LRF hits
 * become collector bypass operands. @p k, @p analyses, @p dec, and
 * @p counts must outlive the returned object.
 */
std::unique_ptr<PipelineAccounting> makeHwCacheAccounting(
    const Kernel &k, const HwCacheConfig &cfg,
    const AnalysisBundle *analyses, const ReplayDecode *dec,
    AccessCounts &counts);

} // namespace rfh

#endif // RFH_SIM_HW_CACHE_H
