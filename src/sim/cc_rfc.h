/**
 * @file
 * Compiler-assisted register-file cache, after Shoushtary et al.
 * (arXiv:2310.17501).
 *
 * Structurally this is the paper's two-level hardware RFC (a small
 * per-thread FIFO cache in front of the MRF), but the caching policy
 * is steered by two kinds of compile-time hints instead of being
 * purely reactive:
 *
 *  - an *allocation hint* per definition: the result enters the RFC
 *    only when the compiler sees a nearby upcoming read of it (static
 *    next-use distance within a window); distant or unread results
 *    bypass straight to the MRF and never pollute the cache;
 *  - a *last-read hint* per operand: a read of a value that is dead
 *    afterwards (global liveness) erases its RFC entry, freeing the
 *    slot early and guaranteeing the dead value is never written back.
 *
 * Long-latency results bypass the hierarchy and deschedule handling
 * matches the hardware scheme (all live cached values flush to the
 * MRF when the warp swaps out). Both executors drive the same per-warp
 * accounting model, so direct and replay counts are identical by
 * construction.
 */

#ifndef RFH_SIM_CC_RFC_H
#define RFH_SIM_CC_RFC_H

#include <cstdint>
#include <memory>
#include <vector>

#include "ir/analysis_bundle.h"
#include "ir/kernel.h"
#include "sim/access_counters.h"
#include "sim/baseline_exec.h"

namespace rfh {

struct DecodedTrace;
struct ReplayDecode;

/** Compiler-assisted RFC configuration. */
struct CcRfcConfig
{
    /** RFC entries per thread (1..8). */
    int entries = 3;
    RunConfig run;
};

/**
 * Static next-use window of the allocation hint: a definition is
 * cached only when some reachable read of it sits within this many
 * instructions in layout order. Scales with the cache size — a larger
 * RFC can afford to hold values with more distant uses.
 */
int ccRfcHintWindow(int entries);

/**
 * Compute the per-instruction allocation hints of @p k for a cache of
 * @p entries: hint[lin] is non-zero when the result defined at @p lin
 * should be inserted into the RFC. Wide (64-bit) and long-latency
 * results always bypass. Deterministic and purely static, so both
 * executors derive identical hints.
 */
std::vector<std::uint8_t> ccRfcAllocationHints(const Kernel &k,
                                               int entries);

/**
 * Execute @p k under the compiler-assisted RFC and count accesses.
 *
 * @param analyses optional precomputed analyses (liveness feeds the
 *        last-read hints and writeback elision); computed locally
 *        when null.
 * @param dec optional shared pre-decode (ExperimentCache::decode);
 *        built locally when null.
 */
AccessCounts runCcRfc(const Kernel &k, const CcRfcConfig &cfg = {},
                      const AnalysisBundle *analyses = nullptr,
                      const ReplayDecode *dec = nullptr);

/**
 * Replay-mode counterpart of runCcRfc: walk the pre-decoded dynamic
 * stream @p trace (recorded from @p k under the same RunConfig as
 * @p cfg.run). Counts are identical to runCcRfc by construction —
 * both drive the same per-warp accounting model.
 */
AccessCounts replayCcRfc(const Kernel &k, const CcRfcConfig &cfg,
                         const DecodedTrace &trace,
                         const AnalysisBundle *analyses = nullptr,
                         const ReplayDecode *dec = nullptr);

class PipelineAccounting;

/**
 * Per-warp compiler-assisted-RFC accounting for the cycle-level
 * pipeline (sim/pipeline.h): the same CcWarpSim state machine the
 * executors drive, called once per dynamic instruction at issue. RFC
 * hits become collector bypass operands. @p k, @p analyses, @p dec,
 * and @p counts must outlive the returned object.
 */
std::unique_ptr<PipelineAccounting> makeCcRfcAccounting(
    const Kernel &k, const CcRfcConfig &cfg,
    const AnalysisBundle *analyses, const ReplayDecode *dec,
    AccessCounts &counts);

} // namespace rfh

#endif // RFH_SIM_CC_RFC_H
